// Tour of the exact kNN indexes (paper Sec. 3.6.1 / Fig. 16): iDistance,
// VP-tree and VA-file over the same dataset. Shows that (1) all three
// return the exact kNN, (2) attaching the HC-O leaf-node / point cache cuts
// their I/O without changing any result.

#include <cstdio>
#include <filesystem>
#include <numeric>
#include <set>

#include "cache/code_cache.h"
#include "cache/node_cache.h"
#include "core/knn_engine.h"
#include "core/workload.h"
#include "hist/builders.h"
#include "index/idistance/idistance.h"
#include "index/linear_scan.h"
#include "index/vafile/vafile.h"
#include "index/vptree/vptree.h"
#include "workload/generator.h"

namespace {

using namespace eeb;

bool Die(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, st.ToString().c_str());
    return true;
  }
  return false;
}

std::set<PointId> Ids(const std::vector<Neighbor>& nbs) {
  std::set<PointId> s;
  for (const auto& nb : nbs) s.insert(nb.id);
  return s;
}

}  // namespace

int main() {
  workload::DatasetSpec spec;
  spec.name = "tour";
  spec.n = 30000;
  spec.dim = 32;
  spec.ndom = 256;
  Dataset data = workload::GenerateClustered(spec);

  workload::QueryLogSpec logspec;
  logspec.pool_size = 100;
  logspec.workload_size = 300;
  logspec.test_size = 10;
  workload::QueryLog log = workload::GenerateQueryLog(data, logspec);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "eeb_tour").string();
  std::filesystem::create_directories(dir);

  // ---- build the three exact indexes ------------------------------------
  std::unique_ptr<index::IDistance> idist;
  index::IDistanceOptions iopt;
  iopt.num_partitions = 32;
  if (Die(index::IDistance::Build(storage::Env::Default(), dir + "/idist",
                                  data, iopt, &idist),
          "iDistance"))
    return 1;

  std::unique_ptr<index::VpTree> vptree;
  if (Die(index::VpTree::Build(storage::Env::Default(), dir + "/vptree",
                               data, {}, &vptree),
          "VP-tree"))
    return 1;

  std::unique_ptr<index::VaFile> vafile;
  index::VaFileOptions vopt;
  vopt.bits_per_dim = 4;
  vopt.integral = true;
  if (Die(index::VaFile::Build(data, vopt, &vafile), "VA-file")) return 1;

  std::printf("indexes built: iDistance (%zu leaves), VP-tree (%zu leaves), "
              "VA-file (%.1f KB approximations)\n\n",
              idist->num_leaves(), vptree->num_leaves(),
              vafile->approximation_bytes() / 1024.0);

  // ---- 1. exactness: everyone agrees with the linear scan ---------------
  const size_t k = 10;
  for (const auto& q : log.test) {
    const auto truth = Ids(index::LinearScanKnn(data, q, k));
    index::TreeSearchResult ri, rv;
    if (Die(idist->Search(q, k, nullptr, &ri), "idist search")) return 1;
    if (Die(vptree->Search(q, k, nullptr, &rv), "vptree search")) return 1;
    if (Ids(ri.neighbors) != truth || Ids(rv.neighbors) != truth) {
      std::fprintf(stderr, "exactness violated!\n");
      return 1;
    }
  }
  std::printf("1. exactness check passed: iDistance and VP-tree match the "
              "linear scan on all test queries\n\n");

  // ---- 2. HC-O node caches cut leaf fetches -----------------------------
  const size_t cache_bytes = spec.n * spec.dim * sizeof(float) / 10;
  core::LeafWorkloadStats wl;
  auto search = [&](std::span<const Scalar> q, size_t kk,
                    index::TreeSearchResult* out) {
    return idist->Search(q, kk, nullptr, out);
  };
  if (Die(core::AnalyzeTreeWorkload(search, idist->num_leaves(),
                                    log.workload, k, &wl),
          "workload"))
    return 1;

  hist::FrequencyArray fprime =
      hist::FrequencyArray::FromPoints(data, wl.qr_points, spec.ndom);
  hist::Histogram hco;
  if (Die(hist::BuildKnnOptimal(fprime, 64, &hco), "HC-O")) return 1;

  cache::ExactNodeCache exact(cache_bytes);
  cache::ApproxNodeCache approx(&hco, data.dim(), cache_bytes, true);
  if (Die(exact.Fill(data, idist->store().leaf_points(), wl.leaves_by_freq),
          "fill") ||
      Die(approx.Fill(data, idist->store().leaf_points(), wl.leaves_by_freq),
          "fill"))
    return 1;

  uint64_t plain = 0, with_exact = 0, with_hco = 0;
  for (const auto& q : log.test) {
    index::TreeSearchResult r0, r1, r2;
    if (Die(idist->Search(q, k, nullptr, &r0), "s0")) return 1;
    if (Die(idist->Search(q, k, &exact, &r1), "s1")) return 1;
    if (Die(idist->Search(q, k, &approx, &r2), "s2")) return 1;
    if (Ids(r1.neighbors) != Ids(r0.neighbors) ||
        Ids(r2.neighbors) != Ids(r0.neighbors)) {
      std::fprintf(stderr, "cache changed results!\n");
      return 1;
    }
    plain += r0.leaves_fetched;
    with_exact += r1.leaves_fetched;
    with_hco += r2.leaves_fetched;
  }
  std::printf("2. iDistance leaf fetches over %zu queries (budget %.1f MB):\n",
              log.test.size(), cache_bytes / (1024.0 * 1024.0));
  std::printf("   no cache: %llu   EXACT node cache (%zu leaves): %llu   "
              "HC-O node cache (%zu leaves): %llu\n\n",
              (unsigned long long)plain, exact.size(),
              (unsigned long long)with_exact, approx.size(),
              (unsigned long long)with_hco);

  // ---- 3. VA-file + point cache through the generic engine --------------
  const std::string pf_path = dir + "/points";
  if (Die(storage::PointFile::Create(storage::Env::Default(), pf_path, data),
          "point file"))
    return 1;
  std::unique_ptr<storage::PointFile> pf;
  if (Die(storage::PointFile::Open(storage::Env::Default(), pf_path, &pf),
          "open"))
    return 1;

  core::WorkloadStats vwl;
  if (Die(core::AnalyzeWorkload(vafile.get(), data, log.workload, k, &vwl),
          "va workload"))
    return 1;
  cache::HistCodeCache pcache(&hco, data.dim(), cache_bytes, false, true);
  if (Die(pcache.Fill(data, vwl.ids_by_freq), "fill")) return 1;

  core::KnnEngine engine(vafile.get(), pf.get(), &pcache);
  uint64_t fetched = 0, candidates = 0;
  for (const auto& q : log.test) {
    core::QueryResult r;
    if (Die(engine.Query(q, k, &r), "query")) return 1;
    fetched += r.fetched;
    candidates += r.candidates;
  }
  std::printf("3. VA-file through the generic engine: %llu of %llu VA "
              "survivors fetched after cache reduction\n",
              (unsigned long long)fetched, (unsigned long long)candidates);
  return 0;
}
