// Scenario: a (simulated) image search service. Feature vectors of a photo
// collection live on disk; a skewed query log (popular images are searched
// again and again, paper Fig. 2) is available. The example compares the
// service's per-query latency under NO-CACHE, EXACT caching and the paper's
// HC-O histogram caching at the same memory budget, and shows the knobs a
// deployment would tune.

#include <cstdio>
#include <filesystem>

#include "core/system.h"
#include "workload/generator.h"

namespace {

using namespace eeb;

void Report(const char* name, const core::AggregateResult& agg) {
  std::printf(
      "%-10s response %7.3f s  (gen %6.3f + refine %6.3f)   hit %5.1f%%  "
      "fetched %6.1f of %6.1f candidates\n",
      name, agg.avg_response_seconds, agg.avg_gen_seconds,
      agg.avg_refine_seconds, 100 * agg.hit_ratio, agg.avg_fetched,
      agg.avg_candidates);
}

}  // namespace

int main() {
  // The photo collection: 100k images, 64-d sparse color-histogram-like
  // features, stored in a page-aligned point file on disk.
  workload::DatasetSpec spec;
  spec.name = "photos";
  spec.n = 100000;
  spec.dim = 64;
  spec.ndom = 256;
  spec.sparsity = 0.35;
  Dataset data = workload::GenerateClustered(spec);

  // The search log: 400 distinct query images, Zipf-popular.
  workload::QueryLogSpec logspec;
  logspec.pool_size = 400;
  logspec.workload_size = 1000;
  logspec.test_size = 50;
  workload::QueryLog log = workload::GenerateQueryLog(data, logspec);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "eeb_image_search").string();
  std::filesystem::create_directories(dir);

  core::SystemOptions opt;
  opt.lsh.beta_candidates = 250;  // candidate volume of the LSH index
  std::unique_ptr<core::System> system;
  Status st = core::System::Create(storage::Env::Default(), dir, data,
                                   log.workload, opt, &system);
  if (!st.ok()) {
    std::fprintf(stderr, "create failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // Memory budget: 10% of the on-disk file.
  const size_t file_bytes = spec.n * spec.dim * sizeof(float);
  const size_t cache_bytes = file_bytes / 10;
  std::printf("collection: %zu images, %zu-d features, %.1f MB on disk\n",
              data.size(), data.dim(), file_bytes / (1024.0 * 1024.0));
  std::printf("cache budget: %.1f MB (10%%)\n\n",
              cache_bytes / (1024.0 * 1024.0));

  struct Config {
    const char* name;
    core::CacheMethod method;
  };
  for (const Config& c :
       {Config{"NO-CACHE", core::CacheMethod::kNone},
        Config{"EXACT", core::CacheMethod::kExact},
        Config{"HC-D", core::CacheMethod::kHcD},
        Config{"HC-O", core::CacheMethod::kHcO}}) {
    st = system->ConfigureCache(c.method,
                                c.method == core::CacheMethod::kNone
                                    ? 0
                                    : cache_bytes);
    if (!st.ok()) {
      std::fprintf(stderr, "configure failed: %s\n", st.ToString().c_str());
      return 1;
    }
    core::AggregateResult agg;
    st = system->RunQueries(log.test, /*k=*/10, &agg);
    if (!st.ok()) {
      std::fprintf(stderr, "queries failed: %s\n", st.ToString().c_str());
      return 1;
    }
    Report(c.name, agg);
  }

  std::printf(
      "\nNotes: response time uses the library's disk model (5 ms per "
      "random page);\nresults are identical under every configuration — "
      "caching only removes I/O.\n");
  return 0;
}
