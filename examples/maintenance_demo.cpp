// Maintenance scenario (paper Sec. 3.5): a search service runs for several
// "days" (epochs). The query distribution shifts mid-way; the
// CacheMaintainer notices the drift in the near-result distribution and
// rebuilds the workload statistics, histogram and cache — queries keep
// their exact results throughout, only the hit ratio moves.

#include <cstdio>
#include <filesystem>

#include "core/maintenance.h"
#include "hist/serialize.h"
#include "workload/generator.h"

int main() {
  using namespace eeb;

  workload::DatasetSpec spec;
  spec.name = "maintenance";
  spec.n = 30000;
  spec.dim = 32;
  spec.ndom = 1024;
  spec.cluster_stddev = 56.0;
  Dataset data = workload::GenerateClustered(spec);

  // Epoch A and epoch B use disjoint query pools: the "topic of the day"
  // changes.
  workload::QueryLogSpec qa;
  qa.pool_size = 150;
  qa.workload_size = 500;
  qa.jitter_stddev = 16.0;
  qa.seed = 1001;
  auto log_a = workload::GenerateQueryLog(data, qa);
  workload::QueryLogSpec qb = qa;
  qb.seed = 2002;
  auto log_b = workload::GenerateQueryLog(data, qb);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "eeb_maint_demo").string();
  std::filesystem::create_directories(dir);
  std::unique_ptr<core::System> system;
  Status st = core::System::Create(storage::Env::Default(), dir, data,
                                   log_a.workload, {}, &system);
  if (!st.ok()) {
    std::fprintf(stderr, "create: %s\n", st.ToString().c_str());
    return 1;
  }
  const size_t cs = spec.n * spec.dim * sizeof(float) / 10;
  st = system->ConfigureCache(core::CacheMethod::kHcO, cs);
  if (!st.ok()) {
    std::fprintf(stderr, "cache: %s\n", st.ToString().c_str());
    return 1;
  }

  auto report = [&](const char* label,
                    const std::vector<std::vector<Scalar>>& queries) {
    core::AggregateResult agg;
    Status s = system->RunQueries(queries, 10, &agg);
    if (!s.ok()) std::exit(1);
    std::printf("%-34s hit %5.1f%%  refine %.3f s\n", label,
                100 * agg.hit_ratio, agg.avg_refine_seconds);
  };

  core::CacheMaintainer maintainer(system.get(), {.rebuild_threshold = 0.15});

  std::printf("== epoch 1: workload A (the cache was built for it)\n");
  report("serving A", log_a.test);
  Status ms = maintainer.EndEpoch(log_a.workload);
  if (!ms.ok()) return 1;
  std::printf("maintenance: drift %.3f -> %s\n\n", maintainer.last_drift(),
              maintainer.rebuilds() ? "REBUILD" : "keep");

  std::printf("== epoch 2: the workload shifts to B\n");
  report("serving B with the A-cache", log_b.test);
  ms = maintainer.EndEpoch(log_b.workload);
  if (!ms.ok()) return 1;
  std::printf("maintenance: drift %.3f -> %s\n", maintainer.last_drift(),
              maintainer.rebuilds() ? "REBUILD" : "keep");
  report("serving B after maintenance", log_b.test);

  // The rebuilt histogram can be persisted for other query servers.
  hist::Histogram snapshot;
  std::string blob;
  if (system->BuildGlobalHistogram(core::CacheMethod::kHcO,
                                   system->last_tau(), &snapshot)
          .ok()) {
    hist::AppendHistogram(snapshot, &blob);
    std::printf("\npersisted the rebuilt HC-O histogram: %zu bytes "
                "(tau=%u, %u buckets)\n",
                blob.size(), system->last_tau(), snapshot.num_buckets());
  }
  return 0;
}
