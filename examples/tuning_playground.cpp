// Cost-model playground (paper Sec. 4): for a given cache budget, sweep the
// code length tau, print the model's estimate next to the measured I/O, and
// show what the automatic tuner would pick. Run it with different budgets
// to watch the optimal tau move.
//
//   ./build/examples/tuning_playground [cache_fraction_percent]

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "core/system.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace eeb;
  double fraction = 0.10;
  if (argc > 1) fraction = std::atof(argv[1]) / 100.0;
  if (fraction <= 0 || fraction > 1) {
    std::fprintf(stderr, "usage: %s [cache_fraction_percent in (0,100]]\n",
                 argv[0]);
    return 1;
  }

  workload::DatasetSpec spec;
  spec.name = "tuning";
  spec.n = 50000;
  spec.dim = 64;
  spec.ndom = 256;
  Dataset data = workload::GenerateClustered(spec);
  workload::QueryLogSpec logspec;
  workload::QueryLog log = workload::GenerateQueryLog(data, logspec);

  const std::string dir =
      (std::filesystem::temp_directory_path() / "eeb_tuning").string();
  std::filesystem::create_directories(dir);
  std::unique_ptr<core::System> system;
  Status st = core::System::Create(storage::Env::Default(), dir, data,
                                   log.workload, {}, &system);
  if (!st.ok()) {
    std::fprintf(stderr, "create failed: %s\n", st.ToString().c_str());
    return 1;
  }

  const size_t file_bytes = spec.n * spec.dim * sizeof(float);
  const size_t cache_bytes = static_cast<size_t>(file_bytes * fraction);
  const size_t k = 10;
  const auto inputs = system->MakeCostInputs(cache_bytes, k);

  std::printf("cache budget: %.2f MB (%.0f%% of the file), Dmax=%.0f, "
              "E[|C(q)|]=%.0f\n\n",
              cache_bytes / (1024.0 * 1024.0), fraction * 100, inputs.dmax,
              inputs.avg_candidates);
  std::printf("HC-W (equi-width), Thm. 3 closed-form estimate:\n");
  std::printf("%-5s %10s %10s %14s %14s\n", "tau", "est hit", "est prune",
              "est Crefine", "measured I/O");
  for (uint32_t tau = 1; tau <= system->lvalue(); ++tau) {
    const auto est = core::EstimateEquiWidth(inputs, tau);
    st = system->ConfigureCache(core::CacheMethod::kHcW, cache_bytes, tau);
    if (!st.ok()) {
      std::fprintf(stderr, "configure: %s\n", st.ToString().c_str());
      return 1;
    }
    core::AggregateResult agg;
    st = system->RunQueries(log.test, k, &agg);
    if (!st.ok()) return 1;
    std::printf("%-5u %10.3f %10.3f %14.1f %14.1f\n", tau, est.hit_ratio,
                est.prune_ratio, est.expected_crefine, agg.avg_fetched);
  }
  std::printf("\ntuner picks: HC-W tau=%u, HC-O tau=%u\n",
              system->AutoTau(core::CacheMethod::kHcW, cache_bytes, k),
              system->AutoTau(core::CacheMethod::kHcO, cache_bytes, k));
  std::printf(
      "\nTry: %s 3    (tight budget -> smaller tau)\n     %s 30   (ample "
      "budget -> larger tau)\n",
      "tuning_playground", "tuning_playground");
  return 0;
}
