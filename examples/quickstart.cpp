// Quickstart: build a disk-based kNN system over a synthetic image-feature
// dataset, attach the paper's histogram cache (HC-O), and run a query.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>
#include <filesystem>

#include "core/system.h"
#include "workload/generator.h"

int main() {
  using namespace eeb;

  // 1. A small clustered dataset standing in for image feature vectors.
  workload::DatasetSpec spec;
  spec.name = "quickstart";
  spec.n = 20000;
  spec.dim = 64;
  spec.ndom = 256;
  Dataset data = workload::GenerateClustered(spec);

  // 2. A query log with Zipf popularity (what a real service would have).
  workload::QueryLogSpec logspec;
  logspec.pool_size = 200;
  logspec.workload_size = 500;
  logspec.test_size = 5;
  workload::QueryLog log = workload::GenerateQueryLog(data, logspec);

  // 3. Assemble the system: point file on disk, C2LSH index, workload
  //    analysis (HFF frequencies, F' array) — all offline.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "eeb_quickstart").string();
  std::filesystem::create_directories(dir);
  std::unique_ptr<core::System> system;
  Status st = core::System::Create(storage::Env::Default(), dir, data,
                                   log.workload, core::SystemOptions{},
                                   &system);
  if (!st.ok()) {
    std::fprintf(stderr, "create failed: %s\n", st.ToString().c_str());
    return 1;
  }

  // 4. Install the kNN-optimal histogram cache. tau = 0 lets the Sec. 4
  //    cost model pick the code length for the budget.
  const size_t cache_bytes = 512 * 1024;  // 512 KB, ~10% of the file
  st = system->ConfigureCache(core::CacheMethod::kHcO, cache_bytes);
  if (!st.ok()) {
    std::fprintf(stderr, "cache failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("cache: HC-O, tau=%u, %zu items of %zu bytes\n",
              system->last_tau(), system->cache()->size(),
              system->cache()->item_bytes());

  // 5. Run a 10-NN query and inspect what the cache saved.
  core::QueryResult r;
  st = system->Query(log.test[0], /*k=*/10, &r);
  if (!st.ok()) {
    std::fprintf(stderr, "query failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("result ids:");
  for (PointId id : r.result_ids) std::printf(" %u", id);
  std::printf("\n");
  std::printf(
      "candidates=%zu  cache_hits=%zu  pruned=%zu  sure=%zu  fetched=%zu\n",
      r.candidates, r.cache_hits, r.pruned, r.true_hits, r.fetched);
  std::printf("disk reads: %llu points (%llu pages)\n",
              static_cast<unsigned long long>(r.refine_io.point_reads),
              static_cast<unsigned long long>(r.refine_io.page_reads));
  std::printf(
      "\nWithout the cache every one of the %zu candidates would have been "
      "fetched.\n",
      r.candidates);
  return 0;
}
