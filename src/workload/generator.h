// Synthetic dataset + query-log generation. Substitutes for the paper's
// NUS-WIDE / IMGNET / SOGOU image-feature datasets (not available offline):
// clustered Gaussian-mixture feature vectors over the integer value domain
// [0, ndom), with optional per-dimension sparsity mimicking color-histogram
// features, and a Zipf-distributed query log reproducing the power-law
// popularity skew of the paper's Fig. 2.

#ifndef EEB_WORKLOAD_GENERATOR_H_
#define EEB_WORKLOAD_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/dataset.h"

namespace eeb::workload {

/// Shape of a synthetic dataset.
struct DatasetSpec {
  std::string name;
  size_t n = 10000;
  size_t dim = 64;
  uint32_t ndom = 256;       ///< value domain; Lvalue = log2(ndom)
  uint32_t clusters = 32;    ///< Gaussian mixture components
  double cluster_stddev = 14.0;  ///< per-dimension spread, in value units
  /// Fraction of dimensions per point forced toward zero, emulating sparse
  /// color-histogram features (0 = dense GIST-like vectors).
  double sparsity = 0.0;
  /// Two-level structure: when > 0, each cluster is a mixture of micro
  /// clusters (about `sub_points` members each) of this per-dimension
  /// spread. Real image features are multi-scale — nearest neighbors are
  /// much closer than the typical intra-cluster distance — and metric
  /// indexes (iDistance, VP-tree) rely on that density contrast.
  double sub_stddev = 0.0;
  size_t sub_points = 40;
  /// Intrinsic dimensionality (0 = full). When > 0, each cluster lies on a
  /// random `intrinsic_dim`-dimensional linear manifold embedded in `dim`
  /// dimensions (plus `sub_stddev` isotropic noise). Image descriptors have
  /// low intrinsic dimensionality; distance-based pruning (iDistance,
  /// VP-tree, and the paper's Fig. 16) depends on it — with full-rank
  /// Gaussians, concentration of measure makes every metric bound useless.
  uint32_t intrinsic_dim = 0;
  uint64_t seed = 1;
};

/// Generates a clustered dataset according to `spec`. Coordinates are
/// integral values in [0, ndom) stored as Scalar.
Dataset GenerateClustered(const DatasetSpec& spec);

/// Shape of a synthetic query log.
struct QueryLogSpec {
  size_t pool_size = 400;      ///< distinct query objects
  size_t workload_size = 1000; ///< |WL|, the historical log
  size_t test_size = 50;       ///< |Qtest| (paper Sec. 5.1)
  double zipf_s = 0.8;         ///< popularity skew (Fig. 2 power law)
  /// Perturbation of pool queries relative to their source data point, in
  /// value units. The paper removes query points from P; we keep P intact
  /// and jitter instead, which equally avoids trivial distance-0 hits.
  double jitter_stddev = 4.0;
  uint64_t seed = 2;
};

/// A query log: the historical workload WL plus the held-out test set.
struct QueryLog {
  std::vector<std::vector<Scalar>> workload;
  std::vector<std::vector<Scalar>> test;
};

/// Builds a Zipf-popularity query log whose queries are jittered copies of
/// random data points. Repeated draws of the same pool entry are identical
/// (temporal locality an HFF cache can exploit).
QueryLog GenerateQueryLog(const Dataset& data, const QueryLogSpec& spec);

}  // namespace eeb::workload

#endif  // EEB_WORKLOAD_GENERATOR_H_
