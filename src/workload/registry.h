// Scaled surrogates of the paper's three evaluation datasets (Table 2).
// Sizes are laptop-scale; the relative progression (small color-histogram
// set, a ~3-4x larger one, and a much larger high-dimensional GIST set with
// a skewed real query log) mirrors NUS-WIDE : IMGNET : SOGOU. See DESIGN.md
// for the substitution rationale.

#ifndef EEB_WORKLOAD_REGISTRY_H_
#define EEB_WORKLOAD_REGISTRY_H_

#include <string>
#include <vector>

#include "workload/generator.h"

namespace eeb::workload {

/// NUS-WIDE surrogate: small, 64-d, sparse color-histogram-like features.
DatasetSpec NuswSimSpec();

/// IMGNET surrogate: mid-size, 64-d color-histogram-like features.
DatasetSpec ImgnetSimSpec();

/// SOGOU surrogate: large, 128-d dense GIST-like features (the dataset with
/// the real query log in the paper; here the log is the Zipf generator).
DatasetSpec SogouSimSpec();

/// All three, in paper order.
std::vector<DatasetSpec> AllSpecs();

/// Query-log spec used with every dataset (|Qtest| = 50, Sec. 5.1).
QueryLogSpec DefaultLogSpec();

/// Default cache budget for a dataset: ~30% of the point-file bytes,
/// mirroring the paper's default CS ("less than 30% of the size").
size_t DefaultCacheBytes(const DatasetSpec& spec);

/// Honors the EEB_QUICK environment variable: when set, shrinks a spec (and
/// the log) so test/bench smoke runs stay fast.
DatasetSpec MaybeQuick(DatasetSpec spec);
QueryLogSpec MaybeQuick(QueryLogSpec spec);

}  // namespace eeb::workload

#endif  // EEB_WORKLOAD_REGISTRY_H_
