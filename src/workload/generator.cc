#include "workload/generator.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "common/zipf.h"

namespace eeb::workload {
namespace {

Scalar ClampToDomain(double v, uint32_t ndom) {
  double r = std::floor(v + 0.5);
  if (r < 0) r = 0;
  if (r > ndom - 1) r = ndom - 1;
  return static_cast<Scalar>(r);
}

}  // namespace

Dataset GenerateClustered(const DatasetSpec& spec) {
  Rng rng(spec.seed);
  const size_t d = spec.dim;
  const uint32_t ndom = spec.ndom;

  // Mixture centers away from the domain edges so clusters are not clipped
  // flat against the boundary.
  Dataset centers(d);
  centers.Reserve(spec.clusters);
  std::vector<Scalar> c(d);
  for (uint32_t i = 0; i < spec.clusters; ++i) {
    for (size_t j = 0; j < d; ++j) {
      c[j] = static_cast<Scalar>(0.15 * ndom + rng.NextDouble() * 0.7 * ndom);
    }
    centers.Append(c);
  }

  // Cluster-level sparsity masks: similar images share their empty
  // histogram bins, so the zeroed dimensions are a property of the cluster,
  // not of the individual point (independent per-point masks would destroy
  // all locality: two neighbors would disagree on ~2*s*(1-s) of their
  // dimensions by hundreds of value units each).
  std::vector<std::vector<bool>> sparse_mask;
  if (spec.sparsity > 0.0) {
    sparse_mask.assign(spec.clusters, std::vector<bool>(d, false));
    for (auto& mask : sparse_mask) {
      for (size_t j = 0; j < d; ++j) mask[j] = rng.Bernoulli(spec.sparsity);
    }
  }

  // Optional low-dimensional manifold per cluster: a random linear map
  // from intrinsic_dim latent coordinates into the full space. Column
  // scaling keeps the per-dimension spread at cluster_stddev.
  const uint32_t m = spec.intrinsic_dim;
  std::vector<std::vector<double>> manifolds;  // per cluster: m * d
  if (m > 0) {
    manifolds.assign(spec.clusters, std::vector<double>(m * d));
    const double scale = 1.0 / std::sqrt(static_cast<double>(m));
    for (auto& a : manifolds) {
      for (auto& v : a) v = rng.NextGaussian() * scale;
    }
  }

  // Optional micro-cluster level: sub-centers drawn around each cluster
  // center at the cluster spread; points then scatter tightly around their
  // sub-center.
  const bool two_level = m == 0 && spec.sub_stddev > 0.0;
  std::vector<Dataset> subcenters;
  if (two_level) {
    const size_t per_cluster =
        std::max<size_t>(1, spec.n / std::max<uint32_t>(1, spec.clusters));
    const size_t subs = std::max<size_t>(
        1, per_cluster / std::max<size_t>(1, spec.sub_points));
    subcenters.assign(spec.clusters, Dataset(d));
    std::vector<Scalar> sc(d);
    for (uint32_t ci = 0; ci < spec.clusters; ++ci) {
      auto center = centers.point(ci);
      for (size_t s = 0; s < subs; ++s) {
        for (size_t j = 0; j < d; ++j) {
          sc[j] = ClampToDomain(
              center[j] + rng.NextGaussian() * spec.cluster_stddev, ndom);
        }
        subcenters[ci].Append(sc);
      }
    }
  }

  Dataset data(d);
  data.Reserve(spec.n);
  std::vector<Scalar> p(d);
  for (size_t i = 0; i < spec.n; ++i) {
    const uint32_t cluster =
        static_cast<uint32_t>(rng.Uniform(spec.clusters));
    std::span<const Scalar> anchor = centers.point(cluster);
    double spread = spec.cluster_stddev;
    if (two_level) {
      const auto& subs = subcenters[cluster];
      anchor = subs.point(static_cast<PointId>(rng.Uniform(subs.size())));
      spread = spec.sub_stddev;
    }
    const std::vector<bool>* mask =
        spec.sparsity > 0.0 ? &sparse_mask[cluster] : nullptr;
    if (m > 0) {
      // Manifold sample: anchor + z * A + isotropic noise.
      std::vector<double> z(m);
      for (auto& v : z) v = rng.NextGaussian() * spec.cluster_stddev;
      const std::vector<double>& a = manifolds[cluster];
      for (size_t j = 0; j < d; ++j) {
        if (mask != nullptr && (*mask)[j]) {
          p[j] = ClampToDomain(
              -0.03 * ndom * std::log(1.0 - rng.NextDouble() + 1e-12), ndom);
          continue;
        }
        double off = 0.0;
        for (uint32_t t = 0; t < m; ++t) off += z[t] * a[t * d + j];
        off += rng.NextGaussian() * spec.sub_stddev;
        p[j] = ClampToDomain(anchor[j] + off, ndom);
      }
      data.Append(p);
      continue;
    }
    for (size_t j = 0; j < d; ++j) {
      if (mask != nullptr && (*mask)[j]) {
        // Sparse histogram bin: small value with an exponential-ish tail.
        p[j] = ClampToDomain(
            -0.03 * ndom * std::log(1.0 - rng.NextDouble() + 1e-12), ndom);
      } else {
        p[j] = ClampToDomain(anchor[j] + rng.NextGaussian() * spread, ndom);
      }
    }
    data.Append(p);
  }
  return data;
}

QueryLog GenerateQueryLog(const Dataset& data, const QueryLogSpec& spec) {
  Rng rng(spec.seed);
  const size_t d = data.dim();
  const uint32_t ndom_guess =
      static_cast<uint32_t>(std::max<Scalar>(1, data.MaxValue())) + 1;

  // Query pool: jittered copies of random data points.
  std::vector<std::vector<Scalar>> pool(spec.pool_size,
                                        std::vector<Scalar>(d));
  for (auto& q : pool) {
    const PointId src = static_cast<PointId>(rng.Uniform(data.size()));
    auto p = data.point(src);
    for (size_t j = 0; j < d; ++j) {
      q[j] = ClampToDomain(p[j] + rng.NextGaussian() * spec.jitter_stddev,
                           ndom_guess);
    }
  }

  ZipfSampler zipf(spec.pool_size, spec.zipf_s);
  QueryLog log;
  log.workload.reserve(spec.workload_size);
  for (size_t i = 0; i < spec.workload_size; ++i) {
    log.workload.push_back(pool[zipf.Sample(rng)]);
  }
  log.test.reserve(spec.test_size);
  for (size_t i = 0; i < spec.test_size; ++i) {
    log.test.push_back(pool[zipf.Sample(rng)]);
  }
  return log;
}

}  // namespace eeb::workload
