#include "workload/registry.h"

#include <cstdlib>

namespace eeb::workload {

DatasetSpec NuswSimSpec() {
  DatasetSpec s;
  s.name = "NUSW-SIM";
  s.n = 50000;
  s.dim = 64;
  s.ndom = 1024;  // Lvalue = 10: code/exact density ratio matches the paper
  s.clusters = 24;
  s.cluster_stddev = 56.0;
  s.sparsity = 0.35;  // color histograms are sparse
  s.sub_stddev = 10.0;
  s.intrinsic_dim = 8;
  s.seed = 101;
  return s;
}

DatasetSpec ImgnetSimSpec() {
  DatasetSpec s;
  s.name = "IMGNET-SIM";
  s.n = 150000;
  s.dim = 64;
  s.ndom = 1024;
  s.clusters = 48;
  s.cluster_stddev = 56.0;
  s.sparsity = 0.35;
  s.sub_stddev = 10.0;
  s.intrinsic_dim = 8;
  s.seed = 102;
  return s;
}

DatasetSpec SogouSimSpec() {
  DatasetSpec s;
  s.name = "SOGOU-SIM";
  s.n = 200000;
  s.dim = 128;
  s.ndom = 1024;
  s.clusters = 64;
  s.cluster_stddev = 48.0;
  s.sparsity = 0.0;  // GIST descriptors are dense
  s.sub_stddev = 10.0;
  s.intrinsic_dim = 10;
  s.seed = 103;
  return s;
}

std::vector<DatasetSpec> AllSpecs() {
  return {NuswSimSpec(), ImgnetSimSpec(), SogouSimSpec()};
}

QueryLogSpec DefaultLogSpec() {
  QueryLogSpec s;
  s.pool_size = 400;
  s.workload_size = 1000;
  s.test_size = 50;
  s.zipf_s = 0.8;
  s.jitter_stddev = 16.0;
  s.seed = 7001;
  return s;
}

size_t DefaultCacheBytes(const DatasetSpec& spec) {
  // Optional override, e.g. EEB_CACHE_PCT=6 for 6% of the file.
  if (const char* pct = std::getenv("EEB_CACHE_PCT")) {
    const double f = std::atof(pct) / 100.0;
    if (f > 0 && f <= 1.0) {
      return static_cast<size_t>(spec.n * spec.dim * sizeof(float) * f);
    }
  }
  // The paper defaults CS to <30% of the file. Our surrogates store a
  // 10-bit value domain in 32-bit floats, so codes at tau = 10 are 3.2x
  // denser than exact points — the same ratio as the paper's SOGOU setup
  // (3840-byte points vs 1200-byte codes). 10% of the file puts the default
  // in the paper's headline regime (the code cache covers the hot set, the
  // exact cache cannot). The tau-sweep experiments (Fig. 12 / Fig. 15) pin
  // a tighter 5% so the hit-vs-tightness trade-off stays visible; at our
  // ~300x-reduced scale no single fraction exhibits both effects at once.
  const size_t file_bytes = spec.n * spec.dim * sizeof(float);
  return file_bytes * 10 / 100;
}

DatasetSpec MaybeQuick(DatasetSpec spec) {
  const char* q1 = std::getenv("EEB_QUICK");
  if (q1 != nullptr && q1[0] != '\0') {
    spec.n = std::min<size_t>(spec.n, 8000);
    spec.clusters = std::min<uint32_t>(spec.clusters, 16);
  }
  return spec;
}

QueryLogSpec MaybeQuick(QueryLogSpec spec) {
  const char* q2 = std::getenv("EEB_QUICK");
  if (q2 != nullptr && q2[0] != '\0') {
    spec.pool_size = std::min<size_t>(spec.pool_size, 100);
    spec.workload_size = std::min<size_t>(spec.workload_size, 200);
    spec.test_size = std::min<size_t>(spec.test_size, 20);
  }
  return spec;
}

}  // namespace eeb::workload
