#include "workload/fvecs.h"

#include <cstring>
#include <vector>

namespace eeb::workload {

Status ReadFvecs(storage::Env* env, const std::string& path, Dataset* out,
                 size_t max_vectors) {
  std::unique_ptr<storage::RandomAccessFile> f;
  EEB_RETURN_IF_ERROR(env->NewRandomAccessFile(path, &f));
  const uint64_t size = f->Size();

  uint64_t offset = 0;
  int32_t dim = -1;
  std::vector<Scalar> vec;
  size_t count = 0;
  while (offset < size && (max_vectors == 0 || count < max_vectors)) {
    int32_t d;
    if (offset + 4 > size) return Status::Corruption("fvecs: truncated dim");
    EEB_RETURN_IF_ERROR(f->Read(offset, 4, reinterpret_cast<char*>(&d)));
    offset += 4;
    if (d <= 0 || d > (1 << 20)) {
      return Status::Corruption("fvecs: implausible dimension");
    }
    if (dim < 0) {
      dim = d;
      *out = Dataset(static_cast<size_t>(dim));
      vec.resize(dim);
    } else if (d != dim) {
      return Status::Corruption("fvecs: inconsistent dimensions");
    }
    const uint64_t bytes = static_cast<uint64_t>(d) * sizeof(float);
    if (offset + bytes > size) {
      return Status::Corruption("fvecs: truncated vector");
    }
    EEB_RETURN_IF_ERROR(
        f->Read(offset, bytes, reinterpret_cast<char*>(vec.data())));
    offset += bytes;
    out->Append(vec);
    ++count;
  }
  if (dim < 0) *out = Dataset(0);
  return Status::OK();
}

Status WriteFvecs(storage::Env* env, const std::string& path,
                  const Dataset& data) {
  std::unique_ptr<storage::WritableFile> f;
  EEB_RETURN_IF_ERROR(env->NewWritableFile(path, &f));
  auto write_body = [&]() -> Status {
    const int32_t dim = static_cast<int32_t>(data.dim());
    for (size_t i = 0; i < data.size(); ++i) {
      EEB_RETURN_IF_ERROR(
          f->Append(reinterpret_cast<const char*>(&dim), sizeof(dim)));
      auto p = data.point(static_cast<PointId>(i));
      EEB_RETURN_IF_ERROR(f->Append(reinterpret_cast<const char*>(p.data()),
                                    p.size() * sizeof(Scalar)));
    }
    return f->Close();
  };
  return storage::CleanupIfError(env, path, write_body());
}

}  // namespace eeb::workload
