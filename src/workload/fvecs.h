// fvecs dataset I/O — the de-facto standard container for ANN benchmark
// datasets (SIFT1M, GIST1M, etc.): each vector is stored as an int32
// dimension count followed by that many float32 components. Supporting it
// lets users run the library on the real feature files the paper's datasets
// ship in, instead of only the synthetic surrogates.

#ifndef EEB_WORKLOAD_FVECS_H_
#define EEB_WORKLOAD_FVECS_H_

#include <string>

#include "common/dataset.h"
#include "common/status.h"
#include "storage/env.h"

namespace eeb::workload {

/// Reads an .fvecs file. All vectors must share one dimensionality.
/// `max_vectors` (0 = unlimited) truncates large files for sampling.
Status ReadFvecs(storage::Env* env, const std::string& path, Dataset* out,
                 size_t max_vectors = 0);

/// Writes a dataset as .fvecs.
Status WriteFvecs(storage::Env* env, const std::string& path,
                  const Dataset& data);

}  // namespace eeb::workload

#endif  // EEB_WORKLOAD_FVECS_H_
