// Individual (per-dimension) histograms, iHC-* (paper Sec. 3.6.2): one
// histogram per dimension, all with the same bucket count 2^tau. Metric M3
// decomposes over dimensions, so each H_j independently minimizes its own
// term using the per-dimension frequency array F'_j.

#ifndef EEB_HIST_INDIVIDUAL_H_
#define EEB_HIST_INDIVIDUAL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/dataset.h"
#include "common/status.h"
#include "hist/builders.h"
#include "hist/histogram.h"

namespace eeb::hist {

/// Which one-dimensional builder to apply per dimension.
enum class BuilderKind {
  kEquiWidth,
  kEquiDepth,
  kVOptimal,
  kKnnOptimal,
};

/// A bundle of d histograms, one per dimension.
class IndividualHistograms {
 public:
  IndividualHistograms() = default;
  explicit IndividualHistograms(std::vector<Histogram> dims)
      : dims_(std::move(dims)) {}

  size_t dim() const { return dims_.size(); }
  const Histogram& at(size_t j) const { return dims_[j]; }

  size_t SpaceBytes() const {
    size_t s = 0;
    for (const Histogram& h : dims_) s += h.SpaceBytes();
    return s;
  }

 private:
  std::vector<Histogram> dims_;
};

/// Builds per-dimension frequency arrays F'_j from the coordinates of the
/// given points (decomposition of Eqn. 3).
std::vector<FrequencyArray> PerDimFrequencies(const Dataset& data,
                                              std::span<const PointId> ids,
                                              uint32_t ndom);

/// Builds d histograms of `num_buckets` buckets each with the chosen
/// builder. `freqs` must have one array per dimension.
Status BuildIndividual(const std::vector<FrequencyArray>& freqs,
                       uint32_t num_buckets, BuilderKind kind,
                       IndividualHistograms* out);

}  // namespace eeb::hist

#endif  // EEB_HIST_INDIVIDUAL_H_
