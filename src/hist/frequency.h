// Frequency arrays over the integer value domain, and O(1) prefix statistics
// used by the DP histogram builders.
//
// Two frequency arrays appear in the paper:
//   F[x]  — value frequency in the data (drives equi-depth / V-optimal),
//   F'[x] — frequency of x among the coordinates of the workload's
//           near-result candidates QR (Eqn. 3; drives the kNN-optimal DP).

#ifndef EEB_HIST_FREQUENCY_H_
#define EEB_HIST_FREQUENCY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/dataset.h"
#include "common/types.h"

namespace eeb::hist {

/// Dense frequency array over [0, ndom). Entries are doubles so workload
/// weighting is possible.
class FrequencyArray {
 public:
  explicit FrequencyArray(uint32_t ndom) : counts_(ndom, 0.0) {}

  uint32_t ndom() const { return static_cast<uint32_t>(counts_.size()); }

  void Add(uint32_t value, double weight = 1.0) { counts_[value] += weight; }

  /// Accumulates another array over the same domain — the merge step for
  /// per-thread frequency shards built concurrently (docs/CONCURRENCY.md).
  /// Domains must match; extra entries in `other` are a caller bug and are
  /// ignored defensively.
  void Merge(const FrequencyArray& other) {
    const size_t n = counts_.size() < other.counts_.size()
                         ? counts_.size()
                         : other.counts_.size();
    for (size_t i = 0; i < n; ++i) counts_[i] += other.counts_[i];
  }

  double operator[](uint32_t value) const { return counts_[value]; }

  double Total() const {
    double t = 0;
    for (double c : counts_) t += c;
    return t;
  }

  /// Counts every coordinate of every point in `data` (plain data F[x]).
  static FrequencyArray FromDataset(const Dataset& data, uint32_t ndom);

  /// Counts every coordinate of the given points only (used to build F'
  /// from the QR multiset of workload near-results, Eqn. 3).
  static FrequencyArray FromPoints(const Dataset& data,
                                   std::span<const PointId> ids,
                                   uint32_t ndom);

 private:
  std::vector<double> counts_;
};

/// Prefix sums of F, x*F and x^2*F allowing O(1) evaluation of bucket terms:
///   Count(l, u)   = sum_{x in [l,u]} F[x]
///   Upsilon(l, u) = Count(l,u) * (u-l)^2                  (Eqn. 4, metric M3)
///   Sse(l, u)     = sum F[x]^2-ish variance of frequencies (V-optimal)
class PrefixStats {
 public:
  explicit PrefixStats(const FrequencyArray& f);

  uint32_t ndom() const { return static_cast<uint32_t>(sum_.size() - 1); }

  /// sum of F[x] for x in [l, u], inclusive.
  double Count(uint32_t l, uint32_t u) const {
    return sum_[u + 1] - sum_[l];
  }

  /// Upsilon([l,u]) = (sum F'[x]) * (u-l)^2 — the per-bucket term of metric
  /// M3 (paper Eqn. 4).
  double Upsilon(uint32_t l, uint32_t u) const {
    const double w = static_cast<double>(u - l);
    return Count(l, u) * w * w;
  }

  /// Sum of squared deviations of the frequencies in [l,u] from their mean —
  /// the per-bucket SSE term of the V-optimal metric.
  double Sse(uint32_t l, uint32_t u) const {
    const double n = static_cast<double>(u - l + 1);
    const double s = Count(l, u);
    const double s2 = sumsq_[u + 1] - sumsq_[l];
    return s2 - (s * s) / n;
  }

 private:
  std::vector<double> sum_;    // prefix of F[x]
  std::vector<double> sumsq_;  // prefix of F[x]^2
};

}  // namespace eeb::hist

#endif  // EEB_HIST_FREQUENCY_H_
