#include "hist/builders.h"

namespace eeb::hist {

Status BuildEquiWidth(uint32_t ndom, uint32_t num_buckets, Histogram* out) {
  if (ndom == 0 || num_buckets == 0) {
    return Status::InvalidArgument("ndom and num_buckets must be positive");
  }
  if (num_buckets > ndom) num_buckets = ndom;

  std::vector<Bucket> buckets;
  buckets.reserve(num_buckets);
  // Distribute the domain as evenly as possible: the first (ndom % B)
  // buckets get one extra value.
  const uint32_t base = ndom / num_buckets;
  const uint32_t extra = ndom % num_buckets;
  uint32_t lo = 0;
  for (uint32_t i = 0; i < num_buckets; ++i) {
    const uint32_t width = base + (i < extra ? 1 : 0);
    buckets.push_back({lo, lo + width - 1});
    lo += width;
  }
  return Histogram::Create(std::move(buckets), ndom, out);
}

}  // namespace eeb::hist
