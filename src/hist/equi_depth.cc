#include "hist/builders.h"

namespace eeb::hist {

Status BuildEquiDepth(const FrequencyArray& f, uint32_t num_buckets,
                      Histogram* out) {
  const uint32_t ndom = f.ndom();
  if (ndom == 0 || num_buckets == 0) {
    return Status::InvalidArgument("ndom and num_buckets must be positive");
  }
  if (num_buckets > ndom) num_buckets = ndom;

  const double total = f.Total();
  std::vector<Bucket> buckets;
  buckets.reserve(num_buckets);

  uint32_t lo = 0;
  double acc = 0.0;
  double consumed = 0.0;
  for (uint32_t x = 0; x < ndom; ++x) {
    acc += f[x];
    const uint32_t remaining_buckets =
        num_buckets - static_cast<uint32_t>(buckets.size());
    const uint32_t remaining_values = ndom - x - 1;
    // Close the bucket when it reached its fair share of the remaining mass,
    // or when we must cut to leave one value per remaining bucket.
    const double target =
        (total - consumed) / static_cast<double>(remaining_buckets);
    const bool must_cut = remaining_values < remaining_buckets;
    const bool reached = remaining_buckets > 1 && acc >= target && acc > 0.0;
    if (must_cut || reached || x == ndom - 1) {
      buckets.push_back({lo, x});
      consumed += acc;
      acc = 0.0;
      lo = x + 1;
      if (buckets.size() == num_buckets) break;
    }
  }
  // If frequencies ran out early (trailing zeros), extend the last bucket.
  if (lo < ndom) {
    if (buckets.empty()) {
      buckets.push_back({0, ndom - 1});
    } else {
      buckets.back().hi = ndom - 1;
    }
  }
  return Histogram::Create(std::move(buckets), ndom, out);
}

}  // namespace eeb::hist
