// Histogram construction algorithms (paper Sec. 3.3-3.5):
//   BuildEquiWidth  — HC-W: equal-width buckets,
//   BuildEquiDepth  — HC-D: equal total frequency per bucket (also the
//                     VA-file encoding per [Weber&Blott]),
//   BuildVOptimal   — HC-V: DP minimizing the SSE selectivity-estimation
//                     metric [Jagadish et al., VLDB'98],
//   BuildKnnOptimal — HC-O: the paper's contribution, DP minimizing metric
//                     M3 over the workload frequency array F' (Algorithm 2)
//                     with the Lemma-3 monotonicity pruning.
//
// All builders return histograms with at most `num_buckets` buckets tiling
// [0, ndom); code length is ceil(log2(B)).

#ifndef EEB_HIST_BUILDERS_H_
#define EEB_HIST_BUILDERS_H_

#include <cstdint>

#include "common/status.h"
#include "hist/frequency.h"
#include "hist/histogram.h"

namespace eeb::hist {

/// Statistics of a DP builder run, for the Lemma-3 ablation benchmark.
struct DpStats {
  uint64_t cells = 0;           ///< (n, m) cells evaluated
  uint64_t inner_iterations = 0;  ///< split positions t examined
  uint64_t pruned_breaks = 0;   ///< inner loops cut short by Lemma 3
};

/// HC-W. Buckets have equal width (the last one absorbs the remainder).
Status BuildEquiWidth(uint32_t ndom, uint32_t num_buckets, Histogram* out);

/// HC-D. Greedy equal-frequency partition of `f`; every bucket is non-empty
/// in value range even when frequencies are concentrated.
Status BuildEquiDepth(const FrequencyArray& f, uint32_t num_buckets,
                      Histogram* out);

/// HC-V. Dynamic program minimizing sum-of-SSE over buckets.
Status BuildVOptimal(const FrequencyArray& f, uint32_t num_buckets,
                     Histogram* out);

/// MaxDiff [Poosala et al., VLDB'96]: places bucket boundaries at the
/// B-1 largest adjacent frequency differences. Completes the classical
/// selectivity-estimation family ([18],[19]) the paper contrasts HC-O
/// against; like HC-D/HC-V it ignores the workload and is therefore not
/// expected to prune as well.
Status BuildMaxDiff(const FrequencyArray& f, uint32_t num_buckets,
                    Histogram* out);

/// HC-O (Algorithm 2). Dynamic program minimizing metric
/// M3 = sum_buckets sum_{x in [l,u]} F'[x] * (u-l)^2 with the Lemma-3
/// early-termination. `fprime` is the workload near-result frequency array
/// (Eqn. 3). Pass `use_lemma3_pruning=false` only for the ablation bench.
Status BuildKnnOptimal(const FrequencyArray& fprime, uint32_t num_buckets,
                       Histogram* out, DpStats* stats = nullptr,
                       bool use_lemma3_pruning = true);

/// Metric M3 of a histogram under F' (Lemma 2's right-hand side). Lower is
/// better for kNN pruning power.
double MetricM3(const Histogram& h, const FrequencyArray& fprime);

/// Classic SSE selectivity-estimation metric (what V-optimal minimizes).
double MetricSse(const Histogram& h, const FrequencyArray& f);

}  // namespace eeb::hist

#endif  // EEB_HIST_BUILDERS_H_
