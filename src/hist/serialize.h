// Serialization of histograms. The paper's maintenance story (Sec. 3.5)
// rebuilds the histogram and cache periodically (e.g. daily) from the
// latest query log; persisting the histogram lets query servers load the
// current build instead of re-running the DP.
//
// Format (little-endian): magic u32, ndom u32, num_buckets u32, then per
// bucket lo u32 / hi u32. Individual bundles prepend a dimension count.

#ifndef EEB_HIST_SERIALIZE_H_
#define EEB_HIST_SERIALIZE_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "hist/histogram.h"
#include "hist/individual.h"
#include "storage/env.h"

namespace eeb::hist {

/// Appends the wire form of `h` to `out`.
void AppendHistogram(const Histogram& h, std::string* out);

/// Parses one histogram from the front of `in`; advances `in` past it.
Status ParseHistogram(std::string_view* in, Histogram* out);

/// Appends a per-dimension bundle.
void AppendIndividual(const IndividualHistograms& hs, std::string* out);

/// Parses a per-dimension bundle from the front of `in`.
Status ParseIndividual(std::string_view* in, IndividualHistograms* out);

/// Convenience file round trip through an Env.
Status SaveHistogram(storage::Env* env, const std::string& path,
                     const Histogram& h);
Status LoadHistogram(storage::Env* env, const std::string& path,
                     Histogram* out);

}  // namespace eeb::hist

#endif  // EEB_HIST_SERIALIZE_H_
