#include "hist/frequency.h"

namespace eeb::hist {

FrequencyArray FrequencyArray::FromDataset(const Dataset& data,
                                           uint32_t ndom) {
  FrequencyArray f(ndom);
  const size_t n = data.size();
  const size_t d = data.dim();
  for (size_t i = 0; i < n; ++i) {
    auto p = data.point(static_cast<PointId>(i));
    for (size_t j = 0; j < d; ++j) {
      uint32_t v = static_cast<uint32_t>(p[j]);
      if (v >= ndom) v = ndom - 1;
      f.Add(v);
    }
  }
  return f;
}

FrequencyArray FrequencyArray::FromPoints(const Dataset& data,
                                          std::span<const PointId> ids,
                                          uint32_t ndom) {
  FrequencyArray f(ndom);
  const size_t d = data.dim();
  for (PointId id : ids) {
    auto p = data.point(id);
    for (size_t j = 0; j < d; ++j) {
      uint32_t v = static_cast<uint32_t>(p[j]);
      if (v >= ndom) v = ndom - 1;
      f.Add(v);
    }
  }
  return f;
}

PrefixStats::PrefixStats(const FrequencyArray& f) {
  const uint32_t n = f.ndom();
  sum_.assign(n + 1, 0.0);
  sumsq_.assign(n + 1, 0.0);
  for (uint32_t x = 0; x < n; ++x) {
    sum_[x + 1] = sum_[x] + f[x];
    sumsq_[x + 1] = sumsq_[x] + f[x] * f[x];
  }
}

}  // namespace eeb::hist
