#include "hist/serialize.h"

#include <cstring>
#include <vector>

namespace eeb::hist {
namespace {

constexpr uint32_t kHistMagic = 0x48454542;  // "BEEH"
constexpr uint32_t kBundleMagic = 0x49454542;  // "BEEI"

void PutU32(uint32_t v, std::string* out) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

Status GetU32(std::string_view* in, uint32_t* v) {
  if (in->size() < 4) return Status::Corruption("histogram blob truncated");
  std::memcpy(v, in->data(), 4);
  in->remove_prefix(4);
  return Status::OK();
}

}  // namespace

void AppendHistogram(const Histogram& h, std::string* out) {
  PutU32(kHistMagic, out);
  PutU32(h.ndom(), out);
  PutU32(h.num_buckets(), out);
  for (const Bucket& b : h.buckets()) {
    PutU32(b.lo, out);
    PutU32(b.hi, out);
  }
}

Status ParseHistogram(std::string_view* in, Histogram* out) {
  uint32_t magic, ndom, count;
  EEB_RETURN_IF_ERROR(GetU32(in, &magic));
  if (magic != kHistMagic) return Status::Corruption("bad histogram magic");
  EEB_RETURN_IF_ERROR(GetU32(in, &ndom));
  EEB_RETURN_IF_ERROR(GetU32(in, &count));
  if (count == 0 || count > ndom) {
    return Status::Corruption("bad histogram bucket count");
  }
  std::vector<Bucket> buckets(count);
  for (uint32_t i = 0; i < count; ++i) {
    EEB_RETURN_IF_ERROR(GetU32(in, &buckets[i].lo));
    EEB_RETURN_IF_ERROR(GetU32(in, &buckets[i].hi));
  }
  // Histogram::Create re-validates the tiling, so corrupt interval data is
  // rejected rather than producing an inconsistent lookup table.
  return Histogram::Create(std::move(buckets), ndom, out);
}

void AppendIndividual(const IndividualHistograms& hs, std::string* out) {
  PutU32(kBundleMagic, out);
  PutU32(static_cast<uint32_t>(hs.dim()), out);
  for (size_t j = 0; j < hs.dim(); ++j) AppendHistogram(hs.at(j), out);
}

Status ParseIndividual(std::string_view* in, IndividualHistograms* out) {
  uint32_t magic, dims;
  EEB_RETURN_IF_ERROR(GetU32(in, &magic));
  if (magic != kBundleMagic) return Status::Corruption("bad bundle magic");
  EEB_RETURN_IF_ERROR(GetU32(in, &dims));
  std::vector<Histogram> parsed(dims);
  for (uint32_t j = 0; j < dims; ++j) {
    EEB_RETURN_IF_ERROR(ParseHistogram(in, &parsed[j]));
  }
  *out = IndividualHistograms(std::move(parsed));
  return Status::OK();
}

Status SaveHistogram(storage::Env* env, const std::string& path,
                     const Histogram& h) {
  std::string blob;
  AppendHistogram(h, &blob);
  std::unique_ptr<storage::WritableFile> f;
  EEB_RETURN_IF_ERROR(env->NewWritableFile(path, &f));
  auto write_body = [&]() -> Status {
    EEB_RETURN_IF_ERROR(f->Append(blob.data(), blob.size()));
    return f->Close();
  };
  return storage::CleanupIfError(env, path, write_body());
}

Status LoadHistogram(storage::Env* env, const std::string& path,
                     Histogram* out) {
  std::unique_ptr<storage::RandomAccessFile> f;
  EEB_RETURN_IF_ERROR(env->NewRandomAccessFile(path, &f));
  std::string blob(f->Size(), '\0');
  EEB_RETURN_IF_ERROR(f->Read(0, blob.size(), blob.data()));
  std::string_view view(blob);
  return ParseHistogram(&view, out);
}

}  // namespace eeb::hist
