// Histogram core (paper Def. 6-8). A histogram partitions the integer value
// domain [0, ndom) into B contiguous buckets; the bucket position of a value
// is its tau-bit code, tau = ceil(log2(B)). The same structure backs every
// global histogram variant (HC-W, HC-D, HC-V, HC-O) and, instantiated per
// dimension, the individual histograms (iHC-*).

#ifndef EEB_HIST_HISTOGRAM_H_
#define EEB_HIST_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "common/bitops.h"
#include "common/status.h"
#include "common/types.h"

namespace eeb::hist {

/// One bucket: the inclusive value interval [lo..hi] it covers (Def. 6).
/// Frequencies are not stored — the paper's cache only needs positions and
/// intervals ("we only care about the bucket position i and its interval").
struct Bucket {
  uint32_t lo = 0;
  uint32_t hi = 0;

  uint32_t width() const { return hi - lo; }  // (ui - li), as in metric M3
};

/// Immutable histogram over the integer domain [0, ndom). Buckets are
/// contiguous, ordered and cover the whole domain, so Lookup is total.
class Histogram {
 public:
  Histogram() = default;

  /// Validates that `buckets` tile [0, ndom) and builds the O(1) lookup
  /// table. Fails with InvalidArgument on gaps, overlaps or empty input.
  static Status Create(std::vector<Bucket> buckets, uint32_t ndom,
                       Histogram* out);

  uint32_t num_buckets() const { return static_cast<uint32_t>(buckets_.size()); }
  uint32_t ndom() const { return ndom_; }

  /// Code length tau = ceil(log2(B)) (Sec. 3.1).
  uint32_t code_length() const { return CeilLog2(num_buckets()); }

  /// Bucket lookup H(v) (Def. 7). `value` must be < ndom().
  BucketId Lookup(uint32_t value) const { return lut_[value]; }

  const Bucket& bucket(BucketId b) const { return buckets_[b]; }
  const std::vector<Bucket>& buckets() const { return buckets_; }

  /// Serialized footprint in bytes: two 32-bit interval endpoints per bucket
  /// (what Table 3 reports as histogram space).
  size_t SpaceBytes() const { return buckets_.size() * 2 * sizeof(uint32_t); }

 private:
  uint32_t ndom_ = 0;
  std::vector<Bucket> buckets_;
  std::vector<BucketId> lut_;  // value -> bucket position
};

}  // namespace eeb::hist

#endif  // EEB_HIST_HISTOGRAM_H_
