#include "hist/histogram.h"

namespace eeb::hist {

Status Histogram::Create(std::vector<Bucket> buckets, uint32_t ndom,
                         Histogram* out) {
  if (buckets.empty()) return Status::InvalidArgument("no buckets");
  if (ndom == 0) return Status::InvalidArgument("empty domain");
  uint32_t expect = 0;
  for (const Bucket& b : buckets) {
    if (b.lo != expect) {
      return Status::InvalidArgument("buckets must tile the domain");
    }
    if (b.hi < b.lo) return Status::InvalidArgument("bucket hi < lo");
    expect = b.hi + 1;
  }
  if (expect != ndom) {
    return Status::InvalidArgument("buckets do not cover [0, ndom)");
  }

  out->ndom_ = ndom;
  out->buckets_ = std::move(buckets);
  out->lut_.resize(ndom);
  for (BucketId i = 0; i < out->buckets_.size(); ++i) {
    const Bucket& b = out->buckets_[i];
    for (uint32_t v = b.lo; v <= b.hi; ++v) out->lut_[v] = i;
  }
  return Status::OK();
}

}  // namespace eeb::hist
