#include "hist/builders.h"

#include <algorithm>

namespace eeb::hist {

Status BuildMaxDiff(const FrequencyArray& f, uint32_t num_buckets,
                    Histogram* out) {
  const uint32_t ndom = f.ndom();
  if (ndom == 0 || num_buckets == 0) {
    return Status::InvalidArgument("ndom and num_buckets must be positive");
  }
  if (num_buckets > ndom) num_buckets = ndom;

  // Rank boundary positions x (a boundary after value x) by the adjacent
  // frequency difference |F[x+1] - F[x]|, ties by position for determinism.
  std::vector<uint32_t> positions(ndom - 1);
  for (uint32_t x = 0; x + 1 < ndom; ++x) positions[x] = x;
  std::stable_sort(positions.begin(), positions.end(),
                   [&](uint32_t a, uint32_t b) {
                     const double da = std::abs(f[a + 1] - f[a]);
                     const double db = std::abs(f[b + 1] - f[b]);
                     if (da != db) return da > db;
                     return a < b;
                   });

  std::vector<uint32_t> cuts(positions.begin(),
                             positions.begin() +
                                 std::min<size_t>(num_buckets - 1,
                                                  positions.size()));
  std::sort(cuts.begin(), cuts.end());

  std::vector<Bucket> buckets;
  uint32_t lo = 0;
  for (uint32_t cut : cuts) {
    buckets.push_back({lo, cut});
    lo = cut + 1;
  }
  buckets.push_back({lo, ndom - 1});
  return Histogram::Create(std::move(buckets), ndom, out);
}

}  // namespace eeb::hist
