#include "hist/builders.h"

#include <limits>

namespace eeb::hist {
namespace {

// Shared DP skeleton: minimizes sum over buckets of `cost(l, u)` where cost
// is provided by the caller. Reconstructs bucket boundaries from the split
// table. Used by both V-optimal (SSE cost) and the kNN-optimal builder
// (Upsilon cost, with Lemma-3 pruning enabled).
template <typename CostFn>
Status RunIntervalDp(uint32_t ndom, uint32_t num_buckets, CostFn cost,
                     bool monotone_prune, Histogram* out, DpStats* stats) {
  if (ndom == 0 || num_buckets == 0) {
    return Status::InvalidArgument("ndom and num_buckets must be positive");
  }
  if (num_buckets > ndom) num_buckets = ndom;

  const uint32_t kNoSplit = ndom;  // sentinel for "single bucket"
  // opt[m][n]: minimum cost covering values [0..n] with at most m+1 buckets.
  std::vector<std::vector<double>> opt(
      num_buckets, std::vector<double>(ndom, 0.0));
  std::vector<std::vector<uint32_t>> pos(
      num_buckets, std::vector<uint32_t>(ndom, kNoSplit));

  for (uint32_t n = 0; n < ndom; ++n) {
    opt[0][n] = cost(0, n);
    if (stats) stats->cells++;
  }
  for (uint32_t m = 1; m < num_buckets; ++m) {
    for (uint32_t n = 0; n < ndom; ++n) {
      if (stats) stats->cells++;
      // Using fewer buckets is always allowed ("at most m buckets").
      double best = opt[m - 1][n];
      uint32_t best_t = pos[m - 1][n];
      // t = last value of the previous prefix; the last bucket is [t+1..n].
      for (uint32_t t = n; t-- > 0;) {
        if (stats) stats->inner_iterations++;
        const double last = cost(t + 1, n);
        const double cand = opt[m - 1][t] + last;
        if (cand < best) {
          best = cand;
          best_t = t;
        } else if (monotone_prune && last >= best) {
          // Lemma 3: cost([t'+1, n]) only grows as t' decreases, so no
          // earlier split can beat `best`.
          if (stats) stats->pruned_breaks++;
          break;
        }
      }
      opt[m][n] = best;
      pos[m][n] = best_t;
    }
  }

  // Reconstruct buckets by walking the split table from the full domain.
  std::vector<Bucket> rev;
  uint32_t n = ndom - 1;
  uint32_t m = num_buckets - 1;
  while (true) {
    const uint32_t t = pos[m][n];
    if (t == kNoSplit || m == 0) {
      rev.push_back({0, n});
      break;
    }
    rev.push_back({t + 1, n});
    n = t;
    --m;
  }
  std::vector<Bucket> buckets(rev.rbegin(), rev.rend());
  return Histogram::Create(std::move(buckets), ndom, out);
}

}  // namespace

Status BuildVOptimal(const FrequencyArray& f, uint32_t num_buckets,
                     Histogram* out) {
  PrefixStats ps(f);
  auto cost = [&ps](uint32_t l, uint32_t u) { return ps.Sse(l, u); };
  // SSE is not monotone in the Lemma-3 sense, so no pruning here.
  return RunIntervalDp(f.ndom(), num_buckets, cost, /*monotone_prune=*/false,
                       out, nullptr);
}

Status BuildKnnOptimal(const FrequencyArray& fprime, uint32_t num_buckets,
                       Histogram* out, DpStats* stats,
                       bool use_lemma3_pruning) {
  PrefixStats ps(fprime);
  auto cost = [&ps](uint32_t l, uint32_t u) { return ps.Upsilon(l, u); };
  return RunIntervalDp(fprime.ndom(), num_buckets, cost, use_lemma3_pruning,
                       out, stats);
}

double MetricM3(const Histogram& h, const FrequencyArray& fprime) {
  PrefixStats ps(fprime);
  double total = 0.0;
  for (const Bucket& b : h.buckets()) total += ps.Upsilon(b.lo, b.hi);
  return total;
}

double MetricSse(const Histogram& h, const FrequencyArray& f) {
  PrefixStats ps(f);
  double total = 0.0;
  for (const Bucket& b : h.buckets()) total += ps.Sse(b.lo, b.hi);
  return total;
}

}  // namespace eeb::hist
