// Lower/upper Euclidean distance bounds between a query point and the
// approximate (code) representation of a data point — the dist+ / dist-
// formulas of paper Sec. 3.2. A code fixes, per dimension, the interval the
// true coordinate lies in; the bounds are the nearest/farthest distances to
// the implied hyper-rectangle.
//
// Interval semantics: the paper works on integer value domains, where bucket
// i covers the integer values {li..ui} and the interval edges are exactly
// [li, ui]. Real-valued coordinates discretize into bucket i when they fall
// in the half-open real interval [li, ui + 1); using ui as the upper edge
// would produce INVALID lower bounds (a coordinate of 123.7 lies outside
// [123, 123]). Every function below therefore takes an `integral` flag:
//   integral = true   coordinates are known integers -> tight paper-exact
//                     edges [li, ui],
//   integral = false  (default, always safe) real coordinates -> edges
//                     [li, ui + 1).

#ifndef EEB_HIST_BOUNDS_H_
#define EEB_HIST_BOUNDS_H_

#include <cmath>
#include <span>

#include "hist/histogram.h"
#include "hist/individual.h"

namespace eeb::hist {

/// Per-dimension squared contribution to dist- given interval edges [lo, hi].
inline double LowerTerm(double q, double lo, double hi) {
  if (q < lo) {
    const double diff = lo - q;
    return diff * diff;
  }
  if (q > hi) {
    const double diff = q - hi;
    return diff * diff;
  }
  return 0.0;  // pl.j <= q.j <= pu.j
}

/// Per-dimension squared contribution to dist+ given interval edges [lo, hi].
inline double UpperTerm(double q, double lo, double hi) {
  const double a = std::fabs(q - lo);
  const double b = std::fabs(q - hi);
  const double m = a > b ? a : b;
  return m * m;
}

/// dist-/dist+ of an approximate point under a single global histogram
/// (Def. 8 encoding). `codes` holds one bucket position per dimension.
inline void CodeBoundsGlobal(const Histogram& h, std::span<const Scalar> q,
                             std::span<const BucketId> codes, double* lb,
                             double* ub, bool integral = false) {
  const double pad = integral ? 0.0 : 1.0;
  double lo_acc = 0.0;
  double hi_acc = 0.0;
  for (size_t j = 0; j < q.size(); ++j) {
    const Bucket& b = h.bucket(codes[j]);
    const double qj = q[j];
    const double hi_edge = static_cast<double>(b.hi) + pad;
    lo_acc += LowerTerm(qj, b.lo, hi_edge);
    hi_acc += UpperTerm(qj, b.lo, hi_edge);
  }
  *lb = std::sqrt(lo_acc);
  *ub = std::sqrt(hi_acc);
}

/// dist-/dist+ under individual per-dimension histograms (Sec. 3.6.2).
inline void CodeBoundsIndividual(const IndividualHistograms& hs,
                                 std::span<const Scalar> q,
                                 std::span<const BucketId> codes, double* lb,
                                 double* ub, bool integral = false) {
  const double pad = integral ? 0.0 : 1.0;
  double lo_acc = 0.0;
  double hi_acc = 0.0;
  for (size_t j = 0; j < q.size(); ++j) {
    const Bucket& b = hs.at(j).bucket(codes[j]);
    const double qj = q[j];
    const double hi_edge = static_cast<double>(b.hi) + pad;
    lo_acc += LowerTerm(qj, b.lo, hi_edge);
    hi_acc += UpperTerm(qj, b.lo, hi_edge);
  }
  *lb = std::sqrt(lo_acc);
  *ub = std::sqrt(hi_acc);
}

/// Error-vector norm ||eps(c)|| (Def. 10): the L2 norm of per-dimension
/// interval widths of the code. Used by the cost model (Thm. 2) and in
/// tests of Lemma 1 (dist+ - dist <= ||eps||).
inline double ErrorVectorNorm(const Histogram& h,
                              std::span<const BucketId> codes,
                              bool integral = false) {
  const double pad = integral ? 0.0 : 1.0;
  double acc = 0.0;
  for (BucketId c : codes) {
    const double w = static_cast<double>(h.bucket(c).width()) + pad;
    acc += w * w;
  }
  return std::sqrt(acc);
}

}  // namespace eeb::hist

#endif  // EEB_HIST_BOUNDS_H_
