#include "hist/individual.h"

namespace eeb::hist {

std::vector<FrequencyArray> PerDimFrequencies(const Dataset& data,
                                              std::span<const PointId> ids,
                                              uint32_t ndom) {
  const size_t d = data.dim();
  std::vector<FrequencyArray> freqs(d, FrequencyArray(ndom));
  for (PointId id : ids) {
    auto p = data.point(id);
    for (size_t j = 0; j < d; ++j) {
      uint32_t v = static_cast<uint32_t>(p[j]);
      if (v >= ndom) v = ndom - 1;
      freqs[j].Add(v);
    }
  }
  return freqs;
}

Status BuildIndividual(const std::vector<FrequencyArray>& freqs,
                       uint32_t num_buckets, BuilderKind kind,
                       IndividualHistograms* out) {
  std::vector<Histogram> dims(freqs.size());
  for (size_t j = 0; j < freqs.size(); ++j) {
    Status st;
    switch (kind) {
      case BuilderKind::kEquiWidth:
        st = BuildEquiWidth(freqs[j].ndom(), num_buckets, &dims[j]);
        break;
      case BuilderKind::kEquiDepth:
        st = BuildEquiDepth(freqs[j], num_buckets, &dims[j]);
        break;
      case BuilderKind::kVOptimal:
        st = BuildVOptimal(freqs[j], num_buckets, &dims[j]);
        break;
      case BuilderKind::kKnnOptimal:
        st = BuildKnnOptimal(freqs[j], num_buckets, &dims[j]);
        break;
    }
    EEB_RETURN_IF_ERROR(st);
  }
  *out = IndividualHistograms(std::move(dims));
  return Status::OK();
}

}  // namespace eeb::hist
