// Multi-dimensional histogram (paper Sec. 3.6.2, mHC-R): the space is
// partitioned into B bounding rectangles; the approximate representation of
// a point is the identifier of its enclosing rectangle (a single tau-bit
// code per point, not per dimension). The builder lives in index/rtree
// (leaf MBRs of a bulk-loaded R-tree); this file holds the data structure
// and the distance-bound logic against an MBR.

#ifndef EEB_HIST_MULTIDIM_HISTOGRAM_H_
#define EEB_HIST_MULTIDIM_HISTOGRAM_H_

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/bitops.h"
#include "common/types.h"

namespace eeb::hist {

/// Axis-aligned bounding rectangle in d dimensions.
struct Mbr {
  std::vector<Scalar> lo;
  std::vector<Scalar> hi;

  size_t dim() const { return lo.size(); }

  /// Grows the MBR to include `p`.
  void Expand(std::span<const Scalar> p) {
    if (lo.empty()) {
      lo.assign(p.begin(), p.end());
      hi.assign(p.begin(), p.end());
      return;
    }
    for (size_t j = 0; j < p.size(); ++j) {
      if (p[j] < lo[j]) lo[j] = p[j];
      if (p[j] > hi[j]) hi[j] = p[j];
    }
  }

  /// Lower bound of the Euclidean distance from q to any point inside.
  double MinDist(std::span<const Scalar> q) const {
    double acc = 0.0;
    for (size_t j = 0; j < lo.size(); ++j) {
      double diff = 0.0;
      if (q[j] < lo[j]) {
        diff = lo[j] - q[j];
      } else if (q[j] > hi[j]) {
        diff = q[j] - hi[j];
      }
      acc += diff * diff;
    }
    return std::sqrt(acc);
  }

  /// Upper bound of the Euclidean distance from q to any point inside.
  double MaxDist(std::span<const Scalar> q) const {
    double acc = 0.0;
    for (size_t j = 0; j < lo.size(); ++j) {
      const double a = std::fabs(static_cast<double>(q[j]) - lo[j]);
      const double b = std::fabs(static_cast<double>(q[j]) - hi[j]);
      const double m = a > b ? a : b;
      acc += m * m;
    }
    return std::sqrt(acc);
  }
};

/// The histogram itself: B rectangles plus nothing else. Point->bucket
/// assignments are computed at build time (each point belongs to the R-tree
/// leaf that stores it) and carried by the cache, not recomputed here.
class MultiDimHistogram {
 public:
  MultiDimHistogram() = default;
  explicit MultiDimHistogram(std::vector<Mbr> buckets)
      : buckets_(std::move(buckets)) {}

  uint32_t num_buckets() const { return static_cast<uint32_t>(buckets_.size()); }

  /// Code length of one point: ceil(log2(B)) bits total (Sec. 3.6.2).
  uint32_t code_length() const { return CeilLog2(num_buckets()); }

  const Mbr& bucket(BucketId b) const { return buckets_[b]; }

  /// Serialized footprint: 2*d scalars per rectangle.
  size_t SpaceBytes() const {
    size_t s = 0;
    for (const Mbr& b : buckets_) s += 2 * b.dim() * sizeof(Scalar);
    return s;
  }

 private:
  std::vector<Mbr> buckets_;
};

}  // namespace eeb::hist

#endif  // EEB_HIST_MULTIDIM_HISTOGRAM_H_
