// Cache interface used by the kNN engine (paper Fig. 3). A cache answers a
// probe for candidate `id` with distance bounds [lb, ub] relative to the
// query: exact caches return lb == ub == dist, approximate (code) caches
// return the dist-/dist+ interval, misses return false. The engine treats
// all cache flavors uniformly, which is what makes the framework generic
// across EXACT / HC-* / C-VA / mHC-R.

#ifndef EEB_CACHE_KNN_CACHE_H_
#define EEB_CACHE_KNN_CACHE_H_

#include <cstdint>
#include <span>
#include <string>

#include "common/types.h"
#include "obs/metrics.h"

namespace eeb::cache {

/// Hit/miss accounting for a cache (feeds rho_hit in the experiments).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;

  double HitRatio() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }

  void Reset() { *this = CacheStats{}; }
};

/// Abstract cache of (approximate) point representations.
class KnnCache {
 public:
  virtual ~KnnCache() = default;

  /// Probes for candidate `id` against query `q`. On a hit returns true and
  /// fills `*lb` / `*ub`. On a miss returns false.
  virtual bool Probe(std::span<const Scalar> q, PointId id, double* lb,
                     double* ub) = 0;

  /// Admission hook called by the engine after a candidate was fetched from
  /// disk (its exact coordinates are supplied). Static policies (HFF)
  /// ignore it; LRU caches insert/refresh.
  virtual void Admit(PointId id, std::span<const Scalar> exact) {
    (void)id;
    (void)exact;
  }

  /// Bytes one cached item occupies (the paper's cache-size accounting).
  virtual size_t item_bytes() const = 0;

  /// Items currently cached.
  virtual size_t size() const = 0;

  /// Item capacity of the configured byte budget (0 if unbounded/unknown).
  virtual size_t capacity_items() const { return 0; }

  /// Binds this cache's instruments in `registry` under `prefix`:
  /// hit/miss counters, HFF-fill and LRU-admission insert counters, an
  /// eviction counter, and occupancy/capacity/item-size gauges. Pass
  /// nullptr to detach. Safe to call again after a refill. Counters record
  /// activity from the moment of binding onward; events that happened while
  /// unbound are not replayed.
  void BindMetrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "cache") {
    if (registry == nullptr) {
      obs_ = Instruments{};
      return;
    }
    const bool was_bound = obs_.hits != nullptr;
    obs_.hits = registry->GetCounter(prefix + ".hits");
    obs_.misses = registry->GetCounter(prefix + ".misses");
    obs_.fill_inserts = registry->GetCounter(prefix + ".fill_inserts");
    obs_.admits = registry->GetCounter(prefix + ".admits");
    obs_.evictions = registry->GetCounter(prefix + ".evictions");
    obs_.items = registry->GetGauge(prefix + ".items");
    obs_.capacity = registry->GetGauge(prefix + ".capacity_items");
    obs_.item_size = registry->GetGauge(prefix + ".item_bytes");
    obs_.capacity->Set(static_cast<double>(capacity_items()));
    obs_.item_size->Set(static_cast<double>(item_bytes()));
    if (!was_bound) published_ = CurrentTotals();
    PublishMetrics();
  }

  /// Flushes events accumulated since the previous publish into the bound
  /// instruments (one atomic add per counter) and refreshes the occupancy
  /// gauge. The engine calls this once per query, which keeps the
  /// per-candidate Note* hooks free of atomic operations. No-op when
  /// unbound.
  void PublishMetrics() {
    if (obs_.hits == nullptr) return;
    const EventTotals now = CurrentTotals();
    obs_.hits->Add(now.hits - published_.hits);
    obs_.misses->Add(now.misses - published_.misses);
    obs_.fill_inserts->Add(now.fill_inserts - published_.fill_inserts);
    obs_.admits->Add(now.admits - published_.admits);
    obs_.evictions->Add(now.evictions - published_.evictions);
    published_ = now;
    SyncOccupancy();
  }

  CacheStats& stats() { return stats_; }
  const CacheStats& stats() const { return stats_; }

 protected:
  // Event hooks implementations call instead of touching stats_ directly.
  // They are on the per-candidate hot path, so they only bump plain
  // counters; PublishMetrics() moves the deltas into the registry.
  void NoteHit() { stats_.hits++; }
  void NoteMiss() { stats_.misses++; }
  void NoteFillInsert() { totals_.fill_inserts++; }
  void NoteAdmit() { totals_.admits++; }
  void NoteEviction() { totals_.evictions++; }
  void SyncOccupancy() {
    if (obs_.items != nullptr) obs_.items->Set(static_cast<double>(size()));
  }

  struct Instruments {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* fill_inserts = nullptr;
    obs::Counter* admits = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Gauge* items = nullptr;
    obs::Gauge* capacity = nullptr;
    obs::Gauge* item_size = nullptr;
  };

  // Cumulative event totals (plain integers; one writer). `published_`
  // remembers the totals as of the last PublishMetrics() so only deltas are
  // pushed into the shared registry.
  struct EventTotals {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t fill_inserts = 0;
    uint64_t admits = 0;
    uint64_t evictions = 0;
  };

  EventTotals CurrentTotals() const {
    EventTotals t = totals_;
    t.hits = stats_.hits;
    t.misses = stats_.misses;
    return t;
  }

  CacheStats stats_;
  EventTotals totals_;
  EventTotals published_;
  Instruments obs_;
};

}  // namespace eeb::cache

#endif  // EEB_CACHE_KNN_CACHE_H_
