// Cache interface used by the kNN engine (paper Fig. 3). A cache answers a
// probe for candidate `id` with distance bounds [lb, ub] relative to the
// query: exact caches return lb == ub == dist, approximate (code) caches
// return the dist-/dist+ interval, misses return false. The engine treats
// all cache flavors uniformly, which is what makes the framework generic
// across EXACT / HC-* / C-VA / mHC-R.
//
// Concurrency: Probe/Admit are safe to call from many engine threads at
// once (docs/CONCURRENCY.md). Hit/miss/admission events land in per-thread
// counter shards — one cache-line-padded block of relaxed atomics per
// thread slot, so concurrent readers never bounce a shared line — and are
// merged on snapshot (stats(), PublishMetrics()). Static (HFF) caches are
// immutable after Fill and probe lock-free; LRU caches serialize their
// mutating probe/admission path behind an internal mutex (see
// CodeCacheBase / ExactCache).

#ifndef EEB_CACHE_KNN_CACHE_H_
#define EEB_CACHE_KNN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "obs/metrics.h"

namespace eeb::cache {

/// Hit/miss accounting for a cache (feeds rho_hit in the experiments).
/// Returned by value from KnnCache::stats() as a merged point-in-time
/// snapshot of the per-thread shards.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;

  double HitRatio() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }

  void Reset() { *this = CacheStats{}; }
};

/// Abstract cache of (approximate) point representations.
class KnnCache {
 public:
  virtual ~KnnCache() = default;

  /// Probes for candidate `id` against query `q`. On a hit returns true and
  /// fills `*lb` / `*ub`. On a miss returns false. Thread-safe.
  virtual bool Probe(std::span<const Scalar> q, PointId id, double* lb,
                     double* ub) = 0;

  /// Admission hook called by the engine after a candidate was fetched from
  /// disk (its exact coordinates are supplied). Static policies (HFF)
  /// ignore it; LRU caches insert/refresh. Thread-safe.
  virtual void Admit(PointId id, std::span<const Scalar> exact) {
    (void)id;
    (void)exact;
  }

  /// Bytes one cached item occupies (the paper's cache-size accounting).
  virtual size_t item_bytes() const = 0;

  /// Items currently cached.
  virtual size_t size() const = 0;

  /// Item capacity of the configured byte budget (0 if unbounded/unknown).
  virtual size_t capacity_items() const { return 0; }

  /// Binds this cache's instruments in `registry` under `prefix`:
  /// hit/miss counters, HFF-fill and LRU-admission insert counters, an
  /// eviction counter, and occupancy/capacity/item-size gauges. Pass
  /// nullptr to detach. Safe to call again after a refill. Counters record
  /// activity from the moment of binding onward; events that happened while
  /// unbound are not replayed.
  void BindMetrics(obs::MetricsRegistry* registry,
                   const std::string& prefix = "cache") EEB_EXCLUDES(publish_mu_) {
    MutexLock lock(publish_mu_);
    if (registry == nullptr) {
      obs_ = Instruments{};
      return;
    }
    const bool was_bound = obs_.hits != nullptr;
    obs_.hits = registry->GetCounter(prefix + ".hits");
    obs_.misses = registry->GetCounter(prefix + ".misses");
    obs_.fill_inserts = registry->GetCounter(prefix + ".fill_inserts");
    obs_.admits = registry->GetCounter(prefix + ".admits");
    obs_.evictions = registry->GetCounter(prefix + ".evictions");
    obs_.items = registry->GetGauge(prefix + ".items");
    obs_.capacity = registry->GetGauge(prefix + ".capacity_items");
    obs_.item_size = registry->GetGauge(prefix + ".item_bytes");
    obs_.capacity->Set(static_cast<double>(capacity_items()));
    obs_.item_size->Set(static_cast<double>(item_bytes()));
    if (!was_bound) published_ = CurrentTotals();
    PublishLocked();
  }

  /// Flushes events accumulated since the previous publish into the bound
  /// instruments (one atomic add per counter) and refreshes the occupancy
  /// gauge. The engine calls this once per query; concurrent callers
  /// serialize on an internal mutex so each delta is pushed exactly once.
  /// No-op when unbound.
  void PublishMetrics() EEB_EXCLUDES(publish_mu_) {
    MutexLock lock(publish_mu_);
    PublishLocked();
  }

  /// Merged snapshot of the per-thread hit/miss shards. Concurrent probes
  /// may keep recording; each shard is read once (relaxed).
  CacheStats stats() const {
    const EventTotals t = CurrentTotals();
    return CacheStats{t.hits, t.misses};
  }

  /// Cumulative activity totals (merged shards), for the live-telemetry
  /// cache tap: obs::WindowedMetrics differences successive readings into
  /// windowed hit/admit/evict rates.
  struct CacheActivity {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t admits = 0;
    uint64_t evictions = 0;
  };
  CacheActivity activity() const {
    const EventTotals t = CurrentTotals();
    return CacheActivity{t.hits, t.misses, t.admits, t.evictions};
  }

  /// Generation id stamped by the publisher (System::PublishGeneration):
  /// monotonically increasing, 0 = never published. Surfaced in per-query
  /// explain records so a slow query can be tied to the cache generation
  /// that served it.
  void set_generation_id(uint64_t id) {
    generation_id_.store(id, std::memory_order_relaxed);
  }
  uint64_t generation_id() const {
    return generation_id_.load(std::memory_order_relaxed);
  }

 protected:
  // Event hooks implementations call instead of keeping their own tallies.
  // They are on the per-candidate hot path: one relaxed fetch_add on the
  // calling thread's private shard line — no shared-line contention, no
  // lock. PublishMetrics() merges the shards and moves deltas into the
  // registry.
  void NoteHit() { Shard().hits.fetch_add(1, std::memory_order_relaxed); }
  void NoteMiss() { Shard().misses.fetch_add(1, std::memory_order_relaxed); }
  void NoteFillInsert() {
    Shard().fill_inserts.fetch_add(1, std::memory_order_relaxed);
  }
  void NoteAdmit() { Shard().admits.fetch_add(1, std::memory_order_relaxed); }
  void NoteEviction() {
    Shard().evictions.fetch_add(1, std::memory_order_relaxed);
  }
  // `size()` implementations must be safe to call concurrently with
  // probes/admissions (the LRU caches keep an atomic item count for this;
  // see CodeCacheBase::size / ExactCache::size).
  void SyncOccupancy() EEB_REQUIRES(publish_mu_) {
    if (obs_.items != nullptr) obs_.items->Set(static_cast<double>(size()));
  }

  struct Instruments {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
    obs::Counter* fill_inserts = nullptr;
    obs::Counter* admits = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Gauge* items = nullptr;
    obs::Gauge* capacity = nullptr;
    obs::Gauge* item_size = nullptr;
  };

  // Cumulative event totals, merged across shards. `published_` remembers
  // the totals as of the last publish so only deltas are pushed into the
  // shared registry.
  struct EventTotals {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t fill_inserts = 0;
    uint64_t admits = 0;
    uint64_t evictions = 0;
  };

  EventTotals CurrentTotals() const {
    EventTotals t;
    for (const EventShard& s : shards_) {
      t.hits += s.hits.load(std::memory_order_relaxed);
      t.misses += s.misses.load(std::memory_order_relaxed);
      t.fill_inserts += s.fill_inserts.load(std::memory_order_relaxed);
      t.admits += s.admits.load(std::memory_order_relaxed);
      t.evictions += s.evictions.load(std::memory_order_relaxed);
    }
    return t;
  }

 private:
  // Number of counter shards. Threads are assigned slots round-robin at
  // first use; with a worker pool at or below this size every thread owns
  // its shard line exclusively. More threads than shards still works —
  // colliding threads share a line via the (still correct) relaxed atomics.
  static constexpr size_t kStatShards = 16;

  struct alignas(64) EventShard {
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> fill_inserts{0};
    std::atomic<uint64_t> admits{0};
    std::atomic<uint64_t> evictions{0};
  };

  EventShard& Shard() {
    static std::atomic<size_t> next_slot{0};
    thread_local size_t slot =
        next_slot.fetch_add(1, std::memory_order_relaxed) % kStatShards;
    return shards_[slot];
  }

  void PublishLocked() EEB_REQUIRES(publish_mu_) {
    if (obs_.hits == nullptr) return;
    const EventTotals now = CurrentTotals();
    obs_.hits->Add(now.hits - published_.hits);
    obs_.misses->Add(now.misses - published_.misses);
    obs_.fill_inserts->Add(now.fill_inserts - published_.fill_inserts);
    obs_.admits->Add(now.admits - published_.admits);
    obs_.evictions->Add(now.evictions - published_.evictions);
    published_ = now;
    SyncOccupancy();
  }

  EventShard shards_[kStatShards] EEB_UNGUARDED(
      "per-thread cache-line shards of relaxed atomics, merged on snapshot");
  Mutex publish_mu_;  // guards obs_ binding + published_ deltas
  EventTotals published_ EEB_GUARDED_BY(publish_mu_);
  Instruments obs_ EEB_GUARDED_BY(publish_mu_);
  std::atomic<uint64_t> generation_id_{0};
};

}  // namespace eeb::cache

#endif  // EEB_CACHE_KNN_CACHE_H_
