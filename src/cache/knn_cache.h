// Cache interface used by the kNN engine (paper Fig. 3). A cache answers a
// probe for candidate `id` with distance bounds [lb, ub] relative to the
// query: exact caches return lb == ub == dist, approximate (code) caches
// return the dist-/dist+ interval, misses return false. The engine treats
// all cache flavors uniformly, which is what makes the framework generic
// across EXACT / HC-* / C-VA / mHC-R.

#ifndef EEB_CACHE_KNN_CACHE_H_
#define EEB_CACHE_KNN_CACHE_H_

#include <cstdint>
#include <span>

#include "common/types.h"

namespace eeb::cache {

/// Hit/miss accounting for a cache (feeds rho_hit in the experiments).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;

  double HitRatio() const {
    const uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }

  void Reset() { *this = CacheStats{}; }
};

/// Abstract cache of (approximate) point representations.
class KnnCache {
 public:
  virtual ~KnnCache() = default;

  /// Probes for candidate `id` against query `q`. On a hit returns true and
  /// fills `*lb` / `*ub`. On a miss returns false.
  virtual bool Probe(std::span<const Scalar> q, PointId id, double* lb,
                     double* ub) = 0;

  /// Admission hook called by the engine after a candidate was fetched from
  /// disk (its exact coordinates are supplied). Static policies (HFF)
  /// ignore it; LRU caches insert/refresh.
  virtual void Admit(PointId id, std::span<const Scalar> exact) {
    (void)id;
    (void)exact;
  }

  /// Bytes one cached item occupies (the paper's cache-size accounting).
  virtual size_t item_bytes() const = 0;

  /// Items currently cached.
  virtual size_t size() const = 0;

  CacheStats& stats() { return stats_; }
  const CacheStats& stats() const { return stats_; }

 protected:
  CacheStats stats_;
};

}  // namespace eeb::cache

#endif  // EEB_CACHE_KNN_CACHE_H_
