#include "cache/node_cache.h"

#include <algorithm>
#include <cstring>

#include "common/distance.h"
#include "cache/code_cache.h"

namespace eeb::cache {

Status ExactNodeCache::Fill(
    const Dataset& data, const std::vector<std::vector<PointId>>& leaf_points,
    std::span<const uint32_t> nodes_by_freq) {
  dim_ = data.dim();
  const size_t per_point = dim_ * sizeof(Scalar) + sizeof(PointId);
  for (uint32_t node : nodes_by_freq) {
    if (node >= leaf_points.size()) {
      return Status::InvalidArgument("node id out of range");
    }
    const auto& ids = leaf_points[node];
    const size_t node_bytes = ids.size() * per_point;
    if (bytes_used_ + node_bytes > capacity_bytes_) break;
    NodeData nd;
    nd.ids = ids;
    nd.values.resize(ids.size() * dim_);
    for (size_t i = 0; i < ids.size(); ++i) {
      auto p = data.point(ids[i]);
      std::memcpy(nd.values.data() + i * dim_, p.data(),
                  dim_ * sizeof(Scalar));
    }
    nodes_.emplace(node, std::move(nd));
    bytes_used_ += node_bytes;
  }
  return Status::OK();
}

bool ExactNodeCache::ProbeNode(uint32_t node, std::span<const Scalar> q,
                               const NodePointFn& fn) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    stats_.misses++;
    return false;
  }
  stats_.hits++;
  const NodeData& nd = it->second;
  for (size_t i = 0; i < nd.ids.size(); ++i) {
    std::span<const Scalar> p{nd.values.data() + i * dim_, dim_};
    const double d = L2(q, p);
    fn(nd.ids[i], d, d);
  }
  return true;
}

ApproxNodeCache::ApproxNodeCache(const hist::Histogram* h, size_t dim,
                                 size_t capacity_bytes, bool integral)
    : hist_(h),
      dim_(dim),
      integral_(integral),
      tau_(std::max<uint32_t>(1, h->code_length())),
      capacity_bytes_(capacity_bytes),
      scratch_(dim) {}

Status ApproxNodeCache::Fill(
    const Dataset& data, const std::vector<std::vector<PointId>>& leaf_points,
    std::span<const uint32_t> nodes_by_freq) {
  if (data.dim() != dim_) return Status::InvalidArgument("dim mismatch");
  const size_t words_per_point = WordsForBits(dim_ * tau_);
  const size_t per_point =
      words_per_point * sizeof(uint64_t) + sizeof(PointId);
  std::vector<BucketId> codes(dim_);
  for (uint32_t node : nodes_by_freq) {
    if (node >= leaf_points.size()) {
      return Status::InvalidArgument("node id out of range");
    }
    const auto& ids = leaf_points[node];
    const size_t node_bytes = ids.size() * per_point;
    if (bytes_used_ + node_bytes > capacity_bytes_) break;
    NodeData nd;
    nd.ids = ids;
    nd.words.assign(ids.size() * words_per_point, 0);
    for (size_t i = 0; i < ids.size(); ++i) {
      EncodeGlobal(*hist_, data.point(ids[i]), codes);
      uint64_t* base = nd.words.data() + i * words_per_point;
      size_t bit = 0;
      for (size_t j = 0; j < dim_; ++j) {
        const size_t word = bit >> 6;
        const unsigned shift = bit & 63;
        base[word] |= static_cast<uint64_t>(codes[j]) << shift;
        if (shift + tau_ > 64) {
          base[word + 1] |= static_cast<uint64_t>(codes[j]) >> (64 - shift);
        }
        bit += tau_;
      }
    }
    nodes_.emplace(node, std::move(nd));
    bytes_used_ += node_bytes;
  }
  return Status::OK();
}

bool ApproxNodeCache::ProbeNode(uint32_t node, std::span<const Scalar> q,
                                const NodePointFn& fn) {
  auto it = nodes_.find(node);
  if (it == nodes_.end()) {
    stats_.misses++;
    return false;
  }
  stats_.hits++;
  const NodeData& nd = it->second;
  const size_t words_per_point = WordsForBits(dim_ * tau_);
  for (size_t i = 0; i < nd.ids.size(); ++i) {
    const uint64_t* base = nd.words.data() + i * words_per_point;
    size_t bit = 0;
    for (size_t j = 0; j < dim_; ++j) {
      scratch_[j] = static_cast<BucketId>(UnpackBits(base, bit, tau_));
      bit += tau_;
    }
    double lb, ub;
    hist::CodeBoundsGlobal(*hist_, q, scratch_, &lb, &ub, integral_);
    fn(nd.ids[i], lb, ub);
  }
  return true;
}

}  // namespace eeb::cache
