#include "cache/exact_cache.h"

#include <cstring>

namespace eeb::cache {

ExactCache::ExactCache(size_t dim, size_t capacity_bytes, bool lru)
    : dim_(dim),
      capacity_items_(item_bytes() == 0 ? 0 : capacity_bytes / item_bytes()),
      lru_(lru) {}

Status ExactCache::Fill(const Dataset& data,
                        std::span<const PointId> ids_by_freq) {
  if (data.dim() != dim_) {
    return Status::InvalidArgument("dataset dim mismatch");
  }
  // Pre-publication, so the lock is uncontended; holding it lets the
  // analysis prove the fill path instead of exempting it.
  MutexLock lock(mu_);
  for (PointId id : ids_by_freq) {
    if (slot_of_.size() >= capacity_items_) break;
    if (slot_of_.count(id)) continue;
    const uint32_t slot = static_cast<uint32_t>(slot_of_.size());
    values_.resize(values_.size() + dim_);
    auto p = data.point(id);
    std::memcpy(values_.data() + static_cast<size_t>(slot) * dim_, p.data(),
                dim_ * sizeof(Scalar));
    slot_of_[id] = slot;
    if (lru_) lru_list_.Insert(id);
    item_count_.store(slot_of_.size(), std::memory_order_relaxed);
    NoteFillInsert();
  }
  return Status::OK();
}

bool ExactCache::Probe(std::span<const Scalar> q, PointId id, double* lb,
                       double* ub) {
  if (lru_) {
    // The recency touch mutates the list and a concurrent Admit may recycle
    // this slot mid-read, so the whole probe (including the distance over
    // the slot's values) holds the lock.
    MutexLock lock(mu_);
    return ProbeLocked(q, id, lb, ub);
  }
  return ProbeStatic(q, id, lb, ub);
}

bool ExactCache::ProbeLocked(std::span<const Scalar> q, PointId id,
                             double* lb, double* ub) {
  auto it = slot_of_.find(id);
  if (it == slot_of_.end()) {
    NoteMiss();
    return false;
  }
  NoteHit();
  lru_list_.Touch(id);
  std::span<const Scalar> p{
      values_.data() + static_cast<size_t>(it->second) * dim_, dim_};
  const double d = L2(q, p);
  *lb = d;
  *ub = d;
  return true;
}

// Static cache: slot table and values are immutable after Fill, which runs
// before the generation is published — the unlocked reads the suppression
// on the declaration admits race with nothing.
bool ExactCache::ProbeStatic(std::span<const Scalar> q, PointId id,
                             double* lb, double* ub) {
  auto it = slot_of_.find(id);
  if (it == slot_of_.end()) {
    NoteMiss();
    return false;
  }
  NoteHit();
  std::span<const Scalar> p{
      values_.data() + static_cast<size_t>(it->second) * dim_, dim_};
  const double d = L2(q, p);
  *lb = d;
  *ub = d;
  return true;
}

uint32_t ExactCache::SlotFor() {
  if (slot_of_.size() < capacity_items_) {
    if (!free_slots_.empty()) {
      uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    const uint32_t slot = static_cast<uint32_t>(values_.size() / dim_);
    values_.resize(values_.size() + dim_);
    return slot;
  }
  // Evict the LRU victim and recycle its slot.
  PointId victim = lru_list_.EvictBack();
  auto it = slot_of_.find(victim);
  const uint32_t slot = it->second;
  slot_of_.erase(it);
  NoteEviction();
  return slot;
}

void ExactCache::Admit(PointId id, std::span<const Scalar> exact) {
  if (!lru_ || capacity_items_ == 0) return;
  MutexLock lock(mu_);
  auto it = slot_of_.find(id);
  if (it != slot_of_.end()) {
    lru_list_.Touch(id);
    return;
  }
  const uint32_t slot = SlotFor();
  std::memcpy(values_.data() + static_cast<size_t>(slot) * dim_, exact.data(),
              dim_ * sizeof(Scalar));
  slot_of_[id] = slot;
  lru_list_.Insert(id);
  item_count_.store(slot_of_.size(), std::memory_order_relaxed);
  NoteAdmit();
}

}  // namespace eeb::cache
