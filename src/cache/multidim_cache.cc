#include "cache/multidim_cache.h"

#include <algorithm>

#include "common/bitops.h"

namespace eeb::cache {

MultiDimCodeCache::MultiDimCodeCache(const hist::MultiDimHistogram* h,
                                     size_t capacity_bytes)
    : hist_(h),
      store_(/*codes_per_item=*/1,
             std::max<uint32_t>(1, h->code_length())) {
  capacity_items_ =
      store_.item_bytes() == 0 ? 0 : capacity_bytes / store_.item_bytes();
}

Status MultiDimCodeCache::Fill(std::span<const PointId> ids_by_freq,
                               std::span<const BucketId> assignment) {
  for (PointId id : ids_by_freq) {
    if (slot_of_.size() >= capacity_items_) break;
    if (id >= assignment.size()) {
      return Status::InvalidArgument("assignment table too small");
    }
    if (slot_of_.count(id)) continue;
    const uint32_t slot = store_.AllocateSlot();
    const BucketId code = assignment[id];
    store_.Write(slot, {&code, 1});
    slot_of_[id] = slot;
    NoteFillInsert();
  }
  return Status::OK();
}

bool MultiDimCodeCache::Probe(std::span<const Scalar> q, PointId id,
                              double* lb, double* ub) {
  auto it = slot_of_.find(id);
  if (it == slot_of_.end()) {
    NoteMiss();
    return false;
  }
  NoteHit();
  BucketId code;
  store_.Read(it->second, {&code, 1});
  const hist::Mbr& mbr = hist_->bucket(code);
  *lb = mbr.MinDist(q);
  *ub = mbr.MaxDist(q);
  return true;
}

}  // namespace eeb::cache
