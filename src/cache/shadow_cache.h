// Shadow caches: key-only LRU/FIFO simulations of alternative cache
// configurations, driven by the live probe stream. Each shadow sees exactly
// the candidate keys the real cache is probed with and answers the question
// "what hit ratio would configuration X get on this workload" — no
// payloads, no cached bounds, just membership and a replacement policy.
//
// A shadow is sized at construction (preallocated node pool, intrusive
// index-linked list, open-addressed key table), so OnAccess never
// allocates: one mutex, one table probe, at most one eviction. Hit/miss
// totals are plain relaxed atomics, so the windowed-metrics shadow tap
// reads them without taking any shadow's lock.
//
// Shadows deliberately survive cache generation swaps: the simulated
// configurations answer for the workload, not for any one published cache.

#ifndef EEB_CACHE_SHADOW_CACHE_H_
#define EEB_CACHE_SHADOW_CACHE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "obs/window.h"

namespace eeb::cache {

struct ShadowConfig {
  enum class Policy { kLru, kFifo };

  std::string name;  // metric segment; sanitized to [a-z0-9_] on use
  size_t capacity_items = 0;
  Policy policy = Policy::kLru;
};

const char* ShadowPolicyName(ShadowConfig::Policy policy);

/// Lowercases and maps every character outside [a-z0-9_] to '_' so the name
/// always forms a valid metric segment ("shadow" when empty).
std::string SanitizeShadowName(const std::string& raw);

/// Parses a comma-separated shadow spec. Each entry is either
/// "<policy>:<capacity_items>" (named "<policy>_<capacity>") or
/// "<name>:<policy>:<capacity_items>"; policy is "lru" or "fifo".
/// E.g. "lru:512,fifo:512,big:lru:2048".
Status ParseShadowConfigs(const std::string& spec,
                          std::vector<ShadowConfig>* out);

/// A spread of configurations around the live cache's capacity: LRU at
/// half/same/double the size plus FIFO at the same size — the standard
/// "would a different size or policy pay off" panel.
std::vector<ShadowConfig> DefaultShadowConfigs(size_t capacity_items);

class ShadowCache {
 public:
  explicit ShadowCache(ShadowConfig config);

  ShadowCache(const ShadowCache&) = delete;
  ShadowCache& operator=(const ShadowCache&) = delete;

  /// Simulates one probe of `key`: a hit refreshes recency (LRU only); a
  /// miss admits the key, evicting per policy when full. Allocation-free.
  void OnAccess(uint64_t key) EEB_EXCLUDES(mu_);

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  size_t size() const EEB_EXCLUDES(mu_);
  const ShadowConfig& config() const { return config_; }

 private:
  static constexpr uint32_t kNil = 0xffffffffu;

  struct Node {
    uint64_t key = 0;
    uint32_t prev = kNil;
    uint32_t next = kNil;
  };

  struct Slot {
    uint64_t key_plus1 = 0;  // 0 = empty
    uint32_t node = 0;
  };

  uint32_t TableFindLocked(uint64_t key) const EEB_REQUIRES(mu_);
  void TableInsertLocked(uint64_t key, uint32_t node) EEB_REQUIRES(mu_);
  void TableEraseLocked(uint64_t key) EEB_REQUIRES(mu_);
  void UnlinkLocked(uint32_t node) EEB_REQUIRES(mu_);
  void PushFrontLocked(uint32_t node) EEB_REQUIRES(mu_);

  const ShadowConfig config_;
  const size_t table_mask_;

  mutable Mutex mu_;
  std::vector<Node> nodes_ EEB_GUARDED_BY(mu_);
  std::vector<Slot> table_ EEB_GUARDED_BY(mu_);
  uint32_t head_ EEB_GUARDED_BY(mu_) = kNil;
  uint32_t tail_ EEB_GUARDED_BY(mu_) = kNil;
  size_t size_ EEB_GUARDED_BY(mu_) = 0;

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

/// The set of shadows a probe stream fans out to, plus the lock-free tap
/// the windowed metrics pull simulated totals through.
class ShadowCacheSet {
 public:
  explicit ShadowCacheSet(std::vector<ShadowConfig> configs);

  ShadowCacheSet(const ShadowCacheSet&) = delete;
  ShadowCacheSet& operator=(const ShadowCacheSet&) = delete;

  void OnAccess(uint64_t key);

  /// Cumulative totals per shadow, in configuration order — the payload of
  /// WindowedMetrics::SetShadowTap. Reads no locks.
  std::vector<obs::ShadowTapEntry> TapSamples() const;

  size_t size() const { return shadows_.size(); }
  const ShadowCache& shadow(size_t i) const { return *shadows_[i]; }

 private:
  std::vector<std::unique_ptr<ShadowCache>> shadows_;
};

}  // namespace eeb::cache

#endif  // EEB_CACHE_SHADOW_CACHE_H_
