// mHC-R cache (paper Sec. 3.6.2): the approximate representation of a point
// is the identifier of the R-tree-leaf bucket enclosing it — a single
// tau-bit code per point. Probing returns MinDist/MaxDist of the query to
// the bucket's MBR. Static (HFF) policy only: assignments are fixed by the
// build-time space partition.

#ifndef EEB_CACHE_MULTIDIM_CACHE_H_
#define EEB_CACHE_MULTIDIM_CACHE_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "cache/code_store.h"
#include "cache/knn_cache.h"
#include "hist/multidim_histogram.h"

namespace eeb::cache {

/// Cache of single-code (bucket id) approximations under a multi-dimensional
/// histogram.
class MultiDimCodeCache : public KnnCache {
 public:
  /// The histogram must outlive the cache.
  MultiDimCodeCache(const hist::MultiDimHistogram* h, size_t capacity_bytes);

  /// Static fill: `assignment[id]` is the bucket containing point `id`.
  /// Inserts ids in the given (frequency-descending) order until full.
  Status Fill(std::span<const PointId> ids_by_freq,
              std::span<const BucketId> assignment);

  bool Probe(std::span<const Scalar> q, PointId id, double* lb,
             double* ub) override;

  size_t item_bytes() const override { return store_.item_bytes(); }
  size_t size() const override { return slot_of_.size(); }
  size_t capacity_items() const override { return capacity_items_; }

 private:
  const hist::MultiDimHistogram* hist_;
  size_t capacity_items_;
  CodeStore store_;
  std::unordered_map<PointId, uint32_t> slot_of_;
};

}  // namespace eeb::cache

#endif  // EEB_CACHE_MULTIDIM_CACHE_H_
