#include "cache/code_cache.h"

#include <algorithm>

namespace eeb::cache {
namespace {

uint32_t ClampValue(Scalar v, uint32_t ndom) {
  if (v < 0) return 0;
  uint32_t x = static_cast<uint32_t>(v);
  return x >= ndom ? ndom - 1 : x;
}

uint32_t TauFor(uint32_t num_buckets) {
  return std::max<uint32_t>(1, CeilLog2(num_buckets));
}

}  // namespace

void EncodeGlobal(const hist::Histogram& h, std::span<const Scalar> p,
                  std::span<BucketId> out) {
  const uint32_t ndom = h.ndom();
  for (size_t j = 0; j < p.size(); ++j) {
    out[j] = h.Lookup(ClampValue(p[j], ndom));
  }
}

void EncodeIndividual(const hist::IndividualHistograms& hs,
                      std::span<const Scalar> p, std::span<BucketId> out) {
  for (size_t j = 0; j < p.size(); ++j) {
    const hist::Histogram& h = hs.at(j);
    out[j] = h.Lookup(ClampValue(p[j], h.ndom()));
  }
}

CodeCacheBase::CodeCacheBase(size_t dim, uint32_t tau, size_t capacity_bytes,
                             bool lru)
    : dim_(dim),
      lru_(lru),
      store_(dim, tau),
      capacity_items_(store_.item_bytes() == 0
                          ? 0
                          : capacity_bytes / store_.item_bytes()) {}

std::span<BucketId> CodeCacheBase::Scratch() const {
  thread_local std::vector<BucketId> buf;
  if (buf.size() < dim_) buf.resize(dim_);
  return {buf.data(), dim_};
}

// Static fill runs before the cache is published to engine threads; the
// Fill callers nevertheless hold mu_ (uncontended, once per build) so the
// analysis can prove the slot-table writes instead of suppressing them.
void CodeCacheBase::InsertStatic(PointId id, std::span<const BucketId> codes) {
  if (slot_of_.size() >= capacity_items_ || slot_of_.count(id)) return;
  const uint32_t slot = store_.AllocateSlot();
  store_.Write(slot, codes);
  slot_of_[id] = slot;
  if (lru_) lru_list_.Insert(id);
  item_count_.store(slot_of_.size(), std::memory_order_relaxed);
  NoteFillInsert();
}

void CodeCacheBase::AdmitCodes(PointId id, std::span<const BucketId> codes) {
  if (capacity_items_ == 0) return;
  MutexLock lock(mu_);
  auto it = slot_of_.find(id);
  if (it != slot_of_.end()) {
    lru_list_.Touch(id);
    return;
  }
  uint32_t slot;
  if (slot_of_.size() < capacity_items_) {
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = store_.AllocateSlot();
    }
  } else {
    const PointId victim = lru_list_.EvictBack();
    auto vit = slot_of_.find(victim);
    slot = vit->second;
    slot_of_.erase(vit);
    NoteEviction();
  }
  store_.Write(slot, codes);
  slot_of_[id] = slot;
  lru_list_.Insert(id);
  item_count_.store(slot_of_.size(), std::memory_order_relaxed);
  NoteAdmit();
}

bool CodeCacheBase::LookupCodes(PointId id, std::span<BucketId> codes) {
  if (lru_) {
    // The recency touch and the slot read mutate/follow shared state; the
    // whole lookup holds the lock so a concurrent eviction cannot recycle
    // the slot mid-decode.
    MutexLock lock(mu_);
    return LookupLocked(id, codes);
  }
  return LookupStatic(id, codes);
}

bool CodeCacheBase::LookupLocked(PointId id, std::span<BucketId> codes) {
  auto it = slot_of_.find(id);
  if (it == slot_of_.end()) {
    NoteMiss();
    return false;
  }
  NoteHit();
  lru_list_.Touch(id);
  store_.Read(it->second, codes);
  return true;
}

// Static cache: slot table and store are immutable after Fill, which runs
// before the generation is published to engine threads — the unlocked
// reads the suppression on the declaration admits race with nothing.
bool CodeCacheBase::LookupStatic(PointId id, std::span<BucketId> codes) {
  auto it = slot_of_.find(id);
  if (it == slot_of_.end()) {
    NoteMiss();
    return false;
  }
  NoteHit();
  store_.Read(it->second, codes);
  return true;
}

HistCodeCache::HistCodeCache(const hist::Histogram* h, size_t dim,
                             size_t capacity_bytes, bool lru, bool integral)
    : CodeCacheBase(dim, TauFor(h->num_buckets()), capacity_bytes, lru),
      hist_(h),
      integral_(integral) {}

Status HistCodeCache::Fill(const Dataset& data,
                           std::span<const PointId> ids_by_freq) {
  if (data.dim() != dim_) {
    return Status::InvalidArgument("dataset dim mismatch");
  }
  std::span<BucketId> buf = Scratch();
  // Pre-publication, so the lock is uncontended; holding it lets the
  // analysis prove the fill path instead of exempting it.
  MutexLock lock(mu_);
  for (PointId id : ids_by_freq) {
    if (slot_of_.size() >= capacity_items_) break;
    EncodeGlobal(*hist_, data.point(id), buf);
    InsertStatic(id, buf);
  }
  return Status::OK();
}

bool HistCodeCache::Probe(std::span<const Scalar> q, PointId id, double* lb,
                          double* ub) {
  std::span<BucketId> codes = Scratch();
  if (!LookupCodes(id, codes)) return false;
  hist::CodeBoundsGlobal(*hist_, q, codes, lb, ub, integral_);
  return true;
}

void HistCodeCache::Admit(PointId id, std::span<const Scalar> exact) {
  if (!lru_) return;
  std::span<BucketId> codes = Scratch();
  EncodeGlobal(*hist_, exact, codes);
  AdmitCodes(id, codes);
}

IndividualCodeCache::IndividualCodeCache(const hist::IndividualHistograms* hs,
                                         uint32_t num_buckets,
                                         size_t capacity_bytes, bool lru,
                                         bool integral)
    : CodeCacheBase(hs->dim(), TauFor(num_buckets), capacity_bytes, lru),
      hists_(hs),
      integral_(integral) {}

Status IndividualCodeCache::Fill(const Dataset& data,
                                 std::span<const PointId> ids_by_freq) {
  if (data.dim() != dim_) {
    return Status::InvalidArgument("dataset dim mismatch");
  }
  std::span<BucketId> buf = Scratch();
  // Pre-publication; see HistCodeCache::Fill.
  MutexLock lock(mu_);
  for (PointId id : ids_by_freq) {
    if (slot_of_.size() >= capacity_items_) break;
    EncodeIndividual(*hists_, data.point(id), buf);
    InsertStatic(id, buf);
  }
  return Status::OK();
}

bool IndividualCodeCache::Probe(std::span<const Scalar> q, PointId id,
                                double* lb, double* ub) {
  std::span<BucketId> codes = Scratch();
  if (!LookupCodes(id, codes)) return false;
  hist::CodeBoundsIndividual(*hists_, q, codes, lb, ub, integral_);
  return true;
}

void IndividualCodeCache::Admit(PointId id, std::span<const Scalar> exact) {
  if (!lru_) return;
  std::span<BucketId> codes = Scratch();
  EncodeIndividual(*hists_, exact, codes);
  AdmitCodes(id, codes);
}

}  // namespace eeb::cache
