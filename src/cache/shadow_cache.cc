#include "cache/shadow_cache.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace eeb::cache {
namespace {

// SplitMix64 finalizer; good single-word avalanche for the key table.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

size_t NextPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

ShadowConfig SanitizeConfig(ShadowConfig config) {
  config.capacity_items = std::max<size_t>(config.capacity_items, 1);
  config.name = SanitizeShadowName(config.name);
  return config;
}

}  // namespace

const char* ShadowPolicyName(ShadowConfig::Policy policy) {
  switch (policy) {
    case ShadowConfig::Policy::kLru:
      return "lru";
    case ShadowConfig::Policy::kFifo:
      return "fifo";
  }
  return "unknown";
}

std::string SanitizeShadowName(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    const char lc = static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
    const bool ok =
        (lc >= 'a' && lc <= 'z') || (lc >= '0' && lc <= '9') || lc == '_';
    out += ok ? lc : '_';
  }
  if (out.empty()) out = "shadow";
  return out;
}

Status ParseShadowConfigs(const std::string& spec,
                          std::vector<ShadowConfig>* out) {
  out->clear();
  size_t start = 0;
  while (start <= spec.size()) {
    size_t end = spec.find(',', start);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(start, end - start);
    start = end + 1;
    if (entry.empty()) continue;

    std::vector<std::string> fields;
    size_t fs = 0;
    while (fs <= entry.size()) {
      size_t fe = entry.find(':', fs);
      if (fe == std::string::npos) fe = entry.size();
      fields.push_back(entry.substr(fs, fe - fs));
      fs = fe + 1;
    }
    if (fields.size() != 2 && fields.size() != 3) {
      return Status::InvalidArgument("shadow config '" + entry +
                                     "': want policy:capacity or "
                                     "name:policy:capacity");
    }
    ShadowConfig config;
    const std::string& policy = fields[fields.size() - 2];
    const std::string& capacity = fields.back();
    if (policy == "lru") {
      config.policy = ShadowConfig::Policy::kLru;
    } else if (policy == "fifo") {
      config.policy = ShadowConfig::Policy::kFifo;
    } else {
      return Status::InvalidArgument("shadow config '" + entry +
                                     "': unknown policy '" + policy + "'");
    }
    uint64_t items = 0;
    if (capacity.empty()) {
      return Status::InvalidArgument("shadow config '" + entry +
                                     "': empty capacity");
    }
    for (char c : capacity) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("shadow config '" + entry +
                                       "': capacity '" + capacity +
                                       "' is not a number");
      }
      items = items * 10 + static_cast<uint64_t>(c - '0');
      if (items > (uint64_t{1} << 32)) {
        return Status::InvalidArgument("shadow config '" + entry +
                                       "': capacity too large");
      }
    }
    if (items == 0) {
      return Status::InvalidArgument("shadow config '" + entry +
                                     "': capacity must be positive");
    }
    config.capacity_items = static_cast<size_t>(items);
    if (fields.size() == 3) {
      config.name = SanitizeShadowName(fields[0]);
    } else {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%s_%llu", policy.c_str(),
                    static_cast<unsigned long long>(items));
      config.name = buf;
    }
    out->push_back(std::move(config));
  }
  return Status::OK();
}

std::vector<ShadowConfig> DefaultShadowConfigs(size_t capacity_items) {
  const size_t base = std::max<size_t>(capacity_items, 2);
  std::vector<ShadowConfig> out;
  out.push_back({"lru_half", base / 2, ShadowConfig::Policy::kLru});
  out.push_back({"lru_1x", base, ShadowConfig::Policy::kLru});
  out.push_back({"lru_2x", base * 2, ShadowConfig::Policy::kLru});
  out.push_back({"fifo_1x", base, ShadowConfig::Policy::kFifo});
  return out;
}

ShadowCache::ShadowCache(ShadowConfig config)
    : config_(SanitizeConfig(std::move(config))),
      table_mask_(NextPow2(config_.capacity_items * 2) - 1),
      nodes_(config_.capacity_items),
      table_(table_mask_ + 1) {}

void ShadowCache::OnAccess(uint64_t key) {
  MutexLock lock(mu_);
  const uint32_t node = TableFindLocked(key);
  if (node != kNil) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (config_.policy == ShadowConfig::Policy::kLru && head_ != node) {
      UnlinkLocked(node);
      PushFrontLocked(node);
    }
    return;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  uint32_t n;
  if (size_ < config_.capacity_items) {
    n = static_cast<uint32_t>(size_++);
  } else {
    n = tail_;  // oldest: LRU victim and FIFO victim coincide in this list
    UnlinkLocked(n);
    TableEraseLocked(nodes_[n].key);
  }
  nodes_[n].key = key;
  PushFrontLocked(n);
  TableInsertLocked(key, n);
}

size_t ShadowCache::size() const {
  MutexLock lock(mu_);
  return size_;
}

uint32_t ShadowCache::TableFindLocked(uint64_t key) const {
  size_t i = static_cast<size_t>(Mix64(key)) & table_mask_;
  while (true) {
    const Slot& s = table_[i];
    if (s.key_plus1 == 0) return kNil;
    if (s.key_plus1 == key + 1) return s.node;
    i = (i + 1) & table_mask_;
  }
}

void ShadowCache::TableInsertLocked(uint64_t key, uint32_t node) {
  size_t i = static_cast<size_t>(Mix64(key)) & table_mask_;
  while (table_[i].key_plus1 != 0) i = (i + 1) & table_mask_;
  table_[i].key_plus1 = key + 1;
  table_[i].node = node;
}

void ShadowCache::TableEraseLocked(uint64_t key) {
  size_t i = static_cast<size_t>(Mix64(key)) & table_mask_;
  while (table_[i].key_plus1 != key + 1) {
    if (table_[i].key_plus1 == 0) return;  // not present
    i = (i + 1) & table_mask_;
  }
  // Backward-shift deletion: probe chains stay intact with no tombstones,
  // so lookup cost never degrades under eviction churn. An entry may stay
  // put only if its home slot lies in the cyclic range (hole, j].
  size_t hole = i;
  table_[hole].key_plus1 = 0;
  size_t j = hole;
  while (true) {
    j = (j + 1) & table_mask_;
    const uint64_t kp = table_[j].key_plus1;
    if (kp == 0) break;
    const size_t home = static_cast<size_t>(Mix64(kp - 1)) & table_mask_;
    const bool home_in_range =
        hole < j ? (home > hole && home <= j) : (home > hole || home <= j);
    if (!home_in_range) {
      table_[hole] = table_[j];
      table_[j].key_plus1 = 0;
      hole = j;
    }
  }
}

void ShadowCache::UnlinkLocked(uint32_t node) {
  Node& n = nodes_[node];
  if (n.prev != kNil) {
    nodes_[n.prev].next = n.next;
  } else {
    head_ = n.next;
  }
  if (n.next != kNil) {
    nodes_[n.next].prev = n.prev;
  } else {
    tail_ = n.prev;
  }
  n.prev = kNil;
  n.next = kNil;
}

void ShadowCache::PushFrontLocked(uint32_t node) {
  Node& n = nodes_[node];
  n.prev = kNil;
  n.next = head_;
  if (head_ != kNil) nodes_[head_].prev = node;
  head_ = node;
  if (tail_ == kNil) tail_ = node;
}

ShadowCacheSet::ShadowCacheSet(std::vector<ShadowConfig> configs) {
  shadows_.reserve(configs.size());
  for (ShadowConfig& config : configs) {
    shadows_.push_back(std::make_unique<ShadowCache>(std::move(config)));
  }
}

void ShadowCacheSet::OnAccess(uint64_t key) {
  for (const std::unique_ptr<ShadowCache>& shadow : shadows_) {
    shadow->OnAccess(key);
  }
}

std::vector<obs::ShadowTapEntry> ShadowCacheSet::TapSamples() const {
  std::vector<obs::ShadowTapEntry> out;
  out.reserve(shadows_.size());
  for (const std::unique_ptr<ShadowCache>& shadow : shadows_) {
    obs::ShadowTapEntry entry;
    entry.name = shadow->config().name;
    entry.hits = shadow->hits();
    entry.misses = shadow->misses();
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace eeb::cache
