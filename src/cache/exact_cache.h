// EXACT cache baseline (paper Sec. 5.1): caches full-precision points. A hit
// yields the exact distance (lb == ub), a miss forces a disk fetch. Supports
// the static HFF fill and the dynamic LRU policy (Fig. 8).
//
// Concurrency: statically filled caches are immutable after Fill and probe
// lock-free. Under LRU, probes and admissions mutate the slot table, recency
// list and value store, so the whole mutating path serializes behind `mu_`
// (docs/CONCURRENCY.md).

#ifndef EEB_CACHE_EXACT_CACHE_H_
#define EEB_CACHE_EXACT_CACHE_H_

#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/dataset.h"
#include "common/distance.h"
#include "common/status.h"
#include "cache/code_store.h"
#include "cache/knn_cache.h"

namespace eeb::cache {

/// Cache of exact (full-precision) points.
class ExactCache : public KnnCache {
 public:
  /// @param dim             point dimensionality
  /// @param capacity_bytes  cache budget; item count = budget / item_bytes
  /// @param lru             true enables dynamic admission/eviction
  ExactCache(size_t dim, size_t capacity_bytes, bool lru = false);

  /// Static HFF fill: inserts points from `data` in the given order (callers
  /// pass ids sorted by descending workload frequency) until full.
  Status Fill(const Dataset& data, std::span<const PointId> ids_by_freq);

  bool Probe(std::span<const Scalar> q, PointId id, double* lb,
             double* ub) override;

  void Admit(PointId id, std::span<const Scalar> exact) override;

  size_t item_bytes() const override { return dim_ * sizeof(Scalar); }
  size_t size() const override { return slot_of_.size(); }
  size_t capacity_items() const override { return capacity_items_; }

 private:
  uint32_t SlotFor();  // allocates or recycles a slot (LRU); needs mu_

  size_t dim_;
  std::mutex mu_;  // guards all mutable state, LRU policy only
  size_t capacity_items_;
  bool lru_;
  std::unordered_map<PointId, uint32_t> slot_of_;
  std::vector<Scalar> values_;  // slot-major storage
  std::vector<uint32_t> free_slots_;
  LruTracker lru_list_;
};

}  // namespace eeb::cache

#endif  // EEB_CACHE_EXACT_CACHE_H_
