// EXACT cache baseline (paper Sec. 5.1): caches full-precision points. A hit
// yields the exact distance (lb == ub), a miss forces a disk fetch. Supports
// the static HFF fill and the dynamic LRU policy (Fig. 8).
//
// Concurrency: statically filled caches are immutable after Fill and probe
// lock-free. Under LRU, probes and admissions mutate the slot table, recency
// list and value store, so the whole mutating path serializes behind `mu_`
// (docs/CONCURRENCY.md).

#ifndef EEB_CACHE_EXACT_CACHE_H_
#define EEB_CACHE_EXACT_CACHE_H_

#include <atomic>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/dataset.h"
#include "common/distance.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "cache/code_store.h"
#include "cache/knn_cache.h"

namespace eeb::cache {

/// Cache of exact (full-precision) points.
class ExactCache : public KnnCache {
 public:
  /// @param dim             point dimensionality
  /// @param capacity_bytes  cache budget; item count = budget / item_bytes
  /// @param lru             true enables dynamic admission/eviction
  ExactCache(size_t dim, size_t capacity_bytes, bool lru = false);

  /// Static HFF fill: inserts points from `data` in the given order (callers
  /// pass ids sorted by descending workload frequency) until full.
  Status Fill(const Dataset& data, std::span<const PointId> ids_by_freq);

  bool Probe(std::span<const Scalar> q, PointId id, double* lb,
             double* ub) override;

  void Admit(PointId id, std::span<const Scalar> exact) override;

  size_t item_bytes() const override { return dim_ * sizeof(Scalar); }
  /// Items currently cached. Reads an atomic count maintained under `mu_`,
  /// so it is safe to call concurrently with LRU probes/admissions.
  size_t size() const override {
    return item_count_.load(std::memory_order_relaxed);
  }
  size_t capacity_items() const override { return capacity_items_; }

 private:
  /// Allocates or recycles a slot (LRU eviction path).
  uint32_t SlotFor() EEB_REQUIRES(mu_);

  /// LRU probe: the recency touch and the distance over the slot's values
  /// hold `mu_`.
  bool ProbeLocked(std::span<const Scalar> q, PointId id, double* lb,
                   double* ub) EEB_REQUIRES(mu_);

  /// Static (HFF) probe. Invariant that makes the suppression sound: a
  /// statically filled cache is immutable after Fill, which completes
  /// before the generation is published to engine threads (core/system.cc),
  /// so these unlocked reads race with nothing.
  bool ProbeStatic(std::span<const Scalar> q, PointId id, double* lb,
                   double* ub) EEB_NO_THREAD_SAFETY_ANALYSIS;

  const size_t dim_;
  const size_t capacity_items_;
  const bool lru_;
  Mutex mu_;  // guards the slot table / values / recency list
  std::unordered_map<PointId, uint32_t> slot_of_ EEB_GUARDED_BY(mu_);
  std::vector<Scalar> values_ EEB_GUARDED_BY(mu_);  // slot-major storage
  std::vector<uint32_t> free_slots_ EEB_GUARDED_BY(mu_);
  LruTracker lru_list_ EEB_GUARDED_BY(mu_);
  // Mirror of slot_of_.size(), refreshed under mu_ at the end of every
  // mutation; lets size() (and the occupancy gauge) skip the LRU lock.
  std::atomic<size_t> item_count_{0};
};

}  // namespace eeb::cache

#endif  // EEB_CACHE_EXACT_CACHE_H_
