// Leaf-node caches for tree-based indexes (paper Sec. 3.6.1): the cache item
// is a whole leaf node. EXACT caching stores the full points of the node;
// approximate caching stores their histogram codes, so several times more
// leaves fit in the same budget — the effect Fig. 16 measures.

#ifndef EEB_CACHE_NODE_CACHE_H_
#define EEB_CACHE_NODE_CACHE_H_

#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/dataset.h"
#include "common/status.h"
#include "cache/code_store.h"
#include "cache/knn_cache.h"
#include "hist/bounds.h"
#include "hist/histogram.h"

namespace eeb::cache {

/// Callback invoked per point of a cached node: (id, lb, ub). Exact caches
/// pass lb == ub == exact distance.
using NodePointFn = std::function<void(PointId, double, double)>;

/// Abstract leaf-node cache.
class NodeCache {
 public:
  virtual ~NodeCache() = default;

  /// Probes node `node`. On a hit, invokes `fn` for every point stored in
  /// the node with its distance bounds w.r.t. `q` and returns true.
  virtual bool ProbeNode(uint32_t node, std::span<const Scalar> q,
                         const NodePointFn& fn) = 0;

  /// Number of cached nodes.
  virtual size_t size() const = 0;

  /// True when hits report exact distances (lb == ub == dist), in which
  /// case the search can resolve cached points without fetching the leaf.
  virtual bool exact() const { return false; }

  CacheStats& stats() { return stats_; }
  const CacheStats& stats() const { return stats_; }

 protected:
  CacheStats stats_;
};

/// EXACT leaf cache: full-precision points per node.
class ExactNodeCache : public NodeCache {
 public:
  explicit ExactNodeCache(size_t capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  /// Static HFF fill: nodes in descending access frequency. `leaf_points`
  /// maps node -> member ids; points come from `data`.
  Status Fill(const Dataset& data,
              const std::vector<std::vector<PointId>>& leaf_points,
              std::span<const uint32_t> nodes_by_freq);

  bool ProbeNode(uint32_t node, std::span<const Scalar> q,
                 const NodePointFn& fn) override;

  size_t size() const override { return nodes_.size(); }
  bool exact() const override { return true; }
  size_t bytes_used() const { return bytes_used_; }

 private:
  struct NodeData {
    std::vector<PointId> ids;
    std::vector<Scalar> values;  // ids.size() * dim
  };

  size_t capacity_bytes_;
  size_t bytes_used_ = 0;
  size_t dim_ = 0;
  std::unordered_map<uint32_t, NodeData> nodes_;
};

/// Approximate leaf cache: per-node packed histogram codes (global H).
class ApproxNodeCache : public NodeCache {
 public:
  /// The histogram must outlive the cache. `integral` enables the tight
  /// integer-domain interval edges (see hist/bounds.h).
  ApproxNodeCache(const hist::Histogram* h, size_t dim, size_t capacity_bytes,
                  bool integral = false);

  Status Fill(const Dataset& data,
              const std::vector<std::vector<PointId>>& leaf_points,
              std::span<const uint32_t> nodes_by_freq);

  bool ProbeNode(uint32_t node, std::span<const Scalar> q,
                 const NodePointFn& fn) override;

  size_t size() const override { return nodes_.size(); }
  size_t bytes_used() const { return bytes_used_; }

  /// Bytes one point occupies in this cache (codes only).
  size_t point_bytes() const {
    return WordsForBits(dim_ * tau_) * sizeof(uint64_t);
  }

 private:
  struct NodeData {
    std::vector<PointId> ids;
    std::vector<uint64_t> words;  // packed codes, per point
  };

  const hist::Histogram* hist_;
  size_t dim_;
  bool integral_;
  uint32_t tau_;
  size_t capacity_bytes_;
  size_t bytes_used_ = 0;
  std::unordered_map<uint32_t, NodeData> nodes_;
  std::vector<BucketId> scratch_;
};

}  // namespace eeb::cache

#endif  // EEB_CACHE_NODE_CACHE_H_
