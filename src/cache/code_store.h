// Bit-packed storage for cached code words ("exploit every bit", paper
// Sec. 3.1 footnote 5): each cached item is `codes_per_item` fields of
// `bits_per_code` bits packed into consecutive 64-bit words. Slots are
// fixed-size so caches can recycle them under LRU eviction.

#ifndef EEB_CACHE_CODE_STORE_H_
#define EEB_CACHE_CODE_STORE_H_

#include <cstdint>
#include <list>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/bitops.h"
#include "common/types.h"

namespace eeb::cache {

/// Slot-addressed array of packed code tuples.
class CodeStore {
 public:
  /// @param codes_per_item  number of fields per item (d for per-dimension
  ///                        codes, 1 for multi-dimensional histogram codes)
  /// @param bits_per_code   tau, in [1, 32]
  CodeStore(size_t codes_per_item, uint32_t bits_per_code)
      : codes_per_item_(codes_per_item),
        bits_per_code_(bits_per_code),
        words_per_item_(WordsForBits(codes_per_item * bits_per_code)) {}

  /// Bytes occupied by one item (whole words, as packed in memory).
  size_t item_bytes() const { return words_per_item_ * sizeof(uint64_t); }

  size_t codes_per_item() const { return codes_per_item_; }
  uint32_t bits_per_code() const { return bits_per_code_; }

  /// Number of allocated slots.
  size_t num_slots() const {
    return words_per_item_ == 0 ? 0 : words_.size() / words_per_item_;
  }

  /// Appends a new zeroed slot and returns its index.
  uint32_t AllocateSlot() {
    const uint32_t slot = static_cast<uint32_t>(num_slots());
    words_.resize(words_.size() + words_per_item_, 0);
    return slot;
  }

  /// Overwrites slot contents with the given codes.
  void Write(uint32_t slot, std::span<const BucketId> codes) {
    uint64_t* base = words_.data() + static_cast<size_t>(slot) * words_per_item_;
    for (size_t w = 0; w < words_per_item_; ++w) base[w] = 0;
    size_t bit = 0;
    for (size_t j = 0; j < codes_per_item_; ++j) {
      const size_t word = bit >> 6;
      const unsigned shift = bit & 63;
      const uint64_t value = codes[j];
      base[word] |= value << shift;
      if (shift + bits_per_code_ > 64) {
        base[word + 1] |= value >> (64 - shift);
      }
      bit += bits_per_code_;
    }
  }

  /// Decodes slot contents into `out` (must have codes_per_item entries).
  void Read(uint32_t slot, std::span<BucketId> out) const {
    const uint64_t* base =
        words_.data() + static_cast<size_t>(slot) * words_per_item_;
    size_t bit = 0;
    for (size_t j = 0; j < codes_per_item_; ++j) {
      out[j] = static_cast<BucketId>(UnpackBits(base, bit, bits_per_code_));
      bit += bits_per_code_;
    }
  }

 private:
  size_t codes_per_item_;
  uint32_t bits_per_code_;
  size_t words_per_item_;
  std::vector<uint64_t> words_;
};

/// Simple LRU bookkeeping over point ids.
class LruTracker {
 public:
  /// Inserts id at the front (most recent). Id must not be present.
  void Insert(PointId id) {
    order_.push_front(id);
    pos_[id] = order_.begin();
  }

  /// Moves an existing id to the front.
  void Touch(PointId id) {
    auto it = pos_.find(id);
    if (it == pos_.end()) return;
    order_.splice(order_.begin(), order_, it->second);
  }

  /// Removes and returns the least recently used id.
  PointId EvictBack() {
    PointId victim = order_.back();
    order_.pop_back();
    pos_.erase(victim);
    return victim;
  }

  void Erase(PointId id) {
    auto it = pos_.find(id);
    if (it == pos_.end()) return;
    order_.erase(it->second);
    pos_.erase(it);
  }

  bool Contains(PointId id) const { return pos_.count(id) > 0; }
  size_t size() const { return pos_.size(); }

 private:
  std::list<PointId> order_;
  std::unordered_map<PointId, std::list<PointId>::iterator> pos_;
};

}  // namespace eeb::cache

#endif  // EEB_CACHE_CODE_STORE_H_
