// Histogram-code caches (the paper's proposal, Sec. 3): each cached item is
// the bit-packed approximate point p' — one tau-bit bucket position per
// dimension. A probe decodes the codes and returns the dist-/dist+ interval.
//
// Two flavors share the implementation:
//   HistCodeCache       — one global histogram H (HC-W/HC-D/HC-V/HC-O),
//   IndividualCodeCache — d per-dimension histograms (iHC-*); also used to
//                         realize the C-VA baseline (VA-file = per-dimension
//                         equi-depth encoding of all points).
//
// Concurrency (docs/CONCURRENCY.md): a statically filled (HFF) cache is
// immutable after Fill, so probes are lock-free — they only touch the
// read-only slot table / code store plus the per-thread counter shards and
// a thread_local decode buffer. Under the LRU policy probes and admissions
// mutate the slot table, recency list and store, so the whole mutating path
// serializes behind `mu_`.

#ifndef EEB_CACHE_CODE_CACHE_H_
#define EEB_CACHE_CODE_CACHE_H_

#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/dataset.h"
#include "common/status.h"
#include "cache/code_store.h"
#include "cache/knn_cache.h"
#include "hist/bounds.h"
#include "hist/histogram.h"
#include "hist/individual.h"

namespace eeb::cache {

/// Encodes an exact point into global-histogram bucket positions (Def. 8).
/// Coordinates are clamped into [0, ndom).
void EncodeGlobal(const hist::Histogram& h, std::span<const Scalar> p,
                  std::span<BucketId> out);

/// Encodes an exact point under per-dimension histograms.
void EncodeIndividual(const hist::IndividualHistograms& hs,
                      std::span<const Scalar> p, std::span<BucketId> out);

/// Common machinery of the two code caches.
class CodeCacheBase : public KnnCache {
 public:
  size_t item_bytes() const override { return store_.item_bytes(); }
  size_t size() const override { return slot_of_.size(); }
  size_t capacity_items() const override { return capacity_items_; }
  uint32_t tau() const { return store_.bits_per_code(); }

 protected:
  CodeCacheBase(size_t dim, uint32_t tau, size_t capacity_bytes, bool lru);

  /// Inserts codes for `id` (static fill path). No-op when full or present.
  void InsertStatic(PointId id, std::span<const BucketId> codes);

  /// LRU admission of codes for `id`. Takes `mu_`.
  void AdmitCodes(PointId id, std::span<const BucketId> codes);

  /// Looks up `id`; on hit decodes into `codes` (dim_ entries) and returns
  /// true. Lock-free on static caches; takes `mu_` under LRU (the recency
  /// touch and the decode must see a consistent slot).
  bool LookupCodes(PointId id, std::span<BucketId> codes);

  /// Thread-local decode/encode scratch of dim_ entries, shared across
  /// cache instances (contents never outlive one call).
  std::span<BucketId> Scratch() const;

  size_t dim_;
  size_t capacity_items_;
  bool lru_;
  CodeStore store_;
  std::unordered_map<PointId, uint32_t> slot_of_;
  std::vector<uint32_t> free_slots_;
  LruTracker lru_list_;
  std::mutex mu_;  // guards all mutable state, LRU policy only
};

/// Cache of codes under one global histogram.
class HistCodeCache : public CodeCacheBase {
 public:
  /// The histogram must outlive the cache. `integral` asserts that data
  /// coordinates are integers, enabling the paper-exact tight interval
  /// edges (see hist/bounds.h).
  HistCodeCache(const hist::Histogram* h, size_t dim, size_t capacity_bytes,
                bool lru = false, bool integral = false);

  /// Static HFF fill in the given (frequency-descending) id order.
  Status Fill(const Dataset& data, std::span<const PointId> ids_by_freq);

  bool Probe(std::span<const Scalar> q, PointId id, double* lb,
             double* ub) override;

  void Admit(PointId id, std::span<const Scalar> exact) override;

  const hist::Histogram& histogram() const { return *hist_; }

 private:
  const hist::Histogram* hist_;
  bool integral_;
};

/// Cache of codes under per-dimension histograms.
class IndividualCodeCache : public CodeCacheBase {
 public:
  IndividualCodeCache(const hist::IndividualHistograms* hs,
                      uint32_t num_buckets, size_t capacity_bytes,
                      bool lru = false, bool integral = false);

  Status Fill(const Dataset& data, std::span<const PointId> ids_by_freq);

  bool Probe(std::span<const Scalar> q, PointId id, double* lb,
             double* ub) override;

  void Admit(PointId id, std::span<const Scalar> exact) override;

 private:
  const hist::IndividualHistograms* hists_;
  bool integral_;
};

}  // namespace eeb::cache

#endif  // EEB_CACHE_CODE_CACHE_H_
