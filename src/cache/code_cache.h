// Histogram-code caches (the paper's proposal, Sec. 3): each cached item is
// the bit-packed approximate point p' — one tau-bit bucket position per
// dimension. A probe decodes the codes and returns the dist-/dist+ interval.
//
// Two flavors share the implementation:
//   HistCodeCache       — one global histogram H (HC-W/HC-D/HC-V/HC-O),
//   IndividualCodeCache — d per-dimension histograms (iHC-*); also used to
//                         realize the C-VA baseline (VA-file = per-dimension
//                         equi-depth encoding of all points).
//
// Concurrency (docs/CONCURRENCY.md): a statically filled (HFF) cache is
// immutable after Fill, so probes are lock-free — they only touch the
// read-only slot table / code store plus the per-thread counter shards and
// a thread_local decode buffer. Under the LRU policy probes and admissions
// mutate the slot table, recency list and store, so the whole mutating path
// serializes behind `mu_`.

#ifndef EEB_CACHE_CODE_CACHE_H_
#define EEB_CACHE_CODE_CACHE_H_

#include <atomic>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/dataset.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "cache/code_store.h"
#include "cache/knn_cache.h"
#include "hist/bounds.h"
#include "hist/histogram.h"
#include "hist/individual.h"

namespace eeb::cache {

/// Encodes an exact point into global-histogram bucket positions (Def. 8).
/// Coordinates are clamped into [0, ndom).
void EncodeGlobal(const hist::Histogram& h, std::span<const Scalar> p,
                  std::span<BucketId> out);

/// Encodes an exact point under per-dimension histograms.
void EncodeIndividual(const hist::IndividualHistograms& hs,
                      std::span<const Scalar> p, std::span<BucketId> out);

/// Common machinery of the two code caches.
class CodeCacheBase : public KnnCache {
 public:
  /// Immutable store config (fixed at construction); reading it through
  /// the mu_-guarded store_ member is lock-free by that invariant.
  size_t item_bytes() const override EEB_NO_THREAD_SAFETY_ANALYSIS {
    return store_.item_bytes();
  }
  /// Items currently cached. Reads an atomic count maintained under `mu_`,
  /// so it is safe to call concurrently with LRU probes/admissions (the
  /// occupancy gauge publishes it once per query).
  size_t size() const override {
    return item_count_.load(std::memory_order_relaxed);
  }
  size_t capacity_items() const override { return capacity_items_; }
  /// Immutable store config, same invariant as item_bytes().
  uint32_t tau() const EEB_NO_THREAD_SAFETY_ANALYSIS {
    return store_.bits_per_code();
  }

 protected:
  CodeCacheBase(size_t dim, uint32_t tau, size_t capacity_bytes, bool lru);

  /// Inserts codes for `id` (static fill path). No-op when full or present.
  void InsertStatic(PointId id, std::span<const BucketId> codes)
      EEB_REQUIRES(mu_);

  /// LRU admission of codes for `id`. Takes `mu_`.
  void AdmitCodes(PointId id, std::span<const BucketId> codes)
      EEB_EXCLUDES(mu_);

  /// Looks up `id`; on hit decodes into `codes` (dim_ entries) and returns
  /// true. Lock-free on static caches; takes `mu_` under LRU (the recency
  /// touch and the decode must see a consistent slot).
  bool LookupCodes(PointId id, std::span<BucketId> codes) EEB_EXCLUDES(mu_);

  /// Thread-local decode/encode scratch of dim_ entries, shared across
  /// cache instances (contents never outlive one call).
  std::span<BucketId> Scratch() const;

  Mutex mu_;  // guards the slot table / store / recency list (see below)
  const size_t dim_;
  const bool lru_;

 private:
  /// LRU lookup: the recency touch and the slot decode hold `mu_`.
  bool LookupLocked(PointId id, std::span<BucketId> codes) EEB_REQUIRES(mu_);

  /// Static (HFF) lookup. Invariant that makes the suppression sound: a
  /// statically filled cache is immutable after Fill — ConfigureCache
  /// builds the whole generation before publishing it to engine threads
  /// (core/system.cc), so these unlocked reads race with nothing.
  bool LookupStatic(PointId id, std::span<BucketId> codes)
      EEB_NO_THREAD_SAFETY_ANALYSIS;

 protected:
  CodeStore store_ EEB_GUARDED_BY(mu_);
  std::unordered_map<PointId, uint32_t> slot_of_ EEB_GUARDED_BY(mu_);
  std::vector<uint32_t> free_slots_ EEB_GUARDED_BY(mu_);
  LruTracker lru_list_ EEB_GUARDED_BY(mu_);
  // Mirror of slot_of_.size(), refreshed under mu_ at the end of every
  // mutation; lets size() (and the per-query occupancy gauge behind it)
  // read occupancy without taking the LRU lock.
  std::atomic<size_t> item_count_{0};
  const size_t capacity_items_;
};

/// Cache of codes under one global histogram.
class HistCodeCache : public CodeCacheBase {
 public:
  /// The histogram must outlive the cache. `integral` asserts that data
  /// coordinates are integers, enabling the paper-exact tight interval
  /// edges (see hist/bounds.h).
  HistCodeCache(const hist::Histogram* h, size_t dim, size_t capacity_bytes,
                bool lru = false, bool integral = false);

  /// Static HFF fill in the given (frequency-descending) id order.
  Status Fill(const Dataset& data, std::span<const PointId> ids_by_freq);

  bool Probe(std::span<const Scalar> q, PointId id, double* lb,
             double* ub) override;

  void Admit(PointId id, std::span<const Scalar> exact) override;

  const hist::Histogram& histogram() const { return *hist_; }

 private:
  const hist::Histogram* hist_;
  bool integral_;
};

/// Cache of codes under per-dimension histograms.
class IndividualCodeCache : public CodeCacheBase {
 public:
  IndividualCodeCache(const hist::IndividualHistograms* hs,
                      uint32_t num_buckets, size_t capacity_bytes,
                      bool lru = false, bool integral = false);

  Status Fill(const Dataset& data, std::span<const PointId> ids_by_freq);

  bool Probe(std::span<const Scalar> q, PointId id, double* lb,
             double* ub) override;

  void Admit(PointId id, std::span<const Scalar> exact) override;

 private:
  const hist::IndividualHistograms* hists_;
  bool integral_;
};

}  // namespace eeb::cache

#endif  // EEB_CACHE_CODE_CACHE_H_
