// iDistance [Jagadish et al., TODS'05]: metric-space index mapping each
// point to the 1-D key  i * C + dist(p, O_i)  where O_i is its nearest
// reference point (k-means center). Points sorted by key are packed into
// page-sized leaf nodes of a B+-tree; kNN search expands a radius around the
// query, visiting leaves whose key ring intersects the annulus.
//
// Per paper Fig. 7 / Sec. 3.6.1, the non-leaf part (centers + per-leaf key
// rings) stays in RAM; the leaf level is the disk-resident point set. Our
// search delegates to TreeKnnSearch with per-leaf metric lower bounds, which
// visits leaves in exactly the radius-expansion order of the original
// algorithm while also exploiting the leaf-node cache.

#ifndef EEB_INDEX_IDISTANCE_IDISTANCE_H_
#define EEB_INDEX_IDISTANCE_IDISTANCE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "index/tree_common.h"

namespace eeb::index {

struct IDistanceOptions {
  uint32_t num_partitions = 64;  ///< reference points (k-means k)
  uint32_t kmeans_iters = 10;
  uint64_t seed = 7;
  size_t page_size = storage::kDefaultPageSize;
};

/// Disk-based iDistance index with cache-aware kNN search.
class IDistance {
 public:
  /// Builds the index over `data`, writing the leaf file to `path`.
  static Status Build(storage::Env* env, const std::string& path,
                      const Dataset& data, const IDistanceOptions& options,
                      std::unique_ptr<IDistance>* out);

  /// kNN search. `cache` (leaf-node cache, nullable) is probed before any
  /// leaf is fetched from disk.
  Status Search(std::span<const Scalar> q, size_t k, cache::NodeCache* cache,
                TreeSearchResult* out) const;

  const LeafStore& store() const { return *store_; }
  size_t num_leaves() const { return store_->num_leaves(); }

  /// Per-leaf lower bounds of dist(q, .) — exposed for tests.
  void LeafLowerBounds(std::span<const Scalar> q,
                       std::vector<double>* lb) const;

 private:
  IDistance() = default;

  struct LeafMeta {
    uint32_t partition;
    double rmin;  // min dist(p, center) among members
    double rmax;  // max dist(p, center) among members
  };

  Dataset centers_;
  std::vector<LeafMeta> leaf_meta_;
  std::unique_ptr<LeafStore> store_;
};

}  // namespace eeb::index

#endif  // EEB_INDEX_IDISTANCE_IDISTANCE_H_
