#include "index/idistance/idistance.h"

#include <algorithm>
#include <cmath>

#include "common/distance.h"
#include "common/kmeans.h"

namespace eeb::index {

Status IDistance::Build(storage::Env* env, const std::string& path,
                        const Dataset& data, const IDistanceOptions& options,
                        std::unique_ptr<IDistance>* out) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  const size_t n = data.size();
  const size_t record_bytes = data.dim() * sizeof(Scalar);
  const size_t leaf_cap =
      std::max<size_t>(1, options.page_size / record_bytes);

  std::unique_ptr<IDistance> idx(new IDistance());
  KMeansResult km =
      KMeans(data, options.num_partitions, options.kmeans_iters, options.seed);
  idx->centers_ = std::move(km.centers);
  const uint32_t parts = static_cast<uint32_t>(idx->centers_.size());

  // Per partition: member ids sorted by distance to the center (the
  // B+-tree key order), chunked into page-sized leaves.
  struct Member {
    double dist;
    PointId id;
  };
  std::vector<std::vector<Member>> by_part(parts);
  for (size_t i = 0; i < n; ++i) {
    const PointId id = static_cast<PointId>(i);
    const uint32_t c = km.assign[i];
    by_part[c].push_back({L2(data.point(id), idx->centers_.point(c)), id});
  }

  std::vector<std::vector<PointId>> leaves;
  for (uint32_t c = 0; c < parts; ++c) {
    auto& members = by_part[c];
    std::sort(members.begin(), members.end(), [](const Member& a,
                                                 const Member& b) {
      if (a.dist != b.dist) return a.dist < b.dist;
      return a.id < b.id;
    });
    for (size_t start = 0; start < members.size(); start += leaf_cap) {
      const size_t stop = std::min(start + leaf_cap, members.size());
      std::vector<PointId> ids;
      ids.reserve(stop - start);
      for (size_t i = start; i < stop; ++i) ids.push_back(members[i].id);
      idx->leaf_meta_.push_back(
          {c, members[start].dist, members[stop - 1].dist});
      leaves.push_back(std::move(ids));
    }
  }

  EEB_RETURN_IF_ERROR(LeafStore::Create(env, path, data, std::move(leaves),
                                        &idx->store_, options.page_size));
  *out = std::move(idx);
  return Status::OK();
}

void IDistance::LeafLowerBounds(std::span<const Scalar> q,
                                std::vector<double>* lb) const {
  const uint32_t parts = static_cast<uint32_t>(centers_.size());
  std::vector<double> dq(parts);
  for (uint32_t c = 0; c < parts; ++c) dq[c] = L2(q, centers_.point(c));

  lb->resize(leaf_meta_.size());
  for (size_t i = 0; i < leaf_meta_.size(); ++i) {
    const LeafMeta& m = leaf_meta_[i];
    // Members p satisfy rmin <= dist(p, O) <= rmax, so by the triangle
    // inequality dist(q, p) >= max(0, dq - rmax, rmin - dq).
    const double d = dq[m.partition];
    (*lb)[i] = std::max({0.0, d - m.rmax, m.rmin - d});
  }
}

Status IDistance::Search(std::span<const Scalar> q, size_t k,
                         cache::NodeCache* cache,
                         TreeSearchResult* out) const {
  std::vector<double> lb;
  LeafLowerBounds(q, &lb);
  return TreeKnnSearch(*store_, lb, q, k, cache, out);
}

}  // namespace eeb::index
