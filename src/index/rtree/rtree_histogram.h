// Multi-dimensional histogram builder for mHC-R (paper Sec. 3.6.2 / 5.1):
// "build an R-tree with 2^tau leaf nodes, then map the MBR of each leaf to a
// bucket". We bulk-load the leaf level with a TGS/kd-style recursive
// partition (split the widest dimension at the median until the target leaf
// count), which yields balanced leaves and, in high dimensions, the huge
// MBRs that make mHC-R ineffective — the curse-of-dimensionality effect the
// paper demonstrates (its Appendix B).

#ifndef EEB_INDEX_RTREE_RTREE_HISTOGRAM_H_
#define EEB_INDEX_RTREE_RTREE_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "common/dataset.h"
#include "common/status.h"
#include "hist/multidim_histogram.h"

namespace eeb::index {

/// Partitions `data` into `num_buckets` leaf MBRs and reports, for every
/// point, the bucket containing it.
///
/// @param data         input points
/// @param num_buckets  target leaf count (rounded down to what balanced
///                     splitting produces; always >= 1)
/// @param out          receives the histogram (leaf MBRs)
/// @param assignment   receives per-point bucket ids (size data.size())
Status BuildRTreeHistogram(const Dataset& data, uint32_t num_buckets,
                           hist::MultiDimHistogram* out,
                           std::vector<BucketId>* assignment);

}  // namespace eeb::index

#endif  // EEB_INDEX_RTREE_RTREE_HISTOGRAM_H_
