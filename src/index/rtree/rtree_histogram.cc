#include "index/rtree/rtree_histogram.h"

#include <algorithm>
#include <limits>

namespace eeb::index {
namespace {

// Dimension with the largest value spread among the given points.
size_t WidestDim(const Dataset& data, std::span<const PointId> ids) {
  const size_t d = data.dim();
  size_t best = 0;
  double best_spread = -1.0;
  for (size_t j = 0; j < d; ++j) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -lo;
    for (PointId id : ids) {
      const double v = data.point(id)[j];
      if (v < lo) lo = v;
      if (v > hi) hi = v;
    }
    const double spread = hi - lo;
    if (spread > best_spread) {
      best_spread = spread;
      best = j;
    }
  }
  return best;
}

void Split(const Dataset& data, std::vector<PointId>& ids, size_t lo,
           size_t hi, uint32_t parts,
           std::vector<std::pair<size_t, size_t>>* leaves) {
  if (parts <= 1 || hi - lo <= 1) {
    leaves->emplace_back(lo, hi);
    return;
  }
  std::span<const PointId> view(ids.data() + lo, hi - lo);
  const size_t dim = WidestDim(data, view);

  // Balanced split: left gets ceil(parts/2)/parts of the points.
  const uint32_t left_parts = parts / 2;
  const uint32_t right_parts = parts - left_parts;
  const size_t mid =
      lo + (hi - lo) * left_parts / parts;
  std::nth_element(ids.begin() + lo, ids.begin() + mid, ids.begin() + hi,
                   [&](PointId a, PointId b) {
                     const Scalar va = data.point(a)[dim];
                     const Scalar vb = data.point(b)[dim];
                     if (va != vb) return va < vb;
                     return a < b;
                   });
  Split(data, ids, lo, mid, left_parts, leaves);
  Split(data, ids, mid, hi, right_parts, leaves);
}

}  // namespace

Status BuildRTreeHistogram(const Dataset& data, uint32_t num_buckets,
                           hist::MultiDimHistogram* out,
                           std::vector<BucketId>* assignment) {
  const size_t n = data.size();
  if (n == 0) return Status::InvalidArgument("empty dataset");
  if (num_buckets == 0) return Status::InvalidArgument("num_buckets == 0");
  if (num_buckets > n) num_buckets = static_cast<uint32_t>(n);

  std::vector<PointId> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<PointId>(i);

  std::vector<std::pair<size_t, size_t>> leaves;
  Split(data, ids, 0, n, num_buckets, &leaves);

  std::vector<hist::Mbr> mbrs(leaves.size());
  assignment->assign(n, 0);
  for (size_t b = 0; b < leaves.size(); ++b) {
    for (size_t i = leaves[b].first; i < leaves[b].second; ++i) {
      const PointId id = ids[i];
      mbrs[b].Expand(data.point(id));
      (*assignment)[id] = static_cast<BucketId>(b);
    }
  }
  *out = hist::MultiDimHistogram(std::move(mbrs));
  return Status::OK();
}

}  // namespace eeb::index
