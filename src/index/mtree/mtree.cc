#include "index/mtree/mtree.h"

#include <algorithm>
#include <cmath>

#include "common/distance.h"
#include "common/random.h"

namespace eeb::index {

int32_t MTree::BuildNode(const Dataset& data, std::vector<PointId>& ids,
                         size_t lo, size_t hi, size_t leaf_cap, uint64_t seed,
                         std::vector<std::vector<PointId>>* leaves) {
  const int32_t node_id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();

  // Routing object: the member closest to the set's mean would be ideal;
  // a random member is standard for bulk loads and cheaper.
  Rng rng(seed ^ (static_cast<uint64_t>(lo) << 32) ^ hi);
  const PointId routing = ids[lo + rng.Uniform(hi - lo)];
  const uint32_t crow = static_cast<uint32_t>(centers_.size());
  centers_.Append(data.point(routing));
  double radius = 0.0;
  for (size_t i = lo; i < hi; ++i) {
    radius = std::max(radius,
                      L2(data.point(ids[i]), centers_.point(crow)));
  }

  if (hi - lo <= leaf_cap) {
    const uint32_t leaf_id = static_cast<uint32_t>(leaves->size());
    leaves->emplace_back(ids.begin() + lo, ids.begin() + hi);
    nodes_[node_id] = {true, leaf_id, crow, radius, -1, -1};
    return node_id;
  }

  // 2-means-style split: two distinct seed routing objects, iterative
  // nearest-assignment with mean recentering in latent space is overkill —
  // reassignment against the two seeds, re-picking each seed as the member
  // farthest-from-the-other, converges well enough in a few passes.
  PointId a = ids[lo + rng.Uniform(hi - lo)];
  PointId b = a;
  double far = -1.0;
  for (size_t i = lo; i < hi; ++i) {
    const double dist = L2(data.point(ids[i]), data.point(a));
    if (dist > far) {
      far = dist;
      b = ids[i];
    }
  }
  if (a == b) {
    // All points identical: emit one oversized leaf (it will span several
    // pages in the LeafStore but stays correct).
    const uint32_t leaf_id = static_cast<uint32_t>(leaves->size());
    leaves->emplace_back(ids.begin() + lo, ids.begin() + hi);
    nodes_[node_id] = {true, leaf_id, crow, radius, -1, -1};
    return node_id;
  }

  size_t split = lo;
  for (uint32_t iter = 0; iter < options_.split_iterations; ++iter) {
    // Partition by nearest seed (ties to `a`).
    split = lo;
    for (size_t i = lo; i < hi; ++i) {
      const double da = L2(data.point(ids[i]), data.point(a));
      const double db = L2(data.point(ids[i]), data.point(b));
      if (da <= db) std::swap(ids[i], ids[split++]);
    }
    if (split == lo || split == hi) break;
    if (iter + 1 == options_.split_iterations) break;
    // Recenter: a = member of A closest to A's centroid proxy (the old a);
    // keeping it simple, pick the member of each side farthest from the
    // other side's seed as the new seed.
    double best_a = -1, best_b = -1;
    PointId na = a, nb = b;
    for (size_t i = lo; i < split; ++i) {
      const double dist = L2(data.point(ids[i]), data.point(b));
      if (dist > best_a) {
        best_a = dist;
        na = ids[i];
      }
    }
    for (size_t i = split; i < hi; ++i) {
      const double dist = L2(data.point(ids[i]), data.point(a));
      if (dist > best_b) {
        best_b = dist;
        nb = ids[i];
      }
    }
    a = na;
    b = nb;
  }
  if (split == lo || split == hi) {
    // Degenerate partition: force a balanced cut.
    split = lo + (hi - lo) / 2;
  }

  const int32_t left =
      BuildNode(data, ids, lo, split, leaf_cap, seed * 6364136223846793005ULL + 1,
                leaves);
  const int32_t right =
      BuildNode(data, ids, split, hi, leaf_cap,
                seed * 6364136223846793005ULL + 2, leaves);
  nodes_[node_id] = {false, 0, crow, radius, left, right};
  return node_id;
}

Status MTree::Build(storage::Env* env, const std::string& path,
                    const Dataset& data, const MTreeOptions& options,
                    std::unique_ptr<MTree>* out) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  const size_t record_bytes = data.dim() * sizeof(Scalar);
  const size_t leaf_cap =
      std::max<size_t>(1, options.page_size / record_bytes);

  std::unique_ptr<MTree> idx(new MTree());
  idx->options_ = options;
  idx->centers_ = Dataset(data.dim());

  std::vector<PointId> ids(data.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<PointId>(i);
  std::vector<std::vector<PointId>> leaves;
  idx->BuildNode(data, ids, 0, ids.size(), leaf_cap, options.seed, &leaves);

  EEB_RETURN_IF_ERROR(LeafStore::Create(env, path, data, std::move(leaves),
                                        &idx->store_, options.page_size));
  *out = std::move(idx);
  return Status::OK();
}

void MTree::LeafLowerBounds(std::span<const Scalar> q,
                            std::vector<double>* lb) const {
  lb->assign(store_->num_leaves(), 0.0);
  struct Frame {
    int32_t node;
    double bound;
  };
  std::vector<Frame> stack;
  if (!nodes_.empty()) stack.push_back({0, 0.0});
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& node = nodes_[f.node];
    const double dq = L2(q, centers_.point(node.center_row));
    const double ball = std::max(f.bound, dq - node.radius);
    if (node.is_leaf) {
      (*lb)[node.leaf_id] = ball;
      continue;
    }
    stack.push_back({node.left, ball});
    stack.push_back({node.right, ball});
  }
}

Status MTree::Search(std::span<const Scalar> q, size_t k,
                     cache::NodeCache* cache, TreeSearchResult* out) const {
  std::vector<double> lb;
  LeafLowerBounds(q, &lb);
  return TreeKnnSearch(*store_, lb, q, k, cache, out);
}

}  // namespace eeb::index
