// Bulk-loaded ball tree of the M-tree family [Ciaccia et al., VLDB'97]:
// every node is a (routing object, covering radius) ball; leaves hold a
// page of points. The paper cites M-tree as the canonical distance-based
// access method whose kNN caches ([11],[27]) do not transfer to LSH; having
// it here lets the leaf-node cache of Sec. 3.6.1 be exercised on a third
// tree index beyond iDistance and the VP-tree.
//
// Bulk construction recursively splits a point set into two balls by a
// 2-means-style pass (two seed routing objects, nearest-assignment) until a
// set fits a disk page. Inner nodes stay in RAM (index I); search computes
// per-leaf lower bounds max(0, dist(q, center) - radius) accumulated along
// the path and delegates to TreeKnnSearch.

#ifndef EEB_INDEX_MTREE_MTREE_H_
#define EEB_INDEX_MTREE_MTREE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "index/tree_common.h"

namespace eeb::index {

struct MTreeOptions {
  uint64_t seed = 29;
  size_t page_size = storage::kDefaultPageSize;
  uint32_t split_iterations = 3;  ///< 2-means refinement passes per split
};

/// Disk-based M-tree(-family ball tree) with cache-aware kNN search.
class MTree {
 public:
  static Status Build(storage::Env* env, const std::string& path,
                      const Dataset& data, const MTreeOptions& options,
                      std::unique_ptr<MTree>* out);

  Status Search(std::span<const Scalar> q, size_t k, cache::NodeCache* cache,
                TreeSearchResult* out) const;

  const LeafStore& store() const { return *store_; }
  size_t num_leaves() const { return store_->num_leaves(); }

  /// Per-leaf ball lower bounds — exposed for tests.
  void LeafLowerBounds(std::span<const Scalar> q,
                       std::vector<double>* lb) const;

 private:
  MTree() = default;

  struct Node {
    bool is_leaf;
    uint32_t leaf_id;     // when leaf
    uint32_t center_row;  // row in centers_ (all nodes)
    double radius;        // covering radius of the subtree
    int32_t left;
    int32_t right;
  };

  int32_t BuildNode(const Dataset& data, std::vector<PointId>& ids, size_t lo,
                    size_t hi, size_t leaf_cap, uint64_t seed,
                    std::vector<std::vector<PointId>>* leaves);

  std::vector<Node> nodes_;
  Dataset centers_;  // routing-object coordinates (RAM-resident index I)
  MTreeOptions options_;
  std::unique_ptr<LeafStore> store_;
};

}  // namespace eeb::index

#endif  // EEB_INDEX_MTREE_MTREE_H_
