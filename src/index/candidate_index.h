// Candidate-generation interface (paper Def. 4): an index I that, given a
// query, reports a set of point identifiers to refine. C2LSH is the primary
// implementation; tree-based indexes (iDistance, VP-tree, VA-file) use their
// own interleaved search (Sec. 3.6.1) and live in their own headers.

#ifndef EEB_INDEX_CANDIDATE_INDEX_H_
#define EEB_INDEX_CANDIDATE_INDEX_H_

#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "storage/io_stats.h"

namespace eeb::index {

/// Abstract candidate generator.
class CandidateIndex {
 public:
  virtual ~CandidateIndex() = default;

  /// Reports the candidate set C(q) for a kNN query. Disk-resident indexes
  /// charge their accesses to `stats` (may be nullptr).
  virtual Status Candidates(std::span<const Scalar> q, size_t k,
                            std::vector<PointId>* out,
                            storage::IoStats* stats) = 0;

  virtual std::string name() const = 0;
};

}  // namespace eeb::index

#endif  // EEB_INDEX_CANDIDATE_INDEX_H_
