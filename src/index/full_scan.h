// Full-scan candidate generator: reports every point id as a candidate.
// This is the NO-INDEX baseline the curse of dimensionality forces exact
// methods toward (paper Sec. 6), and it makes the cache-assisted operators
// (range query, DBSCAN) exact: the candidate set provably contains every
// qualifying point, so only the cache decides how much I/O the scan costs.

#ifndef EEB_INDEX_FULL_SCAN_H_
#define EEB_INDEX_FULL_SCAN_H_

#include <numeric>

#include "index/candidate_index.h"

namespace eeb::index {

/// CandidateIndex that returns all ids [0, n).
class FullScanIndex : public CandidateIndex {
 public:
  explicit FullScanIndex(size_t n) : n_(n) {}

  Status Candidates(std::span<const Scalar> q, size_t k,
                    std::vector<PointId>* out,
                    storage::IoStats* stats) override {
    (void)q;
    (void)k;
    (void)stats;  // the id list is implicit; no index I/O
    out->resize(n_);
    std::iota(out->begin(), out->end(), 0u);
    return Status::OK();
  }

  std::string name() const override { return "full-scan"; }

 private:
  size_t n_;
};

}  // namespace eeb::index

#endif  // EEB_INDEX_FULL_SCAN_H_
