#include "index/tree_common.h"

#include <algorithm>
#include <queue>

#include "common/distance.h"

namespace eeb::index {

Status LeafStore::Create(storage::Env* env, const std::string& path,
                         const Dataset& data,
                         std::vector<std::vector<PointId>> leaf_points,
                         std::unique_ptr<LeafStore>* out, size_t page_size) {
  const size_t record_bytes = data.dim() * sizeof(Scalar);
  const size_t ppp = record_bytes <= page_size ? page_size / record_bytes : 1;

  // Page-align every leaf: pad the order with invalid ids up to the next
  // page boundary so leaves never share pages.
  std::vector<PointId> order;
  order.reserve(data.size() + leaf_points.size() * ppp);
  for (const auto& ids : leaf_points) {
    for (PointId id : ids) order.push_back(id);
    while (order.size() % ppp != 0) order.push_back(kInvalidPointId);
  }

  std::unique_ptr<LeafStore> store(new LeafStore());
  EEB_RETURN_IF_ERROR(
      storage::PointFile::Create(env, path, data, order, page_size));
  EEB_RETURN_IF_ERROR(storage::PointFile::Open(env, path, &store->file_));
  store->leaf_points_ = std::move(leaf_points);
  store->scratch_.resize(data.dim());
  *out = std::move(store);
  return Status::OK();
}

Status LeafStore::FetchLeaf(
    uint32_t leaf,
    const std::function<void(PointId, std::span<const Scalar>)>& fn,
    storage::IoStats* stats, storage::PageTracker* tracker) const {
  for (PointId id : leaf_points_[leaf]) {
    EEB_RETURN_IF_ERROR(file_->ReadPoint(id, scratch_, stats, tracker));
    fn(id, scratch_);
  }
  return Status::OK();
}

Status TreeKnnSearch(const LeafStore& store, std::span<const double> leaf_lb,
                     std::span<const Scalar> q, size_t k,
                     cache::NodeCache* cache, TreeSearchResult* out) {
  const size_t num_leaves = store.num_leaves();
  if (leaf_lb.size() != num_leaves) {
    return Status::InvalidArgument("leaf_lb size mismatch");
  }
  *out = TreeSearchResult{};
  storage::PageTracker tracker;

  // Search units ordered by lower bound: whole (uncached or cached) leaves
  // first appear as leaf units; probing a cached leaf spawns per-point units
  // with code bounds.
  struct Unit {
    double lb;
    uint32_t leaf;
    bool is_point;
    PointId point;

    bool operator>(const Unit& o) const {
      if (lb != o.lb) return lb > o.lb;
      if (leaf != o.leaf) return leaf > o.leaf;
      return point > o.point;
    }
  };
  std::priority_queue<Unit, std::vector<Unit>, std::greater<Unit>> pq;
  for (uint32_t leaf = 0; leaf < num_leaves; ++leaf) {
    pq.push({leaf_lb[leaf], leaf, false, kInvalidPointId});
  }

  TopK exact(k);      // exact distances of fetched points
  TopK optimistic(k);  // upper bounds of cached, unfetched points
  std::vector<bool> fetched(num_leaves, false);

  auto threshold = [&]() {
    return std::min(exact.Threshold(), optimistic.Threshold());
  };

  auto fetch_leaf = [&](uint32_t leaf) -> Status {
    if (fetched[leaf]) return Status::OK();
    fetched[leaf] = true;
    out->leaves_fetched++;
    out->fetched_leaves.push_back(leaf);
    return store.FetchLeaf(
        leaf,
        [&](PointId id, std::span<const Scalar> p) {
          exact.Push(id, L2(q, p));
        },
        &out->io, &tracker);
  };

  while (!pq.empty()) {
    const Unit u = pq.top();
    pq.pop();
    if (exact.Full() && u.lb > threshold()) {
      // Everything remaining is farther than the kth bound: count the
      // untouched leaves as pruned and stop.
      if (!u.is_point && !fetched[u.leaf]) out->leaves_pruned++;
      while (!pq.empty()) {
        const Unit& r = pq.top();
        if (!r.is_point && !fetched[r.leaf]) out->leaves_pruned++;
        pq.pop();
      }
      break;
    }
    if (fetched[u.leaf]) continue;  // resolved as a side effect earlier

    if (!u.is_point) {
      if (cache != nullptr) {
        bool hit;
        if (cache->exact()) {
          // Exact node cache: hits ARE the distances; the leaf never needs
          // a disk fetch, mark it resolved outright.
          hit = cache->ProbeNode(u.leaf, q,
                                 [&](PointId id, double /*lb*/, double ub) {
                                   exact.Push(id, ub);
                                 });
          if (hit) fetched[u.leaf] = true;  // resolved without I/O
        } else {
          hit = cache->ProbeNode(u.leaf, q, [&](PointId id, double lb,
                                                double ub) {
            optimistic.Push(id, ub);
            pq.push({lb, u.leaf, true, id});
          });
        }
        if (hit) {
          out->cache_hits++;
          continue;  // resolved, or per-point units queued
        }
      }
      EEB_RETURN_IF_ERROR(fetch_leaf(u.leaf));
    } else {
      // A cached point whose lower bound survived pruning: its leaf must be
      // materialized to resolve exact distances.
      EEB_RETURN_IF_ERROR(fetch_leaf(u.leaf));
    }
  }

  out->neighbors = exact.TakeSorted();
  return Status::OK();
}

}  // namespace eeb::index
