// Disk-based B+-tree, bulk-loaded. iDistance maps every point to the 1-D
// key  partition * C + dist(p, center)  and stores the key space in a
// B+-tree [Jagadish et al., TODS'05]. Our iDistance keeps its (small) key
// directory in RAM per the paper's Fig. 7 split; this substrate provides
// the disk-resident materialization for deployments whose directory
// outgrows memory, and doubles as the generic ordered-key disk structure of
// the storage layer.
//
// Layout: fixed-size pages. Leaf pages hold sorted (key u64, value u64)
// pairs; inner pages hold sorted separator keys and child page ids. The
// tree is immutable after bulk load (matching the paper's static indexes);
// lookups and range scans charge one random page read per node visited.

#ifndef EEB_INDEX_BPTREE_BPTREE_H_
#define EEB_INDEX_BPTREE_BPTREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/env.h"
#include "storage/io_stats.h"
#include "storage/point_file.h"

namespace eeb::index {

/// One key/value entry of the tree.
struct BptEntry {
  uint64_t key;
  uint64_t value;
};

/// Immutable disk B+-tree over 64-bit keys.
class BpTree {
 public:
  /// Bulk-loads `entries` (must be sorted by key ascending; duplicate keys
  /// are allowed) into a file at `path`.
  static Status BulkLoad(storage::Env* env, const std::string& path,
                         const std::vector<BptEntry>& entries,
                         size_t page_size = storage::kDefaultPageSize);

  /// Opens a bulk-loaded tree.
  static Status Open(storage::Env* env, const std::string& path,
                     std::unique_ptr<BpTree>* out);

  /// Invokes `fn` for every entry with lo <= key <= hi, in key order.
  /// Charges `stats` one random page per root-to-leaf node plus sequential
  /// pages for the leaf scan.
  Status RangeScan(uint64_t lo, uint64_t hi,
                   const std::function<void(const BptEntry&)>& fn,
                   storage::IoStats* stats) const;

  /// Point lookup: all values stored under `key`.
  Status Lookup(uint64_t key, std::vector<uint64_t>* values,
                storage::IoStats* stats) const;

  size_t size() const { return n_entries_; }
  uint32_t height() const { return height_; }
  size_t num_pages() const { return num_pages_; }

 private:
  BpTree() = default;

  Status ReadPage(uint64_t page_id, std::vector<char>* buf,
                  storage::IoStats* stats, bool sequential) const;

  std::unique_ptr<storage::RandomAccessFile> file_;
  size_t page_size_ = 0;
  uint64_t root_page_ = 0;
  size_t n_entries_ = 0;
  uint32_t height_ = 0;
  size_t num_pages_ = 0;
};

}  // namespace eeb::index

#endif  // EEB_INDEX_BPTREE_BPTREE_H_
