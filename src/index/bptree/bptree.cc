#include "index/bptree/bptree.h"

#include <algorithm>
#include <cstring>

namespace eeb::index {
namespace {

constexpr uint64_t kMagic = 0x4545424250545245ULL;  // "EEBBPTRE"

struct FileHeader {
  uint64_t magic;
  uint64_t page_size;
  uint64_t root_page;
  uint64_t n_entries;
  uint64_t num_pages;
  uint32_t height;
};

struct NodeHeader {
  uint32_t is_leaf;
  uint32_t count;
  uint64_t next_leaf;  // leaf chain; 0 = end (page 0 is the file header)
};

// Inner nodes store `count` (first_key, child_page) pairs.
struct InnerPair {
  uint64_t first_key;
  uint64_t child;
};

size_t LeafCapacity(size_t page_size) {
  return (page_size - sizeof(NodeHeader)) / sizeof(BptEntry);
}

size_t InnerCapacity(size_t page_size) {
  return (page_size - sizeof(NodeHeader)) / sizeof(InnerPair);
}

}  // namespace

Status BpTree::BulkLoad(storage::Env* env, const std::string& path,
                        const std::vector<BptEntry>& entries,
                        size_t page_size) {
  if (page_size < sizeof(NodeHeader) + 4 * sizeof(BptEntry)) {
    return Status::InvalidArgument("page size too small for a B+-tree node");
  }
  for (size_t i = 1; i < entries.size(); ++i) {
    if (entries[i].key < entries[i - 1].key) {
      return Status::InvalidArgument("bulk load requires sorted keys");
    }
  }

  // Build all pages in memory (page 0 is the file header).
  std::vector<std::vector<char>> pages;
  auto new_page = [&]() -> uint64_t {
    pages.emplace_back(page_size, 0);
    return pages.size();  // page ids are 1-based (0 = header)
  };

  // Leaf level.
  const size_t leaf_cap = LeafCapacity(page_size);
  std::vector<InnerPair> level;  // (first key, page) of each node built
  size_t pos = 0;
  do {
    const size_t take = std::min(leaf_cap, entries.size() - pos);
    const uint64_t page_id = new_page();
    NodeHeader hdr{1, static_cast<uint32_t>(take), 0};
    std::memcpy(pages[page_id - 1].data(), &hdr, sizeof(hdr));
    if (take > 0) {
      std::memcpy(pages[page_id - 1].data() + sizeof(NodeHeader),
                  entries.data() + pos, take * sizeof(BptEntry));
    }
    level.push_back({take > 0 ? entries[pos].key : 0, page_id});
    // Chain the previous leaf to this one.
    if (level.size() > 1) {
      NodeHeader prev;
      auto& prev_page = pages[level[level.size() - 2].child - 1];
      std::memcpy(&prev, prev_page.data(), sizeof(prev));
      prev.next_leaf = page_id;
      std::memcpy(prev_page.data(), &prev, sizeof(prev));
    }
    pos += take;
  } while (pos < entries.size());

  // Inner levels until a single root remains.
  uint32_t height = 1;
  const size_t inner_cap = InnerCapacity(page_size);
  while (level.size() > 1) {
    std::vector<InnerPair> next_level;
    for (size_t start = 0; start < level.size(); start += inner_cap) {
      const size_t take = std::min(inner_cap, level.size() - start);
      const uint64_t page_id = new_page();
      NodeHeader hdr{0, static_cast<uint32_t>(take), 0};
      std::memcpy(pages[page_id - 1].data(), &hdr, sizeof(hdr));
      std::memcpy(pages[page_id - 1].data() + sizeof(NodeHeader),
                  level.data() + start, take * sizeof(InnerPair));
      next_level.push_back({level[start].first_key, page_id});
    }
    level = std::move(next_level);
    ++height;
  }

  FileHeader fh{kMagic, page_size, level.front().child, entries.size(),
                pages.size(), height};
  std::vector<char> header_page(page_size, 0);
  std::memcpy(header_page.data(), &fh, sizeof(fh));

  std::unique_ptr<storage::WritableFile> f;
  EEB_RETURN_IF_ERROR(env->NewWritableFile(path, &f));
  auto write_body = [&]() -> Status {
    EEB_RETURN_IF_ERROR(f->Append(header_page.data(), header_page.size()));
    for (const auto& page : pages) {
      EEB_RETURN_IF_ERROR(f->Append(page.data(), page.size()));
    }
    return f->Close();
  };
  return storage::CleanupIfError(env, path, write_body());
}

Status BpTree::Open(storage::Env* env, const std::string& path,
                    std::unique_ptr<BpTree>* out) {
  std::unique_ptr<BpTree> tree(new BpTree());
  EEB_RETURN_IF_ERROR(env->NewRandomAccessFile(path, &tree->file_));
  FileHeader fh;
  EEB_RETURN_IF_ERROR(
      tree->file_->Read(0, sizeof(fh), reinterpret_cast<char*>(&fh)));
  if (fh.magic != kMagic) return Status::Corruption("bad B+-tree magic");
  tree->page_size_ = fh.page_size;
  tree->root_page_ = fh.root_page;
  tree->n_entries_ = fh.n_entries;
  tree->height_ = fh.height;
  tree->num_pages_ = fh.num_pages;
  *out = std::move(tree);
  return Status::OK();
}

Status BpTree::ReadPage(uint64_t page_id, std::vector<char>* buf,
                        storage::IoStats* stats, bool sequential) const {
  buf->resize(page_size_);
  EEB_RETURN_IF_ERROR(
      file_->Read(page_id * page_size_, page_size_, buf->data()));
  if (stats != nullptr) {
    if (sequential) {
      stats->seq_page_reads += 1;
    } else {
      stats->page_reads += 1;
    }
    stats->bytes_read += page_size_;
  }
  return Status::OK();
}

Status BpTree::RangeScan(uint64_t lo, uint64_t hi,
                         const std::function<void(const BptEntry&)>& fn,
                         storage::IoStats* stats) const {
  if (n_entries_ == 0 || lo > hi) return Status::OK();

  // Descend to the leaf that may contain `lo`.
  std::vector<char> buf;
  uint64_t page_id = root_page_;
  NodeHeader hdr;
  while (true) {
    EEB_RETURN_IF_ERROR(ReadPage(page_id, &buf, stats, /*sequential=*/false));
    std::memcpy(&hdr, buf.data(), sizeof(hdr));
    if (hdr.is_leaf) break;
    const InnerPair* pairs =
        reinterpret_cast<const InnerPair*>(buf.data() + sizeof(NodeHeader));
    // Last child whose first_key is STRICTLY below lo (or the first child):
    // duplicates of `lo` may start in the previous child even when a child
    // boundary equals lo, and the forward leaf chain makes starting one
    // node early merely a short extra scan.
    uint32_t child = 0;
    for (uint32_t i = 1; i < hdr.count; ++i) {
      if (pairs[i].first_key < lo) {
        child = i;
      } else {
        break;
      }
    }
    page_id = pairs[child].child;
  }

  // Scan leaves forward.
  bool first_leaf = true;
  while (true) {
    if (!first_leaf) {
      EEB_RETURN_IF_ERROR(ReadPage(page_id, &buf, stats, /*sequential=*/true));
      std::memcpy(&hdr, buf.data(), sizeof(hdr));
    }
    first_leaf = false;
    const BptEntry* ents =
        reinterpret_cast<const BptEntry*>(buf.data() + sizeof(NodeHeader));
    for (uint32_t i = 0; i < hdr.count; ++i) {
      if (ents[i].key < lo) continue;
      if (ents[i].key > hi) return Status::OK();
      fn(ents[i]);
    }
    if (hdr.next_leaf == 0) return Status::OK();
    page_id = hdr.next_leaf;
  }
}

Status BpTree::Lookup(uint64_t key, std::vector<uint64_t>* values,
                      storage::IoStats* stats) const {
  values->clear();
  return RangeScan(key, key,
                   [values](const BptEntry& e) { values->push_back(e.value); },
                   stats);
}

}  // namespace eeb::index
