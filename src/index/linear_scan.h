// Exact in-memory linear scan — the ground-truth oracle for tests and the
// reference the curse-of-dimensionality discussion compares against.

#ifndef EEB_INDEX_LINEAR_SCAN_H_
#define EEB_INDEX_LINEAR_SCAN_H_

#include <span>
#include <vector>

#include "common/dataset.h"
#include "common/distance.h"
#include "common/topk.h"

namespace eeb::index {

/// Exact kNN by scanning every point of `data`.
inline std::vector<Neighbor> LinearScanKnn(const Dataset& data,
                                           std::span<const Scalar> q,
                                           size_t k) {
  TopK top(k);
  const size_t n = data.size();
  for (size_t i = 0; i < n; ++i) {
    const PointId id = static_cast<PointId>(i);
    top.Push(id, L2(q, data.point(id)));
  }
  return top.TakeSorted();
}

}  // namespace eeb::index

#endif  // EEB_INDEX_LINEAR_SCAN_H_
