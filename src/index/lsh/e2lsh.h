// Classic E2LSH [Datar et al. '04 / Gionis et al. '99]: L hash tables, each
// keyed by a compound of m p-stable hashes g(p) = (h_1(p), ..., h_m(p)).
// A query probes exactly one bucket per table; the candidate set is the
// union. Included as a second LSH-family candidate generator (paper
// Sec. 6 classifies it with the c-approximate methods): the caching layer
// is index-agnostic, and tests verify the engine works unchanged on top.

#ifndef EEB_INDEX_LSH_E2LSH_H_
#define EEB_INDEX_LSH_E2LSH_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/dataset.h"
#include "index/candidate_index.h"

namespace eeb::index {

struct E2LshOptions {
  uint32_t num_tables = 8;      ///< L
  uint32_t hashes_per_table = 4;  ///< m (compound length)
  double bucket_width = 4.0;    ///< w, scaled by projection spread at build
  uint64_t seed = 91;
  bool auto_scale_width = true;
};

/// Static E2LSH index over an in-memory dataset.
class E2Lsh : public CandidateIndex {
 public:
  static Status Build(const Dataset& data, const E2LshOptions& options,
                      std::unique_ptr<E2Lsh>* out);

  Status Candidates(std::span<const Scalar> q, size_t k,
                    std::vector<PointId>* out,
                    storage::IoStats* stats) override;

  std::string name() const override { return "E2LSH"; }

 private:
  E2Lsh(const E2LshOptions& options, size_t dim)
      : options_(options), dim_(dim) {}

  uint64_t CompoundKey(uint32_t table, std::span<const Scalar> p) const;

  E2LshOptions options_;
  size_t dim_;
  double width_ = 1.0;
  // proj_[t]: m*d projection coefficients for table t; shift_[t]: m offsets.
  std::vector<std::vector<double>> proj_;
  std::vector<std::vector<double>> shift_;
  std::vector<std::unordered_map<uint64_t, std::vector<PointId>>> tables_;
};

}  // namespace eeb::index

#endif  // EEB_INDEX_LSH_E2LSH_H_
