#include "index/lsh/c2lsh.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "storage/point_file.h"

namespace eeb::index {
namespace {

int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

// Bytes per hash-table entry (key prefix compressed away on disk; an id list
// entry is one 8-byte word). Used only for index-I/O accounting.
constexpr size_t kEntryBytes = 8;

// Per-thread collision-count scratch, shared by every C2Lsh instance on the
// thread. `counts` only grows (new entries are zero-initialized) and every
// query zeroes exactly the entries it touched, so a query sees all-zero
// counts regardless of which instance the thread served before.
struct QueryScratch {
  std::vector<uint8_t> counts;
  std::vector<PointId> touched;
};

QueryScratch& Scratch(size_t n) {
  thread_local QueryScratch s;
  if (s.counts.size() < n) s.counts.resize(n, 0);
  if (s.touched.capacity() < 1024) s.touched.reserve(1024);
  return s;
}

}  // namespace

Status C2Lsh::Build(const Dataset& data, const C2LshOptions& options,
                    std::unique_ptr<C2Lsh>* out) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  if (options.collision_threshold > options.num_functions) {
    return Status::InvalidArgument("collision threshold exceeds m");
  }
  if (options.approximation_ratio < 2.0) {
    return Status::InvalidArgument("approximation ratio c must be >= 2");
  }

  std::unique_ptr<C2Lsh> idx(new C2Lsh(options, data.dim()));
  const size_t n = data.size();
  const size_t d = data.dim();
  const uint32_t m = options.num_functions;
  idx->n_ = n;

  Rng rng(options.seed);
  idx->proj_.assign(m, std::vector<double>(d));
  idx->shift_.assign(m, 0.0);
  for (uint32_t i = 0; i < m; ++i) {
    for (size_t j = 0; j < d; ++j) idx->proj_[i][j] = rng.NextGaussian();
  }

  // Project everything once; optionally scale w by the projection spread so
  // level-0 buckets are meaningfully narrow for any data scale.
  std::vector<std::vector<double>> dots(m, std::vector<double>(n));
  double mean_abs = 0.0;
  for (uint32_t i = 0; i < m; ++i) {
    for (size_t p = 0; p < n; ++p) {
      auto pt = data.point(static_cast<PointId>(p));
      double dot = 0.0;
      for (size_t j = 0; j < d; ++j) dot += idx->proj_[i][j] * pt[j];
      dots[i][p] = dot;
      mean_abs += std::fabs(dot);
    }
  }
  mean_abs /= static_cast<double>(m) * n;

  idx->width_ = options.bucket_width;
  if (options.auto_scale_width) {
    // ~1/64 of the mean absolute projection: narrow enough that level 0
    // separates points, wide enough that virtual rehashing converges fast.
    idx->width_ = options.bucket_width * std::max(1e-9, mean_abs / 64.0);
  }

  for (uint32_t i = 0; i < m; ++i) {
    idx->shift_[i] = rng.NextDouble() * idx->width_;
  }

  idx->tables_.assign(m, {});
  for (uint32_t i = 0; i < m; ++i) {
    auto& table = idx->tables_[i];
    table.resize(n);
    for (size_t p = 0; p < n; ++p) {
      const int64_t key = static_cast<int64_t>(
          std::floor((dots[i][p] + idx->shift_[i]) / idx->width_));
      table[p] = {key, static_cast<PointId>(p)};
    }
    std::sort(table.begin(), table.end());
  }

  *out = std::move(idx);
  return Status::OK();
}

int64_t C2Lsh::KeyFor(uint32_t func, std::span<const Scalar> p) const {
  // eeb-hot-begin(lsh-projection): the generation kernel's dot product —
  // runs m times per query over the full dimensionality; pure arithmetic.
  double dot = shift_[func];
  const auto& a = proj_[func];
  for (size_t j = 0; j < dim_; ++j) dot += a[j] * p[j];
  return static_cast<int64_t>(std::floor(dot / width_));
  // eeb-hot-end
}

Status C2Lsh::Candidates(std::span<const Scalar> q, size_t k,
                         std::vector<PointId>* out,
                         storage::IoStats* stats) {
  if (q.size() != dim_) return Status::InvalidArgument("query dim mismatch");
  out->clear();

  const uint32_t m = options_.num_functions;
  const uint32_t l = options_.collision_threshold;
  const int64_t c = static_cast<int64_t>(options_.approximation_ratio);
  const size_t want = std::min<size_t>(n_, k + options_.beta_candidates);

  // Reset this thread's scratch counters from its previous query.
  QueryScratch& scratch = Scratch(n_);
  std::vector<uint8_t>& counts = scratch.counts;
  std::vector<PointId>& touched = scratch.touched;
  for (PointId id : touched) counts[id] = 0;
  touched.clear();

  std::vector<int64_t> qkeys(m);
  for (uint32_t i = 0; i < m; ++i) qkeys[i] = KeyFor(i, q);

  // Covered key interval per function, inclusive; empty before level 0.
  std::vector<int64_t> lo(m), hi(m);
  bool first_level = true;
  uint64_t total_probes = 0;
  uint64_t total_entries = 0;
  uint64_t total_seq_pages = 0;

  int64_t bucket = 1;  // c^level
  uint32_t level = 0;
  for (; level < options_.max_levels; ++level) {
    for (uint32_t i = 0; i < m; ++i) {
      const int64_t idx = FloorDiv(qkeys[i], bucket);
      const int64_t new_lo = idx * bucket;
      const int64_t new_hi = new_lo + bucket - 1;

      // Ranges of keys covered for the first time at this level.
      struct Range {
        int64_t a, b;
      };
      Range fresh[2];
      int nfresh = 0;
      if (first_level) {
        fresh[nfresh++] = {new_lo, new_hi};
      } else {
        if (new_lo < lo[i]) fresh[nfresh++] = {new_lo, lo[i] - 1};
        if (new_hi > hi[i]) fresh[nfresh++] = {hi[i] + 1, new_hi};
      }
      lo[i] = new_lo;
      hi[i] = new_hi;

      size_t entries_scanned = 0;
      const auto& table = tables_[i];
      for (int r = 0; r < nfresh; ++r) {
        auto begin = std::lower_bound(
            table.begin(), table.end(), fresh[r].a,
            [](const Entry& e, int64_t key) { return e.key < key; });
        auto end = std::lower_bound(
            table.begin(), table.end(), fresh[r].b + 1,
            [](const Entry& e, int64_t key) { return e.key < key; });
        for (auto it = begin; it != end; ++it) {
          if (counts[it->id] == 0) touched.push_back(it->id);
          if (counts[it->id] < 255) counts[it->id]++;
          // Admit candidates until the k + beta*n target is reached; points
          // crossing the collision threshold earliest (i.e. at the smallest
          // radius) are the most promising, so capping keeps the candidate
          // volume near the C2LSH termination target instead of admitting a
          // whole cluster when one level jump engulfs it.
          if (counts[it->id] == l && out->size() < want) {
            out->push_back(it->id);
          }
        }
        entries_scanned += static_cast<size_t>(end - begin);
      }

      // One random bucket-directory probe per function and level, plus the
      // id-list pages, which are scanned sequentially.
      const uint64_t seq_pages =
          (entries_scanned * kEntryBytes) / storage::kDefaultPageSize;
      total_probes += 1;
      total_entries += entries_scanned;
      total_seq_pages += seq_pages;
      if (stats != nullptr) {
        stats->page_reads += 1;
        stats->seq_page_reads += seq_pages;
        stats->bytes_read += entries_scanned * kEntryBytes;
      }
    }
    first_level = false;
    if (out->size() >= want) break;
    if (bucket > (int64_t{1} << 60) / c) break;  // overflow guard
    bucket *= c;
  }

  const double radius = width_ * static_cast<double>(bucket);
  last_radius_.store(radius, std::memory_order_relaxed);
  std::sort(out->begin(), out->end());
  if (obs_.queries != nullptr) {
    obs_.queries->Add(1);
    obs_.bucket_probes->Add(total_probes);
    obs_.entries_scanned->Add(total_entries);
    obs_.seq_page_reads->Add(total_seq_pages);
    obs_.candidates->Add(out->size());
    obs_.last_radius->Set(radius);
  }
  return Status::OK();
}

void C2Lsh::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    obs_ = Instruments{};
    return;
  }
  obs_.queries = registry->GetCounter("lsh.queries");
  obs_.bucket_probes = registry->GetCounter("lsh.bucket_probes");
  obs_.entries_scanned = registry->GetCounter("lsh.entries_scanned");
  obs_.seq_page_reads = registry->GetCounter("lsh.seq_page_reads");
  obs_.candidates = registry->GetCounter("lsh.candidates");
  obs_.last_radius = registry->GetGauge("lsh.last_radius");
}

}  // namespace eeb::index
