#include "index/lsh/multiprobe.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "storage/point_file.h"

namespace eeb::index {
namespace {

constexpr size_t kEntryBytes = 8;

}  // namespace

Status MultiProbeLsh::Build(const Dataset& data,
                            const MultiProbeOptions& options,
                            std::unique_ptr<MultiProbeLsh>* out) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  if (options.num_tables == 0 || options.hashes_per_table == 0) {
    return Status::InvalidArgument("L and m must be positive");
  }
  std::unique_ptr<MultiProbeLsh> idx(
      new MultiProbeLsh(options, data.dim()));
  const size_t n = data.size();
  const size_t d = data.dim();
  const uint32_t L = options.num_tables;
  const uint32_t m = options.hashes_per_table;

  Rng rng(options.seed);
  idx->proj_.assign(L, {});
  idx->shift_.assign(L, {});
  for (uint32_t t = 0; t < L; ++t) {
    idx->proj_[t].resize(static_cast<size_t>(m) * d);
    for (auto& v : idx->proj_[t]) v = rng.NextGaussian();
    idx->shift_[t].resize(m);
  }

  // Scale w by the projection SPREAD (stddev around the mean), averaged
  // over the hashes of table 0. Using the mean absolute projection would be
  // dominated by the random offset a . mu of the data mean, which varies
  // wildly across seeds and makes bucket occupancy a lottery.
  if (options.auto_scale_width) {
    const size_t samples = std::min<size_t>(n, 512);
    double spread = 0.0;
    for (uint32_t i = 0; i < m; ++i) {
      const double* a =
          idx->proj_[0].data() + static_cast<size_t>(i) * d;
      double sum = 0.0, sumsq = 0.0;
      for (size_t s = 0; s < samples; ++s) {
        auto p = data.point(static_cast<PointId>(s));
        double dot = 0.0;
        for (size_t j = 0; j < d; ++j) dot += a[j] * p[j];
        sum += dot;
        sumsq += dot * dot;
      }
      const double mean = sum / samples;
      spread += std::sqrt(std::max(0.0, sumsq / samples - mean * mean));
    }
    spread /= m;
    idx->width_ = options.bucket_width * std::max(1e-9, spread / 4.0);
  } else {
    idx->width_ = options.bucket_width;
  }
  for (uint32_t t = 0; t < L; ++t) {
    for (uint32_t i = 0; i < m; ++i) {
      idx->shift_[t][i] = rng.NextDouble() * idx->width_;
    }
  }

  idx->tables_.resize(L);
  std::vector<int64_t> keys;
  std::vector<double> fractions;
  for (uint32_t t = 0; t < L; ++t) {
    for (size_t p = 0; p < n; ++p) {
      idx->HashQuery(t, data.point(static_cast<PointId>(p)), &keys,
                     &fractions);
      idx->tables_[t][CombineKeys(keys)].push_back(static_cast<PointId>(p));
    }
  }
  *out = std::move(idx);
  return Status::OK();
}

void MultiProbeLsh::HashQuery(uint32_t table, std::span<const Scalar> p,
                              std::vector<int64_t>* keys,
                              std::vector<double>* fractions) const {
  const uint32_t m = options_.hashes_per_table;
  keys->resize(m);
  fractions->resize(m);
  const double* proj = proj_[table].data();
  for (uint32_t i = 0; i < m; ++i) {
    double dot = shift_[table][i];
    const double* a = proj + static_cast<size_t>(i) * dim_;
    for (size_t j = 0; j < dim_; ++j) dot += a[j] * p[j];
    const double scaled = dot / width_;
    const double fl = std::floor(scaled);
    (*keys)[i] = static_cast<int64_t>(fl);
    (*fractions)[i] = scaled - fl;  // in [0, 1): distance to lower boundary
  }
}

uint64_t MultiProbeLsh::CombineKeys(const std::vector<int64_t>& keys) {
  uint64_t h = 1469598103934665603ULL;
  for (int64_t v : keys) {
    h ^= static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
  }
  return h;
}

Status MultiProbeLsh::Candidates(std::span<const Scalar> q, size_t k,
                                 std::vector<PointId>* out,
                                 storage::IoStats* stats) {
  (void)k;
  if (q.size() != dim_) return Status::InvalidArgument("query dim mismatch");
  out->clear();

  const uint32_t m = options_.hashes_per_table;
  std::vector<int64_t> keys;
  std::vector<double> fractions;
  for (uint32_t t = 0; t < options_.num_tables; ++t) {
    HashQuery(t, q, &keys, &fractions);

    // Query-directed single-coordinate perturbations: score of moving hash
    // i by delta is the squared distance of the projection to that bucket
    // boundary. Smaller score = more likely to hold near neighbors.
    struct Probe {
      double score;
      uint32_t hash;
      int delta;
    };
    std::vector<Probe> probes;
    probes.reserve(2 * m);
    for (uint32_t i = 0; i < m; ++i) {
      probes.push_back({fractions[i] * fractions[i], i, -1});
      probes.push_back({(1 - fractions[i]) * (1 - fractions[i]), i, +1});
    }
    std::sort(probes.begin(), probes.end(),
              [](const Probe& a, const Probe& b) { return a.score < b.score; });

    const size_t extra =
        std::min<size_t>(options_.probes_per_table, probes.size());
    for (size_t pi = 0; pi <= extra; ++pi) {
      if (pi > 0) keys[probes[pi - 1].hash] += probes[pi - 1].delta;
      auto it = tables_[t].find(CombineKeys(keys));
      size_t entries = 0;
      if (it != tables_[t].end()) {
        out->insert(out->end(), it->second.begin(), it->second.end());
        entries = it->second.size();
      }
      if (pi > 0) keys[probes[pi - 1].hash] -= probes[pi - 1].delta;
      if (stats != nullptr) {
        stats->page_reads += 1;
        stats->seq_page_reads +=
            (entries * kEntryBytes) / storage::kDefaultPageSize;
        stats->bytes_read += entries * kEntryBytes;
      }
    }
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  return Status::OK();
}

}  // namespace eeb::index
