// Multi-Probe LSH [Lv et al., VLDB'07]: instead of many tables, probe a few
// perturbed buckets per table. Each probe perturbs one compound-hash
// coordinate by +-1, chosen by the query-directed score (distance of the
// query's projection to the respective bucket boundary), so the most likely
// neighboring buckets are visited first. The paper cites it among the
// c-approximate methods its cache applies to; having it alongside C2LSH and
// E2LSH demonstrates the index-agnostic cache once more and gives the
// benchmarks a low-memory candidate generator.

#ifndef EEB_INDEX_LSH_MULTIPROBE_H_
#define EEB_INDEX_LSH_MULTIPROBE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/dataset.h"
#include "index/candidate_index.h"

namespace eeb::index {

struct MultiProbeOptions {
  uint32_t num_tables = 4;        ///< L (fewer than E2LSH needs)
  uint32_t hashes_per_table = 4;  ///< m
  uint32_t probes_per_table = 8;  ///< extra perturbed buckets per table
  double bucket_width = 4.0;
  uint64_t seed = 57;
  bool auto_scale_width = true;
};

/// Multi-probe LSH index with single-coordinate query-directed probing.
class MultiProbeLsh : public CandidateIndex {
 public:
  static Status Build(const Dataset& data, const MultiProbeOptions& options,
                      std::unique_ptr<MultiProbeLsh>* out);

  Status Candidates(std::span<const Scalar> q, size_t k,
                    std::vector<PointId>* out,
                    storage::IoStats* stats) override;

  std::string name() const override { return "MP-LSH"; }

 private:
  MultiProbeLsh(const MultiProbeOptions& options, size_t dim)
      : options_(options), dim_(dim) {}

  /// Computes the per-hash integer keys and fractional offsets for table t.
  void HashQuery(uint32_t table, std::span<const Scalar> p,
                 std::vector<int64_t>* keys,
                 std::vector<double>* fractions) const;

  static uint64_t CombineKeys(const std::vector<int64_t>& keys);

  MultiProbeOptions options_;
  size_t dim_;
  double width_ = 1.0;
  std::vector<std::vector<double>> proj_;   // per table: m * d
  std::vector<std::vector<double>> shift_;  // per table: m
  std::vector<std::unordered_map<uint64_t, std::vector<PointId>>> tables_;
};

}  // namespace eeb::index

#endif  // EEB_INDEX_LSH_MULTIPROBE_H_
