#include "index/lsh/e2lsh.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "storage/point_file.h"

namespace eeb::index {
namespace {

// FNV-1a style combine of the m per-hash integers into one 64-bit key.
uint64_t Combine(uint64_t h, int64_t v) {
  h ^= static_cast<uint64_t>(v) + 0x9e3779b97f4a7c15ULL + (h << 6) +
       (h >> 2);
  return h;
}

constexpr size_t kEntryBytes = 8;

}  // namespace

Status E2Lsh::Build(const Dataset& data, const E2LshOptions& options,
                    std::unique_ptr<E2Lsh>* out) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  if (options.num_tables == 0 || options.hashes_per_table == 0) {
    return Status::InvalidArgument("L and m must be positive");
  }
  std::unique_ptr<E2Lsh> idx(new E2Lsh(options, data.dim()));
  const size_t n = data.size();
  const size_t d = data.dim();
  const uint32_t L = options.num_tables;
  const uint32_t m = options.hashes_per_table;

  Rng rng(options.seed);
  idx->proj_.assign(L, {});
  idx->shift_.assign(L, {});
  for (uint32_t t = 0; t < L; ++t) {
    idx->proj_[t].resize(static_cast<size_t>(m) * d);
    for (auto& v : idx->proj_[t]) v = rng.NextGaussian();
    idx->shift_[t].resize(m);
  }

  // Scale w by the projection SPREAD (stddev around the mean), averaged
  // over the hashes of table 0. Using the mean absolute projection would be
  // dominated by the random offset a . mu of the data mean, which varies
  // wildly across seeds and makes bucket occupancy a lottery.
  if (options.auto_scale_width) {
    const size_t samples = std::min<size_t>(n, 512);
    double spread = 0.0;
    for (uint32_t i = 0; i < m; ++i) {
      const double* a =
          idx->proj_[0].data() + static_cast<size_t>(i) * d;
      double sum = 0.0, sumsq = 0.0;
      for (size_t s = 0; s < samples; ++s) {
        auto p = data.point(static_cast<PointId>(s));
        double dot = 0.0;
        for (size_t j = 0; j < d; ++j) dot += a[j] * p[j];
        sum += dot;
        sumsq += dot * dot;
      }
      const double mean = sum / samples;
      spread += std::sqrt(std::max(0.0, sumsq / samples - mean * mean));
    }
    spread /= m;
    idx->width_ = options.bucket_width * std::max(1e-9, spread / 4.0);
  } else {
    idx->width_ = options.bucket_width;
  }
  for (uint32_t t = 0; t < L; ++t) {
    for (uint32_t i = 0; i < m; ++i) {
      idx->shift_[t][i] = rng.NextDouble() * idx->width_;
    }
  }

  idx->tables_.resize(L);
  for (uint32_t t = 0; t < L; ++t) {
    for (size_t p = 0; p < n; ++p) {
      const uint64_t key =
          idx->CompoundKey(t, data.point(static_cast<PointId>(p)));
      idx->tables_[t][key].push_back(static_cast<PointId>(p));
    }
  }
  *out = std::move(idx);
  return Status::OK();
}

uint64_t E2Lsh::CompoundKey(uint32_t table, std::span<const Scalar> p) const {
  const uint32_t m = options_.hashes_per_table;
  const double* proj = proj_[table].data();
  uint64_t key = 1469598103934665603ULL;
  for (uint32_t i = 0; i < m; ++i) {
    double dot = shift_[table][i];
    const double* a = proj + static_cast<size_t>(i) * dim_;
    for (size_t j = 0; j < dim_; ++j) dot += a[j] * p[j];
    key = Combine(key, static_cast<int64_t>(std::floor(dot / width_)));
  }
  return key;
}

Status E2Lsh::Candidates(std::span<const Scalar> q, size_t k,
                         std::vector<PointId>* out,
                         storage::IoStats* stats) {
  (void)k;  // E2LSH's candidate volume is governed by (L, m, w), not k
  if (q.size() != dim_) return Status::InvalidArgument("query dim mismatch");
  out->clear();
  for (uint32_t t = 0; t < options_.num_tables; ++t) {
    const uint64_t key = CompoundKey(t, q);
    auto it = tables_[t].find(key);
    size_t entries = 0;
    if (it != tables_[t].end()) {
      out->insert(out->end(), it->second.begin(), it->second.end());
      entries = it->second.size();
    }
    if (stats != nullptr) {
      stats->page_reads += 1;  // one bucket probe per table
      stats->seq_page_reads +=
          (entries * kEntryBytes) / storage::kDefaultPageSize;
      stats->bytes_read += entries * kEntryBytes;
    }
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  return Status::OK();
}

}  // namespace eeb::index
