// C2LSH [Gan et al., SIGMOD'12]: locality-sensitive hashing with dynamic
// collision counting. m atomic p-stable hash functions h_i(p) =
// floor((a_i . p + b_i) / w); a point becomes a candidate once it collides
// with the query in at least `l` functions. Search radii grow geometrically
// (virtual rehashing: at level r the bucket of key x is floor(x / c^r)),
// so one physical index serves every radius.
//
// The hash tables are conceptually disk-resident (bucket lists of ids); we
// keep them in RAM for speed but charge index I/O per bucket-list visit so
// the candidate-generation cost of paper Fig. 1 is reproduced.
//
// Concurrency: after Build the index is immutable; Candidates uses only
// thread_local collision-count scratch, so concurrent queries are safe
// (docs/CONCURRENCY.md).

#ifndef EEB_INDEX_LSH_C2LSH_H_
#define EEB_INDEX_LSH_C2LSH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/dataset.h"
#include "index/candidate_index.h"
#include "obs/metrics.h"

namespace eeb::index {

/// Tuning knobs; defaults follow the C2LSH paper's recommendations scaled to
/// our surrogate datasets.
struct C2LshOptions {
  uint32_t num_functions = 16;     ///< m, number of atomic hash functions
  uint32_t collision_threshold = 8;  ///< l, collisions to become candidate
  double bucket_width = 1.0;       ///< w; scaled by data spread at build
  double approximation_ratio = 2.0;  ///< c, radius growth factor
  uint32_t beta_candidates = 200;  ///< stop after k + beta candidates
  uint32_t max_levels = 24;        ///< virtual rehashing cap
  uint64_t seed = 42;
  /// When true, `bucket_width` is multiplied by the per-projection standard
  /// deviation so one setting works across datasets of different scales.
  bool auto_scale_width = true;
};

/// In-memory C2LSH index with per-query collision counting.
class C2Lsh : public CandidateIndex {
 public:
  /// Builds the index over `data`. The dataset reference must stay valid for
  /// the index lifetime (only for dim(); keys are materialized).
  static Status Build(const Dataset& data, const C2LshOptions& options,
                      std::unique_ptr<C2Lsh>* out);

  Status Candidates(std::span<const Scalar> q, size_t k,
                    std::vector<PointId>* out,
                    storage::IoStats* stats) override;

  std::string name() const override { return "C2LSH"; }

  /// Terminal search radius R of the last query, in original distance units.
  /// Dmax = c * R feeds the cost model (Thm. 3). Under concurrent queries
  /// this reports whichever query finished last — observational only.
  double last_radius() const {
    return last_radius_.load(std::memory_order_relaxed);
  }

  /// Binds candidate-generation instruments (queries, bucket probes,
  /// entries scanned, sequential pages, candidates, terminal radius) in
  /// `registry`; nullptr detaches.
  void BindMetrics(obs::MetricsRegistry* registry);

  const C2LshOptions& options() const { return options_; }

 private:
  C2Lsh(const C2LshOptions& options, size_t dim)
      : options_(options), dim_(dim) {}

  int64_t KeyFor(uint32_t func, std::span<const Scalar> p) const;

  C2LshOptions options_;
  size_t dim_;
  double width_;  // effective bucket width after auto-scaling
  size_t n_ = 0;

  // Per function: projection vector, offset, and (key, id) pairs sorted by
  // key for interval widening during virtual rehashing.
  std::vector<std::vector<double>> proj_;
  std::vector<double> shift_;
  struct Entry {
    int64_t key;
    PointId id;
    bool operator<(const Entry& o) const {
      if (key != o.key) return key < o.key;
      return id < o.id;
    }
  };
  std::vector<std::vector<Entry>> tables_;

  std::atomic<double> last_radius_{0.0};

  // Bound instruments (nullptr when observability is off).
  struct Instruments {
    obs::Counter* queries = nullptr;
    obs::Counter* bucket_probes = nullptr;
    obs::Counter* entries_scanned = nullptr;
    obs::Counter* seq_page_reads = nullptr;
    obs::Counter* candidates = nullptr;
    obs::Gauge* last_radius = nullptr;
  } obs_;
};

}  // namespace eeb::index

#endif  // EEB_INDEX_LSH_C2LSH_H_
