#include "index/lsh/sklsh.h"

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "storage/point_file.h"

namespace eeb::index {

Status SkLsh::Build(const Dataset& data, const SkLshOptions& options,
                    std::unique_ptr<SkLsh>* out) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  if (options.num_keys == 0) {
    return Status::InvalidArgument("num_keys must be positive");
  }
  std::unique_ptr<SkLsh> idx(new SkLsh(options, data.dim()));
  const size_t n = data.size();
  const size_t d = data.dim();
  const uint32_t m = options.num_keys;

  Rng rng(options.seed);
  idx->proj_.resize(static_cast<size_t>(m) * d);
  for (auto& v : idx->proj_) v = rng.NextGaussian();
  idx->shift_.resize(m);
  for (auto& v : idx->shift_) v = rng.NextDouble() * options.bucket_width;

  std::vector<std::vector<int64_t>> keys(n);
  for (size_t i = 0; i < n; ++i) {
    keys[i] = idx->KeyFor(data.point(static_cast<PointId>(i)));
  }
  idx->order_.resize(n);
  for (size_t i = 0; i < n; ++i) idx->order_[i] = static_cast<PointId>(i);
  std::sort(idx->order_.begin(), idx->order_.end(),
            [&](PointId a, PointId b) {
              if (keys[a] != keys[b]) return keys[a] < keys[b];
              return a < b;
            });
  idx->keys_.resize(n);
  for (size_t i = 0; i < n; ++i) idx->keys_[i] = keys[idx->order_[i]];
  *out = std::move(idx);
  return Status::OK();
}

std::vector<int64_t> SkLsh::KeyFor(std::span<const Scalar> p) const {
  const uint32_t m = options_.num_keys;
  std::vector<int64_t> key(m);
  for (uint32_t i = 0; i < m; ++i) {
    const double* a = proj_.data() + static_cast<size_t>(i) * dim_;
    double dot = shift_[i];
    for (size_t j = 0; j < dim_; ++j) dot += a[j] * p[j];
    key[i] = static_cast<int64_t>(std::floor(dot / options_.bucket_width));
  }
  return key;
}

Status SkLsh::Candidates(std::span<const Scalar> q, size_t k,
                         std::vector<PointId>* out,
                         storage::IoStats* stats) {
  if (q.size() != dim_) return Status::InvalidArgument("query dim mismatch");
  out->clear();
  const size_t n = order_.size();
  const size_t want = std::min<size_t>(
      n, std::max<size_t>(options_.window, 2 * k));

  const std::vector<int64_t> qkey = KeyFor(q);
  const size_t pos = static_cast<size_t>(
      std::lower_bound(keys_.begin(), keys_.end(), qkey) - keys_.begin());

  // Symmetric window around the query's rank, clamped to the array.
  size_t lo = pos > want / 2 ? pos - want / 2 : 0;
  size_t hi = std::min(n, lo + want);
  if (hi - lo < want && lo > 0) lo = hi > want ? hi - want : 0;

  out->assign(order_.begin() + lo, order_.begin() + hi);
  std::sort(out->begin(), out->end());

  if (stats != nullptr) {
    // One seek into the key-ordered file, then a sequential window.
    stats->page_reads += 1;
    stats->seq_page_reads +=
        ((hi - lo) * sizeof(PointId)) / storage::kDefaultPageSize;
    stats->bytes_read += (hi - lo) * sizeof(PointId);
  }
  return Status::OK();
}

}  // namespace eeb::index
