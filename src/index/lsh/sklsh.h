// SK-LSH [Liu et al., VLDB'14]: arrange points in the linear order of a
// compound LSH key so that similar points land on nearby positions (and,
// on disk, nearby pages). A query locates its own position in the order by
// binary search and takes the surrounding window as candidates — turning
// candidate generation into a handful of sequential page reads.
//
// The paper cites SK-LSH both as the source of the "sorted-key" file
// ordering (Fig. 9) and as an orthogonal I/O reduction (Sec. 6). This
// implementation provides it as a CandidateIndex so the caching layer can
// be combined with it, demonstrating that orthogonality.

#ifndef EEB_INDEX_LSH_SKLSH_H_
#define EEB_INDEX_LSH_SKLSH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/dataset.h"
#include "index/candidate_index.h"

namespace eeb::index {

struct SkLshOptions {
  uint32_t num_keys = 4;      ///< compound-key length
  double bucket_width = 16.0;  ///< projection quantization width
  uint32_t window = 256;      ///< candidates taken around the query position
  uint64_t seed = 77;
};

/// Sorted-key LSH candidate generator.
class SkLsh : public CandidateIndex {
 public:
  static Status Build(const Dataset& data, const SkLshOptions& options,
                      std::unique_ptr<SkLsh>* out);

  /// Takes max(window, 2k) candidates around the query's rank.
  Status Candidates(std::span<const Scalar> q, size_t k,
                    std::vector<PointId>* out,
                    storage::IoStats* stats) override;

  std::string name() const override { return "SK-LSH"; }

 private:
  SkLsh(const SkLshOptions& options, size_t dim)
      : options_(options), dim_(dim) {}

  std::vector<int64_t> KeyFor(std::span<const Scalar> p) const;

  SkLshOptions options_;
  size_t dim_;
  std::vector<double> proj_;   // num_keys * d
  std::vector<double> shift_;  // num_keys
  std::vector<std::vector<int64_t>> keys_;  // sorted compound keys
  std::vector<PointId> order_;              // ids in key order
};

}  // namespace eeb::index

#endif  // EEB_INDEX_LSH_SKLSH_H_
