// Shared machinery for tree-based kNN indexes (paper Sec. 3.6.1):
//  * LeafStore — leaf-grouped on-disk point storage. Each leaf occupies
//    whole pages of a PointFile written in leaf order, so "fetch a leaf"
//    costs its page count in I/O. The in-RAM part (member id lists) models
//    the non-leaf index I kept in memory.
//  * TreeKnnSearch — the generic cache-aware multi-step kNN: visit units
//    (uncached leaves / cached approximate points) in lower-bound order,
//    maintain the kth-upper-bound threshold, fetch a leaf only when some
//    member survives pruning.
//
// iDistance and the VP-tree differ only in how they compute per-leaf lower
// bounds for a query; both delegate the search to TreeKnnSearch.

#ifndef EEB_INDEX_TREE_COMMON_H_
#define EEB_INDEX_TREE_COMMON_H_

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/status.h"
#include "common/topk.h"
#include "cache/node_cache.h"
#include "storage/env.h"
#include "storage/io_stats.h"
#include "storage/point_file.h"

namespace eeb::index {

/// Leaf-grouped point storage: the "dataset P = set of leaf nodes" half of
/// the paper's Fig. 7 split.
class LeafStore {
 public:
  /// Writes the point file in leaf order and keeps the member lists.
  /// Every point id must appear in exactly one leaf.
  static Status Create(storage::Env* env, const std::string& path,
                       const Dataset& data,
                       std::vector<std::vector<PointId>> leaf_points,
                       std::unique_ptr<LeafStore>* out,
                       size_t page_size = storage::kDefaultPageSize);

  size_t num_leaves() const { return leaf_points_.size(); }
  const std::vector<std::vector<PointId>>& leaf_points() const {
    return leaf_points_;
  }
  size_t dim() const { return file_->dim(); }
  const storage::PointFile& file() const { return *file_; }

  /// Reads every point of `leaf` from disk; invokes fn(id, point) per point.
  /// Page I/O is deduplicated within the query via `tracker`.
  Status FetchLeaf(uint32_t leaf,
                   const std::function<void(PointId, std::span<const Scalar>)>&
                       fn,
                   storage::IoStats* stats, storage::PageTracker* tracker) const;

 private:
  LeafStore() = default;

  std::vector<std::vector<PointId>> leaf_points_;
  std::unique_ptr<storage::PointFile> file_;
  mutable std::vector<Scalar> scratch_;
};

/// Outcome of one tree kNN search.
struct TreeSearchResult {
  std::vector<Neighbor> neighbors;
  storage::IoStats io;
  uint64_t leaves_fetched = 0;
  uint64_t leaves_pruned = 0;   ///< leaves never fetched thanks to bounds
  uint64_t cache_hits = 0;
  std::vector<uint32_t> fetched_leaves;  ///< ids, in fetch order
};

/// Cache-aware multi-step kNN over a LeafStore.
///
/// @param leaf_lb  per-leaf lower bound of dist(q, any point in leaf); must
///                 be a valid lower bound or results will be wrong
/// @param cache    leaf-node cache (nullptr disables caching)
Status TreeKnnSearch(const LeafStore& store, std::span<const double> leaf_lb,
                     std::span<const Scalar> q, size_t k,
                     cache::NodeCache* cache, TreeSearchResult* out);

}  // namespace eeb::index

#endif  // EEB_INDEX_TREE_COMMON_H_
