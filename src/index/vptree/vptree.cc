#include "index/vptree/vptree.h"

#include <algorithm>
#include <cmath>

#include "common/distance.h"
#include "common/random.h"

namespace eeb::index {

int32_t VpTree::BuildNode(const Dataset& data, std::vector<PointId>& ids,
                          size_t lo, size_t hi, size_t leaf_cap, uint64_t seed,
                          std::vector<std::vector<PointId>>* leaves) {
  const int32_t node_id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();

  if (hi - lo <= leaf_cap) {
    const uint32_t leaf_id = static_cast<uint32_t>(leaves->size());
    leaves->emplace_back(ids.begin() + lo, ids.begin() + hi);
    nodes_[node_id] = {true, leaf_id, 0, 0.0, -1, -1};
    return node_id;
  }

  // Deterministic pseudo-random vantage pick within the range.
  Rng rng(seed ^ (static_cast<uint64_t>(lo) << 32) ^ hi);
  const size_t vidx = lo + rng.Uniform(hi - lo);
  std::swap(ids[lo], ids[vidx]);
  const PointId vantage = ids[lo];
  const uint32_t vrow = static_cast<uint32_t>(vantages_.size());
  vantages_.Append(data.point(vantage));

  // Median split of the remaining points by distance to the vantage. The
  // vantage itself goes to the inner side (distance 0).
  struct DistId {
    double dist;
    PointId id;
  };
  std::vector<DistId> dists;
  dists.reserve(hi - lo);
  for (size_t i = lo; i < hi; ++i) {
    dists.push_back({L2(data.point(ids[i]), data.point(vantage)), ids[i]});
  }
  const size_t mid = dists.size() / 2;
  std::nth_element(dists.begin(), dists.begin() + mid, dists.end(),
                   [](const DistId& a, const DistId& b) {
                     if (a.dist != b.dist) return a.dist < b.dist;
                     return a.id < b.id;
                   });
  const double radius = dists[mid].dist;
  // Partition: [lo, lo+mid) inner (dist <= radius by nth_element ordering is
  // not guaranteed for ties, so re-partition explicitly).
  size_t w = lo;
  std::vector<PointId> outer;
  for (const DistId& e : dists) {
    if (e.dist < radius || (e.dist == radius && w - lo < mid)) {
      ids[w++] = e.id;
    } else {
      outer.push_back(e.id);
    }
  }
  const size_t split = w;
  for (PointId id : outer) ids[w++] = id;

  // Degenerate split (e.g. all identical distances): emit a flat chain of
  // leaves. The extra nodes are unreachable from the returned one; their
  // leaves keep the always-valid lower bound 0. The appended vantage row is
  // simply left unreferenced.
  if (split == lo || split == hi) {
    int32_t first = -1;
    nodes_.pop_back();
    for (size_t start = lo; start < hi; start += leaf_cap) {
      const size_t stop = std::min(start + leaf_cap, hi);
      const int32_t nid = static_cast<int32_t>(nodes_.size());
      nodes_.emplace_back();
      const uint32_t leaf_id = static_cast<uint32_t>(leaves->size());
      leaves->emplace_back(ids.begin() + start, ids.begin() + stop);
      nodes_[nid] = {true, leaf_id, 0, 0.0, -1, -1};
      if (first < 0) first = nid;
    }
    return first;
  }

  const int32_t inner =
      BuildNode(data, ids, lo, split, leaf_cap, seed * 2654435761u + 1, leaves);
  const int32_t outer_child =
      BuildNode(data, ids, split, hi, leaf_cap, seed * 2654435761u + 2, leaves);
  nodes_[node_id] = {false, 0, vrow, radius, inner, outer_child};
  return node_id;
}

Status VpTree::Build(storage::Env* env, const std::string& path,
                     const Dataset& data, const VpTreeOptions& options,
                     std::unique_ptr<VpTree>* out) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  const size_t record_bytes = data.dim() * sizeof(Scalar);
  const size_t leaf_cap =
      std::max<size_t>(1, options.page_size / record_bytes);

  std::unique_ptr<VpTree> idx(new VpTree());
  idx->vantages_ = Dataset(data.dim());

  std::vector<PointId> ids(data.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<PointId>(i);
  std::vector<std::vector<PointId>> leaves;
  idx->BuildNode(data, ids, 0, ids.size(), leaf_cap, options.seed, &leaves);

  EEB_RETURN_IF_ERROR(LeafStore::Create(env, path, data, std::move(leaves),
                                        &idx->store_, options.page_size));
  *out = std::move(idx);
  return Status::OK();
}

void VpTree::LeafLowerBounds(std::span<const Scalar> q,
                             std::vector<double>* lb) const {
  lb->assign(store_->num_leaves(), 0.0);

  // Iterative DFS carrying the accumulated lower bound. Degenerate leaf
  // chains (nodes unreachable from node 0) keep bound 0, which is safe.
  struct Frame {
    int32_t node;
    double bound;
  };
  std::vector<Frame> stack;
  if (!nodes_.empty()) stack.push_back({0, 0.0});
  while (!stack.empty()) {
    const Frame f = stack.back();
    stack.pop_back();
    const Node& node = nodes_[f.node];
    if (node.is_leaf) {
      (*lb)[node.leaf_id] = f.bound;
      continue;
    }
    const double dq = L2(q, vantages_.point(node.vantage_row));
    const double inner_b = std::max(f.bound, dq - node.radius);
    const double outer_b = std::max(f.bound, node.radius - dq);
    stack.push_back({node.inner_child, inner_b});
    stack.push_back({node.outer_child, outer_b});
  }
  // Leaves emitted by the degenerate path may not be reachable from the
  // root; their bound stays 0 (always correct).
}

Status VpTree::Search(std::span<const Scalar> q, size_t k,
                      cache::NodeCache* cache, TreeSearchResult* out) const {
  std::vector<double> lb;
  LeafLowerBounds(q, &lb);
  return TreeKnnSearch(*store_, lb, q, k, cache, out);
}

}  // namespace eeb::index
