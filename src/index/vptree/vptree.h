// VP-tree (vantage-point tree) [Yianilos'93; used for kNN pruning in
// Boytsov&Naidan'13]: each inner node picks a vantage point and splits the
// remaining points by the median distance to it; leaves hold a page worth of
// points. Inner nodes (vantage coordinates + radii) stay in RAM as index I;
// leaves are the disk-resident point set (paper Fig. 7). Search computes
// per-leaf triangle-inequality lower bounds and delegates to TreeKnnSearch.

#ifndef EEB_INDEX_VPTREE_VPTREE_H_
#define EEB_INDEX_VPTREE_VPTREE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "index/tree_common.h"

namespace eeb::index {

struct VpTreeOptions {
  uint64_t seed = 11;
  size_t page_size = storage::kDefaultPageSize;
};

/// Disk-based VP-tree with cache-aware kNN search.
class VpTree {
 public:
  static Status Build(storage::Env* env, const std::string& path,
                      const Dataset& data, const VpTreeOptions& options,
                      std::unique_ptr<VpTree>* out);

  Status Search(std::span<const Scalar> q, size_t k, cache::NodeCache* cache,
                TreeSearchResult* out) const;

  const LeafStore& store() const { return *store_; }
  size_t num_leaves() const { return store_->num_leaves(); }

  /// Per-leaf triangle-inequality lower bounds — exposed for tests.
  void LeafLowerBounds(std::span<const Scalar> q,
                       std::vector<double>* lb) const;

 private:
  VpTree() = default;

  struct Node {
    bool is_leaf;
    uint32_t leaf_id;      // when is_leaf
    uint32_t vantage_row;  // row in vantages_ (when inner)
    double radius;         // median split distance (when inner)
    int32_t inner_child;   // dist(p, v) <= radius subtree
    int32_t outer_child;   // dist(p, v) >  radius subtree
  };

  int32_t BuildNode(const Dataset& data, std::vector<PointId>& ids, size_t lo,
                    size_t hi, size_t leaf_cap, uint64_t seed,
                    std::vector<std::vector<PointId>>* leaves);

  std::vector<Node> nodes_;
  Dataset vantages_;  // vantage point coordinates (RAM-resident index I)
  std::unique_ptr<LeafStore> store_;
};

}  // namespace eeb::index

#endif  // EEB_INDEX_VPTREE_VPTREE_H_
