// VA-file [Weber & Blott '97]: every point is approximated by b bits per
// dimension using per-dimension equi-depth (quantile) partitions. A query
// first scans the (small) approximation file computing lower/upper distance
// bounds per point, keeps the points whose lower bound does not exceed the
// k-th smallest upper bound (the VA-SSA filter), and refines the survivors
// against the full-precision file.
//
// Exposed as a CandidateIndex: Candidates() runs the filtering scan (charged
// as sequential I/O over the approximation file) and reports the survivors,
// which then flow through the same cache-assisted reduction/refinement
// pipeline as LSH candidates. This is how Fig. 16(b) pairs VA-file with
// EXACT / HC-O caching.

#ifndef EEB_INDEX_VAFILE_VAFILE_H_
#define EEB_INDEX_VAFILE_VAFILE_H_

#include <memory>
#include <vector>

#include "common/dataset.h"
#include "hist/individual.h"
#include "index/candidate_index.h"

namespace eeb::index {

struct VaFileOptions {
  uint32_t bits_per_dim = 4;  ///< b, the VA-file resolution
  uint32_t ndom = 256;        ///< integer value domain of the data
  bool integral = false;      ///< coordinates are integers (tight edges)
};

/// VA-file over a dataset. The approximation array lives in RAM (it is what
/// the original system keeps hot); its sequential scan cost is charged per
/// query so the filter is not free.
class VaFile : public CandidateIndex {
 public:
  static Status Build(const Dataset& data, const VaFileOptions& options,
                      std::unique_ptr<VaFile>* out);

  /// VA-SSA filter: survivors of the bound test, sorted by id.
  Status Candidates(std::span<const Scalar> q, size_t k,
                    std::vector<PointId>* out,
                    storage::IoStats* stats) override;

  std::string name() const override { return "VA-file"; }

  /// Bytes of the approximation array (n * d * b / 8).
  size_t approximation_bytes() const { return words_.size() * sizeof(uint64_t); }

  const hist::IndividualHistograms& marks() const { return marks_; }

 private:
  VaFile() = default;

  VaFileOptions options_;
  size_t dim_ = 0;
  size_t n_ = 0;
  size_t words_per_point_ = 0;
  hist::IndividualHistograms marks_;  // per-dimension equi-depth partitions
  std::vector<uint64_t> words_;       // packed approximations of all points
};

}  // namespace eeb::index

#endif  // EEB_INDEX_VAFILE_VAFILE_H_
