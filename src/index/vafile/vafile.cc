#include "index/vafile/vafile.h"

#include <algorithm>

#include "common/bitops.h"
#include "common/topk.h"
#include "cache/code_cache.h"
#include "hist/bounds.h"
#include "storage/point_file.h"

namespace eeb::index {

Status VaFile::Build(const Dataset& data, const VaFileOptions& options,
                     std::unique_ptr<VaFile>* out) {
  if (data.empty()) return Status::InvalidArgument("empty dataset");
  if (options.bits_per_dim == 0 || options.bits_per_dim > 16) {
    return Status::InvalidArgument("bits_per_dim must be in [1, 16]");
  }
  std::unique_ptr<VaFile> va(new VaFile());
  va->options_ = options;
  va->dim_ = data.dim();
  va->n_ = data.size();

  // Per-dimension equi-depth marks over the full dataset.
  std::vector<PointId> all(data.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<PointId>(i);
  const std::vector<hist::FrequencyArray> freqs =
      hist::PerDimFrequencies(data, all, options.ndom);
  EEB_RETURN_IF_ERROR(hist::BuildIndividual(
      freqs, 1u << options.bits_per_dim, hist::BuilderKind::kEquiDepth,
      &va->marks_));

  // Pack the approximation of every point.
  const uint32_t b = options.bits_per_dim;
  va->words_per_point_ = WordsForBits(va->dim_ * b);
  va->words_.assign(va->n_ * va->words_per_point_, 0);
  std::vector<BucketId> codes(va->dim_);
  for (size_t i = 0; i < va->n_; ++i) {
    cache::EncodeIndividual(va->marks_, data.point(static_cast<PointId>(i)),
                            codes);
    uint64_t* base = va->words_.data() + i * va->words_per_point_;
    size_t bit = 0;
    for (size_t j = 0; j < va->dim_; ++j) {
      const size_t word = bit >> 6;
      const unsigned shift = bit & 63;
      base[word] |= static_cast<uint64_t>(codes[j]) << shift;
      if (shift + b > 64) {
        base[word + 1] |= static_cast<uint64_t>(codes[j]) >> (64 - shift);
      }
      bit += b;
    }
  }
  *out = std::move(va);
  return Status::OK();
}

Status VaFile::Candidates(std::span<const Scalar> q, size_t k,
                          std::vector<PointId>* out,
                          storage::IoStats* stats) {
  if (q.size() != dim_) return Status::InvalidArgument("query dim mismatch");
  out->clear();

  const uint32_t b = options_.bits_per_dim;
  std::vector<BucketId> codes(dim_);
  std::vector<double> lbs(n_);
  TopK ub_topk(k);

  for (size_t i = 0; i < n_; ++i) {
    const uint64_t* base = words_.data() + i * words_per_point_;
    size_t bit = 0;
    for (size_t j = 0; j < dim_; ++j) {
      codes[j] = static_cast<BucketId>(UnpackBits(base, bit, b));
      bit += b;
    }
    double lb, ub;
    hist::CodeBoundsIndividual(marks_, q, codes, &lb, &ub,
                               options_.integral);
    lbs[i] = lb;
    ub_topk.Push(static_cast<PointId>(i), ub);
  }

  const double threshold = ub_topk.Threshold();
  for (size_t i = 0; i < n_; ++i) {
    if (lbs[i] <= threshold) out->push_back(static_cast<PointId>(i));
  }

  if (stats != nullptr) {
    // Sequential scan of the approximation file.
    const uint64_t bytes = approximation_bytes();
    stats->seq_page_reads += (bytes + storage::kDefaultPageSize - 1) /
                             storage::kDefaultPageSize;
    stats->bytes_read += bytes;
  }
  return Status::OK();
}

}  // namespace eeb::index
