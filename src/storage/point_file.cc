#include "storage/point_file.h"

#include <cstring>

namespace eeb::storage {
namespace {

constexpr uint64_t kMagic = 0x4545425046494c45ULL;  // "EEBPFILE"

struct Header {
  uint64_t magic;
  uint64_t n;
  uint64_t dim;
  uint64_t page_size;
  uint64_t n_slots;
};

}  // namespace

Status PointFile::Create(Env* env, const std::string& path,
                         const Dataset& data,
                         const std::vector<PointId>& order,
                         size_t page_size) {
  const size_t n = data.size();
  const size_t dim = data.dim();
  const size_t n_slots = order.size();
  if (n_slots < n) {
    return Status::InvalidArgument("order has fewer slots than points");
  }
  const size_t record_bytes = dim * sizeof(Scalar);
  if (record_bytes == 0 || page_size == 0) {
    return Status::InvalidArgument("empty record or page");
  }

  std::unique_ptr<WritableFile> f;
  EEB_RETURN_IF_ERROR(env->NewWritableFile(path, &f));
  // From here on any failure must also remove the partial file; the write
  // body runs in a lambda so every early return funnels through the cleanup.
  auto write_body = [&]() -> Status {
    // Header page.
    std::vector<char> page(page_size, 0);
    Header h{kMagic, n, dim, page_size, n_slots};
    std::memcpy(page.data(), &h, sizeof(h));
    EEB_RETURN_IF_ERROR(f->Append(page.data(), page.size()));

    // Data pages in slot order.
    const size_t ppp = record_bytes <= page_size ? page_size / record_bytes : 0;
    const size_t pages_per_point =
        ppp > 0 ? 1 : (record_bytes + page_size - 1) / page_size;

    // Build the inverse permutation (id -> slot) while writing, validating
    // that every real id appears exactly once (a duplicate would silently
    // orphan another point's slot-table entry).
    std::vector<bool> seen(n, false);
    std::vector<uint32_t> id_to_slot(n);
    if (ppp > 0) {
      size_t slot = 0;
      while (slot < n_slots) {
        std::fill(page.begin(), page.end(), 0);
        size_t in_page = std::min(ppp, n_slots - slot);
        for (size_t i = 0; i < in_page; ++i) {
          PointId id = order[slot + i];
          if (id == kInvalidPointId) continue;  // padding slot
          if (id >= n) return Status::InvalidArgument("order id out of range");
          if (seen[id]) return Status::InvalidArgument("duplicate id in order");
          seen[id] = true;
          id_to_slot[id] = static_cast<uint32_t>(slot + i);
          auto p = data.point(id);
          std::memcpy(page.data() + i * record_bytes, p.data(), record_bytes);
        }
        EEB_RETURN_IF_ERROR(f->Append(page.data(), page.size()));
        slot += in_page;
      }
    } else {
      std::vector<char> rec(pages_per_point * page_size, 0);
      for (size_t slot = 0; slot < n_slots; ++slot) {
        PointId id = order[slot];
        std::memset(rec.data(), 0, rec.size());
        if (id != kInvalidPointId) {
          if (id >= n) return Status::InvalidArgument("order id out of range");
          if (seen[id]) return Status::InvalidArgument("duplicate id in order");
          seen[id] = true;
          id_to_slot[id] = static_cast<uint32_t>(slot);
          auto p = data.point(id);
          std::memcpy(rec.data(), p.data(), record_bytes);
        }
        EEB_RETURN_IF_ERROR(f->Append(rec.data(), rec.size()));
      }
    }

    for (size_t id = 0; id < n; ++id) {
      if (!seen[id]) return Status::InvalidArgument("order is missing an id");
    }

    // Slot table tail: id -> slot, 4 bytes per point.
    EEB_RETURN_IF_ERROR(
        f->Append(reinterpret_cast<const char*>(id_to_slot.data()),
                  id_to_slot.size() * sizeof(uint32_t)));
    return f->Close();
  };
  return CleanupIfError(env, path, write_body());
}

Status PointFile::Create(Env* env, const std::string& path,
                         const Dataset& data, size_t page_size) {
  std::vector<PointId> order(data.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<PointId>(i);
  return Create(env, path, data, order, page_size);
}

Status PointFile::Open(Env* env, const std::string& path,
                       std::unique_ptr<PointFile>* out) {
  std::unique_ptr<PointFile> pf(new PointFile());
  EEB_RETURN_IF_ERROR(pf->Init(env, path));
  *out = std::move(pf);
  return Status::OK();
}

Status PointFile::Init(Env* env, const std::string& path) {
  EEB_RETURN_IF_ERROR(env->NewRandomAccessFile(path, &file_));
  Header h;
  EEB_RETURN_IF_ERROR(file_->Read(0, sizeof(h), reinterpret_cast<char*>(&h)));
  if (h.magic != kMagic) return Status::Corruption("bad point file magic");
  n_ = h.n;
  dim_ = h.dim;
  page_size_ = h.page_size;
  n_slots_ = h.n_slots;
  record_bytes_ = dim_ * sizeof(Scalar);
  points_per_page_ =
      record_bytes_ <= page_size_ ? page_size_ / record_bytes_ : 0;
  pages_per_point_ = points_per_page_ > 0
                         ? 1
                         : (record_bytes_ + page_size_ - 1) / page_size_;
  data_start_ = page_size_;
  if (points_per_page_ > 0) {
    data_pages_ = (n_slots_ + points_per_page_ - 1) / points_per_page_;
  } else {
    data_pages_ = n_slots_ * pages_per_point_;
  }

  id_to_slot_.resize(n_);
  const uint64_t table_off = data_start_ + data_pages_ * page_size_;
  EEB_RETURN_IF_ERROR(file_->Read(table_off, n_ * sizeof(uint32_t),
                                  reinterpret_cast<char*>(id_to_slot_.data())));
  return Status::OK();
}

uint64_t PointFile::PageOfPoint(PointId id) const {
  const uint32_t slot = id_to_slot_[id];
  if (points_per_page_ > 0) return slot / points_per_page_;
  return static_cast<uint64_t>(slot) * pages_per_point_;
}

Status PointFile::ReadPoint(PointId id, std::span<Scalar> out, IoStats* stats,
                            PageTracker* tracker) const {
  obs::ProfScope prof_scope(prof_, "read_point");
  if (id >= n_) return Status::InvalidArgument("point id out of range");
  if (out.size() != dim_) return Status::InvalidArgument("bad output span");
  const uint32_t slot = id_to_slot_[id];

  uint64_t offset;
  uint64_t first_page;
  size_t pages_touched;
  if (points_per_page_ > 0) {
    first_page = slot / points_per_page_;
    const size_t in_page = slot % points_per_page_;
    offset = data_start_ + first_page * page_size_ + in_page * record_bytes_;
    pages_touched = 1;
  } else {
    first_page = static_cast<uint64_t>(slot) * pages_per_point_;
    offset = data_start_ + first_page * page_size_;
    pages_touched = pages_per_point_;
  }

  EEB_RETURN_IF_ERROR(
      file_->Read(offset, record_bytes_, reinterpret_cast<char*>(out.data())));

  if (stats != nullptr) {
    uint64_t charged_pages = 0;
    for (size_t i = 0; i < pages_touched; ++i) {
      const uint64_t page = first_page + i;
      if (tracker == nullptr || tracker->Touch(page)) charged_pages += 1;
    }
    stats->point_reads += 1;
    stats->bytes_read += record_bytes_;
    stats->page_reads += charged_pages;
  }
  return Status::OK();
}

void PointFile::PublishIo(const IoStats& delta) const {
  if (obs_point_reads_ == nullptr) return;
  obs_point_reads_->Add(delta.point_reads);
  obs_page_reads_->Add(delta.page_reads);
  obs_bytes_read_->Add(delta.bytes_read);
}

void PointFile::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    obs_point_reads_ = nullptr;
    obs_page_reads_ = nullptr;
    obs_bytes_read_ = nullptr;
    return;
  }
  obs_point_reads_ = registry->GetCounter("storage.point_reads");
  obs_page_reads_ = registry->GetCounter("storage.random_page_reads");
  obs_bytes_read_ = registry->GetCounter("storage.bytes_read");
}

}  // namespace eeb::storage
