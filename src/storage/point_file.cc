#include "storage/point_file.h"

#include <cstring>

#include "common/crc32c.h"

namespace eeb::storage {
namespace {

constexpr uint64_t kMagicV1 = 0x4545425046494c45ULL;  // "EEBPFILE"
constexpr uint64_t kMagicV2 = 0x4545425046494c32ULL;  // "EEBPFIL2"

struct Header {
  uint64_t magic;
  uint64_t n;
  uint64_t dim;
  uint64_t page_size;
  uint64_t n_slots;
};

}  // namespace

Status PointFile::Create(Env* env, const std::string& path,
                         const Dataset& data,
                         const std::vector<PointId>& order,
                         size_t page_size, uint32_t format_version) {
  const size_t n = data.size();
  const size_t dim = data.dim();
  const size_t n_slots = order.size();
  if (n_slots < n) {
    return Status::InvalidArgument("order has fewer slots than points");
  }
  if (format_version != kFormatLegacy &&
      format_version != kFormatChecksummed) {
    return Status::InvalidArgument("unknown point file format version");
  }
  const size_t footer =
      format_version >= kFormatChecksummed ? kPageFooterBytes : 0;
  const size_t record_bytes = dim * sizeof(Scalar);
  if (record_bytes == 0 || page_size <= footer) {
    return Status::InvalidArgument("empty record or page");
  }
  const size_t payload = page_size - footer;

  std::unique_ptr<WritableFile> f;
  EEB_RETURN_IF_ERROR(env->NewWritableFile(path, &f));
  // From here on any failure must also remove the partial file; the write
  // body runs in a lambda so every early return funnels through the cleanup.
  auto write_body = [&]() -> Status {
    std::vector<char> page(page_size, 0);
    // Stamp the footer (v2) and flush one finished page.
    auto append_page = [&]() -> Status {
      if (footer > 0) {
        const uint32_t crc = Crc32c(page.data(), payload);
        std::memcpy(page.data() + payload, &crc, sizeof(crc));
      }
      return f->Append(page.data(), page.size());
    };

    // Header page.
    Header h{format_version >= kFormatChecksummed ? kMagicV2 : kMagicV1, n,
             dim, page_size, n_slots};
    std::memcpy(page.data(), &h, sizeof(h));
    EEB_RETURN_IF_ERROR(append_page());

    // Data pages in slot order. Records pack into the page payload area;
    // oversized records are chunked payload-by-payload across whole pages.
    const size_t ppp = record_bytes <= payload ? payload / record_bytes : 0;
    const size_t pages_per_point =
        ppp > 0 ? 1 : (record_bytes + payload - 1) / payload;

    // Build the inverse permutation (id -> slot) while writing, validating
    // that every real id appears exactly once (a duplicate would silently
    // orphan another point's slot-table entry).
    std::vector<bool> seen(n, false);
    std::vector<uint32_t> id_to_slot(n);
    auto claim = [&](PointId id, size_t slot) -> Status {
      if (id >= n) return Status::InvalidArgument("order id out of range");
      if (seen[id]) return Status::InvalidArgument("duplicate id in order");
      seen[id] = true;
      id_to_slot[id] = static_cast<uint32_t>(slot);
      return Status::OK();
    };
    if (ppp > 0) {
      size_t slot = 0;
      while (slot < n_slots) {
        std::fill(page.begin(), page.end(), 0);
        size_t in_page = std::min(ppp, n_slots - slot);
        for (size_t i = 0; i < in_page; ++i) {
          PointId id = order[slot + i];
          if (id == kInvalidPointId) continue;  // padding slot
          EEB_RETURN_IF_ERROR(claim(id, slot + i));
          auto p = data.point(id);
          std::memcpy(page.data() + i * record_bytes, p.data(), record_bytes);
        }
        EEB_RETURN_IF_ERROR(append_page());
        slot += in_page;
      }
    } else {
      for (size_t slot = 0; slot < n_slots; ++slot) {
        PointId id = order[slot];
        const char* src = nullptr;
        if (id != kInvalidPointId) {
          EEB_RETURN_IF_ERROR(claim(id, slot));
          src = reinterpret_cast<const char*>(data.point(id).data());
        }
        size_t off = 0;
        for (size_t pg = 0; pg < pages_per_point; ++pg) {
          std::fill(page.begin(), page.end(), 0);
          if (src != nullptr && off < record_bytes) {
            const size_t chunk = std::min(payload, record_bytes - off);
            std::memcpy(page.data(), src + off, chunk);
            off += chunk;
          }
          EEB_RETURN_IF_ERROR(append_page());
        }
      }
    }

    for (size_t id = 0; id < n; ++id) {
      if (!seen[id]) return Status::InvalidArgument("order is missing an id");
    }

    // Slot table tail: id -> slot, 4 bytes per point, then its CRC (v2).
    const char* table = reinterpret_cast<const char*>(id_to_slot.data());
    const size_t table_bytes = id_to_slot.size() * sizeof(uint32_t);
    EEB_RETURN_IF_ERROR(f->Append(table, table_bytes));
    if (footer > 0) {
      const uint32_t crc = Crc32c(table, table_bytes);
      EEB_RETURN_IF_ERROR(
          f->Append(reinterpret_cast<const char*>(&crc), sizeof(crc)));
    }
    return f->Close();
  };
  return CleanupIfError(env, path, write_body());
}

Status PointFile::Create(Env* env, const std::string& path,
                         const Dataset& data, size_t page_size) {
  std::vector<PointId> order(data.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = static_cast<PointId>(i);
  return Create(env, path, data, order, page_size);
}

Status PointFile::Open(Env* env, const std::string& path,
                       std::unique_ptr<PointFile>* out) {
  std::unique_ptr<PointFile> pf(new PointFile());
  EEB_RETURN_IF_ERROR(pf->Init(env, path));
  *out = std::move(pf);
  return Status::OK();
}

Status PointFile::VerifyPage(const char* page, uint64_t file_page) const {
  uint32_t stored;
  std::memcpy(&stored, page + payload_bytes_, sizeof(stored));
  if (Crc32c(page, payload_bytes_) != stored) {
    return Status::Corruption("point file page " + std::to_string(file_page) +
                              " checksum mismatch");
  }
  return Status::OK();
}

Status PointFile::Init(Env* env, const std::string& path) {
  EEB_RETURN_IF_ERROR(env->NewRandomAccessFile(path, &file_));
  Header h;
  EEB_RETURN_IF_ERROR(file_->Read(0, sizeof(h), reinterpret_cast<char*>(&h)));
  if (h.magic == kMagicV2) {
    format_version_ = kFormatChecksummed;
    footer_bytes_ = kPageFooterBytes;
  } else if (h.magic == kMagicV1) {
    format_version_ = kFormatLegacy;
    footer_bytes_ = 0;
  } else {
    return Status::Corruption("bad point file magic");
  }
  n_ = h.n;
  dim_ = h.dim;
  page_size_ = h.page_size;
  n_slots_ = h.n_slots;
  record_bytes_ = dim_ * sizeof(Scalar);
  if (record_bytes_ == 0 || page_size_ <= footer_bytes_ ||
      page_size_ < sizeof(Header)) {
    return Status::Corruption("bad point file geometry");
  }
  payload_bytes_ = page_size_ - footer_bytes_;
  points_per_page_ =
      record_bytes_ <= payload_bytes_ ? payload_bytes_ / record_bytes_ : 0;
  pages_per_point_ = points_per_page_ > 0
                         ? 1
                         : (record_bytes_ + payload_bytes_ - 1) /
                               payload_bytes_;
  data_start_ = page_size_;
  if (points_per_page_ > 0) {
    data_pages_ = (n_slots_ + points_per_page_ - 1) / points_per_page_;
  } else {
    data_pages_ = n_slots_ * pages_per_point_;
  }

  if (footer_bytes_ > 0) {
    // Re-read the whole header page to verify its footer: a flipped bit in
    // n/dim/page_size would otherwise silently rewire the file geometry.
    std::vector<char> page(page_size_);
    EEB_RETURN_IF_ERROR(file_->Read(0, page_size_, page.data()));
    EEB_RETURN_IF_ERROR(VerifyPage(page.data(), 0));
  }

  id_to_slot_.resize(n_);
  const uint64_t table_off = data_start_ + data_pages_ * page_size_;
  const size_t table_bytes = n_ * sizeof(uint32_t);
  EEB_RETURN_IF_ERROR(file_->Read(table_off, table_bytes,
                                  reinterpret_cast<char*>(id_to_slot_.data())));
  if (footer_bytes_ > 0) {
    uint32_t stored;
    EEB_RETURN_IF_ERROR(file_->Read(table_off + table_bytes, sizeof(stored),
                                    reinterpret_cast<char*>(&stored)));
    if (Crc32c(id_to_slot_.data(), table_bytes) != stored) {
      return Status::Corruption("point file slot table checksum mismatch");
    }
  }
  return Status::OK();
}

uint64_t PointFile::PageOfPoint(PointId id) const {
  const uint32_t slot = id_to_slot_[id];
  if (points_per_page_ > 0) return slot / points_per_page_;
  return static_cast<uint64_t>(slot) * pages_per_point_;
}

Status PointFile::ReadPoint(PointId id, std::span<Scalar> out, IoStats* stats,
                            PageTracker* tracker) const {
  obs::ProfScope prof_scope(prof_, "read_point");
  if (id >= n_) return Status::InvalidArgument("point id out of range");
  if (out.size() != dim_) return Status::InvalidArgument("bad output span");
  const uint32_t slot = id_to_slot_[id];

  uint64_t first_page;
  size_t in_page = 0;
  size_t pages_touched;
  if (points_per_page_ > 0) {
    first_page = slot / points_per_page_;
    in_page = slot % points_per_page_;
    pages_touched = 1;
  } else {
    first_page = static_cast<uint64_t>(slot) * pages_per_point_;
    pages_touched = pages_per_point_;
  }

  if (footer_bytes_ == 0) {
    // Legacy format: fetch just the record bytes (contiguous on disk).
    const uint64_t offset = data_start_ + first_page * page_size_ +
                            in_page * record_bytes_;
    EEB_RETURN_IF_ERROR(file_->Read(offset, record_bytes_,
                                    reinterpret_cast<char*>(out.data())));
  } else {
    // Checksummed format: each page is read whole and verified before any
    // byte of it is copied out, so a corrupt page can never look like data.
    thread_local std::vector<char> page;
    page.resize(page_size_);
    char* dst = reinterpret_cast<char*>(out.data());
    size_t copied = 0;
    // eeb-hot-begin(read-point-page-loop): per-page read/verify/copy — the
    // refinement inner loop. The scratch buffer above is thread_local and
    // sized before entry; nothing in here may allocate.
    for (size_t pg = 0; pg < pages_touched; ++pg) {
      const uint64_t file_page = 1 + first_page + pg;  // 0 is the header
      EEB_RETURN_IF_ERROR(
          file_->Read(file_page * page_size_, page_size_, page.data()));
      EEB_RETURN_IF_ERROR(VerifyPage(page.data(), file_page));
      if (points_per_page_ > 0) {
        std::memcpy(dst, page.data() + in_page * record_bytes_, record_bytes_);
      } else {
        const size_t chunk = std::min(payload_bytes_, record_bytes_ - copied);
        std::memcpy(dst + copied, page.data(), chunk);
        copied += chunk;
      }
    }
    // eeb-hot-end
  }

  if (stats != nullptr) {
    uint64_t charged_pages = 0;
    for (size_t i = 0; i < pages_touched; ++i) {
      const uint64_t page_index = first_page + i;
      if (tracker == nullptr || tracker->Touch(page_index)) charged_pages += 1;
    }
    stats->point_reads += 1;
    stats->bytes_read += record_bytes_;
    stats->page_reads += charged_pages;
  }
  return Status::OK();
}

void PointFile::PublishIo(const IoStats& delta) const {
  if (obs_point_reads_ == nullptr) return;
  obs_point_reads_->Add(delta.point_reads);
  obs_page_reads_->Add(delta.page_reads);
  obs_bytes_read_->Add(delta.bytes_read);
}

void PointFile::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    obs_point_reads_ = nullptr;
    obs_page_reads_ = nullptr;
    obs_bytes_read_ = nullptr;
    return;
  }
  obs_point_reads_ = registry->GetCounter("storage.point_reads");
  obs_page_reads_ = registry->GetCounter("storage.random_page_reads");
  obs_bytes_read_ = registry->GetCounter("storage.bytes_read");
}

}  // namespace eeb::storage
