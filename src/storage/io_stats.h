// I/O accounting and the disk cost model. The paper's refinement-time model
// is Trefine ~= Tio * Crefine (Sec. 2.2): each candidate point fetched from
// disk costs one random I/O. Because our test machine's OS page cache cannot
// be disabled the way the paper's setup was, the harness reports *modeled*
// I/O time (deterministic) alongside measured CPU time.

#ifndef EEB_STORAGE_IO_STATS_H_
#define EEB_STORAGE_IO_STATS_H_

#include <cstdint>
#include <unordered_set>

namespace eeb::storage {

/// Mutable counters threaded through every disk access.
struct IoStats {
  uint64_t point_reads = 0;  ///< candidate points fetched from the data file
  uint64_t page_reads = 0;   ///< distinct RANDOM pages read (seek + read)
  uint64_t seq_page_reads = 0;  ///< pages read as part of a sequential scan
  uint64_t node_reads = 0;   ///< tree nodes fetched (tree indexes)
  uint64_t bytes_read = 0;

  void Reset() { *this = IoStats{}; }

  IoStats& operator+=(const IoStats& o) {
    point_reads += o.point_reads;
    page_reads += o.page_reads;
    seq_page_reads += o.seq_page_reads;
    node_reads += o.node_reads;
    bytes_read += o.bytes_read;
    return *this;
  }
};

/// Deduplicates page fetches within one query: a page already brought in for
/// this query is not charged again (it is resident for the query duration).
class PageTracker {
 public:
  /// Returns true if this is the first touch of `page` in this query.
  bool Touch(uint64_t page) { return seen_.insert(page).second; }

  void Reset() { seen_.clear(); }
  size_t distinct_pages() const { return seen_.size(); }

 private:
  std::unordered_set<uint64_t> seen_;
};

/// Converts I/O counters into modeled wall-clock seconds. Defaults follow a
/// commodity HDD (the paper's setup): ~5 ms per random page read (seek +
/// rotation) and ~0.05 ms per 4 KB page within a sequential scan
/// (~80 MB/s streaming).
struct DiskModel {
  double seconds_per_page = 0.005;
  double seconds_per_seq_page = 0.00005;

  /// Modeled I/O time for the given counters.
  double Seconds(const IoStats& s) const {
    return seconds_per_page * static_cast<double>(s.page_reads) +
           seconds_per_seq_page * static_cast<double>(s.seq_page_reads);
  }
};

}  // namespace eeb::storage

#endif  // EEB_STORAGE_IO_STATS_H_
