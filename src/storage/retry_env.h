// RetryingEnv: bounded-retry wrapper around any Env for transient I/O
// faults. Reads (and file opens) that fail with IOError are retried up to
// max_retries times with exponential backoff; any other code — Corruption
// in particular — is final and passes straight through, because re-reading
// a page whose checksum failed either returns the same bad bytes or hides a
// fault the operator must hear about.
//
// Writes are deliberately NOT retried: an Append that failed mid-stream may
// have written a prefix, and blindly re-appending the buffer would duplicate
// it. Writers already recover via CleanupIfError (delete + rebuild).

#ifndef EEB_STORAGE_RETRY_ENV_H_
#define EEB_STORAGE_RETRY_ENV_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/random.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "storage/env.h"

namespace eeb::storage {

/// Retry budget and backoff shape for transient IOError.
struct RetryPolicy {
  /// Additional attempts after the first failure (0 disables retrying).
  int max_retries = 3;
  /// Sleep before the first retry, in milliseconds.
  double backoff_initial_ms = 0.2;
  /// Multiplier applied to the sleep after each failed retry.
  double backoff_multiplier = 2.0;
  /// Upper bound on a single sleep, in milliseconds.
  double backoff_max_ms = 5.0;
  /// Fraction of each sleep randomized (uniformly in [1-j, 1+j]) so many
  /// readers hitting the same transient fault do not retry in lockstep.
  /// 0 disables jitter (the exact pre-jitter schedule).
  double backoff_jitter = 0.2;
  /// Seed for the deterministic jitter stream.
  uint64_t jitter_seed = 17;
};

/// Env wrapper applying RetryPolicy to reads and opens. Pass-through for
/// everything else. The base Env must outlive the wrapper.
class RetryingEnv : public Env {
 public:
  explicit RetryingEnv(Env* base, RetryPolicy policy = {})
      : base_(base), policy_(policy), jitter_rng_(policy.jitter_seed) {}

  Status NewRandomAccessFile(const std::string& path,
                             std::unique_ptr<RandomAccessFile>* out) override;
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override {
    return base_->NewWritableFile(path, out);  // writes are never retried
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Status DeleteFile(const std::string& path) override {
    return base_->DeleteFile(path);
  }

  /// Runs `op`, retrying per the policy while it returns IOError. Exposed
  /// so RetryingFile (internal) and tests can drive it directly.
  Status WithRetries(const std::function<Status()>& op);

  const RetryPolicy& policy() const { return policy_; }

  /// Retries performed / operations that failed even after the last retry.
  uint64_t retries() const { return retries_.load(std::memory_order_relaxed); }
  uint64_t exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }

  /// Binds "io.retries" / "io.retry_exhausted" counters in `registry`;
  /// nullptr detaches. Counters record deltas from bind time.
  void BindMetrics(obs::MetricsRegistry* registry);

 private:
  /// Next sleep scaled by a jitter factor drawn from the seeded stream.
  double JitteredSleepMs(double sleep_ms) EEB_EXCLUDES(jitter_mu_);

  Env* const base_;
  const RetryPolicy policy_;
  Mutex jitter_mu_;  // serializes the shared jitter stream across readers
  Rng jitter_rng_ EEB_GUARDED_BY(jitter_mu_);
  std::atomic<uint64_t> retries_{0};
  std::atomic<uint64_t> exhausted_{0};
  // Atomic pointers: BindMetrics may run while reads retry on serving
  // threads (System wires observability around a live Env). Counters are
  // internally atomic, so a torn *binding* is the only hazard.
  std::atomic<obs::Counter*> obs_retries_{nullptr};
  std::atomic<obs::Counter*> obs_exhausted_{nullptr};
};

}  // namespace eeb::storage

#endif  // EEB_STORAGE_RETRY_ENV_H_
