#include "storage/file_ordering.h"

#include <algorithm>
#include <cmath>

#include "common/distance.h"
#include "common/kmeans.h"
#include "common/random.h"

namespace eeb::storage {

std::vector<PointId> RawOrder(size_t n) {
  std::vector<PointId> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<PointId>(i);
  return order;
}

std::vector<PointId> ClusteredOrder(const Dataset& data, uint32_t num_clusters,
                                    uint64_t seed) {
  const size_t n = data.size();
  KMeansResult km = KMeans(data, num_clusters, /*max_iters=*/10, seed);

  struct Key {
    uint32_t cluster;
    double dist;
    PointId id;
  };
  std::vector<Key> keys(n);
  for (size_t i = 0; i < n; ++i) {
    const PointId id = static_cast<PointId>(i);
    const uint32_t c = km.assign[i];
    keys[i] = {c, L2(data.point(id), km.centers.point(c)), id};
  }
  std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    if (a.cluster != b.cluster) return a.cluster < b.cluster;
    if (a.dist != b.dist) return a.dist < b.dist;
    return a.id < b.id;
  });

  std::vector<PointId> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = keys[i].id;
  return order;
}

std::vector<PointId> SortedKeyOrder(const Dataset& data, uint32_t num_keys,
                                    double w, uint64_t seed) {
  const size_t n = data.size();
  const size_t d = data.dim();
  Rng rng(seed);

  // Gaussian projection vectors (2-stable, as in E2LSH / SK-LSH).
  std::vector<double> proj(static_cast<size_t>(num_keys) * d);
  std::vector<double> shift(num_keys);
  for (size_t i = 0; i < proj.size(); ++i) proj[i] = rng.NextGaussian();
  for (uint32_t i = 0; i < num_keys; ++i) shift[i] = rng.NextDouble() * w;

  std::vector<std::vector<int64_t>> keys(n, std::vector<int64_t>(num_keys));
  for (size_t i = 0; i < n; ++i) {
    auto p = data.point(static_cast<PointId>(i));
    for (uint32_t m = 0; m < num_keys; ++m) {
      const double* a = proj.data() + static_cast<size_t>(m) * d;
      double dot = shift[m];
      for (size_t j = 0; j < d; ++j) dot += a[j] * p[j];
      keys[i][m] = static_cast<int64_t>(std::floor(dot / w));
    }
  }

  std::vector<PointId> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<PointId>(i);
  std::sort(order.begin(), order.end(), [&](PointId a, PointId b) {
    if (keys[a] != keys[b]) return keys[a] < keys[b];
    return a < b;
  });
  return order;
}

}  // namespace eeb::storage
