#include "storage/mem_env.h"

#include <cstring>

namespace eeb::storage {
namespace {

class MemRandomAccessFile : public RandomAccessFile {
 public:
  explicit MemRandomAccessFile(std::shared_ptr<std::vector<char>> data)
      : data_(std::move(data)) {}

  Status Read(uint64_t offset, size_t n, char* scratch) const override {
    if (offset + n > data_->size()) {
      return Status::IOError("mem read past EOF");
    }
    std::memcpy(scratch, data_->data() + offset, n);
    return Status::OK();
  }

  uint64_t Size() const override { return data_->size(); }

 private:
  std::shared_ptr<std::vector<char>> data_;
};

class MemWritableFile : public WritableFile {
 public:
  explicit MemWritableFile(std::shared_ptr<std::vector<char>> data)
      : data_(std::move(data)) {}

  Status Append(const char* data, size_t n) override {
    data_->insert(data_->end(), data, data + n);
    return Status::OK();
  }

  Status Close() override { return Status::OK(); }

  uint64_t Offset() const override { return data_->size(); }

 private:
  std::shared_ptr<std::vector<char>> data_;
};

}  // namespace

Status MemEnv::NewRandomAccessFile(const std::string& path,
                                   std::unique_ptr<RandomAccessFile>* out) {
  auto it = files_.find(path);
  if (it == files_.end()) return Status::IOError("mem open: " + path);
  out->reset(new MemRandomAccessFile(it->second));
  return Status::OK();
}

Status MemEnv::NewWritableFile(const std::string& path,
                               std::unique_ptr<WritableFile>* out) {
  auto data = std::make_shared<std::vector<char>>();
  files_[path] = data;
  out->reset(new MemWritableFile(std::move(data)));
  return Status::OK();
}

bool MemEnv::FileExists(const std::string& path) {
  return files_.count(path) > 0;
}

Status MemEnv::DeleteFile(const std::string& path) {
  if (files_.erase(path) == 0) {
    return Status::IOError("mem unlink: " + path);
  }
  return Status::OK();
}

size_t MemEnv::TotalBytes() const {
  size_t total = 0;
  for (const auto& [_, data] : files_) total += data->size();
  return total;
}

namespace {

class FaultyFile : public RandomAccessFile {
 public:
  FaultyFile(std::unique_ptr<RandomAccessFile> base, FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Read(uint64_t offset, size_t n, char* scratch) const override {
    EEB_RETURN_IF_ERROR(env_->OnRead());
    EEB_RETURN_IF_ERROR(base_->Read(offset, n, scratch));
    env_->MaybeCorrupt(scratch, n);
    return Status::OK();
  }

  uint64_t Size() const override { return base_->Size(); }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  FaultInjectionEnv* env_;
};

class FaultyWritableFile : public WritableFile {
 public:
  FaultyWritableFile(std::unique_ptr<WritableFile> base,
                     FaultInjectionEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Append(const char* data, size_t n) override {
    EEB_RETURN_IF_ERROR(env_->OnWrite());
    return base_->Append(data, n);
  }

  Status Close() override { return base_->Close(); }

  uint64_t Offset() const override { return base_->Offset(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectionEnv* env_;
};

}  // namespace

Status FaultInjectionEnv::NewRandomAccessFile(
    const std::string& path, std::unique_ptr<RandomAccessFile>* out) {
  std::unique_ptr<RandomAccessFile> base;
  EEB_RETURN_IF_ERROR(base_->NewRandomAccessFile(path, &base));
  out->reset(new FaultyFile(std::move(base), this));
  return Status::OK();
}

Status FaultInjectionEnv::NewWritableFile(const std::string& path,
                                          std::unique_ptr<WritableFile>* out) {
  std::unique_ptr<WritableFile> base;
  EEB_RETURN_IF_ERROR(base_->NewWritableFile(path, &base));
  out->reset(new FaultyWritableFile(std::move(base), this));
  return Status::OK();
}

namespace {

// Shared schedule semantics for reads and writes: persistent plans fail
// every operation from the trigger onward; one-shot (transient) plans fail
// exactly the triggering operation and then recover.
bool ScheduledFault(uint64_t index, uint64_t trigger, bool persistent,
                    bool* tripped) {
  if (index < trigger) return false;
  if (persistent) return true;
  if (index == trigger && !*tripped) {
    *tripped = true;
    return true;
  }
  return false;
}

}  // namespace

Status FaultInjectionEnv::OnRead() {
  MutexLock lock(mu_);
  const uint64_t index = reads_++;
  if (ScheduledFault(index, plan_.fail_after_reads, plan_.persistent,
                     &read_tripped_) ||
      (plan_.read_fault_rate > 0.0 &&
       rng_.Bernoulli(plan_.read_fault_rate))) {
    injected_read_faults_++;
    return Status::IOError("injected read fault");
  }
  return Status::OK();
}

Status FaultInjectionEnv::OnWrite() {
  MutexLock lock(mu_);
  const uint64_t index = writes_++;
  if (ScheduledFault(index, plan_.fail_after_writes, plan_.persistent,
                     &write_tripped_) ||
      (plan_.write_fault_rate > 0.0 &&
       rng_.Bernoulli(plan_.write_fault_rate))) {
    injected_write_faults_++;
    return Status::IOError("injected write fault");
  }
  return Status::OK();
}

void FaultInjectionEnv::MaybeCorrupt(char* data, size_t n) {
  MutexLock lock(mu_);
  if (plan_.corrupt_rate <= 0.0 || n == 0) return;
  if (!rng_.Bernoulli(plan_.corrupt_rate)) return;
  const uint64_t bit = rng_.Uniform(static_cast<uint64_t>(n) * 8);
  data[bit / 8] ^= static_cast<char>(1u << (bit % 8));
  injected_corruptions_++;
}

}  // namespace eeb::storage
