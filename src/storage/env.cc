#include "storage/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace eeb::storage {
namespace {

std::string ErrnoMessage(const std::string& context) {
  return context + ": " + std::strerror(errno);
}

class PosixRandomAccessFile : public RandomAccessFile {
 public:
  PosixRandomAccessFile(int fd, uint64_t size) : fd_(fd), size_(size) {}
  ~PosixRandomAccessFile() override { ::close(fd_); }

  Status Read(uint64_t offset, size_t n, char* scratch) const override {
    size_t done = 0;
    while (done < n) {
      ssize_t r = ::pread(fd_, scratch + done, n - done,
                          static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("pread"));
      }
      if (r == 0) return Status::IOError("pread: unexpected EOF");
      done += static_cast<size_t>(r);
    }
    return Status::OK();
  }

  uint64_t Size() const override { return size_; }

 private:
  int fd_;
  uint64_t size_;
};

class PosixWritableFile : public WritableFile {
 public:
  explicit PosixWritableFile(int fd) : fd_(fd) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const char* data, size_t n) override {
    size_t done = 0;
    while (done < n) {
      ssize_t w = ::write(fd_, data + done, n - done);
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::IOError(ErrnoMessage("write"));
      }
      done += static_cast<size_t>(w);
    }
    offset_ += n;
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int r = ::close(fd_);
    fd_ = -1;
    if (r != 0) return Status::IOError(ErrnoMessage("close"));
    return Status::OK();
  }

  uint64_t Offset() const override { return offset_; }

 private:
  int fd_;
  uint64_t offset_ = 0;
};

class PosixEnv : public Env {
 public:
  Status NewRandomAccessFile(
      const std::string& path,
      std::unique_ptr<RandomAccessFile>* out) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return Status::IOError(ErrnoMessage("open " + path));
    struct stat st;
    if (::fstat(fd, &st) != 0) {
      ::close(fd);
      return Status::IOError(ErrnoMessage("fstat " + path));
    }
    out->reset(
        new PosixRandomAccessFile(fd, static_cast<uint64_t>(st.st_size)));
    return Status::OK();
  }

  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override {
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return Status::IOError(ErrnoMessage("open " + path));
    out->reset(new PosixWritableFile(fd));
    return Status::OK();
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return Status::IOError(ErrnoMessage("unlink " + path));
    }
    return Status::OK();
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

Status CleanupIfError(Env* env, const std::string& path, Status s) {
  if (!s.ok() && env->FileExists(path)) {
    // Best-effort: a failed unlink must not shadow the write error.
    env->DeleteFile(path).IgnoreError();
  }
  return s;
}

}  // namespace eeb::storage
