// Minimal filesystem abstraction (RocksDB-style Env): random-access readers
// and append-only writers over POSIX files. All disk-resident structures
// (point file, B+-tree, VA-file, tree nodes) go through this layer so that
// I/O accounting has a single choke point.

#ifndef EEB_STORAGE_ENV_H_
#define EEB_STORAGE_ENV_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace eeb::storage {

/// Positional reader over an immutable file.
class RandomAccessFile {
 public:
  virtual ~RandomAccessFile() = default;

  /// Reads exactly `n` bytes at `offset` into `scratch`. Fails with IOError
  /// on short reads.
  virtual Status Read(uint64_t offset, size_t n, char* scratch) const = 0;

  /// Total file size in bytes.
  virtual uint64_t Size() const = 0;
};

/// Append-only writer.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(const char* data, size_t n) = 0;
  virtual Status Close() = 0;

  /// Bytes appended so far.
  virtual uint64_t Offset() const = 0;
};

/// Factory for files. The default implementation talks to the local
/// filesystem; tests may substitute an in-memory Env.
class Env {
 public:
  virtual ~Env() = default;

  virtual Status NewRandomAccessFile(
      const std::string& path, std::unique_ptr<RandomAccessFile>* out) = 0;
  virtual Status NewWritableFile(const std::string& path,
                                 std::unique_ptr<WritableFile>* out) = 0;
  virtual bool FileExists(const std::string& path) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;

  /// Process-wide POSIX Env singleton.
  static Env* Default();
};

/// Returns `s` unchanged; when `s` is an error, best-effort-deletes `path`
/// so a writer that failed mid-stream does not leave a partial file behind.
/// The deletion's own status is deliberately dropped — the original error is
/// the one the caller must see. Use as the tail of every file writer:
///   return CleanupIfError(env, path, write_body());
Status CleanupIfError(Env* env, const std::string& path, Status s);

}  // namespace eeb::storage

#endif  // EEB_STORAGE_ENV_H_
