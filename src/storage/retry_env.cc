#include "storage/retry_env.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace eeb::storage {
namespace {

class RetryingFile : public RandomAccessFile {
 public:
  RetryingFile(std::unique_ptr<RandomAccessFile> base, RetryingEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Read(uint64_t offset, size_t n, char* scratch) const override {
    return env_->WithRetries(
        [&]() { return base_->Read(offset, n, scratch); });
  }

  uint64_t Size() const override { return base_->Size(); }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  RetryingEnv* env_;
};

}  // namespace

Status RetryingEnv::WithRetries(const std::function<Status()>& op) {
  Status st = op();
  double sleep_ms = policy_.backoff_initial_ms;
  for (int attempt = 0; attempt < policy_.max_retries && st.IsIOError();
       ++attempt) {
    retries_.fetch_add(1, std::memory_order_relaxed);
    if (obs_retries_ != nullptr) obs_retries_->Add(1);
    if (sleep_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(sleep_ms));
    }
    sleep_ms = std::min(sleep_ms * policy_.backoff_multiplier,
                        policy_.backoff_max_ms);
    st = op();
  }
  if (st.IsIOError()) {
    exhausted_.fetch_add(1, std::memory_order_relaxed);
    if (obs_exhausted_ != nullptr) obs_exhausted_->Add(1);
  }
  return st;
}

Status RetryingEnv::NewRandomAccessFile(
    const std::string& path, std::unique_ptr<RandomAccessFile>* out) {
  std::unique_ptr<RandomAccessFile> base;
  EEB_RETURN_IF_ERROR(
      WithRetries([&]() { return base_->NewRandomAccessFile(path, &base); }));
  out->reset(new RetryingFile(std::move(base), this));
  return Status::OK();
}

void RetryingEnv::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    obs_retries_ = nullptr;
    obs_exhausted_ = nullptr;
    return;
  }
  obs_retries_ = registry->GetCounter("io.retries");
  obs_exhausted_ = registry->GetCounter("io.retry_exhausted");
}

}  // namespace eeb::storage
