#include "storage/retry_env.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace eeb::storage {
namespace {

class RetryingFile : public RandomAccessFile {
 public:
  RetryingFile(std::unique_ptr<RandomAccessFile> base, RetryingEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Read(uint64_t offset, size_t n, char* scratch) const override {
    return env_->WithRetries(
        [&]() { return base_->Read(offset, n, scratch); });
  }

  uint64_t Size() const override { return base_->Size(); }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  RetryingEnv* env_;
};

}  // namespace

double RetryingEnv::JitteredSleepMs(double sleep_ms) {
  if (policy_.backoff_jitter <= 0.0 || sleep_ms <= 0.0) return sleep_ms;
  double factor;
  {
    MutexLock lock(jitter_mu_);
    factor = 1.0 + policy_.backoff_jitter *
                       (2.0 * jitter_rng_.NextDouble() - 1.0);
  }
  return sleep_ms * factor;
}

Status RetryingEnv::WithRetries(const std::function<Status()>& op) {
  Status st = op();
  double sleep_ms = policy_.backoff_initial_ms;
  for (int attempt = 0; attempt < policy_.max_retries && st.IsIOError();
       ++attempt) {
    retries_.fetch_add(1, std::memory_order_relaxed);
    obs::Counter* retries_counter =
        obs_retries_.load(std::memory_order_acquire);
    if (retries_counter != nullptr) retries_counter->Add(1);
    const double jittered_ms = JitteredSleepMs(sleep_ms);
    if (jittered_ms > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(jittered_ms));
    }
    sleep_ms = std::min(sleep_ms * policy_.backoff_multiplier,
                        policy_.backoff_max_ms);
    st = op();
  }
  if (st.IsIOError()) {
    exhausted_.fetch_add(1, std::memory_order_relaxed);
    obs::Counter* exhausted_counter =
        obs_exhausted_.load(std::memory_order_acquire);
    if (exhausted_counter != nullptr) exhausted_counter->Add(1);
  }
  return st;
}

Status RetryingEnv::NewRandomAccessFile(
    const std::string& path, std::unique_ptr<RandomAccessFile>* out) {
  std::unique_ptr<RandomAccessFile> base;
  EEB_RETURN_IF_ERROR(
      WithRetries([&]() { return base_->NewRandomAccessFile(path, &base); }));
  out->reset(new RetryingFile(std::move(base), this));
  return Status::OK();
}

void RetryingEnv::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    obs_retries_.store(nullptr, std::memory_order_release);
    obs_exhausted_.store(nullptr, std::memory_order_release);
    return;
  }
  obs_retries_.store(registry->GetCounter("io.retries"),
                     std::memory_order_release);
  obs_exhausted_.store(registry->GetCounter("io.retry_exhausted"),
                       std::memory_order_release);
}

}  // namespace eeb::storage
