// In-memory Env (testing substrate) and a fault-injection wrapper.
//
// MemEnv keeps whole "files" in RAM: tests exercise the exact storage code
// paths (headers, slot tables, page alignment) without touching the
// filesystem, and CI stays hermetic.
//
// FaultInjectionEnv wraps any Env and injects failures two ways:
//   - a deterministic schedule (fail the N-th read/write, once or forever),
//     for tests that pin a failure to an exact operation, and
//   - probabilistic rates (each read fails with read_fault_rate, each write
//     with write_fault_rate, each surviving read is bit-flipped with
//     corrupt_rate), driven by a seeded Rng, for chaos-style workloads.
// Injected faults are counted so tests can reconcile what the layers above
// reported against what was actually injected.

#ifndef EEB_STORAGE_MEM_ENV_H_
#define EEB_STORAGE_MEM_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "common/thread_annotations.h"
#include "storage/env.h"

namespace eeb::storage {

/// Heap-backed Env. Not thread-safe (tests are single-threaded).
class MemEnv : public Env {
 public:
  Status NewRandomAccessFile(const std::string& path,
                             std::unique_ptr<RandomAccessFile>* out) override;
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override;
  bool FileExists(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;

  /// Bytes currently held across all files.
  size_t TotalBytes() const;

 private:
  // shared_ptr so an open reader stays valid across DeleteFile, matching
  // POSIX unlink semantics.
  std::map<std::string, std::shared_ptr<std::vector<char>>> files_;
};

/// Failure schedule for FaultInjectionEnv.
struct FaultPlan {
  /// Reads before the first scheduled failure (0 = fail immediately).
  uint64_t fail_after_reads = UINT64_MAX;
  /// Appends before the first scheduled write failure (0 = fail immediately).
  uint64_t fail_after_writes = UINT64_MAX;
  /// When true, every operation past its trigger fails; otherwise only the
  /// triggering one does (a transient fault). Applies to reads and writes.
  bool persistent = true;

  /// Probability that a read fails with IOError (on top of the schedule).
  double read_fault_rate = 0.0;
  /// Probability that an Append fails with IOError.
  double write_fault_rate = 0.0;
  /// Probability that a surviving read has one random bit flipped in the
  /// bytes it returns — the footer checksums must catch this.
  double corrupt_rate = 0.0;
  /// Seed for the probabilistic legs (deterministic chaos).
  uint64_t seed = 42;
};

/// Env wrapper that injects IOError into reads and appends according to a
/// FaultPlan. The write leg lets tests verify that failed writers remove
/// their partial output (CleanupIfError) instead of leaving it behind.
///
/// Thread-safe: the schedule counters, fault tallies and the chaos Rng are
/// guarded by one mutex so multi-threaded chaos tests can hammer a shared
/// plan and still reconcile injected counts exactly. The fault sequence
/// stays deterministic for a given seed, but its assignment to threads
/// follows the arrival interleaving.
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  void set_plan(const FaultPlan& plan) EEB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    plan_ = plan;
    reads_ = 0;
    writes_ = 0;
    read_tripped_ = false;
    write_tripped_ = false;
    injected_read_faults_ = 0;
    injected_write_faults_ = 0;
    injected_corruptions_ = 0;
    rng_ = Rng(plan.seed);
  }
  uint64_t reads() const EEB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return reads_;
  }
  uint64_t writes() const EEB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return writes_;
  }
  /// Faults actually fired since set_plan (scheduled + probabilistic).
  uint64_t injected_read_faults() const EEB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return injected_read_faults_;
  }
  uint64_t injected_write_faults() const EEB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return injected_write_faults_;
  }
  uint64_t injected_corruptions() const EEB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return injected_corruptions_;
  }

  Status NewRandomAccessFile(const std::string& path,
                             std::unique_ptr<RandomAccessFile>* out) override;
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override;
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Status DeleteFile(const std::string& path) override {
    return base_->DeleteFile(path);
  }

  /// Called by wrapped files before each read; returns non-OK when the
  /// read must fail. Public so the file wrapper (internal) can reach it.
  Status OnRead() EEB_EXCLUDES(mu_);

  /// Write-side counterpart of OnRead(), consulted before each Append.
  Status OnWrite() EEB_EXCLUDES(mu_);

  /// Bit-flips `data[0, n)` with probability corrupt_rate (called by the
  /// wrapped file after a successful read).
  void MaybeCorrupt(char* data, size_t n) EEB_EXCLUDES(mu_);

 private:
  Env* const base_;
  mutable Mutex mu_;  // guards the schedule, tallies and chaos Rng
  FaultPlan plan_ EEB_GUARDED_BY(mu_);
  uint64_t reads_ EEB_GUARDED_BY(mu_) = 0;
  uint64_t writes_ EEB_GUARDED_BY(mu_) = 0;
  bool read_tripped_ EEB_GUARDED_BY(mu_) = false;
  bool write_tripped_ EEB_GUARDED_BY(mu_) = false;
  uint64_t injected_read_faults_ EEB_GUARDED_BY(mu_) = 0;
  uint64_t injected_write_faults_ EEB_GUARDED_BY(mu_) = 0;
  uint64_t injected_corruptions_ EEB_GUARDED_BY(mu_) = 0;
  Rng rng_ EEB_GUARDED_BY(mu_){42};
};

}  // namespace eeb::storage

#endif  // EEB_STORAGE_MEM_ENV_H_
