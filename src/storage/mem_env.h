// In-memory Env (testing substrate) and a fault-injection wrapper.
//
// MemEnv keeps whole "files" in RAM: tests exercise the exact storage code
// paths (headers, slot tables, page alignment) without touching the
// filesystem, and CI stays hermetic.
//
// FaultInjectionEnv wraps any Env and fails the N-th read (or all reads
// after N), letting tests verify that every layer propagates Status instead
// of crashing or corrupting results.

#ifndef EEB_STORAGE_MEM_ENV_H_
#define EEB_STORAGE_MEM_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/env.h"

namespace eeb::storage {

/// Heap-backed Env. Not thread-safe (tests are single-threaded).
class MemEnv : public Env {
 public:
  Status NewRandomAccessFile(const std::string& path,
                             std::unique_ptr<RandomAccessFile>* out) override;
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override;
  bool FileExists(const std::string& path) override;
  Status DeleteFile(const std::string& path) override;

  /// Bytes currently held across all files.
  size_t TotalBytes() const;

 private:
  // shared_ptr so an open reader stays valid across DeleteFile, matching
  // POSIX unlink semantics.
  std::map<std::string, std::shared_ptr<std::vector<char>>> files_;
};

/// Failure schedule for FaultInjectionEnv.
struct FaultPlan {
  /// Reads before the first injected failure (0 = fail immediately).
  uint64_t fail_after_reads = UINT64_MAX;
  /// Appends before the first injected write failure (0 = fail immediately).
  uint64_t fail_after_writes = UINT64_MAX;
  /// When true, every read past the trigger fails; otherwise only one.
  bool persistent = true;
};

/// Env wrapper that injects IOError into reads and appends according to a
/// FaultPlan. The write leg lets tests verify that failed writers remove
/// their partial output (CleanupIfError) instead of leaving it behind.
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  void set_plan(const FaultPlan& plan) {
    plan_ = plan;
    reads_ = 0;
    writes_ = 0;
    tripped_ = false;
  }
  uint64_t reads() const { return reads_; }
  uint64_t writes() const { return writes_; }

  Status NewRandomAccessFile(const std::string& path,
                             std::unique_ptr<RandomAccessFile>* out) override;
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override;
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Status DeleteFile(const std::string& path) override {
    return base_->DeleteFile(path);
  }

  /// Called by wrapped files before each read; returns non-OK when the
  /// read must fail. Public so the file wrapper (internal) can reach it.
  Status OnRead();

  /// Write-side counterpart of OnRead(), consulted before each Append.
  Status OnWrite();

 private:
  Env* base_;
  FaultPlan plan_;
  uint64_t reads_ = 0;
  uint64_t writes_ = 0;
  bool tripped_ = false;
};

}  // namespace eeb::storage

#endif  // EEB_STORAGE_MEM_ENV_H_
