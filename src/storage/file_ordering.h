// Physical orderings of the point file P (paper Sec. 5.2.2 / Fig. 9):
//   raw        — dataset order as generated,
//   clustered  — iDistance-style: grouped by k-means cluster, sorted by
//                distance to the cluster center within each group,
//   sorted-key — SK-LSH-style: sorted lexicographically by a compound of LSH
//                projection keys so similar points land on nearby pages.

#ifndef EEB_STORAGE_FILE_ORDERING_H_
#define EEB_STORAGE_FILE_ORDERING_H_

#include <cstdint>
#include <vector>

#include "common/dataset.h"
#include "common/types.h"

namespace eeb::storage {

/// Identity permutation: slot i holds point i.
std::vector<PointId> RawOrder(size_t n);

/// iDistance-style clustered ordering.
/// @param num_clusters  number of k-means reference points
std::vector<PointId> ClusteredOrder(const Dataset& data, uint32_t num_clusters,
                                    uint64_t seed);

/// SK-LSH-style sorted-key ordering using `num_keys` p-stable projections of
/// width `w` as a compound sort key.
std::vector<PointId> SortedKeyOrder(const Dataset& data, uint32_t num_keys,
                                    double w, uint64_t seed);

}  // namespace eeb::storage

#endif  // EEB_STORAGE_FILE_ORDERING_H_
