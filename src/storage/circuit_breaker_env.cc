#include "storage/circuit_breaker_env.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace eeb::storage {
namespace {

double SteadyNowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

CircuitBreakerPolicy Sanitize(CircuitBreakerPolicy policy) {
  if (policy.window_ops < 1) policy.window_ops = 1;
  if (policy.min_failures < 1) policy.min_failures = 1;
  if (policy.failure_rate_threshold <= 0.0) {
    policy.failure_rate_threshold = 0.5;
  }
  if (policy.open_backoff_initial_ms < 0.0) policy.open_backoff_initial_ms = 0;
  if (policy.open_backoff_multiplier < 1.0) policy.open_backoff_multiplier = 1;
  if (policy.open_backoff_max_ms < policy.open_backoff_initial_ms) {
    policy.open_backoff_max_ms = policy.open_backoff_initial_ms;
  }
  policy.backoff_jitter = std::clamp(policy.backoff_jitter, 0.0, 1.0);
  if (policy.half_open_probes < 1) policy.half_open_probes = 1;
  if (!policy.now_ms) policy.now_ms = SteadyNowMs;
  return policy;
}

class BreakerFile : public RandomAccessFile {
 public:
  BreakerFile(std::unique_ptr<RandomAccessFile> base, CircuitBreakerEnv* env)
      : base_(std::move(base)), env_(env) {}

  Status Read(uint64_t offset, size_t n, char* scratch) const override {
    return env_->GuardedRead(
        [&]() { return base_->Read(offset, n, scratch); });
  }

  uint64_t Size() const override { return base_->Size(); }

 private:
  std::unique_ptr<RandomAccessFile> base_;
  CircuitBreakerEnv* env_;
};

}  // namespace

const char* CircuitBreakerStateName(CircuitBreakerEnv::State state) {
  switch (state) {
    case CircuitBreakerEnv::State::kClosed:
      return "closed";
    case CircuitBreakerEnv::State::kOpen:
      return "open";
    case CircuitBreakerEnv::State::kHalfOpen:
      return "half_open";
  }
  return "unknown";
}

CircuitBreakerEnv::CircuitBreakerEnv(Env* base, CircuitBreakerPolicy policy)
    : base_(base),
      policy_(Sanitize(std::move(policy))),
      window_(static_cast<size_t>(policy_.window_ops), 0),
      current_backoff_ms_(policy_.open_backoff_initial_ms),
      jitter_rng_(policy_.seed) {}

double CircuitBreakerEnv::JitteredBackoffLocked() {
  double backoff = current_backoff_ms_;
  if (policy_.backoff_jitter > 0.0) {
    backoff *= 1.0 + policy_.backoff_jitter *
                         (2.0 * jitter_rng_.NextDouble() - 1.0);
  }
  return backoff;
}

void CircuitBreakerEnv::TransitionLocked(State next) {
  if (state_ == next) return;
  if (next == State::kOpen) {
    opens_.fetch_add(1, std::memory_order_relaxed);
    if (obs::Counter* c = obs_opens_.load(std::memory_order_acquire);
        c != nullptr) {
      c->Add(1);
    }
  }
  state_ = next;
  if (obs::Gauge* g = obs_state_.load(std::memory_order_acquire);
      g != nullptr) {
    g->Set(static_cast<double>(static_cast<uint8_t>(next)));
  }
}

CircuitBreakerEnv::Admit CircuitBreakerEnv::AdmitRead() {
  if (!policy_.enabled) return Admit::kAllow;
  MutexLock lock(mu_);
  switch (state_) {
    case State::kClosed:
      return Admit::kAllow;
    case State::kOpen:
      if (NowMs() < open_until_ms_) break;  // still cooling off
      // Backoff elapsed: go half-open and treat this read as the probe.
      TransitionLocked(State::kHalfOpen);
      probes_outstanding_ = 1;
      probes_.fetch_add(1, std::memory_order_relaxed);
      if (obs::Counter* c = obs_probes_.load(std::memory_order_acquire);
          c != nullptr) {
        c->Add(1);
      }
      return Admit::kProbe;
    case State::kHalfOpen:
      if (probes_outstanding_ < policy_.half_open_probes) {
        ++probes_outstanding_;
        probes_.fetch_add(1, std::memory_order_relaxed);
        if (obs::Counter* c = obs_probes_.load(std::memory_order_acquire);
            c != nullptr) {
          c->Add(1);
        }
        return Admit::kProbe;
      }
      break;
  }
  short_circuits_.fetch_add(1, std::memory_order_relaxed);
  if (obs::Counter* c = obs_short_circuits_.load(std::memory_order_acquire);
      c != nullptr) {
    c->Add(1);
  }
  return Admit::kShortCircuit;
}

void CircuitBreakerEnv::OnReadResult(bool ok, bool was_probe) {
  if (!policy_.enabled) return;
  MutexLock lock(mu_);
  if (was_probe) {
    if (probes_outstanding_ > 0) --probes_outstanding_;
    // A probe verdict only matters while still half-open: a sibling probe
    // may already have decided the state.
    if (state_ == State::kHalfOpen) {
      if (ok) {
        // Recovery: reset the window and the backoff ladder.
        std::fill(window_.begin(), window_.end(), 0);
        window_pos_ = 0;
        window_filled_ = 0;
        window_failures_ = 0;
        current_backoff_ms_ = policy_.open_backoff_initial_ms;
        TransitionLocked(State::kClosed);
      } else {
        current_backoff_ms_ = std::min(
            current_backoff_ms_ * policy_.open_backoff_multiplier,
            policy_.open_backoff_max_ms);
        open_until_ms_ = NowMs() + JitteredBackoffLocked();
        TransitionLocked(State::kOpen);
      }
    }
    return;
  }
  if (state_ != State::kClosed) return;  // outcome raced a transition
  const uint8_t fail = ok ? 0 : 1;
  window_failures_ += static_cast<int>(fail) -
                      static_cast<int>(window_[window_pos_]);
  window_[window_pos_] = fail;
  window_pos_ = (window_pos_ + 1) % window_.size();
  window_filled_ = std::min(window_filled_ + 1, window_.size());
  if (window_failures_ >= policy_.min_failures &&
      static_cast<double>(window_failures_) >=
          policy_.failure_rate_threshold *
              static_cast<double>(window_filled_)) {
    open_until_ms_ = NowMs() + JitteredBackoffLocked();
    TransitionLocked(State::kOpen);
  }
}

Status CircuitBreakerEnv::GuardedRead(const std::function<Status()>& op) {
  const Admit admit = AdmitRead();
  if (admit == Admit::kShortCircuit) {
    return Status::IOError("circuit breaker open: read short-circuited");
  }
  const Status st = op();
  // Both transient I/O errors and checksum corruption mean the disk is
  // returning garbage; anything else (e.g. InvalidArgument) is a caller bug
  // and says nothing about disk health.
  const bool ok = !st.IsIOError() && !st.IsCorruption();
  OnReadResult(ok, admit == Admit::kProbe);
  return st;
}

Status CircuitBreakerEnv::NewRandomAccessFile(
    const std::string& path, std::unique_ptr<RandomAccessFile>* out) {
  std::unique_ptr<RandomAccessFile> base;
  EEB_RETURN_IF_ERROR(
      GuardedRead([&]() { return base_->NewRandomAccessFile(path, &base); }));
  out->reset(new BreakerFile(std::move(base), this));
  return Status::OK();
}

void CircuitBreakerEnv::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    obs_state_.store(nullptr, std::memory_order_release);
    obs_opens_.store(nullptr, std::memory_order_release);
    obs_short_circuits_.store(nullptr, std::memory_order_release);
    obs_probes_.store(nullptr, std::memory_order_release);
    return;
  }
  obs::Gauge* state_gauge = registry->GetGauge("io.breaker.state");
  {
    MutexLock lock(mu_);
    state_gauge->Set(static_cast<double>(static_cast<uint8_t>(state_)));
  }
  obs_state_.store(state_gauge, std::memory_order_release);
  obs_opens_.store(registry->GetCounter("io.breaker.opens"),
                   std::memory_order_release);
  obs_short_circuits_.store(registry->GetCounter("io.breaker.short_circuits"),
                            std::memory_order_release);
  obs_probes_.store(registry->GetCounter("io.breaker.probes"),
                    std::memory_order_release);
}

}  // namespace eeb::storage
