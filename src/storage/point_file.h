// Disk-resident point set P (paper Sec. 2.1): a page-aligned sequential file
// of fixed-size point records supporting direct access by point identifier.
// The physical ordering of records is a build-time permutation so the
// orderings of Fig. 9 (raw / clustered / sorted-key) can be compared.
//
// Format v2 reserves the last 4 bytes of every page (header and data) for a
// CRC32C footer over the rest of the page, and appends a CRC32C of the slot
// table; reads verify the footer and surface a mismatch as
// Status::Corruption. v1 files (no footers) still open and read — the magic
// distinguishes the formats — but get no integrity checking.

#ifndef EEB_STORAGE_POINT_FILE_H_
#define EEB_STORAGE_POINT_FILE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/status.h"
#include "common/types.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "storage/env.h"
#include "storage/io_stats.h"

namespace eeb::storage {

/// Default page (block) size, matching the paper's 4 KB system page.
inline constexpr size_t kDefaultPageSize = 4096;

/// Immutable on-disk point file. Records never straddle page boundaries when
/// a record fits in a page's payload area; larger records occupy whole pages.
class PointFile {
 public:
  /// v1: no checksums (legacy, still readable). v2: per-page CRC32C footers.
  static constexpr uint32_t kFormatLegacy = 1;
  static constexpr uint32_t kFormatChecksummed = 2;
  /// Bytes of each page reserved for the CRC32C footer (format >= v2).
  static constexpr size_t kPageFooterBytes = 4;

  /// Writes `data` to `path`. `order[slot]` is the PointId stored at physical
  /// slot `slot`; pass an identity permutation for the raw ordering. Entries
  /// equal to kInvalidPointId are padding slots (zero-filled, unaddressable);
  /// tree indexes use them to align leaf nodes to page boundaries. Every
  /// real id must appear exactly once. `format_version` exists for the
  /// legacy-compat tests; production writers use the default.
  static Status Create(Env* env, const std::string& path, const Dataset& data,
                       const std::vector<PointId>& order,
                       size_t page_size = kDefaultPageSize,
                       uint32_t format_version = kFormatChecksummed);

  /// Convenience overload with raw (identity) ordering.
  static Status Create(Env* env, const std::string& path, const Dataset& data,
                       size_t page_size = kDefaultPageSize);

  /// Opens an existing file (either format) and loads the id->slot table
  /// into memory, verifying header-page and slot-table checksums on v2.
  static Status Open(Env* env, const std::string& path,
                     std::unique_ptr<PointFile>* out);

  size_t size() const { return n_; }
  size_t dim() const { return dim_; }
  size_t page_size() const { return page_size_; }
  /// Points per page (0 means a record spans multiple pages).
  size_t points_per_page() const { return points_per_page_; }
  /// On-disk format version (kFormatLegacy or kFormatChecksummed).
  uint32_t format_version() const { return format_version_; }
  /// True when pages carry CRC32C footers that reads verify.
  bool checksummed() const { return footer_bytes_ > 0; }
  /// Total data bytes (excluding header and slot table), i.e. the "file size"
  /// figure used when sizing caches relative to the dataset.
  uint64_t data_bytes() const { return data_pages_ * page_size_; }

  /// Fetches the point with identifier `id` into `out` (must have dim()
  /// elements). Charges `stats` with one point read plus the pages newly
  /// touched according to `tracker` (pass nullptr to charge all pages).
  /// On a checksummed file a footer mismatch returns Status::Corruption and
  /// `out` is unspecified — corrupt bytes are never handed back as data.
  Status ReadPoint(PointId id, std::span<Scalar> out, IoStats* stats,
                   PageTracker* tracker) const;

  /// Physical page index (0-based within the data area) of the first page of
  /// point `id` — exposed for cache-by-page policies and tests.
  uint64_t PageOfPoint(PointId id) const;

  /// Binds process-wide storage counters (point reads, deduplicated random
  /// page reads, bytes) in `registry`; nullptr detaches. The counters see
  /// the same dedup-aware charges as the per-query IoStats.
  void BindMetrics(obs::MetricsRegistry* registry);

  /// Adds an already-accumulated IoStats delta to the bound counters (one
  /// atomic add per counter). ReadPoint itself never touches the registry;
  /// the engine publishes its per-query IoStats once at query end. No-op
  /// when unbound.
  void PublishIo(const IoStats& delta) const;

  /// Attaches a phase profiler: every ReadPoint records a "read_point"
  /// scope nested under whatever phase the caller has open (refinement,
  /// eager miss fetch, ...). nullptr (default) detaches; detached reads pay
  /// one branch.
  void BindProfiler(obs::Profiler* profiler) { prof_ = profiler; }

 private:
  PointFile() = default;

  Status Init(Env* env, const std::string& path);
  Status VerifyPage(const char* page, uint64_t file_page) const;

  std::unique_ptr<RandomAccessFile> file_;
  size_t n_ = 0;
  size_t dim_ = 0;
  size_t page_size_ = kDefaultPageSize;
  size_t record_bytes_ = 0;
  uint32_t format_version_ = kFormatChecksummed;
  size_t footer_bytes_ = 0;     // kPageFooterBytes on v2, 0 on v1
  size_t payload_bytes_ = 0;    // page_size_ - footer_bytes_
  size_t points_per_page_ = 0;  // 0 when record_bytes_ > payload_bytes_
  size_t pages_per_point_ = 1;  // used when points_per_page_ == 0
  uint64_t n_slots_ = 0;  // physical slots including padding
  uint64_t data_pages_ = 0;
  uint64_t data_start_ = 0;  // byte offset of first data page
  std::vector<uint32_t> id_to_slot_;

  // Bound instruments (nullptr when observability is off).
  obs::Counter* obs_point_reads_ = nullptr;
  obs::Counter* obs_page_reads_ = nullptr;
  obs::Counter* obs_bytes_read_ = nullptr;
  obs::Profiler* prof_ = nullptr;
};

}  // namespace eeb::storage

#endif  // EEB_STORAGE_POINT_FILE_H_
