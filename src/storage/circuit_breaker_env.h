// CircuitBreakerEnv: a storage circuit breaker (docs/ROBUSTNESS.md). Wraps
// an Env — in the serving stack, the RetryingEnv — and tracks a sliding
// window of recent read outcomes. When the windowed failure rate crosses the
// threshold the breaker OPENS: reads fail immediately with IOError instead
// of paying the retry ladder per candidate, which flips the engine into its
// cached-bound degraded mode at once on a dead disk. After a jittered
// backoff the breaker goes HALF-OPEN and lets a limited number of probe
// reads through; a successful probe closes it, a failed probe re-opens it
// with a longer backoff.
//
//   CLOSED --(failure rate >= threshold over the window)--> OPEN
//   OPEN   --(backoff elapsed)--> HALF-OPEN
//   HALF-OPEN --(probe ok)--> CLOSED      (window and backoff reset)
//   HALF-OPEN --(probe failed)--> OPEN    (backoff *= multiplier, capped)
//
// Both IOError and Corruption count as failures — either way the disk is
// returning garbage — but the short-circuit itself is always IOError, which
// the engine's DegradableFailure() absorbs. Writes, deletes and existence
// checks pass through unguarded: the breaker protects the high-volume query
// read path, and writers already recover via CleanupIfError.
//
// The clock is injectable (milliseconds, monotonic) so tests can script the
// backoff deterministically; jitter comes from a seeded common/random Rng.

#ifndef EEB_STORAGE_CIRCUIT_BREAKER_ENV_H_
#define EEB_STORAGE_CIRCUIT_BREAKER_ENV_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "storage/env.h"

namespace eeb::storage {

/// Thresholds and backoff shape for the storage circuit breaker.
struct CircuitBreakerPolicy {
  /// Master switch: a disabled breaker is wired as a pure pass-through and
  /// never trips (System only interposes the wrapper when enabled).
  bool enabled = false;
  /// Number of most-recent read outcomes the failure rate is computed over.
  int window_ops = 32;
  /// Minimum failures in the window before the rate can trip the breaker —
  /// keeps one unlucky read on a quiet disk from opening it.
  int min_failures = 8;
  /// Windowed failure rate (failures / outcomes) at or above which the
  /// breaker opens.
  double failure_rate_threshold = 0.5;
  /// Backoff before the first half-open probe, in milliseconds.
  double open_backoff_initial_ms = 5.0;
  /// Multiplier applied after each failed probe.
  double open_backoff_multiplier = 2.0;
  /// Upper bound on the backoff, in milliseconds.
  double open_backoff_max_ms = 200.0;
  /// Fraction of each backoff randomized (uniformly in [1-j, 1+j]) so many
  /// processes sharing a failed disk do not probe in lockstep.
  double backoff_jitter = 0.2;
  /// Probe reads allowed through concurrently while half-open.
  int half_open_probes = 1;
  /// Seed for the deterministic jitter stream.
  uint64_t seed = 29;
  /// Monotonic now() in milliseconds. Defaults to steady_clock.
  std::function<double()> now_ms;
};

/// Env wrapper applying CircuitBreakerPolicy to reads and opens.
/// Pass-through for everything else. The base Env must outlive the wrapper.
class CircuitBreakerEnv : public Env {
 public:
  /// Breaker state. Numeric values are stable — they are exported as the
  /// "io.breaker.state" gauge and stamped into QueryExplain.breaker_state.
  enum class State : uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

  explicit CircuitBreakerEnv(Env* base, CircuitBreakerPolicy policy = {});

  Status NewRandomAccessFile(const std::string& path,
                             std::unique_ptr<RandomAccessFile>* out) override;
  Status NewWritableFile(const std::string& path,
                         std::unique_ptr<WritableFile>* out) override {
    return base_->NewWritableFile(path, out);  // writes are not guarded
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Status DeleteFile(const std::string& path) override {
    return base_->DeleteFile(path);
  }

  /// Runs `op` under the breaker: short-circuits with IOError while open,
  /// feeds the outcome into the window otherwise. Exposed so BreakerFile
  /// (internal) and tests can drive it directly.
  Status GuardedRead(const std::function<Status()>& op) EEB_EXCLUDES(mu_);

  const CircuitBreakerPolicy& policy() const { return policy_; }

  State state() const EEB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return state_;
  }

  /// Closed→open transitions / reads rejected while open / half-open probes
  /// attempted. Monotonic since construction.
  uint64_t opens() const { return opens_.load(std::memory_order_relaxed); }
  uint64_t short_circuits() const {
    return short_circuits_.load(std::memory_order_relaxed);
  }
  uint64_t probes() const { return probes_.load(std::memory_order_relaxed); }

  /// Binds "io.breaker.state" (gauge; State numeric value), and the
  /// "io.breaker.opens" / "io.breaker.short_circuits" / "io.breaker.probes"
  /// counters in `registry`; nullptr detaches. Counters record deltas from
  /// bind time.
  void BindMetrics(obs::MetricsRegistry* registry) EEB_EXCLUDES(mu_);

 private:
  /// Admission decision for one read. kShortCircuit carries no token;
  /// kProbe marks the read as a half-open probe whose outcome decides the
  /// next state.
  enum class Admit : uint8_t { kAllow, kProbe, kShortCircuit };

  Admit AdmitRead() EEB_EXCLUDES(mu_);
  void OnReadResult(bool ok, bool was_probe) EEB_EXCLUDES(mu_);
  void TransitionLocked(State next) EEB_REQUIRES(mu_);
  double JitteredBackoffLocked() EEB_REQUIRES(mu_);
  double NowMs() const { return policy_.now_ms(); }

  Env* const base_;
  const CircuitBreakerPolicy policy_;

  mutable Mutex mu_;
  State state_ EEB_GUARDED_BY(mu_) = State::kClosed;
  // Ring of recent outcomes (1 = failure); fixed size window_ops.
  std::vector<uint8_t> window_ EEB_GUARDED_BY(mu_);
  size_t window_pos_ EEB_GUARDED_BY(mu_) = 0;
  size_t window_filled_ EEB_GUARDED_BY(mu_) = 0;
  int window_failures_ EEB_GUARDED_BY(mu_) = 0;
  double current_backoff_ms_ EEB_GUARDED_BY(mu_);
  double open_until_ms_ EEB_GUARDED_BY(mu_) = 0.0;
  int probes_outstanding_ EEB_GUARDED_BY(mu_) = 0;
  Rng jitter_rng_ EEB_GUARDED_BY(mu_);

  std::atomic<uint64_t> opens_{0};
  std::atomic<uint64_t> short_circuits_{0};
  std::atomic<uint64_t> probes_{0};
  // Atomic pointers: BindMetrics may run while reads flow on serving
  // threads (System wires observability around a live Env). The instruments
  // themselves are internally atomic.
  std::atomic<obs::Gauge*> obs_state_{nullptr};
  std::atomic<obs::Counter*> obs_opens_{nullptr};
  std::atomic<obs::Counter*> obs_short_circuits_{nullptr};
  std::atomic<obs::Counter*> obs_probes_{nullptr};
};

const char* CircuitBreakerStateName(CircuitBreakerEnv::State state);

}  // namespace eeb::storage

#endif  // EEB_STORAGE_CIRCUIT_BREAKER_ENV_H_
