#include "core/thread_pool.h"

#include <algorithm>
#include <utility>

namespace eeb::core {

ThreadPool::ThreadPool(size_t n_threads, size_t queue_capacity)
    : queue_(queue_capacity == 0 ? 2 * std::max<size_t>(1, n_threads)
                                 : queue_capacity) {
  const size_t n = std::max<size_t>(1, n_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  queue_.Shutdown();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::Submit(BoundedTaskQueue::Task task) {
  {
    MutexLock lock(drain_mu_);
    ++submitted_;
  }
  if (!queue_.Push(std::move(task))) {
    // Rejected by a closed queue: roll the accounting back so Drain does
    // not wait for a task that will never run.
    MutexLock lock(drain_mu_);
    --submitted_;
    return false;
  }
  return true;
}

PushOutcome ThreadPool::TrySubmit(BoundedTaskQueue::Task task) {
  {
    MutexLock lock(drain_mu_);
    ++submitted_;
  }
  const PushOutcome outcome = queue_.TryPush(std::move(task));
  if (outcome != PushOutcome::kAccepted) {
    MutexLock lock(drain_mu_);
    --submitted_;
  }
  return outcome;
}

PushOutcome ThreadPool::SubmitWithDeadline(BoundedTaskQueue::Task task,
                                           double timeout_ms) {
  {
    MutexLock lock(drain_mu_);
    ++submitted_;
  }
  const PushOutcome outcome =
      queue_.PushWithDeadline(std::move(task), timeout_ms);
  if (outcome != PushOutcome::kAccepted) {
    MutexLock lock(drain_mu_);
    --submitted_;
  }
  return outcome;
}

void ThreadPool::Drain() {
  // Explicit while-Wait (not a lambda predicate) so the analysis sees the
  // guarded reads of submitted_/completed_.
  drain_mu_.Lock();
  while (completed_ != submitted_) drain_cv_.Wait(drain_mu_);
  drain_mu_.Unlock();
}

void ThreadPool::WorkerLoop() {
  BoundedTaskQueue::Task task;
  while (queue_.Pop(&task)) {
    busy_.fetch_add(1, std::memory_order_relaxed);
    task();
    busy_.fetch_sub(1, std::memory_order_relaxed);
    task = nullptr;  // release captures before signaling completion
    {
      MutexLock lock(drain_mu_);
      ++completed_;
    }
    drain_cv_.NotifyAll();
  }
}

}  // namespace eeb::core
