#include "core/thread_pool.h"

#include <algorithm>
#include <utility>

namespace eeb::core {

ThreadPool::ThreadPool(size_t n_threads, size_t queue_capacity)
    : queue_(queue_capacity == 0 ? 2 * std::max<size_t>(1, n_threads)
                                 : queue_capacity) {
  const size_t n = std::max<size_t>(1, n_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  queue_.Shutdown();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::Submit(BoundedTaskQueue::Task task) {
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    ++submitted_;
  }
  if (!queue_.Push(std::move(task))) {
    // Rejected by a closed queue: roll the accounting back so Drain does
    // not wait for a task that will never run.
    std::lock_guard<std::mutex> lock(drain_mu_);
    --submitted_;
    return false;
  }
  return true;
}

void ThreadPool::Drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] { return completed_ == submitted_; });
}

void ThreadPool::WorkerLoop() {
  BoundedTaskQueue::Task task;
  while (queue_.Pop(&task)) {
    busy_.fetch_add(1, std::memory_order_relaxed);
    task();
    busy_.fetch_sub(1, std::memory_order_relaxed);
    task = nullptr;  // release captures before signaling completion
    {
      std::lock_guard<std::mutex> lock(drain_mu_);
      ++completed_;
    }
    drain_cv_.notify_all();
  }
}

}  // namespace eeb::core
