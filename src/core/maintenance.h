// Histogram / cache maintenance (paper Sec. 3.5): "we expect the
// distribution of queries does not change rapidly ... we propose to perform
// updates and rebuild the cache periodically (e.g., daily)."
//
// CacheMaintainer makes that policy concrete: feed it each finished epoch's
// query log; it measures how far the epoch's near-result value distribution
// (F', the input of the kNN-optimal histogram) drifted from the
// distribution the active histogram was built on, and rebuilds the
// workload statistics + histogram + cache when the drift passes a
// threshold. Queries keep being served by the old cache during analysis.

#ifndef EEB_CORE_MAINTENANCE_H_
#define EEB_CORE_MAINTENANCE_H_

#include <vector>

#include "core/system.h"

namespace eeb::core {

struct MaintenanceOptions {
  /// Rebuild when the total-variation distance between the active and the
  /// epoch F' distributions exceeds this (0 = rebuild every epoch,
  /// 1 = never).
  double rebuild_threshold = 0.15;

  /// Weight of the accumulated history when blending with a new epoch
  /// (EWMA): acc = history_decay * acc + epoch. 0 rebuilds from the epoch
  /// alone (the paper's "rebuild from the latest log"); larger values keep
  /// long-lived hot points cached through noisy epochs.
  double history_decay = 0.0;
};

/// Total-variation distance between two frequency arrays after
/// normalization: 0.5 * sum |p_i - q_i|, in [0, 1]. Arrays of all-zero mass
/// count as uniform.
double DistributionDrift(const hist::FrequencyArray& a,
                         const hist::FrequencyArray& b);

/// Same metric over raw frequency vectors (e.g. per-point candidate
/// frequencies — the signal that decides whether the HFF cache content is
/// still the right one).
double DistributionDrift(const std::vector<double>& a,
                         const std::vector<double>& b);

/// Epoch-driven maintenance controller for a System.
class CacheMaintainer {
 public:
  /// `system` must have a cache configured and outlive the maintainer.
  CacheMaintainer(System* system, const MaintenanceOptions& options)
      : system_(system), options_(options) {}

  /// Ingests a finished epoch. Computes the drift against the active
  /// workload statistics and rebuilds (RefreshWorkload + ReconfigureCache)
  /// when it exceeds the threshold.
  Status EndEpoch(const std::vector<std::vector<Scalar>>& epoch_queries);

  uint64_t epochs() const { return epochs_; }
  uint64_t rebuilds() const { return rebuilds_; }
  /// max(value-distribution drift, hot-point drift) of the last epoch. The
  /// first invalidates the histogram, the second the HFF cache content.
  double last_drift() const { return last_drift_; }

  /// Binds maintenance instruments (epoch/rebuild counters, last drift,
  /// analyze/rebuild timing histograms) in `registry`; nullptr detaches.
  void BindMetrics(obs::MetricsRegistry* registry);

  /// Attaches the cache-introspection instrument as a read-only drift
  /// signal: each EndEpoch records its working-set Jaccard overlap next to
  /// the distribution drift (maintenance.ws_jaccard). The signal is
  /// observed, never acted on — the rebuild decision stays with the
  /// distribution-drift threshold. nullptr detaches.
  void SetAnalytics(const obs::CacheAnalytics* analytics) {
    analytics_ = analytics;
  }

  /// Working-set Jaccard observed at the last EndEpoch (0 when no
  /// analytics instrument is attached or no window has completed).
  double last_ws_jaccard() const { return last_ws_jaccard_; }

 private:
  System* system_;
  MaintenanceOptions options_;
  const obs::CacheAnalytics* analytics_ = nullptr;
  uint64_t epochs_ = 0;
  uint64_t rebuilds_ = 0;
  double last_drift_ = 0.0;
  double last_ws_jaccard_ = 0.0;

  // Bound instruments (nullptr when observability is off).
  struct Instruments {
    obs::Counter* epochs = nullptr;
    obs::Counter* rebuilds = nullptr;
    obs::Gauge* last_drift = nullptr;
    obs::Gauge* ws_jaccard = nullptr;
    obs::LatencyHistogram* analyze_seconds = nullptr;
    obs::LatencyHistogram* rebuild_seconds = nullptr;
  } obs_;

  // EWMA accumulators (used when history_decay > 0).
  bool has_history_ = false;
  WorkloadStats acc_;
  std::unique_ptr<hist::FrequencyArray> acc_fprime_;
};

}  // namespace eeb::core

#endif  // EEB_CORE_MAINTENANCE_H_
