// Cost estimation model (paper Sec. 4): predicts the refinement I/O of a
// histogram cache as a function of the cache size CS and code length tau,
// and tunes the optimal tau.
//
//   Crefine_est = (1 - rho_hit * rho_prune) * E[|C(q)|]          (Eqn. 1)
//   rho_hit     — from the HFF frequency distribution: the best Nitem =
//                 CS / item_bytes(tau) items capture the top of the freq
//                 curve (Thm. 1 gives the Lvalue/tau relation to an exact
//                 cache; we also evaluate the exact sum).
//   rho_prune   = 1 - rho_refine;  rho_refine <= ||eps(b_k)|| / Dmax
//                 (Thm. 2), with the closed equi-width form
//                 rho_refine <= sqrt(d) * w / Dmax, w = 2^(Lvalue - tau)
//                 (Thm. 3).

#ifndef EEB_CORE_COST_MODEL_H_
#define EEB_CORE_COST_MODEL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/status.h"
#include "hist/frequency.h"
#include "hist/histogram.h"

namespace eeb::core {

/// Inputs shared by all estimators.
struct CostModelInputs {
  /// Per-point workload frequencies sorted descending (HFF order).
  std::vector<double> freq_sorted;
  double avg_candidates = 0.0;  ///< E[|C(q)|]
  double dmax = 1.0;            ///< largest candidate distance (Thm. 2)
  double avg_knn_dist = 0.0;    ///< mean k-th nearest candidate distance
  /// Sorted sample of candidate distances. When non-empty, the generic
  /// estimator replaces Thm. 2's uniform-density assumption with this
  /// empirical distribution (clustered data is far from uniform; see
  /// DESIGN.md "Deviations").
  std::vector<double> cand_dist_sample;
  size_t dim = 0;               ///< d
  uint32_t lvalue = 8;          ///< bits of a full-precision stored value
  size_t cache_bytes = 0;       ///< CS
  size_t k = 10;
};

/// Output of one estimate.
struct CostEstimate {
  double hit_ratio = 0.0;    ///< rho_hit
  double prune_ratio = 0.0;  ///< rho_prune
  double expected_crefine = 0.0;  ///< estimated refinement I/O per query
};

/// Exact HFF hit ratio for a cache holding `items` entries: mass of the top
/// `items` frequencies over the total mass.
double HffHitRatio(const std::vector<double>& freq_sorted, size_t items);

/// Upper bound of Theorem 1: rho_hit <= (Lvalue / tau) * rho_hit_exact.
double HitRatioBoundThm1(const CostModelInputs& in, uint32_t tau);

/// Equi-width estimate at code length tau (Thm. 3 closed form).
CostEstimate EstimateEquiWidth(const CostModelInputs& in, uint32_t tau);

/// Estimate for an arbitrary histogram. A candidate c escapes refinement
/// when dist-(c) >= ubk; with dist-(c) >= dist(c) - ||eps(c)|| and
/// ubk <= dist(b_k) + ||eps(b_k)|| (Lemma 1), the refinement probability
/// under a uniform candidate-distance density is approximately
/// (||eps(b_k)|| + ||eps(c)||) / Dmax: the near-result term uses the
/// F'-weighted mean bucket width (Thm. 2) and the candidate term the
/// data-frequency-weighted width. (For equi-width both terms coincide up to
/// a constant and the closed Thm. 3 form applies.)
CostEstimate EstimateForHistogram(const CostModelInputs& in,
                                  const hist::Histogram& h,
                                  const hist::FrequencyArray& fprime,
                                  const hist::FrequencyArray& fdata);

/// Estimate for the EXACT cache (tau = Lvalue, every hit resolved exactly).
CostEstimate EstimateExact(const CostModelInputs& in);

/// Predicted-vs-observed comparison for one configured cache over one
/// measured batch (Sec. 5's implicit model-accuracy check, made explicit so
/// bench artifacts can gate on it).
struct ModelValidation {
  double predicted_hit = 0.0;
  double observed_hit = 0.0;
  double predicted_prune = 0.0;
  double observed_prune = 0.0;
  double predicted_crefine = 0.0;
  double observed_crefine = 0.0;
  double hit_error = 0.0;    ///< |predicted - observed| (ratios, absolute)
  double prune_error = 0.0;  ///< |predicted - observed| (ratios, absolute)
  /// |predicted - observed| / max(observed, 1): relative, guarded so tiny
  /// observed Crefine does not explode the ratio.
  double crefine_rel_error = 0.0;
};

/// Compares a cost-model estimate against ratios measured by the engine
/// (AggregateResult::hit_ratio / prune_ratio / avg_remaining).
ModelValidation ValidateEstimate(const CostEstimate& predicted,
                                 double observed_hit, double observed_prune,
                                 double observed_crefine);

/// Optimal code length for the equi-width histogram: iterates tau in
/// [1, Lvalue] and returns the minimizer of expected_crefine (Sec. 4.2.2).
uint32_t OptimalTauEquiWidth(const CostModelInputs& in);

/// Generic tuner: evaluates `estimate(tau)` for tau in [1, Lvalue] and
/// returns the minimizer. `builder` maps tau to a histogram (e.g. HC-O with
/// 2^tau buckets).
uint32_t OptimalTauForBuilder(
    const CostModelInputs& in,
    const std::function<Status(uint32_t tau, hist::Histogram*)>& builder,
    const hist::FrequencyArray& fprime, const hist::FrequencyArray& fdata);

}  // namespace eeb::core

#endif  // EEB_CORE_COST_MODEL_H_
