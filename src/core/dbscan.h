// DBSCAN with cache-assisted neighborhoods — the paper's Sec. 7 names
// density-based clustering on high-dimensional data as the target advanced
// operation. Each eps-neighborhood probe is a cache-assisted RangeQuery, so
// most neighborhood members are certified by distance bounds without disk
// I/O. With FullScanIndex as the candidate generator the clustering is
// exactly classic DBSCAN; with an LSH generator it is its approximate
// variant (neighborhoods restricted to LSH candidates).

#ifndef EEB_CORE_DBSCAN_H_
#define EEB_CORE_DBSCAN_H_

#include <cstdint>
#include <vector>

#include "common/dataset.h"
#include "core/range_search.h"

namespace eeb::core {

inline constexpr int32_t kDbscanNoise = -1;

struct DbscanOptions {
  double eps = 1.0;       ///< neighborhood radius
  size_t min_pts = 5;     ///< core-point density threshold (incl. self)
  size_t k_hint = 64;     ///< candidate-size hint for the index
};

struct DbscanResult {
  std::vector<int32_t> labels;  ///< cluster id per point, kDbscanNoise = -1
  int32_t num_clusters = 0;
  storage::IoStats io;          ///< total I/O across all range queries
  uint64_t range_queries = 0;
  uint64_t fetched = 0;         ///< points resolved by disk reads
  uint64_t bound_decided = 0;   ///< points decided by cache bounds alone
};

/// Clusters the staged dataset (queries use the in-memory coordinates; the
/// neighborhoods read the disk-resident file like any query would).
Status Dbscan(index::CandidateIndex* index, const storage::PointFile& points,
              cache::KnnCache* cache, const Dataset& data,
              const DbscanOptions& options, DbscanResult* out);

}  // namespace eeb::core

#endif  // EEB_CORE_DBSCAN_H_
