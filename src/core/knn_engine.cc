#include "core/knn_engine.h"

#include <algorithm>
#include <limits>

#include "common/distance.h"
#include "common/timer.h"
#include "common/topk.h"

namespace eeb::core {
namespace {

// k-th smallest value (1-based k); +inf when the input is empty. When fewer
// than k values exist, returns the largest (the bound degrades gracefully).
double KthMin(std::vector<double> values, size_t k) {
  if (values.empty()) return std::numeric_limits<double>::infinity();
  const size_t idx = std::min(k, values.size()) - 1;
  std::nth_element(values.begin(), values.begin() + idx, values.end());
  return values[idx];
}

}  // namespace

Status KnnEngine::Query(std::span<const Scalar> q, size_t k,
                        QueryResult* out) {
  *out = QueryResult{};
  if (k == 0) return Status::InvalidArgument("k must be positive");
  Timer timer;

  // ---- Phase 1: candidate generation -----------------------------------
  std::vector<PointId> cand;
  EEB_RETURN_IF_ERROR(index_->Candidates(q, k, &cand, &out->gen_io));
  out->candidates = cand.size();
  out->gen_seconds = timer.ElapsedSeconds();

  // ---- Phase 2: candidate reduction (no I/O) ----------------------------
  timer.Start();
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<double> lbs(cand.size(), 0.0);
  std::vector<double> ubs(cand.size(), inf);
  std::vector<bool> resolved(cand.size(), false);
  storage::PageTracker tracker;
  std::vector<Scalar> buf(points_->dim());
  if (cache_ != nullptr) {
    for (size_t i = 0; i < cand.size(); ++i) {
      double lb, ub;
      if (cache_->Probe(q, cand[i], &lb, &ub)) {
        lbs[i] = lb;
        ubs[i] = ub;
        out->cache_hits++;
      } else if (options_.eager_miss_fetch) {
        // Footnote 6: resolve misses now so lbk/ubk are tight.
        EEB_RETURN_IF_ERROR(
            points_->ReadPoint(cand[i], buf, &out->refine_io, &tracker));
        out->fetched++;
        const double d = L2(q, buf);
        lbs[i] = d;
        ubs[i] = d;
        resolved[i] = true;
        cache_->Admit(cand[i], buf);
      }
    }
  }

  const double lbk = KthMin(lbs, k);
  const double ubk = KthMin(ubs, k);

  std::vector<PointId> sure;  // R: true results detected without fetching
  struct Pending {
    double lb;
    PointId id;
    bool resolved;  // exact distance already known (eager miss fetch)
  };
  std::vector<Pending> remaining;
  remaining.reserve(cand.size());
  for (size_t i = 0; i < cand.size(); ++i) {
    if (lbs[i] > ubk) {
      out->pruned++;  // early pruning (Line 10-11)
    } else if (options_.true_result_detection && ubs[i] < lbk) {
      sure.push_back(cand[i]);  // true result detection (Line 12-13)
      out->true_hits++;
    } else {
      remaining.push_back({lbs[i], cand[i], resolved[i]});
    }
  }
  out->remaining = remaining.size();
  out->reduce_seconds = timer.ElapsedSeconds();

  // ---- Phase 3: multi-step refinement ------------------------------------
  timer.Start();
  out->result_ids = std::move(sure);
  if (out->result_ids.size() < k) {
    const size_t kprime = k - out->result_ids.size();
    if (remaining.size() <= kprime) {
      // Everything left is a result; no fetch can change the id set.
      for (const Pending& p : remaining) out->result_ids.push_back(p.id);
    } else {
      std::sort(remaining.begin(), remaining.end(),
                [](const Pending& a, const Pending& b) {
                  if (a.lb != b.lb) return a.lb < b.lb;
                  return a.id < b.id;
                });
      TopK top(kprime);
      for (const Pending& p : remaining) {
        if (top.Full() && p.lb > top.Threshold()) break;  // optimal stop
        if (p.resolved) {
          top.Push(p.id, p.lb);  // lb == exact distance; no I/O needed
          continue;
        }
        EEB_RETURN_IF_ERROR(
            points_->ReadPoint(p.id, buf, &out->refine_io, &tracker));
        out->fetched++;
        top.Push(p.id, L2(q, buf));
        if (cache_ != nullptr) cache_->Admit(p.id, buf);
      }
      for (const Neighbor& nb : top.TakeSorted()) {
        out->result_ids.push_back(nb.id);
      }
    }
  }
  std::sort(out->result_ids.begin(), out->result_ids.end());
  out->refine_seconds = timer.ElapsedSeconds();
  return Status::OK();
}

}  // namespace eeb::core
