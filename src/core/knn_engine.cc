#include "core/knn_engine.h"

#include <algorithm>
#include <limits>

#include "common/distance.h"
#include "common/timer.h"
#include "common/topk.h"

namespace eeb::core {
namespace {

// k-th smallest value (1-based k); +inf when the input is empty. When fewer
// than k values exist, returns the largest (the bound degrades gracefully).
double KthMin(std::vector<double> values, size_t k) {
  if (values.empty()) return std::numeric_limits<double>::infinity();
  const size_t idx = std::min(k, values.size()) - 1;
  std::nth_element(values.begin(), values.begin() + idx, values.end());
  return values[idx];
}

// Failures the degraded path may absorb: transient I/O (post-retry) and
// checksum corruption. Anything else (bad id, bad span) is a caller bug and
// must propagate.
bool DegradableFailure(const Status& st) {
  return st.IsIOError() || st.IsCorruption();
}

}  // namespace

Status KnnEngine::Query(std::span<const Scalar> q, size_t k,
                        const QueryContext& ctx, QueryResult* out) {
  *out = QueryResult{};
  if (k == 0) return Status::InvalidArgument("k must be positive");
  // Pin the published cache generation for this whole query; a concurrent
  // set_cache() (maintenance rebuild) cannot free it from under us.
  std::shared_ptr<cache::KnnCache> cache_ref;
  {
    MutexLock lock(cache_mu_);
    cache_ref = cache_;
  }
  cache::KnnCache* const cache = cache_ref.get();
  obs::ProfScope query_scope(prof_, "query");
  Timer timer;
  Timer deadline_timer;  // wall clock across all phases, for the deadline
  // Effective per-call deadline: the context overrides the engine default,
  // and time spent before entry (queue wait, ctx.elapsed_ms) counts as
  // already consumed — the end-to-end budget of docs/ROBUSTNESS.md.
  const double deadline_ms =
      ctx.deadline_ms < 0.0 ? options_.deadline_ms : ctx.deadline_ms;
  auto deadline_expired = [&deadline_timer, &ctx, deadline_ms] {
    return deadline_ms > 0.0 &&
           ctx.elapsed_ms + deadline_timer.ElapsedMillis() >= deadline_ms;
  };
  obs::QuerySpan* span = tracer_ != nullptr ? tracer_->StartSpan(k) : nullptr;

  // ---- Phase 1: candidate generation -----------------------------------
  std::vector<PointId> cand;
  {
    obs::ProfScope gen_scope(prof_, "gen");
    EEB_RETURN_IF_ERROR(index_->Candidates(q, k, &cand, &out->gen_io));
  }
  out->candidates = cand.size();
  out->gen_seconds = timer.ElapsedSeconds();
  // Generation-boundary cut: generation itself is one in-memory index scan
  // (its I/O is modeled, not performed), so the budget is checked at the
  // phase edge; an exhausted budget skips the probe loop and sends every
  // candidate to the degraded bound-substitution path.
  if (!out->deadline_hit && deadline_expired()) {
    out->deadline_hit = true;
    if (span != nullptr) {
      tracer_->AddEvent(span, obs::TraceEventType::kDeadlineCut, 0,
                        ctx.elapsed_ms + deadline_timer.ElapsedMillis());
    }
  }

  // State shared by reduction and refinement.
  storage::PageTracker tracker;
  std::vector<Scalar> buf(points_->dim());
  // First-touch page events: each ReadPoint may pull in pages the tracker
  // has not seen this query; tag them on the point that caused the fault.
  size_t seen_pages = 0;
  auto note_pages = [&](PointId id) {
    if (span == nullptr) return;
    const size_t now = tracker.distinct_pages();
    if (now > seen_pages) {
      tracer_->AddEvent(span, obs::TraceEventType::kPageRead,
                        points_->PageOfPoint(id),
                        static_cast<double>(now - seen_pages));
      seen_pages = now;
    }
  };
  std::vector<PointId> sure;  // R: true results detected without fetching
  struct Pending {
    double lb;
    double ub;  // cached upper bound; the degraded fallback scores with it
    PointId id;
    bool resolved;  // exact distance already known (eager miss fetch)
  };
  std::vector<Pending> remaining;
  // Captured for the explain record.
  double lbk_used = std::numeric_limits<double>::infinity();
  double ubk_used = std::numeric_limits<double>::infinity();
  bool saw_corruption = false;

  // ---- Phase 2: candidate reduction (no I/O) ----------------------------
  timer.Start();
  {
    obs::ProfScope reduce_scope(prof_, "reduce");
    const double inf = std::numeric_limits<double>::infinity();
    std::vector<double> lbs(cand.size(), 0.0);
    std::vector<double> ubs(cand.size(), inf);
    std::vector<bool> resolved(cand.size(), false);
    if (cache != nullptr) {
      obs::ProfScope probes_scope(prof_, "cache_probes");
      // eeb-hot-begin(reduce-probe-loop): one iteration per candidate; any
      // allocation here multiplies by |C(q)| and shows in reduce_seconds.
      for (size_t i = 0; i < cand.size(); ++i) {
        // Reduction cut point, checked every 32 candidates so the timer
        // read stays off the per-probe cost. Unprobed candidates keep
        // [0, inf) bounds and fall through to refinement, where the
        // already-expired deadline resolves them by substitution.
        if ((i & 31u) == 0u && !out->deadline_hit && deadline_expired()) {
          out->deadline_hit = true;
          if (span != nullptr) {
            tracer_->AddEvent(span, obs::TraceEventType::kDeadlineCut,
                              cand[i],
                              ctx.elapsed_ms + deadline_timer.ElapsedMillis());
          }
        }
        if (out->deadline_hit) break;
        double lb, ub;
        const bool probe_hit = cache->Probe(q, cand[i], &lb, &ub);
        // Introspection taps see every probe: the analytics sampling gate
        // is one hash+compare, and the shadows replay the key only.
        if (analytics_ != nullptr) {
          analytics_->OnAccess(static_cast<uint64_t>(cand[i]), probe_hit);
        }
        if (shadow_ != nullptr) {
          shadow_->OnAccess(static_cast<uint64_t>(cand[i]));
        }
        if (probe_hit) {
          lbs[i] = lb;
          ubs[i] = ub;
          out->cache_hits++;
          if (span != nullptr) {
            tracer_->AddEvent(span, obs::TraceEventType::kCacheHit, cand[i],
                              lb);
          }
        } else {
          if (span != nullptr) {
            tracer_->AddEvent(span, obs::TraceEventType::kCacheMiss, cand[i],
                              0.0);
          }
          if (options_.eager_miss_fetch) {
            // Footnote 6: resolve misses now so lbk/ubk are tight.
            Status rs =
                points_->ReadPoint(cand[i], buf, &out->refine_io, &tracker);
            if (!rs.ok()) {
              if (!options_.degraded_fallback || !DegradableFailure(rs)) {
                return rs;
              }
              // The candidate stays an unresolved miss with [0, inf) bounds;
              // refinement gets another shot at reading it.
              out->read_failures++;
              saw_corruption |= rs.IsCorruption();
              if (span != nullptr) {
                tracer_->AddEvent(span, obs::TraceEventType::kReadFailure,
                                  cand[i], 0.0);
              }
              continue;
            }
            out->fetched++;
            const double d = L2(q, buf);
            lbs[i] = d;
            ubs[i] = d;
            resolved[i] = true;
            cache->Admit(cand[i], buf);
            if (span != nullptr) {
              tracer_->AddEvent(span, obs::TraceEventType::kEagerFetch,
                                cand[i], d);
            }
            note_pages(cand[i]);
          }
        }
      }
      // eeb-hot-end
    }

    const double lbk = KthMin(lbs, k);
    const double ubk = KthMin(ubs, k);
    lbk_used = lbk;
    ubk_used = ubk;

    remaining.reserve(cand.size());
    for (size_t i = 0; i < cand.size(); ++i) {
      if (lbs[i] > ubk) {
        out->pruned++;  // early pruning (Line 10-11)
        if (span != nullptr) {
          tracer_->AddEvent(span, obs::TraceEventType::kEarlyPrune, cand[i],
                            lbs[i]);
        }
      } else if (options_.true_result_detection && ubs[i] < lbk) {
        sure.push_back(cand[i]);  // true result detection (Line 12-13)
        out->true_hits++;
        if (span != nullptr) {
          tracer_->AddEvent(span, obs::TraceEventType::kTrueResult, cand[i],
                            ubs[i]);
        }
      } else {
        remaining.push_back({lbs[i], ubs[i], cand[i], resolved[i]});
      }
    }
  }
  out->remaining = remaining.size();
  out->reduce_seconds = timer.ElapsedSeconds();

  // ---- Phase 3: multi-step refinement ------------------------------------
  timer.Start();
  {
    obs::ProfScope refine_scope(prof_, "refine");
    out->result_ids = std::move(sure);
    if (out->result_ids.size() < k) {
      const size_t kprime = k - out->result_ids.size();
      if (remaining.size() <= kprime) {
        // Everything left is a result; no fetch can change the id set.
        for (const Pending& p : remaining) out->result_ids.push_back(p.id);
      } else {
        std::sort(remaining.begin(), remaining.end(),
                  [](const Pending& a, const Pending& b) {
                    if (a.lb != b.lb) return a.lb < b.lb;
                    return a.id < b.id;
                  });
        TopK top(kprime);
        // Degraded fallback: rank the candidate by its cached upper bound
        // (pessimistic — a cache miss means +inf) instead of aborting.
        auto substitute = [&](const Pending& p) {
          out->degraded = true;
          out->substituted++;
          top.Push(p.id, p.ub);
          if (span != nullptr) {
            tracer_->AddEvent(span, obs::TraceEventType::kDegraded, p.id,
                              p.ub);
          }
        };
        // eeb-hot-begin(refine-fetch-loop): the multi-step kNN inner loop —
        // per-candidate work must stay fetch + distance only.
        for (const Pending& p : remaining) {
          if (top.Full() && p.lb > top.Threshold()) break;  // optimal stop
          if (p.resolved) {
            top.Push(p.id, p.lb);  // lb == exact distance; no I/O needed
            continue;
          }
          if (!out->deadline_hit && deadline_expired()) {
            out->deadline_hit = true;
            if (span != nullptr) {
              tracer_->AddEvent(span, obs::TraceEventType::kDeadlineCut, p.id,
                                ctx.elapsed_ms +
                                    deadline_timer.ElapsedMillis());
            }
          }
          if (out->deadline_hit) {
            substitute(p);
            continue;
          }
          Status rs = points_->ReadPoint(p.id, buf, &out->refine_io, &tracker);
          if (!rs.ok()) {
            if (!options_.degraded_fallback || !DegradableFailure(rs)) {
              return rs;
            }
            out->read_failures++;
            saw_corruption |= rs.IsCorruption();
            if (span != nullptr) {
              tracer_->AddEvent(span, obs::TraceEventType::kReadFailure, p.id,
                                0.0);
            }
            substitute(p);
            continue;
          }
          out->fetched++;
          const double d = L2(q, buf);
          top.Push(p.id, d);
          if (cache != nullptr) cache->Admit(p.id, buf);
          if (span != nullptr) {
            tracer_->AddEvent(span, obs::TraceEventType::kFetch, p.id, d);
          }
          note_pages(p.id);
        }
        // eeb-hot-end
        for (const Neighbor& nb : top.TakeSorted()) {
          out->result_ids.push_back(nb.id);
        }
      }
    }
    std::sort(out->result_ids.begin(), out->result_ids.end());
  }
  out->refine_seconds = timer.ElapsedSeconds();
  out->queue_wait_ms = ctx.elapsed_ms;

  // ---- Explain record (filled on every query; scalars only) -------------
  {
    obs::QueryExplain& e = out->explain;
    e.cache_generation = cache != nullptr ? cache->generation_id() : 0;
    e.k = static_cast<uint32_t>(k);
    e.candidates = static_cast<uint32_t>(out->candidates);
    e.cache_hits = static_cast<uint32_t>(out->cache_hits);
    e.pruned = static_cast<uint32_t>(out->pruned);
    e.true_results = static_cast<uint32_t>(out->true_hits);
    e.remaining = static_cast<uint32_t>(out->remaining);
    e.fetched = static_cast<uint32_t>(out->fetched);
    e.point_reads = static_cast<uint32_t>(out->refine_io.point_reads);
    e.pages_read = static_cast<uint32_t>(out->refine_io.page_reads);
    e.distinct_pages = static_cast<uint32_t>(tracker.distinct_pages());
    e.substituted = static_cast<uint32_t>(out->substituted);
    e.read_failures = static_cast<uint32_t>(out->read_failures);
    e.lbk = lbk_used;
    e.ubk = ubk_used;
    e.queue_wait_ms = ctx.elapsed_ms;
    e.gen_seconds = out->gen_seconds;
    e.reduce_seconds = out->reduce_seconds;
    e.refine_seconds = out->refine_seconds;
    if (saw_corruption) {
      e.degraded_cause = obs::DegradedCause::kCorruption;
    } else if (out->read_failures > 0) {
      e.degraded_cause = obs::DegradedCause::kReadFailure;
    } else if (out->deadline_hit) {
      e.degraded_cause = obs::DegradedCause::kDeadline;
    }
  }

  if (span != nullptr) {
    span->gen_seconds = out->gen_seconds;
    span->reduce_seconds = out->reduce_seconds;
    span->refine_seconds = out->refine_seconds;
    span->candidates = out->candidates;
    span->cache_hits = out->cache_hits;
    span->pruned = out->pruned;
    span->true_hits = out->true_hits;
    span->remaining = out->remaining;
    span->fetched = out->fetched;
    span->degraded = out->degraded ? 1 : 0;
    span->substituted = out->substituted;
    span->read_failures = out->read_failures;
    tracer_->EndSpan();
  }
  if (obs_.queries != nullptr) {
    obs_.queries->Add(1);
    obs_.candidates->Add(out->candidates);
    if (cache != nullptr) {
      obs_.cache_hits->Add(out->cache_hits);
      obs_.cache_misses->Add(out->candidates - out->cache_hits);
    }
    obs_.pruned->Add(out->pruned);
    obs_.true_hits->Add(out->true_hits);
    obs_.fetched->Add(out->fetched);
    if (out->degraded) obs_.degraded_queries->Add(1);
    obs_.substituted->Add(out->substituted);
    obs_.read_failures->Add(out->read_failures);
    if (out->deadline_hit) obs_.deadline_cuts->Add(1);
    obs_.gen_seconds->Record(out->gen_seconds);
    obs_.reduce_seconds->Record(out->reduce_seconds);
    obs_.refine_seconds->Record(out->refine_seconds);
  }
  // Cache and storage batch their hot-path events; publish once per query.
  if (cache != nullptr) cache->PublishMetrics();
  if (analytics_ != nullptr) analytics_->PublishMetrics();
  points_->PublishIo(out->refine_io);
  return Status::OK();
}

void KnnEngine::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    obs_ = Instruments{};
    return;
  }
  obs_.queries = registry->GetCounter("engine.queries");
  obs_.candidates = registry->GetCounter("engine.candidates");
  obs_.cache_hits = registry->GetCounter("engine.cache_hits");
  obs_.cache_misses = registry->GetCounter("engine.cache_misses");
  obs_.pruned = registry->GetCounter("engine.pruned");
  obs_.true_hits = registry->GetCounter("engine.true_results");
  obs_.fetched = registry->GetCounter("engine.fetched");
  obs_.degraded_queries = registry->GetCounter("engine.degraded_queries");
  obs_.substituted = registry->GetCounter("engine.degraded_substituted");
  obs_.read_failures = registry->GetCounter("engine.read_failures");
  obs_.deadline_cuts = registry->GetCounter("engine.deadline_cuts");
  obs_.gen_seconds = registry->GetHistogram("engine.gen_seconds");
  obs_.reduce_seconds = registry->GetHistogram("engine.reduce_seconds");
  obs_.refine_seconds = registry->GetHistogram("engine.refine_seconds");
}

}  // namespace eeb::core
