// Fixed-size worker pool over a BoundedTaskQueue (docs/CONCURRENCY.md).
// Workers are spawned once at construction and live until destruction —
// a query server keeps its threads warm instead of paying spawn latency
// per request. Submit applies queue backpressure; Drain is the batch
// barrier System::RunQueriesConcurrent uses between fan-out and the
// deterministic aggregation pass.

#ifndef EEB_CORE_THREAD_POOL_H_
#define EEB_CORE_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/task_queue.h"

namespace eeb::core {

/// Fixed pool of worker threads consuming a bounded MPMC queue.
class ThreadPool {
 public:
  /// Spawns `n_threads` workers (at least one). `queue_capacity` bounds the
  /// backlog of submitted-but-unstarted tasks; 0 picks 2 * n_threads, enough
  /// to keep every worker fed without unbounded buildup.
  explicit ThreadPool(size_t n_threads, size_t queue_capacity = 0);

  /// Closes the queue, drains remaining tasks and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task, blocking while the queue is full. Returns false iff
  /// the pool is shutting down.
  bool Submit(BoundedTaskQueue::Task task) EEB_EXCLUDES(drain_mu_);

  /// Non-blocking admission (load shedding, docs/ROBUSTNESS.md): enqueues
  /// iff a queue slot is free right now; kFull otherwise. Drain accounting
  /// only counts accepted tasks, so a shed producer owes nothing.
  [[nodiscard]] PushOutcome TrySubmit(BoundedTaskQueue::Task task)
      EEB_EXCLUDES(drain_mu_);

  /// Bounded-wait admission: blocks up to `timeout_ms` for a queue slot;
  /// kTimedOut when the queue stayed full for the whole wait.
  [[nodiscard]] PushOutcome SubmitWithDeadline(BoundedTaskQueue::Task task,
                                               double timeout_ms)
      EEB_EXCLUDES(drain_mu_);

  /// Blocks until every task submitted so far has finished executing.
  void Drain() EEB_EXCLUDES(drain_mu_);

  size_t num_threads() const { return workers_.size(); }

  /// Live-telemetry gauges (obs/window.h): instantaneous backlog and the
  /// number of workers currently inside a task. Both are racy-by-nature
  /// point samples for monitoring, not synchronization.
  size_t queue_depth() const { return queue_.size(); }
  size_t queue_max_depth() const { return queue_.max_depth(); }
  size_t busy_workers() const {
    return busy_.load(std::memory_order_relaxed);
  }

  /// Full queue accounting (depth, high-water mark, pushed/popped/rejected
  /// totals); valid across the pool's whole lifetime, including after the
  /// queue closed. Published by System::SampleWorkerGauges.
  QueueStats queue_stats() const { return queue_.Stats(); }

 private:
  void WorkerLoop();

  BoundedTaskQueue queue_ EEB_UNGUARDED(
      "internally synchronized: the queue owns its own mutex/condvars");
  std::vector<std::thread> workers_ EEB_UNGUARDED(
      "spawned in the constructor, joined in the destructor; never touched "
      "while workers run");
  std::atomic<size_t> busy_{0};

  // Drain bookkeeping: tasks submitted vs. completed.
  Mutex drain_mu_;
  CondVar drain_cv_;  // signaled after a worker finishes a task
  uint64_t submitted_ EEB_GUARDED_BY(drain_mu_) = 0;
  uint64_t completed_ EEB_GUARDED_BY(drain_mu_) = 0;
};

}  // namespace eeb::core

#endif  // EEB_CORE_THREAD_POOL_H_
