// The paper's kNN search engine (Algorithm 1 / Fig. 3):
//   Phase 1  candidate generation   — index I reports C(q)        (I/O)
//   Phase 2  candidate reduction    — cache probes give [lb, ub] bounds;
//            early pruning (lb > ubk) and true-result detection (ub < lbk)
//            shrink C(q) without touching the disk                (no I/O)
//   Phase 3  candidate refinement   — optimal multi-step kNN [Seidl &
//            Kriegel '98] fetches surviving candidates in lb order (I/O)
//
// The engine is generic over the cache flavor (EXACT / HC-* / C-VA / mHC-R)
// and never changes query results: the returned ids equal the no-cache ids.
//
// Concurrency (docs/CONCURRENCY.md): Query is safe to call from many
// threads at once provided the index, point file and cache are themselves
// thread-safe on their read paths (all in-tree implementations are). Each
// query pins one shared_ptr snapshot of the cache at entry, so set_cache —
// the maintenance rebuild publication point — can swap in a new cache
// generation while queries are in flight; in-flight queries finish against
// the generation they started with. The tracer remains single-threaded by
// contract and must not be attached on the concurrent path.

#ifndef EEB_CORE_KNN_ENGINE_H_
#define EEB_CORE_KNN_ENGINE_H_

#include <memory>
#include <span>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "cache/knn_cache.h"
#include "cache/shadow_cache.h"
#include "index/candidate_index.h"
#include "obs/cache_analytics.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "storage/io_stats.h"
#include "storage/point_file.h"

namespace eeb::core {

/// Per-query statistics and result.
struct QueryResult {
  std::vector<PointId> result_ids;  ///< the k nearest ids (Def. 3)

  // Phase accounting.
  storage::IoStats gen_io;     ///< index accesses (phase 1)
  storage::IoStats refine_io;  ///< point fetches (phase 3)
  double gen_seconds = 0;      ///< measured CPU time, phase 1
  double reduce_seconds = 0;   ///< measured CPU time, phase 2
  double refine_seconds = 0;   ///< measured CPU time, phase 3 (CPU only)

  // Candidate-reduction effectiveness (feeds Eqn. 1).
  size_t candidates = 0;       ///< |C(q)|
  size_t cache_hits = 0;       ///< candidates found in the cache
  size_t pruned = 0;           ///< early-pruned (lb > ubk)
  size_t true_hits = 0;        ///< true results detected (ub < lbk)
  size_t remaining = 0;        ///< candidates entering phase 3 (Crefine)
  size_t fetched = 0;          ///< candidates actually fetched in phase 3

  // Degraded execution (docs/ROBUSTNESS.md). A degraded answer is the best
  // the cached code bounds can give when the disk cannot be read; its ids
  // may differ from the exact answer, which is why the flag exists.
  bool degraded = false;      ///< some result came from cached bounds
  bool deadline_hit = false;  ///< a phase was cut over by the deadline
  size_t substituted = 0;     ///< candidates scored by cached ub, not disk
  size_t read_failures = 0;   ///< point reads that ultimately failed

  // Admission control (docs/ROBUSTNESS.md). A shed query never reached the
  // engine: result_ids is empty and every phase counter is zero. Shed is
  // weaker than degraded — nothing was computed at all — and is accounted
  // separately so that shed + completed == submitted reconciles exactly.
  bool shed = false;  ///< dropped by admission control; never executed
  obs::ShedCause shed_cause = obs::ShedCause::kNone;
  double queue_wait_ms = 0.0;  ///< admission-to-dequeue wait (Serve path)

  /// Compact explain record (docs/OBSERVABILITY.md): the candidate funnel,
  /// the kth-bounds the reduction used, I/O shape, degraded cause, and the
  /// cache generation that served the query. Filled on every query —
  /// everything in it is a scalar the engine already computed — and
  /// surfaced via `eeb_cli --explain` and the flight recorder.
  obs::QueryExplain explain;
};

/// Engine options.
struct EngineOptions {
  /// Apply Lines 12-13 of Algorithm 1 (move sure results to R without
  /// fetching them). Disable for strict tie determinism in tests.
  bool true_result_detection = true;

  /// Paper footnote 6: fetch cache-missed candidates from disk immediately
  /// during reduction so lbk/ubk are exact for them and tighten the bounds
  /// used for pruning. The fetched points are not re-read in phase 3. The
  /// paper notes this only helps at middling hit ratios; the flag lets the
  /// ablation bench quantify that.
  bool eager_miss_fetch = false;

  /// When a candidate's disk read ultimately fails (transient IOError after
  /// the Env-level retry budget, or a page-checksum Corruption), score the
  /// candidate by its cached upper bound instead of failing the whole query;
  /// the result is flagged degraded. Disable to propagate the error (strict
  /// mode — the pre-fault-tolerance behavior).
  bool degraded_fallback = true;

  /// Per-query wall-clock deadline in milliseconds, enforced across all
  /// three phases: checked at the generation boundary, every 32 candidates
  /// inside the reduction probe loop, and per fetch (page boundary) inside
  /// refinement. Once crossed, remaining probes stop and unresolved
  /// candidates are resolved from cached bounds instead of disk (degraded,
  /// deadline_hit). 0 disables the deadline.
  double deadline_ms = 0.0;
};

/// Per-call execution budget, threaded in by the serving layer
/// (docs/ROBUSTNESS.md). Lets the end-to-end deadline include time spent
/// before the engine ran — queue wait under load — and lets the
/// HealthMonitor tighten deadlines under pressure without reconfiguring the
/// engine.
struct QueryContext {
  /// Effective deadline for this call in milliseconds. Negative means "use
  /// EngineOptions::deadline_ms" (the default); 0 disables the deadline for
  /// this call; positive overrides the engine default.
  double deadline_ms = -1.0;
  /// Wall-clock already consumed against the deadline before Query() was
  /// entered (queue wait). Counted as if the engine had spent it.
  double elapsed_ms = 0.0;
};

/// Cache-assisted kNN query processor.
class KnnEngine {
 public:
  /// All dependencies are borrowed and must outlive the engine. `cache` may
  /// be nullptr (the NO-CACHE baseline).
  KnnEngine(index::CandidateIndex* index, const storage::PointFile* points,
            cache::KnnCache* cache, EngineOptions options = {})
      : index_(index),
        points_(points),
        cache_(std::shared_ptr<cache::KnnCache>{}, cache),  // non-owning
        options_(options) {}

  /// Executes a kNN query (Algorithm 1). Thread-safe (see header comment).
  Status Query(std::span<const Scalar> q, size_t k, QueryResult* out) {
    return Query(q, k, QueryContext{}, out);
  }

  /// Executes a kNN query under an explicit per-call budget: the serving
  /// layer charges queue wait against the deadline and may tighten it under
  /// brownout. Identical to the two-argument overload when `ctx` is
  /// default-constructed.
  Status Query(std::span<const Scalar> q, size_t k, const QueryContext& ctx,
               QueryResult* out);

  /// Snapshot of the currently published cache (may be empty/nullptr).
  std::shared_ptr<cache::KnnCache> cache() EEB_EXCLUDES(cache_mu_) {
    MutexLock lock(cache_mu_);
    return cache_;
  }

  /// Publishes a new cache generation. In-flight queries keep their pinned
  /// snapshot; queries entering afterwards see `cache`. When the shared_ptr
  /// owns (or aliases) the histograms backing the cache, the whole bundle
  /// stays alive until the last in-flight reader drops it.
  void set_cache(std::shared_ptr<cache::KnnCache> cache)
      EEB_EXCLUDES(cache_mu_) {
    MutexLock lock(cache_mu_);
    cache_ = std::move(cache);
  }

  /// Binds the engine's per-phase counters and latency histograms in
  /// `registry` (names under "engine."); nullptr detaches. Instruments are
  /// updated once per query, off the per-candidate hot path.
  void BindMetrics(obs::MetricsRegistry* registry);

  /// Attaches a tracer; every subsequent Query() opens a QuerySpan and tags
  /// reduction/refinement events. nullptr (default) disables tracing.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  /// Attaches a phase profiler; every subsequent Query() records a "query"
  /// scope with "gen" / "reduce" (and its "cache_probes") / "refine"
  /// children. nullptr (default) disables profiling.
  void set_profiler(obs::Profiler* profiler) { prof_ = profiler; }

  /// Attaches the cache-introspection instrument; every cache probe then
  /// feeds OnAccess(candidate, hit) — reuse-distance sampling, miss
  /// classification, working-set sketches. nullptr (default) disables it.
  void set_analytics(obs::CacheAnalytics* analytics) {
    analytics_ = analytics;
  }

  /// Attaches shadow-cache simulations; every cache probe is replayed
  /// against each configured shadow. nullptr (default) disables them.
  void set_shadow(cache::ShadowCacheSet* shadow) { shadow_ = shadow; }

 private:
  index::CandidateIndex* const index_;
  const storage::PointFile* const points_;
  Mutex cache_mu_;  // guards cache_ publication vs. query snapshots
  std::shared_ptr<cache::KnnCache> cache_ EEB_GUARDED_BY(cache_mu_);
  const EngineOptions options_;
  obs::Tracer* tracer_ EEB_UNGUARDED(
      "attached by single-threaded setup; serving with a tracer is "
      "single-threaded by contract") = nullptr;
  obs::Profiler* prof_ EEB_UNGUARDED(
      "attached by single-threaded setup before queries run") = nullptr;
  obs::CacheAnalytics* analytics_ EEB_UNGUARDED(
      "attached by single-threaded setup before queries run; the instrument "
      "itself is thread-safe on its access path") = nullptr;
  cache::ShadowCacheSet* shadow_ EEB_UNGUARDED(
      "attached by single-threaded setup before queries run; the shadows "
      "are internally synchronized") = nullptr;

  // Bound instruments (nullptr when observability is off).
  struct Instruments {
    obs::Counter* queries = nullptr;
    obs::Counter* candidates = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* pruned = nullptr;
    obs::Counter* true_hits = nullptr;
    obs::Counter* fetched = nullptr;
    obs::Counter* degraded_queries = nullptr;
    obs::Counter* substituted = nullptr;
    obs::Counter* read_failures = nullptr;
    obs::Counter* deadline_cuts = nullptr;
    obs::LatencyHistogram* gen_seconds = nullptr;
    obs::LatencyHistogram* reduce_seconds = nullptr;
    obs::LatencyHistogram* refine_seconds = nullptr;
  } obs_ EEB_UNGUARDED(
      "bound by single-threaded setup before queries run; instruments "
      "themselves are internally atomic");
};

}  // namespace eeb::core

#endif  // EEB_CORE_KNN_ENGINE_H_
