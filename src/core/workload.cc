#include "core/workload.h"

#include <algorithm>
#include <numeric>

#include "common/distance.h"
#include "common/random.h"
#include "common/topk.h"

namespace eeb::core {

Status AnalyzeWorkload(index::CandidateIndex* index, const Dataset& data,
                       const std::vector<std::vector<Scalar>>& workload,
                       size_t k, WorkloadStats* out) {
  const size_t n = data.size();
  *out = WorkloadStats{};
  out->freq.assign(n, 0.0);

  std::vector<PointId> cand;
  double total_cands = 0.0;
  double total_kdist = 0.0;
  // Reservoir sample of candidate distances (empirical g_q of Thm. 2).
  constexpr size_t kSampleCap = 4096;
  Rng reservoir_rng(0xD157);
  uint64_t seen = 0;
  for (const auto& q : workload) {
    EEB_RETURN_IF_ERROR(index->Candidates(q, k, &cand, nullptr));
    total_cands += static_cast<double>(cand.size());

    // Frequencies, Dmax and the k nearest candidates (QR members).
    TopK top(k);
    for (PointId id : cand) {
      out->freq[id] += 1.0;
      const double d = L2(q, data.point(id));
      if (d > out->dmax) out->dmax = d;
      top.Push(id, d);
      ++seen;
      if (out->cand_dist_sample.size() < kSampleCap) {
        out->cand_dist_sample.push_back(d);
      } else {
        const uint64_t slot = reservoir_rng.Uniform(seen);
        if (slot < kSampleCap) out->cand_dist_sample[slot] = d;
      }
    }
    const auto nearest = top.TakeSorted();
    for (const Neighbor& nb : nearest) out->qr_points.push_back(nb.id);
    if (!nearest.empty()) total_kdist += nearest.back().dist;
  }

  if (!workload.empty()) {
    out->avg_candidates = total_cands / static_cast<double>(workload.size());
    out->avg_knn_dist = total_kdist / static_cast<double>(workload.size());
  }

  std::sort(out->cand_dist_sample.begin(), out->cand_dist_sample.end());

  out->ids_by_freq.resize(n);
  std::iota(out->ids_by_freq.begin(), out->ids_by_freq.end(), 0u);
  std::stable_sort(out->ids_by_freq.begin(), out->ids_by_freq.end(),
                   [&](PointId a, PointId b) {
                     if (out->freq[a] != out->freq[b]) {
                       return out->freq[a] > out->freq[b];
                     }
                     return a < b;
                   });
  return Status::OK();
}

Status AnalyzeTreeWorkload(const TreeSearchFn& search, size_t num_leaves,
                           const std::vector<std::vector<Scalar>>& workload,
                           size_t k, LeafWorkloadStats* out) {
  *out = LeafWorkloadStats{};
  out->leaf_freq.assign(num_leaves, 0.0);

  index::TreeSearchResult res;
  for (const auto& q : workload) {
    EEB_RETURN_IF_ERROR(search(q, k, &res));
    for (uint32_t leaf : res.fetched_leaves) out->leaf_freq[leaf] += 1.0;
    for (const Neighbor& nb : res.neighbors) out->qr_points.push_back(nb.id);
  }

  out->leaves_by_freq.resize(num_leaves);
  std::iota(out->leaves_by_freq.begin(), out->leaves_by_freq.end(), 0u);
  std::stable_sort(out->leaves_by_freq.begin(), out->leaves_by_freq.end(),
                   [&](uint32_t a, uint32_t b) {
                     if (out->leaf_freq[a] != out->leaf_freq[b]) {
                       return out->leaf_freq[a] > out->leaf_freq[b];
                     }
                     return a < b;
                   });
  return Status::OK();
}

}  // namespace eeb::core
