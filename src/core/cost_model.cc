#include "core/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/bitops.h"

namespace eeb::core {
namespace {

// Cache item bytes for a code cache at the given tau (packed whole words,
// matching CodeStore::item_bytes).
size_t CodeItemBytes(size_t dim, uint32_t tau) {
  return WordsForBits(dim * tau) * sizeof(uint64_t);
}

double ClampRatio(double x) { return std::min(1.0, std::max(0.0, x)); }

}  // namespace

double HffHitRatio(const std::vector<double>& freq_sorted, size_t items) {
  double total = 0.0;
  double top = 0.0;
  for (size_t i = 0; i < freq_sorted.size(); ++i) {
    total += freq_sorted[i];
    if (i < items) top += freq_sorted[i];
  }
  if (total <= 0.0) return 0.0;
  return top / total;
}

double HitRatioBoundThm1(const CostModelInputs& in, uint32_t tau) {
  const size_t exact_item = in.dim * sizeof(float);
  const size_t exact_items = exact_item == 0 ? 0 : in.cache_bytes / exact_item;
  const double exact_hit = HffHitRatio(in.freq_sorted, exact_items);
  return ClampRatio(static_cast<double>(in.lvalue) / tau * exact_hit);
}

CostEstimate EstimateEquiWidth(const CostModelInputs& in, uint32_t tau) {
  CostEstimate est;
  const size_t items = in.cache_bytes / CodeItemBytes(in.dim, tau);
  est.hit_ratio = HffHitRatio(in.freq_sorted, items);

  // Thm. 3: rho_refine <= sqrt(d) * w / Dmax with w the bucket width.
  const double w = std::pow(2.0, static_cast<double>(in.lvalue) -
                                     static_cast<double>(tau));
  const double rho_refine =
      ClampRatio(std::sqrt(static_cast<double>(in.dim)) * w / in.dmax);
  est.prune_ratio = 1.0 - rho_refine;
  est.expected_crefine =
      (1.0 - est.hit_ratio * est.prune_ratio) * in.avg_candidates;
  return est;
}

namespace {

// E[||eps||] ~= sqrt(d * E[w^2]) where E[w^2] is the weighted mean squared
// bucket width under the given frequency array.
double WeightedErrorNorm(const hist::Histogram& h,
                         const hist::FrequencyArray& weights, size_t dim) {
  double mass = 0.0;
  double wsq = 0.0;
  for (const hist::Bucket& b : h.buckets()) {
    double m = 0.0;
    for (uint32_t x = b.lo; x <= b.hi; ++x) m += weights[x];
    mass += m;
    wsq += m * static_cast<double>(b.width()) * b.width();
  }
  const double mean_wsq = mass > 0.0 ? wsq / mass : 0.0;
  return std::sqrt(static_cast<double>(dim) * mean_wsq);
}

}  // namespace

CostEstimate EstimateForHistogram(const CostModelInputs& in,
                                  const hist::Histogram& h,
                                  const hist::FrequencyArray& fprime,
                                  const hist::FrequencyArray& fdata) {
  CostEstimate est;
  const uint32_t tau = std::max<uint32_t>(1, h.code_length());
  const size_t items = in.cache_bytes / CodeItemBytes(in.dim, tau);
  est.hit_ratio = HffHitRatio(in.freq_sorted, items);

  const double eps_qr = WeightedErrorNorm(h, fprime, in.dim);
  const double eps_cand = WeightedErrorNorm(h, fdata, in.dim);

  double rho_refine;
  if (!in.cand_dist_sample.empty() && in.avg_knn_dist > 0.0) {
    // Empirical variant: a candidate needs refinement when
    // dist(c) - eps_cand < ubk ~= dist(b_k) + eps_qr, i.e. when dist(c)
    // falls below avg_knn_dist + eps_qr + eps_cand under the measured
    // candidate-distance distribution.
    const double threshold = in.avg_knn_dist + eps_qr + eps_cand;
    const auto& s = in.cand_dist_sample;
    const size_t below = static_cast<size_t>(
        std::lower_bound(s.begin(), s.end(), threshold) - s.begin());
    rho_refine = ClampRatio(static_cast<double>(below) / s.size());
  } else {
    // Thm. 2 with the uniform-density assumption.
    rho_refine = ClampRatio((eps_qr + eps_cand) / in.dmax);
  }
  est.prune_ratio = 1.0 - rho_refine;
  est.expected_crefine =
      (1.0 - est.hit_ratio * est.prune_ratio) * in.avg_candidates;
  return est;
}

CostEstimate EstimateExact(const CostModelInputs& in) {
  CostEstimate est;
  const size_t item = in.dim * sizeof(float);
  const size_t items = item == 0 ? 0 : in.cache_bytes / item;
  est.hit_ratio = HffHitRatio(in.freq_sorted, items);
  est.prune_ratio = 1.0;  // every hit is fully resolved
  est.expected_crefine =
      (1.0 - est.hit_ratio * est.prune_ratio) * in.avg_candidates;
  return est;
}

ModelValidation ValidateEstimate(const CostEstimate& predicted,
                                 double observed_hit, double observed_prune,
                                 double observed_crefine) {
  ModelValidation v;
  v.predicted_hit = predicted.hit_ratio;
  v.observed_hit = observed_hit;
  v.predicted_prune = predicted.prune_ratio;
  v.observed_prune = observed_prune;
  v.predicted_crefine = predicted.expected_crefine;
  v.observed_crefine = observed_crefine;
  v.hit_error = std::abs(predicted.hit_ratio - observed_hit);
  v.prune_error = std::abs(predicted.prune_ratio - observed_prune);
  v.crefine_rel_error = std::abs(predicted.expected_crefine - observed_crefine) /
                        std::max(observed_crefine, 1.0);
  return v;
}

uint32_t OptimalTauEquiWidth(const CostModelInputs& in) {
  uint32_t best_tau = 1;
  double best = std::numeric_limits<double>::infinity();
  for (uint32_t tau = 1; tau <= in.lvalue; ++tau) {
    const double c = EstimateEquiWidth(in, tau).expected_crefine;
    if (c < best) {
      best = c;
      best_tau = tau;
    }
  }
  return best_tau;
}

uint32_t OptimalTauForBuilder(
    const CostModelInputs& in,
    const std::function<Status(uint32_t tau, hist::Histogram*)>& builder,
    const hist::FrequencyArray& fprime, const hist::FrequencyArray& fdata) {
  uint32_t best_tau = 1;
  double best = std::numeric_limits<double>::infinity();
  for (uint32_t tau = 1; tau <= in.lvalue; ++tau) {
    hist::Histogram h;
    if (!builder(tau, &h).ok()) continue;
    const double c =
        EstimateForHistogram(in, h, fprime, fdata).expected_crefine;
    if (c < best) {
      best = c;
      best_tau = tau;
    }
  }
  return best_tau;
}

}  // namespace eeb::core
