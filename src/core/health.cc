#include "core/health.h"

#include <algorithm>

namespace eeb::core {
namespace {

HealthPolicy Sanitize(HealthPolicy policy) {
  auto clamp01 = [](double v) { return std::clamp(v, 0.0, 1.0); };
  policy.queue_brownout_fraction = clamp01(policy.queue_brownout_fraction);
  policy.queue_shed_fraction = clamp01(policy.queue_shed_fraction);
  policy.degraded_brownout_rate = clamp01(policy.degraded_brownout_rate);
  if (!(policy.brownout_deadline_factor > 0.0) ||
      policy.brownout_deadline_factor > 1.0) {
    policy.brownout_deadline_factor = 1.0;
  }
  if (policy.recover_evals < 1) policy.recover_evals = 1;
  return policy;
}

}  // namespace

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kBrownedOut:
      return "browned_out";
    case HealthState::kShedding:
      return "shedding";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(HealthPolicy policy)
    : policy_(Sanitize(policy)) {}

HealthState HealthMonitor::Classify(const obs::WindowSnapshot& snap) const {
  double occupancy = 0.0;
  if (snap.queue_capacity > 0) {
    occupancy = static_cast<double>(snap.queue_depth) /
                static_cast<double>(snap.queue_capacity);
  }
  if (policy_.p95_shed_seconds > 0.0 &&
      snap.p95_seconds >= policy_.p95_shed_seconds) {
    return HealthState::kShedding;
  }
  if (policy_.queue_shed_fraction > 0.0 &&
      occupancy >= policy_.queue_shed_fraction) {
    return HealthState::kShedding;
  }
  if (policy_.p95_brownout_seconds > 0.0 &&
      snap.p95_seconds >= policy_.p95_brownout_seconds) {
    return HealthState::kBrownedOut;
  }
  if (policy_.queue_brownout_fraction > 0.0 &&
      occupancy >= policy_.queue_brownout_fraction) {
    return HealthState::kBrownedOut;
  }
  if (policy_.degraded_brownout_rate > 0.0 &&
      snap.degraded_rate >= policy_.degraded_brownout_rate) {
    return HealthState::kBrownedOut;
  }
  return HealthState::kHealthy;
}

HealthState HealthMonitor::Evaluate(const obs::WindowSnapshot& snap) {
  const HealthState current = state_.load(std::memory_order_relaxed);
  const HealthState classified = Classify(snap);
  HealthState next = current;
  if (classified > current) {
    // Escalate immediately: under overload the queue grows every tick.
    next = classified;
    calm_evals_ = 0;
  } else if (classified < current) {
    // De-escalate one level only after a sustained calm streak.
    if (++calm_evals_ >= policy_.recover_evals) {
      next = static_cast<HealthState>(static_cast<uint8_t>(current) - 1);
      calm_evals_ = 0;
    }
  } else {
    calm_evals_ = 0;
  }
  if (next != current) {
    transitions_.fetch_add(1, std::memory_order_relaxed);
    if (obs::Counter* c = obs_transitions_.load(std::memory_order_acquire);
        c != nullptr) {
      c->Add(1);
    }
    // Single writer by contract (one evaluator thread, see calm_evals_);
    // the atomic exists for lock-free readers, not for contended updates.
    state_.store(next, std::memory_order_relaxed);  // eeb-lint: allow(atomic-misuse)
  }
  if (obs::Gauge* g = obs_state_.load(std::memory_order_acquire);
      g != nullptr) {
    g->Set(static_cast<double>(static_cast<uint8_t>(next)));
  }
  return next;
}

double HealthMonitor::EffectiveDeadlineMs(double base_deadline_ms) const {
  if (base_deadline_ms <= 0.0) return base_deadline_ms;
  if (state() == HealthState::kHealthy) return base_deadline_ms;
  return base_deadline_ms * policy_.brownout_deadline_factor;
}

void HealthMonitor::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    obs_state_.store(nullptr, std::memory_order_release);
    obs_transitions_.store(nullptr, std::memory_order_release);
    return;
  }
  obs::Gauge* state_gauge = registry->GetGauge("health.state");
  state_gauge->Set(
      static_cast<double>(static_cast<uint8_t>(state())));
  obs_state_.store(state_gauge, std::memory_order_release);
  obs_transitions_.store(registry->GetCounter("health.transitions"),
                         std::memory_order_release);
}

}  // namespace eeb::core
