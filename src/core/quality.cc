#include "core/quality.h"

#include <algorithm>
#include <set>

#include "common/distance.h"
#include "index/linear_scan.h"

namespace eeb::core {

QueryQuality MeasureQuality(const Dataset& data, std::span<const Scalar> q,
                            std::span<const PointId> result_ids, size_t k) {
  QueryQuality quality;
  if (k == 0) return quality;
  const auto truth = index::LinearScanKnn(data, q, k);

  std::set<PointId> truth_ids;
  for (const auto& nb : truth) truth_ids.insert(nb.id);
  size_t hits = 0;
  for (PointId id : result_ids) hits += truth_ids.count(id);
  quality.recall = static_cast<double>(hits) / static_cast<double>(k);

  // Overall ratio: sort the result distances and compare rank by rank with
  // the truth (the standard "overall ratio" of c-approximate kNN papers).
  std::vector<double> result_dists;
  result_dists.reserve(result_ids.size());
  for (PointId id : result_ids) {
    result_dists.push_back(L2(q, data.point(id)));
  }
  std::sort(result_dists.begin(), result_dists.end());
  double acc = 0.0;
  size_t terms = 0;
  const size_t ranks = std::min(result_dists.size(), truth.size());
  for (size_t r = 0; r < ranks; ++r) {
    if (truth[r].dist <= 0.0) {
      acc += result_dists[r] <= 0.0 ? 1.0 : 1.0;  // identical point: ratio 1
    } else {
      acc += result_dists[r] / truth[r].dist;
    }
    ++terms;
  }
  quality.overall_ratio = terms > 0 ? acc / terms : 1.0;
  return quality;
}

BatchQuality MeasureBatchQuality(
    const Dataset& data, const std::vector<std::vector<Scalar>>& queries,
    const std::vector<std::vector<PointId>>& results, size_t k) {
  BatchQuality batch;
  const size_t n = std::min(queries.size(), results.size());
  for (size_t i = 0; i < n; ++i) {
    const QueryQuality q = MeasureQuality(data, queries[i], results[i], k);
    batch.mean_recall += q.recall;
    batch.mean_overall_ratio += q.overall_ratio;
    ++batch.queries;
  }
  if (batch.queries > 0) {
    batch.mean_recall /= batch.queries;
    batch.mean_overall_ratio /= batch.queries;
  } else {
    batch.mean_overall_ratio = 1.0;
  }
  return batch;
}

}  // namespace eeb::core
