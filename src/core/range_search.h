// eps-range search with histogram-cache assistance — the first of the
// paper's "advanced operations" (Sec. 7 future work). The cache bounds
// split candidates three ways without I/O:
//   ub <= eps  -> certainly inside (no fetch),
//   lb  > eps  -> certainly outside (no fetch),
//   otherwise  -> fetch and test exactly.
// Results are exact with respect to the candidate set; with FullScanIndex
// they are exact, period.

#ifndef EEB_CORE_RANGE_SEARCH_H_
#define EEB_CORE_RANGE_SEARCH_H_

#include <vector>

#include "cache/knn_cache.h"
#include "index/candidate_index.h"
#include "storage/point_file.h"

namespace eeb::core {

/// Outcome of one range query.
struct RangeResult {
  std::vector<PointId> ids;  ///< all candidates within eps, sorted
  storage::IoStats io;
  size_t candidates = 0;
  size_t cache_hits = 0;
  size_t sure_in = 0;    ///< included via ub <= eps (no fetch)
  size_t sure_out = 0;   ///< excluded via lb > eps (no fetch)
  size_t fetched = 0;    ///< resolved by reading the point
};

/// Runs one eps-range query.
///
/// @param k_hint  passed to the candidate index (LSH uses it to size its
///                search; FullScanIndex ignores it)
Status RangeQuery(index::CandidateIndex* index,
                  const storage::PointFile& points, cache::KnnCache* cache,
                  std::span<const Scalar> q, double eps, size_t k_hint,
                  RangeResult* out);

}  // namespace eeb::core

#endif  // EEB_CORE_RANGE_SEARCH_H_
