#include "core/maintenance.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/timer.h"

namespace eeb::core {

double DistributionDrift(const hist::FrequencyArray& a,
                         const hist::FrequencyArray& b) {
  const uint32_t n = std::min(a.ndom(), b.ndom());
  const double ta = a.Total();
  const double tb = b.Total();
  double acc = 0.0;
  for (uint32_t x = 0; x < n; ++x) {
    const double pa = ta > 0 ? a[x] / ta : 1.0 / n;
    const double pb = tb > 0 ? b[x] / tb : 1.0 / n;
    acc += std::fabs(pa - pb);
  }
  return 0.5 * acc;
}

double DistributionDrift(const std::vector<double>& a,
                         const std::vector<double>& b) {
  const size_t n = std::min(a.size(), b.size());
  if (n == 0) return 0.0;
  double ta = 0, tb = 0;
  for (size_t i = 0; i < n; ++i) {
    ta += a[i];
    tb += b[i];
  }
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double pa = ta > 0 ? a[i] / ta : 1.0 / n;
    const double pb = tb > 0 ? b[i] / tb : 1.0 / n;
    acc += std::fabs(pa - pb);
  }
  return 0.5 * acc;
}

Status CacheMaintainer::EndEpoch(
    const std::vector<std::vector<Scalar>>& epoch_queries) {
  ++epochs_;
  if (obs_.epochs != nullptr) obs_.epochs->Add(1);
  Timer timer;

  // Analyze the epoch on the side; the active cache keeps serving.
  WorkloadStats epoch_stats;
  EEB_RETURN_IF_ERROR(AnalyzeWorkload(&system_->lsh(), system_->data(),
                                      epoch_queries,
                                      system_->options().analysis_k,
                                      &epoch_stats));
  const hist::FrequencyArray epoch_fprime = hist::FrequencyArray::FromPoints(
      system_->data(), epoch_stats.qr_points, system_->options().ndom);

  const double value_drift =
      DistributionDrift(epoch_fprime, system_->fprime());
  const double hot_drift =
      DistributionDrift(epoch_stats.freq, system_->workload_stats().freq);
  last_drift_ = std::max(value_drift, hot_drift);
  // Read-only drift corroboration from the cache-introspection instrument:
  // a low inter-window Jaccard says the key working set itself churned,
  // complementing the value-distribution drift above. Observed, not acted
  // on.
  last_ws_jaccard_ =
      analytics_ != nullptr ? analytics_->working_set().jaccard : 0.0;
  if (obs_.last_drift != nullptr) {
    obs_.analyze_seconds->Record(timer.ElapsedSeconds());
    obs_.last_drift->Set(last_drift_);
    obs_.ws_jaccard->Set(last_ws_jaccard_);
  }

  // Blend the epoch into the EWMA history regardless of rebuild decisions,
  // so history reflects everything observed.
  if (options_.history_decay > 0.0) {
    const uint32_t ndom = system_->options().ndom;
    if (!has_history_) {
      acc_ = system_->workload_stats();
      acc_fprime_ =
          std::make_unique<hist::FrequencyArray>(system_->fprime());
      has_history_ = true;
    }
    const double decay = options_.history_decay;
    for (size_t i = 0; i < acc_.freq.size(); ++i) {
      acc_.freq[i] = decay * acc_.freq[i] + epoch_stats.freq[i];
    }
    hist::FrequencyArray blended(ndom);
    for (uint32_t x = 0; x < ndom; ++x) {
      blended.Add(x, decay * (*acc_fprime_)[x] + epoch_fprime[x]);
    }
    *acc_fprime_ = blended;
    // Non-frequency fields track the latest epoch.
    acc_.qr_points = epoch_stats.qr_points;
    acc_.dmax = std::max(acc_.dmax, epoch_stats.dmax);
    acc_.avg_candidates = epoch_stats.avg_candidates;
    acc_.avg_knn_dist = epoch_stats.avg_knn_dist;
    acc_.cand_dist_sample = epoch_stats.cand_dist_sample;
    // Recompute the HFF order from the blended frequencies.
    acc_.ids_by_freq.resize(acc_.freq.size());
    std::iota(acc_.ids_by_freq.begin(), acc_.ids_by_freq.end(), 0u);
    std::stable_sort(acc_.ids_by_freq.begin(), acc_.ids_by_freq.end(),
                     [&](PointId a, PointId b) {
                       if (acc_.freq[a] != acc_.freq[b]) {
                         return acc_.freq[a] > acc_.freq[b];
                       }
                       return a < b;
                     });
  }

  if (last_drift_ <= options_.rebuild_threshold) return Status::OK();

  timer.Start();
  if (options_.history_decay > 0.0 && has_history_) {
    EEB_RETURN_IF_ERROR(
        system_->SetWorkloadStats(acc_, *acc_fprime_));
  } else {
    EEB_RETURN_IF_ERROR(system_->RefreshWorkload(epoch_queries));
  }
  EEB_RETURN_IF_ERROR(system_->ReconfigureCache());
  ++rebuilds_;
  if (obs_.rebuilds != nullptr) {
    obs_.rebuilds->Add(1);
    obs_.rebuild_seconds->Record(timer.ElapsedSeconds());
  }
  return Status::OK();
}

void CacheMaintainer::BindMetrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    obs_ = Instruments{};
    return;
  }
  obs_.epochs = registry->GetCounter("maintenance.epochs");
  obs_.rebuilds = registry->GetCounter("maintenance.rebuilds");
  obs_.last_drift = registry->GetGauge("maintenance.last_drift");
  obs_.ws_jaccard = registry->GetGauge("maintenance.ws_jaccard");
  obs_.analyze_seconds = registry->GetHistogram("maintenance.analyze_seconds");
  obs_.rebuild_seconds = registry->GetHistogram("maintenance.rebuild_seconds");
}

}  // namespace eeb::core
