// Offline workload analysis (paper Sec. 2.2, 3.4, 4): given the historical
// query log WL and the index, compute
//   * per-point access frequencies freq(p) = |{q in WL : p in C(q)}| — the
//     HFF fill order,
//   * the QR multiset of near-result candidates b^q_r (Eqn. 2), whose
//     coordinates define the F' frequency array (Eqn. 3) that drives the
//     kNN-optimal histogram,
//   * Dmax, the largest candidate distance (Thm. 2/3),
//   * the average candidate-set size (cost model input).
//
// This runs offline against the in-memory staging dataset — the paper's
// setup equally assumes the histogram/cache are built in a maintenance
// window (Sec. 3.5, "histogram maintenance").

#ifndef EEB_CORE_WORKLOAD_H_
#define EEB_CORE_WORKLOAD_H_

#include <vector>

#include "common/dataset.h"
#include "common/status.h"
#include "index/candidate_index.h"
#include "index/tree_common.h"

namespace eeb::core {

/// Aggregated workload statistics.
struct WorkloadStats {
  /// freq[id]: number of workload queries whose candidate set contains id.
  std::vector<double> freq;

  /// Point ids sorted by descending freq (ties by id) — the HFF fill order.
  std::vector<PointId> ids_by_freq;

  /// QR multiset (Eqn. 2): for each workload query, its k nearest
  /// candidates. Ids may repeat across queries (multiset semantics).
  std::vector<PointId> qr_points;

  double dmax = 0.0;            ///< max candidate distance seen in WL
  double avg_candidates = 0.0;  ///< mean |C(q)| over WL
  double avg_knn_dist = 0.0;    ///< mean k-th candidate distance

  /// Sorted reservoir sample of candidate distances (the empirical g_q(x)
  /// of Thm. 2; the uniform-density assumption is replaced by this in the
  /// generic tau tuner — see DESIGN.md).
  std::vector<double> cand_dist_sample;
};

/// Runs every workload query through `index` and aggregates statistics.
/// `k` should match the online result size (it shapes QR).
Status AnalyzeWorkload(index::CandidateIndex* index, const Dataset& data,
                       const std::vector<std::vector<Scalar>>& workload,
                       size_t k, WorkloadStats* out);

/// Leaf access frequencies for tree-based indexes (Sec. 3.6.1): runs the
/// workload with `search` (a cache-less search callback filling a
/// TreeSearchResult) and counts how often each leaf is fetched. Returns leaf
/// ids in descending frequency — the node-cache fill order.
struct LeafWorkloadStats {
  std::vector<double> leaf_freq;
  std::vector<uint32_t> leaves_by_freq;
  /// QR multiset from result neighborhoods (k nearest per query).
  std::vector<PointId> qr_points;
};

using TreeSearchFn = std::function<Status(std::span<const Scalar> q, size_t k,
                                          index::TreeSearchResult* out)>;

Status AnalyzeTreeWorkload(const TreeSearchFn& search, size_t num_leaves,
                           const std::vector<std::vector<Scalar>>& workload,
                           size_t k, LeafWorkloadStats* out);

}  // namespace eeb::core

#endif  // EEB_CORE_WORKLOAD_H_
