// kNN join with cache assistance — the second "advanced operation" of the
// paper's Sec. 7: for every point of an outer set R, find its k nearest
// neighbors in the indexed inner set S. The join runs each outer point
// through the Algorithm-1 engine; with an LRU cache the join warms its own
// working set, and with HFF the workload-driven content serves the hot
// region of S.

#ifndef EEB_CORE_KNN_JOIN_H_
#define EEB_CORE_KNN_JOIN_H_

#include <vector>

#include "common/dataset.h"
#include "core/knn_engine.h"

namespace eeb::core {

struct KnnJoinOptions {
  size_t k = 10;
};

/// Outcome of a kNN join.
struct KnnJoinResult {
  /// neighbors[i]: the k nearest inner ids of outer point i, sorted by id.
  std::vector<std::vector<PointId>> neighbors;
  storage::IoStats io;        ///< total refinement I/O across the join
  uint64_t candidates = 0;    ///< total candidates generated
  uint64_t fetched = 0;       ///< total points fetched from disk
  uint64_t cache_hits = 0;
};

/// Joins every point of `outer` against the engine's indexed set.
Status KnnJoin(KnnEngine& engine, const Dataset& outer,
               const KnnJoinOptions& options, KnnJoinResult* out);

}  // namespace eeb::core

#endif  // EEB_CORE_KNN_JOIN_H_
