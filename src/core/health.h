// HealthMonitor: the serving-side brownout state machine
// (docs/ROBUSTNESS.md). It watches the live window — p95 latency, queue
// occupancy, degraded rate — and classifies the process into one of three
// states:
//
//   HEALTHY     serve normally
//   BROWNED_OUT pressure is building: tighten per-query deadlines so each
//               admitted query does less work (graceful degradation)
//   SHEDDING    saturated: drop new arrivals at admission (kBrownout cause)
//               so already-admitted queries keep meeting their deadlines
//
// Escalation is immediate — one bad evaluation is enough, because under
// overload every second of delay grows the queue — while de-escalation
// requires `recover_evals` consecutive calmer evaluations and steps down one
// level at a time, so the state does not flap across the threshold.
//
// Evaluate() is driven from one place (the StatsPublisher pre-sample hook
// via System::SampleWorkerGauges); state()/EffectiveDeadlineMs() are lock-
// free reads safe from any serving thread.

#ifndef EEB_CORE_HEALTH_H_
#define EEB_CORE_HEALTH_H_

#include <atomic>
#include <cstdint>

#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/window.h"

namespace eeb::core {

/// Serving health, ordered by pressure. Numeric values are stable — they
/// are exported as the "health.state" gauge.
enum class HealthState : uint8_t {
  kHealthy = 0,
  kBrownedOut = 1,
  kShedding = 2,
};

const char* HealthStateName(HealthState state);

/// Thresholds for the brownout state machine. A threshold set to 0 disables
/// that signal.
struct HealthPolicy {
  /// Windowed p95 latency above which the process is browned out / starts
  /// shedding, in seconds. 0 disables the latency signal.
  double p95_brownout_seconds = 0.0;
  double p95_shed_seconds = 0.0;
  /// Queue occupancy (depth / capacity) above which the process is browned
  /// out / starts shedding. 0 disables the occupancy signal.
  double queue_brownout_fraction = 0.75;
  double queue_shed_fraction = 0.95;
  /// Windowed degraded rate above which the process is browned out (a sick
  /// disk is load the deadline tightening relieves). 0 disables.
  double degraded_brownout_rate = 0.0;
  /// Deadline multiplier applied while browned out or shedding: admitted
  /// queries run with base_deadline * factor. Clamped to (0, 1].
  double brownout_deadline_factor = 0.5;
  /// Consecutive calmer evaluations required before stepping down one state.
  int recover_evals = 3;
};

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthPolicy policy = {});

  /// Folds one window snapshot into the state machine and returns the new
  /// state. Called from the single stats-publisher thread.
  HealthState Evaluate(const obs::WindowSnapshot& snap);

  /// Current state; lock-free, safe from any thread.
  HealthState state() const {
    return state_.load(std::memory_order_relaxed);
  }

  /// Deadline an admitted query should run with right now: the base when
  /// healthy, base * brownout_deadline_factor otherwise. Non-positive bases
  /// (deadline disabled / engine default) pass through unchanged.
  double EffectiveDeadlineMs(double base_deadline_ms) const;

  /// Whether admission should shed new arrivals right now.
  bool ShouldShed() const { return state() == HealthState::kShedding; }

  /// Binds the "health.state" gauge and "health.transitions" counter in
  /// `registry`; nullptr detaches.
  void BindMetrics(obs::MetricsRegistry* registry);

  const HealthPolicy& policy() const { return policy_; }

  /// Healthy→browned/shedding escalations plus step-downs, since
  /// construction.
  uint64_t transitions() const {
    return transitions_.load(std::memory_order_relaxed);
  }

 private:
  /// Raw pressure classification of one snapshot, before hysteresis.
  HealthState Classify(const obs::WindowSnapshot& snap) const;

  const HealthPolicy policy_;
  std::atomic<HealthState> state_{HealthState::kHealthy};
  std::atomic<uint64_t> transitions_{0};
  // Consecutive evaluations classified strictly below the current state;
  // touched only by the single Evaluate() caller.
  int calm_evals_ EEB_UNGUARDED("single evaluator thread by contract") = 0;
  std::atomic<obs::Gauge*> obs_state_{nullptr};
  std::atomic<obs::Counter*> obs_transitions_{nullptr};
};

}  // namespace eeb::core

#endif  // EEB_CORE_HEALTH_H_
