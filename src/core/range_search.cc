#include "core/range_search.h"

#include <algorithm>
#include <limits>

#include "common/distance.h"

namespace eeb::core {

Status RangeQuery(index::CandidateIndex* index,
                  const storage::PointFile& points, cache::KnnCache* cache,
                  std::span<const Scalar> q, double eps, size_t k_hint,
                  RangeResult* out) {
  *out = RangeResult{};
  std::vector<PointId> cand;
  EEB_RETURN_IF_ERROR(index->Candidates(q, k_hint, &cand, &out->io));
  out->candidates = cand.size();

  storage::PageTracker tracker;
  std::vector<Scalar> buf(points.dim());
  for (PointId id : cand) {
    double lb = 0.0;
    double ub = std::numeric_limits<double>::infinity();
    if (cache != nullptr && cache->Probe(q, id, &lb, &ub)) {
      out->cache_hits++;
      if (ub <= eps) {
        out->ids.push_back(id);  // certainly inside
        out->sure_in++;
        continue;
      }
      if (lb > eps) {
        out->sure_out++;  // certainly outside
        continue;
      }
    }
    EEB_RETURN_IF_ERROR(points.ReadPoint(id, buf, &out->io, &tracker));
    out->fetched++;
    if (L2(q, buf) <= eps) out->ids.push_back(id);
    if (cache != nullptr) cache->Admit(id, buf);
  }
  std::sort(out->ids.begin(), out->ids.end());
  return Status::OK();
}

}  // namespace eeb::core
