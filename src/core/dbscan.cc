#include "core/dbscan.h"

#include <deque>

namespace eeb::core {
namespace {

constexpr int32_t kUnvisited = -2;

}  // namespace

Status Dbscan(index::CandidateIndex* index, const storage::PointFile& points,
              cache::KnnCache* cache, const Dataset& data,
              const DbscanOptions& options, DbscanResult* out) {
  const size_t n = data.size();
  *out = DbscanResult{};
  out->labels.assign(n, kUnvisited);

  auto neighborhood = [&](PointId id, std::vector<PointId>* nbrs) -> Status {
    RangeResult r;
    EEB_RETURN_IF_ERROR(RangeQuery(index, points, cache,
                                   data.point(id), options.eps,
                                   options.k_hint, &r));
    out->range_queries++;
    out->io += r.io;
    out->fetched += r.fetched;
    out->bound_decided += r.sure_in + r.sure_out;
    *nbrs = std::move(r.ids);
    return Status::OK();
  };

  std::vector<PointId> nbrs;
  std::deque<PointId> frontier;
  for (size_t i = 0; i < n; ++i) {
    const PointId seed = static_cast<PointId>(i);
    if (out->labels[seed] != kUnvisited) continue;
    EEB_RETURN_IF_ERROR(neighborhood(seed, &nbrs));
    if (nbrs.size() < options.min_pts) {
      out->labels[seed] = kDbscanNoise;
      continue;
    }
    // Grow a new cluster by BFS over density-reachable points.
    const int32_t cluster = out->num_clusters++;
    out->labels[seed] = cluster;
    frontier.assign(nbrs.begin(), nbrs.end());
    while (!frontier.empty()) {
      const PointId p = frontier.front();
      frontier.pop_front();
      if (out->labels[p] == kDbscanNoise) {
        out->labels[p] = cluster;  // border point adopted by the cluster
        continue;
      }
      if (out->labels[p] != kUnvisited) continue;
      out->labels[p] = cluster;
      EEB_RETURN_IF_ERROR(neighborhood(p, &nbrs));
      if (nbrs.size() >= options.min_pts) {
        for (PointId q : nbrs) {
          if (out->labels[q] == kUnvisited || out->labels[q] == kDbscanNoise) {
            frontier.push_back(q);
          }
        }
      }
    }
  }
  // Any kUnvisited left would be a logic error; normalize defensively.
  for (auto& label : out->labels) {
    if (label == kUnvisited) label = kDbscanNoise;
  }
  return Status::OK();
}

}  // namespace eeb::core
