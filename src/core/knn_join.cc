#include "core/knn_join.h"

namespace eeb::core {

Status KnnJoin(KnnEngine& engine, const Dataset& outer,
               const KnnJoinOptions& options, KnnJoinResult* out) {
  *out = KnnJoinResult{};
  out->neighbors.reserve(outer.size());
  QueryResult r;
  for (size_t i = 0; i < outer.size(); ++i) {
    EEB_RETURN_IF_ERROR(
        engine.Query(outer.point(static_cast<PointId>(i)), options.k, &r));
    out->neighbors.push_back(std::move(r.result_ids));
    out->io += r.refine_io;
    out->candidates += r.candidates;
    out->fetched += r.fetched;
    out->cache_hits += r.cache_hits;
  }
  return Status::OK();
}

}  // namespace eeb::core
