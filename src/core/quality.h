// Result-quality measurement. The paper's central non-performance claim is
// that caching "offers speedup without affecting the quality of query
// results" (Sec. 2.2): exact indexes stay exact and an LSH method returns
// the same c-approximate answers. These helpers make the claim measurable:
// recall@k against a ground truth and the overall (approximation) ratio of
// result distances [Tao et al., SIGMOD'09].

#ifndef EEB_CORE_QUALITY_H_
#define EEB_CORE_QUALITY_H_

#include <span>
#include <vector>

#include "common/dataset.h"
#include "common/types.h"

namespace eeb::core {

/// Quality of one result id set against the exact kNN of the query.
struct QueryQuality {
  double recall = 0.0;         ///< |result ∩ truth| / k
  double overall_ratio = 1.0;  ///< mean_i dist(result_i)/dist(truth_i), >= 1
};

/// Compares `result_ids` (sorted or not) with the exact kNN of `q` in
/// `data`. `k` is inferred from the truth computation; `result_ids` may be
/// shorter (missing entries count as infinitely bad for recall and are
/// skipped in the ratio).
QueryQuality MeasureQuality(const Dataset& data, std::span<const Scalar> q,
                            std::span<const PointId> result_ids, size_t k);

/// Averages quality over a batch of (query, result) pairs.
struct BatchQuality {
  double mean_recall = 0.0;
  double mean_overall_ratio = 1.0;
  size_t queries = 0;
};

BatchQuality MeasureBatchQuality(
    const Dataset& data, const std::vector<std::vector<Scalar>>& queries,
    const std::vector<std::vector<PointId>>& results, size_t k);

}  // namespace eeb::core

#endif  // EEB_CORE_QUALITY_H_
