// Bounded MPMC task queue: the hand-off between query producers and the
// worker pool (docs/CONCURRENCY.md). Bounded so an open-loop producer that
// outruns the workers blocks instead of growing an unbounded backlog — the
// classic admission-control backpressure of a query server.
//
// Semantics:
//   Push  blocks while the queue is full; returns false iff closed.
//   Pop   blocks while the queue is empty; returns false iff closed AND
//         drained (tasks enqueued before Shutdown are always delivered).
//   Shutdown wakes every waiter; further Push calls are rejected.

#ifndef EEB_CORE_TASK_QUEUE_H_
#define EEB_CORE_TASK_QUEUE_H_

#include <deque>
#include <functional>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace eeb::core {

/// Fixed-capacity multi-producer/multi-consumer queue of tasks.
///
/// Waits use the explicit Lock / while-Wait / Unlock shape (not the
/// lambda-predicate condition_variable overloads) so Clang's thread-safety
/// analysis can see every guarded access — a lambda predicate would be
/// analyzed as a separate, unannotated function.
class BoundedTaskQueue {
 public:
  using Task = std::function<void()>;

  explicit BoundedTaskQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedTaskQueue(const BoundedTaskQueue&) = delete;
  BoundedTaskQueue& operator=(const BoundedTaskQueue&) = delete;

  /// Enqueues `task`, blocking while the queue is at capacity. Returns false
  /// (task dropped) iff the queue was closed.
  bool Push(Task task) EEB_EXCLUDES(mu_) {
    mu_.Lock();
    while (!closed_ && tasks_.size() >= capacity_) not_full_.Wait(mu_);
    if (closed_) {
      mu_.Unlock();
      return false;
    }
    tasks_.push_back(std::move(task));
    if (tasks_.size() > max_depth_) max_depth_ = tasks_.size();
    mu_.Unlock();  // unlock before notify: the woken consumer runs sooner
    not_empty_.NotifyOne();
    return true;
  }

  /// Dequeues into `*task`, blocking while the queue is empty. Returns false
  /// iff the queue is closed and fully drained.
  bool Pop(Task* task) EEB_EXCLUDES(mu_) {
    mu_.Lock();
    while (!closed_ && tasks_.empty()) not_empty_.Wait(mu_);
    if (tasks_.empty()) {  // closed and drained
      mu_.Unlock();
      return false;
    }
    *task = std::move(tasks_.front());
    tasks_.pop_front();
    mu_.Unlock();
    not_full_.NotifyOne();
    return true;
  }

  /// Closes the queue: pending tasks still drain, new pushes are rejected,
  /// and blocked waiters wake up.
  void Shutdown() EEB_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

  size_t capacity() const { return capacity_; }

  size_t size() const EEB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return tasks_.size();
  }

  /// High-water mark of the backlog since construction — a cheap saturation
  /// signal for the live-telemetry gauges (a max_depth near capacity means
  /// producers were spending time blocked in Push).
  size_t max_depth() const EEB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return max_depth_;
  }

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  CondVar not_full_;   // signaled after Pop frees a slot
  CondVar not_empty_;  // signaled after Push adds a task
  std::deque<Task> tasks_ EEB_GUARDED_BY(mu_);
  size_t max_depth_ EEB_GUARDED_BY(mu_) = 0;
  bool closed_ EEB_GUARDED_BY(mu_) = false;
};

}  // namespace eeb::core

#endif  // EEB_CORE_TASK_QUEUE_H_
