// Bounded MPMC task queue: the hand-off between query producers and the
// worker pool (docs/CONCURRENCY.md). Bounded so an open-loop producer that
// outruns the workers blocks instead of growing an unbounded backlog — the
// classic admission-control backpressure of a query server. Producers that
// must not block (load-shedding admission, docs/ROBUSTNESS.md) use TryPush
// or PushWithDeadline and turn a rejection into a first-class shed result.
//
// Semantics:
//   Push             blocks while the queue is full; returns false iff closed.
//   TryPush          never blocks; kFull when at capacity, kClosed after
//                    Shutdown.
//   PushWithDeadline blocks at most `timeout_ms`; kTimedOut when the queue
//                    stayed full for the whole wait.
//   Pop              blocks while the queue is empty; returns false iff
//                    closed AND drained (tasks enqueued before Shutdown are
//                    always delivered).
//   Shutdown         wakes every waiter; further pushes are rejected.
//
// Every rejected push (full, timed out, or closed) counts in
// Stats().rejected, so admission accounting reconciles exactly:
// pushed == popped after a drain, and attempts == pushed + rejected.

#ifndef EEB_CORE_TASK_QUEUE_H_
#define EEB_CORE_TASK_QUEUE_H_

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace eeb::core {

/// Outcome of a non-blocking / bounded-wait push.
enum class PushOutcome : uint8_t {
  kAccepted = 0,  ///< task enqueued
  kFull = 1,      ///< rejected: queue at capacity (TryPush only)
  kTimedOut = 2,  ///< rejected: still full when the wait budget ran out
  kClosed = 3,    ///< rejected: queue shut down
};

/// Snapshot of queue accounting. Totals survive Shutdown — the high-water
/// mark and rejection counts are exactly what the post-mortem of a saturated
/// serving window needs (ISSUE: max_depth was previously unreachable once
/// the owning pool wound down).
struct QueueStats {
  size_t depth = 0;       ///< instantaneous backlog
  size_t capacity = 0;    ///< fixed bound
  size_t max_depth = 0;   ///< high-water mark since construction
  uint64_t pushed = 0;    ///< tasks accepted
  uint64_t popped = 0;    ///< tasks delivered to consumers
  uint64_t rejected = 0;  ///< pushes refused (full / timed out / closed)
  bool closed = false;
};

/// Fixed-capacity multi-producer/multi-consumer queue of tasks.
///
/// Waits use the explicit Lock / while-Wait / Unlock shape (not the
/// lambda-predicate condition_variable overloads) so Clang's thread-safety
/// analysis can see every guarded access — a lambda predicate would be
/// analyzed as a separate, unannotated function.
class BoundedTaskQueue {
 public:
  using Task = std::function<void()>;

  explicit BoundedTaskQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedTaskQueue(const BoundedTaskQueue&) = delete;
  BoundedTaskQueue& operator=(const BoundedTaskQueue&) = delete;

  /// Enqueues `task`, blocking while the queue is at capacity. Returns false
  /// (task dropped) iff the queue was closed.
  bool Push(Task task) EEB_EXCLUDES(mu_) {
    mu_.Lock();
    while (!closed_ && tasks_.size() >= capacity_) not_full_.Wait(mu_);
    if (closed_) {
      ++rejected_;
      mu_.Unlock();
      return false;
    }
    EnqueueLocked(std::move(task));
    mu_.Unlock();  // unlock before notify: the woken consumer runs sooner
    not_empty_.NotifyOne();
    return true;
  }

  /// Non-blocking admission: enqueues iff a slot is free right now. The
  /// result is [[nodiscard]] — dropping it silently drops the task, which
  /// is exactly the bug load-shedding exists to make explicit
  /// (eeb_lint: dropped-admission).
  [[nodiscard]] PushOutcome TryPush(Task task) EEB_EXCLUDES(mu_) {
    mu_.Lock();
    if (closed_) {
      ++rejected_;
      mu_.Unlock();
      return PushOutcome::kClosed;
    }
    if (tasks_.size() >= capacity_) {
      ++rejected_;
      mu_.Unlock();
      return PushOutcome::kFull;
    }
    EnqueueLocked(std::move(task));
    mu_.Unlock();
    not_empty_.NotifyOne();
    return PushOutcome::kAccepted;
  }

  /// Bounded-wait admission: blocks up to `timeout_ms` for a slot. A zero or
  /// negative timeout degenerates to TryPush semantics (with kTimedOut in
  /// place of kFull, naming the policy that rejected it).
  [[nodiscard]] PushOutcome PushWithDeadline(Task task, double timeout_ms)
      EEB_EXCLUDES(mu_) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(
                timeout_ms > 0.0 ? timeout_ms : 0.0));
    mu_.Lock();
    while (!closed_ && tasks_.size() >= capacity_) {
      if (not_full_.WaitUntil(mu_, deadline) == std::cv_status::timeout &&
          !closed_ && tasks_.size() >= capacity_) {
        ++rejected_;
        mu_.Unlock();
        return PushOutcome::kTimedOut;
      }
    }
    if (closed_) {
      ++rejected_;
      mu_.Unlock();
      return PushOutcome::kClosed;
    }
    EnqueueLocked(std::move(task));
    mu_.Unlock();
    not_empty_.NotifyOne();
    return PushOutcome::kAccepted;
  }

  /// Dequeues into `*task`, blocking while the queue is empty. Returns false
  /// iff the queue is closed and fully drained.
  bool Pop(Task* task) EEB_EXCLUDES(mu_) {
    mu_.Lock();
    while (!closed_ && tasks_.empty()) not_empty_.Wait(mu_);
    if (tasks_.empty()) {  // closed and drained
      mu_.Unlock();
      return false;
    }
    *task = std::move(tasks_.front());
    tasks_.pop_front();
    ++popped_;
    mu_.Unlock();
    not_full_.NotifyOne();
    return true;
  }

  /// Closes the queue: pending tasks still drain, new pushes are rejected,
  /// and blocked waiters wake up.
  void Shutdown() EEB_EXCLUDES(mu_) {
    {
      MutexLock lock(mu_);
      closed_ = true;
    }
    not_full_.NotifyAll();
    not_empty_.NotifyAll();
  }

  size_t capacity() const { return capacity_; }

  size_t size() const EEB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return tasks_.size();
  }

  /// High-water mark of the backlog since construction — a cheap saturation
  /// signal for the live-telemetry gauges (a max_depth near capacity means
  /// producers were spending time blocked in Push).
  size_t max_depth() const EEB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return max_depth_;
  }

  /// Consistent snapshot of the accounting; valid before, during and after
  /// Shutdown (totals are never reset).
  QueueStats Stats() const EEB_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    QueueStats s;
    s.depth = tasks_.size();
    s.capacity = capacity_;
    s.max_depth = max_depth_;
    s.pushed = pushed_;
    s.popped = popped_;
    s.rejected = rejected_;
    s.closed = closed_;
    return s;
  }

 private:
  void EnqueueLocked(Task task) EEB_REQUIRES(mu_) {
    tasks_.push_back(std::move(task));
    ++pushed_;
    if (tasks_.size() > max_depth_) max_depth_ = tasks_.size();
  }

  const size_t capacity_;
  mutable Mutex mu_;
  CondVar not_full_;   // signaled after Pop frees a slot
  CondVar not_empty_;  // signaled after Push adds a task
  std::deque<Task> tasks_ EEB_GUARDED_BY(mu_);
  size_t max_depth_ EEB_GUARDED_BY(mu_) = 0;
  uint64_t pushed_ EEB_GUARDED_BY(mu_) = 0;
  uint64_t popped_ EEB_GUARDED_BY(mu_) = 0;
  uint64_t rejected_ EEB_GUARDED_BY(mu_) = 0;
  bool closed_ EEB_GUARDED_BY(mu_) = false;
};

}  // namespace eeb::core

#endif  // EEB_CORE_TASK_QUEUE_H_
