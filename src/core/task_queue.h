// Bounded MPMC task queue: the hand-off between query producers and the
// worker pool (docs/CONCURRENCY.md). Bounded so an open-loop producer that
// outruns the workers blocks instead of growing an unbounded backlog — the
// classic admission-control backpressure of a query server.
//
// Semantics:
//   Push  blocks while the queue is full; returns false iff closed.
//   Pop   blocks while the queue is empty; returns false iff closed AND
//         drained (tasks enqueued before Shutdown are always delivered).
//   Shutdown wakes every waiter; further Push calls are rejected.

#ifndef EEB_CORE_TASK_QUEUE_H_
#define EEB_CORE_TASK_QUEUE_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <utility>

namespace eeb::core {

/// Fixed-capacity multi-producer/multi-consumer queue of tasks.
class BoundedTaskQueue {
 public:
  using Task = std::function<void()>;

  explicit BoundedTaskQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedTaskQueue(const BoundedTaskQueue&) = delete;
  BoundedTaskQueue& operator=(const BoundedTaskQueue&) = delete;

  /// Enqueues `task`, blocking while the queue is at capacity. Returns false
  /// (task dropped) iff the queue was closed.
  bool Push(Task task) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || tasks_.size() < capacity_; });
    if (closed_) return false;
    tasks_.push_back(std::move(task));
    if (tasks_.size() > max_depth_) max_depth_ = tasks_.size();
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Dequeues into `*task`, blocking while the queue is empty. Returns false
  /// iff the queue is closed and fully drained.
  bool Pop(Task* task) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !tasks_.empty(); });
    if (tasks_.empty()) return false;  // closed and drained
    *task = std::move(tasks_.front());
    tasks_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  /// Closes the queue: pending tasks still drain, new pushes are rejected,
  /// and blocked waiters wake up.
  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t capacity() const { return capacity_; }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tasks_.size();
  }

  /// High-water mark of the backlog since construction — a cheap saturation
  /// signal for the live-telemetry gauges (a max_depth near capacity means
  /// producers were spending time blocked in Push).
  size_t max_depth() const {
    std::lock_guard<std::mutex> lock(mu_);
    return max_depth_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Task> tasks_;
  size_t max_depth_ = 0;
  bool closed_ = false;
};

}  // namespace eeb::core

#endif  // EEB_CORE_TASK_QUEUE_H_
