#include "core/system.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "common/bitops.h"
#include "common/timer.h"
#include "core/thread_pool.h"
#include "index/rtree/rtree_histogram.h"
#include "storage/file_ordering.h"

namespace eeb::core {

const char* CacheMethodName(CacheMethod method) {
  switch (method) {
    case CacheMethod::kNone:
      return "NO-CACHE";
    case CacheMethod::kExact:
      return "EXACT";
    case CacheMethod::kHcW:
      return "HC-W";
    case CacheMethod::kHcV:
      return "HC-V";
    case CacheMethod::kHcM:
      return "HC-M";
    case CacheMethod::kHcD:
      return "HC-D";
    case CacheMethod::kHcO:
      return "HC-O";
    case CacheMethod::kIHcW:
      return "iHC-W";
    case CacheMethod::kIHcD:
      return "iHC-D";
    case CacheMethod::kIHcO:
      return "iHC-O";
    case CacheMethod::kMHcR:
      return "mHC-R";
    case CacheMethod::kCVa:
      return "C-VA";
  }
  return "?";
}

const char* AdmissionPolicyName(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kBlock:
      return "block";
    case AdmissionPolicy::kShed:
      return "shed";
    case AdmissionPolicy::kTimeout:
      return "timeout";
  }
  return "?";
}

uint32_t System::lvalue() const { return CeilLog2(options_.ndom); }

Status System::Create(storage::Env* env, const std::string& dir,
                      const Dataset& data,
                      const std::vector<std::vector<Scalar>>& workload,
                      const SystemOptions& options,
                      std::unique_ptr<System>* out) {
  std::unique_ptr<System> sys(new System());
  sys->env_ = env;
  sys->options_ = options;
  sys->data_ = &data;

  // Physical ordering of the point file (Fig. 9 configurations).
  std::vector<PointId> order;
  switch (options.ordering) {
    case FileOrdering::kRaw:
      order = storage::RawOrder(data.size());
      break;
    case FileOrdering::kClustered:
      order = storage::ClusteredOrder(data, /*num_clusters=*/64, options.seed);
      break;
    case FileOrdering::kSortedKey:
      order = storage::SortedKeyOrder(data, /*num_keys=*/4, /*w=*/64.0,
                                      options.seed);
      break;
  }
  const std::string path = dir + "/points.eeb";
  // All point-file I/O goes through the retry wrapper; with max_retries == 0
  // it is a pass-through. Writes are never retried (see retry_env.h), so the
  // wrapper is safe for Create too.
  sys->retry_env_ =
      std::make_unique<storage::RetryingEnv>(env, options.io_retry);
  // Breaker outside retry: when open, reads fail before the retry ladder,
  // so a dead disk costs one short-circuit per candidate instead of the
  // whole backoff schedule.
  storage::Env* io_env = sys->retry_env_.get();
  if (options.io_breaker.enabled) {
    sys->breaker_env_ = std::make_unique<storage::CircuitBreakerEnv>(
        io_env, options.io_breaker);
    io_env = sys->breaker_env_.get();
  }
  EEB_RETURN_IF_ERROR(storage::PointFile::Create(io_env, path, data, order,
                                                 options.page_size));
  EEB_RETURN_IF_ERROR(storage::PointFile::Open(io_env, path, &sys->points_));

  EEB_RETURN_IF_ERROR(index::C2Lsh::Build(data, options.lsh, &sys->lsh_));

  EEB_RETURN_IF_ERROR(AnalyzeWorkload(sys->lsh_.get(), data, workload,
                                      options.analysis_k, &sys->wl_));
  sys->fprime_ = std::make_unique<hist::FrequencyArray>(
      hist::FrequencyArray::FromPoints(data, sys->wl_.qr_points,
                                       options.ndom));
  sys->fdata_ = std::make_unique<hist::FrequencyArray>(
      hist::FrequencyArray::FromDataset(data, options.ndom));

  sys->engine_ = std::make_unique<KnnEngine>(
      sys->lsh_.get(), sys->points_.get(), nullptr, options.engine);
  *out = std::move(sys);
  return Status::OK();
}

void System::EnableMetrics(obs::MetricsRegistry* registry) {
  metrics_ = registry;
  engine_->BindMetrics(registry);
  lsh_->BindMetrics(registry);
  points_->BindMetrics(registry);
  retry_env_->BindMetrics(registry);
  if (breaker_env_ != nullptr) breaker_env_->BindMetrics(registry);
  if (health_ != nullptr) health_->BindMetrics(registry);
  if (auto gen = generation(); gen != nullptr) {
    gen->cache->BindMetrics(registry);
  }
  if (registry == nullptr) {
    obs_queries_ = nullptr;
    obs_response_ = nullptr;
    obs_modeled_io_ = nullptr;
    return;
  }
  obs_queries_ = registry->GetCounter("system.queries");
  obs_response_ = registry->GetHistogram("system.response_seconds");
  obs_modeled_io_ = registry->GetGauge("system.modeled_io_seconds");
}

void System::SetTracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  engine_->set_tracer(tracer);
}

void System::SetProfiler(obs::Profiler* profiler) {
  profiler_ = profiler;
  engine_->set_profiler(profiler);
  points_->BindProfiler(profiler);
}

void System::SetWindow(obs::WindowedMetrics* window) {
  window_ = window;
  InstallCacheTap();
  InstallShadowTap();
}

void System::SetRecorder(obs::FlightRecorder* recorder) {
  recorder_ = recorder;
}

void System::SetHealthMonitor(HealthMonitor* health) {
  health_ = health;
  if (health_ != nullptr && metrics_ != nullptr) {
    health_->BindMetrics(metrics_);
  }
}

void System::SetCacheAnalytics(obs::CacheAnalytics* analytics) {
  analytics_ = analytics;
  engine_->set_analytics(analytics);
  if (analytics != nullptr) {
    // Anchor the MRC reference point at the live cache's item capacity so
    // cache.mrc.predicted_miss_ratio predicts the configuration in use.
    if (auto gen = generation(); gen != nullptr && gen->cache != nullptr) {
      analytics->set_reference_size(gen->cache->capacity_items());
    }
  }
}

void System::SetShadowCaches(cache::ShadowCacheSet* shadows) {
  shadow_ = shadows;
  engine_->set_shadow(shadows);
  InstallShadowTap();
}

void System::InstallCacheTap() {
  if (window_ == nullptr) return;
  window_->SetCacheTap([this]() -> obs::CacheTapSample {
    auto gen = generation();
    if (gen == nullptr || gen->cache == nullptr) return {};
    const cache::KnnCache::CacheActivity a = gen->cache->activity();
    return obs::CacheTapSample{a.hits, a.misses, a.admits, a.evictions};
  });
}

void System::InstallShadowTap() {
  if (window_ == nullptr) return;
  if (shadow_ == nullptr) {
    window_->SetShadowTap(nullptr);
    return;
  }
  cache::ShadowCacheSet* shadows = shadow_;
  window_->SetShadowTap([shadows] { return shadows->TapSamples(); });
}

void System::SampleWorkerGauges() {
  if (window_ == nullptr) return;
  {
    MutexLock lock(pool_mu_);
    if (active_pool_ != nullptr) {
      window_->SampleQueue(active_pool_->queue_depth(),
                           active_pool_->busy_workers(),
                           active_pool_->num_threads());
      const QueueStats qs = active_pool_->queue_stats();
      window_->SampleQueueStats(qs.capacity, qs.max_depth, qs.rejected);
    } else {
      window_->SampleQueue(0, 0, 0);
      window_->SampleQueueStats(0, 0, 0);
    }
  }
  // Feed the brownout state machine outside pool_mu_: GetSnapshot takes the
  // window lock and needs nothing from the pool.
  if (health_ != nullptr) health_->Evaluate(window_->GetSnapshot());
}

void System::StampBreakerState(QueryResult* r) {
  if (breaker_env_ == nullptr) return;
  r->explain.breaker_state = static_cast<uint8_t>(breaker_env_->state());
}

void System::MarkShed(QueryResult* r, obs::ShedCause cause,
                      double queue_wait_ms, uint64_t query_index) {
  r->shed = true;
  r->shed_cause = cause;
  r->queue_wait_ms = queue_wait_ms;
  r->explain.shed_cause = cause;
  r->explain.queue_wait_ms = queue_wait_ms;
  StampBreakerState(r);
  RecordQueryTelemetry(*r, query_index);
}

void System::RecordQueryTelemetry(const QueryResult& r,
                                  uint64_t query_index) {
  if (window_ == nullptr && recorder_ == nullptr) return;
  if (r.shed) {
    // Nothing executed: record only the shed marker (window) and the
    // explain record carrying the cause (recorder tail-retains it).
    if (window_ != nullptr) {
      obs::QuerySample sample;
      sample.shed = true;
      window_->RecordQuery(sample);
    }
    if (recorder_ != nullptr) {
      obs::QueryRecord record;
      record.query_index = query_index;
      record.explain = r.explain;
      recorder_->Record(record);
    }
    return;
  }
  storage::IoStats io = r.gen_io;
  io += r.refine_io;
  // Same modeled response time AggregateResults reports, so windowed
  // percentiles and batch percentiles measure the same quantity.
  const double response = r.gen_seconds + r.reduce_seconds +
                          r.refine_seconds + disk_model_.Seconds(io);
  if (window_ != nullptr) {
    obs::QuerySample sample;
    sample.response_seconds = response;
    sample.candidates = r.candidates;
    sample.cache_hits = r.cache_hits;
    sample.read_failures = r.read_failures;
    sample.degraded = r.degraded;
    sample.deadline_hit = r.deadline_hit;
    window_->RecordQuery(sample);
  }
  if (recorder_ != nullptr) {
    obs::QueryRecord record;
    record.query_index = query_index;
    record.response_seconds = response;
    record.explain = r.explain;
    recorder_->Record(record);
  }
}

Status System::EstimateCurrentCache(size_t k, CostEstimate* out) const {
  const CostModelInputs in = MakeCostInputs(last_cache_bytes_, k);
  switch (last_method_) {
    case CacheMethod::kExact:
      *out = EstimateExact(in);
      return Status::OK();
    case CacheMethod::kHcW:
    case CacheMethod::kHcV:
    case CacheMethod::kHcM:
    case CacheMethod::kHcD:
    case CacheMethod::kHcO: {
      // The published generation retains the method's global histogram;
      // re-estimate against exactly the structure the cache codes with.
      auto gen = generation();
      if (gen == nullptr) return Status::InvalidArgument("no cache configured");
      *out = EstimateForHistogram(in, gen->global_hist, *fprime_, *fdata_);
      return Status::OK();
    }
    case CacheMethod::kNone:
      return Status::InvalidArgument("no cache configured");
    default:
      return Status::NotSupported(
          "cost model covers EXACT and global-histogram caches only");
  }
}

Status System::BuildGlobalHistogram(CacheMethod method, uint32_t tau,
                                    hist::Histogram* out) const {
  const uint32_t buckets = 1u << tau;
  switch (method) {
    case CacheMethod::kHcW:
      return hist::BuildEquiWidth(options_.ndom, buckets, out);
    case CacheMethod::kHcV:
      return hist::BuildVOptimal(*fdata_, buckets, out);
    case CacheMethod::kHcM:
      return hist::BuildMaxDiff(*fdata_, buckets, out);
    case CacheMethod::kHcD:
      return hist::BuildEquiDepth(*fdata_, buckets, out);
    case CacheMethod::kHcO:
      return hist::BuildKnnOptimal(*fprime_, buckets, out);
    default:
      return Status::InvalidArgument("not a global-histogram method");
  }
}

CostModelInputs System::MakeCostInputs(size_t cache_bytes, size_t k) const {
  CostModelInputs in;
  in.freq_sorted.reserve(wl_.freq.size());
  for (PointId id : wl_.ids_by_freq) in.freq_sorted.push_back(wl_.freq[id]);
  in.avg_candidates = wl_.avg_candidates;
  in.dmax = std::max(1e-9, wl_.dmax);
  in.avg_knn_dist = wl_.avg_knn_dist;
  in.cand_dist_sample = wl_.cand_dist_sample;
  in.dim = data_->dim();
  in.lvalue = lvalue();
  in.cache_bytes = cache_bytes;
  in.k = k;
  return in;
}

uint32_t System::AutoTau(CacheMethod method, size_t cache_bytes,
                         size_t k) const {
  const CostModelInputs in = MakeCostInputs(cache_bytes, k);
  switch (method) {
    case CacheMethod::kHcW:
    case CacheMethod::kIHcW:
    case CacheMethod::kHcV:
    case CacheMethod::kHcM:
    case CacheMethod::kHcD:
    case CacheMethod::kHcO:
    case CacheMethod::kIHcD:
    case CacheMethod::kIHcO:
    case CacheMethod::kMHcR: {
      auto builder = [&](uint32_t tau, hist::Histogram* h) -> Status {
        CacheMethod gm = method;
        if (method == CacheMethod::kIHcW) gm = CacheMethod::kHcW;
        if (method == CacheMethod::kIHcD) gm = CacheMethod::kHcD;
        if (method == CacheMethod::kIHcO) gm = CacheMethod::kHcO;
        if (method == CacheMethod::kMHcR) gm = CacheMethod::kHcW;
        return BuildGlobalHistogram(gm, tau, h);
      };
      return OptimalTauForBuilder(in, builder, *fprime_, *fdata_);
    }
    default:
      return lvalue();
  }
}

// Builds a complete, fully filled cache generation without touching the
// published one; the caller publishes it atomically on success. Histograms
// live inside the generation so each cache points at structures with the
// same lifetime as itself — a rebuild can no longer mutate a histogram an
// in-flight query is decoding against.
Status System::BuildCacheObject(CacheMethod method, size_t cache_bytes,
                                uint32_t tau, bool lru,
                                std::shared_ptr<CacheGeneration>* out) {
  const Dataset& data = *data_;
  const uint32_t buckets = 1u << tau;
  Timer timer;
  last_space_bytes_ = 0;
  out->reset();

  switch (method) {
    case CacheMethod::kNone:
      return Status::OK();

    case CacheMethod::kExact: {
      auto gen = std::make_shared<CacheGeneration>();
      auto c = std::make_unique<cache::ExactCache>(data.dim(), cache_bytes,
                                                   lru);
      if (!lru) EEB_RETURN_IF_ERROR(c->Fill(data, wl_.ids_by_freq));
      gen->cache = std::move(c);
      *out = std::move(gen);
      return Status::OK();
    }

    case CacheMethod::kHcW:
    case CacheMethod::kHcV:
    case CacheMethod::kHcM:
    case CacheMethod::kHcD:
    case CacheMethod::kHcO: {
      auto gen = std::make_shared<CacheGeneration>();
      EEB_RETURN_IF_ERROR(
          BuildGlobalHistogram(method, tau, &gen->global_hist));
      last_build_seconds_ = timer.ElapsedSeconds();
      last_space_bytes_ = gen->global_hist.SpaceBytes();
      auto c = std::make_unique<cache::HistCodeCache>(
          &gen->global_hist, data.dim(), cache_bytes, lru,
          options_.integral_values);
      if (!lru) EEB_RETURN_IF_ERROR(c->Fill(data, wl_.ids_by_freq));
      gen->cache = std::move(c);
      *out = std::move(gen);
      return Status::OK();
    }

    case CacheMethod::kIHcW:
    case CacheMethod::kIHcD:
    case CacheMethod::kIHcO: {
      hist::BuilderKind kind = hist::BuilderKind::kEquiWidth;
      std::vector<hist::FrequencyArray> freqs;
      if (method == CacheMethod::kIHcW) {
        kind = hist::BuilderKind::kEquiWidth;
        freqs.assign(data.dim(), hist::FrequencyArray(options_.ndom));
      } else if (method == CacheMethod::kIHcD) {
        kind = hist::BuilderKind::kEquiDepth;
        std::vector<PointId> all(data.size());
        for (size_t i = 0; i < all.size(); ++i) {
          all[i] = static_cast<PointId>(i);
        }
        freqs = hist::PerDimFrequencies(data, all, options_.ndom);
      } else {
        kind = hist::BuilderKind::kKnnOptimal;
        freqs = hist::PerDimFrequencies(data, wl_.qr_points, options_.ndom);
      }
      auto gen = std::make_shared<CacheGeneration>();
      EEB_RETURN_IF_ERROR(
          hist::BuildIndividual(freqs, buckets, kind, &gen->indiv_hist));
      last_build_seconds_ = timer.ElapsedSeconds();
      last_space_bytes_ = gen->indiv_hist.SpaceBytes();
      auto c = std::make_unique<cache::IndividualCodeCache>(
          &gen->indiv_hist, buckets, cache_bytes, lru,
          options_.integral_values);
      if (!lru) EEB_RETURN_IF_ERROR(c->Fill(data, wl_.ids_by_freq));
      gen->cache = std::move(c);
      *out = std::move(gen);
      return Status::OK();
    }

    case CacheMethod::kMHcR: {
      auto gen = std::make_shared<CacheGeneration>();
      EEB_RETURN_IF_ERROR(index::BuildRTreeHistogram(
          data, buckets, &gen->md_hist, &gen->md_assignment));
      last_build_seconds_ = timer.ElapsedSeconds();
      last_space_bytes_ = gen->md_hist.SpaceBytes();
      auto c = std::make_unique<cache::MultiDimCodeCache>(&gen->md_hist,
                                                          cache_bytes);
      EEB_RETURN_IF_ERROR(c->Fill(wl_.ids_by_freq, gen->md_assignment));
      gen->cache = std::move(c);
      *out = std::move(gen);
      return Status::OK();
    }

    case CacheMethod::kCVa: {
      // Fit ALL points: the largest tau whose packed VA-file fits CS.
      uint32_t fit_tau = 1;
      for (uint32_t t = lvalue(); t >= 1; --t) {
        const size_t bytes =
            data.size() * WordsForBits(data.dim() * t) * sizeof(uint64_t);
        if (bytes <= cache_bytes) {
          fit_tau = t;
          break;
        }
        if (t == 1) fit_tau = 1;
      }
      last_tau_ = fit_tau;
      std::vector<PointId> all(data.size());
      for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<PointId>(i);
      auto freqs = hist::PerDimFrequencies(data, all, options_.ndom);
      auto gen = std::make_shared<CacheGeneration>();
      EEB_RETURN_IF_ERROR(hist::BuildIndividual(freqs, 1u << fit_tau,
                                                hist::BuilderKind::kEquiDepth,
                                                &gen->indiv_hist));
      last_build_seconds_ = timer.ElapsedSeconds();
      last_space_bytes_ = gen->indiv_hist.SpaceBytes();
      // Capacity: whole VA-file; fill in frequency order (complete anyway
      // when it fits).
      auto c = std::make_unique<cache::IndividualCodeCache>(
          &gen->indiv_hist, 1u << fit_tau, cache_bytes, /*lru=*/false,
          options_.integral_values);
      EEB_RETURN_IF_ERROR(c->Fill(data, wl_.ids_by_freq));
      gen->cache = std::move(c);
      *out = std::move(gen);
      return Status::OK();
    }
  }
  return Status::InvalidArgument("unknown cache method");
}

void System::PublishGeneration(std::shared_ptr<CacheGeneration> gen) {
  // Bind instruments before the swap so no probe lands on an unbound cache.
  if (gen != nullptr) {
    gen->cache->set_generation_id(
        next_generation_id_.fetch_add(1, std::memory_order_relaxed) + 1);
    if (metrics_ != nullptr) gen->cache->BindMetrics(metrics_);
  }
  // The engine receives an aliasing pointer: it shares ownership of the
  // whole generation but points at the cache, so histograms stay alive for
  // exactly as long as any query still reads through them.
  std::shared_ptr<cache::KnnCache> cache_view;
  if (gen != nullptr) cache_view = {gen, gen->cache.get()};
  bool had_generation;
  {
    MutexLock lock(generation_mu_);
    had_generation = generation_ != nullptr;
    generation_ = std::move(gen);
  }
  engine_->set_cache(std::move(cache_view));
  // Re-base the windowed cache tap: the new generation's counters start
  // from zero and must not read as a negative delta.
  InstallCacheTap();
  if (analytics_ != nullptr) {
    // Replacing a live generation invalidates every cached code: re-misses
    // on keys seen under the old generation classify as invalidation, not
    // capacity. The MRC reference point follows the new capacity either way.
    if (had_generation) analytics_->NoteGenerationSwap();
    if (auto cur = generation(); cur != nullptr && cur->cache != nullptr) {
      analytics_->set_reference_size(cur->cache->capacity_items());
    }
  }
}

Status System::RefreshWorkload(
    const std::vector<std::vector<Scalar>>& workload) {
  EEB_RETURN_IF_ERROR(AnalyzeWorkload(lsh_.get(), *data_, workload,
                                      options_.analysis_k, &wl_));
  fprime_ = std::make_unique<hist::FrequencyArray>(
      hist::FrequencyArray::FromPoints(*data_, wl_.qr_points, options_.ndom));
  return Status::OK();
}

Status System::SetWorkloadStats(WorkloadStats stats,
                                hist::FrequencyArray fprime) {
  if (fprime.ndom() != options_.ndom) {
    return Status::InvalidArgument("fprime domain mismatch");
  }
  if (stats.freq.size() != data_->size()) {
    return Status::InvalidArgument("freq size mismatch");
  }
  wl_ = std::move(stats);
  fprime_ = std::make_unique<hist::FrequencyArray>(std::move(fprime));
  return Status::OK();
}

Status System::ReconfigureCache() {
  if (last_method_ == CacheMethod::kNone && last_cache_bytes_ == 0) {
    return Status::OK();
  }
  return ConfigureCache(last_method_, last_cache_bytes_, last_requested_tau_,
                        last_lru_);
}

Status System::ConfigureCache(CacheMethod method, size_t cache_bytes,
                              uint32_t tau, bool lru) {
  last_method_ = method;
  last_cache_bytes_ = cache_bytes;
  last_requested_tau_ = tau;
  last_lru_ = lru;
  last_build_seconds_ = 0.0;
  if (method != CacheMethod::kCVa) {
    if (tau == 0) tau = AutoTau(method, cache_bytes, options_.analysis_k);
    if (tau > 24) return Status::InvalidArgument("tau too large");
    last_tau_ = tau;
  }
  std::shared_ptr<CacheGeneration> gen;
  EEB_RETURN_IF_ERROR(BuildCacheObject(method, cache_bytes, tau, lru, &gen));
  PublishGeneration(std::move(gen));
  if (metrics_ != nullptr) {
    metrics_->GetGauge("cache.build_seconds")->Set(last_build_seconds_);
    metrics_->GetGauge("cache.aux_space_bytes")
        ->Set(static_cast<double>(last_space_bytes_));
    metrics_->GetGauge("cache.tau")->Set(static_cast<double>(last_tau_));
  }
  return Status::OK();
}

Status System::Query(std::span<const Scalar> q, size_t k, QueryResult* out) {
  EEB_RETURN_IF_ERROR(engine_->Query(q, k, out));
  StampBreakerState(out);
  RecordQueryTelemetry(*out, 0);
  return Status::OK();
}

Status System::RunQueries(const std::vector<std::vector<Scalar>>& queries,
                          size_t k, AggregateResult* out) {
  *out = AggregateResult{};
  if (queries.empty()) return Status::OK();
  obs::ProfScope batch_scope(profiler_, "run_queries");
  std::vector<QueryResult> results(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    EEB_RETURN_IF_ERROR(Query(queries[i], k, &results[i]));
    if (tracer_ != nullptr) {
      if (obs::QuerySpan* span = tracer_->last_span(); span != nullptr) {
        const QueryResult& r = results[i];
        storage::IoStats io = r.gen_io;
        io += r.refine_io;
        span->modeled_io_seconds = disk_model_.Seconds(io);
        span->response_seconds = r.gen_seconds + r.reduce_seconds +
                                 r.refine_seconds + span->modeled_io_seconds;
        // Surface a non-closed breaker on the span: the query ran against a
        // disk the breaker currently distrusts.
        if (breaker_env_ != nullptr) {
          const auto state = breaker_env_->state();
          if (state != storage::CircuitBreakerEnv::State::kClosed) {
            tracer_->AddEvent(span, obs::TraceEventType::kBreakerOpen,
                              static_cast<uint64_t>(state), 0.0);
          }
        }
      }
    }
  }
  AggregateResults(results, out);
  return Status::OK();
}

Status System::RunQueriesConcurrent(
    const std::vector<std::vector<Scalar>>& queries, size_t k,
    size_t n_threads, AggregateResult* out,
    std::vector<QueryResult>* per_query) {
  *out = AggregateResult{};
  // Blocking admission with no end-to-end deadline: nothing sheds, and the
  // engine runs with a default QueryContext, so results and the aggregate
  // stay bit-exact with the serial path (docs/CONCURRENCY.md).
  ServeOptions options;
  options.n_threads = n_threads;
  options.admission = AdmissionPolicy::kBlock;
  options.deadline_ms = -1.0;
  ServeReport report;
  EEB_RETURN_IF_ERROR(ServeInternal(queries, k, options,
                                    "run_queries_concurrent", &report,
                                    per_query));
  *out = report.agg;
  return Status::OK();
}

Status System::Serve(const std::vector<std::vector<Scalar>>& queries,
                     size_t k, const ServeOptions& options,
                     ServeReport* report,
                     std::vector<QueryResult>* per_query) {
  return ServeInternal(queries, k, options, "serve", report, per_query);
}

Status System::ServeInternal(const std::vector<std::vector<Scalar>>& queries,
                             size_t k, const ServeOptions& options,
                             const char* scope_name, ServeReport* report,
                             std::vector<QueryResult>* per_query) {
  *report = ServeReport{};
  if (per_query != nullptr) per_query->clear();
  if (options.n_threads == 0) {
    return Status::InvalidArgument("n_threads must be positive");
  }
  if (tracer_ != nullptr) {
    // The tracer's span ring is single-threaded by contract; refusing beats
    // silently interleaving spans from different queries.
    return Status::InvalidArgument(
        "detach the tracer before concurrent serving");
  }
  if (queries.empty()) return Status::OK();
  obs::ProfScope batch_scope(profiler_, scope_name);

  // Brownout shedding only applies on the open-loop policies: blocking
  // admission is the closed-loop batch contract, where dropping a query
  // would silently change the batch.
  const bool brownout_sheds =
      health_ != nullptr && options.admission != AdmissionPolicy::kBlock;
  obs::Counter* admitted_counter = nullptr;
  obs::Counter* shed_counter = nullptr;
  obs::Counter* timeout_counter = nullptr;
  obs::Counter* expired_counter = nullptr;
  if (metrics_ != nullptr) {
    admitted_counter = metrics_->GetCounter("admission.admitted");
    shed_counter = metrics_->GetCounter("admission.shed");
    timeout_counter = metrics_->GetCounter("admission.timeout");
    expired_counter = metrics_->GetCounter("admission.expired");
  }

  // Every query writes only its own slot, so no result-side synchronization
  // is needed; aggregation then folds the slots in query order, making the
  // aggregate bit-exact with the serial path when nothing sheds.
  std::vector<QueryResult> results(queries.size());
  std::vector<Status> statuses(queries.size());
  // Admission timestamps: started right before each Submit so queue wait —
  // including any blocking/timeout wait in admission itself — counts
  // against the end-to-end deadline.
  std::vector<Timer> admitted_at(queries.size());
  // Reconciliation counts owned by the admission loop; workers never touch
  // them. shed_expired is the exception: expiry is discovered on a worker.
  std::atomic<size_t> shed_expired{0};
  {
    ThreadPool pool(options.n_threads, options.queue_capacity);
    {
      MutexLock lock(pool_mu_);
      active_pool_ = &pool;
    }
    for (size_t i = 0; i < queries.size(); ++i) {
      report->submitted++;
      if (brownout_sheds && health_->ShouldShed()) {
        report->shed_brownout++;
        if (shed_counter != nullptr) shed_counter->Add(1);
        MarkShed(&results[i], obs::ShedCause::kBrownout, 0.0, i);
        continue;
      }
      auto task = [this, &queries, &results, &statuses, &admitted_at,
                   &shed_expired, &options, expired_counter, i, k] {
        const double wait_ms = admitted_at[i].ElapsedMillis();
        double deadline_ms = options.deadline_ms;
        if (health_ != nullptr) {
          deadline_ms = health_->EffectiveDeadlineMs(deadline_ms);
        }
        if (deadline_ms > 0.0 && wait_ms >= deadline_ms) {
          // The whole budget burned in the queue: shed without touching the
          // engine — the deadline would cut every phase anyway.
          shed_expired.fetch_add(1, std::memory_order_relaxed);
          if (expired_counter != nullptr) expired_counter->Add(1);
          MarkShed(&results[i], obs::ShedCause::kDeadlineExpired, wait_ms, i);
          return;
        }
        QueryContext ctx;
        if (options.deadline_ms >= 0.0) {
          ctx.deadline_ms = deadline_ms;
          ctx.elapsed_ms = wait_ms;
        }
        statuses[i] = engine_->Query(queries[i], k, ctx, &results[i]);
        // Telemetry is recorded on the worker, as a server would: the
        // window/recorder see queries as they finish, not at batch end.
        if (statuses[i].ok()) {
          StampBreakerState(&results[i]);
          RecordQueryTelemetry(results[i], i);
        }
      };
      admitted_at[i].Start();
      PushOutcome outcome = PushOutcome::kAccepted;
      switch (options.admission) {
        case AdmissionPolicy::kBlock:
          if (!pool.Submit(std::move(task))) outcome = PushOutcome::kClosed;
          break;
        case AdmissionPolicy::kShed:
          outcome = pool.TrySubmit(std::move(task));
          break;
        case AdmissionPolicy::kTimeout:
          outcome = pool.SubmitWithDeadline(std::move(task),
                                            options.admission_timeout_ms);
          break;
      }
      switch (outcome) {
        case PushOutcome::kAccepted:
          if (admitted_counter != nullptr) admitted_counter->Add(1);
          break;
        case PushOutcome::kFull:
          report->shed_queue_full++;
          if (shed_counter != nullptr) shed_counter->Add(1);
          MarkShed(&results[i], obs::ShedCause::kQueueFull, 0.0, i);
          break;
        case PushOutcome::kTimedOut:
          report->shed_timeout++;
          if (timeout_counter != nullptr) timeout_counter->Add(1);
          MarkShed(&results[i], obs::ShedCause::kQueueTimeout,
                   admitted_at[i].ElapsedMillis(), i);
          break;
        case PushOutcome::kClosed:
          // The pool only closes at scope exit; unreachable here, but a
          // defensive shed keeps the reconciliation exact if it ever fires.
          report->shed_queue_full++;
          MarkShed(&results[i], obs::ShedCause::kQueueFull, 0.0, i);
          break;
      }
    }
    pool.Drain();
    if (metrics_ != nullptr) {
      metrics_->GetGauge("pool.queue_max_depth")
          ->Set(static_cast<double>(pool.queue_max_depth()));
    }
    {
      MutexLock lock(pool_mu_);
      active_pool_ = nullptr;
    }
  }
  for (const Status& st : statuses) {
    EEB_RETURN_IF_ERROR(st);
  }
  report->shed_expired = shed_expired.load(std::memory_order_relaxed);
  report->shed = report->shed_queue_full + report->shed_timeout +
                 report->shed_expired + report->shed_brownout;
  report->completed = report->submitted - report->shed;
  AggregateResults(results, &report->agg);
  if (per_query != nullptr) *per_query = std::move(results);
  return Status::OK();
}

void System::AggregateResults(const std::vector<QueryResult>& results,
                              AggregateResult* out) {
  double hits = 0.0;
  double probes = 0.0;
  double reduced = 0.0;
  double modeled_io_total = 0.0;
  storage::IoStats gen_total, refine_total;
  // Modeled response-time distribution; log-bucketed so batches of any size
  // aggregate in O(1) memory (satisfies the same p50<=p95<=p99 contract as
  // the exact sort it replaces, within one bucket width).
  obs::LatencyHistogram latencies;
  size_t completed = 0;
  for (const QueryResult& r : results) {
    // Shed queries never executed: they carry no phase data and would
    // dilute every average toward zero. Serve reports them separately.
    if (r.shed) continue;
    ++completed;
    storage::IoStats io = r.gen_io;
    io += r.refine_io;
    const double modeled_io = disk_model_.Seconds(io);
    const double response =
        r.gen_seconds + r.reduce_seconds + r.refine_seconds + modeled_io;
    latencies.Record(response);
    modeled_io_total += modeled_io;
    if (obs_response_ != nullptr) obs_response_->Record(response);
    out->avg_candidates += static_cast<double>(r.candidates);
    out->avg_remaining += static_cast<double>(r.remaining);
    out->avg_fetched += static_cast<double>(r.fetched);
    out->avg_refine_pages += static_cast<double>(r.refine_io.page_reads);
    out->avg_gen_pages += static_cast<double>(r.gen_io.page_reads);
    out->avg_gen_seq_pages += static_cast<double>(r.gen_io.seq_page_reads);
    gen_total += r.gen_io;
    refine_total += r.refine_io;
    out->avg_gen_cpu += r.gen_seconds;
    out->avg_reduce_cpu += r.reduce_seconds;
    out->avg_refine_cpu += r.refine_seconds;
    hits += static_cast<double>(r.cache_hits);
    probes += static_cast<double>(r.candidates);
    reduced += static_cast<double>(r.pruned + r.true_hits);
    if (r.degraded) out->degraded_queries++;
    if (r.deadline_hit) out->deadline_cuts++;
    out->avg_substituted += static_cast<double>(r.substituted);
    out->read_failures += r.read_failures;
  }
  out->queries = completed;
  if (completed == 0) return;  // every arrival was shed; nothing to average
  const double nq = static_cast<double>(completed);
  out->avg_candidates /= nq;
  out->avg_remaining /= nq;
  out->avg_fetched /= nq;
  out->avg_refine_pages /= nq;
  out->avg_gen_pages /= nq;
  out->avg_gen_seq_pages /= nq;
  out->avg_gen_cpu /= nq;
  out->avg_reduce_cpu /= nq;
  out->avg_refine_cpu /= nq;
  out->hit_ratio = probes > 0 ? hits / probes : 0.0;
  out->prune_ratio = hits > 0 ? reduced / hits : 0.0;
  out->avg_gen_seconds = out->avg_gen_cpu + disk_model_.Seconds(gen_total) / nq;
  out->avg_refine_seconds = out->avg_reduce_cpu + out->avg_refine_cpu +
                            disk_model_.Seconds(refine_total) / nq;
  out->avg_response_seconds = out->avg_gen_seconds + out->avg_refine_seconds;

  out->degraded_rate = static_cast<double>(out->degraded_queries) / nq;
  out->avg_substituted /= nq;

  out->p50_response_seconds = latencies.Percentile(0.50);
  out->p95_response_seconds = latencies.Percentile(0.95);
  out->p99_response_seconds = latencies.Percentile(0.99);

  if (obs_queries_ != nullptr) {
    obs_queries_->Add(completed);
    obs_modeled_io_->Add(modeled_io_total);
  }
}

}  // namespace eeb::core
