// System facade: assembles the full pipeline of paper Fig. 3 — disk-resident
// point file, C2LSH index, workload analysis, histogram construction, cache
// fill, and the query engine — behind one object. Benchmarks and examples
// configure a System per experiment cell instead of re-wiring modules.

#ifndef EEB_CORE_SYSTEM_H_
#define EEB_CORE_SYSTEM_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/dataset.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "cache/code_cache.h"
#include "cache/exact_cache.h"
#include "cache/multidim_cache.h"
#include "cache/shadow_cache.h"
#include "core/cost_model.h"
#include "core/health.h"
#include "core/knn_engine.h"
#include "core/workload.h"
#include "hist/builders.h"
#include "hist/individual.h"
#include "hist/multidim_histogram.h"
#include "index/lsh/c2lsh.h"
#include "obs/cache_analytics.h"
#include "obs/metrics.h"
#include "obs/prof.h"
#include "obs/recorder.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "storage/circuit_breaker_env.h"
#include "storage/env.h"
#include "storage/io_stats.h"
#include "storage/point_file.h"
#include "storage/retry_env.h"

namespace eeb::core {

class ThreadPool;

/// The cache configurations evaluated in the paper (Sec. 5.1).
enum class CacheMethod {
  kNone,   ///< NO-CACHE baseline
  kExact,  ///< EXACT: full-precision points
  kHcW,    ///< global equi-width
  kHcV,    ///< global V-optimal
  kHcM,    ///< global MaxDiff (extension; classical family completion)
  kHcD,    ///< global equi-depth
  kHcO,    ///< global kNN-optimal (the paper's method)
  kIHcW,   ///< per-dimension equi-width
  kIHcD,   ///< per-dimension equi-depth
  kIHcO,   ///< per-dimension kNN-optimal
  kMHcR,   ///< multi-dimensional (R-tree) histogram
  kCVa,    ///< cache the whole VA-file (per-dim equi-depth, all points)
};

/// Short display name, e.g. "HC-O".
const char* CacheMethodName(CacheMethod method);

/// Physical ordering of the point file (Fig. 9).
enum class FileOrdering { kRaw, kClustered, kSortedKey };

struct SystemOptions {
  uint32_t ndom = 256;
  /// Data coordinates are integers in [0, ndom) (true for the generated
  /// surrogate datasets): enables the paper-exact tight bucket edges.
  bool integral_values = true;
  size_t analysis_k = 10;  ///< k used for workload analysis (QR shape)
  index::C2LshOptions lsh;
  size_t page_size = storage::kDefaultPageSize;
  FileOrdering ordering = FileOrdering::kRaw;
  uint64_t seed = 5;
  EngineOptions engine;  ///< forwarded to the KnnEngine
  /// Transient-IOError retry budget for point-file reads (Corruption is
  /// never retried). max_retries = 0 disables retrying.
  storage::RetryPolicy io_retry;
  /// Storage circuit breaker composed OUTSIDE the retry wrapper, so an open
  /// breaker short-circuits before any retry sleeps: a dead disk flips the
  /// engine into cached-bound degraded mode immediately instead of paying
  /// the full retry ladder per candidate. Disabled by default.
  storage::CircuitBreakerPolicy io_breaker;
};

/// Aggregate statistics over a batch of queries.
struct AggregateResult {
  size_t queries = 0;
  double avg_candidates = 0.0;
  double avg_remaining = 0.0;     ///< Crefine after reduction
  double avg_fetched = 0.0;       ///< points actually fetched (multi-step)
  double avg_refine_pages = 0.0;  ///< refinement random-page I/O per query
  double avg_gen_pages = 0.0;     ///< index random-page I/O per query
  double avg_gen_seq_pages = 0.0;  ///< index sequential pages per query
  double hit_ratio = 0.0;         ///< rho_hit over the batch
  double prune_ratio = 0.0;       ///< rho_prune: pruned+sure over hits
  double avg_gen_cpu = 0.0;       ///< measured CPU seconds, phase 1
  double avg_reduce_cpu = 0.0;    ///< measured CPU seconds, phase 2
  double avg_refine_cpu = 0.0;    ///< measured CPU seconds, phase 3
  double avg_gen_seconds = 0.0;   ///< CPU + modeled index I/O
  double avg_refine_seconds = 0.0;  ///< CPU + modeled refinement I/O
  double avg_response_seconds = 0.0;  ///< total per query

  // Modeled per-query response-time distribution (tail latency matters to
  // interactive retrieval; the paper reports means only).
  double p50_response_seconds = 0.0;
  double p95_response_seconds = 0.0;
  double p99_response_seconds = 0.0;

  // Degraded execution over the batch (0 on a healthy disk).
  size_t degraded_queries = 0;   ///< queries with any bound-substituted result
  double degraded_rate = 0.0;    ///< degraded_queries / queries
  double avg_substituted = 0.0;  ///< bound-substituted candidates per query
  size_t read_failures = 0;      ///< total reads that failed post-retry
  size_t deadline_cuts = 0;      ///< queries cut over by deadline_ms
};

/// How Serve admits arrivals when the queue is full (docs/ROBUSTNESS.md).
enum class AdmissionPolicy : uint8_t {
  kBlock = 0,    ///< wait for a slot (closed-loop batch semantics)
  kShed = 1,     ///< drop immediately (open-loop load shedding)
  kTimeout = 2,  ///< wait up to admission_timeout_ms, then drop
};

const char* AdmissionPolicyName(AdmissionPolicy policy);

/// Configuration for System::Serve.
struct ServeOptions {
  size_t n_threads = 1;
  /// Backlog bound for admitted-but-unstarted queries; 0 picks 2*n_threads.
  size_t queue_capacity = 0;
  AdmissionPolicy admission = AdmissionPolicy::kBlock;
  /// Wait bound for AdmissionPolicy::kTimeout, in milliseconds.
  double admission_timeout_ms = 1.0;
  /// End-to-end deadline per query in milliseconds: stamped at admission, so
  /// queue wait counts against it, and the remaining budget is passed into
  /// the engine. A query whose wait alone exceeds the deadline is shed on
  /// dequeue without touching the engine. Negative means "engine-configured
  /// deadline, no queue-wait accounting" (the RunQueriesConcurrent
  /// contract); 0 disables the deadline.
  double deadline_ms = -1.0;
};

/// Outcome accounting for one Serve call. Always reconciles exactly:
/// completed + shed == submitted, and shed_queue_full + shed_timeout +
/// shed_expired + shed_brownout == shed.
struct ServeReport {
  AggregateResult agg;  ///< over completed queries only (shed excluded)
  size_t submitted = 0;
  size_t completed = 0;
  size_t shed = 0;
  size_t shed_queue_full = 0;  ///< dropped by kShed on a full queue
  size_t shed_timeout = 0;     ///< dropped by kTimeout after the wait bound
  size_t shed_expired = 0;     ///< deadline expired in-queue; never executed
  size_t shed_brownout = 0;    ///< dropped at admission by the HealthMonitor
};

/// Fully assembled kNN-search system with pluggable caching.
class System {
 public:
  /// Builds the offline state: writes the point file under `dir`, builds the
  /// C2LSH index, runs the workload analysis and derives F'/F. `data` and
  /// `workload` must outlive the system (no copies are made of `data`).
  static Status Create(storage::Env* env, const std::string& dir,
                       const Dataset& data,
                       const std::vector<std::vector<Scalar>>& workload,
                       const SystemOptions& options,
                       std::unique_ptr<System>* out);

  /// Installs a cache. `tau == 0` lets the cost model choose (Sec. 4.2).
  /// `lru` switches from the default HFF fill to dynamic LRU caching.
  Status ConfigureCache(CacheMethod method, size_t cache_bytes,
                        uint32_t tau = 0, bool lru = false);

  /// Re-runs the workload analysis against a new query log (paper
  /// Sec. 3.5: the histogram/cache are rebuilt periodically from the
  /// latest log). Call ConfigureCache afterwards to rebuild the cache
  /// content; the installed cache keeps serving until then.
  Status RefreshWorkload(const std::vector<std::vector<Scalar>>& workload);

  /// Re-applies the most recent ConfigureCache arguments (after a
  /// RefreshWorkload, this rebuilds histogram + cache from the new stats).
  Status ReconfigureCache();

  /// Installs externally computed workload statistics — e.g. an EWMA blend
  /// over epochs from CacheMaintainer. `fprime` must be over
  /// options().ndom. Call ReconfigureCache afterwards.
  Status SetWorkloadStats(WorkloadStats stats, hist::FrequencyArray fprime);

  /// Runs one query (Algorithm 1). Thread-safe: concurrent callers share
  /// the read-only index/point file and the thread-safe cache, and each
  /// query pins the cache generation published at its start.
  Status Query(std::span<const Scalar> q, size_t k, QueryResult* out);

  /// Runs a batch and aggregates, converting I/O counts into modeled time
  /// with the disk model.
  Status RunQueries(const std::vector<std::vector<Scalar>>& queries, size_t k,
                    AggregateResult* out);

  /// Runs the batch through a fixed pool of `n_threads` workers fed by a
  /// bounded task queue, then aggregates exactly like RunQueries — the
  /// aggregate and every per-query result are bit-exact with the serial
  /// path (docs/CONCURRENCY.md). A ConfigureCache/ReconfigureCache from a
  /// maintenance thread may run concurrently; queries keep the generation
  /// they started with. Refuses to run with a tracer attached (the tracer
  /// is single-threaded by contract). `per_query`, when non-null, receives
  /// the result of queries[i] at index i.
  Status RunQueriesConcurrent(const std::vector<std::vector<Scalar>>& queries,
                              size_t k, size_t n_threads, AggregateResult* out,
                              std::vector<QueryResult>* per_query = nullptr);

  /// Open-loop serving entry (docs/ROBUSTNESS.md): runs the batch through a
  /// worker pool like RunQueriesConcurrent, but admits each arrival under
  /// `options.admission` instead of unconditionally blocking, charges queue
  /// wait against `options.deadline_ms`, and sheds instead of failing when
  /// the process is saturated. Shed queries come back as first-class
  /// results (`QueryResult::shed` with a cause) in `per_query`, never as
  /// errors; the report reconciles exactly (completed + shed == submitted).
  /// With the default blocking options this is bit-exact with
  /// RunQueriesConcurrent.
  Status Serve(const std::vector<std::vector<Scalar>>& queries, size_t k,
               const ServeOptions& options, ServeReport* report,
               std::vector<QueryResult>* per_query = nullptr);

  /// Builds the global histogram a method would use at code length tau.
  Status BuildGlobalHistogram(CacheMethod method, uint32_t tau,
                              hist::Histogram* out) const;

  /// Cost-model inputs for the current workload at the given budget.
  CostModelInputs MakeCostInputs(size_t cache_bytes, size_t k) const;

  /// Cost-model-chosen tau for a method at the given budget (Sec. 4.2).
  uint32_t AutoTau(CacheMethod method, size_t cache_bytes, size_t k) const;

  // --- accessors -----------------------------------------------------------
  const Dataset& data() const { return *data_; }
  const WorkloadStats& workload_stats() const { return wl_; }
  const hist::FrequencyArray& fprime() const { return *fprime_; }
  const hist::FrequencyArray& fdata() const { return *fdata_; }
  const storage::PointFile& point_file() const { return *points_; }
  index::C2Lsh& lsh() { return *lsh_; }
  cache::KnnCache* cache() {
    auto gen = generation();
    return gen == nullptr ? nullptr : gen->cache.get();
  }
  const SystemOptions& options() const { return options_; }
  uint32_t lvalue() const;

  storage::DiskModel& disk_model() { return disk_model_; }

  /// Offline cost of the last ConfigureCache call (Table 3 columns).
  double last_histogram_build_seconds() const { return last_build_seconds_; }
  size_t last_histogram_space_bytes() const { return last_space_bytes_; }
  uint32_t last_tau() const { return last_tau_; }

  /// Binds every pipeline component (engine, index, storage, cache) plus
  /// batch-level instruments in `registry`. The registry must outlive the
  /// system; nullptr detaches everything. Caches installed by later
  /// ConfigureCache calls are bound automatically.
  void EnableMetrics(obs::MetricsRegistry* registry);

  /// Attaches a per-query tracer to the engine. RunQueries additionally
  /// back-fills each span's modeled I/O and response time. nullptr detaches.
  void SetTracer(obs::Tracer* tracer);

  /// Attaches a phase profiler to the whole pipeline: RunQueries opens a
  /// "run_queries" scope, the engine nests "query"/"gen"/"reduce"/"refine"
  /// under it, and the point file nests "read_point" under whichever phase
  /// fetches. nullptr detaches.
  void SetProfiler(obs::Profiler* profiler);

  /// Attaches the live-telemetry window (docs/OBSERVABILITY.md): every
  /// finished query is folded into it (modeled response, candidate funnel,
  /// degraded flags), and a cache tap is installed so windowed hit/admit/
  /// evict ratios follow the live cache generation across rebuilds. Safe on
  /// both the serial and concurrent paths. nullptr detaches.
  void SetWindow(obs::WindowedMetrics* window);

  /// Attaches the flight recorder: every finished query lands in the ring;
  /// slow/degraded ones are tail-retained with their full explain record.
  /// nullptr detaches.
  void SetRecorder(obs::FlightRecorder* recorder);

  /// Attaches the cache-introspection instrument (docs/OBSERVABILITY.md):
  /// every cache probe feeds its reuse-distance sampler, miss classifier
  /// and working-set sketches; generation swaps are forwarded so
  /// invalidation misses classify correctly, and the MRC reference size
  /// tracks the live cache's item capacity. nullptr detaches.
  void SetCacheAnalytics(obs::CacheAnalytics* analytics);

  /// Attaches shadow-cache simulations: every cache probe is replayed
  /// against each configured shadow, and the attached window (if any) gets
  /// a shadow tap publishing windowed per-config hit ratios. Shadows
  /// deliberately survive generation swaps. nullptr detaches.
  void SetShadowCaches(cache::ShadowCacheSet* shadows);

  /// Attaches the brownout state machine: SampleWorkerGauges feeds it window
  /// snapshots, Serve consults it at admission (kShedding drops arrivals on
  /// the non-blocking policies) and tightens per-query deadlines while
  /// browned out. nullptr detaches.
  void SetHealthMonitor(HealthMonitor* health);

  /// The storage circuit breaker, or nullptr when SystemOptions::io_breaker
  /// was disabled at Create time.
  storage::CircuitBreakerEnv* breaker_env() { return breaker_env_.get(); }

  /// Samples queue depth, worker occupancy and queue-lifetime stats from the
  /// pool currently running RunQueriesConcurrent/Serve (zeros when idle)
  /// into the attached window, then feeds the attached HealthMonitor one
  /// snapshot. Wired as the StatsPublisher pre-sample hook.
  void SampleWorkerGauges();

  /// Cost-model prediction for the currently configured cache at the
  /// budget/tau of the last ConfigureCache call. Supported for EXACT and the
  /// global-histogram methods (HC-*); per-dimension, multi-dimensional and
  /// C-VA caches have no single-histogram estimator (NotSupported), and an
  /// unconfigured system returns InvalidArgument.
  Status EstimateCurrentCache(size_t k, CostEstimate* out) const;

 private:
  System() = default;

  /// One published cache epoch: the cache plus the histogram structures it
  /// codes with, bundled so a rebuild can swap the whole generation
  /// atomically while in-flight queries keep reading the old one
  /// (docs/CONCURRENCY.md). Built privately, immutable once published
  /// except for the cache's own thread-safe internals.
  struct CacheGeneration {
    hist::Histogram global_hist;
    hist::IndividualHistograms indiv_hist;
    hist::MultiDimHistogram md_hist;
    std::vector<BucketId> md_assignment;
    std::unique_ptr<cache::KnnCache> cache;
  };

  std::shared_ptr<CacheGeneration> generation() const
      EEB_EXCLUDES(generation_mu_) {
    MutexLock lock(generation_mu_);
    return generation_;
  }

  void PublishGeneration(std::shared_ptr<CacheGeneration> gen);

  /// (Re-)installs the window's cache tap against the live generation;
  /// called on SetWindow and after every generation publication so the tap
  /// re-bases on the new cache's (fresh) counters.
  void InstallCacheTap();

  /// (Re-)installs the window's shadow tap against the attached shadow set
  /// (detaches it when no shadows are attached); called on SetWindow and
  /// SetShadowCaches.
  void InstallShadowTap();

  /// Folds one finished query into the attached window and recorder.
  /// `query_index` is the query's slot in its batch (0 for single queries).
  void RecordQueryTelemetry(const QueryResult& r, uint64_t query_index);

  /// Stamps the breaker's current state into the result's explain record
  /// (no-op when no breaker is configured).
  void StampBreakerState(QueryResult* r);

  /// Marks a result shed with `cause` and records its telemetry.
  void MarkShed(QueryResult* r, obs::ShedCause cause, double queue_wait_ms,
                uint64_t query_index);

  /// Shared RunQueriesConcurrent/Serve body; `scope_name` labels the
  /// profiler scope so both entries keep their distinct names.
  Status ServeInternal(const std::vector<std::vector<Scalar>>& queries,
                       size_t k, const ServeOptions& options,
                       const char* scope_name, ServeReport* report,
                       std::vector<QueryResult>* per_query);

  Status BuildCacheObject(CacheMethod method, size_t cache_bytes, uint32_t tau,
                          bool lru, std::shared_ptr<CacheGeneration>* out);

  /// Shared serial/concurrent aggregation: folds per-query results in query
  /// order (identical floating-point accumulation on both paths) and
  /// records batch-level observability.
  void AggregateResults(const std::vector<QueryResult>& results,
                        AggregateResult* out);

  // Pipeline components: wired by Create() before the system is handed to
  // callers, then structurally immutable — queries only read through them.
  // (The components themselves synchronize their own mutable internals.)
  storage::Env* env_ EEB_UNGUARDED("set once in Create before serving") =
      nullptr;
  SystemOptions options_ EEB_UNGUARDED("set once in Create before serving");
  const Dataset* data_ EEB_UNGUARDED("set once in Create before serving") =
      nullptr;
  // Retry wrapper the point file reads through (owns no Env; wraps env_).
  std::unique_ptr<storage::RetryingEnv> retry_env_ EEB_UNGUARDED(
      "set once in Create before serving");
  // Circuit breaker wrapping retry_env_ (nullptr when disabled): breaker
  // outside retry, so an open breaker skips the retry ladder entirely.
  std::unique_ptr<storage::CircuitBreakerEnv> breaker_env_ EEB_UNGUARDED(
      "set once in Create before serving");
  std::unique_ptr<storage::PointFile> points_ EEB_UNGUARDED(
      "set once in Create before serving");
  std::unique_ptr<index::C2Lsh> lsh_ EEB_UNGUARDED(
      "set once in Create before serving");
  std::unique_ptr<KnnEngine> engine_ EEB_UNGUARDED(
      "set once in Create before serving");
  // Workload statistics: rewritten only by the single maintenance thread
  // (RefreshWorkload / SetWorkloadStats); the query path never reads them.
  WorkloadStats wl_ EEB_UNGUARDED("maintenance thread only; see above");
  std::unique_ptr<hist::FrequencyArray> fprime_ EEB_UNGUARDED(
      "maintenance thread only; see above");  // workload QR coords
  std::unique_ptr<hist::FrequencyArray> fdata_ EEB_UNGUARDED(
      "set once in Create before serving");  // raw data distribution
  storage::DiskModel disk_model_ EEB_UNGUARDED(
      "configured before serving; read-only afterwards");

  // Currently published cache generation (nullptr before ConfigureCache /
  // for NO-CACHE). Readers copy the shared_ptr under generation_mu_; the
  // engine additionally pins its own snapshot per query.
  mutable Mutex generation_mu_;
  std::shared_ptr<CacheGeneration> generation_ EEB_GUARDED_BY(generation_mu_);

  // Offline-cost bookkeeping for the last ConfigureCache call: written by
  // the single configuration/maintenance thread, read by the same thread's
  // later accessor calls.
  double last_build_seconds_ EEB_UNGUARDED("maintenance thread only") = 0.0;
  size_t last_space_bytes_ EEB_UNGUARDED("maintenance thread only") = 0;
  uint32_t last_tau_ EEB_UNGUARDED("maintenance thread only") = 0;

  // Observability attachments (not owned; nullptr when disabled). Attached
  // by single-threaded setup before queries run; the instruments behind
  // the pointers are internally atomic.
  obs::MetricsRegistry* metrics_ EEB_UNGUARDED("attached before serving") =
      nullptr;
  obs::Tracer* tracer_ EEB_UNGUARDED("attached before serving") = nullptr;
  obs::Profiler* profiler_ EEB_UNGUARDED("attached before serving") = nullptr;
  obs::WindowedMetrics* window_ EEB_UNGUARDED("attached before serving") =
      nullptr;
  obs::FlightRecorder* recorder_ EEB_UNGUARDED("attached before serving") =
      nullptr;
  obs::CacheAnalytics* analytics_ EEB_UNGUARDED(
      "attached before serving; internally thread-safe") = nullptr;
  cache::ShadowCacheSet* shadow_ EEB_UNGUARDED(
      "attached before serving; shadows are internally synchronized") =
      nullptr;
  HealthMonitor* health_ EEB_UNGUARDED(
      "attached before serving; the monitor is internally atomic") = nullptr;
  obs::Counter* obs_queries_ EEB_UNGUARDED("attached before serving") =
      nullptr;
  obs::LatencyHistogram* obs_response_ EEB_UNGUARDED(
      "attached before serving") = nullptr;
  obs::Gauge* obs_modeled_io_ EEB_UNGUARDED("attached before serving") =
      nullptr;

  // Pool currently executing RunQueriesConcurrent (nullptr when idle);
  // lets SampleWorkerGauges observe queue depth / busy workers from the
  // stats-publisher thread while a batch is in flight.
  mutable Mutex pool_mu_;
  ThreadPool* active_pool_ EEB_GUARDED_BY(pool_mu_) = nullptr;

  // Monotonic id stamped on each published cache generation (explain
  // records reference it).
  std::atomic<uint64_t> next_generation_id_{0};

  // Most recent ConfigureCache arguments, for ReconfigureCache(): written
  // and read only by the single configuration/maintenance thread.
  CacheMethod last_method_ EEB_UNGUARDED("maintenance thread only") =
      CacheMethod::kNone;
  size_t last_cache_bytes_ EEB_UNGUARDED("maintenance thread only") = 0;
  uint32_t last_requested_tau_ EEB_UNGUARDED("maintenance thread only") = 0;
  bool last_lru_ EEB_UNGUARDED("maintenance thread only") = false;
};

}  // namespace eeb::core

#endif  // EEB_CORE_SYSTEM_H_
