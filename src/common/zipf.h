// Zipf-distributed sampling, used to synthesize power-law query logs that
// mimic the popularity skew the paper motivates with Flickr view counts
// (paper Fig. 2).

#ifndef EEB_COMMON_ZIPF_H_
#define EEB_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

namespace eeb {

/// Samples ranks in [0, n) with P(rank = i) proportional to 1/(i+1)^s.
/// Precomputes the CDF once; each sample is a binary search (O(log n)).
class ZipfSampler {
 public:
  /// @param n     number of distinct items (must be > 0)
  /// @param s     skew exponent; s = 0 degenerates to uniform
  ZipfSampler(uint64_t n, double s);

  /// Draws one rank in [0, n). Rank 0 is the most popular item.
  uint64_t Sample(Rng& rng) const;

  /// Probability mass of the given rank.
  double Probability(uint64_t rank) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  uint64_t n_;
  double s_;
  std::vector<double> cdf_;  // cdf_[i] = P(rank <= i)
};

}  // namespace eeb

#endif  // EEB_COMMON_ZIPF_H_
