#include "common/zipf.h"

#include <algorithm>
#include <cmath>

namespace eeb {

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s) {
  cdf_.resize(n_);
  double total = 0.0;
  for (uint64_t i = 0; i < n_; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s_);
    cdf_[i] = total;
  }
  for (uint64_t i = 0; i < n_; ++i) cdf_[i] /= total;
}

uint64_t ZipfSampler::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;
  return static_cast<uint64_t>(it - cdf_.begin());
}

double ZipfSampler::Probability(uint64_t rank) const {
  if (rank >= n_) return 0.0;
  double lo = rank == 0 ? 0.0 : cdf_[rank - 1];
  return cdf_[rank] - lo;
}

}  // namespace eeb
