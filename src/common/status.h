// Status: lightweight error-code-plus-message result type used across the
// library instead of exceptions (RocksDB idiom). All fallible public APIs
// return Status or set an output parameter and return Status.

#ifndef EEB_COMMON_STATUS_H_
#define EEB_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace eeb {

/// Result of a fallible operation. Cheap to copy when OK (no allocation).
/// [[nodiscard]] on the type makes the compiler reject silently dropped
/// results at every call site; callers must propagate (EEB_RETURN_IF_ERROR),
/// test .ok(), or explicitly acknowledge via EEB_RECORD_IF_ERROR.
class [[nodiscard]] Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,
    kInvalidArgument = 2,
    kIOError = 3,
    kCorruption = 4,
    kNotSupported = 5,
    kInternal = 6,
  };

  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string_view msg) {
    return Status(Code::kNotFound, msg);
  }
  static Status InvalidArgument(std::string_view msg) {
    return Status(Code::kInvalidArgument, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(Code::kIOError, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(Code::kCorruption, msg);
  }
  static Status NotSupported(std::string_view msg) {
    return Status(Code::kNotSupported, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(Code::kInternal, msg);
  }

  [[nodiscard]] bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsInternal() const { return code_ == Code::kInternal; }

  Code code() const { return code_; }

  /// Human-readable rendering, e.g. "IOError: open failed: data.bin".
  std::string ToString() const;

  /// The message supplied at construction (empty for OK).
  const std::string& message() const { return msg_; }

  /// Explicitly acknowledges an intentionally unpropagated status (e.g. a
  /// best-effort cleanup whose failure must not mask the original error).
  /// Grep-able marker for every deliberate drop; the only sanctioned way to
  /// discard a Status now that the type is [[nodiscard]].
  void IgnoreError() const {}

 private:
  Status(Code code, std::string_view msg) : code_(code), msg_(msg) {}

  Code code_;
  std::string msg_;
};

/// Propagates a non-OK status to the caller. Use inside functions that
/// themselves return Status.
#define EEB_RETURN_IF_ERROR(expr)             \
  do {                                        \
    ::eeb::Status _st = (expr);               \
    if (!_st.ok()) return _st;                \
  } while (0)

}  // namespace eeb

#endif  // EEB_COMMON_STATUS_H_
