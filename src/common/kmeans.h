// Lloyd's k-means over a Dataset. Shared substrate: iDistance reference
// points, the clustered file ordering (Fig. 9), and dataset generators all
// need a clustering primitive.

#ifndef EEB_COMMON_KMEANS_H_
#define EEB_COMMON_KMEANS_H_

#include <cstdint>
#include <vector>

#include "common/dataset.h"
#include "common/types.h"

namespace eeb {

/// Result of a k-means run.
struct KMeansResult {
  Dataset centers;                  ///< k centroids, same dim as the input
  std::vector<uint32_t> assign;     ///< per-point cluster index
  std::vector<uint32_t> sizes;      ///< points per cluster
  double inertia = 0.0;             ///< sum of squared distances to centers
  uint32_t iterations = 0;          ///< iterations actually run
};

/// Runs Lloyd's algorithm with k-means++ style seeding (greedy farthest-ish
/// sampling driven by squared distances). Deterministic for a fixed seed.
///
/// @param data       input points (must be non-empty)
/// @param k          number of clusters (clamped to data.size())
/// @param max_iters  Lloyd iteration cap
/// @param seed       RNG seed for the initialization
KMeansResult KMeans(const Dataset& data, uint32_t k, uint32_t max_iters,
                    uint64_t seed);

}  // namespace eeb

#endif  // EEB_COMMON_KMEANS_H_
