#include "common/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/distance.h"
#include "common/random.h"

namespace eeb {
namespace {

// k-means++ seeding: first center uniform, subsequent centers sampled with
// probability proportional to squared distance to the nearest chosen center.
Dataset SeedCenters(const Dataset& data, uint32_t k, Rng& rng) {
  const size_t n = data.size();
  Dataset centers(data.dim());
  centers.Reserve(k);

  std::vector<double> d2(n, std::numeric_limits<double>::infinity());
  PointId first = static_cast<PointId>(rng.Uniform(n));
  centers.Append(data.point(first));

  for (uint32_t c = 1; c < k; ++c) {
    double total = 0.0;
    const PointId last = static_cast<PointId>(centers.size() - 1);
    for (size_t i = 0; i < n; ++i) {
      double d = SquaredL2(data.point(static_cast<PointId>(i)),
                           centers.point(last));
      if (d < d2[i]) d2[i] = d;
      total += d2[i];
    }
    if (total <= 0.0) {
      // All remaining points coincide with chosen centers; reuse any point.
      centers.Append(data.point(static_cast<PointId>(rng.Uniform(n))));
      continue;
    }
    double target = rng.NextDouble() * total;
    size_t pick = n - 1;
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
      acc += d2[i];
      if (acc >= target) {
        pick = i;
        break;
      }
    }
    centers.Append(data.point(static_cast<PointId>(pick)));
  }
  return centers;
}

}  // namespace

KMeansResult KMeans(const Dataset& data, uint32_t k, uint32_t max_iters,
                    uint64_t seed) {
  KMeansResult res;
  const size_t n = data.size();
  const size_t d = data.dim();
  if (n == 0) {
    res.centers = Dataset(d);
    return res;
  }
  if (k > n) k = static_cast<uint32_t>(n);

  Rng rng(seed);
  res.centers = SeedCenters(data, k, rng);
  res.assign.assign(n, 0);
  res.sizes.assign(k, 0);

  std::vector<double> sums(static_cast<size_t>(k) * d);
  for (uint32_t iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    res.inertia = 0.0;
    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(res.sizes.begin(), res.sizes.end(), 0u);

    for (size_t i = 0; i < n; ++i) {
      auto p = data.point(static_cast<PointId>(i));
      double best = std::numeric_limits<double>::infinity();
      uint32_t best_c = 0;
      for (uint32_t c = 0; c < k; ++c) {
        double dist = SquaredL2(p, res.centers.point(c));
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      if (res.assign[i] != best_c) {
        res.assign[i] = best_c;
        changed = true;
      }
      res.inertia += best;
      res.sizes[best_c]++;
      double* s = sums.data() + static_cast<size_t>(best_c) * d;
      for (size_t j = 0; j < d; ++j) s[j] += p[j];
    }

    res.iterations = iter + 1;
    if (!changed && iter > 0) break;

    for (uint32_t c = 0; c < k; ++c) {
      if (res.sizes[c] == 0) continue;  // keep the old (possibly seed) center
      auto center = res.centers.mutable_point(c);
      const double* s = sums.data() + static_cast<size_t>(c) * d;
      for (size_t j = 0; j < d; ++j) {
        center[j] = static_cast<Scalar>(s[j] / res.sizes[c]);
      }
    }
    if (!changed) break;
  }
  return res;
}

}  // namespace eeb
