#include "common/crc32c.h"

namespace eeb {
namespace {

// Slicing-by-4 lookup tables for the reflected Castagnoli polynomial.
// Built once at first use; ~1 cycle/byte, which is noise next to the 4 KB
// page reads the checksums protect.
constexpr uint32_t kPoly = 0x82F63B78u;

struct Tables {
  uint32_t t[4][256];

  Tables() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? kPoly ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFFu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFFu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFFu];
    }
  }
};

const Tables& GetTables() {
  static const Tables tables;
  return tables;
}

}  // namespace

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  const Tables& tb = GetTables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  while (n >= 4) {
    crc ^= static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) |
           (static_cast<uint32_t>(p[3]) << 24);
    crc = tb.t[3][crc & 0xFFu] ^ tb.t[2][(crc >> 8) & 0xFFu] ^
          tb.t[1][(crc >> 16) & 0xFFu] ^ tb.t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p) & 0xFFu];
    ++p;
    --n;
  }
  return ~crc;
}

}  // namespace eeb
