// CRC32C (Castagnoli) checksums for on-disk page integrity. Software
// table-driven implementation — no hardware intrinsics, so the value is
// identical on every platform and a checksummed file written on one machine
// verifies on any other.

#ifndef EEB_COMMON_CRC32C_H_
#define EEB_COMMON_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace eeb {

/// CRC32C of `data[0, n)` continuing from a previous checksum (pass 0 to
/// start a new one). Castagnoli polynomial, reflected, final inversion —
/// the same function iSCSI/RocksDB use, so test vectors are well known.
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// CRC32C of `data[0, n)`.
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

}  // namespace eeb

#endif  // EEB_COMMON_CRC32C_H_
