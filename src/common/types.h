// Core scalar/identifier typedefs shared by every module.

#ifndef EEB_COMMON_TYPES_H_
#define EEB_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace eeb {

/// Coordinate type of data points. The paper's datasets hold discretized
/// feature values; we keep float so generic (real-valued) data also works and
/// discretize only where a histogram needs an integer domain.
using Scalar = float;

/// Identifier of a data point inside a dataset / point file.
using PointId = uint32_t;

inline constexpr PointId kInvalidPointId =
    std::numeric_limits<PointId>::max();

/// Identifier of a histogram bucket (position / code value, Def. 6).
using BucketId = uint32_t;

}  // namespace eeb

#endif  // EEB_COMMON_TYPES_H_
