// Wall-clock timing for benchmarks and construction-time reporting.

#ifndef EEB_COMMON_TIMER_H_
#define EEB_COMMON_TIMER_H_

#include <chrono>

namespace eeb {

/// Monotonic stopwatch. Start() resets; ElapsedSeconds() reads.
class Timer {
 public:
  Timer() { Start(); }

  void Start() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace eeb

#endif  // EEB_COMMON_TIMER_H_
