#ifndef EEB_COMMON_THREAD_ANNOTATIONS_H_
#define EEB_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety analysis attributes (no-ops elsewhere).
//
// These macros let the compiler prove lock-discipline statically: which
// mutex guards which member, which functions require/acquire/release which
// capability. GCC accepts the code unchanged (the macros expand to
// nothing); the dedicated `thread-safety` CI job builds with Clang and
// `-Wthread-safety -Wthread-safety-beta -Werror`, so a guarded member read
// outside its mutex fails the build rather than a lucky TSan run.
//
// Conventions (see docs/STATIC_ANALYSIS.md):
//  - Every mutex is an `eeb::Mutex` (common/mutex.h), never a bare
//    std::mutex: libstdc++'s mutex carries no capability attribute, so the
//    analysis would silently see nothing.
//  - Every mutable member of a class that owns a mutex is either
//    EEB_GUARDED_BY(mu_) or carries EEB_UNGUARDED("why it is safe").
//    The eeb_lint `lock-coverage` pass enforces this.
//  - EEB_NO_THREAD_SAFETY_ANALYSIS is reserved for protocols the analysis
//    cannot express (e.g. the flight recorder's seqlock) and must sit next
//    to a comment stating the manual invariant.

#if defined(__clang__) && (!defined(SWIG))
#define EEB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define EEB_THREAD_ANNOTATION(x)  // no-op
#endif

#define EEB_CAPABILITY(x) EEB_THREAD_ANNOTATION(capability(x))

#define EEB_SCOPED_CAPABILITY EEB_THREAD_ANNOTATION(scoped_lockable)

#define EEB_GUARDED_BY(x) EEB_THREAD_ANNOTATION(guarded_by(x))

#define EEB_PT_GUARDED_BY(x) EEB_THREAD_ANNOTATION(pt_guarded_by(x))

#define EEB_ACQUIRED_BEFORE(...) \
  EEB_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))

#define EEB_ACQUIRED_AFTER(...) \
  EEB_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

#define EEB_REQUIRES(...) \
  EEB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

#define EEB_REQUIRES_SHARED(...) \
  EEB_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

#define EEB_ACQUIRE(...) \
  EEB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

#define EEB_ACQUIRE_SHARED(...) \
  EEB_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

#define EEB_RELEASE(...) \
  EEB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

#define EEB_RELEASE_SHARED(...) \
  EEB_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

#define EEB_TRY_ACQUIRE(...) \
  EEB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

#define EEB_EXCLUDES(...) EEB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

#define EEB_ASSERT_CAPABILITY(x) \
  EEB_THREAD_ANNOTATION(assert_capability(x))

#define EEB_RETURN_CAPABILITY(x) EEB_THREAD_ANNOTATION(lock_returned(x))

#define EEB_NO_THREAD_SAFETY_ANALYSIS \
  EEB_THREAD_ANNOTATION(no_thread_safety_analysis)

// Documentation-only marker for a mutable member of a mutex-owning class
// that is deliberately NOT guarded by the mutex. The string argument states
// the invariant that makes the unguarded access safe ("set once before
// serving", "sharded relaxed atomic merged on snapshot", ...). Expands to
// nothing on every compiler; the eeb_lint `lock-coverage` pass accepts it
// as an explicit per-member suppression, so unguarded state is always a
// conscious, self-documenting decision.
#define EEB_UNGUARDED(reason)  // documentation only

#endif  // EEB_COMMON_THREAD_ANNOTATIONS_H_
