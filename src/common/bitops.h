// Bit-level packing helpers used by the approximate-point cache: each point
// is a string of d codes of tau bits each, packed into consecutive 64-bit
// words (paper Sec. 3.1 footnote 5, "exploit every bit").

#ifndef EEB_COMMON_BITOPS_H_
#define EEB_COMMON_BITOPS_H_

#include <cstdint>
#include <cstddef>
#include <vector>

namespace eeb {

/// Writes `width` low bits of `value` at bit offset `bit_pos` of `words`.
/// The destination bits must be zero (append-style writing). width in [1,57]
/// keeps every field inside at most two words via the unaligned-64 trick
/// below; we cap callers at 32 which is ample (codes never exceed Lvalue).
inline void PackBits(std::vector<uint64_t>& words, size_t bit_pos,
                     uint32_t width, uint64_t value) {
  const size_t word = bit_pos >> 6;
  const unsigned shift = bit_pos & 63;
  words[word] |= value << shift;
  if (shift + width > 64) {
    words[word + 1] |= value >> (64 - shift);
  }
}

/// Reads a `width`-bit field at bit offset `bit_pos`. Branch-free on the
/// common path; width in [1, 57].
inline uint64_t UnpackBits(const uint64_t* words, size_t bit_pos,
                           uint32_t width) {
  const size_t word = bit_pos >> 6;
  const unsigned shift = bit_pos & 63;
  uint64_t v = words[word] >> shift;
  if (shift + width > 64) {
    v |= words[word + 1] << (64 - shift);
  }
  const uint64_t mask =
      width >= 64 ? ~0ULL : ((uint64_t{1} << width) - 1);
  return v & mask;
}

/// Number of 64-bit words needed to hold `nbits` bits.
inline size_t WordsForBits(size_t nbits) { return (nbits + 63) / 64; }

/// ceil(log2(x)) for x >= 1; returns 0 for x == 1.
inline uint32_t CeilLog2(uint64_t x) {
  uint32_t b = 0;
  uint64_t v = 1;
  while (v < x) {
    v <<= 1;
    ++b;
  }
  return b;
}

}  // namespace eeb

#endif  // EEB_COMMON_BITOPS_H_
