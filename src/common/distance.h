// Euclidean distance kernels (Def. 2). Squared forms are used internally to
// avoid sqrt in comparisons; public results report true distances.

#ifndef EEB_COMMON_DISTANCE_H_
#define EEB_COMMON_DISTANCE_H_

#include <cmath>
#include <cstddef>
#include <span>

#include "common/types.h"

namespace eeb {

/// Squared Euclidean distance between two equal-length vectors.
inline double SquaredL2(std::span<const Scalar> a, std::span<const Scalar> b) {
  double acc = 0.0;
  const size_t d = a.size();
  for (size_t j = 0; j < d; ++j) {
    const double diff = static_cast<double>(a[j]) - static_cast<double>(b[j]);
    acc += diff * diff;
  }
  return acc;
}

/// Euclidean distance (Def. 2).
inline double L2(std::span<const Scalar> a, std::span<const Scalar> b) {
  return std::sqrt(SquaredL2(a, b));
}

}  // namespace eeb

#endif  // EEB_COMMON_DISTANCE_H_
