// In-memory dataset container: n points of fixed dimensionality d stored
// row-major. This is the staging form used by generators, index builders and
// tests; the disk-resident form is storage::PointFile.

#ifndef EEB_COMMON_DATASET_H_
#define EEB_COMMON_DATASET_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace eeb {

/// Row-major matrix of points. Points are addressed by PointId in [0, size).
class Dataset {
 public:
  Dataset() : dim_(0) {}

  /// Creates an empty dataset of dimensionality `dim`.
  explicit Dataset(size_t dim) : dim_(dim) {}

  /// Creates a dataset of `n` zero points of dimensionality `dim`.
  Dataset(size_t n, size_t dim) : dim_(dim), data_(n * dim, Scalar{0}) {}

  size_t dim() const { return dim_; }
  size_t size() const { return dim_ == 0 ? 0 : data_.size() / dim_; }
  bool empty() const { return data_.empty(); }

  /// Read-only view of point `id`.
  std::span<const Scalar> point(PointId id) const {
    return {data_.data() + static_cast<size_t>(id) * dim_, dim_};
  }

  /// Mutable view of point `id`.
  std::span<Scalar> mutable_point(PointId id) {
    return {data_.data() + static_cast<size_t>(id) * dim_, dim_};
  }

  /// Appends a point; returns its id. The span must have exactly dim()
  /// elements.
  PointId Append(std::span<const Scalar> p) {
    data_.insert(data_.end(), p.begin(), p.end());
    return static_cast<PointId>(size() - 1);
  }

  /// Raw row-major buffer (n * dim scalars).
  const Scalar* raw() const { return data_.data(); }
  Scalar* mutable_raw() { return data_.data(); }

  /// Reserves space for `n` points.
  void Reserve(size_t n) { data_.reserve(n * dim_); }

  /// Largest coordinate value over all points and dimensions (paper's Ndom
  /// anchor). Returns 0 for an empty dataset.
  Scalar MaxValue() const {
    Scalar m = 0;
    for (Scalar v : data_) {
      if (v > m) m = v;
    }
    return m;
  }

 private:
  size_t dim_;
  std::vector<Scalar> data_;
};

}  // namespace eeb

#endif  // EEB_COMMON_DATASET_H_
