#ifndef EEB_COMMON_MUTEX_H_
#define EEB_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace eeb {

// Capability-annotated wrapper around std::mutex (the LevelDB/Abseil
// idiom). libstdc++'s std::mutex carries no `capability` attribute, so
// Clang's thread-safety analysis cannot track it; this wrapper is what
// makes EEB_GUARDED_BY(mu_) provable. Runtime behavior is exactly a
// std::mutex — TSan sees the same lock, and the no-op annotation path
// compiles to identical code under GCC.
class EEB_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() EEB_ACQUIRE() { mu_.lock(); }
  void Unlock() EEB_RELEASE() { mu_.unlock(); }
  bool TryLock() EEB_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  // Tells the analysis (not the runtime) that the mutex is held on entry;
  // use in helpers reached only from critical sections the analysis cannot
  // see through (e.g. type-erased callbacks).
  void AssertHeld() EEB_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

// RAII lock for Mutex; the SCOPED_CAPABILITY attribute lets the analysis
// treat construction as acquire and destruction as release.
class EEB_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) EEB_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() EEB_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable usable with eeb::Mutex.
//
// Wait takes the mutex as a parameter (not a constructor-bound member) so
// the EEB_REQUIRES(mu) expression syntactically matches the capability the
// caller actually holds — Clang substitutes parameter expressions, which
// it cannot do for a pointer stashed at construction time.
//
// Callers must use the analyzable shape
//
//   mu_.Lock();
//   while (!predicate()) cv_.Wait(mu_);
//   ...
//   mu_.Unlock();
//
// rather than std::condition_variable's lambda-predicate overloads: the
// analysis treats lambdas as separate unannotated functions, so a
// predicate reading guarded state inside `cv.wait(lock, pred)` would
// either warn or silently escape checking.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) EEB_REQUIRES(mu) {
    // adopt_lock: wrap the already-held native mutex for the wait, then
    // release() so the wrapper does not unlock it on scope exit — the
    // caller still owns the critical section when Wait returns.
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  template <class Clock, class Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      EEB_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  template <class Rep, class Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      EEB_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(lock, timeout);
    lock.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace eeb

#endif  // EEB_COMMON_MUTEX_H_
