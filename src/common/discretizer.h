// Maps real-valued coordinates into the integer domain [0, Ndom) that
// histograms operate on (paper Sec. 3.5 footnote: "applying discretization on
// floating-point values").

#ifndef EEB_COMMON_DISCRETIZER_H_
#define EEB_COMMON_DISCRETIZER_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/types.h"

namespace eeb {

/// Affine value <-> bin mapping. For datasets that are already integral in
/// [0, Ndom) (our generated surrogates) this is the identity.
class Discretizer {
 public:
  /// Identity mapping over [0, ndom).
  explicit Discretizer(uint32_t ndom)
      : ndom_(ndom), lo_(0.0), scale_(1.0) {}

  /// Maps [lo, hi] onto bins [0, ndom).
  Discretizer(uint32_t ndom, double lo, double hi)
      : ndom_(ndom),
        lo_(lo),
        scale_(hi > lo ? static_cast<double>(ndom) / (hi - lo) : 1.0) {}

  /// Bin index of a value; clamped to the domain.
  uint32_t ToBin(Scalar v) const {
    double x = (static_cast<double>(v) - lo_) * scale_;
    long b = std::lround(std::floor(x));
    if (b < 0) b = 0;
    if (b >= static_cast<long>(ndom_)) b = static_cast<long>(ndom_) - 1;
    return static_cast<uint32_t>(b);
  }

  /// Lower edge of a bin in value space.
  double BinLower(uint32_t bin) const { return lo_ + bin / scale_; }

  /// Upper edge of a bin in value space (inclusive end of its interval).
  double BinUpper(uint32_t bin) const { return lo_ + (bin + 1) / scale_; }

  uint32_t ndom() const { return ndom_; }

 private:
  uint32_t ndom_;
  double lo_;
  double scale_;
};

}  // namespace eeb

#endif  // EEB_COMMON_DISCRETIZER_H_
