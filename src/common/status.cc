#include "common/status.h"

namespace eeb {

std::string Status::ToString() const {
  const char* name = "Unknown";
  switch (code_) {
    case Code::kOk:
      return "OK";
    case Code::kNotFound:
      name = "NotFound";
      break;
    case Code::kInvalidArgument:
      name = "InvalidArgument";
      break;
    case Code::kIOError:
      name = "IOError";
      break;
    case Code::kCorruption:
      name = "Corruption";
      break;
    case Code::kNotSupported:
      name = "NotSupported";
      break;
    case Code::kInternal:
      name = "Internal";
      break;
  }
  std::string out(name);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace eeb
