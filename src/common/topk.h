// Bounded max-heap that keeps the k smallest (distance, id) pairs seen so
// far — the standard kNN accumulator.

#ifndef EEB_COMMON_TOPK_H_
#define EEB_COMMON_TOPK_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <queue>
#include <vector>

#include "common/types.h"

namespace eeb {

/// One kNN answer entry.
struct Neighbor {
  PointId id = kInvalidPointId;
  double dist = std::numeric_limits<double>::infinity();

  bool operator<(const Neighbor& o) const {
    if (dist != o.dist) return dist < o.dist;
    return id < o.id;  // deterministic tie-break by id
  }
};

/// Keeps the k nearest candidates pushed into it.
class TopK {
 public:
  explicit TopK(size_t k) : k_(k) {}

  /// Current pruning threshold: distance of the k-th best so far, or +inf if
  /// fewer than k entries are present.
  double Threshold() const {
    return heap_.size() < k_ ? std::numeric_limits<double>::infinity()
                             : heap_.top().dist;
  }

  bool Full() const { return heap_.size() >= k_; }
  size_t size() const { return heap_.size(); }

  /// Offers a candidate; keeps it only if it improves the current top-k.
  void Push(PointId id, double dist) {
    if (heap_.size() < k_) {
      heap_.push({id, dist});
    } else if (Neighbor{id, dist} < heap_.top()) {
      heap_.pop();
      heap_.push({id, dist});
    }
  }

  /// Extracts the result sorted ascending by distance (ties by id).
  std::vector<Neighbor> TakeSorted() {
    std::vector<Neighbor> out;
    out.reserve(heap_.size());
    while (!heap_.empty()) {
      out.push_back(heap_.top());
      heap_.pop();
    }
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  struct Cmp {
    bool operator()(const Neighbor& a, const Neighbor& b) const {
      return a < b;  // max-heap on (dist, id)
    }
  };

  size_t k_;
  std::priority_queue<Neighbor, std::vector<Neighbor>, Cmp> heap_;
};

}  // namespace eeb

#endif  // EEB_COMMON_TOPK_H_
