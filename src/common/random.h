// Deterministic pseudo-random generation. Every randomized component in the
// library takes an explicit seed so benchmark tables reproduce bit-for-bit.

#ifndef EEB_COMMON_RANDOM_H_
#define EEB_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace eeb {

/// xoshiro256** generator seeded via SplitMix64. Fast, decent quality,
/// fully deterministic across platforms (unlike std::mt19937 distributions).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state.
    uint64_t x = seed;
    for (int i = 0; i < 4; ++i) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s_[i] = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return Next() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Standard normal via Box-Muller (no cached second value; simple and
  /// deterministic).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

}  // namespace eeb

#endif  // EEB_COMMON_RANDOM_H_
