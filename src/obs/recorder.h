// Flight recorder: an always-on, low-overhead diagnostic ring that retains
// the last N per-query summaries plus a tail-sampled set of "interesting"
// queries (slow, degraded, corruption-hit, deadline-cut) with their full
// explain records. Intended to answer "what was the serving path doing just
// now, and why was *that* query slow" without enabling tracing.
//
// Write path: each thread claims a ring entry with one relaxed fetch_add and
// publishes the fixed-size record through a per-entry seqlock whose words
// are plain atomics — no mutex, no allocation, and safe under TSan. Readers
// (dump/snapshot) make a single validated pass per entry and skip torn
// reads, so diagnostics never stall the serving threads.
//
// Tail retention (the slow-query list) is off the hot path for normal
// queries: only records that qualify take a mutex.

#ifndef EEB_OBS_RECORDER_H_
#define EEB_OBS_RECORDER_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <cstring>
#include <deque>
#include <iosfwd>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace eeb::obs {

/// Why a query's answer is degraded (best-effort instead of exact).
/// Priority order when several apply: corruption > read failure > deadline.
enum class DegradedCause : uint8_t {
  kNone = 0,
  kCorruption = 1,   // a page failed its checksum during refinement
  kReadFailure = 2,  // I/O error persisted through retries
  kDeadline = 3,     // per-query deadline cut refinement short
};

const char* DegradedCauseName(DegradedCause cause);

/// Why a query was shed (never executed) by admission control
/// (docs/ROBUSTNESS.md). A shed query has an empty result and shed=true in
/// its QueryResult; it is counted separately from degraded queries, whose
/// answers are best-effort but real.
enum class ShedCause : uint8_t {
  kNone = 0,
  kQueueFull = 1,        // shed policy: TryPush found the queue at capacity
  kQueueTimeout = 2,     // timeout policy: the bounded producer wait expired
  kDeadlineExpired = 3,  // queue wait consumed the end-to-end deadline
  kBrownout = 4,         // HealthMonitor in shedding state refused admission
};

const char* ShedCauseName(ShedCause cause);

/// Compact per-query explain record: enough to reconstruct what Algorithm 1
/// did for one query — candidate funnel, bounds, I/O, cache generation —
/// without per-candidate events. Trivially copyable on purpose: the flight
/// recorder publishes it through atomic words.
struct QueryExplain {
  uint64_t cache_generation = 0;  // which published cache answered
  double lbk = 0.0;               // k-th smallest cached lower bound
  double ubk = 0.0;               // k-th smallest cached upper bound
  double gen_seconds = 0.0;       // candidate generation CPU
  double reduce_seconds = 0.0;    // cache-probe reduction CPU
  double refine_seconds = 0.0;    // refinement CPU (I/O excluded)
  uint32_t k = 0;
  uint32_t candidates = 0;     // from candidate generation
  uint32_t cache_hits = 0;     // candidates with cached code bounds
  uint32_t pruned = 0;         // dropped by lb > ubk
  uint32_t true_results = 0;   // accepted by ub < lbk (no refinement)
  uint32_t remaining = 0;      // survivors entering refinement
  uint32_t fetched = 0;        // points actually read during refinement
  uint32_t point_reads = 0;    // storage-level point reads issued
  uint32_t pages_read = 0;     // total page reads issued
  uint32_t distinct_pages = 0; // unique pages touched (coalescing headroom)
  uint32_t substituted = 0;    // answers substituted from cached bounds
  uint32_t read_failures = 0;  // refinement reads that failed
  DegradedCause degraded_cause = DegradedCause::kNone;
  ShedCause shed_cause = ShedCause::kNone;  // non-kNone => query never ran
  uint8_t breaker_state = 0;   // storage circuit breaker at record time
                               // (CircuitBreakerEnv::State numeric value)
  uint8_t pad_[5] = {};        // keep sizeof a multiple of 8 explicitly
  double queue_wait_ms = 0.0;  // admission-to-dequeue wait (Serve path)
};
static_assert(std::is_trivially_copyable_v<QueryExplain>);
static_assert(sizeof(QueryExplain) % 8 == 0);

/// One flight-recorder entry: identity, outcome, and the explain record.
struct QueryRecord {
  uint64_t seq = 0;          // recorder-global order (1-based; 0 = empty)
  uint64_t query_index = 0;  // caller's index within its batch
  double response_seconds = 0.0;  // modeled response (CPU + disk model)
  QueryExplain explain;
};
static_assert(std::is_trivially_copyable_v<QueryRecord>);
static_assert(sizeof(QueryRecord) % 8 == 0);

/// Renders one explain record / query record as a JSON object. Shared by
/// `eeb_cli --explain` and the recorder dumps so the schema cannot drift.
void AppendExplainJson(const QueryExplain& e, std::string* out);
void AppendQueryRecordJson(const QueryRecord& r, std::string* out);
std::string ExplainJson(const QueryExplain& e);

class FlightRecorder {
 public:
  struct Options {
    // Ring capacity per thread slot; total retained summaries is up to
    // kSlots * ring_capacity across however many slots threads touched.
    size_t ring_capacity = 256;
    // Queries at or above this modeled-response threshold are retained with
    // their full record. 0 disables the slowness criterion (degraded and
    // corruption-hit queries are always retained).
    double slow_threshold_seconds = 0.0;
    // Bound on the retained slow/degraded list (oldest evicted first).
    size_t max_retained_slow = 256;
  };

  FlightRecorder() : FlightRecorder(Options()) {}
  explicit FlightRecorder(Options options);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records one finished query. Assigns and returns its recorder sequence
  /// number. Lock-free unless the record qualifies for tail retention.
  uint64_t Record(QueryRecord record);

  /// Retunes the slowness threshold (e.g. to a live p95 from the windowed
  /// metrics). Takes effect for subsequent Record() calls.
  void set_slow_threshold(double seconds) {
    slow_threshold_bits_.store(std::bit_cast<uint64_t>(seconds),
                               std::memory_order_relaxed);
  }
  double slow_threshold() const {
    return std::bit_cast<double>(
        slow_threshold_bits_.load(std::memory_order_relaxed));
  }

  /// Validated copy of the ring contents, oldest first. Entries a writer
  /// was mid-publish on are skipped (counted in torn_reads()).
  std::vector<QueryRecord> SnapshotRecent() const;

  /// Copy of the tail-retained slow/degraded records, oldest first.
  std::vector<QueryRecord> SlowQueries() const;

  /// {"recorded":…,"slow_threshold":…,"recent":[…],"slow":[…]}
  void DumpJson(std::ostream& os) const;
  std::string DumpJson() const;

  uint64_t recorded() const {
    return seq_.load(std::memory_order_relaxed);
  }
  uint64_t retained_slow_total() const {
    return retained_total_.load(std::memory_order_relaxed);
  }
  uint64_t torn_reads() const {
    return torn_reads_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kSlots = 16;
  static constexpr size_t kWords = sizeof(QueryRecord) / 8;

  // Seqlock cell: even version = stable, odd = write in progress. Payload
  // words are relaxed atomics so concurrent read/write is defined behavior;
  // the version protocol detects (and discards) torn copies.
  struct Cell {
    std::atomic<uint64_t> version{0};
    std::array<std::atomic<uint64_t>, kWords> words{};
  };

  struct alignas(64) Slot {
    std::atomic<uint64_t> cursor{0};  // total writes; next entry = cursor % cap
    std::unique_ptr<Cell[]> cells;
  };

  size_t SlotIndex() const;

  // Seqlock protocol (not expressible to the thread-safety analysis, which
  // models capabilities, not version counters — so the helpers document it):
  //
  //   WriteCell  "acquires" the cell by bumping version to odd (relaxed
  //              load + store — the single-writer-per-cell guarantee comes
  //              from the slot cursor's fetch_add claiming the entry), emits
  //              a release fence, stores the payload words relaxed, emits
  //              another release fence, and "releases" by storing the even
  //              version+2.
  //   ReadCell   reads version (acquire), copies the payload words relaxed,
  //              emits an acquire fence, and re-reads version; the copy is
  //              valid only if both reads saw the same even value.
  //
  // The version load-then-store in WriteCell is the canonical benign
  // read-modify-write on an atomic: entry claiming makes this thread the
  // only writer of the cell until it publishes the even version.
  void WriteCell(Cell& cell, const QueryRecord& record);
  bool ReadCell(const Cell& cell, QueryRecord* out) const;

  const Options options_;
  std::atomic<uint64_t> slow_threshold_bits_;
  std::array<Slot, kSlots> slots_ EEB_UNGUARDED(
      "seqlock-protected: every Slot field is an atomic and the per-cell "
      "version protocol above governs all cross-thread access");
  std::atomic<uint64_t> seq_{0};
  std::atomic<uint64_t> next_slot_{0};
  mutable std::atomic<uint64_t> torn_reads_{0};

  std::atomic<uint64_t> retained_total_{0};
  mutable Mutex slow_mu_;  // tail-retention list; off the normal hot path
  std::deque<QueryRecord> slow_ EEB_GUARDED_BY(slow_mu_);
};

}  // namespace eeb::obs

#endif  // EEB_OBS_RECORDER_H_
