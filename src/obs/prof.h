// Hierarchical phase profiler: RAII scopes accumulate per-phase call counts
// and nanoseconds into a shared tree, so a query's time decomposes into
// "where inside Algorithm 1 did it go" (run_queries/query/refine/read_point)
// without the per-phase Timer plumbing every call site used to hand-roll.
//
// Cost model: a scope costs two steady_clock reads plus two relaxed atomic
// adds on exit; phase-node resolution walks a short sibling list of the
// current node (phases per level are single digits). A null Profiler makes
// every scope a single branch, so instrumented code paths pay nothing when
// profiling is off. Accumulators are relaxed atomics, so threads sharing a
// Profiler race-free interleave (verified under TSan); nesting state is
// thread-local, so each thread sees its own scope stack.
//
// Reading the data: Snapshot() flattens the tree into path-sorted
// PhaseStats with total and self (total minus children) seconds;
// PublishTo() mirrors those into gauges of a MetricsRegistry under
// "prof.<path>.*"; ExportProfileJson() renders the schema-versioned JSON
// the bench artifacts and eeb_cli --profile-out embed.

#ifndef EEB_OBS_PROF_H_
#define EEB_OBS_PROF_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace eeb::obs {

/// Owner of one phase tree. Scopes opened against different Profiler
/// instances do not interact; a System/bench cell typically owns one.
class Profiler {
 public:
  /// One phase, identified by its slash-joined path from the root
  /// ("query/refine/read_point").
  struct PhaseStats {
    std::string path;
    uint64_t calls = 0;
    double total_seconds = 0.0;  ///< wall time inside the phase
    double self_seconds = 0.0;   ///< total minus time inside child phases
  };

  Profiler();
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Path-sorted snapshot of every phase seen so far. Concurrent scopes may
  /// keep recording; the snapshot is a consistent-enough point-in-time read
  /// (each counter is read once, relaxed).
  std::vector<PhaseStats> Snapshot() const;

  /// Zeroes every accumulator but keeps the tree structure (epoch
  /// boundaries: one bench cell ends, the next reuses the phases).
  void Reset();

  /// Mirrors Snapshot() into `registry` as gauges: "prof.<dotted path>"
  /// + ".total_seconds" / ".self_seconds" / ".calls". Gauges are Set, not
  /// Add, so republishing after more work is idempotent per snapshot.
  void PublishTo(MetricsRegistry* registry) const;

 private:
  friend class ProfScope;

  // Tree node. Children form a lock-free singly linked list: insertion
  // CASes the head, readers traverse with acquire loads, nodes are never
  // removed before the Profiler dies. Accumulators are relaxed atomics.
  struct Node {
    explicit Node(const char* n, Node* p) : name(n), parent(p) {}
    const char* name;  // phase name; lives as long as the scope's caller
    Node* parent;
    std::atomic<Node*> first_child{nullptr};
    Node* next_sibling = nullptr;  // written once before CAS-publish
    std::atomic<uint64_t> nanos{0};
    std::atomic<uint64_t> calls{0};
  };

  Node* FindOrAddChild(Node* parent, const char* name) EEB_EXCLUDES(mu_);

  Node root_ EEB_UNGUARDED(
      "tree links are lock-free: first_child is an acquire/release atomic, "
      "siblings and accumulators are written before CAS-publish or are "
      "relaxed atomics"){"", nullptr};
  const uint64_t gen_;  // unique per Profiler; guards stale thread caches
  mutable Mutex mu_;  // serializes node insertion and Reset
  std::vector<std::unique_ptr<Node>> nodes_ EEB_GUARDED_BY(mu_);  // ownership
};

/// RAII phase scope. Opening nests under the innermost scope this thread
/// currently has open against the same Profiler; top-level otherwise.
/// `name` must outlive the Profiler (string literals in practice) and is
/// matched by content, so the same phase named from different translation
/// units lands in one node.
class ProfScope {
 public:
  ProfScope(Profiler* profiler, const char* name);
  ~ProfScope();
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  Profiler* profiler_;  // nullptr: disabled scope, destructor is a no-op
  Profiler::Node* node_ = nullptr;
  Profiler::Node* prev_current_ = nullptr;
  uint64_t prev_gen_ = 0;
  std::chrono::steady_clock::time_point start_;
};

/// Schema-versioned JSON rendering of a profile:
/// {"schema_version":1,"phases":[{"path","calls","total_seconds",
/// "self_seconds"},...]} with phases sorted by path.
void ExportProfileJson(const Profiler& profiler, std::ostream& os);
std::string ExportProfileJson(const Profiler& profiler);

}  // namespace eeb::obs

#endif  // EEB_OBS_PROF_H_
