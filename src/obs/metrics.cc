#include "obs/metrics.h"

namespace eeb::obs {

double LatencyHistogram::Percentile(double p) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  // Same nearest-rank rule as index p * (n - 1) into the sorted values.
  const uint64_t rank =
      static_cast<uint64_t>(p * static_cast<double>(n - 1));
  uint64_t cum = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cum += buckets_[i].load(std::memory_order_relaxed);
    if (cum > rank) return BucketValue(i);
  }
  return max();  // racing Record() calls; fall back to the tracked max
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
  max_bits_.store(0, std::memory_order_relaxed);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<LatencyHistogram>();
  return slot.get();
}

std::vector<std::pair<std::string, uint64_t>> MetricsRegistry::Counters()
    const {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c->value());
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::Gauges() const {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g->value());
  return out;
}

std::vector<std::pair<std::string, MetricsRegistry::HistogramStats>>
MetricsRegistry::Histograms() const {
  MutexLock lock(mu_);
  std::vector<std::pair<std::string, HistogramStats>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramStats s;
    s.count = h->count();
    s.sum = h->sum();
    s.max = h->max();
    s.p50 = h->Percentile(0.50);
    s.p95 = h->Percentile(0.95);
    s.p99 = h->Percentile(0.99);
    out.emplace_back(name, s);
  }
  return out;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

void RecordIfError(MetricsRegistry* registry, const Status& s,
                   const std::string& site) {
  if (s.ok() || registry == nullptr) return;
  registry->GetCounter("status.dropped." + site)->Add();
}

}  // namespace eeb::obs
