// Rolling time-windowed aggregates for live serving telemetry. The
// cumulative MetricsRegistry answers "what happened since process start";
// WindowedMetrics answers "what is happening right now": sliding-window QPS,
// windowed latency percentiles (same log-bucket math as LatencyHistogram,
// so live and cumulative quantiles quantize identically), an EWMA latency,
// windowed cache hit/admit/evict ratios fed by a cache tap, and queue-depth
// / worker-utilization gauges sampled from the thread pool.
//
// The window is a ring of epoch-stamped slices (window_seconds / slices
// wide). Recording touches only the current slice; stale slices are zeroed
// lazily when the epoch advances onto them, so there is no timer thread in
// the hot path. A snapshot merges the slices still inside the window.
//
// Time comes from an injectable monotonic clock (seconds); tests drive a
// fake clock to make slice expiry deterministic. StatsPublisher turns
// snapshots into a JSON-lines stream on a caller-supplied sink at a fixed
// interval — the monitorable live feed for `eeb_cli --stats-interval-ms`.

#ifndef EEB_OBS_WINDOW_H_
#define EEB_OBS_WINDOW_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace eeb::obs {

/// Cumulative cache activity totals pulled from the live cache generation.
/// The window differences successive samples, so the tap just reports
/// totals; it is a std::function because obs sits below cache in the link
/// order and cannot name cache types.
struct CacheTapSample {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t admits = 0;
  uint64_t evictions = 0;
};

/// One shadow-cache simulation's cumulative totals, as reported by the
/// shadow tap. Like the cache tap, a std::function carries these upward:
/// obs cannot name the cache types running the simulations.
struct ShadowTapEntry {
  std::string name;  // valid metric segment ([a-z0-9_]); set by installer
  uint64_t hits = 0;
  uint64_t misses = 0;
};

/// One finished query, as the window sees it.
struct QuerySample {
  double response_seconds = 0.0;  // modeled response (CPU + disk model)
  uint64_t candidates = 0;
  uint64_t cache_hits = 0;
  uint64_t read_failures = 0;
  bool degraded = false;
  bool deadline_hit = false;
  // Dropped by admission control before the engine ran: counted in the shed
  // rate but excluded from latency/QPS/funnel figures (nothing executed).
  bool shed = false;
};

struct WindowOptions {
  double window_seconds = 10.0;
  int slices = 10;
  double ewma_alpha = 0.2;  // weight of the newest latency sample
  // Monotonic now() in seconds. Defaults to steady_clock.
  std::function<double()> now;
};

/// Point-in-time view of the window plus since-construction totals (the
/// latter let callers reconcile windowed rates against cumulative counters).
struct WindowSnapshot {
  double window_seconds = 0.0;  // span the windowed figures cover
  uint64_t queries = 0;
  double qps = 0.0;
  double mean_seconds = 0.0;
  double max_seconds = 0.0;
  double p50_seconds = 0.0;
  double p95_seconds = 0.0;
  double p99_seconds = 0.0;
  double ewma_seconds = 0.0;  // EWMA over all queries, not just the window
  uint64_t candidates = 0;
  uint64_t cache_hits = 0;
  double hit_ratio = 0.0;  // cache_hits / candidates in the window
  uint64_t degraded = 0;
  double degraded_rate = 0.0;
  uint64_t deadline_hits = 0;
  uint64_t read_failures = 0;
  uint64_t shed = 0;      // admission-dropped arrivals in the window
  double shed_rate = 0.0;  // shed / (queries + shed): fraction of arrivals
  uint64_t cache_admits = 0;     // from the cache tap, windowed
  uint64_t cache_evictions = 0;  // from the cache tap, windowed
  double admit_ratio = 0.0;      // admits / misses in the window
  // Latest sampled pool gauges (not windowed; last observation wins).
  uint64_t queue_depth = 0;
  uint64_t busy_workers = 0;
  uint64_t workers = 0;
  double worker_utilization = 0.0;  // busy / workers
  // Latest sampled queue-lifetime stats (cumulative; last observation wins).
  uint64_t queue_capacity = 0;
  uint64_t queue_max_depth = 0;
  uint64_t queue_rejected = 0;
  // Since-construction totals for reconciliation with cumulative counters.
  uint64_t total_queries = 0;
  uint64_t total_candidates = 0;
  uint64_t total_cache_hits = 0;
  uint64_t total_degraded = 0;
  uint64_t total_shed = 0;
  // Windowed per-config shadow-cache simulation results (empty when no
  // shadow tap is installed).
  struct ShadowStat {
    std::string name;
    uint64_t hits = 0;
    uint64_t misses = 0;
    double hit_ratio = 0.0;  // hits / (hits + misses) in the window
  };
  std::vector<ShadowStat> shadows;
};

class WindowedMetrics {
 public:
  explicit WindowedMetrics(WindowOptions options = {});

  WindowedMetrics(const WindowedMetrics&) = delete;
  WindowedMetrics& operator=(const WindowedMetrics&) = delete;

  /// Folds one finished query into the current slice.
  void RecordQuery(const QuerySample& sample) EEB_EXCLUDES(mu_);

  /// Installs the cumulative cache-activity tap. The window differences
  /// successive tap readings into slices at snapshot time; re-installation
  /// (e.g. after a cache generation swap) re-bases the deltas.
  void SetCacheTap(std::function<CacheTapSample()> tap) EEB_EXCLUDES(mu_);

  /// Installs the shadow-cache tap. The tap reports cumulative totals per
  /// simulated configuration (fixed set, stable order); the window
  /// differences successive readings into slices, like the cache tap.
  /// Installation re-bases and resets any in-window shadow history.
  void SetShadowTap(std::function<std::vector<ShadowTapEntry>()> tap)
      EEB_EXCLUDES(mu_);

  /// Records the latest queue/worker observation (sampled, not windowed).
  void SampleQueue(uint64_t queue_depth, uint64_t busy_workers,
                   uint64_t workers);

  /// Records the latest queue-lifetime stats (capacity, high-water depth,
  /// admission rejections). Sampled like SampleQueue: last observation wins.
  void SampleQueueStats(uint64_t capacity, uint64_t max_depth,
                        uint64_t rejected);

  WindowSnapshot GetSnapshot() EEB_EXCLUDES(mu_);

  /// Publishes a snapshot as "live.*" gauges on `registry`.
  void PublishTo(MetricsRegistry* registry) EEB_EXCLUDES(mu_);

  /// Publishes an already-taken snapshot (so one snapshot can feed both the
  /// gauge publication and a JSON line without being taken twice).
  static void PublishSnapshot(const WindowSnapshot& snap,
                              MetricsRegistry* registry);

  const WindowOptions& options() const { return options_; }

 private:
  struct Slice {
    uint64_t epoch = ~uint64_t{0};  // which slice-width interval this holds
    uint64_t queries = 0;
    double sum_seconds = 0.0;
    double max_seconds = 0.0;
    uint64_t candidates = 0;
    uint64_t cache_hits = 0;
    uint64_t degraded = 0;
    uint64_t deadline_hits = 0;
    uint64_t read_failures = 0;
    uint64_t shed = 0;
    uint64_t tap_hits = 0;
    uint64_t tap_misses = 0;
    uint64_t tap_admits = 0;
    uint64_t tap_evictions = 0;
    // Per shadow config, sized once at tap installation; Clear zeroes the
    // elements in place so the hot path never allocates.
    struct ShadowCounts {
      uint64_t hits = 0;
      uint64_t misses = 0;
    };
    std::vector<ShadowCounts> shadow;
    std::array<uint32_t, LatencyHistogram::kNumBuckets> buckets{};

    void Clear(uint64_t new_epoch);
  };

  // Returns the slice for `now`, zeroing it first if its epoch is stale.
  Slice& Touch(double now) EEB_REQUIRES(mu_);
  void DrainTapLocked(double now) EEB_REQUIRES(mu_);
  double PercentileLocked(
      const std::array<uint64_t, LatencyHistogram::kNumBuckets>& buckets,
      uint64_t count, double p, double max_seconds) const EEB_REQUIRES(mu_);

  const WindowOptions options_;
  const double slice_width_;

  Mutex mu_;
  std::vector<Slice> slices_ EEB_GUARDED_BY(mu_);
  double start_time_ EEB_GUARDED_BY(mu_);
  double ewma_seconds_ EEB_GUARDED_BY(mu_) = 0.0;
  bool ewma_primed_ EEB_GUARDED_BY(mu_) = false;
  std::function<CacheTapSample()> tap_ EEB_GUARDED_BY(mu_);
  CacheTapSample tap_base_ EEB_GUARDED_BY(mu_);  // last tap reading
  bool tap_based_ EEB_GUARDED_BY(mu_) = false;
  std::function<std::vector<ShadowTapEntry>()> shadow_tap_
      EEB_GUARDED_BY(mu_);
  std::vector<ShadowTapEntry> shadow_base_ EEB_GUARDED_BY(mu_);
  std::vector<std::string> shadow_names_ EEB_GUARDED_BY(mu_);

  std::atomic<uint64_t> queue_depth_{0};
  std::atomic<uint64_t> busy_workers_{0};
  std::atomic<uint64_t> workers_{0};
  std::atomic<uint64_t> queue_capacity_{0};
  std::atomic<uint64_t> queue_max_depth_{0};
  std::atomic<uint64_t> queue_rejected_{0};

  std::atomic<uint64_t> total_queries_{0};
  std::atomic<uint64_t> total_candidates_{0};
  std::atomic<uint64_t> total_cache_hits_{0};
  std::atomic<uint64_t> total_degraded_{0};
  std::atomic<uint64_t> total_shed_{0};
};

/// Renders one snapshot as a single JSON line (no trailing newline).
std::string WindowSnapshotJson(const WindowSnapshot& snap, double uptime);

/// Periodic snapshot publisher: a background thread that every interval
/// samples the window (after running an optional pre-sample hook, e.g.
/// System::SampleWorkerGauges), publishes "live.*" gauges to `registry`
/// (when non-null), and appends one JSON line to `sink`. The sink must
/// outlive the publisher; Stop() (also run by the destructor) joins the
/// thread and emits one final line so short runs still produce output.
class StatsPublisher {
 public:
  struct Options {
    int interval_ms = 1000;
    std::function<void()> pre_sample;  // runs before each snapshot
  };

  StatsPublisher(WindowedMetrics* window, MetricsRegistry* registry,
                 std::ostream* sink, Options options);
  ~StatsPublisher();

  StatsPublisher(const StatsPublisher&) = delete;
  StatsPublisher& operator=(const StatsPublisher&) = delete;

  /// Idempotent; joins the thread and emits a final snapshot line.
  void Stop() EEB_EXCLUDES(mu_);

  uint64_t lines_published() const {
    return lines_.load(std::memory_order_relaxed);
  }

 private:
  void PublishOnce();
  void Loop() EEB_EXCLUDES(mu_);

  WindowedMetrics* const window_;
  MetricsRegistry* const registry_;
  std::ostream* const sink_;
  const Options options_;
  const double start_time_;

  Mutex mu_;
  CondVar cv_;
  bool stopping_ EEB_GUARDED_BY(mu_) = false;
  bool stopped_ EEB_GUARDED_BY(mu_) = false;
  std::atomic<uint64_t> lines_{0};
  std::thread thread_ EEB_UNGUARDED(
      "spawned in the constructor, joined by Stop/destructor; never touched "
      "while the publisher thread runs");
};

}  // namespace eeb::obs

#endif  // EEB_OBS_WINDOW_H_
