// Per-query trace spans. One QuerySpan covers Algorithm 1's three phases
// (generation / reduction / refinement) with phase timings, the reduction
// counters of Eqn. 1, and an optional stream of cause-tagged events: cache
// hit, early prune (lb > ubk), true-result detection (ub < lbk), eager miss
// fetch, refinement fetch, first touch of a disk page. Spans export as one
// JSONL line per query, so a sweep's traces pipe straight into jq/pandas.
//
// Tracing is opt-in: the engine only records when a Tracer is attached, so
// the untraced hot path pays a single pointer test per query.

#ifndef EEB_OBS_TRACE_H_
#define EEB_OBS_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"

namespace eeb::obs {

enum class TraceEventType : uint8_t {
  kCacheHit,    ///< cache probe returned [lb, ub]; value = lb
  kCacheMiss,   ///< cache probe missed
  kEagerFetch,  ///< miss resolved from disk during reduction (footnote 6)
  kEarlyPrune,  ///< lb > ubk, candidate dropped without I/O
  kTrueResult,  ///< ub < lbk, candidate accepted without I/O
  kFetch,       ///< refinement fetch; value = exact distance
  kPageRead,    ///< first touch of a disk page this query; id = page number
  kReadFailure,  ///< disk read ultimately failed (post-retry); value = 0
  kDegraded,     ///< candidate scored from cached bounds; value = used bound
  kDeadlineCut,  ///< deadline_ms exceeded, refinement switched to degraded
  kBreakerOpen,  ///< storage circuit breaker non-closed during this query;
                 ///< value = numeric breaker state (1 open, 2 half-open)
};

const char* TraceEventTypeName(TraceEventType type);

struct TraceEvent {
  TraceEventType type;
  uint64_t id;   ///< point id (page number for kPageRead)
  double value;  ///< event-specific scalar (bound, distance, ...)
};

/// One query's worth of telemetry.
struct QuerySpan {
  uint64_t query_id = 0;
  uint64_t k = 0;
  double gen_seconds = 0.0;
  double reduce_seconds = 0.0;
  double refine_seconds = 0.0;
  double modeled_io_seconds = 0.0;  ///< DiskModel over the query's I/O
  double response_seconds = 0.0;    ///< CPU + modeled I/O
  uint64_t candidates = 0;
  uint64_t cache_hits = 0;
  uint64_t pruned = 0;
  uint64_t true_hits = 0;
  uint64_t remaining = 0;
  uint64_t fetched = 0;
  uint64_t degraded = 0;       ///< 1 when any result came from cached bounds
  uint64_t substituted = 0;    ///< candidates resolved without their disk read
  uint64_t read_failures = 0;  ///< reads that failed after the retry budget
  uint64_t dropped_events = 0;  ///< events past max_events_per_span
  std::vector<TraceEvent> events;
};

/// Collects spans for a query stream (single-threaded, like the engine).
class Tracer {
 public:
  /// @param max_events_per_span  cap on per-query events; excess is counted
  ///                             in dropped_events instead of recorded
  /// @param record_events        false keeps only per-span aggregates
  explicit Tracer(size_t max_events_per_span = 4096,
                  bool record_events = true)
      : max_events_(max_events_per_span), record_events_(record_events) {}

  /// Opens a span (closing any span left open by an error path).
  QuerySpan* StartSpan(size_t k);

  /// Appends an event to an open span, respecting the cap.
  void AddEvent(QuerySpan* span, TraceEventType type, uint64_t id,
                double value);

  /// Closes the open span and moves it to spans().
  void EndSpan();

  /// Most recently completed span (mutable so callers can attach modeled
  /// I/O time computed after the engine returns); nullptr if none.
  QuerySpan* last_span() {
    return spans_.empty() ? nullptr : &spans_.back();
  }

  const std::vector<QuerySpan>& spans() const { return spans_; }

  /// All completed spans, one JSON object per line, written to the sink.
  /// Tests pass an std::ostringstream; long-running harnesses can stream
  /// spans to a pipe without materializing the whole trace in memory.
  void WriteJsonl(std::ostream& os) const;

  /// All completed spans as one string (wraps the stream overload).
  std::string ToJsonl() const;

  /// Writes ToJsonl() to `path` (truncating).
  Status WriteJsonl(const std::string& path) const;

  void Clear();

 private:
  size_t max_events_;
  bool record_events_;
  bool active_ = false;
  uint64_t next_id_ = 0;
  QuerySpan current_;
  std::vector<QuerySpan> spans_;
};

}  // namespace eeb::obs

#endif  // EEB_OBS_TRACE_H_
