// Cache introspection: the measurement substrate for cache re-tuning
// decisions (ROADMAP item 4). Three independent instruments behind one
// hot-path entry point, OnAccess(key, hit):
//
//   * A SHARDS-style spatially-sampled reuse-distance tracker. A key is
//     sampled iff hash(key) falls under a fixed threshold (the sampling
//     rate), so the decision is one multiply-free hash plus a compare; the
//     sampled substream feeds an order-statistics structure (a Fenwick tree
//     over arrival positions with periodic compaction) in fixed memory.
//     Sampled stack distances, rescaled by 1/rate, yield the miss-ratio
//     curve MRC(size) for an LRU cache over the same stream — "what hit
//     ratio would we get at a different cache size" without running one.
//
//   * Exact miss classification. Two bitsets over the (aliased) key space —
//     ever-seen and seen-this-generation — classify every miss as
//     compulsory (first access), generation-invalidation (seen before the
//     last cache publication but not since), or capacity (everything
//     else). Each miss increments exactly one cause counter, so
//     compulsory + capacity + invalidation == misses always reconciles.
//
//   * Working-set drift sketches. A small HyperLogLog estimates the
//     distinct-key cardinality of the current access window; on window
//     rotation the sketch is compared with the previous window's to produce
//     a Jaccard-overlap estimate, a read-only drift signal for the
//     maintenance policy.
//
// Everything is sized at construction: the hot path performs no allocation
// and, off the sampled substream, no locking. obs sits below cache/core in
// the link order, so callers push plain integer keys in — this class never
// names a cache type.

#ifndef EEB_OBS_CACHE_ANALYTICS_H_
#define EEB_OBS_CACHE_ANALYTICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace eeb::obs {

class CacheAnalytics {
 public:
  struct Options {
    // SHARDS spatial sampling rate in (0, 1]. 1.0 tracks every key (exact
    // reuse distances — test mode); ~0.01 is the intended production rate.
    double sampling_rate = 0.01;
    // Bound on distinct sampled keys tracked at once. When exceeded, the
    // oldest sampled key is dropped (counted in overflow_evictions).
    size_t max_sampled_keys = 8192;
    // Classifier bitset size; keys are aliased modulo this. Size it at or
    // above the dataset cardinality for exact classification.
    uint64_t key_space = uint64_t{1} << 20;
    // Working-set window length in accesses (sketch rotation period).
    uint64_t ws_window_accesses = 4096;
    // Cache size (items) at which PublishMetrics reports the predicted
    // miss ratio; 0 leaves the gauge unpublished. Also settable later via
    // set_reference_size (e.g. when the live cache is configured).
    uint64_t ref_size_items = 0;
  };

  /// One point of the miss-ratio curve: the predicted LRU miss ratio of a
  /// cache holding `size_items` items over the observed stream.
  struct MrcPoint {
    uint64_t size_items = 0;
    double miss_ratio = 0.0;
  };

  /// Cause-tagged miss totals. Each miss lands in exactly one cause, so
  /// compulsory + capacity + invalidation == misses (read quiesced for an
  /// exact reconciliation; counters are individually exact regardless).
  struct MissBreakdown {
    uint64_t accesses = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t compulsory = 0;
    uint64_t capacity = 0;
    uint64_t invalidation = 0;
  };

  /// Working-set view: estimated distinct keys in the current (partial)
  /// window, the previous full window, and their Jaccard overlap (computed
  /// at the last rotation; 0 until two windows have completed).
  struct WorkingSet {
    double current_cardinality = 0.0;
    double previous_cardinality = 0.0;
    double jaccard = 0.0;
    uint64_t windows = 0;  // completed window rotations
  };

  // Two constructors instead of one defaulted argument: a `= {}` default
  // for a nested struct with member initializers is ill-formed until the
  // enclosing class is complete, but a delegating body is parsed late.
  CacheAnalytics() : CacheAnalytics(Options()) {}
  explicit CacheAnalytics(Options options);

  CacheAnalytics(const CacheAnalytics&) = delete;
  CacheAnalytics& operator=(const CacheAnalytics&) = delete;

  /// Hot-path hook: one cache probe of `key`, which `hit` or missed.
  /// Allocation-free; lock-free except on the sampled substream.
  void OnAccess(uint64_t key, bool hit) EEB_EXCLUDES(rd_mu_, ws_mu_);

  /// Marks a cache generation swap: keys seen before but not after are
  /// classified as invalidation misses on their next miss.
  void NoteGenerationSwap();

  /// Sets the reference size for the published predicted-miss-ratio gauge.
  void set_reference_size(uint64_t items) {
    ref_size_items_.store(items, std::memory_order_relaxed);
  }
  uint64_t reference_size() const {
    return ref_size_items_.load(std::memory_order_relaxed);
  }

  MissBreakdown miss_breakdown() const;
  WorkingSet working_set() const EEB_EXCLUDES(ws_mu_);

  /// The miss-ratio curve from the sampled reuse distances, one point per
  /// distinct log-bucket edge up to the largest observed distance.
  std::vector<MrcPoint> Mrc() const EEB_EXCLUDES(rd_mu_);

  /// Predicted LRU miss ratio at a single cache size (log-interpolated
  /// within the straddled distance bucket). Returns 0 with no samples.
  double PredictedMissRatioAt(uint64_t size_items) const EEB_EXCLUDES(rd_mu_);

  uint64_t total_accesses() const {
    return total_accesses_.load(std::memory_order_relaxed);
  }
  uint64_t sampled_accesses() const EEB_EXCLUDES(rd_mu_);
  uint64_t tracked_keys() const EEB_EXCLUDES(rd_mu_);
  uint64_t overflow_evictions() const EEB_EXCLUDES(rd_mu_);
  uint64_t generation_swaps() const {
    return generation_swaps_.load(std::memory_order_relaxed);
  }
  double sampling_rate() const { return options_.sampling_rate; }

  /// The MRC artifact body: {"sampling_rate":…,"total_accesses":…,
  /// "sampled_accesses":…,"cold_sampled":…,"tracked_keys":…,
  /// "overflow_evictions":…,"miss_classes":{…},"working_set":{…},
  /// "points":[{"size_items":…,"miss_ratio":…},…]}.
  std::string MrcJson() const EEB_EXCLUDES(rd_mu_, ws_mu_);

  /// Binds the "cache.miss.*" counters and "cache.mrc.*" / "cache.ws.*"
  /// gauges; PublishMetrics then moves counter deltas (so a registry
  /// ResetAll loses nothing) and refreshes the gauges.
  void BindMetrics(MetricsRegistry* registry) EEB_EXCLUDES(publish_mu_);
  void PublishMetrics() EEB_EXCLUDES(publish_mu_);

  const Options& options() const { return options_; }

 private:
  // Log-bucketed histogram of rescaled stack distances (items): bucket 0
  // holds distances <= 1 (immediate reuse), bucket i > 0 the half-open
  // range (2^((i-1)/B), 2^(i/B)].
  static constexpr int kDistBucketsPerOctave = 8;
  static constexpr int kDistOctaves = 40;
  static constexpr int kDistBuckets = kDistOctaves * kDistBucketsPerOctave + 1;
  static constexpr size_t kHllRegisters = 256;  // 8 index bits

  static int DistBucket(double d);
  static double DistBucketUpper(int idx);

  struct KeySlot {
    uint64_t key_plus1 = 0;  // 0 = empty
    uint32_t pos = 0;        // arrival position in the Fenwick array
  };

  void SampledAccess(uint64_t key) EEB_EXCLUDES(rd_mu_);
  uint32_t AllocPositionLocked() EEB_REQUIRES(rd_mu_);
  void CompactLocked() EEB_REQUIRES(rd_mu_);
  void EvictOldestSampledLocked() EEB_REQUIRES(rd_mu_);
  void FenwickAdd(size_t pos, int delta) EEB_REQUIRES(rd_mu_);
  uint32_t FenwickPrefix(size_t pos) const EEB_REQUIRES(rd_mu_);
  size_t FenwickFirstOccupied() const EEB_REQUIRES(rd_mu_);
  KeySlot* TableFindLocked(uint64_t key) EEB_REQUIRES(rd_mu_);
  void TableInsertLocked(uint64_t key, uint32_t pos) EEB_REQUIRES(rd_mu_);
  void TableEraseLocked(uint64_t key) EEB_REQUIRES(rd_mu_);
  double HitsAtLocked(double size_items) const EEB_REQUIRES(rd_mu_);

  void HllAdd(uint64_t key);
  void RotateWindow() EEB_EXCLUDES(ws_mu_);
  double EstimateCurrentCardinality() const;

  const Options options_;
  const uint64_t sample_threshold_;  // sampled iff Mix64(key) <= threshold
  const uint64_t key_space_;
  const size_t max_sampled_;
  const size_t position_capacity_;  // Fenwick span before compaction
  const size_t table_mask_;         // open-addressed table size - 1

  // --- miss classification (lock-free) ---
  std::vector<std::atomic<uint64_t>> ever_seen_ EEB_UNGUARDED(
      "bitset words are relaxed atomics updated with fetch_or; the vector "
      "itself is sized in the constructor and never resized");
  std::vector<std::atomic<uint64_t>> seen_this_gen_ EEB_UNGUARDED(
      "bitset words are relaxed atomics; cleared with plain atomic stores "
      "on generation swap, racing fetch_or updates benignly (a concurrent "
      "access lands on one side of the swap)");
  std::atomic<uint64_t> total_accesses_{0};
  std::atomic<uint64_t> total_hits_{0};
  std::atomic<uint64_t> miss_compulsory_{0};
  std::atomic<uint64_t> miss_capacity_{0};
  std::atomic<uint64_t> miss_invalidation_{0};
  std::atomic<uint64_t> generation_swaps_{0};
  std::atomic<uint64_t> ref_size_items_;

  // --- sampled reuse distances (mutex-guarded, sampled substream only) ---
  mutable Mutex rd_mu_;
  std::vector<uint32_t> fenwick_ EEB_GUARDED_BY(rd_mu_);
  std::vector<uint64_t> pos_key_ EEB_GUARDED_BY(rd_mu_);  // key+1; 0 = empty
  std::vector<KeySlot> table_ EEB_GUARDED_BY(rd_mu_);
  size_t next_pos_ EEB_GUARDED_BY(rd_mu_) = 0;
  size_t occupied_ EEB_GUARDED_BY(rd_mu_) = 0;
  std::array<uint64_t, kDistBuckets> dist_hist_ EEB_GUARDED_BY(rd_mu_);
  uint64_t sampled_accesses_ EEB_GUARDED_BY(rd_mu_) = 0;
  uint64_t cold_sampled_ EEB_GUARDED_BY(rd_mu_) = 0;
  uint64_t overflow_evictions_ EEB_GUARDED_BY(rd_mu_) = 0;

  // --- working-set sketches ---
  std::array<std::atomic<uint64_t>, kHllRegisters> hll_cur_ EEB_UNGUARDED(
      "registers are relaxed CAS-max atomics written lock-free; rotation "
      "drains them with exchange, and a concurrent update racing the "
      "rotation lands in one window or the other (bounded smear, by "
      "design)");
  std::atomic<uint64_t> ws_accesses_{0};
  mutable Mutex ws_mu_;
  std::array<uint64_t, kHllRegisters> hll_prev_ EEB_GUARDED_BY(ws_mu_);
  double prev_cardinality_ EEB_GUARDED_BY(ws_mu_) = 0.0;
  double last_jaccard_ EEB_GUARDED_BY(ws_mu_) = 0.0;
  uint64_t windows_completed_ EEB_GUARDED_BY(ws_mu_) = 0;

  // --- delta publication into a MetricsRegistry ---
  mutable Mutex publish_mu_;
  MetricsRegistry* registry_ EEB_GUARDED_BY(publish_mu_) = nullptr;
  MissBreakdown published_ EEB_GUARDED_BY(publish_mu_);
};

}  // namespace eeb::obs

#endif  // EEB_OBS_CACHE_ANALYTICS_H_
