#include "obs/export.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace eeb::obs {
namespace {

std::string PromName(const std::string& name) {
  std::string out = "eeb_";
  for (char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return out;
}

// printf-style formatting into the sink: snapshot values keep the exact
// rendering (%.9g, PRIu64) the exporters have always produced, independent
// of any stream formatting state the caller left behind.
void StreamF(std::ostream& os, const char* fmt, ...) {
  char buf[320];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) os.write(buf, std::min<std::streamsize>(n, sizeof(buf) - 1));
}

}  // namespace

void ExportPrometheus(const MetricsRegistry& registry, std::ostream& os) {
  for (const auto& [name, value] : registry.Counters()) {
    const std::string pn = PromName(name);
    StreamF(os, "# TYPE %s counter\n", pn.c_str());
    StreamF(os, "%s_total %" PRIu64 "\n", pn.c_str(), value);
  }
  for (const auto& [name, value] : registry.Gauges()) {
    const std::string pn = PromName(name);
    StreamF(os, "# TYPE %s gauge\n", pn.c_str());
    StreamF(os, "%s %.9g\n", pn.c_str(), value);
  }
  for (const auto& [name, s] : registry.Histograms()) {
    const std::string pn = PromName(name);
    StreamF(os, "# TYPE %s summary\n", pn.c_str());
    StreamF(os, "%s{quantile=\"0.5\"} %.9g\n", pn.c_str(), s.p50);
    StreamF(os, "%s{quantile=\"0.95\"} %.9g\n", pn.c_str(), s.p95);
    StreamF(os, "%s{quantile=\"0.99\"} %.9g\n", pn.c_str(), s.p99);
    StreamF(os, "%s_sum %.9g\n", pn.c_str(), s.sum);
    StreamF(os, "%s_count %" PRIu64 "\n", pn.c_str(), s.count);
    StreamF(os, "%s_max %.9g\n", pn.c_str(), s.max);
  }
}

std::string ExportPrometheus(const MetricsRegistry& registry) {
  std::ostringstream os;
  ExportPrometheus(registry, os);
  return std::move(os).str();
}

void ExportJson(const MetricsRegistry& registry, std::ostream& os) {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : registry.Counters()) {
    StreamF(os, "%s\"%s\":%" PRIu64, first ? "" : ",", name.c_str(), value);
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : registry.Gauges()) {
    StreamF(os, "%s\"%s\":%.9g", first ? "" : ",", name.c_str(), value);
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, s] : registry.Histograms()) {
    StreamF(os,
            "%s\"%s\":{\"count\":%" PRIu64
            ",\"sum\":%.9g,\"max\":%.9g,\"p50\":%.9g,\"p95\":%.9g,"
            "\"p99\":%.9g}",
            first ? "" : ",", name.c_str(), s.count, s.sum, s.max, s.p50,
            s.p95, s.p99);
    first = false;
  }
  os << "}}";
}

std::string ExportJson(const MetricsRegistry& registry) {
  std::ostringstream os;
  ExportJson(registry, os);
  return std::move(os).str();
}

Status WriteStringToFile(const std::string& path,
                         const std::string& content) {
  // The one place in obs that touches the filesystem directly: obs sits
  // below storage in the link order, so routing through storage::Env would
  // invert the dependency. eeb-lint: allow(env-io)
  std::FILE* f = std::fopen(path.c_str(), "w");
  // These really are I/O failures of this raw write path, and exporter
  // output is never read back through the retrying storage stack.
  // eeb-lint: allow(raw-ioerror)
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int close_rc = std::fclose(f);
  if (written != content.size() || close_rc != 0) {
    return Status::IOError("short write to " + path);  // eeb-lint: allow(raw-ioerror)
  }
  return Status::OK();
}

}  // namespace eeb::obs
