#include "obs/export.h"

#include <algorithm>
#include "obs/cache_analytics.h"
#include <cctype>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace eeb::obs {
namespace {

std::string PromName(const std::string& name) {
  std::string out = "eeb_";
  for (char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return out;
}

// JSON string escaping for metric names embedded as object keys: quote,
// backslash, and control characters (\uXXXX). Values are numeric and need
// no escaping.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", u);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Renders the shared label set as `{k="v",...}` (empty string when there
// are no labels) and with a `quantile` slot for summary samples.
std::string LabelBlock(const PromLabels& labels, const char* quantile) {
  if (labels.empty() && quantile == nullptr) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    out += k;
    out += "=\"";
    out += PromEscapeLabelValue(v);
    out += "\"";
    first = false;
  }
  if (quantile != nullptr) {
    if (!first) out += ",";
    out += "quantile=\"";
    out += quantile;
    out += "\"";
  }
  out += "}";
  return out;
}

// printf-style formatting into the sink: snapshot values keep the exact
// rendering (%.9g, PRIu64) the exporters have always produced, independent
// of any stream formatting state the caller left behind.
void StreamF(std::ostream& os, const char* fmt, ...) {
  char buf[320];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) os.write(buf, std::min<std::streamsize>(n, sizeof(buf) - 1));
}

}  // namespace

bool IsValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  bool segment_has_char = false;
  for (char c : name) {
    if (c == '.') {
      if (!segment_has_char) return false;  // empty segment ("", "a..b")
      segment_has_char = false;
      continue;
    }
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_';
    if (!ok) return false;
    segment_has_char = true;
  }
  return segment_has_char;  // also rejects a trailing dot
}

std::string PromEscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

void ExportPrometheus(const MetricsRegistry& registry, std::ostream& os) {
  ExportPrometheus(registry, os, PromLabels{});
}

void ExportPrometheus(const MetricsRegistry& registry, std::ostream& os,
                      const PromLabels& labels) {
  uint64_t skipped = 0;
  const std::string lb = LabelBlock(labels, nullptr);
  for (const auto& [name, value] : registry.Counters()) {
    if (!IsValidMetricName(name)) {
      ++skipped;
      continue;
    }
    const std::string pn = PromName(name);
    StreamF(os, "# HELP %s %s (counter)\n", pn.c_str(), name.c_str());
    StreamF(os, "# TYPE %s counter\n", pn.c_str());
    StreamF(os, "%s_total%s %" PRIu64 "\n", pn.c_str(), lb.c_str(), value);
  }
  for (const auto& [name, value] : registry.Gauges()) {
    if (!IsValidMetricName(name)) {
      ++skipped;
      continue;
    }
    const std::string pn = PromName(name);
    StreamF(os, "# HELP %s %s (gauge)\n", pn.c_str(), name.c_str());
    StreamF(os, "# TYPE %s gauge\n", pn.c_str());
    StreamF(os, "%s%s %.9g\n", pn.c_str(), lb.c_str(), value);
  }
  for (const auto& [name, s] : registry.Histograms()) {
    if (!IsValidMetricName(name)) {
      ++skipped;
      continue;
    }
    const std::string pn = PromName(name);
    StreamF(os, "# HELP %s %s (histogram)\n", pn.c_str(), name.c_str());
    StreamF(os, "# TYPE %s summary\n", pn.c_str());
    StreamF(os, "%s%s %.9g\n", pn.c_str(),
            LabelBlock(labels, "0.5").c_str(), s.p50);
    StreamF(os, "%s%s %.9g\n", pn.c_str(),
            LabelBlock(labels, "0.95").c_str(), s.p95);
    StreamF(os, "%s%s %.9g\n", pn.c_str(),
            LabelBlock(labels, "0.99").c_str(), s.p99);
    StreamF(os, "%s_sum%s %.9g\n", pn.c_str(), lb.c_str(), s.sum);
    StreamF(os, "%s_count%s %" PRIu64 "\n", pn.c_str(), lb.c_str(), s.count);
    StreamF(os, "%s_max%s %.9g\n", pn.c_str(), lb.c_str(), s.max);
  }
  if (skipped > 0) {
    // Invalid names are a caller bug; surface the drop instead of emitting
    // output a scraper would reject wholesale.
    StreamF(os,
            "# HELP eeb_export_skipped_invalid_names registry names the "
            "exporter refused to emit\n");
    StreamF(os, "# TYPE eeb_export_skipped_invalid_names gauge\n");
    StreamF(os, "eeb_export_skipped_invalid_names%s %" PRIu64 "\n",
            lb.c_str(), skipped);
  }
}

std::string ExportPrometheus(const MetricsRegistry& registry) {
  std::ostringstream os;
  ExportPrometheus(registry, os);
  return std::move(os).str();
}

void ExportJson(const MetricsRegistry& registry, std::ostream& os) {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : registry.Counters()) {
    StreamF(os, "%s\"%s\":%" PRIu64, first ? "" : ",",
            JsonEscape(name).c_str(), value);
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : registry.Gauges()) {
    StreamF(os, "%s\"%s\":%.9g", first ? "" : ",", JsonEscape(name).c_str(),
            value);
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, s] : registry.Histograms()) {
    StreamF(os,
            "%s\"%s\":{\"count\":%" PRIu64
            ",\"sum\":%.9g,\"max\":%.9g,\"p50\":%.9g,\"p95\":%.9g,"
            "\"p99\":%.9g}",
            first ? "" : ",", JsonEscape(name).c_str(), s.count, s.sum, s.max,
            s.p50, s.p95, s.p99);
    first = false;
  }
  os << "}}";
}

std::string ExportJson(const MetricsRegistry& registry) {
  std::ostringstream os;
  ExportJson(registry, os);
  return std::move(os).str();
}

void ExportMrcJson(const CacheAnalytics& analytics, std::ostream& os) {
  const std::string body = analytics.MrcJson();
  os.write(body.data(), static_cast<std::streamsize>(body.size()));
  os.put('\n');
}

std::string ExportMrcJson(const CacheAnalytics& analytics) {
  return analytics.MrcJson() + "\n";
}

Status WriteStringToFile(const std::string& path,
                         const std::string& content) {
  // The one place in obs that touches the filesystem directly: obs sits
  // below storage in the link order, so routing through storage::Env would
  // invert the dependency. eeb-lint: allow(env-io)
  std::FILE* f = std::fopen(path.c_str(), "w");
  // These really are I/O failures of this raw write path, and exporter
  // output is never read back through the retrying storage stack.
  // eeb-lint: allow(raw-ioerror)
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int close_rc = std::fclose(f);
  if (written != content.size() || close_rc != 0) {
    return Status::IOError("short write to " + path);  // eeb-lint: allow(raw-ioerror)
  }
  return Status::OK();
}

}  // namespace eeb::obs
