#include "obs/export.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace eeb::obs {
namespace {

std::string PromName(const std::string& name) {
  std::string out = "eeb_";
  for (char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0) ? c : '_';
  }
  return out;
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, std::min<size_t>(n, sizeof(buf) - 1));
}

}  // namespace

std::string ExportPrometheus(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& [name, value] : registry.Counters()) {
    const std::string pn = PromName(name);
    AppendF(&out, "# TYPE %s counter\n", pn.c_str());
    AppendF(&out, "%s_total %" PRIu64 "\n", pn.c_str(), value);
  }
  for (const auto& [name, value] : registry.Gauges()) {
    const std::string pn = PromName(name);
    AppendF(&out, "# TYPE %s gauge\n", pn.c_str());
    AppendF(&out, "%s %.9g\n", pn.c_str(), value);
  }
  for (const auto& [name, s] : registry.Histograms()) {
    const std::string pn = PromName(name);
    AppendF(&out, "# TYPE %s summary\n", pn.c_str());
    AppendF(&out, "%s{quantile=\"0.5\"} %.9g\n", pn.c_str(), s.p50);
    AppendF(&out, "%s{quantile=\"0.95\"} %.9g\n", pn.c_str(), s.p95);
    AppendF(&out, "%s{quantile=\"0.99\"} %.9g\n", pn.c_str(), s.p99);
    AppendF(&out, "%s_sum %.9g\n", pn.c_str(), s.sum);
    AppendF(&out, "%s_count %" PRIu64 "\n", pn.c_str(), s.count);
    AppendF(&out, "%s_max %.9g\n", pn.c_str(), s.max);
  }
  return out;
}

std::string ExportJson(const MetricsRegistry& registry) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : registry.Counters()) {
    AppendF(&out, "%s\"%s\":%" PRIu64, first ? "" : ",", name.c_str(), value);
    first = false;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : registry.Gauges()) {
    AppendF(&out, "%s\"%s\":%.9g", first ? "" : ",", name.c_str(), value);
    first = false;
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, s] : registry.Histograms()) {
    AppendF(&out,
            "%s\"%s\":{\"count\":%" PRIu64
            ",\"sum\":%.9g,\"max\":%.9g,\"p50\":%.9g,\"p95\":%.9g,"
            "\"p99\":%.9g}",
            first ? "" : ",", name.c_str(), s.count, s.sum, s.max, s.p50,
            s.p95, s.p99);
    first = false;
  }
  out += "}}";
  return out;
}

Status WriteStringToFile(const std::string& path,
                         const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  const size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int close_rc = std::fclose(f);
  if (written != content.size() || close_rc != 0) {
    return Status::IOError("short write to " + path);
  }
  return Status::OK();
}

}  // namespace eeb::obs
