#include "obs/recorder.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace eeb::obs {
namespace {

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) {
    out->append(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
  }
}

// JSON has no literal for non-finite numbers (%g would emit `inf`/`nan`
// and corrupt the dump); an unbounded ubk is rendered as null instead.
void AppendJsonDouble(std::string* out, double v) {
  if (std::isfinite(v)) {
    AppendF(out, "%.9g", v);
  } else {
    out->append("null");
  }
}

}  // namespace

const char* DegradedCauseName(DegradedCause cause) {
  switch (cause) {
    case DegradedCause::kNone:
      return "none";
    case DegradedCause::kCorruption:
      return "corruption";
    case DegradedCause::kReadFailure:
      return "read_failure";
    case DegradedCause::kDeadline:
      return "deadline";
  }
  return "unknown";
}

const char* ShedCauseName(ShedCause cause) {
  switch (cause) {
    case ShedCause::kNone:
      return "none";
    case ShedCause::kQueueFull:
      return "queue_full";
    case ShedCause::kQueueTimeout:
      return "queue_timeout";
    case ShedCause::kDeadlineExpired:
      return "deadline_expired";
    case ShedCause::kBrownout:
      return "brownout";
  }
  return "unknown";
}

void AppendExplainJson(const QueryExplain& e, std::string* out) {
  AppendF(out,
          "{\"cache_generation\":%" PRIu64
          ",\"k\":%u,\"candidates\":%u,\"cache_hits\":%u,\"pruned\":%u,"
          "\"true_results\":%u,\"remaining\":%u,\"fetched\":%u",
          e.cache_generation, e.k, e.candidates, e.cache_hits, e.pruned,
          e.true_results, e.remaining, e.fetched);
  AppendF(out,
          ",\"point_reads\":%u,\"pages_read\":%u,\"distinct_pages\":%u,"
          "\"substituted\":%u,\"read_failures\":%u,\"degraded_cause\":\"%s\"",
          e.point_reads, e.pages_read, e.distinct_pages, e.substituted,
          e.read_failures, DegradedCauseName(e.degraded_cause));
  AppendF(out,
          ",\"shed_cause\":\"%s\",\"breaker_state\":%u,"
          "\"queue_wait_ms\":%.9g",
          ShedCauseName(e.shed_cause), static_cast<unsigned>(e.breaker_state),
          e.queue_wait_ms);
  out->append(",\"lbk\":");
  AppendJsonDouble(out, e.lbk);
  out->append(",\"ubk\":");
  AppendJsonDouble(out, e.ubk);
  AppendF(out,
          ",\"gen_seconds\":%.9g,\"reduce_seconds\":%.9g,"
          "\"refine_seconds\":%.9g}",
          e.gen_seconds, e.reduce_seconds, e.refine_seconds);
}

void AppendQueryRecordJson(const QueryRecord& r, std::string* out) {
  AppendF(out,
          "{\"seq\":%" PRIu64 ",\"query_index\":%" PRIu64
          ",\"response_seconds\":%.9g,\"explain\":",
          r.seq, r.query_index, r.response_seconds);
  AppendExplainJson(r.explain, out);
  out->append("}");
}

std::string ExplainJson(const QueryExplain& e) {
  std::string out;
  AppendExplainJson(e, &out);
  return out;
}

FlightRecorder::FlightRecorder(Options options)
    : options_([&options] {
        if (options.ring_capacity == 0) options.ring_capacity = 1;
        return options;
      }()),
      slow_threshold_bits_(
          std::bit_cast<uint64_t>(options_.slow_threshold_seconds)) {
  for (auto& slot : slots_) {
    slot.cells = std::make_unique<Cell[]>(options_.ring_capacity);
  }
}

size_t FlightRecorder::SlotIndex() const {
  // One slot per thread while threads <= kSlots; beyond that, slots are
  // shared and the seqlock protocol keeps sharing safe (torn reads are
  // detected and skipped, never handed out).
  thread_local size_t slot = ~size_t{0};
  if (slot == ~size_t{0}) {
    slot = const_cast<FlightRecorder*>(this)->next_slot_.fetch_add(
               1, std::memory_order_relaxed) %
           kSlots;
  }
  return slot;
}

void FlightRecorder::WriteCell(Cell& cell, const QueryRecord& record) {
  std::array<uint64_t, kWords> words;
  std::memcpy(words.data(), &record, sizeof(record));
  const uint64_t v = cell.version.load(std::memory_order_relaxed);
  cell.version.store(v + 1, std::memory_order_relaxed);  // odd: in progress
  std::atomic_thread_fence(std::memory_order_release);
  for (size_t i = 0; i < kWords; ++i) {
    cell.words[i].store(words[i], std::memory_order_relaxed);
  }
  // Seqlock writer side: slot-cursor claiming (fetch_add in Record) makes
  // this thread the cell's only writer until the even version publishes,
  // so the load-then-store version bump cannot race.
  // eeb-lint: allow(atomic-misuse)
  cell.version.store(v + 2, std::memory_order_release);  // even: stable
}

bool FlightRecorder::ReadCell(const Cell& cell, QueryRecord* out) const {
  const uint64_t v1 = cell.version.load(std::memory_order_acquire);
  if (v1 == 0 || (v1 & 1) != 0) return false;  // empty or mid-write
  std::array<uint64_t, kWords> words;
  for (size_t i = 0; i < kWords; ++i) {
    words[i] = cell.words[i].load(std::memory_order_relaxed);
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  if (cell.version.load(std::memory_order_relaxed) != v1) {
    torn_reads_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  // QueryRecord is trivially copyable (static_assert in the header); the
  // void* cast silences -Wclass-memaccess about the default member
  // initializers being bypassed — they are immediately overwritten.
  std::memcpy(static_cast<void*>(out), words.data(), sizeof(*out));
  return true;
}

uint64_t FlightRecorder::Record(QueryRecord record) {
  record.seq = seq_.fetch_add(1, std::memory_order_relaxed) + 1;

  Slot& slot = slots_[SlotIndex()];
  const uint64_t n = slot.cursor.fetch_add(1, std::memory_order_relaxed);
  WriteCell(slot.cells[n % options_.ring_capacity], record);

  const double threshold = slow_threshold();
  const bool slow = threshold > 0.0 && record.response_seconds >= threshold;
  const bool degraded =
      record.explain.degraded_cause != DegradedCause::kNone ||
      record.explain.read_failures > 0;
  // Shed queries are always interesting: they are the direct evidence of
  // admission control acting, and there are few of them relative to traffic
  // in any healthy window.
  const bool shed = record.explain.shed_cause != ShedCause::kNone;
  if (slow || degraded || shed) {
    retained_total_.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(slow_mu_);
    slow_.push_back(record);
    while (slow_.size() > options_.max_retained_slow) slow_.pop_front();
  }
  return record.seq;
}

std::vector<QueryRecord> FlightRecorder::SnapshotRecent() const {
  std::vector<QueryRecord> out;
  for (const Slot& slot : slots_) {
    const uint64_t written = slot.cursor.load(std::memory_order_acquire);
    const uint64_t live = std::min<uint64_t>(written, options_.ring_capacity);
    for (uint64_t i = 0; i < live; ++i) {
      QueryRecord r;
      if (ReadCell(slot.cells[i], &r) && r.seq != 0) out.push_back(r);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const QueryRecord& a, const QueryRecord& b) {
              return a.seq < b.seq;
            });
  return out;
}

std::vector<QueryRecord> FlightRecorder::SlowQueries() const {
  MutexLock lock(slow_mu_);
  return {slow_.begin(), slow_.end()};
}

void FlightRecorder::DumpJson(std::ostream& os) const {
  const std::vector<QueryRecord> recent = SnapshotRecent();
  const std::vector<QueryRecord> slow = SlowQueries();
  std::string out;
  AppendF(&out,
          "{\"recorded\":%" PRIu64 ",\"retained_slow_total\":%" PRIu64
          ",\"torn_reads\":%" PRIu64 ",\"slow_threshold_seconds\":%.9g",
          recorded(), retained_slow_total(), torn_reads(), slow_threshold());
  out.append(",\"recent\":[");
  for (size_t i = 0; i < recent.size(); ++i) {
    if (i > 0) out.append(",");
    AppendQueryRecordJson(recent[i], &out);
  }
  out.append("],\"slow\":[");
  for (size_t i = 0; i < slow.size(); ++i) {
    if (i > 0) out.append(",");
    AppendQueryRecordJson(slow[i], &out);
  }
  out.append("]}\n");
  os.write(out.data(), static_cast<std::streamsize>(out.size()));
}

std::string FlightRecorder::DumpJson() const {
  std::ostringstream os;
  DumpJson(os);
  return std::move(os).str();
}

}  // namespace eeb::obs
