#include "obs/trace.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "obs/export.h"

namespace eeb::obs {
namespace {

// printf-style formatting into the sink (same rationale as the exporters:
// stable rendering regardless of caller stream state).
void StreamF(std::ostream& os, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) os.write(buf, std::min<std::streamsize>(n, sizeof(buf) - 1));
}

}  // namespace

const char* TraceEventTypeName(TraceEventType type) {
  switch (type) {
    case TraceEventType::kCacheHit:
      return "cache_hit";
    case TraceEventType::kCacheMiss:
      return "cache_miss";
    case TraceEventType::kEagerFetch:
      return "eager_fetch";
    case TraceEventType::kEarlyPrune:
      return "early_prune";
    case TraceEventType::kTrueResult:
      return "true_result";
    case TraceEventType::kFetch:
      return "fetch";
    case TraceEventType::kPageRead:
      return "page_read";
    case TraceEventType::kReadFailure:
      return "read_failure";
    case TraceEventType::kDegraded:
      return "degraded";
    case TraceEventType::kDeadlineCut:
      return "deadline_cut";
    case TraceEventType::kBreakerOpen:
      return "breaker_open";
  }
  return "?";
}

QuerySpan* Tracer::StartSpan(size_t k) {
  if (active_) EndSpan();
  current_ = QuerySpan{};
  current_.query_id = next_id_++;
  current_.k = k;
  active_ = true;
  return &current_;
}

void Tracer::AddEvent(QuerySpan* span, TraceEventType type, uint64_t id,
                      double value) {
  if (span == nullptr) return;
  if (!record_events_ || span->events.size() >= max_events_) {
    span->dropped_events++;
    return;
  }
  span->events.push_back({type, id, value});
}

void Tracer::EndSpan() {
  if (!active_) return;
  spans_.push_back(std::move(current_));
  current_ = QuerySpan{};
  active_ = false;
}

void Tracer::WriteJsonl(std::ostream& os) const {
  for (const QuerySpan& s : spans_) {
    StreamF(os,
            "{\"query\":%" PRIu64 ",\"k\":%" PRIu64
            ",\"gen_seconds\":%.9g,\"reduce_seconds\":%.9g,"
            "\"refine_seconds\":%.9g,\"modeled_io_seconds\":%.9g,"
            "\"response_seconds\":%.9g,\"candidates\":%" PRIu64
            ",\"cache_hits\":%" PRIu64 ",\"pruned\":%" PRIu64
            ",\"true_hits\":%" PRIu64 ",\"remaining\":%" PRIu64
            ",\"fetched\":%" PRIu64 ",\"degraded\":%" PRIu64
            ",\"substituted\":%" PRIu64 ",\"read_failures\":%" PRIu64
            ",\"dropped_events\":%" PRIu64 ",\"events\":[",
            s.query_id, s.k, s.gen_seconds, s.reduce_seconds,
            s.refine_seconds, s.modeled_io_seconds, s.response_seconds,
            s.candidates, s.cache_hits, s.pruned, s.true_hits, s.remaining,
            s.fetched, s.degraded, s.substituted, s.read_failures,
            s.dropped_events);
    for (size_t i = 0; i < s.events.size(); ++i) {
      const TraceEvent& e = s.events[i];
      StreamF(os, "%s{\"t\":\"%s\",\"id\":%" PRIu64 ",\"v\":%.9g}",
              i == 0 ? "" : ",", TraceEventTypeName(e.type), e.id, e.value);
    }
    os << "]}\n";
  }
}

std::string Tracer::ToJsonl() const {
  std::ostringstream os;
  WriteJsonl(os);
  return std::move(os).str();
}

Status Tracer::WriteJsonl(const std::string& path) const {
  return WriteStringToFile(path, ToJsonl());
}

void Tracer::Clear() {
  spans_.clear();
  current_ = QuerySpan{};
  active_ = false;
  next_id_ = 0;
}

}  // namespace eeb::obs
