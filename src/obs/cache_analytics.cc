#include "obs/cache_analytics.h"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>

namespace eeb::obs {
namespace {

// SplitMix64 finalizer: the spatial-sampling hash. Keys with
// Mix64(key) <= threshold form the sampled substream, so the sampling
// decision is two multiplies and a compare — no state, no branch history.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

uint64_t ThresholdFor(double rate) {
  if (rate >= 1.0) return ~uint64_t{0};
  // rate < 1 keeps the product below 2^64, so the cast is defined.
  const double scaled = rate * 18446744073709551616.0;  // 2^64
  return scaled <= 1.0 ? 0 : static_cast<uint64_t>(scaled) - 1;
}

size_t NextPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

CacheAnalytics::Options Sanitize(CacheAnalytics::Options options) {
  if (!(options.sampling_rate > 0.0)) options.sampling_rate = 0.01;
  if (options.sampling_rate > 1.0) options.sampling_rate = 1.0;
  options.max_sampled_keys = std::max<size_t>(options.max_sampled_keys, 16);
  options.key_space = std::max<uint64_t>(options.key_space, 64);
  options.ws_window_accesses =
      std::max<uint64_t>(options.ws_window_accesses, 64);
  return options;
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) {
    out->append(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
  }
}

// Standard HyperLogLog estimator with the small-range correction; the
// large-range correction is irrelevant at these cardinalities.
double EstimateFromRegisters(const uint64_t* regs, size_t m) {
  double sum = 0.0;
  size_t zeros = 0;
  for (size_t i = 0; i < m; ++i) {
    sum += std::ldexp(1.0, -static_cast<int>(regs[i]));
    if (regs[i] == 0) ++zeros;
  }
  const double md = static_cast<double>(m);
  const double alpha = 0.7213 / (1.0 + 1.079 / md);
  double e = alpha * md * md / sum;
  if (e <= 2.5 * md && zeros > 0) {
    e = md * std::log(md / static_cast<double>(zeros));
  }
  return e;
}

}  // namespace

int CacheAnalytics::DistBucket(double d) {
  if (!(d > 1.0)) return 0;
  const int idx = 1 + static_cast<int>(std::log2(d) * kDistBucketsPerOctave);
  return idx >= kDistBuckets ? kDistBuckets - 1 : idx;
}

double CacheAnalytics::DistBucketUpper(int idx) {
  if (idx <= 0) return 1.0;
  return std::exp2(static_cast<double>(idx) / kDistBucketsPerOctave);
}

CacheAnalytics::CacheAnalytics(Options options)
    : options_(Sanitize(options)),
      sample_threshold_(ThresholdFor(options_.sampling_rate)),
      key_space_(options_.key_space),
      max_sampled_(options_.max_sampled_keys),
      position_capacity_(max_sampled_ * 4),
      table_mask_(NextPow2(max_sampled_ * 2) - 1),
      ever_seen_((key_space_ + 63) / 64),
      seen_this_gen_((key_space_ + 63) / 64),
      ref_size_items_(options_.ref_size_items),
      fenwick_(position_capacity_ + 1, 0),
      pos_key_(position_capacity_, 0),
      table_(table_mask_ + 1) {
  dist_hist_.fill(0);
  hll_prev_.fill(0);
}

void CacheAnalytics::OnAccess(uint64_t key, bool hit) {
  total_accesses_.fetch_add(1, std::memory_order_relaxed);

  // Miss classification: mark the key seen (ever / this generation) and,
  // on a miss, attribute exactly one cause from the pre-update state.
  const uint64_t aliased = key % key_space_;
  const size_t word = static_cast<size_t>(aliased >> 6);
  const uint64_t bit = uint64_t{1} << (aliased & 63);
  const uint64_t prev_ever =
      ever_seen_[word].fetch_or(bit, std::memory_order_relaxed);
  const uint64_t prev_gen =
      seen_this_gen_[word].fetch_or(bit, std::memory_order_relaxed);
  if (hit) {
    total_hits_.fetch_add(1, std::memory_order_relaxed);
  } else if ((prev_ever & bit) == 0) {
    miss_compulsory_.fetch_add(1, std::memory_order_relaxed);
  } else if ((prev_gen & bit) == 0) {
    miss_invalidation_.fetch_add(1, std::memory_order_relaxed);
  } else {
    miss_capacity_.fetch_add(1, std::memory_order_relaxed);
  }

  // Working-set sketch; rotation fires once per window boundary (each
  // access observes a distinct counter value).
  HllAdd(key);
  const uint64_t n = ws_accesses_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (n % options_.ws_window_accesses == 0) RotateWindow();

  // The SHARDS gate: one hash plus one compare decides membership in the
  // sampled substream; only members pay the mutex and tree update.
  if (Mix64(key) <= sample_threshold_) SampledAccess(key);
}

void CacheAnalytics::NoteGenerationSwap() {
  for (std::atomic<uint64_t>& w : seen_this_gen_) {
    w.store(0, std::memory_order_relaxed);
  }
  generation_swaps_.fetch_add(1, std::memory_order_relaxed);
}

void CacheAnalytics::SampledAccess(uint64_t key) {
  MutexLock lock(rd_mu_);
  ++sampled_accesses_;
  KeySlot* slot = TableFindLocked(key);
  if (slot != nullptr) {
    const uint32_t pos = slot->pos;
    // Sampled stack depth: distinct sampled keys whose latest access came
    // after this key's. Rescaled by 1/rate it estimates the true number of
    // intervening distinct keys; +1 puts the key itself on the stack.
    const uint32_t depth =
        static_cast<uint32_t>(occupied_) - FenwickPrefix(pos);
    const double scaled =
        static_cast<double>(depth) / options_.sampling_rate + 1.0;
    ++dist_hist_[static_cast<size_t>(DistBucket(scaled))];
    FenwickAdd(pos, -1);
    pos_key_[pos] = 0;
    const uint32_t npos = AllocPositionLocked();
    pos_key_[npos] = key + 1;
    FenwickAdd(npos, +1);
    // `slot` stays valid across compaction: table_ never reallocates, and
    // the key holds no position while compaction runs.
    slot->pos = npos;
  } else {
    ++cold_sampled_;
    if (occupied_ >= max_sampled_) EvictOldestSampledLocked();
    const uint32_t npos = AllocPositionLocked();
    pos_key_[npos] = key + 1;
    FenwickAdd(npos, +1);
    TableInsertLocked(key, npos);
    ++occupied_;
  }
}

uint32_t CacheAnalytics::AllocPositionLocked() {
  if (next_pos_ >= position_capacity_) CompactLocked();
  return static_cast<uint32_t>(next_pos_++);
}

void CacheAnalytics::CompactLocked() {
  // Remap the occupied arrival positions to a dense prefix, preserving
  // order. Runs every >= 3 * max_sampled insertions, so amortized O(1).
  size_t w = 0;
  for (size_t r = 0; r < next_pos_; ++r) {
    const uint64_t kp = pos_key_[r];
    if (kp == 0) continue;
    pos_key_[r] = 0;
    pos_key_[w] = kp;
    TableFindLocked(kp - 1)->pos = static_cast<uint32_t>(w);
    ++w;
  }
  std::fill(fenwick_.begin(), fenwick_.end(), 0u);
  for (size_t i = 0; i < w; ++i) FenwickAdd(i, +1);
  next_pos_ = w;
}

void CacheAnalytics::EvictOldestSampledLocked() {
  const size_t pos = FenwickFirstOccupied();
  const uint64_t kp = pos_key_[pos];
  pos_key_[pos] = 0;
  FenwickAdd(pos, -1);
  TableEraseLocked(kp - 1);
  --occupied_;
  ++overflow_evictions_;
}

void CacheAnalytics::FenwickAdd(size_t pos, int delta) {
  for (size_t i = pos + 1; i < fenwick_.size(); i += i & (~i + 1)) {
    fenwick_[i] =
        static_cast<uint32_t>(static_cast<int64_t>(fenwick_[i]) + delta);
  }
}

uint32_t CacheAnalytics::FenwickPrefix(size_t pos) const {
  uint32_t sum = 0;
  for (size_t i = pos + 1; i > 0; i -= i & (~i + 1)) sum += fenwick_[i];
  return sum;
}

size_t CacheAnalytics::FenwickFirstOccupied() const {
  // Largest index with prefix sum < 1; the next position is the first
  // occupied one. Caller guarantees occupied_ > 0.
  size_t idx = 0;
  uint32_t rem = 1;
  for (size_t step = std::bit_floor(fenwick_.size() - 1); step > 0;
       step >>= 1) {
    const size_t nxt = idx + step;
    if (nxt < fenwick_.size() && fenwick_[nxt] < rem) {
      idx = nxt;
      rem -= fenwick_[idx];
    }
  }
  return idx;
}

CacheAnalytics::KeySlot* CacheAnalytics::TableFindLocked(uint64_t key) {
  size_t i = static_cast<size_t>(Mix64(key)) & table_mask_;
  while (true) {
    KeySlot& s = table_[i];
    if (s.key_plus1 == 0) return nullptr;
    if (s.key_plus1 == key + 1) return &s;
    i = (i + 1) & table_mask_;
  }
}

void CacheAnalytics::TableInsertLocked(uint64_t key, uint32_t pos) {
  size_t i = static_cast<size_t>(Mix64(key)) & table_mask_;
  while (table_[i].key_plus1 != 0) i = (i + 1) & table_mask_;
  table_[i].key_plus1 = key + 1;
  table_[i].pos = pos;
}

void CacheAnalytics::TableEraseLocked(uint64_t key) {
  size_t i = static_cast<size_t>(Mix64(key)) & table_mask_;
  while (table_[i].key_plus1 != key + 1) {
    if (table_[i].key_plus1 == 0) return;  // not present
    i = (i + 1) & table_mask_;
  }
  // Backward-shift deletion: keeps linear-probe chains intact with no
  // tombstones, so the table never degrades under churn. An entry may stay
  // put only if its home slot lies in the cyclic range (hole, j].
  size_t hole = i;
  table_[hole].key_plus1 = 0;
  size_t j = hole;
  while (true) {
    j = (j + 1) & table_mask_;
    const uint64_t kp = table_[j].key_plus1;
    if (kp == 0) break;
    const size_t home = static_cast<size_t>(Mix64(kp - 1)) & table_mask_;
    const bool home_in_range =
        hole < j ? (home > hole && home <= j) : (home > hole || home <= j);
    if (!home_in_range) {
      table_[hole] = table_[j];
      table_[j].key_plus1 = 0;
      hole = j;
    }
  }
}

double CacheAnalytics::HitsAtLocked(double size_items) const {
  if (!(size_items >= 1.0)) return 0.0;
  double hits = 0.0;
  for (int i = 0; i < kDistBuckets; ++i) {
    const uint64_t count = dist_hist_[static_cast<size_t>(i)];
    if (count == 0) continue;
    const double upper = DistBucketUpper(i);
    if (upper <= size_items) {
      hits += static_cast<double>(count);
      continue;
    }
    const double lower = i == 0 ? 1.0 : DistBucketUpper(i - 1);
    if (lower < size_items) {
      // Straddled bucket: log-linear interpolation within the bucket.
      const double frac = (std::log2(size_items) - std::log2(lower)) /
                          (std::log2(upper) - std::log2(lower));
      hits += static_cast<double>(count) * frac;
    }
  }
  return hits;
}

double CacheAnalytics::PredictedMissRatioAt(uint64_t size_items) const {
  MutexLock lock(rd_mu_);
  if (sampled_accesses_ == 0) return 0.0;
  const double hits = HitsAtLocked(static_cast<double>(size_items));
  return 1.0 - hits / static_cast<double>(sampled_accesses_);
}

std::vector<CacheAnalytics::MrcPoint> CacheAnalytics::Mrc() const {
  MutexLock lock(rd_mu_);
  std::vector<MrcPoint> out;
  if (sampled_accesses_ == 0) return out;
  int hi = 0;
  for (int i = 0; i < kDistBuckets; ++i) {
    if (dist_hist_[static_cast<size_t>(i)] != 0) hi = i;
  }
  const int last = std::min(hi + 1, kDistBuckets - 1);
  double cum = 0.0;
  for (int i = 0; i <= last; ++i) {
    cum += static_cast<double>(dist_hist_[static_cast<size_t>(i)]);
    const uint64_t size =
        static_cast<uint64_t>(std::llround(DistBucketUpper(i)));
    const double ratio = 1.0 - cum / static_cast<double>(sampled_accesses_);
    if (!out.empty() && out.back().size_items == size) {
      out.back().miss_ratio = ratio;  // later edge rounds to the same size
    } else {
      out.push_back(MrcPoint{size, ratio});
    }
  }
  return out;
}

uint64_t CacheAnalytics::sampled_accesses() const {
  MutexLock lock(rd_mu_);
  return sampled_accesses_;
}

uint64_t CacheAnalytics::tracked_keys() const {
  MutexLock lock(rd_mu_);
  return occupied_;
}

uint64_t CacheAnalytics::overflow_evictions() const {
  MutexLock lock(rd_mu_);
  return overflow_evictions_;
}

CacheAnalytics::MissBreakdown CacheAnalytics::miss_breakdown() const {
  MissBreakdown b;
  b.accesses = total_accesses_.load(std::memory_order_relaxed);
  b.hits = total_hits_.load(std::memory_order_relaxed);
  b.misses = b.accesses >= b.hits ? b.accesses - b.hits : 0;
  b.compulsory = miss_compulsory_.load(std::memory_order_relaxed);
  b.capacity = miss_capacity_.load(std::memory_order_relaxed);
  b.invalidation = miss_invalidation_.load(std::memory_order_relaxed);
  return b;
}

void CacheAnalytics::HllAdd(uint64_t key) {
  // A second hash stream (constant-xored input) decorrelates the sketch
  // from the sampling gate, which consumes Mix64(key) directly.
  const uint64_t h = Mix64(key ^ 0x5851f42d4c957f2dULL);
  const size_t idx = static_cast<size_t>(h >> 56);
  const uint64_t w = h << 8;
  const uint64_t rank =
      w == 0 ? 57 : static_cast<uint64_t>(std::countl_zero(w)) + 1;
  uint64_t old = hll_cur_[idx].load(std::memory_order_relaxed);
  while (old < rank && !hll_cur_[idx].compare_exchange_weak(
                           old, rank, std::memory_order_relaxed)) {
  }
}

double CacheAnalytics::EstimateCurrentCardinality() const {
  std::array<uint64_t, kHllRegisters> regs;
  for (size_t i = 0; i < kHllRegisters; ++i) {
    regs[i] = hll_cur_[i].load(std::memory_order_relaxed);
  }
  return EstimateFromRegisters(regs.data(), kHllRegisters);
}

void CacheAnalytics::RotateWindow() {
  MutexLock lock(ws_mu_);
  std::array<uint64_t, kHllRegisters> cur;
  for (size_t i = 0; i < kHllRegisters; ++i) {
    cur[i] = hll_cur_[i].exchange(0, std::memory_order_relaxed);
  }
  const double cur_card = EstimateFromRegisters(cur.data(), kHllRegisters);
  if (windows_completed_ > 0) {
    // Jaccard by inclusion-exclusion over the merged (register-max) sketch.
    std::array<uint64_t, kHllRegisters> merged;
    for (size_t i = 0; i < kHllRegisters; ++i) {
      merged[i] = std::max(cur[i], hll_prev_[i]);
    }
    const double u = EstimateFromRegisters(merged.data(), kHllRegisters);
    const double inter = prev_cardinality_ + cur_card - u;
    last_jaccard_ =
        (u > 0.0 && inter > 0.0) ? std::min(inter / u, 1.0) : 0.0;
  }
  hll_prev_ = cur;
  prev_cardinality_ = cur_card;
  ++windows_completed_;
}

CacheAnalytics::WorkingSet CacheAnalytics::working_set() const {
  WorkingSet ws;
  ws.current_cardinality = EstimateCurrentCardinality();
  MutexLock lock(ws_mu_);
  ws.previous_cardinality = prev_cardinality_;
  ws.jaccard = last_jaccard_;
  ws.windows = windows_completed_;
  return ws;
}

void CacheAnalytics::BindMetrics(MetricsRegistry* registry) {
  MutexLock lock(publish_mu_);
  registry_ = registry;
  // Delta-base so pre-bind history is not replayed into a fresh registry;
  // subsequent PublishMetrics calls move deltas only.
  published_ = miss_breakdown();
}

void CacheAnalytics::PublishMetrics() {
  MutexLock lock(publish_mu_);
  if (registry_ == nullptr) return;
  const MissBreakdown cur = miss_breakdown();
  auto delta = [](uint64_t c, uint64_t p) { return c >= p ? c - p : 0; };
  registry_->GetCounter("cache.miss.compulsory")
      ->Add(delta(cur.compulsory, published_.compulsory));
  registry_->GetCounter("cache.miss.capacity")
      ->Add(delta(cur.capacity, published_.capacity));
  registry_->GetCounter("cache.miss.invalidation")
      ->Add(delta(cur.invalidation, published_.invalidation));
  published_ = cur;

  registry_->GetGauge("cache.mrc.sampling_rate")->Set(options_.sampling_rate);
  {
    MutexLock rd(rd_mu_);
    registry_->GetGauge("cache.mrc.sampled_accesses")
        ->Set(static_cast<double>(sampled_accesses_));
    registry_->GetGauge("cache.mrc.tracked_keys")
        ->Set(static_cast<double>(occupied_));
    registry_->GetGauge("cache.mrc.cold_misses")
        ->Set(static_cast<double>(cold_sampled_));
    const uint64_t ref = ref_size_items_.load(std::memory_order_relaxed);
    if (ref > 0 && sampled_accesses_ > 0) {
      const double hits = HitsAtLocked(static_cast<double>(ref));
      registry_->GetGauge("cache.mrc.ref_size_items")
          ->Set(static_cast<double>(ref));
      registry_->GetGauge("cache.mrc.predicted_miss_ratio")
          ->Set(1.0 - hits / static_cast<double>(sampled_accesses_));
    }
  }

  const WorkingSet ws = working_set();
  registry_->GetGauge("cache.ws.current_cardinality")
      ->Set(ws.current_cardinality);
  registry_->GetGauge("cache.ws.previous_cardinality")
      ->Set(ws.previous_cardinality);
  registry_->GetGauge("cache.ws.jaccard")->Set(ws.jaccard);
  registry_->GetGauge("cache.analytics.generation_swaps")
      ->Set(static_cast<double>(
          generation_swaps_.load(std::memory_order_relaxed)));
}

std::string CacheAnalytics::MrcJson() const {
  const MissBreakdown mb = miss_breakdown();
  const WorkingSet ws = working_set();
  const std::vector<MrcPoint> points = Mrc();
  uint64_t sampled = 0;
  uint64_t cold = 0;
  uint64_t tracked = 0;
  uint64_t overflow = 0;
  {
    MutexLock lock(rd_mu_);
    sampled = sampled_accesses_;
    cold = cold_sampled_;
    tracked = occupied_;
    overflow = overflow_evictions_;
  }
  std::string out;
  AppendF(&out, "{\"schema_version\":1,\"sampling_rate\":%.9g",
          options_.sampling_rate);
  AppendF(&out,
          ",\"total_accesses\":%" PRIu64 ",\"sampled_accesses\":%" PRIu64
          ",\"cold_sampled\":%" PRIu64 ",\"tracked_keys\":%" PRIu64
          ",\"overflow_evictions\":%" PRIu64,
          mb.accesses, sampled, cold, tracked, overflow);
  const uint64_t ref = reference_size();
  if (ref > 0 && sampled > 0) {
    AppendF(&out,
            ",\"reference\":{\"size_items\":%" PRIu64
            ",\"predicted_miss_ratio\":%.9g}",
            ref, PredictedMissRatioAt(ref));
  }
  AppendF(&out,
          ",\"miss_classes\":{\"compulsory\":%" PRIu64
          ",\"capacity\":%" PRIu64 ",\"invalidation\":%" PRIu64
          ",\"misses\":%" PRIu64 "}",
          mb.compulsory, mb.capacity, mb.invalidation, mb.misses);
  AppendF(&out,
          ",\"working_set\":{\"current_cardinality\":%.9g"
          ",\"previous_cardinality\":%.9g,\"jaccard\":%.9g"
          ",\"windows\":%" PRIu64 "}",
          ws.current_cardinality, ws.previous_cardinality, ws.jaccard,
          ws.windows);
  out += ",\"points\":[";
  for (size_t i = 0; i < points.size(); ++i) {
    AppendF(&out, "%s{\"size_items\":%" PRIu64 ",\"miss_ratio\":%.9g}",
            i == 0 ? "" : ",", points[i].size_items, points[i].miss_ratio);
  }
  out += "]}";
  return out;
}

}  // namespace eeb::obs
