// Observability primitives: a registry of named instruments that the engine,
// caches, index, and storage layers update on the hot path. Everything is
// allocation-free after registration — counters and gauges are single
// relaxed atomics, and the latency histogram is a fixed array of atomic
// bucket counts with logarithmic bucket edges, so p50/p95/p99 extraction
// never needs the per-query latency vector the old harness sorted.
//
// Instruments are registered once (under a mutex) and the returned pointers
// stay valid for the registry's lifetime; components cache them at bind time
// and pay only an atomic add per event afterwards.

#ifndef EEB_OBS_METRICS_H_
#define EEB_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace eeb::obs {

/// Monotonic event counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-value (Set) or accumulating (Add) floating-point instrument.
class Gauge {
 public:
  void Set(double v) {
    bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
  }

  void Add(double delta) {
    uint64_t old = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(
        old, std::bit_cast<uint64_t>(std::bit_cast<double>(old) + delta),
        std::memory_order_relaxed)) {
    }
  }

  double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

  void Reset() { Set(0.0); }

 private:
  std::atomic<uint64_t> bits_{0};  // IEEE-754 bit pattern of the value
};

/// Log-bucketed latency histogram over seconds. Buckets grow by a factor of
/// 2^(1/kBucketsPerOctave) (~9%), covering [1 ns, ~1.7e4 s]; values below
/// the range land in the underflow bucket, values above in the top bucket.
/// A percentile extracted from the histogram is therefore within one
/// relative bucket width (RelativeBucketWidth()) of the exact sorted
/// quantile of the recorded values.
class LatencyHistogram {
 public:
  static constexpr int kBucketsPerOctave = 8;
  static constexpr double kMinValue = 1e-9;
  static constexpr int kNumOctaves = 44;
  static constexpr int kNumBuckets = kNumOctaves * kBucketsPerOctave + 1;

  /// Multiplicative half-width bound of one bucket: extracted percentiles
  /// satisfy exact/width <= approx <= exact*width.
  static double RelativeBucketWidth() {
    return std::exp2(1.0 / kBucketsPerOctave);
  }

  void Record(double seconds) {
    buckets_[BucketIndex(seconds)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    AddToSum(seconds);
    UpdateMax(seconds);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  double sum() const {
    return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  }

  double max() const {
    return std::bit_cast<double>(max_bits_.load(std::memory_order_relaxed));
  }

  double mean() const {
    const uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }

  /// Approximate p-quantile (p in [0, 1]) using the same nearest-rank rule
  /// as sorting the values and indexing at p * (n - 1). Returns the
  /// geometric midpoint of the bucket holding that rank.
  double Percentile(double p) const;

  void Reset();

  /// Bucket edge math, shared with the windowed histograms in obs/window so
  /// live and cumulative percentiles quantize identically.
  static int BucketIndex(double v) {
    if (!(v > kMinValue)) return 0;  // also catches NaN and negatives
    const int idx =
        1 + static_cast<int>(std::log2(v / kMinValue) * kBucketsPerOctave);
    return idx >= kNumBuckets ? kNumBuckets - 1 : idx;
  }

  static double BucketValue(int idx) {
    if (idx <= 0) return kMinValue;
    return kMinValue *
           std::exp2((static_cast<double>(idx) - 0.5) / kBucketsPerOctave);
  }

 private:
  void AddToSum(double v) {
    uint64_t old = sum_bits_.load(std::memory_order_relaxed);
    while (!sum_bits_.compare_exchange_weak(
        old, std::bit_cast<uint64_t>(std::bit_cast<double>(old) + v),
        std::memory_order_relaxed)) {
    }
  }

  void UpdateMax(double v) {
    // Bit patterns of non-negative doubles compare like the doubles.
    const uint64_t bits = std::bit_cast<uint64_t>(v < 0.0 ? 0.0 : v);
    uint64_t old = max_bits_.load(std::memory_order_relaxed);
    while (old < bits && !max_bits_.compare_exchange_weak(
                             old, bits, std::memory_order_relaxed)) {
    }
  }

  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};
  std::atomic<uint64_t> max_bits_{0};
};

/// Owner of named instruments. Registration is mutex-protected; returned
/// pointers are stable for the registry's lifetime, so hot paths bind once
/// and never look names up again. Names use dotted lowercase
/// ("cache.hits"); exporters translate them per format.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Returns the instrument with `name`, creating it on first use.
  Counter* GetCounter(const std::string& name) EEB_EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) EEB_EXCLUDES(mu_);
  LatencyHistogram* GetHistogram(const std::string& name) EEB_EXCLUDES(mu_);

  struct HistogramStats {
    uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  /// Sorted-by-name snapshots for the exporters.
  std::vector<std::pair<std::string, uint64_t>> Counters() const
      EEB_EXCLUDES(mu_);
  std::vector<std::pair<std::string, double>> Gauges() const
      EEB_EXCLUDES(mu_);
  std::vector<std::pair<std::string, HistogramStats>> Histograms() const
      EEB_EXCLUDES(mu_);

  /// Zeroes every instrument (epoch boundaries in long-running harnesses).
  void ResetAll() EEB_EXCLUDES(mu_);

 private:
  // The maps (name -> owning pointer) are guarded; the instruments behind
  // the pointers are internally atomic and are deliberately updated outside
  // the lock on hot paths (pointer stability for the registry's lifetime is
  // the published contract).
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      EEB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ EEB_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>> histograms_
      EEB_GUARDED_BY(mu_);
};

/// Cause-tagged acknowledgment of a Status a caller deliberately does not
/// propagate (best-effort flushes, optional side outputs): bumps
/// "status.dropped.<site>" on error, does nothing for OK or a null registry.
/// One of the three sanctioned fates of a [[nodiscard]] Status — propagate,
/// IgnoreError(), or record here (see docs/STATIC_ANALYSIS.md).
void RecordIfError(MetricsRegistry* registry, const Status& s,
                   const std::string& site);

}  // namespace eeb::obs

#endif  // EEB_OBS_METRICS_H_
