#include "obs/window.h"

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <ostream>

namespace eeb::obs {
namespace {

double SteadyNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) {
    out->append(buf, std::min(static_cast<size_t>(n), sizeof(buf) - 1));
  }
}

WindowOptions Sanitize(WindowOptions options) {
  if (!(options.window_seconds > 0.0)) options.window_seconds = 10.0;
  if (options.slices < 1) options.slices = 1;
  if (!(options.ewma_alpha > 0.0) || options.ewma_alpha > 1.0) {
    options.ewma_alpha = 0.2;
  }
  if (!options.now) options.now = SteadyNowSeconds;
  return options;
}

}  // namespace

void WindowedMetrics::Slice::Clear(uint64_t new_epoch) {
  epoch = new_epoch;
  queries = 0;
  sum_seconds = 0.0;
  max_seconds = 0.0;
  candidates = 0;
  cache_hits = 0;
  degraded = 0;
  deadline_hits = 0;
  read_failures = 0;
  shed = 0;
  tap_hits = 0;
  tap_misses = 0;
  tap_admits = 0;
  tap_evictions = 0;
  for (ShadowCounts& s : shadow) s = ShadowCounts{};
  buckets.fill(0);
}

WindowedMetrics::WindowedMetrics(WindowOptions options)
    : options_(Sanitize(std::move(options))),
      slice_width_(options_.window_seconds /
                   static_cast<double>(options_.slices)),
      slices_(static_cast<size_t>(options_.slices)),
      start_time_(options_.now()) {}

WindowedMetrics::Slice& WindowedMetrics::Touch(double now) {
  const uint64_t epoch =
      static_cast<uint64_t>(std::max(0.0, now) / slice_width_);
  Slice& slice = slices_[epoch % slices_.size()];
  if (slice.epoch != epoch) slice.Clear(epoch);
  return slice;
}

void WindowedMetrics::RecordQuery(const QuerySample& sample) {
  if (sample.shed) {
    // A shed query never executed: it counts against the shed rate but must
    // not dilute latency, QPS or the candidate funnel.
    total_shed_.fetch_add(1, std::memory_order_relaxed);
    MutexLock lock(mu_);
    Touch(options_.now()).shed += 1;
    return;
  }
  total_queries_.fetch_add(1, std::memory_order_relaxed);
  total_candidates_.fetch_add(sample.candidates, std::memory_order_relaxed);
  total_cache_hits_.fetch_add(sample.cache_hits, std::memory_order_relaxed);
  if (sample.degraded) total_degraded_.fetch_add(1, std::memory_order_relaxed);

  MutexLock lock(mu_);
  Slice& slice = Touch(options_.now());
  slice.queries += 1;
  slice.sum_seconds += sample.response_seconds;
  slice.max_seconds = std::max(slice.max_seconds, sample.response_seconds);
  slice.candidates += sample.candidates;
  slice.cache_hits += sample.cache_hits;
  if (sample.degraded) slice.degraded += 1;
  if (sample.deadline_hit) slice.deadline_hits += 1;
  slice.read_failures += sample.read_failures;
  slice.buckets[static_cast<size_t>(
      LatencyHistogram::BucketIndex(sample.response_seconds))] += 1;
  if (ewma_primed_) {
    ewma_seconds_ = options_.ewma_alpha * sample.response_seconds +
                    (1.0 - options_.ewma_alpha) * ewma_seconds_;
  } else {
    ewma_seconds_ = sample.response_seconds;
    ewma_primed_ = true;
  }
}

void WindowedMetrics::SetCacheTap(std::function<CacheTapSample()> tap) {
  MutexLock lock(mu_);
  tap_ = std::move(tap);
  // Re-base: activity before installation belongs to no slice.
  tap_base_ = tap_ ? tap_() : CacheTapSample{};
  tap_based_ = static_cast<bool>(tap_);
}

void WindowedMetrics::SetShadowTap(
    std::function<std::vector<ShadowTapEntry>()> tap) {
  MutexLock lock(mu_);
  shadow_tap_ = std::move(tap);
  shadow_base_.clear();
  shadow_names_.clear();
  if (shadow_tap_) {
    // Re-base: simulation activity before installation belongs to no slice.
    shadow_base_ = shadow_tap_();
    shadow_names_.reserve(shadow_base_.size());
    for (const ShadowTapEntry& e : shadow_base_) {
      shadow_names_.push_back(e.name);
    }
  }
  // Size every slice's shadow counts here, once, so Slice::Clear on the
  // record path only zeroes in place and never allocates.
  for (Slice& slice : slices_) {
    slice.shadow.assign(shadow_names_.size(), Slice::ShadowCounts{});
  }
}

void WindowedMetrics::SampleQueue(uint64_t queue_depth, uint64_t busy_workers,
                                  uint64_t workers) {
  queue_depth_.store(queue_depth, std::memory_order_relaxed);
  busy_workers_.store(busy_workers, std::memory_order_relaxed);
  workers_.store(workers, std::memory_order_relaxed);
}

void WindowedMetrics::SampleQueueStats(uint64_t capacity, uint64_t max_depth,
                                       uint64_t rejected) {
  queue_capacity_.store(capacity, std::memory_order_relaxed);
  queue_max_depth_.store(max_depth, std::memory_order_relaxed);
  queue_rejected_.store(rejected, std::memory_order_relaxed);
}

void WindowedMetrics::DrainTapLocked(double now) {
  // Counters are monotonic; a generation swap that re-installs the tap
  // re-bases instead. Guard against regressions anyway (saturating diff).
  auto delta = [](uint64_t cur_v, uint64_t base_v) {
    return cur_v >= base_v ? cur_v - base_v : 0;
  };
  if (tap_) {
    const CacheTapSample cur = tap_();
    Slice& slice = Touch(now);
    slice.tap_hits += delta(cur.hits, tap_base_.hits);
    slice.tap_misses += delta(cur.misses, tap_base_.misses);
    slice.tap_admits += delta(cur.admits, tap_base_.admits);
    slice.tap_evictions += delta(cur.evictions, tap_base_.evictions);
    tap_base_ = cur;
  }
  if (shadow_tap_) {
    const std::vector<ShadowTapEntry> cur = shadow_tap_();
    Slice& slice = Touch(now);
    const size_t n = std::min(
        {cur.size(), shadow_base_.size(), slice.shadow.size()});
    for (size_t i = 0; i < n; ++i) {
      slice.shadow[i].hits += delta(cur[i].hits, shadow_base_[i].hits);
      slice.shadow[i].misses += delta(cur[i].misses, shadow_base_[i].misses);
    }
    shadow_base_ = cur;
  }
}

double WindowedMetrics::PercentileLocked(
    const std::array<uint64_t, LatencyHistogram::kNumBuckets>& buckets,
    uint64_t count, double p, double max_seconds) const {
  if (count == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const uint64_t rank =
      static_cast<uint64_t>(p * static_cast<double>(count - 1));
  uint64_t cum = 0;
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    cum += buckets[static_cast<size_t>(i)];
    if (cum > rank) return LatencyHistogram::BucketValue(i);
  }
  return max_seconds;
}

WindowSnapshot WindowedMetrics::GetSnapshot() {
  WindowSnapshot snap;
  MutexLock lock(mu_);
  const double now = options_.now();
  DrainTapLocked(now);

  const uint64_t cur_epoch =
      static_cast<uint64_t>(std::max(0.0, now) / slice_width_);
  const uint64_t n_slices = slices_.size();
  const uint64_t oldest_epoch =
      cur_epoch >= n_slices - 1 ? cur_epoch - (n_slices - 1) : 0;

  snap.shadows.resize(shadow_names_.size());
  for (size_t i = 0; i < shadow_names_.size(); ++i) {
    snap.shadows[i].name = shadow_names_[i];
  }

  std::array<uint64_t, LatencyHistogram::kNumBuckets> buckets{};
  uint64_t tap_misses = 0;
  for (const Slice& slice : slices_) {
    if (slice.epoch < oldest_epoch || slice.epoch > cur_epoch) continue;
    for (size_t i = 0;
         i < std::min(slice.shadow.size(), snap.shadows.size()); ++i) {
      snap.shadows[i].hits += slice.shadow[i].hits;
      snap.shadows[i].misses += slice.shadow[i].misses;
    }
    snap.queries += slice.queries;
    snap.candidates += slice.candidates;
    snap.cache_hits += slice.cache_hits;
    snap.degraded += slice.degraded;
    snap.deadline_hits += slice.deadline_hits;
    snap.read_failures += slice.read_failures;
    snap.shed += slice.shed;
    snap.cache_admits += slice.tap_admits;
    snap.cache_evictions += slice.tap_evictions;
    tap_misses += slice.tap_misses;
    snap.mean_seconds += slice.sum_seconds;  // sum for now; divided below
    snap.max_seconds = std::max(snap.max_seconds, slice.max_seconds);
    for (size_t i = 0; i < buckets.size(); ++i) buckets[i] += slice.buckets[i];
  }

  snap.window_seconds =
      std::min(std::max(now - start_time_, 0.0), options_.window_seconds);
  if (snap.window_seconds > 0.0) {
    snap.qps = static_cast<double>(snap.queries) / snap.window_seconds;
  }
  if (snap.queries > 0) {
    snap.mean_seconds /= static_cast<double>(snap.queries);
  } else {
    snap.mean_seconds = 0.0;
  }
  snap.p50_seconds = PercentileLocked(buckets, snap.queries, 0.50,
                                      snap.max_seconds);
  snap.p95_seconds = PercentileLocked(buckets, snap.queries, 0.95,
                                      snap.max_seconds);
  snap.p99_seconds = PercentileLocked(buckets, snap.queries, 0.99,
                                      snap.max_seconds);
  snap.ewma_seconds = ewma_seconds_;
  if (snap.candidates > 0) {
    snap.hit_ratio = static_cast<double>(snap.cache_hits) /
                     static_cast<double>(snap.candidates);
  }
  if (snap.queries > 0) {
    snap.degraded_rate = static_cast<double>(snap.degraded) /
                         static_cast<double>(snap.queries);
  }
  if (snap.queries + snap.shed > 0) {
    snap.shed_rate = static_cast<double>(snap.shed) /
                     static_cast<double>(snap.queries + snap.shed);
  }
  if (tap_misses > 0) {
    snap.admit_ratio = static_cast<double>(snap.cache_admits) /
                       static_cast<double>(tap_misses);
  }
  for (WindowSnapshot::ShadowStat& s : snap.shadows) {
    const uint64_t probes = s.hits + s.misses;
    if (probes > 0) {
      s.hit_ratio =
          static_cast<double>(s.hits) / static_cast<double>(probes);
    }
  }

  snap.queue_depth = queue_depth_.load(std::memory_order_relaxed);
  snap.busy_workers = busy_workers_.load(std::memory_order_relaxed);
  snap.workers = workers_.load(std::memory_order_relaxed);
  if (snap.workers > 0) {
    snap.worker_utilization = static_cast<double>(snap.busy_workers) /
                              static_cast<double>(snap.workers);
  }
  snap.queue_capacity = queue_capacity_.load(std::memory_order_relaxed);
  snap.queue_max_depth = queue_max_depth_.load(std::memory_order_relaxed);
  snap.queue_rejected = queue_rejected_.load(std::memory_order_relaxed);

  snap.total_queries = total_queries_.load(std::memory_order_relaxed);
  snap.total_candidates = total_candidates_.load(std::memory_order_relaxed);
  snap.total_cache_hits = total_cache_hits_.load(std::memory_order_relaxed);
  snap.total_degraded = total_degraded_.load(std::memory_order_relaxed);
  snap.total_shed = total_shed_.load(std::memory_order_relaxed);
  return snap;
}

void WindowedMetrics::PublishTo(MetricsRegistry* registry) {
  if (registry == nullptr) return;
  PublishSnapshot(GetSnapshot(), registry);
}

void WindowedMetrics::PublishSnapshot(const WindowSnapshot& s,
                                      MetricsRegistry* registry) {
  if (registry == nullptr) return;
  registry->GetGauge("live.window_seconds")->Set(s.window_seconds);
  registry->GetGauge("live.qps")->Set(s.qps);
  registry->GetGauge("live.queries")->Set(static_cast<double>(s.queries));
  registry->GetGauge("live.latency.mean_seconds")->Set(s.mean_seconds);
  registry->GetGauge("live.latency.max_seconds")->Set(s.max_seconds);
  registry->GetGauge("live.latency.p50_seconds")->Set(s.p50_seconds);
  registry->GetGauge("live.latency.p95_seconds")->Set(s.p95_seconds);
  registry->GetGauge("live.latency.p99_seconds")->Set(s.p99_seconds);
  registry->GetGauge("live.latency.ewma_seconds")->Set(s.ewma_seconds);
  registry->GetGauge("live.cache.hit_ratio")->Set(s.hit_ratio);
  registry->GetGauge("live.cache.admits")
      ->Set(static_cast<double>(s.cache_admits));
  registry->GetGauge("live.cache.evictions")
      ->Set(static_cast<double>(s.cache_evictions));
  registry->GetGauge("live.cache.admit_ratio")->Set(s.admit_ratio);
  registry->GetGauge("live.degraded_rate")->Set(s.degraded_rate);
  registry->GetGauge("live.deadline_hits")
      ->Set(static_cast<double>(s.deadline_hits));
  registry->GetGauge("live.read_failures")
      ->Set(static_cast<double>(s.read_failures));
  registry->GetGauge("live.shed")->Set(static_cast<double>(s.shed));
  registry->GetGauge("live.shed_rate")->Set(s.shed_rate);
  registry->GetGauge("live.queue_depth")
      ->Set(static_cast<double>(s.queue_depth));
  registry->GetGauge("live.busy_workers")
      ->Set(static_cast<double>(s.busy_workers));
  registry->GetGauge("live.workers")->Set(static_cast<double>(s.workers));
  registry->GetGauge("live.worker_utilization")->Set(s.worker_utilization);
  registry->GetGauge("live.queue_capacity")
      ->Set(static_cast<double>(s.queue_capacity));
  registry->GetGauge("live.queue_max_depth")
      ->Set(static_cast<double>(s.queue_max_depth));
  registry->GetGauge("live.queue_rejected")
      ->Set(static_cast<double>(s.queue_rejected));
  for (const WindowSnapshot::ShadowStat& sh : s.shadows) {
    const std::string prefix = "live.shadow." + sh.name + ".";
    registry->GetGauge(prefix + "hits")->Set(static_cast<double>(sh.hits));
    registry->GetGauge(prefix + "misses")
        ->Set(static_cast<double>(sh.misses));
    registry->GetGauge(prefix + "hit_ratio")->Set(sh.hit_ratio);
  }
}

std::string WindowSnapshotJson(const WindowSnapshot& s, double uptime) {
  std::string out;
  AppendF(&out, "{\"uptime_seconds\":%.3f,\"live\":{", uptime);
  AppendF(&out,
          "\"window_seconds\":%.3f,\"queries\":%" PRIu64
          ",\"qps\":%.9g,\"latency\":{\"mean_seconds\":%.9g,"
          "\"max_seconds\":%.9g,\"p50_seconds\":%.9g,\"p95_seconds\":%.9g,"
          "\"p99_seconds\":%.9g,\"ewma_seconds\":%.9g}",
          s.window_seconds, s.queries, s.qps, s.mean_seconds, s.max_seconds,
          s.p50_seconds, s.p95_seconds, s.p99_seconds, s.ewma_seconds);
  AppendF(&out,
          ",\"candidates\":%" PRIu64 ",\"cache_hits\":%" PRIu64
          ",\"hit_ratio\":%.9g,\"cache_admits\":%" PRIu64
          ",\"cache_evictions\":%" PRIu64 ",\"admit_ratio\":%.9g",
          s.candidates, s.cache_hits, s.hit_ratio, s.cache_admits,
          s.cache_evictions, s.admit_ratio);
  AppendF(&out,
          ",\"degraded\":%" PRIu64 ",\"degraded_rate\":%.9g"
          ",\"deadline_hits\":%" PRIu64 ",\"read_failures\":%" PRIu64
          ",\"shed\":%" PRIu64 ",\"shed_rate\":%.9g",
          s.degraded, s.degraded_rate, s.deadline_hits, s.read_failures,
          s.shed, s.shed_rate);
  AppendF(&out,
          ",\"queue_depth\":%" PRIu64 ",\"busy_workers\":%" PRIu64
          ",\"workers\":%" PRIu64 ",\"worker_utilization\":%.9g"
          ",\"queue_capacity\":%" PRIu64 ",\"queue_max_depth\":%" PRIu64
          ",\"queue_rejected\":%" PRIu64,
          s.queue_depth, s.busy_workers, s.workers, s.worker_utilization,
          s.queue_capacity, s.queue_max_depth, s.queue_rejected);
  if (!s.shadows.empty()) {
    out += ",\"shadow\":[";
    for (size_t i = 0; i < s.shadows.size(); ++i) {
      const WindowSnapshot::ShadowStat& sh = s.shadows[i];
      AppendF(&out,
              "%s{\"name\":\"%s\",\"hits\":%" PRIu64 ",\"misses\":%" PRIu64
              ",\"hit_ratio\":%.9g}",
              i == 0 ? "" : ",", sh.name.c_str(), sh.hits, sh.misses,
              sh.hit_ratio);
    }
    out += "]";
  }
  out += "}";
  AppendF(&out,
          ",\"cumulative\":{\"queries\":%" PRIu64 ",\"candidates\":%" PRIu64
          ",\"cache_hits\":%" PRIu64 ",\"degraded\":%" PRIu64
          ",\"shed\":%" PRIu64 "}}",
          s.total_queries, s.total_candidates, s.total_cache_hits,
          s.total_degraded, s.total_shed);
  return out;
}

StatsPublisher::StatsPublisher(WindowedMetrics* window,
                               MetricsRegistry* registry, std::ostream* sink,
                               Options options)
    : window_(window),
      registry_(registry),
      sink_(sink),
      options_([&options] {
        if (options.interval_ms < 1) options.interval_ms = 1;
        return options;
      }()),
      start_time_(window->options().now()) {
  thread_ = std::thread([this] { Loop(); });
}

StatsPublisher::~StatsPublisher() { Stop(); }

void StatsPublisher::PublishOnce() {
  if (options_.pre_sample) options_.pre_sample();
  const WindowSnapshot snap = window_->GetSnapshot();
  WindowedMetrics::PublishSnapshot(snap, registry_);
  if (sink_ != nullptr) {
    const double uptime = window_->options().now() - start_time_;
    const std::string line = WindowSnapshotJson(snap, uptime);
    sink_->write(line.data(), static_cast<std::streamsize>(line.size()));
    sink_->put('\n');
    sink_->flush();
  }
  lines_.fetch_add(1, std::memory_order_relaxed);
}

void StatsPublisher::Loop() {
  // Explicit deadline loop (instead of a predicate lambda) so the analysis
  // can see that stopping_ is only read with mu_ held: a spurious or early
  // notify wake re-checks stopping_ and keeps waiting out the interval.
  mu_.Lock();
  while (!stopping_) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.interval_ms);
    while (!stopping_ &&
           cv_.WaitUntil(mu_, deadline) != std::cv_status::timeout) {
    }
    if (stopping_) break;
    mu_.Unlock();
    PublishOnce();
    mu_.Lock();
  }
  mu_.Unlock();
}

void StatsPublisher::Stop() {
  mu_.Lock();
  if (stopped_ || stopping_) {  // done, or concurrent Stop tearing down
    mu_.Unlock();
    return;
  }
  stopping_ = true;
  mu_.Unlock();
  cv_.NotifyAll();
  if (thread_.joinable()) thread_.join();
  PublishOnce();  // final line so short runs still emit a snapshot
  MutexLock lock(mu_);
  stopped_ = true;
}

}  // namespace eeb::obs
