// Metrics exporters: Prometheus text exposition (counters, gauges, and
// histograms as summaries with quantile labels) and a JSON snapshot. Both
// read a consistent point-in-time view of the registry; neither perturbs
// the instruments.
//
// Every exporter writes to an injectable std::ostream sink — tests pass an
// std::ostringstream, servers a socket stream — so nothing in this layer
// ever touches stdout/stderr directly. The std::string overloads are thin
// wrappers kept for callers that want a buffer.

#ifndef EEB_OBS_EXPORT_H_
#define EEB_OBS_EXPORT_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace eeb::obs {

/// Prometheus text exposition format. Names are prefixed with "eeb_" and
/// dots become underscores; counters get the "_total" suffix.
void ExportPrometheus(const MetricsRegistry& registry, std::ostream& os);
std::string ExportPrometheus(const MetricsRegistry& registry);

/// One JSON object: {"counters": {...}, "gauges": {...},
/// "histograms": {name: {count, sum, max, p50, p95, p99}}}.
void ExportJson(const MetricsRegistry& registry, std::ostream& os);
std::string ExportJson(const MetricsRegistry& registry);

/// Writes `content` to `path` (truncating). Shared by the CLI flags and the
/// bench harness.
Status WriteStringToFile(const std::string& path, const std::string& content);

}  // namespace eeb::obs

#endif  // EEB_OBS_EXPORT_H_
