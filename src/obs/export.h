// Metrics exporters: Prometheus text exposition (counters, gauges, and
// histograms as summaries with quantile labels) and a JSON snapshot. Both
// read a consistent point-in-time view of the registry; neither perturbs
// the instruments.
//
// Every exporter writes to an injectable std::ostream sink — tests pass an
// std::ostringstream, servers a socket stream — so nothing in this layer
// ever touches stdout/stderr directly. The std::string overloads are thin
// wrappers kept for callers that want a buffer.

#ifndef EEB_OBS_EXPORT_H_
#define EEB_OBS_EXPORT_H_

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace eeb::obs {

/// Registry naming convention: non-empty dotted lowercase, i.e. dot-joined
/// segments of [a-z0-9_] (e.g. "cache.hits"). Exporters skip names that
/// violate it (counting the skips) instead of emitting output a Prometheus
/// scraper would reject wholesale.
bool IsValidMetricName(const std::string& name);

/// Escapes a Prometheus label value: backslash, double quote, and newline
/// per the text exposition format.
std::string PromEscapeLabelValue(const std::string& value);

/// A set of labels attached to every exported sample (e.g. instance/job).
using PromLabels = std::vector<std::pair<std::string, std::string>>;

/// Prometheus text exposition format. Names are prefixed with "eeb_" and
/// dots become underscores; counters get the "_total" suffix. Names failing
/// IsValidMetricName are skipped and reported via the
/// eeb_export_skipped_invalid_names gauge; label values are escaped.
void ExportPrometheus(const MetricsRegistry& registry, std::ostream& os);
void ExportPrometheus(const MetricsRegistry& registry, std::ostream& os,
                      const PromLabels& labels);
std::string ExportPrometheus(const MetricsRegistry& registry);

/// One JSON object: {"counters": {...}, "gauges": {...},
/// "histograms": {name: {count, sum, max, p50, p95, p99}}}.
void ExportJson(const MetricsRegistry& registry, std::ostream& os);
std::string ExportJson(const MetricsRegistry& registry);

class CacheAnalytics;

/// The miss-ratio-curve artifact: one JSON object with the sampling
/// configuration, miss classification, working-set view, and the MRC points
/// (see CacheAnalytics::MrcJson for the schema).
void ExportMrcJson(const CacheAnalytics& analytics, std::ostream& os);
std::string ExportMrcJson(const CacheAnalytics& analytics);

/// Writes `content` to `path` (truncating). Shared by the CLI flags and the
/// bench harness.
Status WriteStringToFile(const std::string& path, const std::string& content);

}  // namespace eeb::obs

#endif  // EEB_OBS_EXPORT_H_
