#include "obs/prof.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <ostream>
#include <sstream>

namespace eeb::obs {
namespace {

// Unique per-Profiler generation numbers. The thread-local scope cursor
// stores the generation it belongs to, so a cursor left behind by a
// destroyed Profiler can never be dereferenced on behalf of a new one that
// happens to reuse the same address.
std::atomic<uint64_t> g_next_gen{1};

// Innermost open scope of this thread, plus the generation of the Profiler
// that opened it. Scopes restore the previous values on exit, so the pair
// behaves as a stack without storing one. void* keeps the private
// Profiler::Node type out of namespace scope; only ProfScope (a friend)
// casts it.
thread_local uint64_t tls_gen = 0;
thread_local void* tls_current_node = nullptr;

}  // namespace

Profiler::Profiler() : gen_(g_next_gen.fetch_add(1, std::memory_order_relaxed)) {}

Profiler::~Profiler() = default;

Profiler::Node* Profiler::FindOrAddChild(Node* parent, const char* name) {
  // Fast path: the phase exists (every call after a thread's first).
  // Pointer equality catches same-literal callers; strcmp unifies the same
  // phase named from different translation units.
  for (Node* c = parent->first_child.load(std::memory_order_acquire);
       c != nullptr; c = c->next_sibling) {
    if (c->name == name || std::strcmp(c->name, name) == 0) return c;
  }
  MutexLock lock(mu_);
  for (Node* c = parent->first_child.load(std::memory_order_acquire);
       c != nullptr; c = c->next_sibling) {
    if (c->name == name || std::strcmp(c->name, name) == 0) return c;
  }
  nodes_.push_back(std::make_unique<Node>(name, parent));
  Node* node = nodes_.back().get();
  node->next_sibling = parent->first_child.load(std::memory_order_relaxed);
  // mu_ is held, so this thread is the only writer of first_child and the
  // load/publish pair cannot lose an update.
  // eeb-lint: allow(atomic-misuse)
  parent->first_child.store(node, std::memory_order_release);
  return node;
}

std::vector<Profiler::PhaseStats> Profiler::Snapshot() const {
  std::vector<PhaseStats> out;
  // Iterative DFS so arbitrarily deep nesting cannot overflow the stack.
  struct Frame {
    const Node* node;
    std::string path;
  };
  std::vector<Frame> stack;
  for (const Node* c = root_.first_child.load(std::memory_order_acquire);
       c != nullptr; c = c->next_sibling) {
    stack.push_back({c, c->name});
  }
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    PhaseStats s;
    s.path = f.path;
    s.calls = f.node->calls.load(std::memory_order_relaxed);
    const uint64_t total = f.node->nanos.load(std::memory_order_relaxed);
    uint64_t child_total = 0;
    for (const Node* c = f.node->first_child.load(std::memory_order_acquire);
         c != nullptr; c = c->next_sibling) {
      child_total += c->nanos.load(std::memory_order_relaxed);
      stack.push_back({c, f.path + "/" + c->name});
    }
    s.total_seconds = static_cast<double>(total) * 1e-9;
    // Concurrent recording can momentarily put child sums ahead of the
    // parent (the child closed, the parent has not); clamp instead of
    // reporting negative self time.
    s.self_seconds =
        static_cast<double>(total > child_total ? total - child_total : 0) *
        1e-9;
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end(),
            [](const PhaseStats& a, const PhaseStats& b) {
              return a.path < b.path;
            });
  return out;
}

void Profiler::Reset() {
  MutexLock lock(mu_);
  for (const auto& node : nodes_) {
    node->nanos.store(0, std::memory_order_relaxed);
    node->calls.store(0, std::memory_order_relaxed);
  }
}

void Profiler::PublishTo(MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  for (const PhaseStats& s : Snapshot()) {
    std::string name = "prof." + s.path;
    std::replace(name.begin(), name.end(), '/', '.');
    registry->GetGauge(name + ".total_seconds")->Set(s.total_seconds);
    registry->GetGauge(name + ".self_seconds")->Set(s.self_seconds);
    registry->GetGauge(name + ".calls")->Set(static_cast<double>(s.calls));
  }
}

ProfScope::ProfScope(Profiler* profiler, const char* name)
    : profiler_(profiler) {
  if (profiler_ == nullptr) return;
  prev_gen_ = tls_gen;
  prev_current_ = static_cast<Profiler::Node*>(tls_current_node);
  Profiler::Node* parent =
      (prev_gen_ == profiler_->gen_ && prev_current_ != nullptr)
          ? prev_current_
          : &profiler_->root_;
  node_ = profiler_->FindOrAddChild(parent, name);
  tls_gen = profiler_->gen_;
  tls_current_node = node_;
  start_ = std::chrono::steady_clock::now();
}

ProfScope::~ProfScope() {
  if (profiler_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  node_->nanos.fetch_add(
      static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
              .count()),
      std::memory_order_relaxed);
  node_->calls.fetch_add(1, std::memory_order_relaxed);
  tls_gen = prev_gen_;
  tls_current_node = prev_current_;
}

void ExportProfileJson(const Profiler& profiler, std::ostream& os) {
  os << "{\"schema_version\":1,\"phases\":[";
  bool first = true;
  char buf[192];
  for (const Profiler::PhaseStats& s : profiler.Snapshot()) {
    const int n = std::snprintf(
        buf, sizeof(buf),
        "%s{\"path\":\"%s\",\"calls\":%" PRIu64
        ",\"total_seconds\":%.9g,\"self_seconds\":%.9g}",
        first ? "" : ",", s.path.c_str(), s.calls, s.total_seconds,
        s.self_seconds);
    if (n > 0) os.write(buf, std::min<std::streamsize>(n, sizeof(buf) - 1));
    first = false;
  }
  os << "]}";
}

std::string ExportProfileJson(const Profiler& profiler) {
  std::ostringstream os;
  ExportProfileJson(profiler, os);
  return std::move(os).str();
}

}  // namespace eeb::obs
