// Property tests for the distance bounds of Sec. 3.2: for any histogram,
// point and query, dist-(p') <= dist(p) <= dist+(p'), and Lemma 1:
// dist+ - dist <= ||eps(p')||.

#include <gtest/gtest.h>

#include <cmath>

#include "common/dataset.h"
#include "common/distance.h"
#include "common/random.h"
#include "cache/code_cache.h"
#include "hist/bounds.h"
#include "hist/builders.h"

namespace eeb::hist {
namespace {

constexpr uint32_t kNdom = 64;

std::vector<Scalar> RandomPoint(Rng& rng, size_t d) {
  std::vector<Scalar> p(d);
  for (auto& v : p) v = static_cast<Scalar>(rng.Uniform(kNdom));
  return p;
}

Histogram RandomHistogram(Rng& rng) {
  // Random builder and bucket count over a random frequency array.
  FrequencyArray f(kNdom);
  for (uint32_t x = 0; x < kNdom; ++x) {
    if (rng.Bernoulli(0.7)) f.Add(x, 1.0 + rng.Uniform(20));
  }
  Histogram h;
  const uint32_t buckets = 2u << rng.Uniform(5);  // 2..64
  switch (rng.Uniform(4)) {
    case 0:
      EXPECT_TRUE(BuildEquiWidth(kNdom, buckets, &h).ok());
      break;
    case 1:
      EXPECT_TRUE(BuildEquiDepth(f, buckets, &h).ok());
      break;
    case 2:
      EXPECT_TRUE(BuildVOptimal(f, buckets, &h).ok());
      break;
    default:
      EXPECT_TRUE(BuildKnnOptimal(f, buckets, &h).ok());
      break;
  }
  return h;
}

TEST(BoundsTest, Property_SandwichAndLemma1_Global) {
  Rng rng(2024);
  for (int trial = 0; trial < 300; ++trial) {
    const size_t d = 1 + rng.Uniform(32);
    Histogram h = RandomHistogram(rng);
    const auto p = RandomPoint(rng, d);
    const auto q = RandomPoint(rng, d);

    std::vector<BucketId> codes(d);
    cache::EncodeGlobal(h, p, codes);
    const double dist = L2(q, p);
    // Both interval semantics must sandwich integral data.
    for (bool integral : {false, true}) {
      double lb, ub;
      CodeBoundsGlobal(h, q, codes, &lb, &ub, integral);
      EXPECT_LE(lb, dist + 1e-9) << "lower bound violated";
      EXPECT_GE(ub, dist - 1e-9) << "upper bound violated";
      // Lemma 1: dist+ - dist <= ||eps||.
      const double eps = ErrorVectorNorm(h, codes, integral);
      EXPECT_LE(ub - dist, eps + 1e-9);
    }
  }
}

TEST(BoundsTest, Property_SandwichIndividual) {
  Rng rng(2025);
  for (int trial = 0; trial < 150; ++trial) {
    const size_t d = 1 + rng.Uniform(16);
    std::vector<Histogram> dims;
    dims.reserve(d);
    for (size_t j = 0; j < d; ++j) dims.push_back(RandomHistogram(rng));
    IndividualHistograms ih(std::move(dims));

    const auto p = RandomPoint(rng, d);
    const auto q = RandomPoint(rng, d);
    std::vector<BucketId> codes(d);
    cache::EncodeIndividual(ih, p, codes);
    double lb, ub;
    CodeBoundsIndividual(ih, q, codes, &lb, &ub);
    const double dist = L2(q, p);
    EXPECT_LE(lb, dist + 1e-9);
    EXPECT_GE(ub, dist - 1e-9);
  }
}

TEST(BoundsTest, ExactWhenBucketsAreSingletonsIntegralMode) {
  // tau = log2(ndom) on integral data: every bucket holds one value, so
  // the tight (integral) edges give lb == dist == ub.
  Histogram h;
  ASSERT_TRUE(BuildEquiWidth(kNdom, kNdom, &h).ok());
  Rng rng(2026);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t d = 4;
    const auto p = RandomPoint(rng, d);
    const auto q = RandomPoint(rng, d);
    std::vector<BucketId> codes(d);
    cache::EncodeGlobal(h, p, codes);
    double lb, ub;
    CodeBoundsGlobal(h, q, codes, &lb, &ub, /*integral=*/true);
    const double dist = L2(q, p);
    EXPECT_NEAR(lb, dist, 1e-6);
    EXPECT_NEAR(ub, dist, 1e-6);
  }
}

TEST(BoundsTest, ContinuousModeSandwichesFractionalCoordinates) {
  // The integral-mode edges are INVALID for fractional data; the default
  // continuous edges must still sandwich. This is a regression test for a
  // real bug: value 123.7 encodes to bucket [123,123] and the tight lower
  // bound can exceed the true distance.
  Histogram h;
  ASSERT_TRUE(BuildEquiWidth(kNdom, kNdom, &h).ok());
  Rng rng(2030);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t d = 6;
    std::vector<Scalar> p(d), q(d);
    for (auto& v : p) {
      v = static_cast<Scalar>(rng.NextDouble() * (kNdom - 1));
    }
    for (auto& v : q) {
      v = static_cast<Scalar>(rng.NextDouble() * (kNdom - 1));
    }
    std::vector<BucketId> codes(d);
    cache::EncodeGlobal(h, p, codes);
    double lb, ub;
    CodeBoundsGlobal(h, q, codes, &lb, &ub);
    const double dist = L2(q, p);
    EXPECT_LE(lb, dist + 1e-9);
    EXPECT_GE(ub, dist - 1e-9);
  }
}

TEST(BoundsTest, PaperWorkedExample) {
  // Fig. 5 / Table 1 of the paper: d=2, tau=2 equi-width over [0,32),
  // q=(9,11), p2=(10,16) encodes to (01,10) with dist+ = 13.42.
  Histogram h;
  ASSERT_TRUE(Histogram::Create({{0, 7}, {8, 15}, {16, 23}, {24, 31}}, 32,
                                &h).ok());
  std::vector<Scalar> q{9, 11};
  std::vector<Scalar> p2{10, 16};
  std::vector<BucketId> codes(2);
  cache::EncodeGlobal(h, p2, codes);
  EXPECT_EQ(codes[0], 1u);
  EXPECT_EQ(codes[1], 2u);
  double lb, ub;
  CodeBoundsGlobal(h, q, codes, &lb, &ub, /*integral=*/true);
  EXPECT_NEAR(ub, std::sqrt(6.0 * 6 + 12 * 12), 1e-9);  // 13.416
  EXPECT_NEAR(lb, 5.0, 1e-9);  // inside dim1 (0), gap 5 in dim2
}

TEST(BoundsTest, PaperTable1PruningDecisions) {
  // Full Table 1: p3 and p4 pruned against ubk = 13.42 at k = 1.
  Histogram h;
  ASSERT_TRUE(Histogram::Create({{0, 7}, {8, 15}, {16, 23}, {24, 31}}, 32,
                                &h).ok());
  std::vector<Scalar> q{9, 11};
  struct Case {
    std::vector<Scalar> p;
    double lb, ub;
  };
  const std::vector<Case> cases = {
      {{2, 20}, 5.385164807134504, 15.0},   // p1: ([0..7],[16..23])
      {{10, 16}, 5.0, 13.416407864998739},  // p2
      {{19, 30}, 14.764823060233400, 24.413111231467404},  // p3
      {{26, 4}, 15.524174696260025, 24.596747752497688},   // p4
  };
  std::vector<BucketId> codes(2);
  for (const Case& c : cases) {
    cache::EncodeGlobal(h, c.p, codes);
    double lb, ub;
    CodeBoundsGlobal(h, q, codes, &lb, &ub, /*integral=*/true);
    EXPECT_NEAR(lb, c.lb, 1e-9);
    EXPECT_NEAR(ub, c.ub, 1e-9);
  }
  // ubk (k=1) = min ub = 13.42; p3 and p4 have lb above it.
  EXPECT_GT(cases[2].lb, cases[1].ub);
  EXPECT_GT(cases[3].lb, cases[1].ub);
}

TEST(BoundsTest, LowerTermAndUpperTermEdgeCases) {
  EXPECT_DOUBLE_EQ(LowerTerm(5.0, 2, 8), 0.0);   // inside
  EXPECT_DOUBLE_EQ(LowerTerm(1.0, 2, 8), 1.0);   // left of
  EXPECT_DOUBLE_EQ(LowerTerm(10.0, 2, 8), 4.0);  // right of
  EXPECT_DOUBLE_EQ(UpperTerm(5.0, 2, 8), 9.0);   // farthest edge
  EXPECT_DOUBLE_EQ(UpperTerm(2.0, 2, 8), 36.0);
}

TEST(BoundsTest, TighterHistogramGivesTighterBounds) {
  // Property: refining every bucket (more buckets) cannot loosen bounds.
  Rng rng(2027);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t d = 8;
    Histogram coarse, fine;
    ASSERT_TRUE(BuildEquiWidth(kNdom, 4, &coarse).ok());
    ASSERT_TRUE(BuildEquiWidth(kNdom, 16, &fine).ok());
    const auto p = RandomPoint(rng, d);
    const auto q = RandomPoint(rng, d);
    std::vector<BucketId> cc(d), cf(d);
    cache::EncodeGlobal(coarse, p, cc);
    cache::EncodeGlobal(fine, p, cf);
    double clb, cub, flb, fub;
    CodeBoundsGlobal(coarse, q, cc, &clb, &cub);
    CodeBoundsGlobal(fine, q, cf, &flb, &fub);
    EXPECT_LE(clb, flb + 1e-9);
    EXPECT_GE(cub, fub - 1e-9);
  }
}

}  // namespace
}  // namespace eeb::hist
