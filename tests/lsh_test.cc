// Tests for the C2LSH index: option validation, determinism, candidate
// volume, recall against ground truth, radius growth, and I/O accounting.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/dataset.h"
#include "common/random.h"
#include "index/linear_scan.h"
#include "index/lsh/c2lsh.h"

namespace eeb::index {
namespace {

Dataset ClusteredData(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  Dataset d(dim);
  std::vector<Scalar> p(dim);
  const int clusters = 8;
  std::vector<std::vector<double>> centers(clusters,
                                           std::vector<double>(dim));
  for (auto& c : centers) {
    for (auto& v : c) v = 40 + rng.NextDouble() * 176;
  }
  for (size_t i = 0; i < n; ++i) {
    const auto& c = centers[rng.Uniform(clusters)];
    for (size_t j = 0; j < dim; ++j) {
      double v = c[j] + rng.NextGaussian() * 10;
      if (v < 0) v = 0;
      if (v > 255) v = 255;
      p[j] = static_cast<Scalar>(static_cast<int>(v));
    }
    d.Append(p);
  }
  return d;
}

C2LshOptions DefaultOptions() {
  C2LshOptions o;
  o.num_functions = 16;
  o.collision_threshold = 8;
  o.beta_candidates = 100;
  o.seed = 5;
  return o;
}

TEST(C2LshTest, RejectsBadOptions) {
  Dataset data = ClusteredData(100, 8, 1);
  std::unique_ptr<C2Lsh> idx;
  C2LshOptions o = DefaultOptions();
  o.collision_threshold = 20;  // > m
  EXPECT_TRUE(C2Lsh::Build(data, o, &idx).IsInvalidArgument());
  o = DefaultOptions();
  o.approximation_ratio = 1.5;
  EXPECT_TRUE(C2Lsh::Build(data, o, &idx).IsInvalidArgument());
  EXPECT_TRUE(C2Lsh::Build(Dataset(8), DefaultOptions(), &idx)
                  .IsInvalidArgument());
}

TEST(C2LshTest, ReportsEnoughCandidates) {
  Dataset data = ClusteredData(2000, 16, 3);
  std::unique_ptr<C2Lsh> idx;
  ASSERT_TRUE(C2Lsh::Build(data, DefaultOptions(), &idx).ok());

  Rng rng(7);
  std::vector<Scalar> q(16);
  for (auto& v : q) v = static_cast<Scalar>(rng.Uniform(256));
  std::vector<PointId> cand;
  ASSERT_TRUE(idx->Candidates(q, 10, &cand, nullptr).ok());
  EXPECT_GE(cand.size(), 110u);  // k + beta
  EXPECT_LE(cand.size(), data.size());
  // Ids are unique and sorted.
  std::set<PointId> uniq(cand.begin(), cand.end());
  EXPECT_EQ(uniq.size(), cand.size());
  EXPECT_TRUE(std::is_sorted(cand.begin(), cand.end()));
}

TEST(C2LshTest, DeterministicAcrossRuns) {
  Dataset data = ClusteredData(1000, 16, 5);
  std::unique_ptr<C2Lsh> a, b;
  ASSERT_TRUE(C2Lsh::Build(data, DefaultOptions(), &a).ok());
  ASSERT_TRUE(C2Lsh::Build(data, DefaultOptions(), &b).ok());
  std::vector<Scalar> q(16, 128);
  std::vector<PointId> ca, cb;
  ASSERT_TRUE(a->Candidates(q, 10, &ca, nullptr).ok());
  ASSERT_TRUE(b->Candidates(q, 10, &cb, nullptr).ok());
  EXPECT_EQ(ca, cb);
  // Repeated queries on the same index are also stable.
  std::vector<PointId> ca2;
  ASSERT_TRUE(a->Candidates(q, 10, &ca2, nullptr).ok());
  EXPECT_EQ(ca, ca2);
}

TEST(C2LshTest, RecallOnClusteredData) {
  // c-approximate guarantee cannot be asserted exactly, but on clustered
  // data most true neighbors must appear among the candidates.
  Dataset data = ClusteredData(5000, 16, 11);
  std::unique_ptr<C2Lsh> idx;
  ASSERT_TRUE(C2Lsh::Build(data, DefaultOptions(), &idx).ok());

  Rng rng(13);
  double recall_sum = 0;
  const int queries = 20;
  const size_t k = 10;
  for (int t = 0; t < queries; ++t) {
    // Query near a data point, as multimedia queries are.
    const PointId src = static_cast<PointId>(rng.Uniform(data.size()));
    std::vector<Scalar> q(data.point(src).begin(), data.point(src).end());
    for (auto& v : q) {
      v = static_cast<Scalar>(
          std::max(0.0, std::min(255.0, v + rng.NextGaussian() * 2)));
    }
    std::vector<PointId> cand;
    ASSERT_TRUE(idx->Candidates(q, k, &cand, nullptr).ok());
    std::set<PointId> cset(cand.begin(), cand.end());
    auto truth = LinearScanKnn(data, q, k);
    int found = 0;
    for (const auto& nb : truth) found += cset.count(nb.id) ? 1 : 0;
    recall_sum += static_cast<double>(found) / k;
  }
  EXPECT_GT(recall_sum / queries, 0.6) << "candidate recall too low";
}

TEST(C2LshTest, ChargesIndexIo) {
  Dataset data = ClusteredData(2000, 16, 17);
  std::unique_ptr<C2Lsh> idx;
  ASSERT_TRUE(C2Lsh::Build(data, DefaultOptions(), &idx).ok());
  std::vector<Scalar> q(16, 100);
  std::vector<PointId> cand;
  storage::IoStats stats;
  ASSERT_TRUE(idx->Candidates(q, 10, &cand, &stats).ok());
  EXPECT_GE(stats.page_reads, DefaultOptions().num_functions)
      << "at least one bucket lookup per hash function";
}

TEST(C2LshTest, RadiusGrowsWithScatteredQueries) {
  Dataset data = ClusteredData(2000, 16, 19);
  std::unique_ptr<C2Lsh> idx;
  ASSERT_TRUE(C2Lsh::Build(data, DefaultOptions(), &idx).ok());

  // A query at a data point terminates at a smaller radius than a far-away
  // query in empty space.
  std::vector<Scalar> near(data.point(0).begin(), data.point(0).end());
  std::vector<PointId> cand;
  ASSERT_TRUE(idx->Candidates(near, 10, &cand, nullptr).ok());
  const double r_near = idx->last_radius();

  std::vector<Scalar> far(16, 0);  // domain corner, far from all clusters
  ASSERT_TRUE(idx->Candidates(far, 10, &cand, nullptr).ok());
  const double r_far = idx->last_radius();
  EXPECT_GE(r_far, r_near);
}

TEST(C2LshTest, QueryDimMismatchRejected) {
  Dataset data = ClusteredData(100, 8, 23);
  std::unique_ptr<C2Lsh> idx;
  ASSERT_TRUE(C2Lsh::Build(data, DefaultOptions(), &idx).ok());
  std::vector<Scalar> q(4, 0);
  std::vector<PointId> cand;
  EXPECT_TRUE(idx->Candidates(q, 5, &cand, nullptr).IsInvalidArgument());
}

TEST(LinearScanTest, ExactOnTinyInput) {
  Dataset data(1);
  for (Scalar v : {5.f, 1.f, 9.f, 3.f}) {
    std::vector<Scalar> p{v};
    data.Append(p);
  }
  std::vector<Scalar> q{2};
  auto r = LinearScanKnn(data, q, 2);
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r[0].id, 1u);  // value 1, dist 1
  EXPECT_EQ(r[1].id, 3u);  // value 3, dist 1 (tie, larger id)
}

}  // namespace
}  // namespace eeb::index
