// Tests for the storage substrate: Env, PointFile (orderings, padding,
// multi-page records), I/O accounting, file orderings.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <numeric>
#include <set>

#include "common/dataset.h"
#include "common/random.h"
#include "storage/env.h"
#include "storage/file_ordering.h"
#include "storage/io_stats.h"
#include "storage/point_file.h"

namespace eeb::storage {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("eeb_test_" + name))
      .string();
}

Dataset RandomData(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  Dataset d(dim);
  std::vector<Scalar> p(dim);
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : p) v = static_cast<Scalar>(rng.Uniform(256));
    d.Append(p);
  }
  return d;
}

// -------------------------------------------------------------------- Env --

TEST(EnvTest, WriteThenReadBack) {
  const std::string path = TempPath("env_rw");
  Env* env = Env::Default();
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env->NewWritableFile(path, &w).ok());
  const std::string payload = "hello point file";
  ASSERT_TRUE(w->Append(payload.data(), payload.size()).ok());
  EXPECT_EQ(w->Offset(), payload.size());
  ASSERT_TRUE(w->Close().ok());

  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(env->NewRandomAccessFile(path, &r).ok());
  EXPECT_EQ(r->Size(), payload.size());
  std::string buf(5, '\0');
  ASSERT_TRUE(r->Read(6, 5, buf.data()).ok());
  EXPECT_EQ(buf, "point");
  ASSERT_TRUE(env->DeleteFile(path).ok());
  EXPECT_FALSE(env->FileExists(path));
}

TEST(EnvTest, MissingFileIsIOError) {
  std::unique_ptr<RandomAccessFile> r;
  EXPECT_TRUE(Env::Default()
                  ->NewRandomAccessFile("/nonexistent/definitely/gone", &r)
                  .IsIOError());
}

TEST(EnvTest, ShortReadIsIOError) {
  const std::string path = TempPath("env_short");
  Env* env = Env::Default();
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env->NewWritableFile(path, &w).ok());
  ASSERT_TRUE(w->Append("abc", 3).ok());
  ASSERT_TRUE(w->Close().ok());
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(env->NewRandomAccessFile(path, &r).ok());
  char buf[10];
  EXPECT_TRUE(r->Read(0, 10, buf).IsIOError());
  env->DeleteFile(path).IgnoreError();
}

// -------------------------------------------------------------- PointFile --

TEST(PointFileTest, RoundTripRawOrder) {
  const std::string path = TempPath("pf_raw");
  Dataset data = RandomData(100, 16, 61);
  ASSERT_TRUE(PointFile::Create(Env::Default(), path, data).ok());

  std::unique_ptr<PointFile> pf;
  ASSERT_TRUE(PointFile::Open(Env::Default(), path, &pf).ok());
  EXPECT_EQ(pf->size(), 100u);
  EXPECT_EQ(pf->dim(), 16u);

  std::vector<Scalar> buf(16);
  for (PointId id = 0; id < 100; ++id) {
    ASSERT_TRUE(pf->ReadPoint(id, buf, nullptr, nullptr).ok());
    auto expect = data.point(id);
    for (size_t j = 0; j < 16; ++j) EXPECT_EQ(buf[j], expect[j]);
  }
  Env::Default()->DeleteFile(path).IgnoreError();
}

TEST(PointFileTest, RoundTripPermutedOrder) {
  const std::string path = TempPath("pf_perm");
  Dataset data = RandomData(50, 8, 67);
  // Reverse permutation.
  std::vector<PointId> order(50);
  for (size_t i = 0; i < 50; ++i) order[i] = static_cast<PointId>(49 - i);
  ASSERT_TRUE(PointFile::Create(Env::Default(), path, data, order).ok());

  std::unique_ptr<PointFile> pf;
  ASSERT_TRUE(PointFile::Open(Env::Default(), path, &pf).ok());
  std::vector<Scalar> buf(8);
  for (PointId id = 0; id < 50; ++id) {
    ASSERT_TRUE(pf->ReadPoint(id, buf, nullptr, nullptr).ok());
    auto expect = data.point(id);
    for (size_t j = 0; j < 8; ++j) EXPECT_EQ(buf[j], expect[j]);
  }
  Env::Default()->DeleteFile(path).IgnoreError();
}

TEST(PointFileTest, PaddingSlotsSkipped) {
  const std::string path = TempPath("pf_pad");
  Dataset data = RandomData(10, 4, 71);
  std::vector<PointId> order;
  for (PointId id = 0; id < 10; ++id) {
    order.push_back(id);
    order.push_back(kInvalidPointId);  // padding after every point
  }
  ASSERT_TRUE(PointFile::Create(Env::Default(), path, data, order).ok());
  std::unique_ptr<PointFile> pf;
  ASSERT_TRUE(PointFile::Open(Env::Default(), path, &pf).ok());
  std::vector<Scalar> buf(4);
  for (PointId id = 0; id < 10; ++id) {
    ASSERT_TRUE(pf->ReadPoint(id, buf, nullptr, nullptr).ok());
    EXPECT_EQ(buf[0], data.point(id)[0]);
  }
  Env::Default()->DeleteFile(path).IgnoreError();
}

TEST(PointFileTest, MultiPageRecords) {
  const std::string path = TempPath("pf_big");
  // 2000-dim floats = 8000 bytes > 4096 page: each record spans 2 pages.
  Dataset data = RandomData(5, 2000, 73);
  ASSERT_TRUE(PointFile::Create(Env::Default(), path, data).ok());
  std::unique_ptr<PointFile> pf;
  ASSERT_TRUE(PointFile::Open(Env::Default(), path, &pf).ok());
  EXPECT_EQ(pf->points_per_page(), 0u);

  std::vector<Scalar> buf(2000);
  IoStats stats;
  ASSERT_TRUE(pf->ReadPoint(3, buf, &stats, nullptr).ok());
  EXPECT_EQ(stats.point_reads, 1u);
  EXPECT_EQ(stats.page_reads, 2u);
  for (size_t j = 0; j < 2000; ++j) EXPECT_EQ(buf[j], data.point(3)[j]);
  Env::Default()->DeleteFile(path).IgnoreError();
}

TEST(PointFileTest, PageTrackerDeduplicatesWithinQuery) {
  const std::string path = TempPath("pf_dedup");
  // 16-dim floats = 64 bytes: 63 points per 4K page (4 bytes go to the
  // CRC32C page footer).
  Dataset data = RandomData(128, 16, 79);
  ASSERT_TRUE(PointFile::Create(Env::Default(), path, data).ok());
  std::unique_ptr<PointFile> pf;
  ASSERT_TRUE(PointFile::Open(Env::Default(), path, &pf).ok());
  ASSERT_EQ(pf->points_per_page(), 63u);

  std::vector<Scalar> buf(16);
  IoStats stats;
  PageTracker tracker;
  // Points 0..62 share page 0.
  for (PointId id = 0; id < 63; ++id) {
    ASSERT_TRUE(pf->ReadPoint(id, buf, &stats, &tracker).ok());
  }
  EXPECT_EQ(stats.point_reads, 63u);
  EXPECT_EQ(stats.page_reads, 1u);

  // Without a tracker every read charges its page.
  IoStats stats2;
  for (PointId id = 0; id < 63; ++id) {
    ASSERT_TRUE(pf->ReadPoint(id, buf, &stats2, nullptr).ok());
  }
  EXPECT_EQ(stats2.page_reads, 63u);
  Env::Default()->DeleteFile(path).IgnoreError();
}

TEST(PointFileTest, PageOfPointConsistentWithOrdering) {
  const std::string path = TempPath("pf_pages");
  Dataset data = RandomData(256, 16, 83);  // 63 per checksummed page
  ASSERT_TRUE(PointFile::Create(Env::Default(), path, data).ok());
  std::unique_ptr<PointFile> pf;
  ASSERT_TRUE(PointFile::Open(Env::Default(), path, &pf).ok());
  EXPECT_EQ(pf->PageOfPoint(0), 0u);
  EXPECT_EQ(pf->PageOfPoint(62), 0u);
  EXPECT_EQ(pf->PageOfPoint(63), 1u);
  EXPECT_EQ(pf->PageOfPoint(255), 4u);
  Env::Default()->DeleteFile(path).IgnoreError();
}

TEST(PointFileTest, RejectsCorruptMagic) {
  const std::string path = TempPath("pf_corrupt");
  Env* env = Env::Default();
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env->NewWritableFile(path, &w).ok());
  std::vector<char> junk(8192, 'x');
  ASSERT_TRUE(w->Append(junk.data(), junk.size()).ok());
  ASSERT_TRUE(w->Close().ok());
  std::unique_ptr<PointFile> pf;
  EXPECT_TRUE(PointFile::Open(env, path, &pf).IsCorruption());
  env->DeleteFile(path).IgnoreError();
}

TEST(PointFileTest, DuplicateAndMissingIdsRejected) {
  const std::string path = TempPath("pf_dup");
  Dataset data = RandomData(4, 4, 91);
  std::vector<PointId> dup{0, 1, 1, 3};  // id 1 twice, id 2 missing
  EXPECT_TRUE(PointFile::Create(Env::Default(), path, data, dup)
                  .IsInvalidArgument());
  std::vector<PointId> missing{0, 1, 2, kInvalidPointId};  // id 3 missing
  EXPECT_TRUE(PointFile::Create(Env::Default(), path, data, missing)
                  .IsInvalidArgument());
}

TEST(PointFileTest, OutOfRangeIdRejected) {
  const std::string path = TempPath("pf_range");
  Dataset data = RandomData(10, 4, 89);
  ASSERT_TRUE(PointFile::Create(Env::Default(), path, data).ok());
  std::unique_ptr<PointFile> pf;
  ASSERT_TRUE(PointFile::Open(Env::Default(), path, &pf).ok());
  std::vector<Scalar> buf(4);
  EXPECT_TRUE(pf->ReadPoint(10, buf, nullptr, nullptr).IsInvalidArgument());
  std::vector<Scalar> small(2);
  EXPECT_TRUE(pf->ReadPoint(0, small, nullptr, nullptr).IsInvalidArgument());
  Env::Default()->DeleteFile(path).IgnoreError();
}

// ------------------------------------------------------- page checksums --

// Flips one bit of the file at `offset` by rewriting it through the Env.
void FlipByteAt(Env* env, const std::string& path, uint64_t offset) {
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(env->NewRandomAccessFile(path, &r).ok());
  std::vector<char> all(r->Size());
  ASSERT_TRUE(r->Read(0, all.size(), all.data()).ok());
  r.reset();
  ASSERT_LT(offset, all.size());
  all[offset] ^= 0x01;
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env->NewWritableFile(path, &w).ok());
  ASSERT_TRUE(w->Append(all.data(), all.size()).ok());
  ASSERT_TRUE(w->Close().ok());
}

TEST(PointFileTest, NewFilesAreChecksummedByDefault) {
  const std::string path = TempPath("pf_ck_default");
  Dataset data = RandomData(8, 4, 107);
  ASSERT_TRUE(PointFile::Create(Env::Default(), path, data).ok());
  std::unique_ptr<PointFile> pf;
  ASSERT_TRUE(PointFile::Open(Env::Default(), path, &pf).ok());
  EXPECT_TRUE(pf->checksummed());
  EXPECT_EQ(pf->format_version(), PointFile::kFormatChecksummed);
  Env::Default()->DeleteFile(path).IgnoreError();
}

TEST(PointFileTest, LegacyFormatStillReadable) {
  const std::string path = TempPath("pf_legacy");
  Dataset data = RandomData(128, 16, 109);
  std::vector<PointId> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  ASSERT_TRUE(PointFile::Create(Env::Default(), path, data, order,
                                kDefaultPageSize,
                                PointFile::kFormatLegacy)
                  .ok());
  std::unique_ptr<PointFile> pf;
  ASSERT_TRUE(PointFile::Open(Env::Default(), path, &pf).ok());
  EXPECT_FALSE(pf->checksummed());
  EXPECT_EQ(pf->format_version(), PointFile::kFormatLegacy);
  EXPECT_EQ(pf->points_per_page(), 64u);  // no footer: full 4K of records
  std::vector<Scalar> buf(16);
  for (PointId id = 0; id < 128; ++id) {
    ASSERT_TRUE(pf->ReadPoint(id, buf, nullptr, nullptr).ok());
    EXPECT_EQ(buf[0], data.point(id)[0]);
  }
  Env::Default()->DeleteFile(path).IgnoreError();
}

TEST(PointFileTest, CorruptDataPageIsCorruptionNeverData) {
  const std::string path = TempPath("pf_ck_data");
  Dataset data = RandomData(256, 16, 113);  // 63 per page, 5 data pages
  ASSERT_TRUE(PointFile::Create(Env::Default(), path, data).ok());
  std::unique_ptr<PointFile> pf;
  ASSERT_TRUE(PointFile::Open(Env::Default(), path, &pf).ok());
  // Flip a bit inside data page 1 (file page 2, after the header page).
  FlipByteAt(Env::Default(), path, 2 * kDefaultPageSize + 100);
  // The file object caches nothing across reads: every point on the bad
  // page reports Corruption, every other page still reads fine.
  std::vector<Scalar> buf(16);
  for (PointId id = 63; id < 126; ++id) {
    EXPECT_TRUE(pf->ReadPoint(id, buf, nullptr, nullptr).IsCorruption());
  }
  for (PointId id = 0; id < 63; ++id) {
    ASSERT_TRUE(pf->ReadPoint(id, buf, nullptr, nullptr).ok());
    EXPECT_EQ(buf[0], data.point(id)[0]);
  }
  ASSERT_TRUE(pf->ReadPoint(200, buf, nullptr, nullptr).ok());
  EXPECT_EQ(buf[0], data.point(200)[0]);
  Env::Default()->DeleteFile(path).IgnoreError();
}

TEST(PointFileTest, CorruptHeaderPageRejectedAtOpen) {
  const std::string path = TempPath("pf_ck_hdr");
  Dataset data = RandomData(16, 4, 127);
  ASSERT_TRUE(PointFile::Create(Env::Default(), path, data).ok());
  // Past the header struct but inside the checksummed header page.
  FlipByteAt(Env::Default(), path, 256);
  std::unique_ptr<PointFile> pf;
  EXPECT_TRUE(PointFile::Open(Env::Default(), path, &pf).IsCorruption());
  Env::Default()->DeleteFile(path).IgnoreError();
}

TEST(PointFileTest, CorruptSlotTableRejectedAtOpen) {
  const std::string path = TempPath("pf_ck_slots");
  Dataset data = RandomData(64, 4, 131);
  ASSERT_TRUE(PointFile::Create(Env::Default(), path, data).ok());
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(Env::Default()->NewRandomAccessFile(path, &r).ok());
  const uint64_t size = r->Size();
  r.reset();
  // The slot table (and its CRC) are the last bytes of the file.
  FlipByteAt(Env::Default(), path, size - 10);
  std::unique_ptr<PointFile> pf;
  EXPECT_TRUE(PointFile::Open(Env::Default(), path, &pf).IsCorruption());
  Env::Default()->DeleteFile(path).IgnoreError();
}

TEST(PointFileTest, CorruptMultiPageRecordDetected) {
  const std::string path = TempPath("pf_ck_big");
  // 2000-dim floats = 8000 bytes > one 4092-byte payload: 2 pages each.
  Dataset data = RandomData(5, 2000, 137);
  ASSERT_TRUE(PointFile::Create(Env::Default(), path, data).ok());
  std::unique_ptr<PointFile> pf;
  ASSERT_TRUE(PointFile::Open(Env::Default(), path, &pf).ok());
  std::vector<Scalar> buf(2000);
  ASSERT_TRUE(pf->ReadPoint(1, buf, nullptr, nullptr).ok());
  // Record 1 starts at file page 1 + 1*2 = 3; corrupt its second page.
  FlipByteAt(Env::Default(), path, 4 * kDefaultPageSize + 8);
  EXPECT_TRUE(pf->ReadPoint(1, buf, nullptr, nullptr).IsCorruption());
  ASSERT_TRUE(pf->ReadPoint(0, buf, nullptr, nullptr).ok());
  EXPECT_EQ(buf[0], data.point(0)[0]);
  Env::Default()->DeleteFile(path).IgnoreError();
}

// ---------------------------------------------------------- file ordering --

TEST(FileOrderingTest, RawIsIdentity) {
  auto order = RawOrder(5);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(order[i], i);
}

bool IsPermutation(const std::vector<PointId>& order, size_t n) {
  std::set<PointId> seen(order.begin(), order.end());
  return order.size() == n && seen.size() == n && *seen.rbegin() == n - 1;
}

TEST(FileOrderingTest, ClusteredIsPermutation) {
  Dataset data = RandomData(200, 8, 97);
  auto order = ClusteredOrder(data, 8, 1);
  EXPECT_TRUE(IsPermutation(order, 200));
}

TEST(FileOrderingTest, SortedKeyIsPermutation) {
  Dataset data = RandomData(200, 8, 101);
  auto order = SortedKeyOrder(data, 4, 16.0, 1);
  EXPECT_TRUE(IsPermutation(order, 200));
}

TEST(FileOrderingTest, ClusteredGroupsNearbyPoints) {
  // Two well-separated blobs: the clustered order must not interleave them.
  Rng rng(103);
  Dataset data(4);
  std::vector<Scalar> p(4);
  for (int i = 0; i < 50; ++i) {
    for (auto& v : p) v = static_cast<Scalar>(rng.NextGaussian());
    data.Append(p);
  }
  for (int i = 0; i < 50; ++i) {
    for (auto& v : p) v = static_cast<Scalar>(200 + rng.NextGaussian());
    data.Append(p);
  }
  auto order = ClusteredOrder(data, 2, 3);
  // Count blob transitions along the order; a grouped layout has exactly 1.
  int transitions = 0;
  for (size_t i = 1; i < order.size(); ++i) {
    if ((order[i] < 50) != (order[i - 1] < 50)) ++transitions;
  }
  EXPECT_EQ(transitions, 1);
}

// ---------------------------------------------------------------- IoStats --

TEST(IoStatsTest, Accumulates) {
  IoStats a, b;
  a.point_reads = 3;
  a.page_reads = 2;
  b.point_reads = 1;
  b.bytes_read = 100;
  a += b;
  EXPECT_EQ(a.point_reads, 4u);
  EXPECT_EQ(a.page_reads, 2u);
  EXPECT_EQ(a.bytes_read, 100u);
  a.Reset();
  EXPECT_EQ(a.point_reads, 0u);
}

TEST(DiskModelTest, ChargesRandomAndSequentialDifferently) {
  IoStats s;
  s.page_reads = 10;
  s.seq_page_reads = 100;
  DiskModel model;
  model.seconds_per_page = 0.002;
  model.seconds_per_seq_page = 0.0001;
  EXPECT_DOUBLE_EQ(model.Seconds(s), 0.02 + 0.01);
}

TEST(IoStatsTest, AccumulatesEveryField) {
  IoStats a;
  a.point_reads = 1;
  a.page_reads = 2;
  a.seq_page_reads = 3;
  a.node_reads = 4;
  a.bytes_read = 5;
  IoStats b;
  b.point_reads = 10;
  b.page_reads = 20;
  b.seq_page_reads = 30;
  b.node_reads = 40;
  b.bytes_read = 50;
  a += b;
  EXPECT_EQ(a.point_reads, 11u);
  EXPECT_EQ(a.page_reads, 22u);
  EXPECT_EQ(a.seq_page_reads, 33u);
  EXPECT_EQ(a.node_reads, 44u);
  EXPECT_EQ(a.bytes_read, 55u);
  // += returns *this so charges can be chained.
  IoStats c;
  (c += a) += b;
  EXPECT_EQ(c.point_reads, 21u);
  EXPECT_EQ(c.bytes_read, 105u);
}

TEST(DiskModelTest, DefaultsModelCommodityHdd) {
  // 5 ms per random page, 0.05 ms per sequential page (Sec. 5 setup).
  DiskModel model;
  IoStats s;
  s.page_reads = 2;
  s.seq_page_reads = 100;
  EXPECT_DOUBLE_EQ(model.Seconds(s), 2 * 0.005 + 100 * 0.00005);
  IoStats zero;
  EXPECT_DOUBLE_EQ(model.Seconds(zero), 0.0);
  // Point/node/bytes counters do not contribute to modeled time directly.
  IoStats other;
  other.point_reads = 7;
  other.node_reads = 9;
  other.bytes_read = 1 << 20;
  EXPECT_DOUBLE_EQ(model.Seconds(other), 0.0);
}

TEST(PageTrackerTest, TouchDeduplicatesUntilReset) {
  PageTracker t;
  EXPECT_EQ(t.distinct_pages(), 0u);
  EXPECT_TRUE(t.Touch(7));
  EXPECT_FALSE(t.Touch(7));  // second touch of the same page is free
  EXPECT_TRUE(t.Touch(8));
  EXPECT_TRUE(t.Touch(0));
  EXPECT_FALSE(t.Touch(8));
  EXPECT_EQ(t.distinct_pages(), 3u);
  t.Reset();
  EXPECT_EQ(t.distinct_pages(), 0u);
  EXPECT_TRUE(t.Touch(7));  // a new query re-charges every page
  EXPECT_EQ(t.distinct_pages(), 1u);
}

}  // namespace
}  // namespace eeb::storage
