// Coverage for corners not exercised elsewhere: cache statistics, Zipf and
// k-means edge cases, System error paths, DBSCAN over an approximate (LSH)
// candidate generator, kNN join through the LSH engine, and SK-LSH-ordered
// file locality.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "common/zipf.h"
#include "core/dbscan.h"
#include "core/knn_join.h"
#include "core/system.h"
#include "index/lsh/c2lsh.h"
#include "storage/file_ordering.h"
#include "storage/mem_env.h"
#include "workload/generator.h"

namespace eeb {
namespace {

TEST(CacheStatsTest, HitRatioArithmetic) {
  cache::CacheStats stats;
  EXPECT_DOUBLE_EQ(stats.HitRatio(), 0.0);
  stats.hits = 3;
  stats.misses = 1;
  EXPECT_DOUBLE_EQ(stats.HitRatio(), 0.75);
  stats.Reset();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
}

TEST(ZipfEdgeTest, SingleItem) {
  ZipfSampler z(1, 1.0);
  Rng rng(1);
  EXPECT_EQ(z.Sample(rng), 0u);
  EXPECT_DOUBLE_EQ(z.Probability(0), 1.0);
  EXPECT_DOUBLE_EQ(z.Probability(5), 0.0);
}

TEST(SystemErrorsTest, RejectsHugeTauAndServesWithoutCache) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "eeb_sys_err").string();
  std::filesystem::create_directories(dir);
  workload::DatasetSpec dspec;
  dspec.n = 1000;
  dspec.dim = 8;
  dspec.ndom = 256;
  Dataset data = workload::GenerateClustered(dspec);
  workload::QueryLogSpec qspec;
  qspec.pool_size = 10;
  qspec.workload_size = 30;
  qspec.test_size = 3;
  auto log = workload::GenerateQueryLog(data, qspec);
  std::unique_ptr<core::System> sys;
  ASSERT_TRUE(core::System::Create(storage::Env::Default(), dir, data,
                                   log.workload, {}, &sys)
                  .ok());
  EXPECT_TRUE(sys->ConfigureCache(core::CacheMethod::kHcO, 10000, 30)
                  .IsInvalidArgument());
  // NO-CACHE still serves.
  ASSERT_TRUE(sys->ConfigureCache(core::CacheMethod::kNone, 0).ok());
  core::QueryResult r;
  ASSERT_TRUE(sys->Query(log.test[0], 5, &r).ok());
  EXPECT_EQ(r.result_ids.size(), 5u);
  std::filesystem::remove_all(dir);
}

TEST(ApproximateDbscanTest, LshNeighborhoodsStillCluster) {
  // DBSCAN over LSH candidates is the approximate variant: neighborhoods
  // are restricted to LSH candidates, but on well-separated blobs it finds
  // the same macro structure.
  Rng rng(31);
  Dataset data(8);
  std::vector<Scalar> p(8);
  const double centers[2] = {40, 216};
  for (int b = 0; b < 2; ++b) {
    for (int i = 0; i < 400; ++i) {
      for (auto& v : p) {
        v = static_cast<Scalar>(std::max(
            0.0, std::min(255.0, centers[b] + rng.NextGaussian() * 5)));
      }
      data.Append(p);
    }
  }
  storage::MemEnv env;
  ASSERT_TRUE(storage::PointFile::Create(&env, "/p", data).ok());
  std::unique_ptr<storage::PointFile> pf;
  ASSERT_TRUE(storage::PointFile::Open(&env, "/p", &pf).ok());

  index::C2LshOptions lo;
  lo.num_functions = 16;
  lo.collision_threshold = 6;
  lo.beta_candidates = 300;
  std::unique_ptr<index::C2Lsh> lsh;
  ASSERT_TRUE(index::C2Lsh::Build(data, lo, &lsh).ok());

  core::DbscanOptions opt;
  opt.eps = 40.0;
  opt.min_pts = 5;
  opt.k_hint = 50;
  core::DbscanResult res;
  ASSERT_TRUE(core::Dbscan(lsh.get(), *pf, nullptr, data, opt, &res).ok());
  EXPECT_EQ(res.num_clusters, 2);
  // The two blobs get different labels.
  EXPECT_NE(res.labels[0], res.labels[500]);
}

TEST(KnnJoinOnLshTest, JoinRunsThroughTheLshEngine) {
  workload::DatasetSpec dspec;
  dspec.n = 3000;
  dspec.dim = 16;
  dspec.ndom = 256;
  dspec.seed = 41;
  Dataset data = workload::GenerateClustered(dspec);
  storage::MemEnv env;
  ASSERT_TRUE(storage::PointFile::Create(&env, "/p", data).ok());
  std::unique_ptr<storage::PointFile> pf;
  ASSERT_TRUE(storage::PointFile::Open(&env, "/p", &pf).ok());
  index::C2LshOptions lo;
  lo.beta_candidates = 100;
  std::unique_ptr<index::C2Lsh> lsh;
  ASSERT_TRUE(index::C2Lsh::Build(data, lo, &lsh).ok());
  core::KnnEngine engine(lsh.get(), pf.get(), nullptr);

  Dataset outer(16);
  for (int i = 0; i < 10; ++i) {
    outer.Append(data.point(static_cast<PointId>(i * 100)));
  }
  core::KnnJoinResult join;
  ASSERT_TRUE(core::KnnJoin(engine, outer, {.k = 5}, &join).ok());
  ASSERT_EQ(join.neighbors.size(), 10u);
  for (const auto& nbrs : join.neighbors) {
    EXPECT_EQ(nbrs.size(), 5u);
    EXPECT_EQ(std::set<PointId>(nbrs.begin(), nbrs.end()).size(), 5u);
  }
}

TEST(SortedKeyLocalityTest, SimilarPointsLandNearby) {
  // The SK-LSH ordering's whole point: the positions of two near-duplicate
  // points in the order are closer (on average) than those of two random
  // points.
  workload::DatasetSpec dspec;
  dspec.n = 2000;
  dspec.dim = 16;
  dspec.ndom = 256;
  dspec.clusters = 10;
  dspec.cluster_stddev = 10.0;
  dspec.seed = 43;
  Dataset data = workload::GenerateClustered(dspec);
  auto order = storage::SortedKeyOrder(data, 4, 64.0, 1);
  std::vector<size_t> pos(data.size());
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;

  // Pairs of nearest neighbors vs random pairs.
  Rng rng(47);
  double near_gap = 0, random_gap = 0;
  int trials = 50;
  for (int t = 0; t < trials; ++t) {
    const PointId a = static_cast<PointId>(rng.Uniform(data.size()));
    // Nearest neighbor of a (brute force).
    PointId best = a;
    double best_d = 1e18;
    for (size_t i = 0; i < data.size(); ++i) {
      if (i == a) continue;
      const double d = L2(data.point(a), data.point(static_cast<PointId>(i)));
      if (d < best_d) {
        best_d = d;
        best = static_cast<PointId>(i);
      }
    }
    near_gap += std::abs(static_cast<long>(pos[a]) -
                         static_cast<long>(pos[best]));
    const PointId r = static_cast<PointId>(rng.Uniform(data.size()));
    random_gap += std::abs(static_cast<long>(pos[a]) -
                           static_cast<long>(pos[r]));
  }
  EXPECT_LT(near_gap, random_gap * 0.5)
      << "sorted-key order should co-locate similar points";
}

}  // namespace
}  // namespace eeb
