// Tests for the observability subsystem: instruments (counter, gauge,
// log-bucketed latency histogram), registry semantics, exporters, per-query
// trace spans, and an end-to-end System smoke test that checks the pipeline
// instruments fire during real queries.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "cache/exact_cache.h"
#include "cache/shadow_cache.h"
#include "core/system.h"
#include "obs/cache_analytics.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/window.h"
#include "storage/mem_env.h"
#include "workload/generator.h"

namespace eeb::obs {
namespace {

// ---------------------------------------------------------------- Counter --

TEST(CounterTest, AddAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(CounterTest, ConcurrentAddsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), kThreads * kPerThread);
}

// ------------------------------------------------------------------ Gauge --

TEST(GaugeTest, SetAddReset) {
  Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.Add(-4.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(GaugeTest, ConcurrentAddsSumExactlyWithIntegralDeltas) {
  Gauge g;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.Add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  // Integral doubles up to 2^53 add without rounding, so the CAS loop must
  // lose no increment.
  EXPECT_DOUBLE_EQ(g.value(), double(kThreads) * kPerThread);
}

// ------------------------------------------------------ LatencyHistogram --

TEST(LatencyHistogramTest, CountSumMaxMean) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 0.0);
  h.Record(0.001);
  h.Record(0.003);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.004);
  EXPECT_DOUBLE_EQ(h.max(), 0.003);
  EXPECT_DOUBLE_EQ(h.mean(), 0.002);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(LatencyHistogramTest, OutOfRangeValuesAreClamped) {
  LatencyHistogram h;
  h.Record(0.0);      // below range -> underflow bucket
  h.Record(-5.0);     // negative -> underflow bucket
  h.Record(1e9);      // above range -> top bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
  // p0 lands in the underflow bucket, represented as the range minimum.
  EXPECT_LE(h.Percentile(0.0), LatencyHistogram::kMinValue);
}

// Percentiles from the histogram must match the exact sorted quantiles
// within one relative bucket width (the acceptance bound of the histogram
// design) on a distribution spanning several orders of magnitude.
TEST(LatencyHistogramTest, PercentilesMatchExactQuantilesWithinBucketWidth) {
  LatencyHistogram h;
  std::mt19937_64 rng(123);
  // Log-uniform in [10 us, 1 s]: every decade gets mass, like real latency.
  std::uniform_real_distribution<double> exp_dist(std::log(1e-5),
                                                  std::log(1.0));
  std::vector<double> values;
  values.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const double v = std::exp(exp_dist(rng));
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());

  const double width = LatencyHistogram::RelativeBucketWidth();
  for (double p : {0.0, 0.10, 0.50, 0.90, 0.95, 0.99, 1.0}) {
    const size_t idx =
        static_cast<size_t>(p * static_cast<double>(values.size() - 1));
    const double exact = values[idx];
    const double approx = h.Percentile(p);
    EXPECT_GE(approx, exact / width) << "p=" << p;
    EXPECT_LE(approx, exact * width) << "p=" << p;
  }
  // Monotone in p.
  EXPECT_LE(h.Percentile(0.50), h.Percentile(0.95));
  EXPECT_LE(h.Percentile(0.95), h.Percentile(0.99));
}

TEST(LatencyHistogramTest, SingleValuePercentileIsTight) {
  LatencyHistogram h;
  h.Record(0.0125);
  const double width = LatencyHistogram::RelativeBucketWidth();
  for (double p : {0.0, 0.5, 1.0}) {
    EXPECT_GE(h.Percentile(p), 0.0125 / width);
    EXPECT_LE(h.Percentile(p), 0.0125 * width);
  }
}

// --------------------------------------------------------------- Registry --

TEST(MetricsRegistryTest, SameNameReturnsSamePointer) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("cache.hits");
  Counter* c2 = reg.GetCounter("cache.hits");
  EXPECT_EQ(c1, c2);
  EXPECT_NE(c1, reg.GetCounter("cache.misses"));
  EXPECT_EQ(reg.GetGauge("cache.items"), reg.GetGauge("cache.items"));
  EXPECT_EQ(reg.GetHistogram("lat"), reg.GetHistogram("lat"));
}

TEST(MetricsRegistryTest, SnapshotsAreSortedAndComplete) {
  MetricsRegistry reg;
  reg.GetCounter("b.second")->Add(2);
  reg.GetCounter("a.first")->Add(1);
  reg.GetGauge("g")->Set(1.5);
  reg.GetHistogram("h")->Record(0.25);

  auto counters = reg.Counters();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "a.first");
  EXPECT_EQ(counters[0].second, 1u);
  EXPECT_EQ(counters[1].first, "b.second");
  EXPECT_EQ(counters[1].second, 2u);

  auto gauges = reg.Gauges();
  ASSERT_EQ(gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(gauges[0].second, 1.5);

  auto hists = reg.Histograms();
  ASSERT_EQ(hists.size(), 1u);
  EXPECT_EQ(hists[0].second.count, 1u);
  EXPECT_DOUBLE_EQ(hists[0].second.max, 0.25);
  EXPECT_LE(hists[0].second.p50, hists[0].second.p95);
  EXPECT_LE(hists[0].second.p95, hists[0].second.p99);

  reg.ResetAll();
  EXPECT_EQ(reg.Counters()[0].second, 0u);
  EXPECT_DOUBLE_EQ(reg.Gauges()[0].second, 0.0);
  EXPECT_EQ(reg.Histograms()[0].second.count, 0u);
}

TEST(MetricsRegistryTest, RecordIfErrorTagsByCause) {
  MetricsRegistry reg;
  RecordIfError(&reg, Status::OK(), "flush");  // OK is free
  EXPECT_TRUE(reg.Counters().empty());

  RecordIfError(&reg, Status::IOError("disk gone"), "flush");
  RecordIfError(&reg, Status::IOError("disk gone"), "flush");
  RecordIfError(&reg, Status::Corruption("bad page"), "reload");
  RecordIfError(nullptr, Status::IOError("x"), "flush");  // null registry: no-op

  EXPECT_EQ(reg.GetCounter("status.dropped.flush")->value(), 2u);
  EXPECT_EQ(reg.GetCounter("status.dropped.reload")->value(), 1u);
}

// -------------------------------------------------------------- Exporters --

TEST(ExportTest, StreamSinkMatchesStringOverloads) {
  MetricsRegistry reg;
  reg.GetCounter("cache.hits")->Add(7);
  reg.GetGauge("cache.bytes")->Set(1024.0);
  reg.GetHistogram("query.seconds")->Record(0.25);

  std::ostringstream prom;
  ExportPrometheus(reg, prom);
  EXPECT_EQ(prom.str(), ExportPrometheus(reg));

  std::ostringstream json;
  ExportJson(reg, json);
  EXPECT_EQ(json.str(), ExportJson(reg));

  // Caller stream formatting state must not leak into the output.
  std::ostringstream weird;
  weird.precision(1);
  weird.setf(std::ios::fixed);
  ExportJson(reg, weird);
  EXPECT_EQ(weird.str(), ExportJson(reg));
}

TEST(ExportTest, PrometheusFormat) {
  MetricsRegistry reg;
  reg.GetCounter("cache.hits")->Add(7);
  reg.GetGauge("cache.items")->Set(42.0);
  reg.GetHistogram("engine.gen_seconds")->Record(0.5);

  const std::string text = ExportPrometheus(reg);
  EXPECT_NE(text.find("# TYPE eeb_cache_hits counter"), std::string::npos);
  EXPECT_NE(text.find("eeb_cache_hits_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE eeb_cache_items gauge"), std::string::npos);
  EXPECT_NE(text.find("eeb_cache_items 42"), std::string::npos);
  EXPECT_NE(text.find("eeb_engine_gen_seconds{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("eeb_engine_gen_seconds_count 1"), std::string::npos);
}

TEST(ExportTest, JsonFormat) {
  MetricsRegistry reg;
  reg.GetCounter("n")->Add(3);
  reg.GetGauge("g")->Set(0.25);
  reg.GetHistogram("h")->Record(1.0);

  const std::string json = ExportJson(reg);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"n\":3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"g\":0.25"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(ExportTest, ValidatesMetricNames) {
  EXPECT_TRUE(IsValidMetricName("cache.hits"));
  EXPECT_TRUE(IsValidMetricName("live.latency.p95_seconds"));
  EXPECT_TRUE(IsValidMetricName("n0"));
  EXPECT_FALSE(IsValidMetricName(""));
  EXPECT_FALSE(IsValidMetricName("Cache.Hits"));     // uppercase
  EXPECT_FALSE(IsValidMetricName("cache..hits"));    // empty segment
  EXPECT_FALSE(IsValidMetricName(".hits"));          // leading dot
  EXPECT_FALSE(IsValidMetricName("cache.hits."));    // trailing dot
  EXPECT_FALSE(IsValidMetricName("cache-hits"));     // dash
  EXPECT_FALSE(IsValidMetricName("a b"));            // space
  EXPECT_FALSE(IsValidMetricName("x\nrogue 1"));     // exposition injection
}

TEST(ExportTest, PrometheusSkipsInvalidNamesAndReportsTheSkips) {
  MetricsRegistry reg;
  reg.GetCounter("cache.hits")->Add(7);
  // A malformed name (from a buggy call site) must not corrupt the whole
  // exposition: a scraper rejects the full scrape on one bad line.
  reg.GetCounter("BAD NAME\nrogue_metric 1")->Add(3);
  reg.GetGauge("also bad")->Set(1.0);

  const std::string text = ExportPrometheus(reg);
  EXPECT_NE(text.find("eeb_cache_hits_total 7"), std::string::npos);
  EXPECT_EQ(text.find("BAD"), std::string::npos);
  EXPECT_EQ(text.find("rogue_metric"), std::string::npos);
  EXPECT_EQ(text.find("also bad"), std::string::npos);
  EXPECT_NE(text.find("# TYPE eeb_export_skipped_invalid_names gauge"),
            std::string::npos);
  EXPECT_NE(text.find("eeb_export_skipped_invalid_names 2"),
            std::string::npos);
  // A clean registry does not emit the skip gauge at all.
  MetricsRegistry clean;
  clean.GetCounter("ok")->Add(1);
  EXPECT_EQ(ExportPrometheus(clean).find("skipped_invalid_names"),
            std::string::npos);
}

TEST(ExportTest, PrometheusEmitsHelpAndTypeForEveryFamily) {
  MetricsRegistry reg;
  reg.GetCounter("cache.miss.compulsory")->Add(2);
  reg.GetGauge("cache.mrc.predicted_miss_ratio")->Set(0.25);
  reg.GetGauge("live.shadow.lru_2x.hit_ratio")->Set(0.5);
  reg.GetHistogram("system.response_seconds")->Record(0.01);

  // Prometheus exposition contract: every sample line belongs to a family
  // whose "# HELP <name> ..." and "# TYPE <name> <kind>" lines appeared
  // first, in that order. A scraper drops families that violate this.
  const std::string text = ExportPrometheus(reg);
  std::istringstream in(text);
  std::string line;
  std::set<std::string> helped, typed;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string tok;
    ls >> tok;
    if (tok == "#") {
      std::string kind, family;
      ls >> kind >> family;
      ASSERT_TRUE(kind == "HELP" || kind == "TYPE") << line;
      if (kind == "HELP") {
        EXPECT_FALSE(helped.count(family)) << "duplicate HELP: " << line;
        EXPECT_FALSE(typed.count(family)) << "TYPE before HELP: " << line;
        helped.insert(family);
      } else {
        EXPECT_TRUE(helped.count(family)) << "TYPE without HELP: " << line;
        typed.insert(family);
      }
      continue;
    }
    // Sample line: strip label block and exporter-added suffixes to recover
    // the family name announced by HELP/TYPE.
    std::string family = tok.substr(0, tok.find('{'));
    for (const char* suffix : {"_total", "_sum", "_count", "_max"}) {
      const size_t n = std::strlen(suffix);
      if (family.size() > n &&
          family.compare(family.size() - n, n, suffix) == 0 &&
          typed.count(family) == 0) {
        family.resize(family.size() - n);
        break;
      }
    }
    EXPECT_TRUE(helped.count(family) && typed.count(family))
        << "sample before HELP/TYPE: " << line;
  }
  // The new analytics families surface with their dotted names in HELP.
  EXPECT_NE(text.find("# HELP eeb_cache_miss_compulsory "
                      "cache.miss.compulsory (counter)"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE eeb_cache_mrc_predicted_miss_ratio gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE eeb_live_shadow_lru_2x_hit_ratio gauge"),
            std::string::npos);
}

// Every metric name the full serving stack registers — engine counters,
// cache instruments, windowed live gauges, cache analytics, shadow panels —
// must pass IsValidMetricName, or the Prometheus exporter will refuse to
// emit it. Wired as the `metric_names` ctest.
TEST(MetricNames, AllRegisteredNamesAreValid) {
  workload::DatasetSpec dspec;
  dspec.n = 2000;
  dspec.dim = 16;
  dspec.ndom = 256;
  dspec.clusters = 8;
  dspec.seed = 13;
  Dataset data = workload::GenerateClustered(dspec);
  workload::QueryLogSpec qspec;
  qspec.pool_size = 30;
  qspec.workload_size = 100;
  qspec.test_size = 10;
  workload::QueryLog log = workload::GenerateQueryLog(data, qspec);

  core::SystemOptions opt;
  opt.lsh.beta_candidates = 100;
  storage::MemEnv env;
  std::unique_ptr<core::System> system;
  ASSERT_TRUE(core::System::Create(&env, "/metric_names", data, log.workload,
                                   opt, &system)
                  .ok());

  MetricsRegistry metrics;
  WindowedMetrics window;
  CacheAnalytics::Options aopt;
  aopt.sampling_rate = 1.0;
  aopt.key_space = data.size();
  CacheAnalytics analytics(aopt);
  analytics.BindMetrics(&metrics);
  cache::ShadowCacheSet shadows(cache::DefaultShadowConfigs(64));
  system->EnableMetrics(&metrics);
  system->SetWindow(&window);
  system->SetCacheAnalytics(&analytics);
  system->SetShadowCaches(&shadows);
  ASSERT_TRUE(system->ConfigureCache(core::CacheMethod::kHcO, 4096).ok());

  core::AggregateResult agg;
  ASSERT_TRUE(system->RunQueries(log.test, 10, &agg).ok());
  ASSERT_TRUE(system->ReconfigureCache().ok());  // generation-swap gauges
  ASSERT_TRUE(system->RunQueries(log.test, 10, &agg).ok());
  analytics.PublishMetrics();
  window.PublishTo(&metrics);

  size_t checked = 0;
  for (const auto& [name, value] : metrics.Counters()) {
    EXPECT_TRUE(IsValidMetricName(name)) << "counter: " << name;
    ++checked;
  }
  for (const auto& [name, value] : metrics.Gauges()) {
    EXPECT_TRUE(IsValidMetricName(name)) << "gauge: " << name;
    ++checked;
  }
  for (const auto& [name, stats] : metrics.Histograms()) {
    EXPECT_TRUE(IsValidMetricName(name)) << "histogram: " << name;
    ++checked;
  }
  // The walk saw the whole stack, not a near-empty registry: analytics
  // counters, MRC gauges, live window gauges, and per-shadow panels.
  EXPECT_GT(checked, 40u);
  const auto counters = metrics.Counters();
  auto has_counter = [&counters](const std::string& name) {
    for (const auto& [n, v] : counters) {
      if (n == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_counter("cache.miss.compulsory"));
  const auto gauges = metrics.Gauges();
  auto has_gauge = [&gauges](const std::string& name) {
    for (const auto& [n, v] : gauges) {
      if (n == name) return true;
    }
    return false;
  };
  EXPECT_TRUE(has_gauge("cache.mrc.sampling_rate"));
  EXPECT_TRUE(has_gauge("cache.ws.jaccard"));
  EXPECT_TRUE(has_gauge("cache.analytics.generation_swaps"));
  EXPECT_TRUE(has_gauge("live.qps"));
  EXPECT_TRUE(has_gauge("live.shadow.lru_1x.hit_ratio"));

  system->SetShadowCaches(nullptr);
  system->SetCacheAnalytics(nullptr);
  system->SetWindow(nullptr);
  system->EnableMetrics(nullptr);
}

TEST(ExportTest, PrometheusEscapesLabelValues) {
  EXPECT_EQ(PromEscapeLabelValue("plain"), "plain");
  EXPECT_EQ(PromEscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(PromEscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(PromEscapeLabelValue("a\nb"), "a\\nb");

  MetricsRegistry reg;
  reg.GetCounter("cache.hits")->Add(7);
  reg.GetHistogram("engine.gen_seconds")->Record(0.5);
  PromLabels labels;
  labels.emplace_back("instance", "host\"1\"\n\\end");
  std::ostringstream os;
  ExportPrometheus(reg, os, labels);
  const std::string text = os.str();
  EXPECT_NE(
      text.find(
          "eeb_cache_hits_total{instance=\"host\\\"1\\\"\\n\\\\end\"} 7"),
      std::string::npos);
  // Histogram quantile series carry the extra labels alongside "quantile".
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(text.find("eeb_engine_gen_seconds_count{instance="),
            std::string::npos);
  // No unescaped newline may survive inside a label value: every line must
  // be a comment, blank, or "name{...} value".
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    EXPECT_NE(line.find(' '), std::string::npos) << "torn line: " << line;
  }
}

TEST(ExportTest, JsonEscapesMetricNames) {
  MetricsRegistry reg;
  reg.GetCounter("weird\"name\\with\nstuff")->Add(1);
  const std::string json = ExportJson(reg);
  EXPECT_NE(json.find("\"weird\\\"name\\\\with\\nstuff\":1"),
            std::string::npos);
  // The raw quote/newline must not appear un-escaped (which would tear the
  // JSON document).
  EXPECT_EQ(json.find("weird\"name"), std::string::npos);
}

TEST(ExportTest, WriteStringToFileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "eeb_obs_write.txt").string();
  ASSERT_TRUE(WriteStringToFile(path, "payload\n").ok());
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "payload\n");
  std::filesystem::remove(path);
  EXPECT_TRUE(WriteStringToFile("/nonexistent/dir/x.txt", "x").IsIOError());
}

// ----------------------------------------------------------------- Tracer --

TEST(TracerTest, SpanLifecycleAndJsonl) {
  Tracer tracer;
  QuerySpan* s = tracer.StartSpan(10);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->k, 10u);
  tracer.AddEvent(s, TraceEventType::kCacheHit, 5, 1.25);
  tracer.AddEvent(s, TraceEventType::kEarlyPrune, 6, 2.0);
  s->candidates = 2;
  tracer.EndSpan();

  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_EQ(tracer.spans()[0].events.size(), 2u);
  EXPECT_EQ(tracer.spans()[0].events[0].type, TraceEventType::kCacheHit);

  // last_span() is mutable so the harness can attach modeled I/O time.
  tracer.last_span()->modeled_io_seconds = 0.125;

  const std::string jsonl = tracer.ToJsonl();
  EXPECT_NE(jsonl.find("\"query\":0"), std::string::npos);
  EXPECT_NE(jsonl.find("\"k\":10"), std::string::npos);
  EXPECT_NE(jsonl.find("\"modeled_io_seconds\":0.125"), std::string::npos);
  EXPECT_NE(jsonl.find("\"t\":\"cache_hit\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"t\":\"early_prune\""), std::string::npos);
  EXPECT_EQ(std::count(jsonl.begin(), jsonl.end(), '\n'), 1);

  tracer.Clear();
  EXPECT_TRUE(tracer.spans().empty());
  EXPECT_EQ(tracer.last_span(), nullptr);
}

TEST(TracerTest, StreamSinkMatchesStringOverload) {
  Tracer tracer;
  QuerySpan* s = tracer.StartSpan(3);
  tracer.AddEvent(s, TraceEventType::kFetch, 42, 0.5);
  tracer.EndSpan();

  std::ostringstream os;
  tracer.WriteJsonl(os);
  EXPECT_EQ(os.str(), tracer.ToJsonl());
  EXPECT_NE(os.str().find("\"t\":\"fetch\""), std::string::npos);
}

TEST(TracerTest, EventCapCountsDrops) {
  Tracer tracer(/*max_events_per_span=*/2);
  QuerySpan* s = tracer.StartSpan(1);
  for (int i = 0; i < 5; ++i) {
    tracer.AddEvent(s, TraceEventType::kFetch, i, 0.0);
  }
  tracer.EndSpan();
  EXPECT_EQ(tracer.spans()[0].events.size(), 2u);
  EXPECT_EQ(tracer.spans()[0].dropped_events, 3u);
}

TEST(TracerTest, AggregatesOnlyMode) {
  Tracer tracer(/*max_events_per_span=*/4096, /*record_events=*/false);
  QuerySpan* s = tracer.StartSpan(1);
  tracer.AddEvent(s, TraceEventType::kFetch, 1, 0.0);
  tracer.EndSpan();
  EXPECT_TRUE(tracer.spans()[0].events.empty());
  EXPECT_EQ(tracer.spans()[0].dropped_events, 1u);
}

TEST(TracerTest, StartSpanClosesLeakedSpan) {
  Tracer tracer;
  tracer.StartSpan(1);  // never ended (error path)
  tracer.StartSpan(2);
  tracer.EndSpan();
  ASSERT_EQ(tracer.spans().size(), 2u);
  EXPECT_EQ(tracer.spans()[0].k, 1u);
  EXPECT_EQ(tracer.spans()[1].k, 2u);
}

// ------------------------------------------------------ System end-to-end --

TEST(ObsSystemTest, PipelineInstrumentsFireDuringQueries) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "eeb_obs_system").string();
  std::filesystem::create_directories(dir);

  workload::DatasetSpec dspec;
  dspec.n = 3000;
  dspec.dim = 16;
  dspec.ndom = 256;
  dspec.clusters = 8;
  dspec.seed = 11;
  Dataset data = workload::GenerateClustered(dspec);

  workload::QueryLogSpec qspec;
  qspec.pool_size = 30;
  qspec.workload_size = 100;
  qspec.test_size = 10;
  workload::QueryLog log = workload::GenerateQueryLog(data, qspec);

  core::SystemOptions opt;
  opt.lsh.beta_candidates = 100;
  std::unique_ptr<core::System> system;
  ASSERT_TRUE(core::System::Create(storage::Env::Default(), dir, data,
                                   log.workload, opt, &system)
                  .ok());

  MetricsRegistry metrics;
  Tracer tracer;
  system->EnableMetrics(&metrics);
  system->SetTracer(&tracer);
  // Deliberately tiny: misses and refinement fetches must occur so the
  // storage counters see traffic.
  ASSERT_TRUE(
      system->ConfigureCache(core::CacheMethod::kHcO, 4096).ok());

  core::AggregateResult agg;
  ASSERT_TRUE(system->RunQueries(log.test, 10, &agg).ok());

  // Batch-level instruments.
  EXPECT_EQ(metrics.GetCounter("system.queries")->value(), log.test.size());
  EXPECT_EQ(metrics.GetCounter("engine.queries")->value(), log.test.size());
  EXPECT_EQ(metrics.GetHistogram("system.response_seconds")->count(),
            log.test.size());

  // Pipeline stages all saw traffic.
  EXPECT_EQ(metrics.GetCounter("lsh.queries")->value(), log.test.size());
  EXPECT_GT(metrics.GetCounter("lsh.bucket_probes")->value(), 0u);
  EXPECT_GT(metrics.GetCounter("engine.candidates")->value(), 0u);
  EXPECT_GT(metrics.GetCounter("cache.hits")->value() +
                metrics.GetCounter("cache.misses")->value(),
            0u);
  EXPECT_GT(metrics.GetCounter("storage.point_reads")->value(), 0u);
  EXPECT_GT(metrics.GetGauge("cache.items")->value(), 0.0);

  // Engine counters agree with the cache's own accounting.
  EXPECT_EQ(metrics.GetCounter("engine.cache_hits")->value(),
            metrics.GetCounter("cache.hits")->value());

  // One span per query, with the batch runner's modeled time attached.
  ASSERT_EQ(tracer.spans().size(), log.test.size());
  for (const QuerySpan& s : tracer.spans()) {
    EXPECT_EQ(s.k, 10u);
    EXPECT_GT(s.candidates, 0u);
    EXPECT_GT(s.response_seconds, 0.0);
    EXPECT_GE(s.response_seconds, s.modeled_io_seconds);
    EXPECT_FALSE(s.events.empty());
  }

  // The histogram percentiles surfaced in AggregateResult are ordered.
  EXPECT_LE(agg.p50_response_seconds, agg.p95_response_seconds);
  EXPECT_LE(agg.p95_response_seconds, agg.p99_response_seconds);
  EXPECT_GT(agg.p99_response_seconds, 0.0);

  // Exporters see the bound instruments.
  const std::string prom = ExportPrometheus(metrics);
  EXPECT_NE(prom.find("eeb_engine_queries_total"), std::string::npos);
  const std::string json = ExportJson(metrics);
  EXPECT_NE(json.find("\"system.response_seconds\""), std::string::npos);

  system->SetTracer(nullptr);
  system->EnableMetrics(nullptr);
  ASSERT_TRUE(system->RunQueries(log.test, 10, &agg).ok());  // detached ok

  std::filesystem::remove_all(dir);
}

// One thread drives a cache (probe / admit / publish) while another exports
// the registry in a loop. The caches themselves are single-threaded by
// contract, but their bound instruments are shared with exporter threads;
// under -DEEB_SANITIZE=thread this test proves the counter and gauge paths
// between cache publication and the exporters are race-free.
TEST(ObsSystemTest, ExportWhileCacheDriverPublishesIsRaceFree) {
  constexpr size_t kDim = 4;
  MetricsRegistry metrics;
  cache::ExactCache cache(kDim, /*capacity_bytes=*/16 * kDim * sizeof(Scalar),
                          /*lru=*/true);
  cache.BindMetrics(&metrics, "cache");

  std::atomic<bool> stop{false};
  std::thread exporter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      std::ostringstream prom;
      std::ostringstream json;
      ExportPrometheus(metrics, prom);
      ExportJson(metrics, json);
    }
  });

  const std::vector<Scalar> q(kDim, 0.5F);
  for (int round = 0; round < 200; ++round) {
    for (PointId id = 0; id < 32; ++id) {
      double lb = 0.0;
      double ub = 0.0;
      if (!cache.Probe(q, id, &lb, &ub)) {
        const std::vector<Scalar> exact(kDim, static_cast<Scalar>(id));
        cache.Admit(id, exact);
      }
    }
    cache.PublishMetrics();
  }
  stop.store(true);
  exporter.join();

  EXPECT_GT(metrics.GetCounter("cache.misses")->value(), 0U);
  EXPECT_GT(metrics.GetCounter("cache.evictions")->value(), 0U);
}

}  // namespace
}  // namespace eeb::obs
