// Tests for the M-tree(-family ball tree) and Multi-Probe LSH.

#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>
#include <set>

#include "common/dataset.h"
#include "common/random.h"
#include "cache/node_cache.h"
#include "hist/builders.h"
#include "index/linear_scan.h"
#include "index/lsh/e2lsh.h"
#include "index/lsh/multiprobe.h"
#include "index/mtree/mtree.h"
#include "workload/generator.h"

namespace eeb::index {
namespace {

Dataset MakeData(size_t n, uint64_t seed) {
  workload::DatasetSpec spec;
  spec.n = n;
  spec.dim = 16;
  spec.ndom = 256;
  spec.clusters = 8;
  spec.cluster_stddev = 30.0;
  spec.sub_stddev = 5.0;
  spec.intrinsic_dim = 6;
  spec.seed = seed;
  return workload::GenerateClustered(spec);
}

std::vector<Scalar> NearQuery(const Dataset& data, Rng& rng) {
  const PointId src = static_cast<PointId>(rng.Uniform(data.size()));
  std::vector<Scalar> q(data.point(src).begin(), data.point(src).end());
  for (auto& v : q) v += static_cast<Scalar>(rng.NextGaussian() * 2);
  return q;
}

bool SameIds(const std::vector<Neighbor>& a, const std::vector<Neighbor>& b) {
  std::set<PointId> sa, sb;
  for (const auto& x : a) sa.insert(x.id);
  for (const auto& x : b) sb.insert(x.id);
  return sa == sb;
}

// ------------------------------------------------------------------ M-tree --

class MTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = MakeData(3000, 31);
    path_ = (std::filesystem::temp_directory_path() / "eeb_mtree").string();
    ASSERT_TRUE(
        MTree::Build(storage::Env::Default(), path_, data_, {}, &idx_).ok());
  }
  void TearDown() override {
    storage::Env::Default()->DeleteFile(path_).IgnoreError();
  }

  Dataset data_;
  std::string path_;
  std::unique_ptr<MTree> idx_;
};

TEST_F(MTreeTest, EveryPointInExactlyOneLeaf) {
  std::vector<int> count(data_.size(), 0);
  for (const auto& leaf : idx_->store().leaf_points()) {
    for (PointId id : leaf) count[id]++;
  }
  for (size_t i = 0; i < count.size(); ++i) EXPECT_EQ(count[i], 1);
}

TEST_F(MTreeTest, ExactWithoutCache) {
  Rng rng(37);
  for (int t = 0; t < 12; ++t) {
    auto q = NearQuery(data_, rng);
    TreeSearchResult res;
    ASSERT_TRUE(idx_->Search(q, 10, nullptr, &res).ok());
    EXPECT_TRUE(SameIds(res.neighbors, LinearScanKnn(data_, q, 10)));
  }
}

TEST_F(MTreeTest, LeafLowerBoundsAreValid) {
  Rng rng(41);
  auto q = NearQuery(data_, rng);
  std::vector<double> lb;
  idx_->LeafLowerBounds(q, &lb);
  const auto& leaves = idx_->store().leaf_points();
  for (size_t l = 0; l < leaves.size(); ++l) {
    for (PointId id : leaves[l]) {
      EXPECT_GE(L2(std::span<const Scalar>(q), data_.point(id)),
                lb[l] - 1e-6);
    }
  }
}

TEST_F(MTreeTest, PrunesMostLeavesOnStructuredData) {
  Rng rng(43);
  auto q = NearQuery(data_, rng);
  TreeSearchResult res;
  ASSERT_TRUE(idx_->Search(q, 10, nullptr, &res).ok());
  EXPECT_LT(res.leaves_fetched, idx_->num_leaves() / 2);
}

TEST_F(MTreeTest, ApproxNodeCachePreservesResultsAndSavesFetches) {
  hist::Histogram h;
  ASSERT_TRUE(hist::BuildEquiWidth(256, 64, &h).ok());
  cache::ApproxNodeCache cache(&h, 16, 1 << 22, /*integral=*/true);
  std::vector<uint32_t> order(idx_->num_leaves());
  std::iota(order.begin(), order.end(), 0u);
  ASSERT_TRUE(cache.Fill(data_, idx_->store().leaf_points(), order).ok());

  Rng rng(47);
  uint64_t cached = 0, plain = 0;
  for (int t = 0; t < 12; ++t) {
    auto q = NearQuery(data_, rng);
    TreeSearchResult a, b;
    ASSERT_TRUE(idx_->Search(q, 10, &cache, &a).ok());
    ASSERT_TRUE(idx_->Search(q, 10, nullptr, &b).ok());
    EXPECT_TRUE(SameIds(a.neighbors, b.neighbors));
    cached += a.leaves_fetched;
    plain += b.leaves_fetched;
  }
  EXPECT_LE(cached, plain);
}

// ---------------------------------------------------------- Multi-Probe --

TEST(MultiProbeTest, RejectsBadOptions) {
  Dataset data = MakeData(100, 3);
  std::unique_ptr<MultiProbeLsh> idx;
  MultiProbeOptions o;
  o.num_tables = 0;
  EXPECT_TRUE(MultiProbeLsh::Build(data, o, &idx).IsInvalidArgument());
}

TEST(MultiProbeTest, DeterministicSortedUnique) {
  Dataset data = MakeData(2000, 5);
  std::unique_ptr<MultiProbeLsh> a, b;
  ASSERT_TRUE(MultiProbeLsh::Build(data, {}, &a).ok());
  ASSERT_TRUE(MultiProbeLsh::Build(data, {}, &b).ok());
  std::vector<Scalar> q(16, 128);
  std::vector<PointId> ca, cb;
  ASSERT_TRUE(a->Candidates(q, 10, &ca, nullptr).ok());
  ASSERT_TRUE(b->Candidates(q, 10, &cb, nullptr).ok());
  EXPECT_EQ(ca, cb);
  EXPECT_TRUE(std::is_sorted(ca.begin(), ca.end()));
  EXPECT_EQ(std::set<PointId>(ca.begin(), ca.end()).size(), ca.size());
}

TEST(MultiProbeTest, MoreProbesMoreCandidates) {
  Dataset data = MakeData(4000, 7);
  std::unique_ptr<MultiProbeLsh> few, many;
  MultiProbeOptions lo, hi;
  lo.probes_per_table = 0;
  hi.probes_per_table = 8;
  ASSERT_TRUE(MultiProbeLsh::Build(data, lo, &few).ok());
  ASSERT_TRUE(MultiProbeLsh::Build(data, hi, &many).ok());
  Rng rng(9);
  size_t few_total = 0, many_total = 0;
  for (int t = 0; t < 10; ++t) {
    auto q = NearQuery(data, rng);
    std::vector<PointId> cf, cm;
    ASSERT_TRUE(few->Candidates(q, 10, &cf, nullptr).ok());
    ASSERT_TRUE(many->Candidates(q, 10, &cm, nullptr).ok());
    few_total += cf.size();
    many_total += cm.size();
  }
  EXPECT_GT(many_total, few_total);
}

TEST(MultiProbeTest, MatchesE2LshRecallWithFewerTables) {
  // The multi-probe pitch: similar recall from fewer tables.
  Dataset data = MakeData(5000, 11);
  std::unique_ptr<MultiProbeLsh> mp;
  MultiProbeOptions mo;
  mo.num_tables = 4;
  mo.probes_per_table = 8;
  ASSERT_TRUE(MultiProbeLsh::Build(data, mo, &mp).ok());
  std::unique_ptr<E2Lsh> e2;
  E2LshOptions eo;
  eo.num_tables = 4;  // same table budget, no probing
  ASSERT_TRUE(E2Lsh::Build(data, eo, &e2).ok());

  Rng rng(13);
  double recall_mp = 0, recall_e2 = 0;
  const size_t k = 10;
  for (int t = 0; t < 20; ++t) {
    auto q = NearQuery(data, rng);
    std::vector<PointId> cm, ce;
    ASSERT_TRUE(mp->Candidates(q, k, &cm, nullptr).ok());
    ASSERT_TRUE(e2->Candidates(q, k, &ce, nullptr).ok());
    std::set<PointId> sm(cm.begin(), cm.end()), se(ce.begin(), ce.end());
    for (const auto& nb : LinearScanKnn(data, q, k)) {
      recall_mp += sm.count(nb.id) ? 1 : 0;
      recall_e2 += se.count(nb.id) ? 1 : 0;
    }
  }
  EXPECT_GE(recall_mp, recall_e2)
      << "probing should not lose recall at equal table count";
}

TEST(MultiProbeTest, ChargesOneProbePerBucket) {
  Dataset data = MakeData(1000, 17);
  std::unique_ptr<MultiProbeLsh> idx;
  MultiProbeOptions o;
  o.num_tables = 3;
  o.probes_per_table = 5;
  ASSERT_TRUE(MultiProbeLsh::Build(data, o, &idx).ok());
  std::vector<Scalar> q(16, 100);
  std::vector<PointId> cand;
  storage::IoStats stats;
  ASSERT_TRUE(idx->Candidates(q, 10, &cand, &stats).ok());
  EXPECT_EQ(stats.page_reads, 3u * 6u);  // base + 5 probes per table
}

}  // namespace
}  // namespace eeb::index
