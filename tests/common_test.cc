// Unit and property tests for the common substrate: Status, Rng, Zipf,
// bit packing, TopK, Dataset, Discretizer, k-means.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/bitops.h"
#include "common/crc32c.h"
#include "common/dataset.h"
#include "common/discretizer.h"
#include "common/distance.h"
#include "common/kmeans.h"
#include "common/random.h"
#include "common/status.h"
#include "common/topk.h"
#include "common/zipf.h"

namespace eeb {
namespace {

// ---------------------------------------------------------------- Status --

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, CarriesCodeAndMessage) {
  Status s = Status::IOError("open failed");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsIOError());
  EXPECT_EQ(s.message(), "open failed");
  EXPECT_EQ(s.ToString(), "IOError: open failed");
}

TEST(StatusTest, AllConstructorsSetMatchingPredicate) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  auto fails = []() -> Status { return Status::NotFound("inner"); };
  auto outer = [&]() -> Status {
    EEB_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsNotFound());
}

// ------------------------------------------------------------------- Rng --

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.Uniform(17), 17u);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(11);
  double sum = 0, sumsq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int cnt = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) cnt += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(cnt) / n, 0.3, 0.02);
}

// ------------------------------------------------------------------ Zipf --

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfSampler z(100, 0.8);
  double total = 0;
  for (uint64_t i = 0; i < 100; ++i) total += z.Probability(i);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, RankZeroMostPopular) {
  ZipfSampler z(50, 1.0);
  for (uint64_t i = 1; i < 50; ++i) {
    EXPECT_GE(z.Probability(i - 1), z.Probability(i));
  }
}

TEST(ZipfTest, SkewZeroIsUniform) {
  ZipfSampler z(10, 0.0);
  for (uint64_t i = 0; i < 10; ++i) EXPECT_NEAR(z.Probability(i), 0.1, 1e-9);
}

TEST(ZipfTest, EmpiricalMatchesTheoretical) {
  ZipfSampler z(20, 1.2);
  Rng rng(17);
  std::map<uint64_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[z.Sample(rng)]++;
  for (uint64_t r = 0; r < 5; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, z.Probability(r), 0.01);
  }
}

TEST(ZipfTest, SamplesInRange) {
  ZipfSampler z(7, 0.5);
  Rng rng(23);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(z.Sample(rng), 7u);
}

// ---------------------------------------------------------------- bitops --

TEST(BitopsTest, CeilLog2) {
  EXPECT_EQ(CeilLog2(1), 0u);
  EXPECT_EQ(CeilLog2(2), 1u);
  EXPECT_EQ(CeilLog2(3), 2u);
  EXPECT_EQ(CeilLog2(4), 2u);
  EXPECT_EQ(CeilLog2(255), 8u);
  EXPECT_EQ(CeilLog2(256), 8u);
  EXPECT_EQ(CeilLog2(257), 9u);
}

TEST(BitopsTest, WordsForBits) {
  EXPECT_EQ(WordsForBits(0), 0u);
  EXPECT_EQ(WordsForBits(1), 1u);
  EXPECT_EQ(WordsForBits(64), 1u);
  EXPECT_EQ(WordsForBits(65), 2u);
  EXPECT_EQ(WordsForBits(128), 2u);
}

TEST(BitopsTest, PackUnpackRoundTripProperty) {
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    const uint32_t width = 1 + static_cast<uint32_t>(rng.Uniform(32));
    const size_t count = 1 + rng.Uniform(100);
    std::vector<uint64_t> values(count);
    const uint64_t mask =
        width >= 64 ? ~0ULL : ((uint64_t{1} << width) - 1);
    for (auto& v : values) v = rng.Next() & mask;

    std::vector<uint64_t> words(WordsForBits(width * count), 0);
    size_t bit = 0;
    for (uint64_t v : values) {
      PackBits(words, bit, width, v);
      bit += width;
    }
    bit = 0;
    for (uint64_t v : values) {
      EXPECT_EQ(UnpackBits(words.data(), bit, width), v);
      bit += width;
    }
  }
}

TEST(BitopsTest, PackAcrossWordBoundary) {
  std::vector<uint64_t> words(2, 0);
  PackBits(words, 60, 10, 0x3FF);  // straddles the word boundary
  EXPECT_EQ(UnpackBits(words.data(), 60, 10), 0x3FFull);
}

// ------------------------------------------------------------------ TopK --

TEST(TopKTest, KeepsKSmallest) {
  TopK top(3);
  for (int i = 10; i >= 1; --i) top.Push(i, i);
  auto r = top.TakeSorted();
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[0].id, 1u);
  EXPECT_EQ(r[1].id, 2u);
  EXPECT_EQ(r[2].id, 3u);
}

TEST(TopKTest, ThresholdInfinityUntilFull) {
  TopK top(2);
  EXPECT_TRUE(std::isinf(top.Threshold()));
  top.Push(1, 5.0);
  EXPECT_TRUE(std::isinf(top.Threshold()));
  top.Push(2, 3.0);
  EXPECT_EQ(top.Threshold(), 5.0);
  top.Push(3, 1.0);
  EXPECT_EQ(top.Threshold(), 3.0);
}

TEST(TopKTest, TieBrokenById) {
  TopK top(1);
  top.Push(9, 2.0);
  top.Push(4, 2.0);  // same distance, smaller id wins
  auto r = top.TakeSorted();
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].id, 4u);
}

TEST(TopKTest, MatchesSortProperty) {
  Rng rng(37);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t k = 1 + rng.Uniform(10);
    std::vector<Neighbor> all;
    TopK top(k);
    for (int i = 0; i < 200; ++i) {
      const double d = rng.NextDouble() * 100;
      all.push_back({static_cast<PointId>(i), d});
      top.Push(static_cast<PointId>(i), d);
    }
    std::sort(all.begin(), all.end());
    auto got = top.TakeSorted();
    ASSERT_EQ(got.size(), k);
    for (size_t i = 0; i < k; ++i) {
      EXPECT_EQ(got[i].id, all[i].id);
      EXPECT_EQ(got[i].dist, all[i].dist);
    }
  }
}

// --------------------------------------------------------------- Dataset --

TEST(DatasetTest, AppendAndAccess) {
  Dataset d(3);
  std::vector<Scalar> p1{1, 2, 3}, p2{4, 5, 6};
  EXPECT_EQ(d.Append(p1), 0u);
  EXPECT_EQ(d.Append(p2), 1u);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.point(1)[2], 6);
  d.mutable_point(0)[0] = 9;
  EXPECT_EQ(d.point(0)[0], 9);
}

TEST(DatasetTest, MaxValue) {
  Dataset d(2);
  std::vector<Scalar> p{3, 250};
  d.Append(p);
  EXPECT_EQ(d.MaxValue(), 250);
  EXPECT_EQ(Dataset(2).MaxValue(), 0);
}

// -------------------------------------------------------------- distance --

TEST(DistanceTest, KnownValues) {
  std::vector<Scalar> a{0, 0}, b{3, 4};
  EXPECT_DOUBLE_EQ(L2(a, b), 5.0);
  EXPECT_DOUBLE_EQ(SquaredL2(a, b), 25.0);
  EXPECT_DOUBLE_EQ(L2(a, a), 0.0);
}

TEST(DistanceTest, Symmetric) {
  Rng rng(41);
  std::vector<Scalar> a(16), b(16);
  for (auto& v : a) v = static_cast<Scalar>(rng.NextGaussian());
  for (auto& v : b) v = static_cast<Scalar>(rng.NextGaussian());
  EXPECT_DOUBLE_EQ(L2(a, b), L2(b, a));
}

// ----------------------------------------------------------- Discretizer --

TEST(DiscretizerTest, IdentityMapping) {
  Discretizer d(256);
  EXPECT_EQ(d.ToBin(0), 0u);
  EXPECT_EQ(d.ToBin(255), 255u);
  EXPECT_EQ(d.ToBin(300), 255u);  // clamped
  EXPECT_EQ(d.ToBin(-5), 0u);    // clamped
}

TEST(DiscretizerTest, AffineMapping) {
  Discretizer d(10, 0.0, 1.0);
  EXPECT_EQ(d.ToBin(0.05f), 0u);
  EXPECT_EQ(d.ToBin(0.95f), 9u);
  EXPECT_NEAR(d.BinLower(5), 0.5, 1e-9);
  EXPECT_NEAR(d.BinUpper(5), 0.6, 1e-9);
}

// ---------------------------------------------------------------- kmeans --

Dataset MakeBlobs(size_t per_cluster, uint64_t seed) {
  Rng rng(seed);
  Dataset d(2);
  const double centers[3][2] = {{0, 0}, {100, 0}, {0, 100}};
  for (int c = 0; c < 3; ++c) {
    for (size_t i = 0; i < per_cluster; ++i) {
      std::vector<Scalar> p{
          static_cast<Scalar>(centers[c][0] + rng.NextGaussian()),
          static_cast<Scalar>(centers[c][1] + rng.NextGaussian())};
      d.Append(p);
    }
  }
  return d;
}

TEST(KMeansTest, RecoversWellSeparatedClusters) {
  Dataset d = MakeBlobs(50, 43);
  KMeansResult km = KMeans(d, 3, 20, 1);
  ASSERT_EQ(km.centers.size(), 3u);
  // Every cluster is pure: all points of a blob share an assignment.
  for (int c = 0; c < 3; ++c) {
    std::set<uint32_t> labels;
    for (size_t i = 0; i < 50; ++i) labels.insert(km.assign[c * 50 + i]);
    EXPECT_EQ(labels.size(), 1u) << "blob " << c << " split";
  }
  EXPECT_LT(km.inertia / d.size(), 4.0);
}

TEST(KMeansTest, DeterministicForSeed) {
  Dataset d = MakeBlobs(30, 47);
  KMeansResult a = KMeans(d, 3, 10, 5);
  KMeansResult b = KMeans(d, 3, 10, 5);
  EXPECT_EQ(a.assign, b.assign);
  EXPECT_EQ(a.inertia, b.inertia);
}

TEST(KMeansTest, KClampedToN) {
  Dataset d(2);
  std::vector<Scalar> p{1, 1};
  d.Append(p);
  KMeansResult km = KMeans(d, 10, 5, 1);
  EXPECT_EQ(km.centers.size(), 1u);
  EXPECT_EQ(km.sizes[0], 1u);
}

TEST(KMeansTest, SizesSumToN) {
  Dataset d = MakeBlobs(40, 53);
  KMeansResult km = KMeans(d, 5, 10, 3);
  uint32_t total = 0;
  for (uint32_t s : km.sizes) total += s;
  EXPECT_EQ(total, d.size());
}

// ----------------------------------------------------------------- CRC32C --

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 Appendix B / de-facto Castagnoli test vectors.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  const std::vector<char> zeros(32, 0);
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  const std::vector<char> ones(32, '\xff');
  EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62A8AB43u);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string s = "exploit every bit: caching for NN search";
  const uint32_t whole = Crc32c(s.data(), s.size());
  for (size_t split : {size_t{0}, size_t{1}, size_t{7}, s.size()}) {
    uint32_t crc = Crc32cExtend(0, s.data(), split);
    crc = Crc32cExtend(crc, s.data() + split, s.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, SensitiveToSingleBitFlips) {
  std::vector<char> buf(4096, 'p');
  const uint32_t clean = Crc32c(buf.data(), buf.size());
  Rng rng(59);
  for (int trial = 0; trial < 64; ++trial) {
    const size_t bit = rng.Uniform(buf.size() * 8);
    buf[bit / 8] ^= static_cast<char>(1u << (bit % 8));
    EXPECT_NE(Crc32c(buf.data(), buf.size()), clean);
    buf[bit / 8] ^= static_cast<char>(1u << (bit % 8));  // restore
  }
  EXPECT_EQ(Crc32c(buf.data(), buf.size()), clean);
}

}  // namespace
}  // namespace eeb
