// Tests for the VA-file index: filter correctness (the true kNN always
// survive), candidate volume vs bits, scan I/O accounting, and the R-tree
// multi-dimensional histogram builder.

#include <gtest/gtest.h>

#include <set>

#include "common/dataset.h"
#include "common/random.h"
#include "index/linear_scan.h"
#include "index/rtree/rtree_histogram.h"
#include "index/vafile/vafile.h"

namespace eeb::index {
namespace {

Dataset RandomData(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  Dataset d(dim);
  std::vector<Scalar> p(dim);
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : p) v = static_cast<Scalar>(rng.Uniform(256));
    d.Append(p);
  }
  return d;
}

TEST(VaFileTest, TrueNeighborsAlwaysSurvive) {
  Dataset data = RandomData(2000, 12, 3);
  std::unique_ptr<VaFile> va;
  VaFileOptions opt;
  opt.bits_per_dim = 4;
  ASSERT_TRUE(VaFile::Build(data, opt, &va).ok());

  Rng rng(5);
  for (int t = 0; t < 20; ++t) {
    std::vector<Scalar> q(12);
    for (auto& v : q) v = static_cast<Scalar>(rng.Uniform(256));
    std::vector<PointId> cand;
    ASSERT_TRUE(va->Candidates(q, 10, &cand, nullptr).ok());
    std::set<PointId> cset(cand.begin(), cand.end());
    for (const auto& nb : LinearScanKnn(data, q, 10)) {
      EXPECT_TRUE(cset.count(nb.id))
          << "true neighbor " << nb.id << " filtered out";
    }
  }
}

TEST(VaFileTest, MoreBitsFewerCandidates) {
  Dataset data = RandomData(3000, 12, 7);
  std::unique_ptr<VaFile> coarse, fine;
  VaFileOptions lo, hi;
  lo.bits_per_dim = 2;
  hi.bits_per_dim = 6;
  ASSERT_TRUE(VaFile::Build(data, lo, &coarse).ok());
  ASSERT_TRUE(VaFile::Build(data, hi, &fine).ok());

  Rng rng(11);
  size_t coarse_total = 0, fine_total = 0;
  for (int t = 0; t < 10; ++t) {
    std::vector<Scalar> q(12);
    for (auto& v : q) v = static_cast<Scalar>(rng.Uniform(256));
    std::vector<PointId> c1, c2;
    ASSERT_TRUE(coarse->Candidates(q, 10, &c1, nullptr).ok());
    ASSERT_TRUE(fine->Candidates(q, 10, &c2, nullptr).ok());
    coarse_total += c1.size();
    fine_total += c2.size();
  }
  EXPECT_LT(fine_total, coarse_total);
}

TEST(VaFileTest, ScanIoProportionalToApproximationSize) {
  Dataset data = RandomData(4096, 16, 13);
  std::unique_ptr<VaFile> va;
  VaFileOptions opt;
  opt.bits_per_dim = 4;
  ASSERT_TRUE(VaFile::Build(data, opt, &va).ok());
  std::vector<Scalar> q(16, 128);
  std::vector<PointId> cand;
  storage::IoStats stats;
  ASSERT_TRUE(va->Candidates(q, 10, &cand, &stats).ok());
  const uint64_t expect_pages =
      (va->approximation_bytes() + 4095) / 4096;
  EXPECT_EQ(stats.seq_page_reads, expect_pages);
  EXPECT_EQ(stats.page_reads, 0u);
}

TEST(VaFileTest, RejectsBadOptions) {
  Dataset data = RandomData(10, 4, 17);
  std::unique_ptr<VaFile> va;
  VaFileOptions opt;
  opt.bits_per_dim = 0;
  EXPECT_TRUE(VaFile::Build(data, opt, &va).IsInvalidArgument());
  opt.bits_per_dim = 20;
  EXPECT_TRUE(VaFile::Build(data, opt, &va).IsInvalidArgument());
}

// --------------------------------------------------- R-tree histogram ----

TEST(RTreeHistogramTest, AssignmentInsideMbr) {
  Dataset data = RandomData(500, 6, 19);
  hist::MultiDimHistogram h;
  std::vector<BucketId> assign;
  ASSERT_TRUE(BuildRTreeHistogram(data, 32, &h, &assign).ok());
  ASSERT_EQ(assign.size(), 500u);
  for (PointId id = 0; id < 500; ++id) {
    const hist::Mbr& box = h.bucket(assign[id]);
    EXPECT_DOUBLE_EQ(box.MinDist(data.point(id)), 0.0)
        << "point outside its assigned bucket";
  }
}

TEST(RTreeHistogramTest, ProducesRequestedBucketCount) {
  Dataset data = RandomData(500, 6, 23);
  hist::MultiDimHistogram h;
  std::vector<BucketId> assign;
  ASSERT_TRUE(BuildRTreeHistogram(data, 16, &h, &assign).ok());
  EXPECT_EQ(h.num_buckets(), 16u);
}

TEST(RTreeHistogramTest, BalancedLeafSizes) {
  Dataset data = RandomData(512, 6, 29);
  hist::MultiDimHistogram h;
  std::vector<BucketId> assign;
  ASSERT_TRUE(BuildRTreeHistogram(data, 8, &h, &assign).ok());
  std::vector<int> sizes(8, 0);
  for (BucketId b : assign) sizes[b]++;
  for (int s : sizes) EXPECT_EQ(s, 64);
}

TEST(RTreeHistogramTest, HighDimMbrsAreHuge) {
  // The curse-of-dimensionality effect (paper Appendix B): in high d, leaf
  // MBRs span most of the domain per dimension.
  Dataset data = RandomData(2048, 64, 31);
  hist::MultiDimHistogram h;
  std::vector<BucketId> assign;
  ASSERT_TRUE(BuildRTreeHistogram(data, 256, &h, &assign).ok());
  double avg_width = 0;
  size_t terms = 0;
  for (BucketId b = 0; b < h.num_buckets(); ++b) {
    const hist::Mbr& box = h.bucket(b);
    for (size_t j = 0; j < box.dim(); ++j) {
      avg_width += box.hi[j] - box.lo[j];
      ++terms;
    }
  }
  avg_width /= static_cast<double>(terms);
  EXPECT_GT(avg_width, 0.5 * 255)
      << "high-dimensional MBRs should cover most of the domain";
}

TEST(RTreeHistogramTest, RejectsEmptyInput) {
  hist::MultiDimHistogram h;
  std::vector<BucketId> assign;
  EXPECT_TRUE(
      BuildRTreeHistogram(Dataset(4), 8, &h, &assign).IsInvalidArgument());
}

}  // namespace
}  // namespace eeb::index
