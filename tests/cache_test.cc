// Tests for the cache module: code store packing, LRU bookkeeping, the
// exact / code / multi-dim / node caches, capacity accounting and policies.

#include <gtest/gtest.h>

#include <cmath>

#include "common/dataset.h"
#include "common/distance.h"
#include "common/random.h"
#include "cache/code_cache.h"
#include "cache/code_store.h"
#include "cache/exact_cache.h"
#include "cache/multidim_cache.h"
#include "cache/node_cache.h"
#include "hist/builders.h"
#include "index/rtree/rtree_histogram.h"

namespace eeb::cache {
namespace {

Dataset RandomData(size_t n, size_t dim, uint32_t ndom, uint64_t seed) {
  Rng rng(seed);
  Dataset d(dim);
  std::vector<Scalar> p(dim);
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : p) v = static_cast<Scalar>(rng.Uniform(ndom));
    d.Append(p);
  }
  return d;
}

std::vector<PointId> Iota(size_t n) {
  std::vector<PointId> ids(n);
  for (size_t i = 0; i < n; ++i) ids[i] = static_cast<PointId>(i);
  return ids;
}

// -------------------------------------------------------------- CodeStore --

TEST(CodeStoreTest, RoundTrip) {
  CodeStore store(10, 6);
  const uint32_t slot = store.AllocateSlot();
  std::vector<BucketId> in{1, 2, 3, 63, 0, 7, 33, 12, 5, 62};
  store.Write(slot, in);
  std::vector<BucketId> out(10);
  store.Read(slot, out);
  EXPECT_EQ(in, out);
}

TEST(CodeStoreTest, ItemBytesPacksWords) {
  // 64 dims * 10 bits = 640 bits = 10 words = 80 bytes.
  CodeStore store(64, 10);
  EXPECT_EQ(store.item_bytes(), 80u);
  // 2 dims * 2 bits = 4 bits -> 1 word.
  CodeStore tiny(2, 2);
  EXPECT_EQ(tiny.item_bytes(), 8u);
}

TEST(CodeStoreTest, OverwriteSlot) {
  CodeStore store(4, 8);
  const uint32_t slot = store.AllocateSlot();
  std::vector<BucketId> a{255, 0, 128, 7}, b{1, 2, 3, 4}, out(4);
  store.Write(slot, a);
  store.Write(slot, b);
  store.Read(slot, out);
  EXPECT_EQ(out, b);
}

TEST(CodeStoreTest, Property_ManySlotsRandomCodes) {
  Rng rng(91);
  for (int trial = 0; trial < 30; ++trial) {
    const size_t dims = 1 + rng.Uniform(40);
    const uint32_t tau = 1 + static_cast<uint32_t>(rng.Uniform(16));
    CodeStore store(dims, tau);
    const uint64_t mask = (uint64_t{1} << tau) - 1;
    std::vector<std::vector<BucketId>> expect;
    for (int s = 0; s < 20; ++s) {
      std::vector<BucketId> codes(dims);
      for (auto& c : codes) c = static_cast<BucketId>(rng.Next() & mask);
      const uint32_t slot = store.AllocateSlot();
      store.Write(slot, codes);
      expect.push_back(codes);
      EXPECT_EQ(slot, static_cast<uint32_t>(s));
    }
    std::vector<BucketId> out(dims);
    for (size_t s = 0; s < expect.size(); ++s) {
      store.Read(static_cast<uint32_t>(s), out);
      EXPECT_EQ(out, expect[s]);
    }
  }
}

// ------------------------------------------------------------- LruTracker --

TEST(LruTrackerTest, EvictsLeastRecent) {
  LruTracker lru;
  lru.Insert(1);
  lru.Insert(2);
  lru.Insert(3);
  lru.Touch(1);          // order (MRU->LRU): 1, 3, 2
  EXPECT_EQ(lru.EvictBack(), 2u);
  EXPECT_EQ(lru.EvictBack(), 3u);
  EXPECT_EQ(lru.EvictBack(), 1u);
}

TEST(LruTrackerTest, EraseRemoves) {
  LruTracker lru;
  lru.Insert(5);
  lru.Insert(6);
  lru.Erase(6);
  EXPECT_FALSE(lru.Contains(6));
  EXPECT_EQ(lru.size(), 1u);
  EXPECT_EQ(lru.EvictBack(), 5u);
}

// ------------------------------------------------------------- ExactCache --

TEST(ExactCacheTest, HitReturnsExactDistance) {
  Dataset data = RandomData(20, 8, 256, 7);
  ExactCache cache(8, /*capacity=*/20 * 8 * sizeof(Scalar));
  ASSERT_TRUE(cache.Fill(data, Iota(20)).ok());
  EXPECT_EQ(cache.size(), 20u);

  std::vector<Scalar> q(8, 100);
  double lb, ub;
  ASSERT_TRUE(cache.Probe(q, 7, &lb, &ub));
  const double d = L2(std::span<const Scalar>(q), data.point(7));
  EXPECT_DOUBLE_EQ(lb, d);
  EXPECT_DOUBLE_EQ(ub, d);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ExactCacheTest, CapacityLimitsFill) {
  Dataset data = RandomData(100, 8, 256, 11);
  const size_t item = 8 * sizeof(Scalar);
  ExactCache cache(8, 10 * item);
  ASSERT_TRUE(cache.Fill(data, Iota(100)).ok());
  EXPECT_EQ(cache.size(), 10u);
  double lb, ub;
  std::vector<Scalar> q(8, 0);
  EXPECT_TRUE(cache.Probe(q, 5, &lb, &ub));
  EXPECT_FALSE(cache.Probe(q, 50, &lb, &ub));
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ExactCacheTest, LruAdmitAndEvict) {
  Dataset data = RandomData(10, 4, 256, 13);
  const size_t item = 4 * sizeof(Scalar);
  ExactCache cache(4, 2 * item, /*lru=*/true);
  std::vector<Scalar> q(4, 0);
  double lb, ub;

  cache.Admit(0, data.point(0));
  cache.Admit(1, data.point(1));
  EXPECT_TRUE(cache.Probe(q, 0, &lb, &ub));  // 0 now MRU
  cache.Admit(2, data.point(2));             // evicts 1
  EXPECT_TRUE(cache.Probe(q, 0, &lb, &ub));
  EXPECT_TRUE(cache.Probe(q, 2, &lb, &ub));
  EXPECT_FALSE(cache.Probe(q, 1, &lb, &ub));
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ExactCacheTest, HffFillRespectsFrequencyOrder) {
  Dataset data = RandomData(10, 4, 256, 17);
  ExactCache cache(4, 3 * 4 * sizeof(Scalar));
  std::vector<PointId> by_freq{9, 3, 7, 0, 1};
  ASSERT_TRUE(cache.Fill(data, by_freq).ok());
  std::vector<Scalar> q(4, 0);
  double lb, ub;
  EXPECT_TRUE(cache.Probe(q, 9, &lb, &ub));
  EXPECT_TRUE(cache.Probe(q, 3, &lb, &ub));
  EXPECT_TRUE(cache.Probe(q, 7, &lb, &ub));
  EXPECT_FALSE(cache.Probe(q, 0, &lb, &ub));
}

// -------------------------------------------------------- HistCodeCache --

TEST(HistCodeCacheTest, ProbeMatchesDirectBounds) {
  Dataset data = RandomData(50, 16, 64, 19);
  hist::Histogram h;
  ASSERT_TRUE(hist::BuildEquiWidth(64, 8, &h).ok());
  HistCodeCache cache(&h, 16, 1 << 20);
  ASSERT_TRUE(cache.Fill(data, Iota(50)).ok());

  Rng rng(23);
  std::vector<Scalar> q(16);
  for (auto& v : q) v = static_cast<Scalar>(rng.Uniform(64));
  std::vector<BucketId> codes(16);
  for (PointId id = 0; id < 50; ++id) {
    double lb, ub;
    ASSERT_TRUE(cache.Probe(q, id, &lb, &ub));
    EncodeGlobal(h, data.point(id), codes);
    double elb, eub;
    hist::CodeBoundsGlobal(h, q, codes, &elb, &eub);
    EXPECT_DOUBLE_EQ(lb, elb);
    EXPECT_DOUBLE_EQ(ub, eub);
  }
}

TEST(HistCodeCacheTest, ItemBytesReflectTau) {
  hist::Histogram h;
  ASSERT_TRUE(hist::BuildEquiWidth(256, 256, &h).ok());  // tau = 8
  HistCodeCache c8(&h, 64, 1 << 20);
  EXPECT_EQ(c8.item_bytes(), 64u);  // 64*8 bits = 8 words

  hist::Histogram h2;
  ASSERT_TRUE(hist::BuildEquiWidth(256, 4, &h2).ok());  // tau = 2
  HistCodeCache c2(&h2, 64, 1 << 20);
  EXPECT_EQ(c2.item_bytes(), 16u);  // 128 bits = 2 words
}

TEST(HistCodeCacheTest, MoreItemsFitThanExactCache) {
  // The core cache-density effect (Thm. 1): tau=2 fits Lvalue*... more.
  Dataset data = RandomData(1000, 64, 256, 29);
  hist::Histogram h;
  ASSERT_TRUE(hist::BuildEquiWidth(256, 4, &h).ok());
  const size_t budget = 4096;
  ExactCache exact(64, budget);
  HistCodeCache code(&h, 64, budget);
  ASSERT_TRUE(exact.Fill(data, Iota(1000)).ok());
  ASSERT_TRUE(code.Fill(data, Iota(1000)).ok());
  EXPECT_EQ(exact.size(), budget / (64 * sizeof(Scalar)));  // 16
  EXPECT_EQ(code.size(), budget / 16);                      // 256
  EXPECT_GT(code.size(), exact.size() * 10);
}

TEST(HistCodeCacheTest, LruAdmitEncodesFromExactPoint) {
  Dataset data = RandomData(10, 8, 64, 31);
  hist::Histogram h;
  ASSERT_TRUE(hist::BuildEquiWidth(64, 8, &h).ok());
  // Capacity: two items (8 dims * 3 bits -> 1 word = 8 bytes each).
  HistCodeCache cache(&h, 8, 16, /*lru=*/true);
  std::vector<Scalar> q(8, 0);
  double lb, ub;
  EXPECT_FALSE(cache.Probe(q, 3, &lb, &ub));
  cache.Admit(3, data.point(3));
  EXPECT_TRUE(cache.Probe(q, 3, &lb, &ub));
}

// ------------------------------------------------------ IndividualCodeCache

TEST(IndividualCodeCacheTest, ProbeMatchesDirectBounds) {
  Dataset data = RandomData(30, 8, 64, 37);
  auto freqs = hist::PerDimFrequencies(data, Iota(30), 64);
  hist::IndividualHistograms ih;
  ASSERT_TRUE(
      hist::BuildIndividual(freqs, 8, hist::BuilderKind::kEquiDepth, &ih)
          .ok());
  IndividualCodeCache cache(&ih, 8, 1 << 20);
  ASSERT_TRUE(cache.Fill(data, Iota(30)).ok());

  Rng rng(41);
  std::vector<Scalar> q(8);
  for (auto& v : q) v = static_cast<Scalar>(rng.Uniform(64));
  std::vector<BucketId> codes(8);
  for (PointId id = 0; id < 30; ++id) {
    double lb, ub;
    ASSERT_TRUE(cache.Probe(q, id, &lb, &ub));
    EncodeIndividual(ih, data.point(id), codes);
    double elb, eub;
    hist::CodeBoundsIndividual(ih, q, codes, &elb, &eub);
    EXPECT_DOUBLE_EQ(lb, elb);
    EXPECT_DOUBLE_EQ(ub, eub);
  }
}

// ------------------------------------------------------- MultiDimCodeCache

TEST(MultiDimCodeCacheTest, BoundsComeFromEnclosingMbr) {
  Dataset data = RandomData(200, 4, 64, 43);
  hist::MultiDimHistogram mh;
  std::vector<BucketId> assign;
  ASSERT_TRUE(index::BuildRTreeHistogram(data, 16, &mh, &assign).ok());

  MultiDimCodeCache cache(&mh, 1 << 20);
  ASSERT_TRUE(cache.Fill(Iota(200), assign).ok());

  Rng rng(47);
  std::vector<Scalar> q(4);
  for (auto& v : q) v = static_cast<Scalar>(rng.Uniform(64));
  for (PointId id = 0; id < 200; ++id) {
    double lb, ub;
    ASSERT_TRUE(cache.Probe(q, id, &lb, &ub));
    const double dist = L2(std::span<const Scalar>(q), data.point(id));
    EXPECT_LE(lb, dist + 1e-6);
    EXPECT_GE(ub, dist - 1e-6);
  }
}

TEST(MultiDimCodeCacheTest, SingleCodePerPoint) {
  hist::MultiDimHistogram mh(std::vector<hist::Mbr>(256));
  MultiDimCodeCache cache(&mh, 1 << 10);
  EXPECT_EQ(cache.item_bytes(), 8u);  // one 8-bit code packed in one word
}

// ------------------------------------------------------------- NodeCaches

TEST(NodeCacheTest, ExactNodeGivesExactDistances) {
  Dataset data = RandomData(40, 8, 64, 53);
  std::vector<std::vector<PointId>> leaves{{0, 1, 2, 3}, {4, 5, 6, 7}};
  ExactNodeCache cache(1 << 20);
  std::vector<uint32_t> order{0, 1};
  ASSERT_TRUE(cache.Fill(data, leaves, order).ok());

  std::vector<Scalar> q(8, 10);
  int seen = 0;
  ASSERT_TRUE(cache.ProbeNode(1, q, [&](PointId id, double lb, double ub) {
    const double d = L2(std::span<const Scalar>(q), data.point(id));
    EXPECT_DOUBLE_EQ(lb, d);
    EXPECT_DOUBLE_EQ(ub, d);
    EXPECT_GE(id, 4u);
    ++seen;
  }));
  EXPECT_EQ(seen, 4);
  EXPECT_FALSE(cache.ProbeNode(7, q, [](PointId, double, double) {}));
}

TEST(NodeCacheTest, ApproxNodeBoundsSandwich) {
  Dataset data = RandomData(60, 8, 64, 59);
  hist::Histogram h;
  ASSERT_TRUE(hist::BuildEquiWidth(64, 8, &h).ok());
  std::vector<std::vector<PointId>> leaves;
  for (int l = 0; l < 6; ++l) {
    std::vector<PointId> ids;
    for (int i = 0; i < 10; ++i) ids.push_back(l * 10 + i);
    leaves.push_back(ids);
  }
  ApproxNodeCache cache(&h, 8, 1 << 20);
  std::vector<uint32_t> order{0, 1, 2, 3, 4, 5};
  ASSERT_TRUE(cache.Fill(data, leaves, order).ok());

  std::vector<Scalar> q(8, 30);
  for (uint32_t leaf = 0; leaf < 6; ++leaf) {
    ASSERT_TRUE(cache.ProbeNode(leaf, q, [&](PointId id, double lb, double ub) {
      const double d = L2(std::span<const Scalar>(q), data.point(id));
      EXPECT_LE(lb, d + 1e-6);
      EXPECT_GE(ub, d - 1e-6);
    }));
  }
}

TEST(NodeCacheTest, ApproxFitsMoreNodesThanExact) {
  Dataset data = RandomData(1024, 64, 256, 61);
  hist::Histogram h;
  ASSERT_TRUE(hist::BuildEquiWidth(256, 4, &h).ok());  // tau = 2
  std::vector<std::vector<PointId>> leaves;
  std::vector<uint32_t> order;
  for (uint32_t l = 0; l < 64; ++l) {
    std::vector<PointId> ids;
    for (int i = 0; i < 16; ++i) ids.push_back(l * 16 + i);
    leaves.push_back(ids);
    order.push_back(l);
  }
  const size_t budget = 16384;
  ExactNodeCache exact(budget);
  ApproxNodeCache approx(&h, 64, budget);
  ASSERT_TRUE(exact.Fill(data, leaves, order).ok());
  ASSERT_TRUE(approx.Fill(data, leaves, order).ok());
  EXPECT_GT(approx.size(), exact.size() * 4);
}

}  // namespace
}  // namespace eeb::cache
