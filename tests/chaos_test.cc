// End-to-end chaos test (docs/ROBUSTNESS.md): a smoke-sized workload runs
// under FaultInjectionEnv with probabilistic read faults AND bit-flip
// corruption, and the system must (a) complete every query — zero aborts,
// (b) return the exact fault-free answer for every query it does not flag
// degraded, and (c) account for every injected fault: with retries disabled
// each injected IOError or corruption surfaces as exactly one engine-level
// read failure. A second scenario turns retries on and shows transient
// faults being absorbed back to exact answers.

#include <gtest/gtest.h>

#include <chrono>
#include <iostream>
#include <map>
#include <thread>
#include <vector>

#include "common/dataset.h"
#include "core/system.h"
#include "obs/recorder.h"
#include "storage/mem_env.h"
#include "workload/generator.h"

namespace eeb {
namespace {

struct ChaosRig {
  storage::MemEnv mem;
  storage::FaultInjectionEnv env{&mem};
  Dataset data;
  workload::QueryLog log;
  std::unique_ptr<core::System> system;

  explicit ChaosRig(core::SystemOptions opt) {
    // LSH tuned for the 16-dim surrogate (defaults target 64-dim); without
    // this the index yields no candidates and no refinement I/O happens.
    opt.lsh.num_functions = 16;
    opt.lsh.collision_threshold = 8;
    opt.lsh.beta_candidates = 150;
    workload::DatasetSpec dspec;
    dspec.name = "chaos";
    dspec.n = 4000;
    dspec.dim = 16;
    dspec.ndom = 256;
    dspec.clusters = 16;
    dspec.cluster_stddev = 12.0;
    dspec.seed = 7;
    data = workload::GenerateClustered(dspec);
    workload::QueryLogSpec lspec;
    lspec.workload_size = 400;
    lspec.test_size = 60;
    lspec.jitter_stddev = 4.0;
    lspec.seed = 11;
    log = workload::GenerateQueryLog(data, lspec);
    // Build on a healthy disk; faults are injected per scenario afterwards.
    EXPECT_TRUE(
        core::System::Create(&env, "/chaos", data, log.workload, opt, &system)
            .ok());
    // Deliberately small and lossy (tau 4 of the lossless 8): with full
    // lossless codes every query would be answered from cache bounds alone
    // and the chaos plans below would never see a disk read.
    EXPECT_TRUE(system
                    ->ConfigureCache(core::CacheMethod::kHcO,
                                     /*cache_bytes=*/4 << 10, /*tau=*/4)
                    .ok());
  }
};

TEST(ChaosTest, FaultyDiskNeverAbortsAndAccountingReconciles) {
  core::SystemOptions opt;
  opt.ndom = 256;
  // Retries off: every injected fault must surface as exactly one
  // engine-level read failure, making the reconciliation below exact.
  opt.io_retry.max_retries = 0;
  ChaosRig rig(opt);
  const size_t k = 10;

  // Fault-free ground truth.
  std::vector<std::vector<PointId>> truth;
  core::QueryResult r;
  for (const auto& q : rig.log.test) {
    ASSERT_TRUE(rig.system->Query(q, k, &r).ok());
    ASSERT_FALSE(r.degraded);
    truth.push_back(r.result_ids);
  }

  // Heavy chaos: 5% of reads fail, 1% of surviving reads get a flipped
  // bit. At ~10^2 reads per query essentially every query is hit.
  storage::FaultPlan plan;
  plan.read_fault_rate = 0.05;
  plan.corrupt_rate = 0.01;
  plan.seed = 13;
  rig.env.set_plan(plan);

  uint64_t reported_failures = 0;
  size_t degraded = 0;
  for (size_t i = 0; i < rig.log.test.size(); ++i) {
    // (a) No query aborts, whatever the disk does.
    ASSERT_TRUE(rig.system->Query(rig.log.test[i], k, &r).ok());
    reported_failures += r.read_failures;
    if (r.degraded) {
      ++degraded;
      EXPECT_GT(r.read_failures, 0u);
    } else {
      EXPECT_EQ(r.read_failures, 0u);
      EXPECT_EQ(r.result_ids, truth[i]);
    }
    EXPECT_EQ(r.result_ids.size(), truth[i].size());
  }
  // The fault rates make degradation overwhelmingly likely; if this ever
  // reads 0 the injection itself is broken.
  EXPECT_GT(degraded, 0u);

  // (c) Exact reconciliation: nothing injected went unreported, nothing
  // reported was spurious.
  EXPECT_EQ(reported_failures,
            rig.env.injected_read_faults() + rig.env.injected_corruptions());
  EXPECT_GT(rig.env.injected_read_faults(), 0u);
  EXPECT_GT(rig.env.injected_corruptions(), 0u);

  // Light chaos: a rate low enough that most queries never see a fault, so
  // the "not flagged degraded => bit-exact answer" branch really runs.
  storage::FaultPlan light;
  light.read_fault_rate = 0.003;
  light.seed = 23;
  rig.env.set_plan(light);
  size_t clean = 0;
  reported_failures = 0;
  for (size_t i = 0; i < rig.log.test.size(); ++i) {
    ASSERT_TRUE(rig.system->Query(rig.log.test[i], k, &r).ok());
    reported_failures += r.read_failures;
    if (!r.degraded) {
      ++clean;
      // (b) An unflagged result is the exact fault-free answer.
      EXPECT_EQ(r.result_ids, truth[i]) << "non-degraded result differs "
                                           "from fault-free answer, query "
                                        << i;
    }
  }
  EXPECT_GT(clean, 0u);                      // the branch above was taken
  EXPECT_LT(clean, rig.log.test.size());     // ...and some queries degraded
  EXPECT_EQ(reported_failures, rig.env.injected_read_faults());
}

TEST(ChaosTest, RetriesAbsorbTransientFaultsBackToExact) {
  core::SystemOptions opt;
  opt.ndom = 256;
  opt.io_retry.max_retries = 8;
  opt.io_retry.backoff_initial_ms = 0.0;  // no sleeping in tests
  ChaosRig rig(opt);
  const size_t k = 10;

  std::vector<std::vector<PointId>> truth;
  core::QueryResult r;
  for (const auto& q : rig.log.test) {
    ASSERT_TRUE(rig.system->Query(q, k, &r).ok());
    truth.push_back(r.result_ids);
  }

  // Transient-only faults (no corruption): an 8-deep retry budget reduces
  // the per-read failure probability to 0.05^9 — every answer stays exact.
  storage::FaultPlan plan;
  plan.read_fault_rate = 0.05;
  plan.seed = 17;
  rig.env.set_plan(plan);

  for (size_t i = 0; i < rig.log.test.size(); ++i) {
    ASSERT_TRUE(rig.system->Query(rig.log.test[i], k, &r).ok());
    EXPECT_FALSE(r.degraded);
    EXPECT_EQ(r.result_ids, truth[i]);
  }
  EXPECT_GT(rig.env.injected_read_faults(), 0u);  // faults really fired
}

TEST(ChaosTest, EightThreadsFaultyDiskNeverAbortsAndReconciles) {
  core::SystemOptions opt;
  opt.ndom = 256;
  // Retries off: every injected fault surfaces as exactly one engine-level
  // read failure, so the cross-thread reconciliation below is exact.
  opt.io_retry.max_retries = 0;
  ChaosRig rig(opt);
  const size_t k = 10;

  // Fault-free ground truth (serial; caches never change results).
  std::vector<std::vector<PointId>> truth;
  core::QueryResult r;
  for (const auto& q : rig.log.test) {
    ASSERT_TRUE(rig.system->Query(q, k, &r).ok());
    ASSERT_FALSE(r.degraded);
    truth.push_back(r.result_ids);
  }

  // Heavy chaos under 8 threads. Which query absorbs which fault depends on
  // the interleaving, so per-query failure counts are nondeterministic —
  // but (a) nothing aborts, (b) unflagged answers are exact, and (c) the
  // summed accounting reconciles with the injector to the last fault.
  storage::FaultPlan plan;
  plan.read_fault_rate = 0.05;
  plan.corrupt_rate = 0.01;
  plan.seed = 29;
  rig.env.set_plan(plan);

  core::AggregateResult agg;
  std::vector<core::QueryResult> results;
  ASSERT_TRUE(rig.system
                  ->RunQueriesConcurrent(rig.log.test, k, /*n_threads=*/8,
                                         &agg, &results)
                  .ok());

  uint64_t reported_failures = 0;
  size_t degraded = 0;
  ASSERT_EQ(results.size(), truth.size());
  for (size_t i = 0; i < results.size(); ++i) {
    reported_failures += results[i].read_failures;
    if (results[i].degraded) {
      ++degraded;
      EXPECT_GT(results[i].read_failures, 0u);
    } else {
      EXPECT_EQ(results[i].read_failures, 0u);
      EXPECT_EQ(results[i].result_ids, truth[i]) << "query " << i;
    }
    EXPECT_EQ(results[i].result_ids.size(), truth[i].size());
  }
  EXPECT_GT(degraded, 0u);
  EXPECT_EQ(agg.degraded_queries, degraded);
  EXPECT_EQ(agg.read_failures, reported_failures);

  // (c) Exact reconciliation across all 8 threads.
  EXPECT_EQ(reported_failures,
            rig.env.injected_read_faults() + rig.env.injected_corruptions());
  EXPECT_GT(rig.env.injected_read_faults(), 0u);
  EXPECT_GT(rig.env.injected_corruptions(), 0u);

  // Healthy disk again: the concurrent path returns to bit-exact answers.
  storage::FaultPlan healthy;
  rig.env.set_plan(healthy);
  ASSERT_TRUE(rig.system
                  ->RunQueriesConcurrent(rig.log.test, k, /*n_threads=*/8,
                                         &agg, &results)
                  .ok());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_FALSE(results[i].degraded);
    EXPECT_EQ(results[i].result_ids, truth[i]) << "query " << i;
  }
  EXPECT_EQ(agg.read_failures, 0u);
}

TEST(ChaosTest, BreakerSoakUnderConcurrentLoadStaysAccountable) {
  core::SystemOptions opt;
  opt.ndom = 256;
  opt.io_retry.max_retries = 0;
  // A twitchy breaker with millisecond backoffs: the soak must drive it
  // through closed -> open -> half-open -> closed several times while 8
  // workers are reading through it.
  opt.io_breaker.enabled = true;
  opt.io_breaker.window_ops = 16;
  opt.io_breaker.min_failures = 4;
  // Well below the sick rounds' ~0.37 injected failure rate, so a trip is a
  // statistical certainty, not a coin flip on one window.
  opt.io_breaker.failure_rate_threshold = 0.25;
  opt.io_breaker.open_backoff_initial_ms = 1.0;
  opt.io_breaker.open_backoff_max_ms = 2.0;
  opt.io_breaker.backoff_jitter = 0.0;
  ChaosRig rig(opt);
  const size_t k = 10;
  ASSERT_NE(rig.system->breaker_env(), nullptr);

  // Fault-free ground truth (breaker closed: pure pass-through).
  std::vector<std::vector<PointId>> truth;
  core::QueryResult r;
  for (const auto& q : rig.log.test) {
    ASSERT_TRUE(rig.system->Query(q, k, &r).ok());
    ASSERT_FALSE(r.degraded);
    truth.push_back(r.result_ids);
  }
  EXPECT_EQ(rig.system->breaker_env()->state(),
            storage::CircuitBreakerEnv::State::kClosed);

  // Alternate sick and healthy rounds. With the breaker in the stack the
  // injector reconciliation no longer holds (short-circuited reads never
  // reach the injector) — the soak invariants are: nothing aborts, every
  // report reconciles exactly, unflagged answers stay bit-exact, and the
  // breaker's state is always a legal enum value.
  const auto breaker_state_is_legal = [&] {
    const auto s = rig.system->breaker_env()->state();
    return s == storage::CircuitBreakerEnv::State::kClosed ||
           s == storage::CircuitBreakerEnv::State::kOpen ||
           s == storage::CircuitBreakerEnv::State::kHalfOpen;
  };
  for (int round = 0; round < 4; ++round) {
    if (round % 2 == 0) {
      storage::FaultPlan plan;
      plan.read_fault_rate = 0.35;
      plan.corrupt_rate = 0.02;
      plan.seed = 31 + static_cast<uint64_t>(round);
      rig.env.set_plan(plan);
    } else {
      rig.env.set_plan({});
    }
    core::ServeOptions sopt;
    sopt.n_threads = 8;
    sopt.queue_capacity = 4;
    sopt.admission = core::AdmissionPolicy::kShed;
    core::ServeReport report;
    std::vector<core::QueryResult> per_query;
    ASSERT_TRUE(
        rig.system->Serve(rig.log.test, k, sopt, &report, &per_query).ok())
        << "round " << round;
    EXPECT_EQ(report.completed + report.shed, report.submitted);
    EXPECT_EQ(report.submitted, rig.log.test.size());
    size_t flagged_shed = 0;
    for (size_t i = 0; i < per_query.size(); ++i) {
      if (per_query[i].shed) {
        flagged_shed++;
        EXPECT_TRUE(per_query[i].result_ids.empty());
      } else if (!per_query[i].degraded) {
        // A query the engine did not flag is the exact fault-free answer,
        // whatever the breaker was doing around it.
        EXPECT_EQ(per_query[i].result_ids, truth[i])
            << "round " << round << " query " << i;
      }
    }
    EXPECT_EQ(flagged_shed, report.shed);
    EXPECT_TRUE(breaker_state_is_legal()) << "round " << round;
  }
  // The sick rounds were heavy enough to trip the breaker at least once.
  EXPECT_GT(rig.system->breaker_env()->opens(), 0u);
  EXPECT_GT(rig.system->breaker_env()->short_circuits(), 0u);

  // Recovery: on a healthy disk, past the (bounded) backoff, the first
  // probe read closes the breaker and the concurrent path returns to
  // bit-exact answers all the way through.
  rig.env.set_plan({});
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // One serial query supplies the half-open probe (only one is let through
  // at a time; concurrent workers would short-circuit around it and degrade)
  // and closes the breaker before the concurrent pass.
  ASSERT_TRUE(rig.system->Query(rig.log.test[0], k, &r).ok());
  EXPECT_EQ(rig.system->breaker_env()->state(),
            storage::CircuitBreakerEnv::State::kClosed);
  core::AggregateResult agg;
  std::vector<core::QueryResult> results;
  ASSERT_TRUE(rig.system
                  ->RunQueriesConcurrent(rig.log.test, k, /*n_threads=*/8,
                                         &agg, &results)
                  .ok());
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_FALSE(results[i].degraded) << "query " << i;
    EXPECT_EQ(results[i].result_ids, truth[i]) << "query " << i;
  }
  EXPECT_EQ(agg.read_failures, 0u);
  EXPECT_EQ(rig.system->breaker_env()->state(),
            storage::CircuitBreakerEnv::State::kClosed);
}

TEST(ChaosTest, FlightRecorderCapturesEveryDegradedQueryWithItsCause) {
  core::SystemOptions opt;
  opt.ndom = 256;
  opt.io_retry.max_retries = 0;
  ChaosRig rig(opt);
  const size_t k = 10;

  // Always-on recorder, as a serving process would run it: tail retention
  // sized so no degraded record can be evicted during the test.
  obs::FlightRecorder::Options ropt;
  ropt.ring_capacity = 256;
  ropt.max_retained_slow = 1024;
  obs::FlightRecorder recorder(ropt);
  rig.system->SetRecorder(&recorder);

  storage::FaultPlan plan;
  plan.read_fault_rate = 0.05;
  plan.corrupt_rate = 0.01;
  plan.seed = 31;
  rig.env.set_plan(plan);

  core::AggregateResult agg;
  std::vector<core::QueryResult> results;
  ASSERT_TRUE(rig.system
                  ->RunQueriesConcurrent(rig.log.test, k, /*n_threads=*/8,
                                         &agg, &results)
                  .ok());
  EXPECT_EQ(recorder.recorded(), results.size());

  // Every degraded query must be in the tail-retained list, carrying the
  // full explain record that names its cause — that is the recorder's whole
  // reason to exist.
  std::map<uint64_t, obs::QueryRecord> retained;
  for (const obs::QueryRecord& r : recorder.SlowQueries()) {
    retained[r.query_index] = r;
  }
  size_t degraded = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    if (!results[i].degraded) {
      EXPECT_EQ(retained.count(i), 0u) << "clean query " << i << " retained";
      continue;
    }
    ++degraded;
    ASSERT_EQ(retained.count(i), 1u) << "degraded query " << i << " lost";
    const obs::QueryExplain& e = retained[i].explain;
    EXPECT_NE(e.degraded_cause, obs::DegradedCause::kNone) << "query " << i;
    EXPECT_EQ(e.read_failures, results[i].read_failures) << "query " << i;
    EXPECT_EQ(e.substituted, results[i].substituted) << "query " << i;
    EXPECT_EQ(e.degraded_cause, results[i].explain.degraded_cause);
  }
  EXPECT_GT(degraded, 0u);
  EXPECT_EQ(recorder.retained_slow_total(), degraded);

  // Both fault flavors fired, so both causes must appear among the records.
  bool saw_corruption = false, saw_read_failure = false;
  for (const auto& [index, record] : retained) {
    (void)index;
    saw_corruption |=
        record.explain.degraded_cause == obs::DegradedCause::kCorruption;
    saw_read_failure |=
        record.explain.degraded_cause == obs::DegradedCause::kReadFailure;
  }
  EXPECT_TRUE(saw_corruption);
  EXPECT_TRUE(saw_read_failure);

  // On failure, dump the flight recorder — the postmortem this subsystem
  // was built to provide.
  if (::testing::Test::HasFailure()) recorder.DumpJson(std::cerr);
}

TEST(ChaosTest, AggregateDegradedAccountingMatchesPerQuery) {
  core::SystemOptions opt;
  opt.ndom = 256;
  opt.io_retry.max_retries = 0;
  ChaosRig rig(opt);

  storage::FaultPlan plan;
  plan.read_fault_rate = 0.05;
  plan.seed = 19;
  rig.env.set_plan(plan);

  // Per-query tally first (same plan seed replayed for the batch run).
  size_t degraded = 0, substituted = 0, failures = 0;
  core::QueryResult r;
  for (const auto& q : rig.log.test) {
    ASSERT_TRUE(rig.system->Query(q, 10, &r).ok());
    if (r.degraded) ++degraded;
    substituted += r.substituted;
    failures += r.read_failures;
  }

  rig.env.set_plan(plan);  // replay the exact same fault sequence
  core::AggregateResult agg;
  ASSERT_TRUE(rig.system->RunQueries(rig.log.test, 10, &agg).ok());
  EXPECT_EQ(agg.degraded_queries, degraded);
  EXPECT_EQ(agg.read_failures, failures);
  EXPECT_DOUBLE_EQ(agg.degraded_rate,
                   static_cast<double>(degraded) / rig.log.test.size());
  EXPECT_DOUBLE_EQ(agg.avg_substituted,
                   static_cast<double>(substituted) / rig.log.test.size());
  EXPECT_GT(agg.degraded_queries, 0u);
}

}  // namespace
}  // namespace eeb
