// Tests for the disk B+-tree substrate: bulk load, lookups, range scans,
// duplicate keys, I/O accounting, corruption handling, and an
// iDistance-style key-space workout.

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "index/bptree/bptree.h"
#include "storage/mem_env.h"

namespace eeb::index {
namespace {

std::vector<BptEntry> SortedRandomEntries(size_t n, uint64_t seed,
                                          uint64_t key_range) {
  Rng rng(seed);
  std::vector<BptEntry> entries(n);
  for (size_t i = 0; i < n; ++i) {
    entries[i] = {rng.Uniform(key_range), rng.Next()};
  }
  std::sort(entries.begin(), entries.end(),
            [](const BptEntry& a, const BptEntry& b) { return a.key < b.key; });
  return entries;
}

TEST(BpTreeTest, RejectsUnsortedInput) {
  storage::MemEnv env;
  std::vector<BptEntry> bad{{5, 1}, {3, 2}};
  EXPECT_TRUE(BpTree::BulkLoad(&env, "/t", bad).IsInvalidArgument());
}

TEST(BpTreeTest, EmptyTree) {
  storage::MemEnv env;
  ASSERT_TRUE(BpTree::BulkLoad(&env, "/t", {}).ok());
  std::unique_ptr<BpTree> tree;
  ASSERT_TRUE(BpTree::Open(&env, "/t", &tree).ok());
  EXPECT_EQ(tree->size(), 0u);
  std::vector<uint64_t> values;
  ASSERT_TRUE(tree->Lookup(42, &values, nullptr).ok());
  EXPECT_TRUE(values.empty());
}

TEST(BpTreeTest, LookupMatchesMap) {
  storage::MemEnv env;
  auto entries = SortedRandomEntries(20000, 7, 5000);
  ASSERT_TRUE(BpTree::BulkLoad(&env, "/t", entries).ok());
  std::unique_ptr<BpTree> tree;
  ASSERT_TRUE(BpTree::Open(&env, "/t", &tree).ok());
  EXPECT_EQ(tree->size(), 20000u);
  EXPECT_GE(tree->height(), 2u);

  std::multimap<uint64_t, uint64_t> truth;
  for (const auto& e : entries) truth.emplace(e.key, e.value);

  Rng rng(11);
  for (int t = 0; t < 200; ++t) {
    const uint64_t key = rng.Uniform(5000);
    std::vector<uint64_t> got;
    ASSERT_TRUE(tree->Lookup(key, &got, nullptr).ok());
    auto [lo, hi] = truth.equal_range(key);
    std::vector<uint64_t> want;
    for (auto it = lo; it != hi; ++it) want.push_back(it->second);
    std::sort(got.begin(), got.end());
    std::sort(want.begin(), want.end());
    EXPECT_EQ(got, want) << "key " << key;
  }
}

TEST(BpTreeTest, RangeScanMatchesMapAndIsOrdered) {
  storage::MemEnv env;
  auto entries = SortedRandomEntries(5000, 13, 100000);
  ASSERT_TRUE(BpTree::BulkLoad(&env, "/t", entries).ok());
  std::unique_ptr<BpTree> tree;
  ASSERT_TRUE(BpTree::Open(&env, "/t", &tree).ok());

  Rng rng(17);
  for (int t = 0; t < 50; ++t) {
    uint64_t lo = rng.Uniform(100000);
    uint64_t hi = lo + rng.Uniform(20000);
    std::vector<uint64_t> keys;
    ASSERT_TRUE(tree->RangeScan(lo, hi,
                                [&](const BptEntry& e) {
                                  keys.push_back(e.key);
                                },
                                nullptr)
                    .ok());
    EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
    size_t want = 0;
    for (const auto& e : entries) want += (e.key >= lo && e.key <= hi);
    EXPECT_EQ(keys.size(), want) << "[" << lo << "," << hi << "]";
  }
}

TEST(BpTreeTest, IoAccounting) {
  storage::MemEnv env;
  auto entries = SortedRandomEntries(50000, 19, 1000000);
  ASSERT_TRUE(BpTree::BulkLoad(&env, "/t", entries).ok());
  std::unique_ptr<BpTree> tree;
  ASSERT_TRUE(BpTree::Open(&env, "/t", &tree).ok());

  // A point lookup touches exactly `height` random pages (no leaf chain).
  storage::IoStats stats;
  std::vector<uint64_t> values;
  ASSERT_TRUE(tree->Lookup(entries[1000].key, &values, &stats).ok());
  EXPECT_EQ(stats.page_reads, tree->height());

  // A wide scan adds sequential leaf pages.
  stats.Reset();
  size_t count = 0;
  ASSERT_TRUE(tree->RangeScan(0, 1000000,
                              [&](const BptEntry&) { ++count; }, &stats)
                  .ok());
  EXPECT_EQ(count, 50000u);
  EXPECT_EQ(stats.page_reads, tree->height());
  EXPECT_GT(stats.seq_page_reads, 100u);
}

TEST(BpTreeTest, RejectsCorruptFile) {
  storage::MemEnv env;
  std::unique_ptr<storage::WritableFile> w;
  ASSERT_TRUE(env.NewWritableFile("/junk", &w).ok());
  std::vector<char> junk(8192, 'z');
  ASSERT_TRUE(w->Append(junk.data(), junk.size()).ok());
  std::unique_ptr<BpTree> tree;
  EXPECT_TRUE(BpTree::Open(&env, "/junk", &tree).IsCorruption());
}

TEST(BpTreeTest, IDistanceKeySpaceWorkout) {
  // The iDistance key layout: partition * C + quantized distance. Verify a
  // ring query maps to one contiguous range per partition.
  storage::MemEnv env;
  constexpr uint64_t kC = 1 << 20;
  Rng rng(23);
  std::vector<BptEntry> entries;
  for (uint64_t part = 0; part < 8; ++part) {
    for (int i = 0; i < 1000; ++i) {
      entries.push_back({part * kC + rng.Uniform(10000), rng.Next()});
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const BptEntry& a, const BptEntry& b) { return a.key < b.key; });
  ASSERT_TRUE(BpTree::BulkLoad(&env, "/t", entries).ok());
  std::unique_ptr<BpTree> tree;
  ASSERT_TRUE(BpTree::Open(&env, "/t", &tree).ok());

  // Ring [2000, 4000) in partition 5.
  size_t count = 0;
  ASSERT_TRUE(tree->RangeScan(5 * kC + 2000, 5 * kC + 3999,
                              [&](const BptEntry& e) {
                                EXPECT_EQ(e.key / kC, 5u);
                                ++count;
                              },
                              nullptr)
                  .ok());
  size_t want = 0;
  for (const auto& e : entries) {
    want += (e.key >= 5 * kC + 2000 && e.key <= 5 * kC + 3999);
  }
  EXPECT_EQ(count, want);
  EXPECT_GT(count, 0u);
}

TEST(BpTreeTest, SmallPageSizeGrowsHeight) {
  storage::MemEnv env;
  auto entries = SortedRandomEntries(4000, 29, 1 << 30);
  ASSERT_TRUE(BpTree::BulkLoad(&env, "/t", entries, 512).ok());
  std::unique_ptr<BpTree> tree;
  ASSERT_TRUE(BpTree::Open(&env, "/t", &tree).ok());
  EXPECT_GE(tree->height(), 3u);
  std::vector<uint64_t> values;
  ASSERT_TRUE(tree->Lookup(entries[123].key, &values, nullptr).ok());
  EXPECT_FALSE(values.empty());
}

}  // namespace
}  // namespace eeb::index
