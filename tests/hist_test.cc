// Tests for histograms: construction validation, the four builders, metric
// evaluation, DP optimality against brute force, Lemma-3 pruning
// equivalence, individual histograms and the multi-dimensional histogram.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/random.h"
#include "hist/builders.h"
#include "hist/frequency.h"
#include "hist/histogram.h"
#include "hist/individual.h"
#include "hist/multidim_histogram.h"

namespace eeb::hist {
namespace {

FrequencyArray RandomFreqs(uint32_t ndom, uint64_t seed, double zero_frac) {
  Rng rng(seed);
  FrequencyArray f(ndom);
  for (uint32_t x = 0; x < ndom; ++x) {
    if (!rng.Bernoulli(zero_frac)) {
      f.Add(x, static_cast<double>(1 + rng.Uniform(50)));
    }
  }
  return f;
}

// Brute-force optimal partition cost by exhaustive DP without shortcuts.
double BruteForceOptimal(const FrequencyArray& f, uint32_t buckets,
                         bool upsilon_cost) {
  PrefixStats ps(f);
  const uint32_t n = f.ndom();
  auto cost = [&](uint32_t l, uint32_t u) {
    return upsilon_cost ? ps.Upsilon(l, u) : ps.Sse(l, u);
  };
  const double inf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> opt(buckets,
                                       std::vector<double>(n, inf));
  for (uint32_t i = 0; i < n; ++i) opt[0][i] = cost(0, i);
  for (uint32_t m = 1; m < buckets; ++m) {
    for (uint32_t i = 0; i < n; ++i) {
      opt[m][i] = opt[m - 1][i];
      for (uint32_t t = 0; t < i; ++t) {
        opt[m][i] = std::min(opt[m][i], opt[m - 1][t] + cost(t + 1, i));
      }
    }
  }
  return opt[buckets - 1][n - 1];
}

// ------------------------------------------------------------- Histogram --

TEST(HistogramTest, CreateValidatesTiling) {
  Histogram h;
  EXPECT_TRUE(Histogram::Create({{0, 3}, {4, 9}}, 10, &h).ok());
  EXPECT_EQ(h.num_buckets(), 2u);
  EXPECT_TRUE(Histogram::Create({{0, 3}, {5, 9}}, 10, &h)
                  .IsInvalidArgument());  // gap
  EXPECT_TRUE(Histogram::Create({{0, 3}, {3, 9}}, 10, &h)
                  .IsInvalidArgument());  // overlap
  EXPECT_TRUE(Histogram::Create({{0, 8}}, 10, &h)
                  .IsInvalidArgument());  // short
  EXPECT_TRUE(Histogram::Create({}, 10, &h).IsInvalidArgument());
}

TEST(HistogramTest, LookupMapsValuesToBuckets) {
  Histogram h;
  ASSERT_TRUE(Histogram::Create({{0, 7}, {8, 15}, {16, 23}, {24, 31}}, 32, &h)
                  .ok());
  // The paper's Fig. 5b example: values 2 -> code 00, 20 -> code 10.
  EXPECT_EQ(h.Lookup(2), 0u);
  EXPECT_EQ(h.Lookup(20), 2u);
  EXPECT_EQ(h.code_length(), 2u);
  EXPECT_EQ(h.bucket(1).lo, 8u);
  EXPECT_EQ(h.bucket(1).hi, 15u);
}

TEST(HistogramTest, LookupTotalOverDomain) {
  Histogram h;
  ASSERT_TRUE(Histogram::Create({{0, 0}, {1, 99}, {100, 255}}, 256, &h).ok());
  for (uint32_t v = 0; v < 256; ++v) {
    const Bucket& b = h.bucket(h.Lookup(v));
    EXPECT_GE(v, b.lo);
    EXPECT_LE(v, b.hi);
  }
}

// ------------------------------------------------------------ equi-width --

TEST(EquiWidthTest, EvenWidths) {
  Histogram h;
  ASSERT_TRUE(BuildEquiWidth(256, 8, &h).ok());
  EXPECT_EQ(h.num_buckets(), 8u);
  for (const Bucket& b : h.buckets()) EXPECT_EQ(b.width(), 31u);
}

TEST(EquiWidthTest, RemainderSpread) {
  Histogram h;
  ASSERT_TRUE(BuildEquiWidth(10, 3, &h).ok());
  ASSERT_EQ(h.num_buckets(), 3u);
  // Widths 4,3,3.
  EXPECT_EQ(h.bucket(0).width() + 1, 4u);
  EXPECT_EQ(h.bucket(1).width() + 1, 3u);
  EXPECT_EQ(h.bucket(2).width() + 1, 3u);
}

TEST(EquiWidthTest, BucketsClampedToDomain) {
  Histogram h;
  ASSERT_TRUE(BuildEquiWidth(4, 16, &h).ok());
  EXPECT_EQ(h.num_buckets(), 4u);  // one value per bucket
}

// ------------------------------------------------------------ equi-depth --

TEST(EquiDepthTest, BalancesMass) {
  FrequencyArray f(100);
  for (uint32_t x = 0; x < 100; ++x) f.Add(x, 1.0);
  Histogram h;
  ASSERT_TRUE(BuildEquiDepth(f, 4, &h).ok());
  ASSERT_EQ(h.num_buckets(), 4u);
  PrefixStats ps(f);
  for (const Bucket& b : h.buckets()) {
    EXPECT_NEAR(ps.Count(b.lo, b.hi), 25.0, 1.0);
  }
}

TEST(EquiDepthTest, SkewedMassNarrowsHotRegion) {
  FrequencyArray f(100);
  for (uint32_t x = 0; x < 10; ++x) f.Add(x, 100.0);  // hot head
  for (uint32_t x = 10; x < 100; ++x) f.Add(x, 1.0);
  Histogram h;
  ASSERT_TRUE(BuildEquiDepth(f, 4, &h).ok());
  // The first bucket must be narrow (hot region), the last wide.
  EXPECT_LT(h.bucket(0).width(), h.bucket(3).width());
}

TEST(EquiDepthTest, HandlesAllZeroFrequencies) {
  FrequencyArray f(50);
  Histogram h;
  ASSERT_TRUE(BuildEquiDepth(f, 4, &h).ok());
  EXPECT_GE(h.num_buckets(), 1u);
  EXPECT_EQ(h.buckets().back().hi, 49u);
}

TEST(EquiDepthTest, Property_CoversDomainForRandomInputs) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    FrequencyArray f = RandomFreqs(64, 200 + seed, 0.5);
    for (uint32_t buckets : {2u, 5u, 16u, 64u}) {
      Histogram h;
      ASSERT_TRUE(BuildEquiDepth(f, buckets, &h).ok());
      EXPECT_LE(h.num_buckets(), buckets);
      EXPECT_EQ(h.buckets().front().lo, 0u);
      EXPECT_EQ(h.buckets().back().hi, 63u);
    }
  }
}

// ------------------------------------------------------------- V-optimal --

TEST(VOptimalTest, MatchesBruteForceSse) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    FrequencyArray f = RandomFreqs(24, 300 + seed, 0.2);
    for (uint32_t buckets : {2u, 3u, 5u}) {
      Histogram h;
      ASSERT_TRUE(BuildVOptimal(f, buckets, &h).ok());
      const double got = MetricSse(h, f);
      const double want = BruteForceOptimal(f, buckets, /*upsilon=*/false);
      EXPECT_NEAR(got, want, 1e-6 * std::max(1.0, want))
          << "seed=" << seed << " B=" << buckets;
    }
  }
}

TEST(VOptimalTest, PerfectFitWithEnoughBuckets) {
  FrequencyArray f = RandomFreqs(16, 311, 0.0);
  Histogram h;
  ASSERT_TRUE(BuildVOptimal(f, 16, &h).ok());
  EXPECT_NEAR(MetricSse(h, f), 0.0, 1e-9);
}

// ---------------------------------------------------------------- MaxDiff --

TEST(MaxDiffTest, CutsAtLargestJumps) {
  FrequencyArray f(8);
  // Frequencies: 1 1 9 9 1 1 1 1 -> the two largest jumps are after x=1
  // (1->9) and after x=3 (9->1).
  const double vals[8] = {1, 1, 9, 9, 1, 1, 1, 1};
  for (uint32_t x = 0; x < 8; ++x) f.Add(x, vals[x]);
  Histogram h;
  ASSERT_TRUE(BuildMaxDiff(f, 3, &h).ok());
  ASSERT_EQ(h.num_buckets(), 3u);
  EXPECT_EQ(h.bucket(0).hi, 1u);
  EXPECT_EQ(h.bucket(1).lo, 2u);
  EXPECT_EQ(h.bucket(1).hi, 3u);
  EXPECT_EQ(h.bucket(2).lo, 4u);
}

TEST(MaxDiffTest, Property_CoversDomain) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    FrequencyArray f = RandomFreqs(64, 900 + seed, 0.4);
    for (uint32_t buckets : {2u, 7u, 64u}) {
      Histogram h;
      ASSERT_TRUE(BuildMaxDiff(f, buckets, &h).ok());
      EXPECT_LE(h.num_buckets(), buckets);
      EXPECT_EQ(h.buckets().front().lo, 0u);
      EXPECT_EQ(h.buckets().back().hi, 63u);
    }
  }
}

TEST(MaxDiffTest, KnnOptimalStillWinsOnM3) {
  for (uint64_t seed = 0; seed < 5; ++seed) {
    FrequencyArray fprime = RandomFreqs(128, 950 + seed, 0.6);
    Histogram ho, hm;
    ASSERT_TRUE(BuildKnnOptimal(fprime, 16, &ho).ok());
    ASSERT_TRUE(BuildMaxDiff(fprime, 16, &hm).ok());
    EXPECT_LE(MetricM3(ho, fprime), MetricM3(hm, fprime) + 1e-9);
  }
}

// ----------------------------------------------------- kNN-optimal (HC-O) --

TEST(KnnOptimalTest, MatchesBruteForceUpsilon) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    FrequencyArray f = RandomFreqs(24, 400 + seed, 0.3);
    for (uint32_t buckets : {2u, 3u, 5u, 8u}) {
      Histogram h;
      ASSERT_TRUE(BuildKnnOptimal(f, buckets, &h).ok());
      const double got = MetricM3(h, f);
      const double want = BruteForceOptimal(f, buckets, /*upsilon=*/true);
      EXPECT_NEAR(got, want, 1e-6 * std::max(1.0, want))
          << "seed=" << seed << " B=" << buckets;
    }
  }
}

TEST(KnnOptimalTest, Lemma3PruningPreservesOptimum) {
  for (uint64_t seed = 0; seed < 15; ++seed) {
    FrequencyArray f = RandomFreqs(48, 500 + seed, 0.4);
    Histogram pruned, full;
    DpStats sp, sf;
    ASSERT_TRUE(BuildKnnOptimal(f, 8, &pruned, &sp, true).ok());
    ASSERT_TRUE(BuildKnnOptimal(f, 8, &full, &sf, false).ok());
    EXPECT_NEAR(MetricM3(pruned, f), MetricM3(full, f), 1e-9);
    EXPECT_LE(sp.inner_iterations, sf.inner_iterations);
  }
}

TEST(KnnOptimalTest, Lemma3ActuallyPrunes) {
  FrequencyArray f = RandomFreqs(256, 601, 0.3);
  DpStats sp, sf;
  Histogram h;
  ASSERT_TRUE(BuildKnnOptimal(f, 16, &h, &sp, true).ok());
  ASSERT_TRUE(BuildKnnOptimal(f, 16, &h, &sf, false).ok());
  EXPECT_LT(sp.inner_iterations, sf.inner_iterations / 2)
      << "pruning should cut the DP inner loop substantially";
  EXPECT_GT(sp.pruned_breaks, 0u);
}

TEST(KnnOptimalTest, TightensBucketsAroundMass) {
  // All F' mass in [10, 19]: with 4 buckets, that region must be covered by
  // narrow buckets while the empty tails are wide.
  FrequencyArray f(100);
  for (uint32_t x = 10; x < 20; ++x) f.Add(x, 10.0);
  Histogram h;
  ASSERT_TRUE(BuildKnnOptimal(f, 4, &h).ok());
  double hot_width = 0.0;
  for (const Bucket& b : h.buckets()) {
    PrefixStats ps(f);
    if (ps.Count(b.lo, b.hi) > 0) hot_width += b.width() + 1;
  }
  EXPECT_LE(hot_width, 14.0) << "mass-bearing buckets should be narrow";
}

TEST(KnnOptimalTest, SingleBucketCoversDomain) {
  FrequencyArray f = RandomFreqs(32, 701, 0.0);
  Histogram h;
  ASSERT_TRUE(BuildKnnOptimal(f, 1, &h).ok());
  ASSERT_EQ(h.num_buckets(), 1u);
  EXPECT_EQ(h.bucket(0).lo, 0u);
  EXPECT_EQ(h.bucket(0).hi, 31u);
}

TEST(KnnOptimalTest, BeatsOrMatchesOtherBuildersOnM3) {
  // The paper's core claim at histogram level: HC-O minimizes metric M3.
  for (uint64_t seed = 0; seed < 10; ++seed) {
    FrequencyArray fprime = RandomFreqs(128, 800 + seed, 0.6);
    Histogram ho, hw, hd, hv;
    ASSERT_TRUE(BuildKnnOptimal(fprime, 16, &ho).ok());
    ASSERT_TRUE(BuildEquiWidth(128, 16, &hw).ok());
    ASSERT_TRUE(BuildEquiDepth(fprime, 16, &hd).ok());
    ASSERT_TRUE(BuildVOptimal(fprime, 16, &hv).ok());
    const double mo = MetricM3(ho, fprime);
    EXPECT_LE(mo, MetricM3(hw, fprime) + 1e-9);
    EXPECT_LE(mo, MetricM3(hd, fprime) + 1e-9);
    EXPECT_LE(mo, MetricM3(hv, fprime) + 1e-9);
  }
}

// ------------------------------------------------------------ PrefixStats --

TEST(PrefixStatsTest, CountAndUpsilon) {
  FrequencyArray f(10);
  for (uint32_t x = 0; x < 10; ++x) f.Add(x, x);
  PrefixStats ps(f);
  EXPECT_DOUBLE_EQ(ps.Count(0, 9), 45.0);
  EXPECT_DOUBLE_EQ(ps.Count(3, 5), 12.0);
  EXPECT_DOUBLE_EQ(ps.Upsilon(3, 5), 12.0 * 4.0);  // width (5-3)=2, squared
  EXPECT_DOUBLE_EQ(ps.Upsilon(4, 4), 0.0);         // singleton: zero width
}

TEST(PrefixStatsTest, SseZeroForUniformBucket) {
  FrequencyArray f(8);
  for (uint32_t x = 0; x < 8; ++x) f.Add(x, 5.0);
  PrefixStats ps(f);
  EXPECT_NEAR(ps.Sse(0, 7), 0.0, 1e-9);
}

// ------------------------------------------------------------- individual --

TEST(IndividualTest, DecomposesPerDimension) {
  Dataset data(2);
  Rng rng(71);
  std::vector<Scalar> p(2);
  for (int i = 0; i < 500; ++i) {
    p[0] = static_cast<Scalar>(rng.Uniform(16));        // uniform dim
    p[1] = static_cast<Scalar>(100 + rng.Uniform(16));  // shifted dim
    data.Append(p);
  }
  std::vector<PointId> all(500);
  for (size_t i = 0; i < 500; ++i) all[i] = static_cast<PointId>(i);
  auto freqs = PerDimFrequencies(data, all, 128);
  EXPECT_GT(freqs[0][5], 0.0);
  EXPECT_EQ(freqs[0][105], 0.0);
  EXPECT_GT(freqs[1][105], 0.0);

  IndividualHistograms ih;
  ASSERT_TRUE(BuildIndividual(freqs, 8, BuilderKind::kKnnOptimal, &ih).ok());
  EXPECT_EQ(ih.dim(), 2u);
  // Dim-1 histogram should concentrate narrow buckets around [100, 116).
  PrefixStats ps(freqs[1]);
  double hot_width = 0;
  for (const Bucket& b : ih.at(1).buckets()) {
    if (ps.Count(b.lo, b.hi) > 0) hot_width += b.width() + 1;
  }
  EXPECT_LE(hot_width, 30.0);
}

TEST(IndividualTest, SpaceAccounting) {
  std::vector<FrequencyArray> freqs(3, FrequencyArray(16));
  IndividualHistograms ih;
  ASSERT_TRUE(BuildIndividual(freqs, 4, BuilderKind::kEquiWidth, &ih).ok());
  EXPECT_EQ(ih.SpaceBytes(), 3u * 4 * 2 * sizeof(uint32_t));
}

// ------------------------------------------------------------- multi-dim --

TEST(MbrTest, MinMaxDist) {
  Mbr box;
  box.lo = {0, 0};
  box.hi = {10, 10};
  std::vector<Scalar> inside{5, 5}, outside{13, 14};
  EXPECT_DOUBLE_EQ(box.MinDist(inside), 0.0);
  EXPECT_DOUBLE_EQ(box.MinDist(outside), 5.0);  // (3,4) corner gap
  EXPECT_DOUBLE_EQ(box.MaxDist(outside), std::sqrt(13.0 * 13 + 14 * 14));
}

TEST(MbrTest, ExpandGrows) {
  Mbr box;
  std::vector<Scalar> a{1, 5}, b{3, 2};
  box.Expand(a);
  box.Expand(b);
  EXPECT_EQ(box.lo[0], 1);
  EXPECT_EQ(box.lo[1], 2);
  EXPECT_EQ(box.hi[0], 3);
  EXPECT_EQ(box.hi[1], 5);
}

TEST(MultiDimHistogramTest, CodeLength) {
  std::vector<Mbr> buckets(16);
  for (auto& b : buckets) {
    std::vector<Scalar> p{0, 0};
    b.Expand(p);
  }
  MultiDimHistogram h(std::move(buckets));
  EXPECT_EQ(h.num_buckets(), 16u);
  EXPECT_EQ(h.code_length(), 4u);
}

}  // namespace
}  // namespace eeb::hist
