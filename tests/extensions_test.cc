// Tests for the advanced operations of the paper's Sec. 7 (range search,
// kNN join, DBSCAN) and for the eager-miss-fetch optimization (footnote 6).

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "common/dataset.h"
#include "common/distance.h"
#include "common/random.h"
#include "cache/code_cache.h"
#include "core/dbscan.h"
#include "core/knn_engine.h"
#include "core/knn_join.h"
#include "core/range_search.h"
#include "hist/builders.h"
#include "index/full_scan.h"
#include "index/linear_scan.h"
#include "index/lsh/c2lsh.h"
#include "storage/mem_env.h"

namespace eeb::core {
namespace {

Dataset BlobData(size_t per_blob, size_t dim, uint64_t seed,
                 double spread = 4.0) {
  // Three well-separated blobs in [0, 256)^dim for DBSCAN ground truth.
  Rng rng(seed);
  Dataset d(dim);
  std::vector<Scalar> p(dim);
  const double centers[3] = {40, 128, 216};
  for (int b = 0; b < 3; ++b) {
    for (size_t i = 0; i < per_blob; ++i) {
      for (size_t j = 0; j < dim; ++j) {
        p[j] = static_cast<Scalar>(std::max(
            0.0,
            std::min(255.0, centers[b] + rng.NextGaussian() * spread)));
      }
      d.Append(p);
    }
  }
  return d;
}

class ExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = BlobData(300, 8, 5);
    ASSERT_TRUE(
        storage::PointFile::Create(&env_, "/points", data_).ok());
    ASSERT_TRUE(storage::PointFile::Open(&env_, "/points", &points_).ok());
    full_ = std::make_unique<index::FullScanIndex>(data_.size());

    // HC-O cache over the whole dataset (uniform F' is fine for tests).
    hist::FrequencyArray f(256);
    for (uint32_t x = 0; x < 256; ++x) f.Add(x, 1.0);
    ASSERT_TRUE(hist::BuildKnnOptimal(f, 64, &hist_).ok());
    cache_ = std::make_unique<cache::HistCodeCache>(&hist_, 8, 1 << 22,
                                                    false, true);
    std::vector<PointId> ids(data_.size());
    for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<PointId>(i);
    ASSERT_TRUE(cache_->Fill(data_, ids).ok());
  }

  storage::MemEnv env_;
  Dataset data_;
  std::unique_ptr<storage::PointFile> points_;
  std::unique_ptr<index::FullScanIndex> full_;
  hist::Histogram hist_;
  std::unique_ptr<cache::HistCodeCache> cache_;
};

// ------------------------------------------------------------ range query --

TEST_F(ExtensionsTest, RangeQueryMatchesBruteForce) {
  Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const PointId src = static_cast<PointId>(rng.Uniform(data_.size()));
    std::vector<Scalar> q(data_.point(src).begin(), data_.point(src).end());
    const double eps = 5.0 + rng.NextDouble() * 20.0;

    RangeResult r;
    ASSERT_TRUE(
        RangeQuery(full_.get(), *points_, cache_.get(), q, eps, 10, &r).ok());

    std::vector<PointId> expect;
    for (size_t i = 0; i < data_.size(); ++i) {
      if (L2(std::span<const Scalar>(q),
             data_.point(static_cast<PointId>(i))) <= eps) {
        expect.push_back(static_cast<PointId>(i));
      }
    }
    EXPECT_EQ(r.ids, expect) << "eps=" << eps;
  }
}

TEST_F(ExtensionsTest, RangeQueryCacheSavesFetches) {
  std::vector<Scalar> q(data_.point(0).begin(), data_.point(0).end());
  RangeResult with_cache, without;
  ASSERT_TRUE(
      RangeQuery(full_.get(), *points_, cache_.get(), q, 20.0, 10,
                 &with_cache)
          .ok());
  ASSERT_TRUE(
      RangeQuery(full_.get(), *points_, nullptr, q, 20.0, 10, &without).ok());
  EXPECT_EQ(with_cache.ids, without.ids);
  EXPECT_LT(with_cache.fetched, without.fetched / 4)
      << "bounds should certify most candidates without I/O";
  EXPECT_GT(with_cache.sure_out, 0u);
}

TEST_F(ExtensionsTest, RangeQueryCountsConsistent) {
  std::vector<Scalar> q(8, 128);
  RangeResult r;
  ASSERT_TRUE(
      RangeQuery(full_.get(), *points_, cache_.get(), q, 30.0, 10, &r).ok());
  EXPECT_EQ(r.sure_in + r.sure_out + r.fetched, r.candidates);
}

// --------------------------------------------------------------- kNN join --

TEST_F(ExtensionsTest, KnnJoinMatchesPerQueryResults) {
  // Outer set: 20 points sampled from the data.
  Dataset outer(8);
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    outer.Append(data_.point(static_cast<PointId>(rng.Uniform(data_.size()))));
  }

  KnnEngine engine(full_.get(), points_.get(), cache_.get());
  KnnJoinOptions jopt;
  jopt.k = 5;
  KnnJoinResult join;
  ASSERT_TRUE(KnnJoin(engine, outer, jopt, &join).ok());
  ASSERT_EQ(join.neighbors.size(), 20u);

  for (size_t i = 0; i < outer.size(); ++i) {
    auto truth = index::LinearScanKnn(data_, outer.point(
                                                 static_cast<PointId>(i)),
                                      5);
    std::set<PointId> expect;
    for (const auto& nb : truth) expect.insert(nb.id);
    std::set<PointId> got(join.neighbors[i].begin(),
                          join.neighbors[i].end());
    EXPECT_EQ(got, expect) << "outer point " << i;
  }
  EXPECT_GT(join.cache_hits, 0u);
}

TEST_F(ExtensionsTest, KnnJoinAggregatesIo) {
  Dataset outer(8);
  outer.Append(data_.point(0));
  outer.Append(data_.point(500));
  KnnEngine engine(full_.get(), points_.get(), nullptr);
  KnnJoinResult join;
  ASSERT_TRUE(KnnJoin(engine, outer, {.k = 3}, &join).ok());
  EXPECT_EQ(join.candidates, 2 * data_.size());
  EXPECT_GT(join.io.point_reads, 0u);
}

// ----------------------------------------------------------------- DBSCAN --

TEST_F(ExtensionsTest, DbscanFindsTheThreeBlobs) {
  DbscanOptions opt;
  opt.eps = 15.0;  // blob spread 4*sqrt(8) ~ 11; blobs are ~250 apart
  opt.min_pts = 5;
  DbscanResult res;
  ASSERT_TRUE(
      Dbscan(full_.get(), *points_, cache_.get(), data_, opt, &res).ok());
  EXPECT_EQ(res.num_clusters, 3);

  // Points of the same blob share a label; different blobs differ.
  for (int b = 0; b < 3; ++b) {
    std::set<int32_t> labels;
    for (size_t i = 0; i < 300; ++i) {
      const int32_t l = res.labels[b * 300 + i];
      if (l != kDbscanNoise) labels.insert(l);
    }
    EXPECT_EQ(labels.size(), 1u) << "blob " << b << " split";
  }
  std::set<int32_t> all(res.labels.begin(), res.labels.end());
  all.erase(kDbscanNoise);
  EXPECT_EQ(all.size(), 3u);
}

TEST_F(ExtensionsTest, DbscanCacheReducesFetches) {
  DbscanOptions opt;
  opt.eps = 15.0;
  opt.min_pts = 5;
  DbscanResult with_cache, without;
  ASSERT_TRUE(
      Dbscan(full_.get(), *points_, cache_.get(), data_, opt, &with_cache)
          .ok());
  ASSERT_TRUE(
      Dbscan(full_.get(), *points_, nullptr, data_, opt, &without).ok());
  EXPECT_EQ(with_cache.labels, without.labels)
      << "cache must not change the clustering";
  EXPECT_LT(with_cache.fetched, without.fetched / 4);
  EXPECT_GT(with_cache.bound_decided, 0u);
}

TEST_F(ExtensionsTest, DbscanAllNoiseWhenEpsTiny) {
  DbscanOptions opt;
  opt.eps = 0.001;
  opt.min_pts = 3;
  DbscanResult res;
  ASSERT_TRUE(
      Dbscan(full_.get(), *points_, nullptr, data_, opt, &res).ok());
  // With a near-zero radius only exact duplicates cluster.
  for (int32_t l : res.labels) {
    EXPECT_TRUE(l == kDbscanNoise || l >= 0);
  }
  EXPECT_LE(res.num_clusters, 3);
}

// --------------------------------------------------- eager miss fetch ----

TEST_F(ExtensionsTest, EagerMissFetchPreservesResults) {
  // Small cache: plenty of misses to eagerly resolve.
  cache::HistCodeCache small(&hist_, 8, 4096, false, true);
  std::vector<PointId> ids(data_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<PointId>(i);
  ASSERT_TRUE(small.Fill(data_, ids).ok());

  KnnEngine lazy(full_.get(), points_.get(), &small,
                 EngineOptions{.eager_miss_fetch = false});
  KnnEngine eager(full_.get(), points_.get(), &small,
                  EngineOptions{.eager_miss_fetch = true});
  Rng rng(13);
  for (int t = 0; t < 10; ++t) {
    std::vector<Scalar> q(8);
    for (auto& v : q) v = static_cast<Scalar>(rng.Uniform(256));
    QueryResult a, b;
    ASSERT_TRUE(lazy.Query(q, 10, &a).ok());
    ASSERT_TRUE(eager.Query(q, 10, &b).ok());
    EXPECT_EQ(a.result_ids, b.result_ids);
  }
}

}  // namespace
}  // namespace eeb::core
