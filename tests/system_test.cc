// End-to-end tests of the System facade: every cache method returns the
// same results as NO-CACHE, histogram caches beat EXACT on refinement I/O,
// HC-O is the strongest pruner, the cost model picks sensible taus, and the
// aggregate accounting is self-consistent.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/system.h"
#include "workload/generator.h"

namespace eeb::core {
namespace {

class SystemTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = (std::filesystem::temp_directory_path() / "eeb_system_test")
               .string();
    std::filesystem::create_directories(dir_);

    workload::DatasetSpec dspec;
    dspec.n = 6000;
    dspec.dim = 32;
    dspec.ndom = 256;
    dspec.clusters = 10;
    dspec.seed = 77;
    data_ = new Dataset(workload::GenerateClustered(dspec));

    workload::QueryLogSpec qspec;
    qspec.pool_size = 60;
    qspec.workload_size = 200;
    qspec.test_size = 25;
    log_ = new workload::QueryLog(workload::GenerateQueryLog(*data_, qspec));

    SystemOptions opt;
    opt.lsh.num_functions = 16;
    opt.lsh.collision_threshold = 8;
    opt.lsh.beta_candidates = 150;
    std::unique_ptr<System> sys;
    ASSERT_TRUE(System::Create(storage::Env::Default(), dir_, *data_,
                               log_->workload, opt, &sys)
                    .ok());
    system_ = sys.release();
  }

  static void TearDownTestSuite() {
    delete system_;
    delete log_;
    delete data_;
    std::filesystem::remove_all(dir_);
  }

  // Runs the test queries under a method and returns the aggregate.
  AggregateResult Run(CacheMethod method, size_t cache_bytes,
                      uint32_t tau = 0, bool lru = false) {
    EXPECT_TRUE(
        system_->ConfigureCache(method, cache_bytes, tau, lru).ok());
    AggregateResult agg;
    EXPECT_TRUE(system_->RunQueries(log_->test, 10, &agg).ok());
    return agg;
  }

  static std::string dir_;
  static Dataset* data_;
  static workload::QueryLog* log_;
  static System* system_;
};

std::string SystemTest::dir_;
Dataset* SystemTest::data_ = nullptr;
workload::QueryLog* SystemTest::log_ = nullptr;
System* SystemTest::system_ = nullptr;

constexpr size_t kCacheBytes = 150000;  // ~20% of 6000*32*4 = 768 KB

TEST_F(SystemTest, AllMethodsReturnIdenticalResults) {
  // Reference: NO-CACHE result ids per query.
  ASSERT_TRUE(system_->ConfigureCache(CacheMethod::kNone, 0).ok());
  std::vector<std::vector<PointId>> reference;
  for (const auto& q : log_->test) {
    QueryResult r;
    ASSERT_TRUE(system_->Query(q, 10, &r).ok());
    reference.push_back(r.result_ids);
  }

  for (CacheMethod m :
       {CacheMethod::kExact, CacheMethod::kHcW, CacheMethod::kHcV,
        CacheMethod::kHcD, CacheMethod::kHcO, CacheMethod::kIHcW,
        CacheMethod::kIHcD, CacheMethod::kIHcO, CacheMethod::kMHcR,
        CacheMethod::kCVa}) {
    ASSERT_TRUE(system_->ConfigureCache(m, kCacheBytes).ok()) << (int)m;
    for (size_t i = 0; i < log_->test.size(); ++i) {
      QueryResult r;
      ASSERT_TRUE(system_->Query(log_->test[i], 10, &r).ok());
      EXPECT_EQ(r.result_ids, reference[i])
          << CacheMethodName(m) << " changed results of query " << i;
    }
  }
}

TEST_F(SystemTest, HistogramCachesReduceIoVersusExact) {
  const auto exact = Run(CacheMethod::kExact, kCacheBytes);
  const auto hco = Run(CacheMethod::kHcO, kCacheBytes);
  const auto hcd = Run(CacheMethod::kHcD, kCacheBytes);
  EXPECT_LT(hco.avg_fetched, exact.avg_fetched)
      << "HC-O must fetch fewer candidates than EXACT caching";
  EXPECT_LT(hcd.avg_fetched, exact.avg_fetched);
  EXPECT_GT(hco.hit_ratio, exact.hit_ratio)
      << "compact codes fit more items -> higher hit ratio";
}

TEST_F(SystemTest, EstimateCurrentCacheMatchesConfiguredMethod) {
  // Unconfigured (NO-CACHE): invalid argument.
  ASSERT_TRUE(system_->ConfigureCache(CacheMethod::kNone, 0).ok());
  CostEstimate est;
  EXPECT_TRUE(system_->EstimateCurrentCache(10, &est).IsInvalidArgument());

  // EXACT: every hit fully resolved.
  const auto exact = Run(CacheMethod::kExact, kCacheBytes);
  ASSERT_TRUE(system_->EstimateCurrentCache(10, &est).ok());
  EXPECT_DOUBLE_EQ(est.prune_ratio, 1.0);
  EXPECT_GT(est.hit_ratio, 0.0);
  EXPECT_LE(est.expected_crefine,
            system_->workload_stats().avg_candidates + 1e-9);

  // Global histogram: the estimate reuses the retained build histogram and
  // should land in the same ballpark as the measurement (the model is an
  // estimate, not a bound; generous tolerances).
  const auto hco = Run(CacheMethod::kHcO, kCacheBytes);
  ASSERT_TRUE(system_->EstimateCurrentCache(10, &est).ok());
  EXPECT_GT(est.hit_ratio, 0.0);
  EXPECT_LE(est.hit_ratio, 1.0);
  const ModelValidation v = ValidateEstimate(est, hco.hit_ratio,
                                             hco.prune_ratio,
                                             hco.avg_remaining);
  EXPECT_LT(v.hit_error, 0.5);
  EXPECT_LT(v.crefine_rel_error, 2.0);

  // Per-dimension / multi-dim caches: no single-histogram estimator.
  (void)Run(CacheMethod::kIHcO, kCacheBytes);
  EXPECT_TRUE(system_->EstimateCurrentCache(10, &est).IsNotSupported());
  (void)exact;
}

TEST_F(SystemTest, HcoIsBestGlobalHistogramAtEqualTau) {
  // Compare histogram quality at the same code length (auto-tuned taus may
  // differ per method; the paper's Table 4 also notes the cost-model
  // default is not always the measured optimum).
  const uint32_t tau = 5;
  const auto hcw = Run(CacheMethod::kHcW, kCacheBytes, tau);
  const auto hcv = Run(CacheMethod::kHcV, kCacheBytes, tau);
  const auto hcd = Run(CacheMethod::kHcD, kCacheBytes, tau);
  const auto hco = Run(CacheMethod::kHcO, kCacheBytes, tau);
  EXPECT_LE(hco.avg_fetched, hcd.avg_fetched * 1.15)
      << "HC-O should be at least on par with HC-D";
  EXPECT_LE(hco.avg_fetched, hcw.avg_fetched * 1.15);
  EXPECT_LE(hco.avg_fetched, hcv.avg_fetched * 1.15);
}

TEST_F(SystemTest, MhcRIsIneffective) {
  const auto mhcr = Run(CacheMethod::kMHcR, kCacheBytes);
  const auto hco = Run(CacheMethod::kHcO, kCacheBytes);
  EXPECT_GT(mhcr.avg_fetched, hco.avg_fetched)
      << "curse of dimensionality: mHC-R prunes worse than HC-O";
}

TEST_F(SystemTest, NoCacheFetchesEverything) {
  const auto none = Run(CacheMethod::kNone, 0);
  EXPECT_DOUBLE_EQ(none.hit_ratio, 0.0);
  EXPECT_NEAR(none.avg_remaining, none.avg_candidates, 1e-9);
}

TEST_F(SystemTest, AggregateAccountingConsistent) {
  const auto agg = Run(CacheMethod::kHcO, kCacheBytes);
  EXPECT_GT(agg.avg_candidates, 0.0);
  EXPECT_LE(agg.avg_fetched, agg.avg_remaining + 1e-9);
  EXPECT_LE(agg.avg_remaining, agg.avg_candidates + 1e-9);
  EXPECT_GE(agg.hit_ratio, 0.0);
  EXPECT_LE(agg.hit_ratio, 1.0);
  EXPECT_NEAR(agg.avg_response_seconds,
              agg.avg_gen_seconds + agg.avg_refine_seconds, 1e-12);
}

TEST_F(SystemTest, AutoTauWithinRange) {
  for (CacheMethod m : {CacheMethod::kHcW, CacheMethod::kHcD,
                        CacheMethod::kHcO}) {
    const uint32_t tau = system_->AutoTau(m, kCacheBytes, 10);
    EXPECT_GE(tau, 1u);
    EXPECT_LE(tau, system_->lvalue());
  }
}

TEST_F(SystemTest, ConfigureReportsHistogramCosts) {
  ASSERT_TRUE(
      system_->ConfigureCache(CacheMethod::kHcO, kCacheBytes, 6).ok());
  EXPECT_EQ(system_->last_tau(), 6u);
  EXPECT_EQ(system_->last_histogram_space_bytes(), 64u * 2 * 4);
  EXPECT_GT(system_->last_histogram_build_seconds(), 0.0);
}

TEST_F(SystemTest, LruModeWorksAndWarmsUp) {
  ASSERT_TRUE(
      system_->ConfigureCache(CacheMethod::kHcO, kCacheBytes, 6, true).ok());
  QueryResult cold, warm;
  ASSERT_TRUE(system_->Query(log_->test[0], 10, &cold).ok());
  ASSERT_TRUE(system_->Query(log_->test[0], 10, &warm).ok());
  EXPECT_EQ(cold.result_ids, warm.result_ids);
  EXPECT_GE(warm.cache_hits, cold.cache_hits);
}

TEST_F(SystemTest, CVaCachesWholeDataset) {
  ASSERT_TRUE(
      system_->ConfigureCache(CacheMethod::kCVa, kCacheBytes).ok());
  EXPECT_EQ(system_->cache()->size(), data_->size())
      << "C-VA must hold an approximation of every point";
}

TEST_F(SystemTest, OrderingVariantsProduceSameResults) {
  // Fig. 9 precondition: physical ordering affects I/O only, not answers.
  for (FileOrdering ord :
       {FileOrdering::kClustered, FileOrdering::kSortedKey}) {
    const std::string d2 = dir_ + "/ord" + std::to_string((int)ord);
    std::filesystem::create_directories(d2);
    SystemOptions opt;
    opt.lsh.num_functions = 16;
    opt.lsh.collision_threshold = 8;
    opt.lsh.beta_candidates = 150;
    opt.ordering = ord;
    std::unique_ptr<System> sys2;
    ASSERT_TRUE(System::Create(storage::Env::Default(), d2, *data_,
                               log_->workload, opt, &sys2)
                    .ok());
    ASSERT_TRUE(system_->ConfigureCache(CacheMethod::kNone, 0).ok());
    ASSERT_TRUE(sys2->ConfigureCache(CacheMethod::kNone, 0).ok());
    for (size_t i = 0; i < 5; ++i) {
      QueryResult a, b;
      ASSERT_TRUE(system_->Query(log_->test[i], 10, &a).ok());
      ASSERT_TRUE(sys2->Query(log_->test[i], 10, &b).ok());
      EXPECT_EQ(a.result_ids, b.result_ids);
    }
  }
}

}  // namespace
}  // namespace eeb::core
