// Edge-input tests for the estimators and quality helpers: empty frequency
// curves, zero Dmax, k larger than the dataset, oversized results.

#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "core/quality.h"
#include "hist/builders.h"

namespace eeb::core {
namespace {

TEST(CostModelEdgeTest, EmptyFrequenciesGiveZeroHit) {
  CostModelInputs in;
  in.avg_candidates = 100;
  in.dmax = 10;
  in.dim = 8;
  in.lvalue = 8;
  in.cache_bytes = 1 << 20;
  const auto est = EstimateEquiWidth(in, 4);
  EXPECT_DOUBLE_EQ(est.hit_ratio, 0.0);
  EXPECT_DOUBLE_EQ(est.expected_crefine, 100.0);
}

TEST(CostModelEdgeTest, TinyDmaxClampsPruneToZero) {
  CostModelInputs in;
  in.freq_sorted.assign(100, 1.0);
  in.avg_candidates = 50;
  in.dmax = 1e-9;  // every error norm exceeds it
  in.dim = 64;
  in.lvalue = 8;
  in.cache_bytes = 1 << 20;
  const auto est = EstimateEquiWidth(in, 2);
  EXPECT_DOUBLE_EQ(est.prune_ratio, 0.0);
}

TEST(CostModelEdgeTest, ZeroCacheGivesFullCrefine) {
  CostModelInputs in;
  in.freq_sorted.assign(100, 1.0);
  in.avg_candidates = 42;
  in.dmax = 100;
  in.dim = 8;
  in.lvalue = 8;
  in.cache_bytes = 0;
  const auto est = EstimateExact(in);
  EXPECT_DOUBLE_EQ(est.hit_ratio, 0.0);
  EXPECT_DOUBLE_EQ(est.expected_crefine, 42.0);
}

TEST(CostModelEdgeTest, EmpiricalSampleRespected) {
  // All candidate distances at 100; a histogram whose error norms reach the
  // threshold sees rho_refine = 1 (everything below threshold).
  CostModelInputs in;
  in.freq_sorted.assign(100, 1.0);
  in.avg_candidates = 10;
  in.dmax = 1000;
  in.avg_knn_dist = 100;
  in.cand_dist_sample.assign(64, 100.0);
  in.dim = 4;
  in.lvalue = 8;
  in.cache_bytes = 1 << 20;
  hist::FrequencyArray f(256);
  for (uint32_t x = 0; x < 256; ++x) f.Add(x, 1.0);
  hist::Histogram coarse;
  ASSERT_TRUE(hist::BuildEquiWidth(256, 2, &coarse).ok());  // width 127
  const auto est = EstimateForHistogram(in, coarse, f, f);
  EXPECT_DOUBLE_EQ(est.prune_ratio, 0.0)
      << "threshold far above every sampled distance";

  hist::Histogram fine;
  ASSERT_TRUE(hist::BuildEquiWidth(256, 256, &fine).ok());  // width 0
  const auto est2 = EstimateForHistogram(in, fine, f, f);
  // Threshold = 100 + 0 + 0; sample values are exactly 100, and the
  // lower_bound rule counts values < threshold only.
  EXPECT_DOUBLE_EQ(est2.prune_ratio, 1.0);
}

TEST(QualityEdgeTest, KLargerThanDataset) {
  Dataset data(2);
  std::vector<Scalar> p{1, 1};
  data.Append(p);
  std::vector<Scalar> q{0, 0};
  std::vector<PointId> ids{0};
  const auto quality = MeasureQuality(data, q, ids, 5);
  EXPECT_DOUBLE_EQ(quality.recall, 0.2);  // 1 of k=5 possible
  EXPECT_DOUBLE_EQ(quality.overall_ratio, 1.0);
}

TEST(QualityEdgeTest, EmptyResult) {
  Dataset data(2);
  std::vector<Scalar> p{1, 1};
  data.Append(p);
  std::vector<Scalar> q{0, 0};
  const auto quality = MeasureQuality(data, q, {}, 3);
  EXPECT_DOUBLE_EQ(quality.recall, 0.0);
  EXPECT_DOUBLE_EQ(quality.overall_ratio, 1.0);  // no ranks to compare
}

TEST(QualityEdgeTest, KZero) {
  Dataset data(2);
  std::vector<Scalar> p{1, 1};
  data.Append(p);
  std::vector<Scalar> q{0, 0};
  std::vector<PointId> ids{0};
  const auto quality = MeasureQuality(data, q, ids, 0);
  EXPECT_DOUBLE_EQ(quality.recall, 0.0);
  EXPECT_DOUBLE_EQ(quality.overall_ratio, 1.0);
}

}  // namespace
}  // namespace eeb::core
