// Tests for the Sec. 3.5 maintenance machinery: drift metric, epoch-driven
// rebuilds, and System::RefreshWorkload / ReconfigureCache.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/maintenance.h"
#include "workload/generator.h"

namespace eeb::core {
namespace {

TEST(DriftTest, IdenticalDistributionsHaveZeroDrift) {
  hist::FrequencyArray a(16), b(16);
  for (uint32_t x = 0; x < 16; ++x) {
    a.Add(x, x + 1.0);
    b.Add(x, 2.0 * (x + 1.0));  // scaled, same shape
  }
  EXPECT_NEAR(DistributionDrift(a, b), 0.0, 1e-12);
}

TEST(DriftTest, DisjointDistributionsHaveDriftOne) {
  hist::FrequencyArray a(16), b(16);
  a.Add(0, 10.0);
  b.Add(15, 10.0);
  EXPECT_NEAR(DistributionDrift(a, b), 1.0, 1e-12);
}

TEST(DriftTest, EmptyCountsAsUniform) {
  hist::FrequencyArray a(4), b(4);
  for (uint32_t x = 0; x < 4; ++x) b.Add(x, 1.0);
  EXPECT_NEAR(DistributionDrift(a, b), 0.0, 1e-12);
}

TEST(DriftTest, SymmetricAndBounded) {
  hist::FrequencyArray a(32), b(32);
  a.Add(3, 5.0);
  a.Add(20, 1.0);
  b.Add(3, 1.0);
  b.Add(29, 7.0);
  const double d1 = DistributionDrift(a, b);
  const double d2 = DistributionDrift(b, a);
  EXPECT_DOUBLE_EQ(d1, d2);
  EXPECT_GT(d1, 0.0);
  EXPECT_LE(d1, 1.0);
}

class MaintainerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() / "eeb_maint").string();
    std::filesystem::create_directories(dir_);

    workload::DatasetSpec dspec;
    dspec.n = 5000;
    dspec.dim = 16;
    dspec.ndom = 256;
    dspec.clusters = 8;
    dspec.seed = 11;
    data_ = workload::GenerateClustered(dspec);

    // Two disjoint query pools: epochs drawn from pool A vs pool B have a
    // very different near-result distribution.
    workload::QueryLogSpec qa;
    qa.pool_size = 30;
    qa.workload_size = 150;
    qa.seed = 21;
    log_a_ = workload::GenerateQueryLog(data_, qa);
    workload::QueryLogSpec qb = qa;
    qb.seed = 99;  // different pool
    log_b_ = workload::GenerateQueryLog(data_, qb);

    core::SystemOptions opt;
    opt.lsh.beta_candidates = 100;
    ASSERT_TRUE(System::Create(storage::Env::Default(), dir_, data_,
                               log_a_.workload, opt, &system_)
                    .ok());
    ASSERT_TRUE(
        system_->ConfigureCache(CacheMethod::kHcO, 50000).ok());
  }

  std::string dir_;
  Dataset data_;
  workload::QueryLog log_a_;
  workload::QueryLog log_b_;
  std::unique_ptr<System> system_;
};

TEST_F(MaintainerTest, StableWorkloadDoesNotRebuild) {
  CacheMaintainer maint(system_.get(), {.rebuild_threshold = 0.15});
  ASSERT_TRUE(maint.EndEpoch(log_a_.workload).ok());
  EXPECT_EQ(maint.rebuilds(), 0u) << "drift " << maint.last_drift();
  EXPECT_LT(maint.last_drift(), 0.15);
}

TEST_F(MaintainerTest, ShiftedWorkloadTriggersRebuild) {
  CacheMaintainer maint(system_.get(), {.rebuild_threshold = 0.15});
  ASSERT_TRUE(maint.EndEpoch(log_b_.workload).ok());
  EXPECT_EQ(maint.rebuilds(), 1u) << "drift " << maint.last_drift();
  EXPECT_GT(maint.last_drift(), 0.15);

  // After the rebuild the active stats match epoch B: a repeat of the same
  // epoch must not rebuild again.
  ASSERT_TRUE(maint.EndEpoch(log_b_.workload).ok());
  EXPECT_EQ(maint.rebuilds(), 1u);
  EXPECT_EQ(maint.epochs(), 2u);
}

TEST_F(MaintainerTest, RebuildImprovesHitRatioOnNewWorkload) {
  // Serving epoch-B queries with the epoch-A cache vs after maintenance.
  AggregateResult before;
  ASSERT_TRUE(system_->RunQueries(log_b_.test, 10, &before).ok());

  CacheMaintainer maint(system_.get(), {.rebuild_threshold = 0.15});
  ASSERT_TRUE(maint.EndEpoch(log_b_.workload).ok());
  ASSERT_EQ(maint.rebuilds(), 1u);

  AggregateResult after;
  ASSERT_TRUE(system_->RunQueries(log_b_.test, 10, &after).ok());
  EXPECT_GT(after.hit_ratio, before.hit_ratio)
      << "rebuilt HFF content should serve the new workload better";
}

TEST_F(MaintainerTest, ResultsStayCorrectAcrossRebuilds) {
  ASSERT_TRUE(system_->ConfigureCache(CacheMethod::kNone, 0).ok());
  QueryResult reference;
  ASSERT_TRUE(system_->Query(log_b_.test[0], 10, &reference).ok());

  ASSERT_TRUE(system_->ConfigureCache(CacheMethod::kHcO, 50000).ok());
  CacheMaintainer maint(system_.get(), {.rebuild_threshold = 0.0});
  ASSERT_TRUE(maint.EndEpoch(log_b_.workload).ok());
  QueryResult after;
  ASSERT_TRUE(system_->Query(log_b_.test[0], 10, &after).ok());
  EXPECT_EQ(after.result_ids, reference.result_ids);
}

TEST_F(MaintainerTest, HistoryBlendingKeepsOldHotPoints) {
  // With decay, a rebuild after the shift still ranks epoch-A hot points
  // above never-seen points, so a return to workload A finds warm content.
  CacheMaintainer plain(system_.get(), {.rebuild_threshold = 0.0,
                                        .history_decay = 0.0});
  ASSERT_TRUE(plain.EndEpoch(log_b_.workload).ok());
  AggregateResult back_plain;
  ASSERT_TRUE(system_->RunQueries(log_a_.test, 10, &back_plain).ok());

  // Reset to the A-built state, then maintain with history.
  ASSERT_TRUE(system_->RefreshWorkload(log_a_.workload).ok());
  ASSERT_TRUE(system_->ReconfigureCache().ok());
  CacheMaintainer blended(system_.get(), {.rebuild_threshold = 0.0,
                                          .history_decay = 0.8});
  ASSERT_TRUE(blended.EndEpoch(log_a_.workload).ok());
  ASSERT_TRUE(blended.EndEpoch(log_b_.workload).ok());
  AggregateResult back_blended;
  ASSERT_TRUE(system_->RunQueries(log_a_.test, 10, &back_blended).ok());

  EXPECT_GE(back_blended.hit_ratio, back_plain.hit_ratio)
      << "history blending should not serve returning workloads worse";
  // Epoch A matches the active stats exactly (drift 0), so only the B
  // epoch rebuilds.
  EXPECT_EQ(blended.rebuilds(), 1u);
  EXPECT_EQ(blended.epochs(), 2u);
}

TEST_F(MaintainerTest, SetWorkloadStatsValidates) {
  WorkloadStats bad;
  bad.freq.assign(3, 1.0);  // wrong size
  hist::FrequencyArray f(system_->options().ndom);
  EXPECT_TRUE(system_->SetWorkloadStats(bad, f).IsInvalidArgument());
  hist::FrequencyArray wrong_dom(16);
  WorkloadStats ok_stats = system_->workload_stats();
  EXPECT_TRUE(
      system_->SetWorkloadStats(ok_stats, wrong_dom).IsInvalidArgument());
}

}  // namespace
}  // namespace eeb::core
