// Fixture tests for the BENCH artifact comparison engine: the JSON reader
// (shapes, escapes, malformed input) and DiffBench's gate semantics —
// identical artifacts pass, an injected >=20% latency regression fails, a
// hit-ratio drop fails, a missing cell fails, improvements and new cells
// are notes, thresholds are overridable, and quick/full artifacts refuse
// to compare.

#include <gtest/gtest.h>

#include <string>

#include "bench_diff_core.h"

namespace eeb::benchdiff {
namespace {

// Minimal but schema-complete artifact with one tweakable cell.
std::string Artifact(double avg, double p95, double refine_pages,
                     double hit_ratio, const std::string& extra_cells = "",
                     bool quick = false, const std::string& suite = "smoke") {
  char cell[512];
  std::snprintf(
      cell, sizeof(cell),
      "{\"name\":\"hc_o_30\",\"method\":\"HC-O\",\"cache_bytes\":786432,"
      "\"k\":10,\"tau\":6,\"lru\":false,"
      "\"latency\":{\"avg_seconds\":%g,\"p50_seconds\":%g,"
      "\"p95_seconds\":%g,\"p99_seconds\":%g},"
      "\"candidates\":{\"avg\":110,\"avg_remaining\":30,"
      "\"refine_ratio\":0.27},"
      "\"io\":{\"avg_refine_pages\":%g,\"avg_gen_pages\":92,"
      "\"avg_gen_seq_pages\":30},"
      "\"cache\":{\"hit_ratio\":%g,\"prune_ratio\":0.9},"
      "\"phase_profile\":{\"schema_version\":1,\"phases\":[]},"
      "\"model_error\":null}",
      avg, avg, p95, p95, refine_pages, hit_ratio);
  return std::string("{\"schema_version\":1,\"suite\":\"") + suite +
         "\",\"dataset\":{\"name\":\"smoke\",\"n\":20000,\"dim\":32,"
         "\"ndom\":256,\"seed\":5},\"log\":{\"test_size\":50,\"seed\":2},"
         "\"quick\":" +
         (quick ? "true" : "false") +
         ",\"build\":{\"compiler\":\"x\",\"type\":\"release\"},"
         "\"cells\":[" +
         cell + extra_cells + "]}";
}

// ---------------------------------------------------------------- parser --

TEST(JsonParserTest, ParsesScalarsArraysObjects) {
  JsonValue v;
  ASSERT_TRUE(ParseJson(R"({"a":1.5,"b":"x\"y","c":[true,false,null],)"
                        R"("d":{"e":-2e3}})",
                        &v)
                  .ok());
  ASSERT_EQ(v.type, JsonValue::Type::kObject);
  EXPECT_DOUBLE_EQ(v.Find("a")->number, 1.5);
  EXPECT_EQ(v.Find("b")->str, "x\"y");
  ASSERT_EQ(v.Find("c")->items.size(), 3u);
  EXPECT_TRUE(v.Find("c")->items[0].boolean);
  EXPECT_EQ(v.Find("c")->items[2].type, JsonValue::Type::kNull);
  EXPECT_DOUBLE_EQ(v.Find("d")->Find("e")->number, -2000.0);
  EXPECT_EQ(v.Find("missing"), nullptr);
}

TEST(JsonParserTest, RejectsMalformedInput) {
  JsonValue v;
  EXPECT_FALSE(ParseJson("{", &v).ok());
  EXPECT_FALSE(ParseJson("{\"a\":}", &v).ok());
  EXPECT_FALSE(ParseJson("[1,2", &v).ok());
  EXPECT_FALSE(ParseJson("\"unterminated", &v).ok());
  EXPECT_FALSE(ParseJson("{} trailing", &v).ok());
  EXPECT_FALSE(ParseJson("nulll", &v).ok());
  EXPECT_FALSE(ParseJson("1.2.3", &v).ok());
}

TEST(JsonParserTest, ParsesARealArtifact) {
  JsonValue v;
  const std::string a = Artifact(0.46, 0.47, 25, 0.95);
  ASSERT_TRUE(ParseJson(a, &v).ok());
  EXPECT_EQ(v.Find("suite")->str, "smoke");
  EXPECT_EQ(v.Find("cells")->items.size(), 1u);
}

// ------------------------------------------------------------------ diff --

TEST(BenchDiffTest, IdenticalArtifactsPass) {
  const std::string a = Artifact(0.46, 0.47, 25, 0.95);
  DiffResult r;
  ASSERT_TRUE(DiffBench(a, a, DiffOptions{}, &r).ok());
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.regressions.empty());
}

TEST(BenchDiffTest, TwentyPercentLatencyRegressionFails) {
  // Acceptance criterion: an injected >=20% average-latency regression must
  // trip the default 15% threshold.
  const std::string base = Artifact(0.50, 0.52, 25, 0.95);
  const std::string cur = Artifact(0.60, 0.52, 25, 0.95);
  DiffResult r;
  ASSERT_TRUE(DiffBench(base, cur, DiffOptions{}, &r).ok());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.regressions[0].find("avg latency"), std::string::npos);
}

TEST(BenchDiffTest, TailLatencyHasItsOwnLooserThreshold) {
  // +20% tail only: below the 25% tail threshold, passes.
  const std::string base = Artifact(0.50, 0.50, 25, 0.95);
  DiffResult r;
  ASSERT_TRUE(
      DiffBench(base, Artifact(0.50, 0.60, 25, 0.95), DiffOptions{}, &r)
          .ok());
  EXPECT_TRUE(r.ok());
  // +30% tail: fails.
  ASSERT_TRUE(
      DiffBench(base, Artifact(0.50, 0.65, 25, 0.95), DiffOptions{}, &r)
          .ok());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.regressions[0].find("p95 latency"), std::string::npos);
}

TEST(BenchDiffTest, HitRatioDropFails) {
  const std::string base = Artifact(0.46, 0.47, 25, 0.95);
  const std::string cur = Artifact(0.46, 0.47, 25, 0.80);
  DiffResult r;
  ASSERT_TRUE(DiffBench(base, cur, DiffOptions{}, &r).ok());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.regressions[0].find("hit ratio"), std::string::npos);
}

TEST(BenchDiffTest, PageIoIncreaseFails) {
  const std::string base = Artifact(0.46, 0.47, 100, 0.95);
  const std::string cur = Artifact(0.46, 0.47, 140, 0.95);
  DiffResult r;
  ASSERT_TRUE(DiffBench(base, cur, DiffOptions{}, &r).ok());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.regressions[0].find("pages/query"), std::string::npos);
}

TEST(BenchDiffTest, MissingCellFails) {
  const std::string extra =
      ",{\"name\":\"exact_30\",\"latency\":{\"avg_seconds\":0.6,"
      "\"p95_seconds\":0.7},\"io\":{\"avg_refine_pages\":10,"
      "\"avg_gen_pages\":10},\"cache\":{\"hit_ratio\":0.5}}";
  const std::string base = Artifact(0.46, 0.47, 25, 0.95, extra);
  const std::string cur = Artifact(0.46, 0.47, 25, 0.95);
  DiffResult r;
  ASSERT_TRUE(DiffBench(base, cur, DiffOptions{}, &r).ok());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.regressions[0].find("missing"), std::string::npos);
}

TEST(BenchDiffTest, ImprovementsAndNewCellsAreNotesNotFailures) {
  const std::string extra =
      ",{\"name\":\"brand_new\",\"latency\":{\"avg_seconds\":0.6,"
      "\"p95_seconds\":0.7},\"io\":{\"avg_refine_pages\":10,"
      "\"avg_gen_pages\":10},\"cache\":{\"hit_ratio\":0.5}}";
  const std::string base = Artifact(0.50, 0.52, 25, 0.90);
  const std::string cur = Artifact(0.30, 0.32, 25, 0.99, extra);
  DiffResult r;
  ASSERT_TRUE(DiffBench(base, cur, DiffOptions{}, &r).ok());
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.notes.empty());
}

TEST(BenchDiffTest, ThresholdOverrideWidensTheGate) {
  const std::string base = Artifact(0.50, 0.52, 25, 0.95);
  const std::string cur = Artifact(0.60, 0.52, 25, 0.95);  // +20% avg
  DiffOptions loose;
  loose.max_avg_latency_increase = 0.30;
  DiffResult r;
  ASSERT_TRUE(DiffBench(base, cur, loose, &r).ok());
  EXPECT_TRUE(r.ok());
  DiffOptions tight;
  tight.max_avg_latency_increase = 0.10;
  ASSERT_TRUE(DiffBench(base, cur, tight, &r).ok());
  EXPECT_FALSE(r.ok());
}

TEST(BenchDiffTest, QuickModeMismatchIsAnInputError) {
  const std::string full = Artifact(0.46, 0.47, 25, 0.95);
  const std::string quick =
      Artifact(0.46, 0.47, 25, 0.95, "", /*quick=*/true);
  DiffResult r;
  EXPECT_FALSE(DiffBench(full, quick, DiffOptions{}, &r).ok());
}

TEST(BenchDiffTest, SuiteMismatchIsAnInputError) {
  const std::string a = Artifact(0.46, 0.47, 25, 0.95);
  const std::string b =
      Artifact(0.46, 0.47, 25, 0.95, "", false, "fig13");
  DiffResult r;
  EXPECT_FALSE(DiffBench(a, b, DiffOptions{}, &r).ok());
}

// Artifact with a robustness section (post-fault-tolerance schema).
std::string ArtifactWithDegraded(double degraded_rate) {
  char cell[640];
  std::snprintf(
      cell, sizeof(cell),
      "{\"name\":\"hc_o_30\",\"method\":\"HC-O\",\"cache_bytes\":786432,"
      "\"k\":10,\"tau\":6,\"lru\":false,"
      "\"latency\":{\"avg_seconds\":0.46,\"p50_seconds\":0.46,"
      "\"p95_seconds\":0.47,\"p99_seconds\":0.47},"
      "\"candidates\":{\"avg\":110,\"avg_remaining\":30,"
      "\"refine_ratio\":0.27},"
      "\"io\":{\"avg_refine_pages\":25,\"avg_gen_pages\":92,"
      "\"avg_gen_seq_pages\":30},"
      "\"cache\":{\"hit_ratio\":0.95,\"prune_ratio\":0.9},"
      "\"robustness\":{\"degraded_rate\":%g,\"degraded_queries\":%d,"
      "\"avg_substituted\":0,\"read_failures\":0},"
      "\"phase_profile\":{\"schema_version\":1,\"phases\":[]},"
      "\"model_error\":null}",
      degraded_rate, degraded_rate > 0 ? 1 : 0);
  return std::string(
             "{\"schema_version\":1,\"suite\":\"smoke\","
             "\"dataset\":{\"name\":\"smoke\",\"n\":20000,\"dim\":32,"
             "\"ndom\":256,\"seed\":5},\"log\":{\"test_size\":50,\"seed\":2},"
             "\"quick\":false,"
             "\"build\":{\"compiler\":\"x\",\"type\":\"release\"},"
             "\"cells\":[") +
         cell + "]}";
}

TEST(BenchDiffTest, AnyDegradedQueryOnCleanDiskFails) {
  // The default gate is zero tolerance: a change that silently degrades
  // queries in the clean-disk bench must fail even against an old baseline
  // that predates the robustness section (missing section reads as rate 0).
  const std::string old_base = Artifact(0.46, 0.47, 25, 0.95);
  const std::string cur = ArtifactWithDegraded(0.02);
  DiffResult r;
  ASSERT_TRUE(DiffBench(old_base, cur, DiffOptions{}, &r).ok());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.regressions[0].find("degraded rate"), std::string::npos);
}

TEST(BenchDiffTest, ZeroDegradedRatePasses) {
  const std::string old_base = Artifact(0.46, 0.47, 25, 0.95);
  const std::string cur = ArtifactWithDegraded(0.0);
  DiffResult r;
  ASSERT_TRUE(DiffBench(old_base, cur, DiffOptions{}, &r).ok());
  EXPECT_TRUE(r.ok()) << (r.regressions.empty() ? "" : r.regressions[0]);
  // New-schema baseline vs itself also passes.
  ASSERT_TRUE(DiffBench(cur, cur, DiffOptions{}, &r).ok());
  EXPECT_TRUE(r.ok());
}

TEST(BenchDiffTest, DegradedRateThresholdIsOverridable) {
  const std::string base = ArtifactWithDegraded(0.0);
  const std::string cur = ArtifactWithDegraded(0.05);
  DiffOptions chaos;  // a fault-injection bench expects some degradation
  chaos.max_degraded_rate_increase = 0.10;
  DiffResult r;
  ASSERT_TRUE(DiffBench(base, cur, chaos, &r).ok());
  EXPECT_TRUE(r.ok());
  ASSERT_TRUE(DiffBench(base, cur, DiffOptions{}, &r).ok());
  EXPECT_FALSE(r.ok());
}

// Concurrency-suite artifact with one tweakable thread cell.
std::string ConcurrencyArtifact(double capacity_qps, double p95,
                                bool bit_exact) {
  char cell[512];
  std::snprintf(
      cell, sizeof(cell),
      "{\"name\":\"threads_8\",\"threads\":8,"
      "\"throughput\":{\"capacity_qps\":%g,\"speedup_vs_1\":7.6,"
      "\"wall_qps\":3.1},"
      "\"open_loop\":{\"utilization\":0.8,\"arrival_qps\":%g,"
      "\"p50_seconds\":0.5,\"p95_seconds\":%g,\"p99_seconds\":%g},"
      "\"bit_exact\":%s}",
      capacity_qps, 0.8 * capacity_qps, p95, p95,
      bit_exact ? "true" : "false");
  return std::string(
             "{\"schema_version\":1,\"suite\":\"concurrency\","
             "\"dataset\":{\"name\":\"smoke\",\"n\":20000,\"dim\":32,"
             "\"ndom\":256,\"seed\":5},\"log\":{\"test_size\":50,\"seed\":2},"
             "\"quick\":false,"
             "\"build\":{\"compiler\":\"x\",\"type\":\"release\"},"
             "\"config\":{\"method\":\"HC-O\",\"cache_bytes\":786432,"
             "\"k\":10,\"utilization\":0.8,\"avg_service_seconds\":0.45},"
             "\"cells\":[") +
         cell + "]}";
}

TEST(BenchDiffTest, QpsDropBeyondThresholdFails) {
  // Acceptance criterion: an injected QPS regression past the default 25%
  // threshold must fail the gate; a smaller dip must not.
  const std::string base = ConcurrencyArtifact(16.0, 0.6, true);
  DiffResult r;
  ASSERT_TRUE(
      DiffBench(base, ConcurrencyArtifact(13.0, 0.6, true), DiffOptions{}, &r)
          .ok());
  EXPECT_TRUE(r.ok());  // -19%: within threshold
  ASSERT_TRUE(
      DiffBench(base, ConcurrencyArtifact(10.0, 0.6, true), DiffOptions{}, &r)
          .ok());
  ASSERT_FALSE(r.ok());  // -37%: regression
  EXPECT_NE(r.regressions[0].find("capacity QPS"), std::string::npos);
}

TEST(BenchDiffTest, QpsThresholdIsOverridable) {
  const std::string base = ConcurrencyArtifact(16.0, 0.6, true);
  const std::string cur = ConcurrencyArtifact(10.0, 0.6, true);  // -37%
  DiffOptions loose;
  loose.max_qps_drop = 0.50;
  DiffResult r;
  ASSERT_TRUE(DiffBench(base, cur, loose, &r).ok());
  EXPECT_TRUE(r.ok());
}

TEST(BenchDiffTest, QpsImprovementIsANote) {
  const std::string base = ConcurrencyArtifact(16.0, 0.6, true);
  const std::string cur = ConcurrencyArtifact(24.0, 0.6, true);
  DiffResult r;
  ASSERT_TRUE(DiffBench(base, cur, DiffOptions{}, &r).ok());
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.notes.empty());
}

TEST(BenchDiffTest, BitExactFalseFailsEvenWithGoodQps) {
  const std::string base = ConcurrencyArtifact(16.0, 0.6, true);
  const std::string cur = ConcurrencyArtifact(20.0, 0.6, false);
  DiffResult r;
  ASSERT_TRUE(DiffBench(base, cur, DiffOptions{}, &r).ok());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.regressions[0].find("bit-exact"), std::string::npos);
}

// Analytics-suite artifact with one tweakable cell: the MRC-prediction
// error and the miss-class reconciliation flag.
std::string AnalyticsArtifact(double prediction_error, bool reconciled) {
  char cell[768];
  std::snprintf(
      cell, sizeof(cell),
      "{\"name\":\"exact_lru_10\",\"method\":\"Exact\",\"cache_bytes\":65536,"
      "\"k\":10,\"tau\":0,\"lru\":true,"
      "\"latency\":{\"avg_seconds\":0.4,\"p50_seconds\":0.4,"
      "\"p95_seconds\":0.5,\"p99_seconds\":0.5},"
      "\"io\":{\"avg_refine_pages\":20,\"avg_gen_pages\":90,"
      "\"avg_gen_seq_pages\":30},"
      "\"cache\":{\"hit_ratio\":0.8,\"prune_ratio\":0.9},"
      "\"analytics\":{\"sampling_rate\":0.25,\"sampled_accesses\":5000,"
      "\"tracked_keys\":900,\"capacity_items\":800,"
      "\"predicted_miss_ratio\":0.21,\"measured_miss_ratio\":0.2,"
      "\"prediction_error\":%g,\"reconciled\":%s,"
      "\"miss_classes\":{\"accesses\":10000,\"hits\":8000,\"misses\":2000,"
      "\"compulsory\":1500,\"capacity\":500,\"invalidation\":0}}}",
      prediction_error, reconciled ? "true" : "false");
  return std::string(
             "{\"schema_version\":1,\"suite\":\"analytics\","
             "\"dataset\":{\"name\":\"smoke\",\"n\":20000,\"dim\":32,"
             "\"ndom\":256,\"seed\":5},\"log\":{\"test_size\":50,\"seed\":2},"
             "\"quick\":false,"
             "\"build\":{\"compiler\":\"x\",\"type\":\"release\"},"
             "\"config\":{\"sampling_rate\":0.25,\"k\":10},"
             "\"cells\":[") +
         cell + "]}";
}

TEST(BenchDiffTest, MrcPredictionErrorBeyondThresholdFails) {
  // Acceptance criterion: the gate is current-only — an inaccurate MRC
  // fails regardless of what the baseline predicted.
  const std::string base = AnalyticsArtifact(0.01, true);
  DiffResult r;
  ASSERT_TRUE(
      DiffBench(base, AnalyticsArtifact(0.04, true), DiffOptions{}, &r).ok());
  EXPECT_TRUE(r.ok());  // within the 0.05 default
  ASSERT_TRUE(
      DiffBench(base, AnalyticsArtifact(0.08, true), DiffOptions{}, &r).ok());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.regressions[0].find("MRC prediction error"), std::string::npos);
  // A bad baseline does not excuse a bad current artifact, and an accurate
  // current artifact passes even against a bad baseline.
  const std::string bad = AnalyticsArtifact(0.30, true);
  ASSERT_TRUE(DiffBench(bad, bad, DiffOptions{}, &r).ok());
  EXPECT_FALSE(r.ok());
  ASSERT_TRUE(
      DiffBench(bad, AnalyticsArtifact(0.01, true), DiffOptions{}, &r).ok());
  EXPECT_TRUE(r.ok());
}

TEST(BenchDiffTest, MrcErrorThresholdIsOverridable) {
  const std::string base = AnalyticsArtifact(0.01, true);
  const std::string cur = AnalyticsArtifact(0.08, true);
  DiffOptions loose;
  loose.max_mrc_error = 0.10;
  DiffResult r;
  ASSERT_TRUE(DiffBench(base, cur, loose, &r).ok());
  EXPECT_TRUE(r.ok());
}

TEST(BenchDiffTest, UnreconciledMissClassesFailEvenWithAccurateMrc) {
  const std::string base = AnalyticsArtifact(0.01, true);
  const std::string cur = AnalyticsArtifact(0.01, false);
  DiffResult r;
  ASSERT_TRUE(DiffBench(base, cur, DiffOptions{}, &r).ok());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.regressions[0].find("reconcile"), std::string::npos);
}

TEST(BenchDiffTest, CellsWithoutAnalyticsSectionsAreUnaffectedByMrcGates) {
  // Smoke-suite cells carry no analytics object; the new gates must not
  // misfire on them.
  const std::string base = Artifact(0.46, 0.47, 25, 0.95);
  DiffResult r;
  ASSERT_TRUE(DiffBench(base, base, DiffOptions{}, &r).ok());
  EXPECT_TRUE(r.ok());
}

// ---------------------------------------------------------- overload gates

/// Overload-suite artifact: one modeled open-loop cell and one live Serve
/// cell, the two shapes RunOverloadSuite emits.
std::string OverloadArtifact(double goodput_ratio, bool answers_ok,
                             bool reconciled,
                             const std::string& cell_prefix = "") {
  char cells[768];
  std::snprintf(
      cells, sizeof(cells),
      "{\"name\":\"%soffered_2x\",\"overload\":{\"offered_multiplier\":2,"
      "\"arrival_qps\":100,\"capacity_qps\":50,\"submitted\":50,"
      "\"completed\":25,\"shed\":25,\"shed_rate\":0.5,\"goodput_qps\":48,"
      "\"goodput_ratio\":%g,\"p95_sojourn_seconds\":0.4}},"
      "{\"name\":\"%sserve_shed\",\"serve\":{\"admission\":\"shed\","
      "\"threads\":4,\"queue_capacity\":4,\"submitted\":50,\"completed\":40,"
      "\"shed\":10,\"shed_queue_full\":10,\"shed_timeout\":0,"
      "\"shed_expired\":0,\"shed_brownout\":0,\"answers_ok\":%s,"
      "\"reconciled\":%s}}",
      cell_prefix.c_str(), goodput_ratio, cell_prefix.c_str(),
      answers_ok ? "true" : "false", reconciled ? "true" : "false");
  return std::string(
             "{\"schema_version\":1,\"suite\":\"overload\","
             "\"dataset\":{\"name\":\"smoke\",\"n\":20000,\"dim\":32,"
             "\"ndom\":256,\"seed\":5},\"log\":{\"test_size\":50,\"seed\":2},"
             "\"quick\":false,"
             "\"build\":{\"compiler\":\"x\",\"type\":\"release\"},"
             "\"config\":{\"method\":\"HC-O\",\"k\":10,\"threads\":4},"
             "\"cells\":[") +
         cells + "]}";
}

TEST(BenchDiffTest, CleanOverloadArtifactPasses) {
  const std::string a = OverloadArtifact(0.97, true, true);
  DiffResult r;
  ASSERT_TRUE(DiffBench(a, a, DiffOptions{}, &r).ok());
  EXPECT_TRUE(r.ok()) << (r.regressions.empty() ? "" : r.regressions[0]);
}

TEST(BenchDiffTest, GoodputBelowTheFloorFailsRegardlessOfBaseline) {
  // Current-only gate: even a baseline that was itself below the floor
  // cannot excuse a current run below it.
  const std::string base = OverloadArtifact(0.42, true, true);
  const std::string cur = OverloadArtifact(0.42, true, true);
  DiffResult r;
  ASSERT_TRUE(DiffBench(base, cur, DiffOptions{}, &r).ok());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.regressions[0].find("goodput"), std::string::npos)
      << r.regressions[0];
}

TEST(BenchDiffTest, ShedAnswersNotBitExactFails) {
  const std::string base = OverloadArtifact(0.97, true, true);
  const std::string cur = OverloadArtifact(0.97, false, true);
  DiffResult r;
  ASSERT_TRUE(DiffBench(base, cur, DiffOptions{}, &r).ok());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.regressions[0].find("bit-exact"), std::string::npos)
      << r.regressions[0];
}

TEST(BenchDiffTest, UnreconciledServeReportFails) {
  const std::string base = OverloadArtifact(0.97, true, true);
  const std::string cur = OverloadArtifact(0.97, true, false);
  DiffResult r;
  ASSERT_TRUE(DiffBench(base, cur, DiffOptions{}, &r).ok());
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.regressions[0].find("reconcile"), std::string::npos)
      << r.regressions[0];
}

TEST(BenchDiffTest, GoodputFloorIsOverridable) {
  const std::string a = OverloadArtifact(0.85, true, true);
  DiffResult r;
  ASSERT_TRUE(DiffBench(a, a, DiffOptions{}, &r).ok());
  EXPECT_FALSE(r.ok());  // default floor is 0.90
  DiffOptions loose;
  loose.min_goodput_ratio = 0.80;
  ASSERT_TRUE(DiffBench(a, a, loose, &r).ok());
  EXPECT_TRUE(r.ok());
}

TEST(BenchDiffTest, OverloadGatesApplyToCellsAbsentFromTheBaseline) {
  // New cells are normally notes, never failures — but the overload gates
  // are absolute, so a failing brand-new cell must still fail the diff.
  const std::string base = OverloadArtifact(0.97, true, true);
  const std::string cur = OverloadArtifact(0.42, false, true, "new_");
  DiffResult r;
  ASSERT_TRUE(DiffBench(base, cur, DiffOptions{}, &r).ok());
  ASSERT_FALSE(r.ok());
  // Both the goodput floor and the exactness gate fired on the new cells.
  EXPECT_GE(r.regressions.size(), 2u);
}

TEST(BenchDiffTest, MalformedInputIsAnInputErrorNotACrash) {
  const std::string a = Artifact(0.46, 0.47, 25, 0.95);
  DiffResult r;
  EXPECT_FALSE(DiffBench("{not json", a, DiffOptions{}, &r).ok());
  EXPECT_FALSE(DiffBench(a, "[]", DiffOptions{}, &r).ok());
  EXPECT_FALSE(DiffBench("{}", "{}", DiffOptions{}, &r).ok());
}

}  // namespace
}  // namespace eeb::benchdiff
