// Cache-introspection tests (docs/OBSERVABILITY.md "Cache analytics"): the
// SHARDS-sampled reuse-distance tracker against a brute-force Mattson
// reference, the sharp MRC shape of synthetic streams (with and without
// spatial sampling), the exact miss-cause reconciliation across generation
// swaps, the working-set sketches, the shadow caches against brute-force
// LRU/FIFO simulations, and the shadow-config parsing surface.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <deque>
#include <list>
#include <set>
#include <string>
#include <vector>

#include "cache/shadow_cache.h"
#include "obs/cache_analytics.h"
#include "obs/export.h"
#include "obs/metrics.h"

namespace eeb {
namespace {

using obs::CacheAnalytics;

// Brute-force Mattson reference: exact LRU stack distances by scanning a
// recency list. Distances are 1-based (an immediate re-access has distance
// 1), matching the tracker's +1 rescale convention.
class MattsonRef {
 public:
  void Access(uint64_t key) {
    auto it = std::find(stack_.begin(), stack_.end(), key);
    if (it == stack_.end()) {
      ++cold_;
    } else {
      distances_.push_back(
          static_cast<uint64_t>(std::distance(stack_.begin(), it)) + 1);
      stack_.erase(it);
    }
    stack_.push_front(key);
  }

  // Exact LRU miss ratio of a cache holding `c` items over the stream.
  double MissRatioAt(uint64_t c) const {
    uint64_t hits = 0;
    for (uint64_t d : distances_) {
      if (d <= c) ++hits;
    }
    const uint64_t total = cold_ + distances_.size();
    return total == 0
               ? 0.0
               : 1.0 - static_cast<double>(hits) / static_cast<double>(total);
  }

  uint64_t cold() const { return cold_; }

 private:
  std::deque<uint64_t> stack_;
  std::vector<uint64_t> distances_;
  uint64_t cold_ = 0;
};

// Small deterministic PRNG (SplitMix64) so streams reproduce exactly.
uint64_t NextRand(uint64_t* state) {
  uint64_t x = (*state += 0x9e3779b97f4a7c15ULL);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

TEST(ReuseDistanceTest, Rate1MatchesBruteForceMattsonWithinBucketError) {
  CacheAnalytics::Options opt;
  opt.sampling_rate = 1.0;  // exact mode: every access is sampled
  opt.max_sampled_keys = 4096;
  CacheAnalytics a(opt);
  MattsonRef ref;

  // Skewed random stream over 200 keys: hot head, long tail.
  uint64_t rng = 42;
  std::set<uint64_t> distinct;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t r = NextRand(&rng);
    const uint64_t key = (r % 100 < 70) ? r % 20 : 20 + r % 180;
    distinct.insert(key);
    ref.Access(key);
    a.OnAccess(key, /*hit=*/false);
  }

  EXPECT_EQ(a.sampled_accesses(), 5000u);
  EXPECT_EQ(a.tracked_keys(), distinct.size());
  EXPECT_EQ(a.overflow_evictions(), 0u);
  // The tracker quantizes distances into log buckets (1/8 octave), so the
  // predicted curve may deviate from the exact one by at most the mass of
  // one straddled bucket; 0.05 absolute is comfortably above that here.
  for (uint64_t c : {2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u, 512u}) {
    EXPECT_NEAR(a.PredictedMissRatioAt(c), ref.MissRatioAt(c), 0.05)
        << "cache size " << c;
  }
}

TEST(ReuseDistanceTest, CyclicScanHasSharpMissCliff) {
  // Cyclic scan over K keys: every reuse has exact stack distance K, so the
  // MRC is a step — certain miss below K, cold-only misses above it.
  constexpr uint64_t kKeys = 32;
  constexpr int kRounds = 10;
  CacheAnalytics::Options opt;
  opt.sampling_rate = 1.0;
  CacheAnalytics a(opt);
  for (int r = 0; r < kRounds; ++r) {
    for (uint64_t k = 0; k < kKeys; ++k) a.OnAccess(k, false);
  }

  const double total = kKeys * kRounds;
  const double cold_ratio = kKeys / total;
  // Well below the cliff every reuse misses; well above it only cold does.
  EXPECT_DOUBLE_EQ(a.PredictedMissRatioAt(8), 1.0);
  EXPECT_DOUBLE_EQ(a.PredictedMissRatioAt(2 * kKeys), cold_ratio);

  // The curve's last point carries the floor, and sizes are increasing.
  const std::vector<CacheAnalytics::MrcPoint> mrc = a.Mrc();
  ASSERT_FALSE(mrc.empty());
  for (size_t i = 1; i < mrc.size(); ++i) {
    EXPECT_GT(mrc[i].size_items, mrc[i - 1].size_items);
    EXPECT_LE(mrc[i].miss_ratio, mrc[i - 1].miss_ratio + 1e-12);
  }
  EXPECT_NEAR(mrc.back().miss_ratio, cold_ratio, 1e-9);
}

TEST(ReuseDistanceTest, SampledSubstreamRescalesToTrueDistances) {
  // With spatial rate 0.5 over a 256-key cycle, a sampled key sees only the
  // ~128 sampled keys between its accesses; the 1/rate rescale must land
  // the estimate near the true distance 256 — between 64 and 512.
  constexpr uint64_t kKeys = 256;
  constexpr int kRounds = 20;
  CacheAnalytics::Options opt;
  opt.sampling_rate = 0.5;
  opt.max_sampled_keys = 1024;
  CacheAnalytics a(opt);
  for (int r = 0; r < kRounds; ++r) {
    for (uint64_t k = 0; k < kKeys; ++k) a.OnAccess(k, false);
  }

  EXPECT_GT(a.sampled_accesses(), 0u);
  EXPECT_LT(a.sampled_accesses(), kKeys * kRounds);
  // Every sampled key contributes 1 cold + (kRounds-1) reuses, so the
  // sampled cold fraction is exactly 1/kRounds regardless of which keys
  // the hash picked.
  EXPECT_NEAR(a.PredictedMissRatioAt(4 * kKeys), 1.0 / kRounds, 1e-9);
  EXPECT_DOUBLE_EQ(a.PredictedMissRatioAt(kKeys / 4), 1.0);
}

TEST(ReuseDistanceTest, OverflowEvictsOldestAndKeepsMemoryBounded) {
  CacheAnalytics::Options opt;
  opt.sampling_rate = 1.0;
  opt.max_sampled_keys = 16;  // the sanitized minimum
  CacheAnalytics a(opt);
  // 100 distinct keys, several passes: far more than 16 tracked at once.
  for (int r = 0; r < 3; ++r) {
    for (uint64_t k = 0; k < 100; ++k) a.OnAccess(k, false);
  }
  EXPECT_LE(a.tracked_keys(), 16u);
  EXPECT_GT(a.overflow_evictions(), 0u);
  // A reuse of a long-evicted key reads as cold for the sampled stream —
  // the tracker must stay consistent, not crash or mis-count.
  EXPECT_EQ(a.sampled_accesses(), 300u);
}

TEST(MissClassificationTest, ReconcilesExactlyAcrossGenerationSwaps) {
  CacheAnalytics a;
  // First pass: 10 compulsory misses, then 10 hits on re-access.
  for (uint64_t k = 0; k < 10; ++k) a.OnAccess(k, false);
  for (uint64_t k = 0; k < 10; ++k) a.OnAccess(k, true);

  CacheAnalytics::MissBreakdown mb = a.miss_breakdown();
  EXPECT_EQ(mb.accesses, 20u);
  EXPECT_EQ(mb.hits, 10u);
  EXPECT_EQ(mb.compulsory, 10u);
  EXPECT_EQ(mb.capacity, 0u);
  EXPECT_EQ(mb.invalidation, 0u);

  // A generation swap reclassifies the next miss of each seen-before key
  // as invalidation; a second miss in the same generation is capacity.
  a.NoteGenerationSwap();
  EXPECT_EQ(a.generation_swaps(), 1u);
  for (uint64_t k = 0; k < 10; ++k) a.OnAccess(k, false);  // invalidation
  for (uint64_t k = 0; k < 10; ++k) a.OnAccess(k, false);  // capacity
  a.OnAccess(999, false);                                  // compulsory

  mb = a.miss_breakdown();
  EXPECT_EQ(mb.invalidation, 10u);
  EXPECT_EQ(mb.capacity, 10u);
  EXPECT_EQ(mb.compulsory, 11u);
  // The reconciliation invariant: every miss has exactly one cause.
  EXPECT_EQ(mb.compulsory + mb.capacity + mb.invalidation, mb.misses);
  EXPECT_EQ(mb.accesses, mb.hits + mb.misses);
}

TEST(WorkingSetTest, HllTracksCardinalityAndJaccardDetectsDrift) {
  CacheAnalytics::Options opt;
  opt.ws_window_accesses = 1024;
  CacheAnalytics a(opt);

  // Window 1: keys [0, 1024).
  for (uint64_t k = 0; k < 1024; ++k) a.OnAccess(k, false);
  CacheAnalytics::WorkingSet ws = a.working_set();
  EXPECT_EQ(ws.windows, 1u);
  EXPECT_NEAR(ws.previous_cardinality, 1024.0, 1024.0 * 0.15);
  EXPECT_DOUBLE_EQ(ws.jaccard, 0.0);  // one window: no pair to compare yet

  // Window 2: the same keys — near-total overlap.
  for (uint64_t k = 0; k < 1024; ++k) a.OnAccess(k, false);
  ws = a.working_set();
  EXPECT_EQ(ws.windows, 2u);
  EXPECT_GT(ws.jaccard, 0.8);

  // Window 3: disjoint keys — overlap collapses.
  for (uint64_t k = 100000; k < 101024; ++k) a.OnAccess(k, false);
  ws = a.working_set();
  EXPECT_EQ(ws.windows, 3u);
  EXPECT_LT(ws.jaccard, 0.2);
}

TEST(CacheAnalyticsTest, PublishMetricsMovesDeltasAndSurvivesResetAll) {
  CacheAnalytics::Options opt;
  opt.sampling_rate = 1.0;  // every key sampled: the ref gauge must appear
  CacheAnalytics a(opt);
  obs::MetricsRegistry reg;
  a.BindMetrics(&reg);

  for (uint64_t k = 0; k < 8; ++k) a.OnAccess(k, false);
  a.set_reference_size(4);
  a.PublishMetrics();
  EXPECT_EQ(reg.GetCounter("cache.miss.compulsory")->value(), 8u);
  EXPECT_DOUBLE_EQ(reg.GetGauge("cache.mrc.sampling_rate")->value(), 1.0);
  EXPECT_DOUBLE_EQ(reg.GetGauge("cache.mrc.ref_size_items")->value(), 4.0);

  // Registry epochs must not replay already-published history...
  reg.ResetAll();
  a.PublishMetrics();
  EXPECT_EQ(reg.GetCounter("cache.miss.compulsory")->value(), 0u);
  // ...while new events still land as deltas.
  for (uint64_t k = 0; k < 3; ++k) a.OnAccess(100 + k, false);
  a.PublishMetrics();
  EXPECT_EQ(reg.GetCounter("cache.miss.compulsory")->value(), 3u);
}

TEST(CacheAnalyticsTest, MrcJsonCarriesEverySection) {
  CacheAnalytics::Options opt;
  opt.sampling_rate = 1.0;
  CacheAnalytics a(opt);
  for (int r = 0; r < 3; ++r) {
    for (uint64_t k = 0; k < 16; ++k) a.OnAccess(k, r > 0);
  }
  a.set_reference_size(8);
  const std::string json = a.MrcJson();
  EXPECT_NE(json.find("\"schema_version\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sampling_rate\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"total_accesses\":48"), std::string::npos) << json;
  EXPECT_NE(json.find("\"reference\":{\"size_items\":8"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"sampled_accesses\":48"), std::string::npos) << json;
  EXPECT_NE(json.find("\"miss_classes\":{\"compulsory\":16"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"working_set\":{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"points\":[{\"size_items\":"), std::string::npos)
      << json;
}

// ---- Shadow caches --------------------------------------------------------

// Brute-force reference simulators for both replacement policies.
uint64_t SimulateHits(const std::vector<uint64_t>& stream, size_t capacity,
                      cache::ShadowConfig::Policy policy) {
  std::list<uint64_t> order;  // front = next victim
  uint64_t hits = 0;
  for (uint64_t key : stream) {
    auto it = std::find(order.begin(), order.end(), key);
    if (it != order.end()) {
      ++hits;
      if (policy == cache::ShadowConfig::Policy::kLru) {
        order.erase(it);
        order.push_back(key);  // refresh recency; FIFO leaves order alone
      }
    } else {
      if (order.size() >= capacity) order.pop_front();
      order.push_back(key);
    }
  }
  return hits;
}

TEST(ShadowCacheTest, LruAndFifoMatchBruteForceReference) {
  uint64_t rng = 7;
  std::vector<uint64_t> stream;
  for (int i = 0; i < 4000; ++i) stream.push_back(NextRand(&rng) % 64);

  for (const auto policy : {cache::ShadowConfig::Policy::kLru,
                            cache::ShadowConfig::Policy::kFifo}) {
    for (const size_t cap : {1u, 7u, 16u, 64u}) {
      cache::ShadowConfig cfg;
      cfg.name = "ref";
      cfg.capacity_items = cap;
      cfg.policy = policy;
      cache::ShadowCache shadow(cfg);
      for (uint64_t key : stream) shadow.OnAccess(key);
      EXPECT_EQ(shadow.hits(), SimulateHits(stream, cap, policy))
          << cache::ShadowPolicyName(policy) << " capacity " << cap;
      EXPECT_EQ(shadow.hits() + shadow.misses(), stream.size());
      EXPECT_LE(shadow.size(), cap);
    }
  }
}

TEST(ShadowCacheTest, LruBeatsFifoOnRecencyFriendlyStream) {
  // A hot key re-touched every round among 3 one-shot fillers, capacity 4:
  // LRU refreshes the hot key on each touch and only ever evicts fillers
  // (199 hot hits); FIFO ignores recency, so the hot key ages to the front
  // of the insertion queue and is evicted every other round.
  std::vector<uint64_t> stream;
  for (int r = 0; r < 200; ++r) {
    stream.push_back(0);  // hot key
    for (uint64_t k = 1; k < 4; ++k) stream.push_back(10 * r + k);
  }
  const uint64_t lru =
      SimulateHits(stream, 4, cache::ShadowConfig::Policy::kLru);
  const uint64_t fifo =
      SimulateHits(stream, 4, cache::ShadowConfig::Policy::kFifo);
  EXPECT_EQ(lru, 199u);
  EXPECT_GT(lru, fifo);
  EXPECT_GT(fifo, 0u);
  // The real ShadowCache agrees with the brute-force model on both.
  for (const auto policy : {cache::ShadowConfig::Policy::kLru,
                            cache::ShadowConfig::Policy::kFifo}) {
    cache::ShadowConfig cfg;
    cfg.name = "ref";
    cfg.capacity_items = 4;
    cfg.policy = policy;
    cache::ShadowCache shadow(cfg);
    for (uint64_t key : stream) shadow.OnAccess(key);
    EXPECT_EQ(shadow.hits(), SimulateHits(stream, 4, policy))
        << cache::ShadowPolicyName(policy);
  }
}

TEST(ShadowCacheTest, SetFansOutAndTapsWithoutLocks) {
  cache::ShadowCacheSet set(cache::DefaultShadowConfigs(100));
  ASSERT_EQ(set.size(), 4u);
  for (uint64_t k = 0; k < 500; ++k) set.OnAccess(k % 150);

  const std::vector<obs::ShadowTapEntry> taps = set.TapSamples();
  ASSERT_EQ(taps.size(), 4u);
  EXPECT_EQ(taps[0].name, "lru_half");
  EXPECT_EQ(taps[1].name, "lru_1x");
  EXPECT_EQ(taps[2].name, "lru_2x");
  EXPECT_EQ(taps[3].name, "fifo_1x");
  for (size_t i = 0; i < taps.size(); ++i) {
    EXPECT_EQ(taps[i].hits, set.shadow(i).hits());
    EXPECT_EQ(taps[i].hits + taps[i].misses, 500u);
  }
  // More capacity never hurts an inclusive LRU simulation.
  EXPECT_GE(taps[2].hits, taps[1].hits);
  EXPECT_GE(taps[1].hits, taps[0].hits);
}

TEST(ShadowConfigTest, ParseAcceptsPolicyCapacityAndNamedEntries) {
  std::vector<cache::ShadowConfig> configs;
  ASSERT_TRUE(cache::ParseShadowConfigs("lru:512,fifo:64,big:lru:2048",
                                        &configs)
                  .ok());
  ASSERT_EQ(configs.size(), 3u);
  EXPECT_EQ(configs[0].name, "lru_512");
  EXPECT_EQ(configs[0].capacity_items, 512u);
  EXPECT_EQ(configs[0].policy, cache::ShadowConfig::Policy::kLru);
  EXPECT_EQ(configs[1].name, "fifo_64");
  EXPECT_EQ(configs[1].policy, cache::ShadowConfig::Policy::kFifo);
  EXPECT_EQ(configs[2].name, "big");
  EXPECT_EQ(configs[2].capacity_items, 2048u);
}

TEST(ShadowConfigTest, ParseRejectsMalformedSpecs) {
  std::vector<cache::ShadowConfig> configs;
  EXPECT_FALSE(cache::ParseShadowConfigs("lru", &configs).ok());
  EXPECT_FALSE(cache::ParseShadowConfigs("arc:512", &configs).ok());
  EXPECT_FALSE(cache::ParseShadowConfigs("lru:zero", &configs).ok());
  EXPECT_FALSE(cache::ParseShadowConfigs("lru:0", &configs).ok());
  EXPECT_FALSE(cache::ParseShadowConfigs("a:b:lru:1", &configs).ok());
  // Empty entries (including a fully empty spec) are skipped, not errors.
  ASSERT_TRUE(cache::ParseShadowConfigs("lru:8,,fifo:8,", &configs).ok());
  EXPECT_EQ(configs.size(), 2u);
  ASSERT_TRUE(cache::ParseShadowConfigs("", &configs).ok());
  EXPECT_TRUE(configs.empty());
}

TEST(ShadowConfigTest, SanitizeNamesAndDefaultPanel) {
  EXPECT_EQ(cache::SanitizeShadowName("Big Cache!"), "big_cache_");
  EXPECT_EQ(cache::SanitizeShadowName(""), "shadow");
  EXPECT_EQ(cache::SanitizeShadowName("ok_name3"), "ok_name3");

  const std::vector<cache::ShadowConfig> panel =
      cache::DefaultShadowConfigs(100);
  ASSERT_EQ(panel.size(), 4u);
  EXPECT_EQ(panel[0].capacity_items, 50u);
  EXPECT_EQ(panel[1].capacity_items, 100u);
  EXPECT_EQ(panel[2].capacity_items, 200u);
  EXPECT_EQ(panel[3].capacity_items, 100u);
  EXPECT_EQ(panel[3].policy, cache::ShadowConfig::Policy::kFifo);
  // Every generated name is a valid metric segment by construction.
  for (const cache::ShadowConfig& c : panel) {
    EXPECT_TRUE(obs::IsValidMetricName("live.shadow." + c.name + ".hits"))
        << c.name;
  }
}

}  // namespace
}  // namespace eeb
