// Randomized end-to-end property sweep (TEST_P over seeds): for arbitrary
// data/workload seeds — including continuous (non-integral) coordinates —
// caching preserves results, bounds hold, and phase accounting stays
// consistent.

#include <gtest/gtest.h>

#include <filesystem>

#include "common/random.h"
#include "core/system.h"
#include "workload/generator.h"

namespace eeb {
namespace {

class SeedSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeedSweep, CachingInvariantsHoldEndToEnd) {
  const uint64_t seed = GetParam();
  const bool continuous = (seed % 2) == 1;

  // Data: integral for even seeds; jittered to fractional for odd seeds.
  workload::DatasetSpec dspec;
  dspec.n = 2500;
  dspec.dim = 12;
  dspec.ndom = 256;
  dspec.clusters = 6;
  dspec.seed = seed;
  Dataset data = workload::GenerateClustered(dspec);
  if (continuous) {
    Rng rng(seed * 13);
    for (size_t i = 0; i < data.size(); ++i) {
      for (Scalar& v : data.mutable_point(static_cast<PointId>(i))) {
        v = std::min<Scalar>(255.9f,
                             std::max<Scalar>(0.0f,
                                              v + static_cast<Scalar>(
                                                      rng.NextDouble())));
      }
    }
  }

  workload::QueryLogSpec qspec;
  qspec.pool_size = 25;
  qspec.workload_size = 80;
  qspec.test_size = 8;
  qspec.seed = seed * 7 + 1;
  auto log = workload::GenerateQueryLog(data, qspec);

  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("eeb_seed_" + std::to_string(seed)))
          .string();
  std::filesystem::create_directories(dir);

  core::SystemOptions opt;
  opt.integral_values = !continuous;
  opt.lsh.beta_candidates = 80;
  opt.lsh.seed = seed + 3;
  std::unique_ptr<core::System> sys;
  ASSERT_TRUE(core::System::Create(storage::Env::Default(), dir, data,
                                   log.workload, opt, &sys)
                  .ok());

  // Reference results (no cache).
  ASSERT_TRUE(sys->ConfigureCache(core::CacheMethod::kNone, 0).ok());
  std::vector<std::vector<PointId>> reference;
  for (const auto& q : log.test) {
    core::QueryResult r;
    ASSERT_TRUE(sys->Query(q, 10, &r).ok());
    reference.push_back(r.result_ids);
  }

  for (core::CacheMethod m :
       {core::CacheMethod::kExact, core::CacheMethod::kHcO,
        core::CacheMethod::kHcD}) {
    ASSERT_TRUE(sys->ConfigureCache(m, 30000).ok());
    for (size_t i = 0; i < log.test.size(); ++i) {
      core::QueryResult r;
      ASSERT_TRUE(sys->Query(log.test[i], 10, &r).ok());
      EXPECT_EQ(r.result_ids, reference[i])
          << core::CacheMethodName(m) << " seed=" << seed
          << " continuous=" << continuous << " query " << i;
      EXPECT_EQ(r.pruned + r.true_hits + r.remaining, r.candidates);
      EXPECT_LE(r.fetched, r.remaining);
    }
  }
  std::filesystem::remove_all(dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace eeb
