// Tests for workload analysis (HFF frequencies, QR, Dmax) and the synthetic
// dataset / query-log generators.

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <set>

#include "common/distance.h"
#include "common/random.h"
#include "core/workload.h"
#include "index/idistance/idistance.h"
#include "index/lsh/c2lsh.h"
#include "workload/generator.h"
#include "workload/registry.h"

namespace eeb {
namespace {

// ------------------------------------------------------------- generator --

TEST(GeneratorTest, ValuesInDomain) {
  workload::DatasetSpec spec;
  spec.n = 2000;
  spec.dim = 16;
  spec.ndom = 128;
  spec.sparsity = 0.3;
  Dataset d = workload::GenerateClustered(spec);
  ASSERT_EQ(d.size(), 2000u);
  ASSERT_EQ(d.dim(), 16u);
  for (size_t i = 0; i < d.size(); ++i) {
    for (Scalar v : d.point(static_cast<PointId>(i))) {
      EXPECT_GE(v, 0);
      EXPECT_LE(v, 127);
      EXPECT_EQ(v, std::floor(v)) << "values must be integral";
    }
  }
}

TEST(GeneratorTest, DeterministicForSeed) {
  workload::DatasetSpec spec;
  spec.n = 100;
  spec.dim = 8;
  Dataset a = workload::GenerateClustered(spec);
  Dataset b = workload::GenerateClustered(spec);
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < 8; ++j) {
      EXPECT_EQ(a.point(static_cast<PointId>(i))[j],
                b.point(static_cast<PointId>(i))[j]);
    }
  }
}

TEST(GeneratorTest, SparsityPushesValuesDown) {
  workload::DatasetSpec dense, sparse;
  dense.n = sparse.n = 2000;
  dense.dim = sparse.dim = 16;
  dense.sparsity = 0.0;
  sparse.sparsity = 0.6;
  sparse.seed = dense.seed = 9;
  Dataset dd = workload::GenerateClustered(dense);
  Dataset ds = workload::GenerateClustered(sparse);
  double sum_d = 0, sum_s = 0;
  for (size_t i = 0; i < 2000; ++i) {
    for (size_t j = 0; j < 16; ++j) {
      sum_d += dd.point(static_cast<PointId>(i))[j];
      sum_s += ds.point(static_cast<PointId>(i))[j];
    }
  }
  EXPECT_LT(sum_s, sum_d * 0.7);
}

TEST(GeneratorTest, ClusteredDataHasNearNeighbors) {
  // In clustered data, the mean NN distance is far below the mean pairwise
  // distance (this is what makes LSH effective).
  workload::DatasetSpec spec;
  spec.n = 1000;
  spec.dim = 16;
  spec.clusters = 8;
  Dataset d = workload::GenerateClustered(spec);
  Rng rng(3);
  double nn_sum = 0, pair_sum = 0;
  for (int t = 0; t < 30; ++t) {
    const PointId a = static_cast<PointId>(rng.Uniform(d.size()));
    double best = 1e18;
    for (size_t i = 0; i < d.size(); ++i) {
      if (i == a) continue;
      best = std::min(best, L2(d.point(a), d.point(static_cast<PointId>(i))));
    }
    nn_sum += best;
    const PointId b = static_cast<PointId>(rng.Uniform(d.size()));
    pair_sum += L2(d.point(a), d.point(b));
  }
  EXPECT_LT(nn_sum, pair_sum * 0.6);
}

// ------------------------------------------------------------- query log --

TEST(QueryLogTest, ShapesMatchSpec) {
  workload::DatasetSpec dspec;
  dspec.n = 500;
  dspec.dim = 8;
  Dataset d = workload::GenerateClustered(dspec);
  workload::QueryLogSpec qspec;
  qspec.pool_size = 50;
  qspec.workload_size = 300;
  qspec.test_size = 20;
  auto log = workload::GenerateQueryLog(d, qspec);
  EXPECT_EQ(log.workload.size(), 300u);
  EXPECT_EQ(log.test.size(), 20u);
  for (const auto& q : log.workload) EXPECT_EQ(q.size(), 8u);
}

TEST(QueryLogTest, RepeatsExhibitTemporalLocality) {
  workload::DatasetSpec dspec;
  dspec.n = 500;
  dspec.dim = 8;
  Dataset d = workload::GenerateClustered(dspec);
  workload::QueryLogSpec qspec;
  qspec.pool_size = 50;
  qspec.workload_size = 1000;
  qspec.zipf_s = 1.0;
  auto log = workload::GenerateQueryLog(d, qspec);

  // Count distinct queries: Zipf skew means far fewer distinct than draws,
  // and the most popular query must repeat a lot.
  std::map<std::vector<Scalar>, int> counts;
  for (const auto& q : log.workload) counts[q]++;
  EXPECT_LE(counts.size(), 50u);
  int max_count = 0;
  for (const auto& [_, c] : counts) max_count = std::max(max_count, c);
  EXPECT_GT(max_count, 50) << "head query should dominate (power law)";
}

TEST(RegistryTest, SpecsScaleInPaperOrder) {
  auto specs = workload::AllSpecs();
  ASSERT_EQ(specs.size(), 3u);
  const size_t nusw = specs[0].n * specs[0].dim;
  const size_t imgnet = specs[1].n * specs[1].dim;
  const size_t sogou = specs[2].n * specs[2].dim;
  EXPECT_LT(nusw, imgnet);
  EXPECT_LT(imgnet, sogou);
  EXPECT_EQ(specs[2].dim, 128u) << "SOGOU surrogate is the high-dim one";
}

TEST(RegistryTest, DefaultCacheIsScaledFractionOfFile) {
  auto spec = workload::NuswSimSpec();
  const size_t cs = workload::DefaultCacheBytes(spec);
  const size_t file = spec.n * spec.dim * sizeof(float);
  EXPECT_NEAR(static_cast<double>(cs) / file, 0.10, 0.01);
}

// ------------------------------------------------------ workload analysis --

TEST(WorkloadAnalysisTest, FrequenciesAndQr) {
  workload::DatasetSpec dspec;
  dspec.n = 3000;
  dspec.dim = 16;
  Dataset d = workload::GenerateClustered(dspec);
  index::C2LshOptions lo;
  lo.num_functions = 16;
  lo.collision_threshold = 8;
  lo.beta_candidates = 100;
  std::unique_ptr<index::C2Lsh> lsh;
  ASSERT_TRUE(index::C2Lsh::Build(d, lo, &lsh).ok());

  workload::QueryLogSpec qspec;
  qspec.pool_size = 20;
  qspec.workload_size = 100;
  auto log = workload::GenerateQueryLog(d, qspec);

  core::WorkloadStats wl;
  ASSERT_TRUE(
      core::AnalyzeWorkload(lsh.get(), d, log.workload, 10, &wl).ok());

  // QR collects exactly k entries per query.
  EXPECT_EQ(wl.qr_points.size(), 100u * 10u);
  // Frequencies sorted descending.
  for (size_t i = 1; i < wl.ids_by_freq.size(); ++i) {
    EXPECT_GE(wl.freq[wl.ids_by_freq[i - 1]], wl.freq[wl.ids_by_freq[i]]);
  }
  // Total frequency equals total candidates reported.
  double total = 0;
  for (double f : wl.freq) total += f;
  EXPECT_NEAR(total, wl.avg_candidates * 100.0, 1e-6);
  EXPECT_GT(wl.dmax, 0.0);
  EXPECT_GE(wl.dmax, wl.avg_knn_dist);
}

TEST(WorkloadAnalysisTest, TreeWorkloadCountsLeaves) {
  workload::DatasetSpec dspec;
  dspec.n = 2000;
  dspec.dim = 16;
  Dataset d = workload::GenerateClustered(dspec);
  const std::string path =
      (std::filesystem::temp_directory_path() / "eeb_wl_tree").string();
  index::IDistanceOptions opt;
  opt.num_partitions = 8;
  std::unique_ptr<index::IDistance> idx;
  ASSERT_TRUE(
      index::IDistance::Build(storage::Env::Default(), path, d, opt, &idx)
          .ok());

  workload::QueryLogSpec qspec;
  qspec.pool_size = 10;
  qspec.workload_size = 50;
  auto log = workload::GenerateQueryLog(d, qspec);

  core::LeafWorkloadStats stats;
  auto search = [&](std::span<const Scalar> q, size_t k,
                    index::TreeSearchResult* out) {
    return idx->Search(q, k, nullptr, out);
  };
  ASSERT_TRUE(core::AnalyzeTreeWorkload(search, idx->num_leaves(),
                                        log.workload, 10, &stats)
                  .ok());
  double total = 0;
  for (double f : stats.leaf_freq) total += f;
  EXPECT_GT(total, 0.0);
  EXPECT_EQ(stats.qr_points.size(), 50u * 10u);
  // Hottest leaf first.
  EXPECT_GE(stats.leaf_freq[stats.leaves_by_freq[0]],
            stats.leaf_freq[stats.leaves_by_freq.back()]);
  storage::Env::Default()->DeleteFile(path).IgnoreError();
}

}  // namespace
}  // namespace eeb
