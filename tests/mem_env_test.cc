// Tests for the in-memory Env and fault injection: storage code paths work
// unchanged over MemEnv, and injected read faults propagate as Status
// through every layer (point file, tree search, engine) without corrupting
// later queries.

#include <gtest/gtest.h>

#include "common/dataset.h"
#include "common/random.h"
#include "core/knn_engine.h"
#include "index/idistance/idistance.h"
#include "index/lsh/c2lsh.h"
#include "storage/mem_env.h"
#include "storage/point_file.h"

namespace eeb::storage {
namespace {

Dataset RandomData(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  Dataset d(dim);
  std::vector<Scalar> p(dim);
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : p) v = static_cast<Scalar>(rng.Uniform(256));
    d.Append(p);
  }
  return d;
}

TEST(MemEnvTest, FileLifecycle) {
  MemEnv env;
  EXPECT_FALSE(env.FileExists("/a"));
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env.NewWritableFile("/a", &w).ok());
  ASSERT_TRUE(w->Append("hello", 5).ok());
  EXPECT_TRUE(env.FileExists("/a"));
  EXPECT_EQ(env.TotalBytes(), 5u);

  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(env.NewRandomAccessFile("/a", &r).ok());
  char buf[5];
  ASSERT_TRUE(r->Read(0, 5, buf).ok());
  EXPECT_EQ(std::string(buf, 5), "hello");
  EXPECT_TRUE(r->Read(3, 5, buf).IsIOError());  // past EOF

  ASSERT_TRUE(env.DeleteFile("/a").ok());
  EXPECT_FALSE(env.FileExists("/a"));
  EXPECT_TRUE(env.DeleteFile("/a").IsIOError());
  // POSIX unlink semantics: the open reader still works.
  ASSERT_TRUE(r->Read(0, 5, buf).ok());
}

TEST(MemEnvTest, PointFileWorksOverMemEnv) {
  MemEnv env;
  Dataset data = RandomData(200, 8, 3);
  ASSERT_TRUE(PointFile::Create(&env, "/points", data).ok());
  std::unique_ptr<PointFile> pf;
  ASSERT_TRUE(PointFile::Open(&env, "/points", &pf).ok());
  std::vector<Scalar> buf(8);
  for (PointId id = 0; id < 200; ++id) {
    ASSERT_TRUE(pf->ReadPoint(id, buf, nullptr, nullptr).ok());
    EXPECT_EQ(buf[3], data.point(id)[3]);
  }
}

TEST(FaultInjectionTest, FailsExactlyWhereScheduled) {
  MemEnv mem;
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(mem.NewWritableFile("/f", &w).ok());
  std::string payload(64, 'x');
  ASSERT_TRUE(w->Append(payload.data(), payload.size()).ok());

  FaultInjectionEnv env(&mem);
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(env.NewRandomAccessFile("/f", &r).ok());

  FaultPlan plan;
  plan.fail_after_reads = 2;
  plan.persistent = false;  // only the 3rd read fails
  env.set_plan(plan);

  char buf[8];
  EXPECT_TRUE(r->Read(0, 8, buf).ok());
  EXPECT_TRUE(r->Read(8, 8, buf).ok());
  EXPECT_TRUE(r->Read(16, 8, buf).IsIOError());
  EXPECT_TRUE(r->Read(24, 8, buf).ok());  // one-shot plan recovered
}

TEST(FaultInjectionTest, PersistentFaultStaysDown) {
  MemEnv mem;
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(mem.NewWritableFile("/f", &w).ok());
  std::string payload(64, 'x');
  ASSERT_TRUE(w->Append(payload.data(), payload.size()).ok());

  FaultInjectionEnv env(&mem);
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(env.NewRandomAccessFile("/f", &r).ok());
  env.set_plan({.fail_after_reads = 0, .persistent = true});
  char buf[8];
  EXPECT_TRUE(r->Read(0, 8, buf).IsIOError());
  EXPECT_TRUE(r->Read(0, 8, buf).IsIOError());
}

TEST(FaultInjectionTest, EnginePropagatesDiskFaults) {
  MemEnv mem;
  Dataset data = RandomData(2000, 16, 7);
  ASSERT_TRUE(PointFile::Create(&mem, "/points", data).ok());

  FaultInjectionEnv env(&mem);
  std::unique_ptr<PointFile> pf;
  ASSERT_TRUE(PointFile::Open(&env, "/points", &pf).ok());

  index::C2LshOptions lo;
  lo.num_functions = 16;
  lo.collision_threshold = 8;
  lo.beta_candidates = 100;
  std::unique_ptr<index::C2Lsh> lsh;
  ASSERT_TRUE(index::C2Lsh::Build(data, lo, &lsh).ok());
  core::KnnEngine engine(lsh.get(), pf.get(), nullptr);

  std::vector<Scalar> q(16, 100);
  // Healthy query first.
  env.set_plan({.fail_after_reads = UINT64_MAX, .persistent = true});
  core::QueryResult r;
  ASSERT_TRUE(engine.Query(q, 10, &r).ok());

  // Break the disk mid-refinement: the engine must surface IOError.
  env.set_plan({.fail_after_reads = 5, .persistent = true});
  EXPECT_TRUE(engine.Query(q, 10, &r).IsIOError());

  // Heal the disk: the engine recovers (no stuck state).
  env.set_plan({.fail_after_reads = UINT64_MAX, .persistent = true});
  core::QueryResult r2;
  ASSERT_TRUE(engine.Query(q, 10, &r2).ok());
}

TEST(FaultInjectionTest, FailedWriterLeavesNoPartialFile) {
  MemEnv mem;
  FaultInjectionEnv env(&mem);
  Dataset data = RandomData(500, 16, 7);

  // Let the header page out, then break the disk: Create must fail AND the
  // partial file must be gone (CleanupIfError), so a later Open cannot read
  // a truncated point file.
  env.set_plan({.fail_after_writes = 1});
  EXPECT_TRUE(PointFile::Create(&env, "/pf", data, 4096).IsIOError());
  EXPECT_FALSE(env.FileExists("/pf"));

  // Heal the disk: the same path writes cleanly afterwards.
  env.set_plan({});
  ASSERT_TRUE(PointFile::Create(&env, "/pf", data, 4096).ok());
  EXPECT_TRUE(env.FileExists("/pf"));
  std::unique_ptr<PointFile> pf;
  ASSERT_TRUE(PointFile::Open(&env, "/pf", &pf).ok());
  EXPECT_EQ(pf->size(), 500u);
}

TEST(FaultInjectionTest, TreeSearchPropagatesDiskFaults) {
  MemEnv mem;
  FaultInjectionEnv env(&mem);
  Dataset data = RandomData(2000, 16, 11);
  std::unique_ptr<index::IDistance> idx;
  index::IDistanceOptions opt;
  opt.num_partitions = 8;
  ASSERT_TRUE(index::IDistance::Build(&env, "/idist", data, opt, &idx).ok());

  std::vector<Scalar> q(16, 100);
  index::TreeSearchResult res;
  env.set_plan({.fail_after_reads = 3, .persistent = true});
  EXPECT_TRUE(idx->Search(q, 10, nullptr, &res).IsIOError());
  env.set_plan({.fail_after_reads = UINT64_MAX, .persistent = true});
  EXPECT_TRUE(idx->Search(q, 10, nullptr, &res).ok());
}

}  // namespace
}  // namespace eeb::storage
