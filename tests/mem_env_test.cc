// Tests for the in-memory Env and fault injection: storage code paths work
// unchanged over MemEnv, and injected read faults propagate as Status
// through every layer (point file, tree search, engine) without corrupting
// later queries.

#include <gtest/gtest.h>

#include "common/dataset.h"
#include "common/random.h"
#include "core/knn_engine.h"
#include "index/idistance/idistance.h"
#include "index/lsh/c2lsh.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "storage/circuit_breaker_env.h"
#include "storage/mem_env.h"
#include "storage/point_file.h"
#include "storage/retry_env.h"

namespace eeb::storage {
namespace {

Dataset RandomData(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  Dataset d(dim);
  std::vector<Scalar> p(dim);
  for (size_t i = 0; i < n; ++i) {
    for (auto& v : p) v = static_cast<Scalar>(rng.Uniform(256));
    d.Append(p);
  }
  return d;
}

TEST(MemEnvTest, FileLifecycle) {
  MemEnv env;
  EXPECT_FALSE(env.FileExists("/a"));
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env.NewWritableFile("/a", &w).ok());
  ASSERT_TRUE(w->Append("hello", 5).ok());
  EXPECT_TRUE(env.FileExists("/a"));
  EXPECT_EQ(env.TotalBytes(), 5u);

  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(env.NewRandomAccessFile("/a", &r).ok());
  char buf[5];
  ASSERT_TRUE(r->Read(0, 5, buf).ok());
  EXPECT_EQ(std::string(buf, 5), "hello");
  EXPECT_TRUE(r->Read(3, 5, buf).IsIOError());  // past EOF

  ASSERT_TRUE(env.DeleteFile("/a").ok());
  EXPECT_FALSE(env.FileExists("/a"));
  EXPECT_TRUE(env.DeleteFile("/a").IsIOError());
  // POSIX unlink semantics: the open reader still works.
  ASSERT_TRUE(r->Read(0, 5, buf).ok());
}

TEST(MemEnvTest, PointFileWorksOverMemEnv) {
  MemEnv env;
  Dataset data = RandomData(200, 8, 3);
  ASSERT_TRUE(PointFile::Create(&env, "/points", data).ok());
  std::unique_ptr<PointFile> pf;
  ASSERT_TRUE(PointFile::Open(&env, "/points", &pf).ok());
  std::vector<Scalar> buf(8);
  for (PointId id = 0; id < 200; ++id) {
    ASSERT_TRUE(pf->ReadPoint(id, buf, nullptr, nullptr).ok());
    EXPECT_EQ(buf[3], data.point(id)[3]);
  }
}

TEST(FaultInjectionTest, FailsExactlyWhereScheduled) {
  MemEnv mem;
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(mem.NewWritableFile("/f", &w).ok());
  std::string payload(64, 'x');
  ASSERT_TRUE(w->Append(payload.data(), payload.size()).ok());

  FaultInjectionEnv env(&mem);
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(env.NewRandomAccessFile("/f", &r).ok());

  FaultPlan plan;
  plan.fail_after_reads = 2;
  plan.persistent = false;  // only the 3rd read fails
  env.set_plan(plan);

  char buf[8];
  EXPECT_TRUE(r->Read(0, 8, buf).ok());
  EXPECT_TRUE(r->Read(8, 8, buf).ok());
  EXPECT_TRUE(r->Read(16, 8, buf).IsIOError());
  EXPECT_TRUE(r->Read(24, 8, buf).ok());  // one-shot plan recovered
}

TEST(FaultInjectionTest, PersistentFaultStaysDown) {
  MemEnv mem;
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(mem.NewWritableFile("/f", &w).ok());
  std::string payload(64, 'x');
  ASSERT_TRUE(w->Append(payload.data(), payload.size()).ok());

  FaultInjectionEnv env(&mem);
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(env.NewRandomAccessFile("/f", &r).ok());
  env.set_plan({.fail_after_reads = 0, .persistent = true});
  char buf[8];
  EXPECT_TRUE(r->Read(0, 8, buf).IsIOError());
  EXPECT_TRUE(r->Read(0, 8, buf).IsIOError());
}

// Shared fixture bits for the engine-under-faults tests.
struct EngineRig {
  MemEnv mem;
  FaultInjectionEnv env{&mem};
  Dataset data;
  std::unique_ptr<PointFile> pf;
  std::unique_ptr<index::C2Lsh> lsh;

  explicit EngineRig(uint64_t seed = 7) : data(RandomData(2000, 16, seed)) {
    EXPECT_TRUE(PointFile::Create(&mem, "/points", data).ok());
    EXPECT_TRUE(PointFile::Open(&env, "/points", &pf).ok());
    index::C2LshOptions lo;
    lo.num_functions = 16;
    lo.collision_threshold = 8;
    lo.beta_candidates = 100;
    EXPECT_TRUE(index::C2Lsh::Build(data, lo, &lsh).ok());
  }
};

TEST(FaultInjectionTest, EngineDegradesOnDiskFaultsByDefault) {
  EngineRig rig;
  core::KnnEngine engine(rig.lsh.get(), rig.pf.get(), nullptr);
  std::vector<Scalar> q(16, 100);

  // Healthy query first.
  core::QueryResult r;
  ASSERT_TRUE(engine.Query(q, 10, &r).ok());
  EXPECT_FALSE(r.degraded);
  const auto healthy_ids = r.result_ids;

  // Break the disk mid-refinement: the query completes degraded instead of
  // failing, and says so.
  rig.env.set_plan({.fail_after_reads = 5, .persistent = true});
  core::QueryResult rd;
  ASSERT_TRUE(engine.Query(q, 10, &rd).ok());
  EXPECT_TRUE(rd.degraded);
  EXPECT_GT(rd.read_failures, 0u);
  EXPECT_GT(rd.substituted, 0u);
  EXPECT_EQ(rd.result_ids.size(), healthy_ids.size());

  // Heal the disk: answers are exact (and not flagged) again.
  rig.env.set_plan({});
  core::QueryResult r2;
  ASSERT_TRUE(engine.Query(q, 10, &r2).ok());
  EXPECT_FALSE(r2.degraded);
  EXPECT_EQ(r2.result_ids, healthy_ids);
}

TEST(FaultInjectionTest, EngineStrictModePropagatesDiskFaults) {
  EngineRig rig;
  core::EngineOptions eo;
  eo.degraded_fallback = false;  // the pre-fault-tolerance contract
  core::KnnEngine engine(rig.lsh.get(), rig.pf.get(), nullptr, eo);
  std::vector<Scalar> q(16, 100);

  core::QueryResult r;
  ASSERT_TRUE(engine.Query(q, 10, &r).ok());

  rig.env.set_plan({.fail_after_reads = 5, .persistent = true});
  EXPECT_TRUE(engine.Query(q, 10, &r).IsIOError());

  // Heal the disk: the engine recovers (no stuck state).
  rig.env.set_plan({});
  core::QueryResult r2;
  ASSERT_TRUE(engine.Query(q, 10, &r2).ok());
}

TEST(FaultInjectionTest, EngineDeadlineCutsRefinementToDegraded) {
  EngineRig rig;
  core::EngineOptions eo;
  // An already-elapsed deadline: every unresolved candidate must be resolved
  // from bounds, with zero refinement disk reads.
  eo.deadline_ms = 1e-9;
  core::KnnEngine engine(rig.lsh.get(), rig.pf.get(), nullptr, eo);
  std::vector<Scalar> q(16, 100);
  core::QueryResult r;
  ASSERT_TRUE(engine.Query(q, 10, &r).ok());
  EXPECT_TRUE(r.deadline_hit);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.fetched, 0u);
  EXPECT_EQ(r.result_ids.size(), 10u);
}

TEST(FaultInjectionTest, FailedWriterLeavesNoPartialFile) {
  MemEnv mem;
  FaultInjectionEnv env(&mem);
  Dataset data = RandomData(500, 16, 7);

  // Let the header page out, then break the disk: Create must fail AND the
  // partial file must be gone (CleanupIfError), so a later Open cannot read
  // a truncated point file.
  env.set_plan({.fail_after_writes = 1});
  EXPECT_TRUE(PointFile::Create(&env, "/pf", data, 4096).IsIOError());
  EXPECT_FALSE(env.FileExists("/pf"));

  // Heal the disk: the same path writes cleanly afterwards.
  env.set_plan({});
  ASSERT_TRUE(PointFile::Create(&env, "/pf", data, 4096).ok());
  EXPECT_TRUE(env.FileExists("/pf"));
  std::unique_ptr<PointFile> pf;
  ASSERT_TRUE(PointFile::Open(&env, "/pf", &pf).ok());
  EXPECT_EQ(pf->size(), 500u);
}

TEST(FaultInjectionTest, OneShotWriteFaultRecovers) {
  // Regression: OnWrite used to ignore plan_.persistent and fail every
  // append past the trigger even for a transient (one-shot) plan.
  MemEnv mem;
  FaultInjectionEnv env(&mem);
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env.NewWritableFile("/w", &w).ok());
  env.set_plan({.fail_after_writes = 1, .persistent = false});
  EXPECT_TRUE(w->Append("a", 1).ok());
  EXPECT_TRUE(w->Append("b", 1).IsIOError());
  EXPECT_TRUE(w->Append("c", 1).ok());
  EXPECT_EQ(env.injected_write_faults(), 1u);
}

TEST(FaultInjectionTest, ProbabilisticReadFaultsAreCountedAndSeeded) {
  MemEnv mem;
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(mem.NewWritableFile("/f", &w).ok());
  std::string payload(4096, 'x');
  ASSERT_TRUE(w->Append(payload.data(), payload.size()).ok());

  FaultInjectionEnv env(&mem);
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(env.NewRandomAccessFile("/f", &r).ok());

  FaultPlan plan;
  plan.read_fault_rate = 0.2;
  plan.seed = 11;
  env.set_plan(plan);
  char buf[16];
  uint64_t failures = 0;
  for (int i = 0; i < 1000; ++i) {
    if (r->Read(0, 16, buf).IsIOError()) ++failures;
  }
  EXPECT_EQ(failures, env.injected_read_faults());
  // ~200 expected; generous bounds keep the test robust to Rng changes.
  EXPECT_GT(failures, 100u);
  EXPECT_LT(failures, 350u);

  // Same plan, same seed: the fault sequence replays exactly.
  env.set_plan(plan);
  uint64_t replay = 0;
  for (int i = 0; i < 1000; ++i) {
    if (r->Read(0, 16, buf).IsIOError()) ++replay;
  }
  EXPECT_EQ(replay, failures);
}

TEST(FaultInjectionTest, BitFlipCorruptionCaughtByPageChecksum) {
  MemEnv mem;
  Dataset data = RandomData(256, 16, 17);
  ASSERT_TRUE(PointFile::Create(&mem, "/points", data).ok());

  FaultInjectionEnv env(&mem);
  std::unique_ptr<PointFile> pf;
  ASSERT_TRUE(PointFile::Open(&env, "/points", &pf).ok());

  FaultPlan plan;
  plan.corrupt_rate = 0.3;
  plan.seed = 19;
  env.set_plan(plan);

  std::vector<Scalar> buf(16);
  uint64_t corruptions = 0;
  for (PointId id = 0; id < 256; ++id) {
    const Status st = pf->ReadPoint(id, buf, nullptr, nullptr);
    if (st.IsCorruption()) {
      ++corruptions;
    } else {
      // A read that passed the checksum must carry the true bytes.
      ASSERT_TRUE(st.ok());
      auto expect = data.point(id);
      for (size_t j = 0; j < 16; ++j) EXPECT_EQ(buf[j], expect[j]);
    }
  }
  // Every injected flip was detected — none slipped through as data.
  EXPECT_EQ(corruptions, env.injected_corruptions());
  EXPECT_GT(corruptions, 0u);
}

// ------------------------------------------------------------- RetryingEnv --

TEST(RetryingEnvTest, RetriesTransientReadFaults) {
  MemEnv mem;
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(mem.NewWritableFile("/f", &w).ok());
  std::string payload(64, 'x');
  ASSERT_TRUE(w->Append(payload.data(), payload.size()).ok());

  FaultInjectionEnv faults(&mem);
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.backoff_initial_ms = 0.0;  // no sleeping in tests
  RetryingEnv env(&faults, policy);
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(env.NewRandomAccessFile("/f", &r).ok());

  // One-shot fault on the next read: the retry absorbs it.
  faults.set_plan({.fail_after_reads = 0, .persistent = false});
  char buf[8];
  EXPECT_TRUE(r->Read(0, 8, buf).ok());
  EXPECT_EQ(env.retries(), 1u);
  EXPECT_EQ(env.exhausted(), 0u);

  // Persistent fault: the budget runs out and IOError surfaces.
  faults.set_plan({.fail_after_reads = 0, .persistent = true});
  EXPECT_TRUE(r->Read(0, 8, buf).IsIOError());
  EXPECT_EQ(env.retries(), 1u + 3u);
  EXPECT_EQ(env.exhausted(), 1u);
}

TEST(RetryingEnvTest, ZeroBudgetIsPassThrough) {
  MemEnv mem;
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(mem.NewWritableFile("/f", &w).ok());
  ASSERT_TRUE(w->Append("abcdefgh", 8).ok());

  FaultInjectionEnv faults(&mem);
  RetryPolicy policy;
  policy.max_retries = 0;
  RetryingEnv env(&faults, policy);
  std::unique_ptr<RandomAccessFile> r;
  ASSERT_TRUE(env.NewRandomAccessFile("/f", &r).ok());
  faults.set_plan({.fail_after_reads = 0, .persistent = false});
  char buf[4];
  EXPECT_TRUE(r->Read(0, 4, buf).IsIOError());
  EXPECT_EQ(env.retries(), 0u);
}

TEST(RetryingEnvTest, CorruptionIsNeverRetried) {
  MemEnv mem;
  Dataset data = RandomData(64, 16, 23);
  ASSERT_TRUE(PointFile::Create(&mem, "/points", data).ok());

  FaultInjectionEnv faults(&mem);
  RetryPolicy policy;
  policy.max_retries = 5;
  policy.backoff_initial_ms = 0.0;
  RetryingEnv env(&faults, policy);
  std::unique_ptr<PointFile> pf;
  ASSERT_TRUE(PointFile::Open(&env, "/points", &pf).ok());

  // Corrupt every read: the checksum layer above the retry wrapper reports
  // Corruption, and the wrapper must not burn its budget on it — the raw
  // read itself succeeded, so there is nothing transient to retry.
  FaultPlan plan;
  plan.corrupt_rate = 1.0;
  plan.seed = 29;
  faults.set_plan(plan);
  std::vector<Scalar> buf(16);
  EXPECT_TRUE(pf->ReadPoint(0, buf, nullptr, nullptr).IsCorruption());
  EXPECT_EQ(env.retries(), 0u);
  EXPECT_EQ(env.exhausted(), 0u);
}

TEST(RetryingEnvTest, WritesAreNeverRetried) {
  MemEnv mem;
  FaultInjectionEnv faults(&mem);
  RetryPolicy policy;
  policy.max_retries = 5;
  policy.backoff_initial_ms = 0.0;
  RetryingEnv env(&faults, policy);
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env.NewWritableFile("/w", &w).ok());
  faults.set_plan({.fail_after_writes = 0, .persistent = false});
  // A transient write fault surfaces immediately: retrying an Append could
  // duplicate a partially applied one, so the policy is fail-and-cleanup.
  EXPECT_TRUE(w->Append("x", 1).IsIOError());
  EXPECT_EQ(env.retries(), 0u);
}

TEST(RetryingEnvTest, SystemSurvivesTransientFaultsWithRetries) {
  MemEnv mem;
  FaultInjectionEnv faults(&mem);
  Dataset data = RandomData(2000, 16, 31);
  std::unique_ptr<index::C2Lsh> lsh;
  index::C2LshOptions lo;
  lo.num_functions = 16;
  lo.collision_threshold = 8;
  lo.beta_candidates = 100;
  ASSERT_TRUE(index::C2Lsh::Build(data, lo, &lsh).ok());
  ASSERT_TRUE(PointFile::Create(&faults, "/points", data).ok());

  RetryPolicy policy;
  policy.max_retries = 8;
  policy.backoff_initial_ms = 0.0;
  RetryingEnv renv(&faults, policy);
  std::unique_ptr<PointFile> pf;
  ASSERT_TRUE(PointFile::Open(&renv, "/points", &pf).ok());
  core::KnnEngine engine(lsh.get(), pf.get(), nullptr);

  // 10% transient faults with an 8-deep retry budget: the chance a single
  // read exhausts the budget is 1e-9; queries stay exact, not degraded.
  FaultPlan plan;
  plan.read_fault_rate = 0.1;
  plan.seed = 37;
  faults.set_plan(plan);
  std::vector<Scalar> q(16, 100);
  core::QueryResult r;
  ASSERT_TRUE(engine.Query(q, 10, &r).ok());
  EXPECT_FALSE(r.degraded);
  EXPECT_EQ(r.read_failures, 0u);
  EXPECT_GT(renv.retries(), 0u);
}

TEST(RetryingEnvTest, JitteredBackoffStaysWithinTheRetryBudget) {
  MemEnv mem;
  FaultInjectionEnv faults(&mem);
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.backoff_initial_ms = 0.5;
  policy.backoff_multiplier = 2.0;
  policy.backoff_max_ms = 5.0;
  policy.backoff_jitter = 0.5;
  policy.jitter_seed = 71;
  RetryingEnv env(&faults, policy);

  // Persistent fault: all 3 retries fire, sleeping the jittered ladder
  // 0.5 + 1 + 2 ms. Each sleep is scaled by a factor in [1-j, 1+j], so the
  // total must stay within the jitter envelope of the nominal budget:
  // at least (1-j) * 3.5 ms (sleep_for never undershoots). The upper bound
  // is left to the regression gate below — wall-clock on a loaded box can
  // overshoot any constant.
  faults.set_plan({.fail_after_reads = 0, .persistent = true});
  const double nominal_ms = 0.5 + 1.0 + 2.0;
  Timer t;
  std::unique_ptr<RandomAccessFile> r;
  EXPECT_TRUE(env.NewRandomAccessFile("/missing", &r).IsIOError());
  const double elapsed_ms = t.ElapsedMillis();
  EXPECT_EQ(env.retries(), 3u);
  EXPECT_GE(elapsed_ms, (1.0 - policy.backoff_jitter) * nominal_ms);

  // Jitter off: the ladder is the exact pre-jitter schedule, so the sleep
  // is at least the full nominal budget — the regression this guards is a
  // jitter implementation that silently shrinks (or skips) the backoff.
  RetryPolicy exact = policy;
  exact.backoff_jitter = 0.0;
  RetryingEnv exact_env(&faults, exact);
  Timer t2;
  EXPECT_TRUE(exact_env.NewRandomAccessFile("/missing", &r).IsIOError());
  EXPECT_GE(t2.ElapsedMillis(), nominal_ms);
  EXPECT_EQ(exact_env.retries(), 3u);
}

// -------------------------------------------------------- CircuitBreakerEnv --

CircuitBreakerPolicy ScriptedBreakerPolicy(double* now_ms) {
  CircuitBreakerPolicy p;
  p.enabled = true;
  p.window_ops = 8;
  p.min_failures = 4;
  p.failure_rate_threshold = 0.5;
  p.open_backoff_initial_ms = 10.0;
  p.open_backoff_multiplier = 2.0;
  p.open_backoff_max_ms = 200.0;
  p.backoff_jitter = 0.0;  // deterministic backoff for the scripted clock
  p.now_ms = [now_ms] { return *now_ms; };
  return p;
}

Status FailRead() { return Status::IOError("injected"); }
Status OkRead() { return Status::OK(); }

TEST(CircuitBreakerTest, TripsAtWindowedFailureRateAndShortCircuits) {
  MemEnv mem;
  double now = 0.0;
  CircuitBreakerEnv env(&mem, ScriptedBreakerPolicy(&now));

  // Below min_failures the breaker stays closed whatever the rate.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(env.GuardedRead(FailRead).IsIOError());
  }
  EXPECT_EQ(env.state(), CircuitBreakerEnv::State::kClosed);
  EXPECT_EQ(env.opens(), 0u);

  // Fourth failure: 4 failures over 4 outcomes >= 50% rate and >= the
  // min_failures floor — the breaker opens.
  EXPECT_TRUE(env.GuardedRead(FailRead).IsIOError());
  EXPECT_EQ(env.state(), CircuitBreakerEnv::State::kOpen);
  EXPECT_EQ(env.opens(), 1u);

  // While open (backoff not elapsed) reads short-circuit: the op is never
  // invoked and the caller sees IOError immediately.
  bool ran = false;
  EXPECT_TRUE(env.GuardedRead([&ran] {
                   ran = true;
                   return Status::OK();
                 })
                  .IsIOError());
  EXPECT_FALSE(ran);
  EXPECT_EQ(env.short_circuits(), 1u);
}

TEST(CircuitBreakerTest, SuccessfulProbeClosesAndResetsTheWindow) {
  MemEnv mem;
  double now = 0.0;
  CircuitBreakerEnv env(&mem, ScriptedBreakerPolicy(&now));
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(env.GuardedRead(FailRead).IsIOError());
  }
  ASSERT_EQ(env.state(), CircuitBreakerEnv::State::kOpen);

  // Backoff elapsed: the next read becomes the half-open probe; its
  // success closes the breaker.
  now = 10.0;
  EXPECT_TRUE(env.GuardedRead(OkRead).ok());
  EXPECT_EQ(env.state(), CircuitBreakerEnv::State::kClosed);
  EXPECT_EQ(env.probes(), 1u);

  // Recovery reset the window: three fresh failures (below min_failures)
  // must not re-trip on stale history.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(env.GuardedRead(FailRead).IsIOError());
  }
  EXPECT_EQ(env.state(), CircuitBreakerEnv::State::kClosed);
  EXPECT_EQ(env.opens(), 1u);
}

TEST(CircuitBreakerTest, FailedProbeReopensWithDoubledBackoff) {
  MemEnv mem;
  double now = 0.0;
  CircuitBreakerEnv env(&mem, ScriptedBreakerPolicy(&now));
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(env.GuardedRead(FailRead).IsIOError());
  }
  ASSERT_EQ(env.state(), CircuitBreakerEnv::State::kOpen);

  // Probe at t=10 fails: re-open with the backoff doubled (20ms), so the
  // breaker must short-circuit until t=30.
  now = 10.0;
  EXPECT_TRUE(env.GuardedRead(FailRead).IsIOError());
  EXPECT_EQ(env.state(), CircuitBreakerEnv::State::kOpen);
  EXPECT_EQ(env.opens(), 2u);

  now = 29.9;
  bool ran = false;
  EXPECT_TRUE(env.GuardedRead([&ran] {
                   ran = true;
                   return Status::OK();
                 })
                  .IsIOError());
  EXPECT_FALSE(ran);

  now = 30.0;
  EXPECT_TRUE(env.GuardedRead(OkRead).ok());
  EXPECT_EQ(env.state(), CircuitBreakerEnv::State::kClosed);
  EXPECT_EQ(env.probes(), 2u);
}

TEST(CircuitBreakerTest, CorruptionCountsTowardTheTrip) {
  MemEnv mem;
  double now = 0.0;
  CircuitBreakerEnv env(&mem, ScriptedBreakerPolicy(&now));
  // Checksum failures mean the disk returns garbage just as surely as
  // IOError does; four of them open the breaker.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(
        env.GuardedRead([] { return Status::Corruption("bit flip"); })
            .IsCorruption());
  }
  EXPECT_EQ(env.state(), CircuitBreakerEnv::State::kOpen);
  // The short-circuit itself is always IOError (DegradableFailure absorbs
  // it); Corruption would claim a checksum mismatch that never happened.
  EXPECT_TRUE(env.GuardedRead(OkRead).IsIOError());
}

TEST(CircuitBreakerTest, DisabledBreakerIsAPurePassThrough) {
  MemEnv mem;
  CircuitBreakerPolicy p;  // enabled defaults to false
  CircuitBreakerEnv env(&mem, p);
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(env.GuardedRead(FailRead).IsIOError());
  }
  EXPECT_EQ(env.state(), CircuitBreakerEnv::State::kClosed);
  EXPECT_EQ(env.opens(), 0u);
  EXPECT_EQ(env.short_circuits(), 0u);
}

TEST(CircuitBreakerTest, WritesAndExistenceChecksBypassTheBreaker) {
  MemEnv mem;
  double now = 0.0;
  CircuitBreakerEnv env(&mem, ScriptedBreakerPolicy(&now));
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(env.GuardedRead(FailRead).IsIOError());
  }
  ASSERT_EQ(env.state(), CircuitBreakerEnv::State::kOpen);

  // The write path stays live while the read path is short-circuited:
  // writers recover via CleanupIfError, not via the breaker.
  std::unique_ptr<WritableFile> w;
  ASSERT_TRUE(env.NewWritableFile("/w", &w).ok());
  ASSERT_TRUE(w->Append("abc", 3).ok());
  EXPECT_TRUE(env.FileExists("/w"));
  EXPECT_TRUE(env.DeleteFile("/w").ok());
  EXPECT_FALSE(env.FileExists("/w"));
}

TEST(CircuitBreakerTest, OpenBreakerStopsHittingTheFaultyDisk) {
  // Scripted end-to-end leg: reads flow MemEnv -> FaultInjectionEnv ->
  // CircuitBreakerEnv. Once the persistent fault trips the breaker, further
  // reads must short-circuit without reaching the disk at all — the
  // injector's read counter freezes.
  MemEnv mem;
  Dataset data = RandomData(256, 16, 53);
  ASSERT_TRUE(PointFile::Create(&mem, "/points", data).ok());

  FaultInjectionEnv faults(&mem);
  double now = 0.0;
  CircuitBreakerEnv env(&faults, ScriptedBreakerPolicy(&now));
  std::unique_ptr<PointFile> pf;
  ASSERT_TRUE(PointFile::Open(&env, "/points", &pf).ok());

  faults.set_plan({.fail_after_reads = 0, .persistent = true});
  std::vector<Scalar> buf(16);
  for (PointId id = 0; id < 16; ++id) {
    EXPECT_TRUE(pf->ReadPoint(id, buf, nullptr, nullptr).IsIOError());
  }
  ASSERT_EQ(env.state(), CircuitBreakerEnv::State::kOpen);
  const uint64_t disk_reads_at_trip = faults.reads();
  for (PointId id = 0; id < 16; ++id) {
    EXPECT_TRUE(pf->ReadPoint(id, buf, nullptr, nullptr).IsIOError());
  }
  EXPECT_EQ(faults.reads(), disk_reads_at_trip);
  EXPECT_GE(env.short_circuits(), 16u);

  // Disk recovers; after the backoff one probe read closes the breaker and
  // exact reads resume end to end.
  faults.set_plan(FaultPlan{});
  now = 10.0;
  ASSERT_TRUE(pf->ReadPoint(0, buf, nullptr, nullptr).ok());
  EXPECT_EQ(env.state(), CircuitBreakerEnv::State::kClosed);
  auto expect = data.point(0);
  for (size_t j = 0; j < 16; ++j) EXPECT_EQ(buf[j], expect[j]);
}

TEST(CircuitBreakerTest, MetricsFollowTheStateMachine) {
  MemEnv mem;
  double now = 0.0;
  CircuitBreakerEnv env(&mem, ScriptedBreakerPolicy(&now));
  obs::MetricsRegistry registry;
  env.BindMetrics(&registry);
  EXPECT_EQ(registry.GetGauge("io.breaker.state")->value(), 0.0);

  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(env.GuardedRead(FailRead).IsIOError());
  }
  EXPECT_EQ(registry.GetGauge("io.breaker.state")->value(),
            static_cast<double>(
                static_cast<uint8_t>(CircuitBreakerEnv::State::kOpen)));
  EXPECT_EQ(registry.GetCounter("io.breaker.opens")->value(), 1u);
  EXPECT_TRUE(env.GuardedRead(OkRead).IsIOError());  // short-circuited
  EXPECT_EQ(registry.GetCounter("io.breaker.short_circuits")->value(), 1u);

  now = 10.0;
  EXPECT_TRUE(env.GuardedRead(OkRead).ok());
  EXPECT_EQ(registry.GetCounter("io.breaker.probes")->value(), 1u);
  EXPECT_EQ(registry.GetGauge("io.breaker.state")->value(), 0.0);

  env.BindMetrics(nullptr);  // detached: no further updates, no crash
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(env.GuardedRead(FailRead).IsIOError());
  }
  EXPECT_EQ(registry.GetCounter("io.breaker.opens")->value(), 1u);
}

TEST(FaultInjectionTest, TreeSearchPropagatesDiskFaults) {
  MemEnv mem;
  FaultInjectionEnv env(&mem);
  Dataset data = RandomData(2000, 16, 11);
  std::unique_ptr<index::IDistance> idx;
  index::IDistanceOptions opt;
  opt.num_partitions = 8;
  ASSERT_TRUE(index::IDistance::Build(&env, "/idist", data, opt, &idx).ok());

  std::vector<Scalar> q(16, 100);
  index::TreeSearchResult res;
  env.set_plan({.fail_after_reads = 3, .persistent = true});
  EXPECT_TRUE(idx->Search(q, 10, nullptr, &res).IsIOError());
  env.set_plan({.fail_after_reads = UINT64_MAX, .persistent = true});
  EXPECT_TRUE(idx->Search(q, 10, nullptr, &res).ok());
}

}  // namespace
}  // namespace eeb::storage
