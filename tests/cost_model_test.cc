// Tests for the Sec. 4 cost model: HFF hit-ratio arithmetic, the Theorem-1
// bound, equi-width estimates (Thm. 3), the generic histogram estimate, and
// the tau tuners.

#include <gtest/gtest.h>

#include "core/cost_model.h"
#include "hist/builders.h"

namespace eeb::core {
namespace {

CostModelInputs MakeInputs() {
  CostModelInputs in;
  // Zipf-ish frequency curve over 1000 points.
  for (int i = 0; i < 1000; ++i) {
    in.freq_sorted.push_back(1000.0 / (i + 1));
  }
  in.avg_candidates = 200;
  in.dmax = 400.0;
  in.dim = 64;
  in.lvalue = 8;
  in.cache_bytes = 16384;
  in.k = 10;
  return in;
}

TEST(HffHitRatioTest, Basics) {
  std::vector<double> f{4, 3, 2, 1};
  EXPECT_DOUBLE_EQ(HffHitRatio(f, 0), 0.0);
  EXPECT_DOUBLE_EQ(HffHitRatio(f, 1), 0.4);
  EXPECT_DOUBLE_EQ(HffHitRatio(f, 2), 0.7);
  EXPECT_DOUBLE_EQ(HffHitRatio(f, 4), 1.0);
  EXPECT_DOUBLE_EQ(HffHitRatio(f, 100), 1.0);
  EXPECT_DOUBLE_EQ(HffHitRatio({}, 5), 0.0);
}

TEST(HffHitRatioTest, BoundaryCases) {
  // 0 items cached -> nothing hits; every item cached -> everything hits,
  // regardless of curve shape.
  auto in = MakeInputs();
  EXPECT_DOUBLE_EQ(HffHitRatio(in.freq_sorted, 0), 0.0);
  EXPECT_DOUBLE_EQ(HffHitRatio(in.freq_sorted, in.freq_sorted.size()), 1.0);
  EXPECT_DOUBLE_EQ(HffHitRatio(in.freq_sorted, in.freq_sorted.size() + 999),
                   1.0);
  // Degenerate frequency mass: all-zero curve must not divide by zero.
  std::vector<double> zeros(10, 0.0);
  EXPECT_DOUBLE_EQ(HffHitRatio(zeros, 5), 0.0);
  // Uniform curve: ratio equals the cached fraction exactly.
  std::vector<double> uniform(100, 3.0);
  EXPECT_DOUBLE_EQ(HffHitRatio(uniform, 25), 0.25);
}

TEST(HffHitRatioTest, MonotoneInItems) {
  auto in = MakeInputs();
  double prev = 0;
  for (size_t items = 0; items <= 1000; items += 50) {
    const double h = HffHitRatio(in.freq_sorted, items);
    EXPECT_GE(h, prev);
    prev = h;
  }
}

TEST(Thm1BoundTest, BoundsSmallTauAboveExact) {
  auto in = MakeInputs();
  // The bound at tau = Lvalue reduces (roughly) to the exact-cache ratio;
  // smaller tau can only raise the bound.
  const double at_lvalue = HitRatioBoundThm1(in, in.lvalue);
  for (uint32_t tau = 1; tau < in.lvalue; ++tau) {
    EXPECT_GE(HitRatioBoundThm1(in, tau), at_lvalue);
  }
}

TEST(Thm1BoundTest, MonotoneNonIncreasingInTau) {
  // The Lvalue/tau factor shrinks as tau grows, so the bound is
  // non-increasing in tau (until the clamp at 1 flattens it).
  auto in = MakeInputs();
  double prev = 2.0;
  for (uint32_t tau = 1; tau <= in.lvalue; ++tau) {
    const double b = HitRatioBoundThm1(in, tau);
    EXPECT_LE(b, prev + 1e-12) << "tau=" << tau;
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
    prev = b;
  }
}

TEST(EquiWidthEstimateTest, HitRatioDecreasesWithTau) {
  auto in = MakeInputs();
  double prev = 2.0;
  for (uint32_t tau = 1; tau <= 8; ++tau) {
    const auto est = EstimateEquiWidth(in, tau);
    EXPECT_LE(est.hit_ratio, prev + 1e-12)
        << "more bits per item -> fewer items -> lower hit ratio";
    prev = est.hit_ratio;
  }
}

TEST(EquiWidthEstimateTest, PruneRatioIncreasesWithTau) {
  auto in = MakeInputs();
  double prev = -1.0;
  for (uint32_t tau = 1; tau <= 8; ++tau) {
    const auto est = EstimateEquiWidth(in, tau);
    EXPECT_GE(est.prune_ratio, prev - 1e-12);
    prev = est.prune_ratio;
  }
}

TEST(EquiWidthEstimateTest, InteriorOptimumExists) {
  // The trade-off of Sec. 1.1 challenge (2): neither extreme tau minimizes
  // the expected Crefine.
  auto in = MakeInputs();
  const uint32_t best = OptimalTauEquiWidth(in);
  const double at_best = EstimateEquiWidth(in, best).expected_crefine;
  EXPECT_LE(at_best, EstimateEquiWidth(in, 1).expected_crefine);
  EXPECT_LE(at_best, EstimateEquiWidth(in, 8).expected_crefine);
  EXPECT_GE(best, 1u);
  EXPECT_LE(best, 8u);
}

TEST(EquiWidthEstimateTest, CrefineBoundedByCandidates) {
  auto in = MakeInputs();
  for (uint32_t tau = 1; tau <= 8; ++tau) {
    const auto est = EstimateEquiWidth(in, tau);
    EXPECT_GE(est.expected_crefine, 0.0);
    EXPECT_LE(est.expected_crefine, in.avg_candidates);
  }
}

TEST(ExactEstimateTest, PruneRatioIsOne) {
  auto in = MakeInputs();
  const auto est = EstimateExact(in);
  EXPECT_DOUBLE_EQ(est.prune_ratio, 1.0);
  EXPECT_LE(est.hit_ratio, 1.0);
  EXPECT_DOUBLE_EQ(est.expected_crefine,
                   (1.0 - est.hit_ratio) * in.avg_candidates);
}

TEST(GenericEstimateTest, SingletonHistogramFullyPrunes) {
  auto in = MakeInputs();
  hist::FrequencyArray fprime(256);
  for (uint32_t x = 0; x < 256; ++x) fprime.Add(x, 1.0);
  hist::Histogram h;
  ASSERT_TRUE(hist::BuildEquiWidth(256, 256, &h).ok());
  const auto est = EstimateForHistogram(in, h, fprime, fprime);
  EXPECT_NEAR(est.prune_ratio, 1.0, 1e-9)
      << "zero-width buckets have zero error norm";
}

TEST(GenericEstimateTest, KnnOptimalPredictedNoWorseThanEquiWidth) {
  auto in = MakeInputs();
  // Mass concentrated on a narrow region: HC-O should be predicted to prune
  // at least as well as HC-W at the same tau.
  hist::FrequencyArray fprime(256);
  for (uint32_t x = 100; x < 120; ++x) fprime.Add(x, 50.0);
  hist::Histogram ho, hw;
  ASSERT_TRUE(hist::BuildKnnOptimal(fprime, 16, &ho).ok());
  ASSERT_TRUE(hist::BuildEquiWidth(256, 16, &hw).ok());
  const auto eo = EstimateForHistogram(in, ho, fprime, fprime);
  const auto ew = EstimateForHistogram(in, hw, fprime, fprime);
  EXPECT_GE(eo.prune_ratio, ew.prune_ratio - 1e-9);
}

TEST(TunerTest, BuilderTunerInRangeAndDeterministic) {
  auto in = MakeInputs();
  hist::FrequencyArray fprime(256);
  for (uint32_t x = 0; x < 256; ++x) fprime.Add(x, 256.0 - x);
  auto builder = [&](uint32_t tau, hist::Histogram* h) {
    return hist::BuildKnnOptimal(fprime, 1u << tau, h);
  };
  const uint32_t a = OptimalTauForBuilder(in, builder, fprime, fprime);
  const uint32_t b = OptimalTauForBuilder(in, builder, fprime, fprime);
  EXPECT_EQ(a, b);
  EXPECT_GE(a, 1u);
  EXPECT_LE(a, in.lvalue);
}

TEST(ValidateEstimateTest, PerfectPredictionHasZeroError) {
  CostEstimate est;
  est.hit_ratio = 0.8;
  est.prune_ratio = 0.9;
  est.expected_crefine = 56.0;
  const ModelValidation v = ValidateEstimate(est, 0.8, 0.9, 56.0);
  EXPECT_DOUBLE_EQ(v.hit_error, 0.0);
  EXPECT_DOUBLE_EQ(v.prune_error, 0.0);
  EXPECT_DOUBLE_EQ(v.crefine_rel_error, 0.0);
  EXPECT_DOUBLE_EQ(v.predicted_hit, 0.8);
  EXPECT_DOUBLE_EQ(v.observed_crefine, 56.0);
}

TEST(ValidateEstimateTest, ErrorsAreAbsoluteAndSymmetric) {
  CostEstimate est;
  est.hit_ratio = 0.6;
  est.prune_ratio = 0.5;
  est.expected_crefine = 100.0;
  const ModelValidation over = ValidateEstimate(est, 0.7, 0.8, 80.0);
  EXPECT_DOUBLE_EQ(over.hit_error, 0.1);
  EXPECT_DOUBLE_EQ(over.prune_error, 0.3);
  EXPECT_DOUBLE_EQ(over.crefine_rel_error, 20.0 / 80.0);
  const ModelValidation under = ValidateEstimate(est, 0.5, 0.2, 120.0);
  EXPECT_DOUBLE_EQ(under.hit_error, 0.1);
  EXPECT_DOUBLE_EQ(under.prune_error, 0.3);
  EXPECT_DOUBLE_EQ(under.crefine_rel_error, 20.0 / 120.0);
}

TEST(ValidateEstimateTest, TinyObservedCrefineDoesNotExplode) {
  // Guard: |pred - obs| / max(obs, 1) keeps the relative error finite when
  // the observed Crefine approaches zero (perfect caching).
  CostEstimate est;
  est.expected_crefine = 2.0;
  const ModelValidation v = ValidateEstimate(est, 0.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(v.crefine_rel_error, 2.0);
}

TEST(ValidateEstimateTest, DeterministicWorkloadEndToEnd) {
  // The estimator applied to a fully deterministic synthetic workload:
  // predicted Crefine obeys Eqn. 1 exactly, so validation against the very
  // quantities the estimate was built from reports zero error.
  auto in = MakeInputs();
  const auto est = EstimateExact(in);
  const double observed_crefine =
      (1.0 - est.hit_ratio * est.prune_ratio) * in.avg_candidates;
  const ModelValidation v = ValidateEstimate(est, est.hit_ratio,
                                             est.prune_ratio,
                                             observed_crefine);
  EXPECT_DOUBLE_EQ(v.hit_error, 0.0);
  EXPECT_DOUBLE_EQ(v.prune_error, 0.0);
  EXPECT_NEAR(v.crefine_rel_error, 0.0, 1e-12);
}

TEST(TunerTest, LargerCacheAllowsLargerTau) {
  // With an ample budget the tuner should not pick a smaller tau than with
  // a tight budget (more bits become affordable).
  auto tight = MakeInputs();
  tight.cache_bytes = 2048;
  auto ample = MakeInputs();
  ample.cache_bytes = 1 << 22;
  EXPECT_GE(OptimalTauEquiWidth(ample), OptimalTauEquiWidth(tight));
}

}  // namespace
}  // namespace eeb::core
