// Live-telemetry tests (docs/OBSERVABILITY.md): the windowed aggregates
// (slice ring, expiry, percentile quantization, EWMA, cache tap), the
// flight recorder (ring wrap, seqlock integrity under concurrent writers,
// slow-query tail retention, JSON dumps), the per-query explain record, and
// the end-to-end reconciliation invariant — a concurrent run's windowed
// totals must match the cumulative registry counters exactly.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "cache/shadow_cache.h"
#include "common/dataset.h"
#include "core/health.h"
#include "core/system.h"
#include "obs/cache_analytics.h"
#include "obs/metrics.h"
#include "obs/recorder.h"
#include "obs/window.h"
#include "storage/mem_env.h"
#include "workload/generator.h"

namespace eeb {
namespace {

// Expected quantized latency: the window uses the same bucket edge math as
// the cumulative LatencyHistogram.
double Quantize(double seconds) {
  return obs::LatencyHistogram::BucketValue(
      obs::LatencyHistogram::BucketIndex(seconds));
}

obs::QuerySample Sample(double seconds, uint64_t candidates = 0,
                        uint64_t hits = 0) {
  obs::QuerySample s;
  s.response_seconds = seconds;
  s.candidates = candidates;
  s.cache_hits = hits;
  return s;
}

// ---- WindowedMetrics ------------------------------------------------------

TEST(WindowedMetricsTest, AggregatesQpsMeanMaxAndRatiosWithFakeClock) {
  double t = 0.0;
  obs::WindowOptions opt;
  opt.window_seconds = 10.0;
  opt.slices = 10;
  opt.now = [&t] { return t; };
  obs::WindowedMetrics w(opt);

  t = 1.0;
  w.RecordQuery(Sample(0.010, /*candidates=*/100, /*hits=*/60));
  t = 2.0;
  w.RecordQuery(Sample(0.030, /*candidates=*/100, /*hits=*/20));
  t = 4.0;
  const obs::WindowSnapshot snap = w.GetSnapshot();

  EXPECT_EQ(snap.queries, 2u);
  EXPECT_DOUBLE_EQ(snap.window_seconds, 4.0);  // uptime < window: use uptime
  EXPECT_DOUBLE_EQ(snap.qps, 0.5);
  EXPECT_DOUBLE_EQ(snap.mean_seconds, 0.020);
  EXPECT_DOUBLE_EQ(snap.max_seconds, 0.030);
  EXPECT_EQ(snap.candidates, 200u);
  EXPECT_EQ(snap.cache_hits, 80u);
  EXPECT_DOUBLE_EQ(snap.hit_ratio, 0.4);
  EXPECT_EQ(snap.total_queries, 2u);
  EXPECT_EQ(snap.total_candidates, 200u);
  EXPECT_EQ(snap.total_cache_hits, 80u);
}

TEST(WindowedMetricsTest, SlicesExpireOutsideWindowButTotalsPersist) {
  double t = 0.5;
  obs::WindowOptions opt;
  opt.window_seconds = 10.0;
  opt.slices = 10;
  opt.now = [&t] { return t; };
  obs::WindowedMetrics w(opt);

  w.RecordQuery(Sample(0.010, 50, 25));

  // Advance far beyond the window: the old slice's epoch falls outside
  // [cur - (slices-1), cur] and must not contribute.
  t = 25.5;
  w.RecordQuery(Sample(0.020, 10, 5));
  const obs::WindowSnapshot snap = w.GetSnapshot();

  EXPECT_EQ(snap.queries, 1u);
  EXPECT_EQ(snap.candidates, 10u);
  EXPECT_DOUBLE_EQ(snap.max_seconds, 0.020);
  // Window span saturates at window_seconds once uptime exceeds it.
  EXPECT_DOUBLE_EQ(snap.window_seconds, 10.0);
  EXPECT_DOUBLE_EQ(snap.qps, 0.1);
  // Cumulative totals keep the expired query.
  EXPECT_EQ(snap.total_queries, 2u);
  EXPECT_EQ(snap.total_candidates, 60u);
}

TEST(WindowedMetricsTest, PercentilesQuantizeLikeLatencyHistogram) {
  double t = 0.0;
  obs::WindowOptions opt;
  opt.now = [&t] { return t; };
  obs::WindowedMetrics w(opt);

  for (int i = 0; i < 10; ++i) w.RecordQuery(Sample(0.001));
  for (int i = 0; i < 10; ++i) w.RecordQuery(Sample(0.100));
  t = 1.0;
  const obs::WindowSnapshot snap = w.GetSnapshot();

  // Nearest-rank over 20 samples: p50 lands in the fast half, p95/p99 in
  // the slow half; each reported value is the shared bucket edge.
  EXPECT_DOUBLE_EQ(snap.p50_seconds, Quantize(0.001));
  EXPECT_DOUBLE_EQ(snap.p95_seconds, Quantize(0.100));
  EXPECT_DOUBLE_EQ(snap.p99_seconds, Quantize(0.100));
  // Quantization error is bounded by one relative bucket width.
  const double width = obs::LatencyHistogram::RelativeBucketWidth();
  EXPECT_LE(snap.p95_seconds, 0.100 * width);
  EXPECT_GE(snap.p95_seconds, 0.100 / width);
}

TEST(WindowedMetricsTest, EwmaPrimesOnFirstSampleThenBlends) {
  double t = 0.0;
  obs::WindowOptions opt;
  opt.ewma_alpha = 0.5;
  opt.now = [&t] { return t; };
  obs::WindowedMetrics w(opt);

  w.RecordQuery(Sample(0.100));
  EXPECT_DOUBLE_EQ(w.GetSnapshot().ewma_seconds, 0.100);
  w.RecordQuery(Sample(0.200));
  EXPECT_DOUBLE_EQ(w.GetSnapshot().ewma_seconds, 0.150);
  w.RecordQuery(Sample(0.400));
  EXPECT_DOUBLE_EQ(w.GetSnapshot().ewma_seconds, 0.275);
}

TEST(WindowedMetricsTest, CacheTapDeltasAndReinstallRebases) {
  double t = 0.0;
  obs::WindowOptions opt;
  opt.now = [&t] { return t; };
  obs::WindowedMetrics w(opt);

  // Tap reports *cumulative* totals; the window must difference them.
  obs::CacheTapSample cur;
  cur.hits = 100;  // pre-install activity: must never be counted
  cur.misses = 40;
  w.SetCacheTap([&cur] { return cur; });

  cur.hits += 10;
  cur.misses += 10;
  cur.admits += 4;
  cur.evictions += 2;
  obs::WindowSnapshot snap = w.GetSnapshot();
  EXPECT_EQ(snap.cache_admits, 4u);
  EXPECT_EQ(snap.cache_evictions, 2u);
  EXPECT_DOUBLE_EQ(snap.admit_ratio, 0.4);  // 4 admits / 10 misses

  // A generation swap re-installs the tap over a fresh cache whose counters
  // restart at zero; re-basing means no negative (saturated-to-zero) deltas
  // and no replay of the new cache's pre-install history.
  obs::CacheTapSample fresh;
  w.SetCacheTap([&fresh] { return fresh; });
  fresh.admits = 3;
  fresh.misses = 6;
  snap = w.GetSnapshot();
  EXPECT_EQ(snap.cache_admits, 4u + 3u);  // old window slices + new delta
  EXPECT_EQ(snap.cache_evictions, 2u);
}

TEST(WindowedMetricsTest, IdleGapSpanningWholeRingEmptiesLiveWindow) {
  double t = 1.0;
  obs::WindowOptions opt;
  opt.window_seconds = 10.0;
  opt.slices = 10;
  opt.now = [&t] { return t; };
  obs::WindowedMetrics w(opt);

  for (int i = 0; i < 5; ++i) w.RecordQuery(Sample(0.010, 20, 10));

  // An idle gap many times the ring span: every slice epoch falls out of
  // the window. The live section must read fully empty (no stale slice may
  // alias into the new epoch range), the totals must all survive.
  t = 1.0 + 10.0 * 50;
  const obs::WindowSnapshot snap = w.GetSnapshot();
  EXPECT_EQ(snap.queries, 0u);
  EXPECT_EQ(snap.candidates, 0u);
  EXPECT_EQ(snap.cache_hits, 0u);
  EXPECT_DOUBLE_EQ(snap.qps, 0.0);
  EXPECT_DOUBLE_EQ(snap.mean_seconds, 0.0);
  EXPECT_DOUBLE_EQ(snap.max_seconds, 0.0);
  EXPECT_DOUBLE_EQ(snap.hit_ratio, 0.0);
  EXPECT_EQ(snap.total_queries, 5u);
  EXPECT_EQ(snap.total_candidates, 100u);
  EXPECT_EQ(snap.total_cache_hits, 50u);

  // Serving resumes cleanly after the gap: only the new slice contributes.
  w.RecordQuery(Sample(0.020, 10, 5));
  const obs::WindowSnapshot after = w.GetSnapshot();
  EXPECT_EQ(after.queries, 1u);
  EXPECT_EQ(after.total_queries, 6u);
  EXPECT_DOUBLE_EQ(after.max_seconds, 0.020);
}

TEST(WindowedMetricsTest, SnapshotsWithinOneEpochAreIdempotent) {
  double t = 3.0;
  obs::WindowOptions opt;
  opt.window_seconds = 10.0;
  opt.slices = 10;
  opt.now = [&t] { return t; };
  obs::WindowedMetrics w(opt);

  obs::CacheTapSample tap;
  tap.hits = 10;
  tap.misses = 10;
  w.SetCacheTap([&tap] { return tap; });
  w.RecordQuery(Sample(0.010, 10, 5));
  tap.admits = 3;

  // The clock never advances: repeated snapshots land in the same slice
  // epoch and must agree exactly — in particular the tap delta (admits=3)
  // is drained once into the slice, not re-counted per snapshot.
  const obs::WindowSnapshot s1 = w.GetSnapshot();
  const obs::WindowSnapshot s2 = w.GetSnapshot();
  EXPECT_EQ(s1.queries, 1u);
  EXPECT_EQ(s2.queries, 1u);
  EXPECT_EQ(s1.cache_admits, 3u);
  EXPECT_EQ(s2.cache_admits, 3u);
  EXPECT_DOUBLE_EQ(s1.qps, s2.qps);
  EXPECT_DOUBLE_EQ(s1.mean_seconds, s2.mean_seconds);
  EXPECT_DOUBLE_EQ(s1.p95_seconds, s2.p95_seconds);
}

TEST(WindowedMetricsTest, ShadowTapDeltasAndReinstallRebases) {
  double t = 0.0;
  obs::WindowOptions opt;
  opt.now = [&t] { return t; };
  obs::WindowedMetrics w(opt);

  // Cumulative tap readings; pre-install history must never be counted.
  std::vector<obs::ShadowTapEntry> cur(2);
  cur[0].name = "lru_1x";
  cur[0].hits = 100;
  cur[0].misses = 50;
  cur[1].name = "fifo_1x";
  cur[1].hits = 7;
  cur[1].misses = 3;
  w.SetShadowTap([&cur] { return cur; });

  cur[0].hits += 30;
  cur[0].misses += 10;
  cur[1].misses += 5;
  obs::WindowSnapshot snap = w.GetSnapshot();
  ASSERT_EQ(snap.shadows.size(), 2u);
  EXPECT_EQ(snap.shadows[0].name, "lru_1x");
  EXPECT_EQ(snap.shadows[0].hits, 30u);
  EXPECT_EQ(snap.shadows[0].misses, 10u);
  EXPECT_DOUBLE_EQ(snap.shadows[0].hit_ratio, 0.75);
  EXPECT_EQ(snap.shadows[1].name, "fifo_1x");
  EXPECT_EQ(snap.shadows[1].hits, 0u);
  EXPECT_EQ(snap.shadows[1].misses, 5u);
  EXPECT_DOUBLE_EQ(snap.shadows[1].hit_ratio, 0.0);

  // Reinstalling (e.g. a new shadow set) re-bases: fresh zero counters must
  // not produce negative deltas, and in-window history is reset.
  std::vector<obs::ShadowTapEntry> fresh(1);
  fresh[0].name = "lru_2x";
  w.SetShadowTap([&fresh] { return fresh; });
  fresh[0].hits = 4;
  fresh[0].misses = 4;
  snap = w.GetSnapshot();
  ASSERT_EQ(snap.shadows.size(), 1u);
  EXPECT_EQ(snap.shadows[0].name, "lru_2x");
  EXPECT_EQ(snap.shadows[0].hits, 4u);
  EXPECT_EQ(snap.shadows[0].misses, 4u);

  // Detaching clears the shadow section entirely.
  w.SetShadowTap(nullptr);
  EXPECT_TRUE(w.GetSnapshot().shadows.empty());
}

TEST(WindowedMetricsTest, PublishToSetsShadowGauges) {
  obs::WindowedMetrics w;
  std::vector<obs::ShadowTapEntry> cur(1);
  cur[0].name = "lru_2x";
  w.SetShadowTap([&cur] { return cur; });
  cur[0].hits = 9;
  cur[0].misses = 1;

  obs::MetricsRegistry registry;
  w.PublishTo(&registry);
  EXPECT_DOUBLE_EQ(registry.GetGauge("live.shadow.lru_2x.hits")->value(),
                   9.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("live.shadow.lru_2x.misses")->value(),
                   1.0);
  EXPECT_DOUBLE_EQ(
      registry.GetGauge("live.shadow.lru_2x.hit_ratio")->value(), 0.9);

  const std::string line =
      obs::WindowSnapshotJson(w.GetSnapshot(), /*uptime=*/1.0);
  EXPECT_NE(line.find("\"shadow\":[{\"name\":\"lru_2x\""), std::string::npos)
      << line;
}

TEST(WindowedMetricsTest, QueueGaugesLastObservationWins) {
  obs::WindowedMetrics w;
  w.SampleQueue(/*queue_depth=*/7, /*busy_workers=*/3, /*workers=*/8);
  w.SampleQueue(/*queue_depth=*/2, /*busy_workers=*/4, /*workers=*/8);
  const obs::WindowSnapshot snap = w.GetSnapshot();
  EXPECT_EQ(snap.queue_depth, 2u);
  EXPECT_EQ(snap.busy_workers, 4u);
  EXPECT_EQ(snap.workers, 8u);
  EXPECT_DOUBLE_EQ(snap.worker_utilization, 0.5);
}

TEST(WindowedMetricsTest, PublishToSetsLiveGauges) {
  double t = 0.0;
  obs::WindowOptions opt;
  opt.now = [&t] { return t; };
  obs::WindowedMetrics w(opt);
  w.RecordQuery(Sample(0.010, 10, 5));
  w.SampleQueue(1, 2, 4);
  t = 2.0;

  obs::MetricsRegistry registry;
  w.PublishTo(&registry);
  EXPECT_DOUBLE_EQ(registry.GetGauge("live.qps")->value(), 0.5);
  EXPECT_DOUBLE_EQ(registry.GetGauge("live.queries")->value(), 1.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("live.cache.hit_ratio")->value(), 0.5);
  EXPECT_DOUBLE_EQ(registry.GetGauge("live.latency.max_seconds")->value(),
                   0.010);
  EXPECT_DOUBLE_EQ(registry.GetGauge("live.worker_utilization")->value(),
                   0.5);
  // Publishing is idempotent on a quiet window: gauges are Set, not Added.
  w.PublishTo(&registry);
  EXPECT_DOUBLE_EQ(registry.GetGauge("live.queries")->value(), 1.0);
}

TEST(WindowedMetricsTest, SnapshotJsonHasLiveAndCumulativeSections) {
  obs::WindowedMetrics w;
  w.RecordQuery(Sample(0.010, 10, 5));
  const std::string line =
      obs::WindowSnapshotJson(w.GetSnapshot(), /*uptime=*/1.5);
  EXPECT_NE(line.find("\"uptime_seconds\":1.500"), std::string::npos);
  EXPECT_NE(line.find("\"live\":{"), std::string::npos);
  EXPECT_NE(line.find("\"cumulative\":{\"queries\":1"), std::string::npos);
  EXPECT_NE(line.find("\"latency\":{"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one line, no newline
}

TEST(WindowedMetricsTest, ShedSamplesCountInShedRateButNotLatency) {
  double t = 0.0;
  obs::WindowOptions opt;
  opt.now = [&t] { return t; };
  obs::WindowedMetrics w(opt);

  w.RecordQuery(Sample(0.010, /*candidates=*/100, /*hits=*/40));
  w.RecordQuery(Sample(0.030, /*candidates=*/100, /*hits=*/40));
  w.RecordQuery(Sample(0.020, /*candidates=*/100, /*hits=*/40));
  obs::QuerySample shed;
  shed.shed = true;
  w.RecordQuery(shed);
  w.RecordQuery(shed);
  t = 2.0;
  const obs::WindowSnapshot snap = w.GetSnapshot();

  // Shed arrivals never executed: they appear in the shed rate's
  // denominator as arrivals, but must not dilute latency, QPS or the
  // candidate funnel toward zero.
  EXPECT_EQ(snap.queries, 3u);
  EXPECT_EQ(snap.shed, 2u);
  EXPECT_DOUBLE_EQ(snap.shed_rate, 0.4);  // 2 / (3 + 2) arrivals
  EXPECT_DOUBLE_EQ(snap.qps, 1.5);        // completed only
  EXPECT_DOUBLE_EQ(snap.mean_seconds, 0.020);
  EXPECT_DOUBLE_EQ(snap.max_seconds, 0.030);
  EXPECT_EQ(snap.candidates, 300u);
  EXPECT_DOUBLE_EQ(snap.hit_ratio, 0.4);
  EXPECT_EQ(snap.total_queries, 3u);
  EXPECT_EQ(snap.total_shed, 2u);
}

TEST(WindowedMetricsTest, QueueLifetimeStatsLastObservationWins) {
  obs::WindowedMetrics w;
  w.SampleQueueStats(/*capacity=*/16, /*max_depth=*/12, /*rejected=*/5);
  w.SampleQueueStats(/*capacity=*/16, /*max_depth=*/14, /*rejected=*/9);
  const obs::WindowSnapshot snap = w.GetSnapshot();
  EXPECT_EQ(snap.queue_capacity, 16u);
  EXPECT_EQ(snap.queue_max_depth, 14u);
  EXPECT_EQ(snap.queue_rejected, 9u);
}

TEST(WindowedMetricsTest, PublishToSetsShedAndQueueGauges) {
  double t = 0.0;
  obs::WindowOptions opt;
  opt.now = [&t] { return t; };
  obs::WindowedMetrics w(opt);
  w.RecordQuery(Sample(0.010, 10, 5));
  obs::QuerySample shed;
  shed.shed = true;
  w.RecordQuery(shed);
  w.SampleQueueStats(8, 7, 3);
  t = 1.0;

  obs::MetricsRegistry registry;
  w.PublishTo(&registry);
  EXPECT_DOUBLE_EQ(registry.GetGauge("live.shed")->value(), 1.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("live.shed_rate")->value(), 0.5);
  EXPECT_DOUBLE_EQ(registry.GetGauge("live.queue_capacity")->value(), 8.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("live.queue_max_depth")->value(), 7.0);
  EXPECT_DOUBLE_EQ(registry.GetGauge("live.queue_rejected")->value(), 3.0);
}

TEST(WindowedMetricsTest, SnapshotJsonCarriesShedAndQueueFields) {
  obs::WindowedMetrics w;
  w.RecordQuery(Sample(0.010, 10, 5));
  obs::QuerySample shed;
  shed.shed = true;
  w.RecordQuery(shed);
  w.SampleQueueStats(16, 14, 9);
  const std::string line =
      obs::WindowSnapshotJson(w.GetSnapshot(), /*uptime=*/1.0);
  EXPECT_NE(line.find("\"shed\":1,\"shed_rate\":0.5"), std::string::npos)
      << line;
  EXPECT_NE(line.find("\"queue_capacity\":16"), std::string::npos) << line;
  EXPECT_NE(line.find("\"queue_max_depth\":14"), std::string::npos) << line;
  EXPECT_NE(line.find("\"queue_rejected\":9"), std::string::npos) << line;
  // The cumulative section keeps its own shed total.
  EXPECT_NE(line.find("\"cumulative\":{"), std::string::npos);
  EXPECT_NE(line.rfind("\"shed\":1}}"), std::string::npos) << line;
}

// ---- HealthMonitor --------------------------------------------------------

obs::WindowSnapshot Occupancy(uint64_t depth, uint64_t capacity) {
  obs::WindowSnapshot s;
  s.queue_depth = depth;
  s.queue_capacity = capacity;
  return s;
}

TEST(HealthMonitorTest, EscalatesImmediatelyRecoversOneLevelPerCalmStreak) {
  core::HealthPolicy policy;
  policy.recover_evals = 2;
  core::HealthMonitor health(policy);
  EXPECT_EQ(health.state(), core::HealthState::kHealthy);
  EXPECT_FALSE(health.ShouldShed());

  // One saturated snapshot is enough: under overload every delayed
  // evaluation grows the queue.
  EXPECT_EQ(health.Evaluate(Occupancy(100, 100)),
            core::HealthState::kShedding);
  EXPECT_TRUE(health.ShouldShed());
  EXPECT_EQ(health.transitions(), 1u);

  // One calm evaluation is not a recovery...
  EXPECT_EQ(health.Evaluate(Occupancy(0, 100)),
            core::HealthState::kShedding);
  // ...and a relapse resets the calm streak entirely.
  EXPECT_EQ(health.Evaluate(Occupancy(100, 100)),
            core::HealthState::kShedding);
  EXPECT_EQ(health.Evaluate(Occupancy(0, 100)),
            core::HealthState::kShedding);
  // The second consecutive calm eval steps down ONE level, not to healthy.
  EXPECT_EQ(health.Evaluate(Occupancy(0, 100)),
            core::HealthState::kBrownedOut);
  EXPECT_FALSE(health.ShouldShed());
  // Two more calm evals complete the descent.
  EXPECT_EQ(health.Evaluate(Occupancy(0, 100)),
            core::HealthState::kBrownedOut);
  EXPECT_EQ(health.Evaluate(Occupancy(0, 100)),
            core::HealthState::kHealthy);
  EXPECT_EQ(health.transitions(), 3u);
}

TEST(HealthMonitorTest, ClassifiesEachPressureSignalIndependently) {
  core::HealthPolicy policy;
  policy.p95_brownout_seconds = 0.1;
  policy.p95_shed_seconds = 0.5;
  policy.degraded_brownout_rate = 0.3;

  // Latency: between the thresholds is a brownout, above both is shedding.
  {
    core::HealthMonitor health(policy);
    obs::WindowSnapshot slow;
    slow.p95_seconds = 0.2;
    EXPECT_EQ(health.Evaluate(slow), core::HealthState::kBrownedOut);
    slow.p95_seconds = 0.6;
    EXPECT_EQ(health.Evaluate(slow), core::HealthState::kShedding);
  }
  // Occupancy: the default fractions (0.75 / 0.95) stay active.
  {
    core::HealthMonitor health(policy);
    EXPECT_EQ(health.Evaluate(Occupancy(80, 100)),
              core::HealthState::kBrownedOut);
    EXPECT_EQ(health.Evaluate(Occupancy(96, 100)),
              core::HealthState::kShedding);
  }
  // A sick disk (degraded rate) browns out: deadline tightening relieves it.
  {
    core::HealthMonitor health(policy);
    obs::WindowSnapshot sick;
    sick.degraded_rate = 0.5;
    EXPECT_EQ(health.Evaluate(sick), core::HealthState::kBrownedOut);
  }
  // No queue attached (capacity 0): depth alone is not occupancy.
  {
    core::HealthMonitor health(policy);
    EXPECT_EQ(health.Evaluate(Occupancy(50, 0)),
              core::HealthState::kHealthy);
  }
}

TEST(HealthMonitorTest, EffectiveDeadlineTightensWhileBrownedOut) {
  core::HealthPolicy policy;
  policy.brownout_deadline_factor = 0.5;
  core::HealthMonitor health(policy);

  EXPECT_DOUBLE_EQ(health.EffectiveDeadlineMs(10.0), 10.0);
  EXPECT_EQ(health.Evaluate(Occupancy(80, 100)),
            core::HealthState::kBrownedOut);
  EXPECT_DOUBLE_EQ(health.EffectiveDeadlineMs(10.0), 5.0);
  // Disabled / engine-default deadlines pass through untightened.
  EXPECT_DOUBLE_EQ(health.EffectiveDeadlineMs(0.0), 0.0);
  EXPECT_DOUBLE_EQ(health.EffectiveDeadlineMs(-1.0), -1.0);
}

TEST(HealthMonitorTest, BindMetricsPublishesStateAndTransitions) {
  core::HealthMonitor health;
  obs::MetricsRegistry registry;
  health.BindMetrics(&registry);
  EXPECT_DOUBLE_EQ(registry.GetGauge("health.state")->value(), 0.0);

  health.Evaluate(Occupancy(100, 100));
  EXPECT_DOUBLE_EQ(registry.GetGauge("health.state")->value(), 2.0);
  EXPECT_EQ(registry.GetCounter("health.transitions")->value(), 1u);

  // Detached, further evaluations leave the registry untouched.
  health.BindMetrics(nullptr);
  // Default recover_evals is 3: six calm evaluations walk shedding ->
  // browned_out -> healthy.
  for (int i = 0; i < 6; ++i) health.Evaluate(Occupancy(0, 100));
  EXPECT_EQ(health.state(), core::HealthState::kHealthy);
  EXPECT_DOUBLE_EQ(registry.GetGauge("health.state")->value(), 2.0);
  EXPECT_EQ(registry.GetCounter("health.transitions")->value(), 1u);
}

// ---- FlightRecorder -------------------------------------------------------

obs::QueryRecord Rec(uint64_t query_index, double seconds,
                     obs::DegradedCause cause = obs::DegradedCause::kNone,
                     uint32_t read_failures = 0) {
  obs::QueryRecord r;
  r.query_index = query_index;
  r.response_seconds = seconds;
  r.explain.degraded_cause = cause;
  r.explain.read_failures = read_failures;
  return r;
}

TEST(FlightRecorderTest, RingRetainsMostRecentRecordsInSeqOrder) {
  obs::FlightRecorder::Options opt;
  opt.ring_capacity = 8;
  obs::FlightRecorder rec(opt);

  for (uint64_t i = 0; i < 20; ++i) rec.Record(Rec(i, 0.001));
  EXPECT_EQ(rec.recorded(), 20u);

  // Single-threaded: one slot, so exactly the last ring_capacity survive.
  const std::vector<obs::QueryRecord> recent = rec.SnapshotRecent();
  ASSERT_EQ(recent.size(), 8u);
  for (size_t i = 0; i < recent.size(); ++i) {
    EXPECT_EQ(recent[i].seq, 13 + i);  // seqs 13..20, oldest first
    EXPECT_EQ(recent[i].query_index, 12 + i);
  }
  EXPECT_EQ(rec.torn_reads(), 0u);
}

TEST(FlightRecorderTest, TailRetainsSlowDegradedAndFailedQueries) {
  obs::FlightRecorder::Options opt;
  opt.ring_capacity = 64;
  opt.slow_threshold_seconds = 0.050;
  opt.max_retained_slow = 3;
  obs::FlightRecorder rec(opt);

  rec.Record(Rec(0, 0.001));  // fast and clean: not retained
  rec.Record(Rec(1, 0.060));  // slow
  rec.Record(Rec(2, 0.001, obs::DegradedCause::kCorruption));
  rec.Record(Rec(3, 0.001, obs::DegradedCause::kNone, /*read_failures=*/2));
  rec.Record(Rec(4, 0.070));  // slow: evicts the oldest (bound is 3)

  EXPECT_EQ(rec.retained_slow_total(), 4u);
  const std::vector<obs::QueryRecord> slow = rec.SlowQueries();
  ASSERT_EQ(slow.size(), 3u);
  EXPECT_EQ(slow[0].query_index, 2u);
  EXPECT_EQ(slow[1].query_index, 3u);
  EXPECT_EQ(slow[2].query_index, 4u);
  EXPECT_EQ(slow[0].explain.degraded_cause, obs::DegradedCause::kCorruption);

  // Threshold 0 disables the slowness criterion entirely.
  rec.set_slow_threshold(0.0);
  rec.Record(Rec(5, 99.0));
  EXPECT_EQ(rec.retained_slow_total(), 4u);
}

TEST(FlightRecorderTest, DumpJsonCarriesCountsAndExplainRecords) {
  obs::FlightRecorder::Options opt;
  opt.slow_threshold_seconds = 0.010;
  obs::FlightRecorder rec(opt);
  rec.Record(Rec(7, 0.020, obs::DegradedCause::kReadFailure, 1));

  const std::string dump = rec.DumpJson();
  EXPECT_NE(dump.find("\"recorded\":1"), std::string::npos);
  EXPECT_NE(dump.find("\"retained_slow_total\":1"), std::string::npos);
  EXPECT_NE(dump.find("\"slow_threshold_seconds\":0.01"), std::string::npos);
  EXPECT_NE(dump.find("\"query_index\":7"), std::string::npos);
  EXPECT_NE(dump.find("\"degraded_cause\":\"read_failure\""),
            std::string::npos);
  // The record appears in both the ring and the tail.
  EXPECT_NE(dump.find("\"recent\":[{"), std::string::npos);
  EXPECT_NE(dump.find("\"slow\":[{"), std::string::npos);
  EXPECT_EQ(dump.back(), '\n');
}

TEST(FlightRecorderTest, ConcurrentWritersAndReadersStayCoherent) {
  obs::FlightRecorder::Options opt;
  opt.ring_capacity = 32;
  obs::FlightRecorder rec(opt);

  constexpr size_t kWriters = 4;
  constexpr uint64_t kPerWriter = 500;
  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&rec, w] {
      for (uint64_t i = 0; i < kPerWriter; ++i) {
        rec.Record(Rec(w * kPerWriter + i, 0.001));
      }
    });
  }
  // Reader races the writers: every snapshot entry must be a fully
  // published record (the seqlock discards torn copies, never returns one).
  for (int pass = 0; pass < 20; ++pass) {
    for (const obs::QueryRecord& r : rec.SnapshotRecent()) {
      ASSERT_GE(r.seq, 1u);
      ASSERT_LE(r.seq, kWriters * kPerWriter);
      ASSERT_LT(r.query_index, kWriters * kPerWriter);
      ASSERT_DOUBLE_EQ(r.response_seconds, 0.001);
    }
  }
  for (auto& t : writers) t.join();
  EXPECT_EQ(rec.recorded(), kWriters * kPerWriter);
}

TEST(ExplainJsonTest, RendersEveryFunnelFieldAndCauseName) {
  obs::QueryExplain e;
  e.cache_generation = 3;
  e.k = 10;
  e.candidates = 120;
  e.cache_hits = 80;
  e.pruned = 50;
  e.true_results = 10;
  e.remaining = 60;
  e.fetched = 55;
  e.point_reads = 55;
  e.pages_read = 30;
  e.distinct_pages = 22;
  e.substituted = 5;
  e.read_failures = 5;
  e.degraded_cause = obs::DegradedCause::kDeadline;
  e.lbk = 1.5;
  e.ubk = 2.5;

  const std::string json = obs::ExplainJson(e);
  EXPECT_NE(json.find("\"cache_generation\":3"), std::string::npos);
  EXPECT_NE(json.find("\"candidates\":120"), std::string::npos);
  EXPECT_NE(json.find("\"pruned\":50"), std::string::npos);
  EXPECT_NE(json.find("\"true_results\":10"), std::string::npos);
  EXPECT_NE(json.find("\"distinct_pages\":22"), std::string::npos);
  EXPECT_NE(json.find("\"degraded_cause\":\"deadline\""), std::string::npos);
  EXPECT_NE(json.find("\"lbk\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"ubk\":2.5"), std::string::npos);
  EXPECT_STREQ(obs::DegradedCauseName(obs::DegradedCause::kCorruption),
               "corruption");
  EXPECT_STREQ(obs::DegradedCauseName(obs::DegradedCause::kNone), "none");

  // An unbounded ubk (fewer than k bounded candidates) must stay valid
  // JSON: non-finite doubles render as null, never as `inf`/`nan`.
  e.ubk = std::numeric_limits<double>::infinity();
  e.lbk = std::numeric_limits<double>::quiet_NaN();
  const std::string unbounded = obs::ExplainJson(e);
  EXPECT_NE(unbounded.find("\"ubk\":null"), std::string::npos) << unbounded;
  EXPECT_NE(unbounded.find("\"lbk\":null"), std::string::npos) << unbounded;
  EXPECT_EQ(unbounded.find("inf"), std::string::npos) << unbounded;
  EXPECT_EQ(unbounded.find("nan"), std::string::npos) << unbounded;
}

// ---- End to end: System + window + recorder + publisher -------------------

struct TelemetryRig {
  storage::MemEnv env;
  Dataset data;
  workload::QueryLog log;
  std::unique_ptr<core::System> system;

  TelemetryRig() {
    core::SystemOptions opt;
    opt.ndom = 256;
    opt.lsh.num_functions = 16;
    opt.lsh.collision_threshold = 8;
    opt.lsh.beta_candidates = 150;
    workload::DatasetSpec dspec;
    dspec.name = "telem";
    dspec.n = 4000;
    dspec.dim = 16;
    dspec.ndom = 256;
    dspec.clusters = 16;
    dspec.cluster_stddev = 12.0;
    dspec.seed = 7;
    data = workload::GenerateClustered(dspec);
    workload::QueryLogSpec lspec;
    lspec.workload_size = 400;
    lspec.test_size = 80;
    lspec.jitter_stddev = 4.0;
    lspec.seed = 11;
    log = workload::GenerateQueryLog(data, lspec);
    EXPECT_TRUE(
        core::System::Create(&env, "/telem", data, log.workload, opt, &system)
            .ok());
    EXPECT_TRUE(system
                    ->ConfigureCache(core::CacheMethod::kHcO,
                                     /*cache_bytes=*/32 << 10, /*tau=*/4)
                    .ok());
  }
};

TEST(TelemetryEndToEndTest, ExplainMirrorsQueryResultScalars) {
  TelemetryRig rig;
  core::QueryResult r;
  ASSERT_TRUE(rig.system->Query(rig.log.test[0], 10, &r).ok());

  const obs::QueryExplain& e = r.explain;
  EXPECT_EQ(e.k, 10u);
  EXPECT_EQ(e.candidates, r.candidates);
  EXPECT_EQ(e.cache_hits, r.cache_hits);
  EXPECT_EQ(e.pruned, r.pruned);
  EXPECT_EQ(e.true_results, r.true_hits);
  EXPECT_EQ(e.remaining, r.remaining);
  EXPECT_EQ(e.fetched, r.fetched);
  EXPECT_EQ(e.substituted, r.substituted);
  EXPECT_EQ(e.read_failures, r.read_failures);
  EXPECT_EQ(e.degraded_cause, obs::DegradedCause::kNone);
  // ConfigureCache published generation 1; the explain names it.
  EXPECT_EQ(e.cache_generation, 1u);
  EXPECT_GT(e.candidates, 0u);
  // Reconfiguring bumps the generation the next query reports.
  ASSERT_TRUE(rig.system->ReconfigureCache().ok());
  ASSERT_TRUE(rig.system->Query(rig.log.test[0], 10, &r).ok());
  EXPECT_EQ(r.explain.cache_generation, 2u);
}

TEST(TelemetryEndToEndTest, ConcurrentRunReconcilesWindowAgainstCounters) {
  TelemetryRig rig;
  const size_t k = 10;

  obs::WindowOptions wopt;
  wopt.window_seconds = 3600.0;  // everything below fits in the window
  obs::WindowedMetrics window(wopt);
  obs::FlightRecorder::Options ropt;
  ropt.ring_capacity = 256;
  obs::FlightRecorder recorder(ropt);
  obs::MetricsRegistry metrics;
  rig.system->EnableMetrics(&metrics);
  rig.system->SetWindow(&window);
  rig.system->SetRecorder(&recorder);

  core::AggregateResult agg;
  std::vector<core::QueryResult> results;
  ASSERT_TRUE(rig.system
                  ->RunQueriesConcurrent(rig.log.test, k, /*n_threads=*/8,
                                         &agg, &results)
                  .ok());

  // Windowed totals == cumulative registry counters, to the last event.
  const obs::WindowSnapshot snap = window.GetSnapshot();
  EXPECT_EQ(snap.queries, rig.log.test.size());
  EXPECT_EQ(snap.total_queries,
            metrics.GetCounter("engine.queries")->value());
  EXPECT_EQ(snap.total_candidates,
            metrics.GetCounter("engine.candidates")->value());
  EXPECT_EQ(snap.total_cache_hits,
            metrics.GetCounter("engine.cache_hits")->value());
  EXPECT_EQ(snap.candidates, snap.total_candidates);
  EXPECT_EQ(snap.cache_hits, snap.total_cache_hits);
  EXPECT_GT(snap.cache_hits, 0u);
  EXPECT_DOUBLE_EQ(snap.hit_ratio,
                   static_cast<double>(snap.cache_hits) /
                       static_cast<double>(snap.candidates));
  EXPECT_GT(snap.qps, 0.0);
  EXPECT_GT(snap.p95_seconds, 0.0);

  // The windowed mean is the batch's modeled mean response: same formula.
  EXPECT_NEAR(snap.mean_seconds, agg.avg_response_seconds,
              1e-12 + 1e-9 * agg.avg_response_seconds);

  // The recorder saw every query exactly once, with its explain intact.
  EXPECT_EQ(recorder.recorded(), rig.log.test.size());
  const std::vector<obs::QueryRecord> recent = recorder.SnapshotRecent();
  ASSERT_EQ(recent.size(), rig.log.test.size());
  std::set<uint64_t> indices;
  uint64_t recorded_candidates = 0;
  for (const obs::QueryRecord& r : recent) {
    indices.insert(r.query_index);
    recorded_candidates += r.explain.candidates;
    EXPECT_EQ(r.explain.k, k);
  }
  EXPECT_EQ(indices.size(), rig.log.test.size());  // each index once
  EXPECT_EQ(recorded_candidates, snap.total_candidates);
  for (size_t i = 0; i < results.size(); ++i) {
    // recent is seq-ordered, not index-ordered; match through the set.
    EXPECT_TRUE(indices.count(i)) << "query " << i << " never recorded";
  }
}

TEST(TelemetryEndToEndTest, GenerationSwapMidWindowRebasesTapsAndAnalytics) {
  TelemetryRig rig;
  const size_t k = 10;

  obs::WindowOptions wopt;
  wopt.window_seconds = 3600.0;
  obs::WindowedMetrics window(wopt);
  obs::CacheAnalytics::Options aopt;
  aopt.sampling_rate = 1.0;
  aopt.key_space = rig.data.size();
  obs::CacheAnalytics analytics(aopt);
  rig.system->SetWindow(&window);
  rig.system->SetCacheAnalytics(&analytics);

  core::AggregateResult agg;
  ASSERT_TRUE(rig.system->RunQueries(rig.log.test, k, &agg).ok());
  const obs::WindowSnapshot before = window.GetSnapshot();
  const uint64_t accesses_gen1 = analytics.total_accesses();
  EXPECT_GT(accesses_gen1, 0u);

  // Mid-window generation swap to a deliberately tiny cache: the new
  // generation's cumulative counters restart at zero, so the re-based tap
  // must not produce wrapped-around deltas, and the analytics instrument
  // starts a fresh invalidation epoch. The tiny capacity guarantees some
  // previously seen keys miss on their first post-swap touch.
  ASSERT_TRUE(rig.system
                  ->ConfigureCache(core::CacheMethod::kExact,
                                   /*cache_bytes=*/2 << 10)
                  .ok());
  ASSERT_TRUE(rig.system->RunQueries(rig.log.test, k, &agg).ok());

  const obs::WindowSnapshot after = window.GetSnapshot();
  EXPECT_EQ(after.total_queries, 2 * rig.log.test.size());
  // Tap deltas stayed sane across the re-base: the windowed admit count can
  // never exceed the probes that could have admitted (total candidates).
  EXPECT_LE(after.cache_admits, after.total_candidates);
  EXPECT_GE(after.cache_admits, before.cache_admits);

  EXPECT_EQ(analytics.generation_swaps(), 1u);
  const obs::CacheAnalytics::MissBreakdown mb = analytics.miss_breakdown();
  EXPECT_EQ(mb.misses, mb.compulsory + mb.capacity + mb.invalidation);
  // The second pass replays only keys seen in generation 1, so it adds no
  // compulsory misses, and every first re-touch that misses is an
  // invalidation miss — guaranteed to exist by the tiny second cache.
  EXPECT_GT(mb.invalidation, 0u);
  EXPECT_EQ(analytics.total_accesses(), after.total_candidates);
}

TEST(TelemetryEndToEndTest, ConcurrentAnalyticsAndShadowsReconcile) {
  // Runs the full introspection stack under the concurrent engine; the CI
  // TSan job runs this binary, so this is also the data-race check for the
  // sampler, miss-class bitsets, HLL sketches, and shadow cache locks.
  TelemetryRig rig;
  const size_t k = 10;

  obs::WindowOptions wopt;
  wopt.window_seconds = 3600.0;
  obs::WindowedMetrics window(wopt);
  obs::MetricsRegistry metrics;
  obs::CacheAnalytics::Options aopt;
  aopt.sampling_rate = 1.0;  // sample every probe: maximal contention
  aopt.key_space = rig.data.size();
  obs::CacheAnalytics analytics(aopt);
  analytics.BindMetrics(&metrics);
  cache::ShadowCacheSet shadows(cache::DefaultShadowConfigs(
      rig.system->cache()->capacity_items()));
  rig.system->EnableMetrics(&metrics);
  rig.system->SetWindow(&window);
  rig.system->SetCacheAnalytics(&analytics);
  rig.system->SetShadowCaches(&shadows);

  core::AggregateResult agg;
  ASSERT_TRUE(rig.system
                  ->RunQueriesConcurrent(rig.log.test, k, /*n_threads=*/8,
                                         &agg, /*results=*/nullptr)
                  .ok());

  // Every probe reached every instrument exactly once.
  const obs::WindowSnapshot snap = window.GetSnapshot();
  EXPECT_GT(snap.total_candidates, 0u);
  EXPECT_EQ(analytics.total_accesses(), snap.total_candidates);
  for (size_t i = 0; i < shadows.size(); ++i) {
    EXPECT_EQ(shadows.shadow(i).hits() + shadows.shadow(i).misses(),
              snap.total_candidates)
        << shadows.shadow(i).config().name;
  }

  // Miss classes reconcile exactly even under 8-way concurrent counting.
  const obs::CacheAnalytics::MissBreakdown mb = analytics.miss_breakdown();
  EXPECT_EQ(mb.accesses, snap.total_candidates);
  EXPECT_EQ(mb.hits + mb.misses, mb.accesses);
  EXPECT_EQ(mb.misses, mb.compulsory + mb.capacity + mb.invalidation);

  // The shadow tap reached the window with the full per-config panel.
  ASSERT_EQ(snap.shadows.size(), shadows.size());
  uint64_t windowed = 0;
  for (const obs::WindowSnapshot::ShadowStat& s : snap.shadows) {
    windowed += s.hits + s.misses;
  }
  EXPECT_EQ(windowed, shadows.size() * snap.total_candidates);

  // Gauge publication works on the post-run state.
  analytics.PublishMetrics();
  window.PublishTo(&metrics);
  EXPECT_EQ(metrics.GetCounter("cache.miss.compulsory")->value() +
                metrics.GetCounter("cache.miss.capacity")->value() +
                metrics.GetCounter("cache.miss.invalidation")->value(),
            mb.misses);
  EXPECT_GT(metrics.GetGauge("cache.mrc.sampled_accesses")->value(), 0.0);
}

TEST(TelemetryEndToEndTest, PublisherEmitsPeriodicSnapshotsDuringServing) {
  TelemetryRig rig;
  obs::WindowedMetrics window;
  obs::FlightRecorder recorder;
  obs::MetricsRegistry metrics;
  rig.system->EnableMetrics(&metrics);
  rig.system->SetWindow(&window);
  rig.system->SetRecorder(&recorder);

  std::ostringstream sink;
  {
    obs::StatsPublisher::Options popt;
    popt.interval_ms = 10;
    popt.pre_sample = [&rig] { rig.system->SampleWorkerGauges(); };
    obs::StatsPublisher publisher(&window, &metrics, &sink, popt);

    // Serve concurrently until the publisher has ticked at least twice
    // (plus its final line on Stop). Bounded by rounds, not wall clock, so
    // a loaded single-core box cannot starve the assertion into flaking.
    core::AggregateResult agg;
    int rounds = 0;
    while (publisher.lines_published() < 3 && rounds < 500) {
      ASSERT_TRUE(rig.system
                      ->RunQueriesConcurrent(rig.log.test, 10,
                                             /*n_threads=*/8, &agg)
                      .ok());
      ++rounds;
    }
    publisher.Stop();
    EXPECT_GE(publisher.lines_published(), 3u);
  }

  // Every emitted line is a complete snapshot with both sections, and the
  // final line's cumulative totals match the registry counter.
  const std::string out = sink.str();
  size_t lines = 0;
  std::istringstream is(out);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ++lines;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"uptime_seconds\":"), std::string::npos);
    EXPECT_NE(line.find("\"live\":{"), std::string::npos);
    EXPECT_NE(line.find("\"cumulative\":{"), std::string::npos);
  }
  EXPECT_GE(lines, 2u);
  char want[64];
  std::snprintf(want, sizeof(want), "\"cumulative\":{\"queries\":%llu",
                static_cast<unsigned long long>(
                    metrics.GetCounter("engine.queries")->value()));
  EXPECT_NE(out.rfind(want), std::string::npos);
  // live.* gauges were published to the registry by the same publisher.
  EXPECT_GT(metrics.GetGauge("live.qps")->value(), 0.0);
}

}  // namespace
}  // namespace eeb
