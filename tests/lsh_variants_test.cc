// Tests for the additional LSH-family candidate generators (E2LSH, SK-LSH)
// and their integration with the caching engine: the cache layer is
// index-agnostic (paper's generality claim).

#include <gtest/gtest.h>

#include <set>

#include "common/dataset.h"
#include "common/random.h"
#include "cache/code_cache.h"
#include "core/knn_engine.h"
#include "hist/builders.h"
#include "index/linear_scan.h"
#include "index/lsh/e2lsh.h"
#include "index/lsh/multiprobe.h"
#include "index/lsh/sklsh.h"
#include "storage/mem_env.h"

namespace eeb::index {
namespace {

Dataset ClusteredData(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  Dataset d(dim);
  std::vector<Scalar> p(dim);
  const int clusters = 8;
  std::vector<std::vector<double>> centers(clusters,
                                           std::vector<double>(dim));
  for (auto& c : centers) {
    for (auto& v : c) v = 40 + rng.NextDouble() * 176;
  }
  for (size_t i = 0; i < n; ++i) {
    const auto& c = centers[rng.Uniform(clusters)];
    for (size_t j = 0; j < dim; ++j) {
      p[j] = static_cast<Scalar>(static_cast<int>(std::max(
          0.0, std::min(255.0, c[j] + rng.NextGaussian() * 10))));
    }
    d.Append(p);
  }
  return d;
}

std::vector<Scalar> NearQuery(const Dataset& data, Rng& rng) {
  const PointId src = static_cast<PointId>(rng.Uniform(data.size()));
  std::vector<Scalar> q(data.point(src).begin(), data.point(src).end());
  for (auto& v : q) v += static_cast<Scalar>(rng.NextGaussian());
  return q;
}

double CandidateRecall(CandidateIndex* idx, const Dataset& data,
                       size_t queries, size_t k, uint64_t seed) {
  Rng rng(seed);
  double total = 0;
  for (size_t t = 0; t < queries; ++t) {
    auto q = NearQuery(data, rng);
    std::vector<PointId> cand;
    EXPECT_TRUE(idx->Candidates(q, k, &cand, nullptr).ok());
    std::set<PointId> cset(cand.begin(), cand.end());
    int found = 0;
    for (const auto& nb : LinearScanKnn(data, q, k)) {
      found += cset.count(nb.id) ? 1 : 0;
    }
    total += static_cast<double>(found) / k;
  }
  return total / queries;
}

// ------------------------------------------------------------------ E2LSH --

TEST(E2LshTest, RejectsBadOptions) {
  Dataset data = ClusteredData(100, 8, 1);
  std::unique_ptr<E2Lsh> idx;
  E2LshOptions o;
  o.num_tables = 0;
  EXPECT_TRUE(E2Lsh::Build(data, o, &idx).IsInvalidArgument());
  EXPECT_TRUE(E2Lsh::Build(Dataset(8), {}, &idx).IsInvalidArgument());
}

TEST(E2LshTest, CandidatesSortedUniqueDeterministic) {
  Dataset data = ClusteredData(3000, 16, 3);
  std::unique_ptr<E2Lsh> a, b;
  ASSERT_TRUE(E2Lsh::Build(data, {}, &a).ok());
  ASSERT_TRUE(E2Lsh::Build(data, {}, &b).ok());
  std::vector<Scalar> q(16, 128);
  std::vector<PointId> ca, cb;
  ASSERT_TRUE(a->Candidates(q, 10, &ca, nullptr).ok());
  ASSERT_TRUE(b->Candidates(q, 10, &cb, nullptr).ok());
  EXPECT_EQ(ca, cb);
  EXPECT_TRUE(std::is_sorted(ca.begin(), ca.end()));
  EXPECT_EQ(std::set<PointId>(ca.begin(), ca.end()).size(), ca.size());
}

TEST(E2LshTest, DecentRecallOnClusteredData) {
  Dataset data = ClusteredData(5000, 16, 5);
  std::unique_ptr<E2Lsh> idx;
  ASSERT_TRUE(E2Lsh::Build(data, {}, &idx).ok());
  EXPECT_GT(CandidateRecall(idx.get(), data, 20, 10, 7), 0.5);
}

TEST(E2LshTest, ChargesIndexIo) {
  Dataset data = ClusteredData(2000, 16, 9);
  std::unique_ptr<E2Lsh> idx;
  E2LshOptions o;
  o.num_tables = 8;
  ASSERT_TRUE(E2Lsh::Build(data, o, &idx).ok());
  std::vector<Scalar> q(16, 100);
  std::vector<PointId> cand;
  storage::IoStats stats;
  ASSERT_TRUE(idx->Candidates(q, 10, &cand, &stats).ok());
  EXPECT_EQ(stats.page_reads, 8u);  // one bucket probe per table
}

// ----------------------------------------------------------------- SK-LSH --

TEST(SkLshTest, WindowSizeRespected) {
  Dataset data = ClusteredData(3000, 16, 11);
  std::unique_ptr<SkLsh> idx;
  SkLshOptions o;
  o.window = 100;
  ASSERT_TRUE(SkLsh::Build(data, o, &idx).ok());
  std::vector<Scalar> q(16, 128);
  std::vector<PointId> cand;
  ASSERT_TRUE(idx->Candidates(q, 10, &cand, nullptr).ok());
  EXPECT_EQ(cand.size(), 100u);
  // k grows the window when 2k > window.
  ASSERT_TRUE(idx->Candidates(q, 80, &cand, nullptr).ok());
  EXPECT_EQ(cand.size(), 160u);
}

TEST(SkLshTest, DecentRecallOnClusteredData) {
  Dataset data = ClusteredData(5000, 16, 13);
  std::unique_ptr<SkLsh> idx;
  SkLshOptions o;
  o.window = 300;
  ASSERT_TRUE(SkLsh::Build(data, o, &idx).ok());
  EXPECT_GT(CandidateRecall(idx.get(), data, 20, 10, 15), 0.4);
}

TEST(SkLshTest, WindowClampedAtArrayEnds) {
  Dataset data = ClusteredData(50, 8, 17);
  std::unique_ptr<SkLsh> idx;
  SkLshOptions o;
  o.window = 200;  // bigger than the dataset
  ASSERT_TRUE(SkLsh::Build(data, o, &idx).ok());
  std::vector<Scalar> q(8, 0);
  std::vector<PointId> cand;
  ASSERT_TRUE(idx->Candidates(q, 10, &cand, nullptr).ok());
  EXPECT_EQ(cand.size(), 50u);  // whole dataset
}

// --------------------------------------------- engine over both variants --

TEST(LshVariantsTest, CachePreservesResultsOnAnyIndex) {
  Dataset data = ClusteredData(4000, 16, 19);
  storage::MemEnv env;
  ASSERT_TRUE(storage::PointFile::Create(&env, "/p", data).ok());
  std::unique_ptr<storage::PointFile> pf;
  ASSERT_TRUE(storage::PointFile::Open(&env, "/p", &pf).ok());

  hist::FrequencyArray f(256);
  for (uint32_t x = 0; x < 256; ++x) f.Add(x, 1.0);
  hist::Histogram h;
  ASSERT_TRUE(hist::BuildKnnOptimal(f, 64, &h).ok());
  cache::HistCodeCache cache(&h, 16, 1 << 22, false, true);
  std::vector<PointId> ids(data.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<PointId>(i);
  ASSERT_TRUE(cache.Fill(data, ids).ok());

  std::unique_ptr<E2Lsh> e2;
  ASSERT_TRUE(E2Lsh::Build(data, {}, &e2).ok());
  std::unique_ptr<SkLsh> sk;
  ASSERT_TRUE(SkLsh::Build(data, {}, &sk).ok());
  std::unique_ptr<MultiProbeLsh> mp;
  ASSERT_TRUE(MultiProbeLsh::Build(data, {}, &mp).ok());

  Rng rng(23);
  for (CandidateIndex* idx :
       {static_cast<CandidateIndex*>(e2.get()),
        static_cast<CandidateIndex*>(sk.get()),
        static_cast<CandidateIndex*>(mp.get())}) {
    core::KnnEngine plain(idx, pf.get(), nullptr);
    core::KnnEngine cached(idx, pf.get(), &cache);
    for (int t = 0; t < 8; ++t) {
      auto q = NearQuery(data, rng);
      core::QueryResult a, b;
      ASSERT_TRUE(plain.Query(q, 10, &a).ok());
      ASSERT_TRUE(cached.Query(q, 10, &b).ok());
      EXPECT_EQ(a.result_ids, b.result_ids) << idx->name();
      EXPECT_LE(b.fetched, a.fetched);
    }
  }
}

}  // namespace
}  // namespace eeb::index
