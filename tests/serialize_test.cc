// Tests for histogram serialization and fvecs dataset I/O, including
// corruption handling.

#include <gtest/gtest.h>

#include "common/random.h"
#include "hist/builders.h"
#include "hist/serialize.h"
#include "storage/mem_env.h"
#include "workload/fvecs.h"

namespace eeb {
namespace {

TEST(HistSerializeTest, RoundTripBuffer) {
  hist::FrequencyArray f(128);
  Rng rng(3);
  for (uint32_t x = 0; x < 128; ++x) f.Add(x, 1.0 + rng.Uniform(20));
  hist::Histogram h;
  ASSERT_TRUE(hist::BuildKnnOptimal(f, 16, &h).ok());

  std::string blob;
  hist::AppendHistogram(h, &blob);
  std::string_view view(blob);
  hist::Histogram parsed;
  ASSERT_TRUE(hist::ParseHistogram(&view, &parsed).ok());
  EXPECT_TRUE(view.empty());
  ASSERT_EQ(parsed.num_buckets(), h.num_buckets());
  for (uint32_t v = 0; v < 128; ++v) {
    EXPECT_EQ(parsed.Lookup(v), h.Lookup(v));
  }
}

TEST(HistSerializeTest, RoundTripFile) {
  storage::MemEnv env;
  hist::Histogram h;
  ASSERT_TRUE(hist::BuildEquiWidth(256, 32, &h).ok());
  ASSERT_TRUE(hist::SaveHistogram(&env, "/h", h).ok());
  hist::Histogram loaded;
  ASSERT_TRUE(hist::LoadHistogram(&env, "/h", &loaded).ok());
  EXPECT_EQ(loaded.num_buckets(), 32u);
  EXPECT_EQ(loaded.ndom(), 256u);
}

TEST(HistSerializeTest, IndividualBundleRoundTrip) {
  std::vector<hist::FrequencyArray> freqs(5, hist::FrequencyArray(64));
  hist::IndividualHistograms hs;
  ASSERT_TRUE(
      hist::BuildIndividual(freqs, 8, hist::BuilderKind::kEquiWidth, &hs)
          .ok());
  std::string blob;
  hist::AppendIndividual(hs, &blob);
  std::string_view view(blob);
  hist::IndividualHistograms parsed;
  ASSERT_TRUE(hist::ParseIndividual(&view, &parsed).ok());
  ASSERT_EQ(parsed.dim(), 5u);
  EXPECT_EQ(parsed.at(2).num_buckets(), hs.at(2).num_buckets());
}

TEST(HistSerializeTest, RejectsCorruptBlobs) {
  hist::Histogram h;
  ASSERT_TRUE(hist::BuildEquiWidth(64, 8, &h).ok());
  std::string blob;
  hist::AppendHistogram(h, &blob);

  // Truncation.
  std::string_view shorty(blob.data(), blob.size() - 5);
  hist::Histogram out;
  EXPECT_TRUE(hist::ParseHistogram(&shorty, &out).IsCorruption());

  // Bad magic.
  std::string bad = blob;
  bad[0] = 'x';
  std::string_view badview(bad);
  EXPECT_TRUE(hist::ParseHistogram(&badview, &out).IsCorruption());

  // Corrupt interval (break the tiling): Create() must refuse.
  std::string evil = blob;
  evil[12] = static_cast<char>(evil[12] + 1);  // first bucket's lo
  std::string_view evilview(evil);
  EXPECT_FALSE(hist::ParseHistogram(&evilview, &out).ok());
}

TEST(FvecsTest, RoundTrip) {
  storage::MemEnv env;
  Dataset data(7);
  Rng rng(5);
  std::vector<Scalar> p(7);
  for (int i = 0; i < 40; ++i) {
    for (auto& v : p) v = static_cast<Scalar>(rng.NextGaussian());
    data.Append(p);
  }
  ASSERT_TRUE(workload::WriteFvecs(&env, "/d.fvecs", data).ok());

  Dataset loaded;
  ASSERT_TRUE(workload::ReadFvecs(&env, "/d.fvecs", &loaded).ok());
  ASSERT_EQ(loaded.size(), 40u);
  ASSERT_EQ(loaded.dim(), 7u);
  for (PointId id = 0; id < 40; ++id) {
    for (size_t j = 0; j < 7; ++j) {
      EXPECT_EQ(loaded.point(id)[j], data.point(id)[j]);
    }
  }
}

TEST(FvecsTest, MaxVectorsTruncates) {
  storage::MemEnv env;
  Dataset data(3);
  std::vector<Scalar> p{1, 2, 3};
  for (int i = 0; i < 10; ++i) data.Append(p);
  ASSERT_TRUE(workload::WriteFvecs(&env, "/d", data).ok());
  Dataset loaded;
  ASSERT_TRUE(workload::ReadFvecs(&env, "/d", &loaded, 4).ok());
  EXPECT_EQ(loaded.size(), 4u);
}

TEST(FvecsTest, RejectsCorruptFiles) {
  storage::MemEnv env;
  std::unique_ptr<storage::WritableFile> w;
  ASSERT_TRUE(env.NewWritableFile("/bad", &w).ok());
  const int32_t dim = 100;  // promises 100 floats, delivers none
  ASSERT_TRUE(
      w->Append(reinterpret_cast<const char*>(&dim), sizeof(dim)).ok());
  Dataset out;
  EXPECT_TRUE(workload::ReadFvecs(&env, "/bad", &out).IsCorruption());

  // Inconsistent dimensions.
  std::unique_ptr<storage::WritableFile> w2;
  ASSERT_TRUE(env.NewWritableFile("/mixed", &w2).ok());
  auto put_vec = [&](int32_t d) {
    ASSERT_TRUE(
        w2->Append(reinterpret_cast<const char*>(&d), sizeof(d)).ok());
    std::vector<float> v(d, 1.0f);
    ASSERT_TRUE(w2->Append(reinterpret_cast<const char*>(v.data()),
                           d * sizeof(float))
                    .ok());
  };
  put_vec(4);
  put_vec(6);
  EXPECT_TRUE(workload::ReadFvecs(&env, "/mixed", &out).IsCorruption());
}

TEST(FvecsTest, EmptyFileGivesEmptyDataset) {
  storage::MemEnv env;
  std::unique_ptr<storage::WritableFile> w;
  ASSERT_TRUE(env.NewWritableFile("/empty", &w).ok());
  Dataset out;
  ASSERT_TRUE(workload::ReadFvecs(&env, "/empty", &out).ok());
  EXPECT_EQ(out.size(), 0u);
}

}  // namespace
}  // namespace eeb
