// Tests for the eeb_lint rule engine: every rule fires exactly once on a
// known-bad snippet, a representative clean file produces nothing, the
// allow / allow-file escape hatches silence findings, and rule scoping
// (library vs. tool code, allowlisted files) behaves as documented.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint_core.h"

namespace eeb::lint {
namespace {

std::vector<Finding> Lint(const std::string& path, const std::string& src) {
  std::vector<Finding> findings;
  CheckSource(path, src, &findings);
  return findings;
}

/// Exactly one finding, of the expected rule, on the expected line.
void ExpectSingle(const std::vector<Finding>& findings,
                  const std::string& rule, int line) {
  ASSERT_EQ(findings.size(), 1u) << FormatText(findings);
  EXPECT_EQ(findings[0].rule, rule);
  EXPECT_EQ(findings[0].line, line);
}

// ---------------------------------------------------------- dropped-status

TEST(LintTest, DroppedStatusFires) {
  const std::string src =
      "void F(eeb::storage::WritableFile* f) {\n"
      "  f->Close();\n"
      "}\n";
  ExpectSingle(Lint("src/foo/bar.cc", src), "dropped-status", 2);
}

TEST(LintTest, DroppedStatusSpansContinuationLines) {
  const std::string src =
      "void F(eeb::storage::Env* env) {\n"
      "  env->DeleteFile(\n"
      "      very_long_path_expression);\n"
      "}\n";
  ExpectSingle(Lint("src/foo/bar.cc", src), "dropped-status", 2);
}

TEST(LintTest, ConsumedStatusIsClean) {
  const std::string src =
      "Status F(eeb::storage::WritableFile* f) {\n"
      "  EEB_RETURN_IF_ERROR(f->Flush());\n"
      "  Status s = f->Close();\n"
      "  if (!f->Sync().ok()) return s;\n"
      "  f->Close().IgnoreError();\n"
      "  return s;\n"
      "}\n";
  EXPECT_TRUE(Lint("src/foo/bar.cc", src).empty());
}

// ------------------------------------------------------------------ env-io

TEST(LintTest, EnvIoFires) {
  const std::string src =
      "void F() {\n"
      "  std::FILE* f = fopen(\"/tmp/x\", \"r\");\n"
      "}\n";
  ExpectSingle(Lint("src/foo/bar.cc", src), "env-io", 2);
}

TEST(LintTest, EnvIoAllowsTheEnvImplementationAndToolCode) {
  const std::string src = "int fd = ::open(path, O_RDONLY);\n";
  EXPECT_TRUE(Lint("src/storage/env.cc", src).empty());
  EXPECT_TRUE(Lint("tools/some_tool.cc", src).empty());
  EXPECT_TRUE(Lint("tests/some_test.cc", src).empty());
  ExpectSingle(Lint("src/cache/code_cache.cc", src), "env-io", 1);
}

// ------------------------------------------------------------- determinism

TEST(LintTest, DeterminismFires) {
  const std::string src =
      "int F() {\n"
      "  return rand() % 7;\n"
      "}\n";
  ExpectSingle(Lint("src/foo/bar.cc", src), "determinism", 2);
}

TEST(LintTest, DeterminismAllowsRandomHeaderAndSeededRng) {
  EXPECT_TRUE(Lint("src/common/random.h",
                   "#pragma once\nstd::random_device rd;\n")
                  .empty());
  EXPECT_TRUE(
      Lint("src/foo/bar.cc", "Rng rng(options.seed);\n").empty());
  ExpectSingle(Lint("src/foo/bar.cc", "std::mt19937 gen(42);\n"),
               "determinism", 1);
}

TEST(LintTest, DeterminismFlagsSystemClockInLibraryCode) {
  const std::string src =
      "void F() {\n"
      "  auto t0 = std::chrono::system_clock::now();\n"
      "}\n";
  ExpectSingle(Lint("src/core/system.cc", src), "determinism", 2);
  // Tools may take wall-clock timestamps (log lines, artifact metadata).
  EXPECT_TRUE(Lint("tools/eeb_bench.cc", src).empty());
  EXPECT_TRUE(Lint("tests/obs_test.cc", src).empty());
}

TEST(LintTest, DeterminismAllowsSteadyClockAndSuppressedSystemClock) {
  EXPECT_TRUE(
      Lint("src/common/timer.h",
           "#pragma once\n"
           "auto t0 = std::chrono::steady_clock::now();\n")
          .empty());
  EXPECT_TRUE(
      Lint("src/foo/bar.cc",
           "auto wall = std::chrono::system_clock::now();"
           "  // eeb-lint: allow(determinism)\n")
          .empty());
}

// ---------------------------------------------------------------- iostream

TEST(LintTest, IostreamFires) {
  const std::string src =
      "void Report() {\n"
      "  std::cout << \"done\\n\";\n"
      "}\n";
  ExpectSingle(Lint("src/core/system.cc", src), "iostream", 2);
}

TEST(LintTest, IostreamAllowsToolsBenchTests) {
  const std::string src = "std::cout << \"usage\\n\"; printf(\"x\");\n";
  EXPECT_TRUE(Lint("tools/eeb_cli.cc", src).empty());
  EXPECT_TRUE(Lint("bench/bench_micro.cc", src).empty());
  EXPECT_TRUE(Lint("tests/foo_test.cc", src).empty());
}

TEST(LintTest, IostreamIgnoresBufferFormattingAndStrings) {
  // vsnprintf formats into a buffer (no terminal output), and a string
  // literal mentioning printf is not a call.
  const std::string src =
      "void F(std::string* out) {\n"
      "  char buf[64];\n"
      "  std::vsnprintf(buf, sizeof(buf), \"%d\", 1);\n"
      "  *out = \"printf(\";\n"
      "}\n";
  EXPECT_TRUE(Lint("src/obs/export.cc", src).empty());
}

// --------------------------------------------------------------- naked-new

TEST(LintTest, NakedNewFires) {
  const std::string src =
      "void F() {\n"
      "  int* p = new int[8];\n"
      "}\n";
  ExpectSingle(Lint("src/foo/bar.cc", src), "naked-new", 2);
}

TEST(LintTest, NakedDeleteFires) {
  const std::string src =
      "void F(int* p) {\n"
      "  delete p;\n"
      "}\n";
  ExpectSingle(Lint("src/foo/bar.cc", src), "naked-new", 2);
}

TEST(LintTest, FactoryIdiomAndDeletedFunctionsAreClean) {
  const std::string src =
      "struct T {\n"
      "  T(const T&) = delete;\n"
      "};\n"
      "void F() {\n"
      "  std::unique_ptr<T> a(new T());\n"
      "  std::unique_ptr<T> b;\n"
      "  b.reset(new T());\n"
      "  auto c = std::make_unique<T>();\n"
      "  b.reset(\n"
      "      new T());\n"
      "}\n";
  EXPECT_TRUE(Lint("src/foo/bar.cc", src).empty());
}

// ---------------------------------------------------------- header-hygiene

TEST(LintTest, MissingGuardFires) {
  ExpectSingle(Lint("src/foo/bar.h", "struct T {};\n"), "header-hygiene", 1);
}

TEST(LintTest, UsingNamespaceInHeaderFires) {
  const std::string src =
      "#pragma once\n"
      "using namespace std;\n";
  ExpectSingle(Lint("src/foo/bar.h", src), "header-hygiene", 2);
}

TEST(LintTest, GuardedHeaderIsClean) {
  const std::string src =
      "#ifndef EEB_FOO_BAR_H_\n"
      "#define EEB_FOO_BAR_H_\n"
      "struct T {};\n"
      "#endif\n";
  EXPECT_TRUE(Lint("src/foo/bar.h", src).empty());
}

// ------------------------------------------------------------ suppressions

TEST(LintTest, AllowOnSameLineSuppresses) {
  const std::string src =
      "void F() {\n"
      "  std::FILE* f = fopen(\"/x\", \"r\");  // eeb-lint: allow(env-io)\n"
      "}\n";
  EXPECT_TRUE(Lint("src/foo/bar.cc", src).empty());
}

TEST(LintTest, AllowOnPrecedingLineSuppresses) {
  const std::string src =
      "void F() {\n"
      "  // justified because ... eeb-lint: allow(env-io)\n"
      "  std::FILE* f = fopen(\"/x\", \"r\");\n"
      "}\n";
  EXPECT_TRUE(Lint("src/foo/bar.cc", src).empty());
}

TEST(LintTest, AllowIsRuleSpecific) {
  // The allow names a different rule, so the finding survives.
  const std::string src =
      "void F() {\n"
      "  std::FILE* f = fopen(\"/x\", \"r\");  // eeb-lint: allow(iostream)\n"
      "}\n";
  ExpectSingle(Lint("src/foo/bar.cc", src), "env-io", 2);
}

TEST(LintTest, AllowFileSuppressesWholeFile) {
  const std::string src =
      "// eeb-lint: allow-file(determinism)\n"
      "int a = rand();\n"
      "int b = rand();\n"
      "std::random_device rd;\n";
  EXPECT_TRUE(Lint("src/foo/bar.cc", src).empty());
}

// ------------------------------------------------- comments, strings, clean

TEST(LintTest, CommentsAndStringsDoNotFire) {
  const std::string src =
      "// fopen(\"x\") would bypass Env; delete it; std::cout << bad\n"
      "/* rand() in a block comment\n"
      "   spanning lines with new int[3] */\n"
      "const char* doc = \"use fopen, rand(), new, delete, std::cout\";\n";
  EXPECT_TRUE(Lint("src/foo/bar.cc", src).empty());
}

TEST(LintTest, RepresentativeCleanLibraryFile) {
  const std::string src =
      "#ifndef EEB_FOO_BAR_H_\n"
      "#define EEB_FOO_BAR_H_\n"
      "\n"
      "#include \"common/status.h\"\n"
      "\n"
      "namespace eeb {\n"
      "\n"
      "class Widget {\n"
      " public:\n"
      "  Status Save(storage::Env* env) {\n"
      "    std::unique_ptr<storage::WritableFile> f;\n"
      "    EEB_RETURN_IF_ERROR(env->NewWritableFile(path_, &f));\n"
      "    EEB_RETURN_IF_ERROR(f->Append(data_.data(), data_.size()));\n"
      "    return f->Close();\n"
      "  }\n"
      "\n"
      " private:\n"
      "  std::string path_;\n"
      "  std::vector<char> data_;\n"
      "};\n"
      "\n"
      "}  // namespace eeb\n"
      "\n"
      "#endif  // EEB_FOO_BAR_H_\n";
  EXPECT_TRUE(Lint("src/foo/bar.h", src).empty());
}

// ---------------------------------------------------------------- formats

TEST(LintTest, OutputFormats) {
  std::vector<Finding> findings;
  CheckSource("src/a.cc", "int* p = new int;\n", &findings);
  ASSERT_EQ(findings.size(), 1u);

  const std::string text = FormatText(findings);
  EXPECT_NE(text.find("src/a.cc:1: [naked-new]"), std::string::npos);

  const std::string json = FormatJson(findings);
  EXPECT_NE(json.find("\"file\":\"src/a.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"naked-new\""), std::string::npos);

  EXPECT_EQ(FormatJson({}), "[]\n");
}

// ------------------------------------------------------------- raw-ioerror

TEST(LintTest, RawIoErrorFires) {
  const std::string src =
      "Status F() {\n"
      "  return Status::IOError(\"engine hiccup\");\n"
      "}\n";
  ExpectSingle(Lint("src/core/knn_engine.cc", src), "raw-ioerror", 2);
}

TEST(LintTest, RawIoErrorScopedToLibraryOutsideStorage) {
  const std::string src = "return Status::IOError(\"disk\");\n";
  // The storage layer is where IOError legitimately originates.
  EXPECT_TRUE(Lint("src/storage/env.cc", src).empty());
  EXPECT_TRUE(Lint("src/storage/retry_env.cc", src).empty());
  // Tools and tests mint whatever they need.
  EXPECT_TRUE(Lint("tools/eeb_cli.cc", src).empty());
  EXPECT_TRUE(Lint("tests/foo_test.cc", src).empty());
  // Everywhere else in src/ it is a finding.
  ExpectSingle(Lint("src/cache/code_cache.cc", src), "raw-ioerror", 1);
}

TEST(LintTest, RawIoErrorIgnoresOtherCodesAndPropagation) {
  const std::string src =
      "Status F(Status st) {\n"
      "  if (st.IsIOError()) return st;\n"
      "  return Status::InvalidArgument(\"bad\");\n"
      "}\n";
  EXPECT_TRUE(Lint("src/core/system.cc", src).empty());
}

TEST(LintTest, RawIoErrorSuppressible) {
  const std::string src =
      "Status F() {\n"
      "  // eeb-lint: allow(raw-ioerror)\n"
      "  return Status::IOError(\"sanctioned\");\n"
      "}\n";
  EXPECT_TRUE(Lint("src/obs/export.cc", src).empty());
}

TEST(LintTest, EveryRuleHasAName) {
  const std::vector<std::string> expected = {
      "dropped-status", "env-io",    "determinism",    "iostream",
      "naked-new",      "raw-ioerror", "header-hygiene"};
  EXPECT_EQ(RuleNames(), expected);
}

}  // namespace
}  // namespace eeb::lint
