// Tests for the eeb_lint rule engine: every rule fires exactly once on a
// known-bad snippet, a representative clean file produces nothing, the
// allow / allow-file escape hatches silence findings, and rule scoping
// (library vs. tool code, allowlisted files) behaves as documented.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "lint_core.h"

namespace eeb::lint {
namespace {

std::vector<Finding> Lint(const std::string& path, const std::string& src) {
  std::vector<Finding> findings;
  CheckSource(path, src, &findings);
  return findings;
}

/// Exactly one finding, of the expected rule, on the expected line.
void ExpectSingle(const std::vector<Finding>& findings,
                  const std::string& rule, int line) {
  ASSERT_EQ(findings.size(), 1u) << FormatText(findings);
  EXPECT_EQ(findings[0].rule, rule);
  EXPECT_EQ(findings[0].line, line);
}

// ---------------------------------------------------------- dropped-status

TEST(LintTest, DroppedStatusFires) {
  const std::string src =
      "void F(eeb::storage::WritableFile* f) {\n"
      "  f->Close();\n"
      "}\n";
  ExpectSingle(Lint("src/foo/bar.cc", src), "dropped-status", 2);
}

TEST(LintTest, DroppedStatusSpansContinuationLines) {
  const std::string src =
      "void F(eeb::storage::Env* env) {\n"
      "  env->DeleteFile(\n"
      "      very_long_path_expression);\n"
      "}\n";
  ExpectSingle(Lint("src/foo/bar.cc", src), "dropped-status", 2);
}

TEST(LintTest, ConsumedStatusIsClean) {
  const std::string src =
      "Status F(eeb::storage::WritableFile* f) {\n"
      "  EEB_RETURN_IF_ERROR(f->Flush());\n"
      "  Status s = f->Close();\n"
      "  if (!f->Sync().ok()) return s;\n"
      "  f->Close().IgnoreError();\n"
      "  return s;\n"
      "}\n";
  EXPECT_TRUE(Lint("src/foo/bar.cc", src).empty());
}

// ------------------------------------------------------- dropped-admission

TEST(LintTest, DroppedAdmissionFiresOnABareCall) {
  const std::string src =
      "void F(eeb::core::BoundedTaskQueue* q) {\n"
      "  q->TryPush(task);\n"
      "}\n";
  ExpectSingle(Lint("src/foo/bar.cc", src), "dropped-admission", 2);
}

TEST(LintTest, DroppedAdmissionFiresOnEveryAdmissionEntryPoint) {
  const std::string src =
      "void F(eeb::core::ThreadPool* pool, eeb::core::BoundedTaskQueue* q) {\n"
      "  pool->TrySubmit(task);\n"
      "  pool->SubmitWithDeadline(task, 1.0);\n"
      "  q->PushWithDeadline(task, 1.0);\n"
      "}\n";
  const auto findings = Lint("src/foo/bar.cc", src);
  ASSERT_EQ(findings.size(), 3u) << FormatText(findings);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.rule, "dropped-admission");
  }
}

TEST(LintTest, ConsumedAdmissionVerdictIsClean) {
  const std::string src =
      "void F(eeb::core::BoundedTaskQueue* q) {\n"
      "  const PushOutcome a = q->TryPush(task);\n"
      "  if (q->TryPush(task) == PushOutcome::kAccepted) return;\n"
      "  switch (q->PushWithDeadline(task, 1.0)) {\n"
      "    default: break;\n"
      "  }\n"
      "  return q->TryPush(task);\n"
      "}\n";
  EXPECT_TRUE(Lint("src/foo/bar.cc", src).empty());
}

TEST(LintTest, DroppedAdmissionJoinsBackwardOverAWrappedAssignment) {
  // The '=' sits on the line before the call: the rule must join backward
  // through the unterminated statement instead of flagging the call line.
  const std::string src =
      "void F(eeb::core::ThreadPool* pool) {\n"
      "  const PushOutcome outcome =\n"
      "      pool->TrySubmit(std::move(task));\n"
      "  (void)outcome;\n"
      "}\n";
  EXPECT_TRUE(Lint("src/foo/bar.cc", src).empty());
}

TEST(LintTest, DroppedAdmissionScopedToLibraryCodeAndSuppressible) {
  const std::string src =
      "void F(eeb::core::BoundedTaskQueue* q) {\n"
      "  q->TryPush(task);\n"
      "}\n";
  // Tests and tools may deliberately drop the verdict (e.g. to fill a
  // queue); library code may not.
  EXPECT_TRUE(Lint("tests/some_test.cc", src).empty());
  EXPECT_TRUE(Lint("tools/some_tool.cc", src).empty());
  const std::string suppressed =
      "void F(eeb::core::BoundedTaskQueue* q) {\n"
      "  q->TryPush(task);  // eeb-lint: allow(dropped-admission)\n"
      "}\n";
  EXPECT_TRUE(Lint("src/foo/bar.cc", suppressed).empty());
}

// ------------------------------------------------------------------ env-io

TEST(LintTest, EnvIoFires) {
  const std::string src =
      "void F() {\n"
      "  std::FILE* f = fopen(\"/tmp/x\", \"r\");\n"
      "}\n";
  ExpectSingle(Lint("src/foo/bar.cc", src), "env-io", 2);
}

TEST(LintTest, EnvIoAllowsTheEnvImplementationAndToolCode) {
  const std::string src = "int fd = ::open(path, O_RDONLY);\n";
  EXPECT_TRUE(Lint("src/storage/env.cc", src).empty());
  EXPECT_TRUE(Lint("tools/some_tool.cc", src).empty());
  EXPECT_TRUE(Lint("tests/some_test.cc", src).empty());
  ExpectSingle(Lint("src/cache/code_cache.cc", src), "env-io", 1);
}

// ------------------------------------------------------------- determinism

TEST(LintTest, DeterminismFires) {
  const std::string src =
      "int F() {\n"
      "  return rand() % 7;\n"
      "}\n";
  ExpectSingle(Lint("src/foo/bar.cc", src), "determinism", 2);
}

TEST(LintTest, DeterminismAllowsRandomHeaderAndSeededRng) {
  EXPECT_TRUE(Lint("src/common/random.h",
                   "#pragma once\nstd::random_device rd;\n")
                  .empty());
  EXPECT_TRUE(
      Lint("src/foo/bar.cc", "Rng rng(options.seed);\n").empty());
  ExpectSingle(Lint("src/foo/bar.cc", "std::mt19937 gen(42);\n"),
               "determinism", 1);
}

TEST(LintTest, DeterminismFlagsSystemClockInLibraryCode) {
  const std::string src =
      "void F() {\n"
      "  auto t0 = std::chrono::system_clock::now();\n"
      "}\n";
  ExpectSingle(Lint("src/core/system.cc", src), "determinism", 2);
  // Tools may take wall-clock timestamps (log lines, artifact metadata).
  EXPECT_TRUE(Lint("tools/eeb_bench.cc", src).empty());
  EXPECT_TRUE(Lint("tests/obs_test.cc", src).empty());
}

TEST(LintTest, DeterminismAllowsSteadyClockAndSuppressedSystemClock) {
  EXPECT_TRUE(
      Lint("src/common/timer.h",
           "#pragma once\n"
           "auto t0 = std::chrono::steady_clock::now();\n")
          .empty());
  EXPECT_TRUE(
      Lint("src/foo/bar.cc",
           "auto wall = std::chrono::system_clock::now();"
           "  // eeb-lint: allow(determinism)\n")
          .empty());
}

// ---------------------------------------------------------------- iostream

TEST(LintTest, IostreamFires) {
  const std::string src =
      "void Report() {\n"
      "  std::cout << \"done\\n\";\n"
      "}\n";
  ExpectSingle(Lint("src/core/system.cc", src), "iostream", 2);
}

TEST(LintTest, IostreamAllowsToolsBenchTests) {
  const std::string src = "std::cout << \"usage\\n\"; printf(\"x\");\n";
  EXPECT_TRUE(Lint("tools/eeb_cli.cc", src).empty());
  EXPECT_TRUE(Lint("bench/bench_micro.cc", src).empty());
  EXPECT_TRUE(Lint("tests/foo_test.cc", src).empty());
}

TEST(LintTest, IostreamIgnoresBufferFormattingAndStrings) {
  // vsnprintf formats into a buffer (no terminal output), and a string
  // literal mentioning printf is not a call.
  const std::string src =
      "void F(std::string* out) {\n"
      "  char buf[64];\n"
      "  std::vsnprintf(buf, sizeof(buf), \"%d\", 1);\n"
      "  *out = \"printf(\";\n"
      "}\n";
  EXPECT_TRUE(Lint("src/obs/export.cc", src).empty());
}

// --------------------------------------------------------------- naked-new

TEST(LintTest, NakedNewFires) {
  const std::string src =
      "void F() {\n"
      "  int* p = new int[8];\n"
      "}\n";
  ExpectSingle(Lint("src/foo/bar.cc", src), "naked-new", 2);
}

TEST(LintTest, NakedDeleteFires) {
  const std::string src =
      "void F(int* p) {\n"
      "  delete p;\n"
      "}\n";
  ExpectSingle(Lint("src/foo/bar.cc", src), "naked-new", 2);
}

TEST(LintTest, FactoryIdiomAndDeletedFunctionsAreClean) {
  const std::string src =
      "struct T {\n"
      "  T(const T&) = delete;\n"
      "};\n"
      "void F() {\n"
      "  std::unique_ptr<T> a(new T());\n"
      "  std::unique_ptr<T> b;\n"
      "  b.reset(new T());\n"
      "  auto c = std::make_unique<T>();\n"
      "  b.reset(\n"
      "      new T());\n"
      "}\n";
  EXPECT_TRUE(Lint("src/foo/bar.cc", src).empty());
}

// ---------------------------------------------------------- header-hygiene

TEST(LintTest, MissingGuardFires) {
  ExpectSingle(Lint("src/foo/bar.h", "struct T {};\n"), "header-hygiene", 1);
}

TEST(LintTest, UsingNamespaceInHeaderFires) {
  const std::string src =
      "#pragma once\n"
      "using namespace std;\n";
  ExpectSingle(Lint("src/foo/bar.h", src), "header-hygiene", 2);
}

TEST(LintTest, GuardedHeaderIsClean) {
  const std::string src =
      "#ifndef EEB_FOO_BAR_H_\n"
      "#define EEB_FOO_BAR_H_\n"
      "struct T {};\n"
      "#endif\n";
  EXPECT_TRUE(Lint("src/foo/bar.h", src).empty());
}

// ------------------------------------------------------------ suppressions

TEST(LintTest, AllowOnSameLineSuppresses) {
  const std::string src =
      "void F() {\n"
      "  std::FILE* f = fopen(\"/x\", \"r\");  // eeb-lint: allow(env-io)\n"
      "}\n";
  EXPECT_TRUE(Lint("src/foo/bar.cc", src).empty());
}

TEST(LintTest, AllowOnPrecedingLineSuppresses) {
  const std::string src =
      "void F() {\n"
      "  // justified because ... eeb-lint: allow(env-io)\n"
      "  std::FILE* f = fopen(\"/x\", \"r\");\n"
      "}\n";
  EXPECT_TRUE(Lint("src/foo/bar.cc", src).empty());
}

TEST(LintTest, AllowIsRuleSpecific) {
  // The allow names a different rule, so the finding survives.
  const std::string src =
      "void F() {\n"
      "  std::FILE* f = fopen(\"/x\", \"r\");  // eeb-lint: allow(iostream)\n"
      "}\n";
  ExpectSingle(Lint("src/foo/bar.cc", src), "env-io", 2);
}

TEST(LintTest, AllowFileSuppressesWholeFile) {
  const std::string src =
      "// eeb-lint: allow-file(determinism)\n"
      "int a = rand();\n"
      "int b = rand();\n"
      "std::random_device rd;\n";
  EXPECT_TRUE(Lint("src/foo/bar.cc", src).empty());
}

// ------------------------------------------------- comments, strings, clean

TEST(LintTest, CommentsAndStringsDoNotFire) {
  const std::string src =
      "// fopen(\"x\") would bypass Env; delete it; std::cout << bad\n"
      "/* rand() in a block comment\n"
      "   spanning lines with new int[3] */\n"
      "const char* doc = \"use fopen, rand(), new, delete, std::cout\";\n";
  EXPECT_TRUE(Lint("src/foo/bar.cc", src).empty());
}

TEST(LintTest, RepresentativeCleanLibraryFile) {
  const std::string src =
      "#ifndef EEB_FOO_BAR_H_\n"
      "#define EEB_FOO_BAR_H_\n"
      "\n"
      "#include \"common/status.h\"\n"
      "\n"
      "namespace eeb {\n"
      "\n"
      "class Widget {\n"
      " public:\n"
      "  Status Save(storage::Env* env) {\n"
      "    std::unique_ptr<storage::WritableFile> f;\n"
      "    EEB_RETURN_IF_ERROR(env->NewWritableFile(path_, &f));\n"
      "    EEB_RETURN_IF_ERROR(f->Append(data_.data(), data_.size()));\n"
      "    return f->Close();\n"
      "  }\n"
      "\n"
      " private:\n"
      "  std::string path_;\n"
      "  std::vector<char> data_;\n"
      "};\n"
      "\n"
      "}  // namespace eeb\n"
      "\n"
      "#endif  // EEB_FOO_BAR_H_\n";
  EXPECT_TRUE(Lint("src/foo/bar.h", src).empty());
}

// ---------------------------------------------------------------- formats

TEST(LintTest, OutputFormats) {
  std::vector<Finding> findings;
  CheckSource("src/a.cc", "int* p = new int;\n", &findings);
  ASSERT_EQ(findings.size(), 1u);

  const std::string text = FormatText(findings);
  EXPECT_NE(text.find("src/a.cc:1: [naked-new]"), std::string::npos);

  const std::string json = FormatJson(findings, 1);
  EXPECT_NE(json.find("\"files_checked\": 1"), std::string::npos);
  // Per-rule counts list every rule, including the zero ones.
  EXPECT_NE(json.find("\"naked-new\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"layering\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"atomic-misuse\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"file\":\"src/a.cc\""), std::string::npos);
  EXPECT_NE(json.find("\"line\":1"), std::string::npos);
  EXPECT_NE(json.find("\"end_line\":1"), std::string::npos);
  EXPECT_NE(json.find("\"rule\":\"naked-new\""), std::string::npos);

  const std::string empty = FormatJson({}, 0);
  EXPECT_NE(empty.find("\"files_checked\": 0"), std::string::npos);
  EXPECT_NE(empty.find("\"findings\": []"), std::string::npos);
}

// ------------------------------------------------------------- raw-ioerror

TEST(LintTest, RawIoErrorFires) {
  const std::string src =
      "Status F() {\n"
      "  return Status::IOError(\"engine hiccup\");\n"
      "}\n";
  ExpectSingle(Lint("src/core/knn_engine.cc", src), "raw-ioerror", 2);
}

TEST(LintTest, RawIoErrorScopedToLibraryOutsideStorage) {
  const std::string src = "return Status::IOError(\"disk\");\n";
  // The storage layer is where IOError legitimately originates.
  EXPECT_TRUE(Lint("src/storage/env.cc", src).empty());
  EXPECT_TRUE(Lint("src/storage/retry_env.cc", src).empty());
  // Tools and tests mint whatever they need.
  EXPECT_TRUE(Lint("tools/eeb_cli.cc", src).empty());
  EXPECT_TRUE(Lint("tests/foo_test.cc", src).empty());
  // Everywhere else in src/ it is a finding.
  ExpectSingle(Lint("src/cache/code_cache.cc", src), "raw-ioerror", 1);
}

TEST(LintTest, RawIoErrorIgnoresOtherCodesAndPropagation) {
  const std::string src =
      "Status F(Status st) {\n"
      "  if (st.IsIOError()) return st;\n"
      "  return Status::InvalidArgument(\"bad\");\n"
      "}\n";
  EXPECT_TRUE(Lint("src/core/system.cc", src).empty());
}

TEST(LintTest, RawIoErrorSuppressible) {
  const std::string src =
      "Status F() {\n"
      "  // eeb-lint: allow(raw-ioerror)\n"
      "  return Status::IOError(\"sanctioned\");\n"
      "}\n";
  EXPECT_TRUE(Lint("src/obs/export.cc", src).empty());
}

TEST(LintTest, EveryRuleHasAName) {
  const std::vector<std::string> expected = {
      "dropped-status", "dropped-admission", "env-io",
      "determinism",    "iostream",          "naked-new",
      "raw-ioerror",    "header-hygiene",    "layering",
      "lock-coverage",  "hot-path",          "atomic-misuse"};
  EXPECT_EQ(RuleNames(), expected);
}

// ---------------------------------------------------------------- layering

/// A three-module manifest for the edge tests: cache may use common and
/// obs; obs may use common; common sits at the bottom.
LayeringManifest TestManifest() {
  LayeringManifest m;
  std::string error;
  EXPECT_TRUE(ParseLayeringManifest(
      "# test layering\ncommon:\nobs: common\ncache: common obs\n", &m,
      &error))
      << error;
  return m;
}

std::vector<Finding> LintLayered(const LayeringManifest& manifest,
                                 const std::string& path,
                                 const std::string& src) {
  LintOptions options;
  options.layering = &manifest;
  std::vector<Finding> findings;
  CheckSource(path, src, options, &findings);
  return findings;
}

TEST(LintTest, LayeringAllowsDeclaredEdgesSelfAndThirdParty) {
  const LayeringManifest m = TestManifest();
  const std::string src =
      "#include \"cache/knn_cache.h\"\n"     // same module
      "#include \"common/status.h\"\n"       // declared edge
      "#include \"obs/metrics.h\"\n"         // declared edge
      "#include <vector>\n"                  // system header
      "#include \"third_party/x.h\"\n";      // not an src module
  EXPECT_TRUE(LintLayered(m, "src/cache/code_cache.cc", src).empty());
}

TEST(LintTest, LayeringBackEdgeFires) {
  const LayeringManifest m = TestManifest();
  // obs -> cache is a back-edge: obs declares only common.
  ExpectSingle(
      LintLayered(m, "src/obs/metrics.cc", "#include \"cache/knn_cache.h\"\n"),
      "layering", 1);
}

TEST(LintTest, LayeringUndeclaredModuleFires) {
  const LayeringManifest m = TestManifest();
  // "core" is not in the test manifest, and the include targets a module
  // that is — so core's layering obligations are undeclared.
  ExpectSingle(
      LintLayered(m, "src/core/system.cc", "#include \"common/status.h\"\n"),
      "layering", 1);
}

TEST(LintTest, LayeringOnlyBindsInsideSrc) {
  const LayeringManifest m = TestManifest();
  // Entry-point trees may include anything.
  EXPECT_TRUE(
      LintLayered(m, "tools/eeb_cli.cc", "#include \"cache/knn_cache.h\"\n")
          .empty());
  // Without a manifest the pass does not run at all.
  EXPECT_TRUE(
      Lint("src/obs/metrics.cc", "#include \"cache/knn_cache.h\"\n").empty());
}

TEST(LintTest, LayeringBackEdgeSuppressible) {
  const LayeringManifest m = TestManifest();
  EXPECT_TRUE(LintLayered(m, "src/obs/metrics.cc",
                          "// eeb-lint: allow(layering)\n"
                          "#include \"cache/knn_cache.h\"\n")
                  .empty());
}

TEST(LintTest, ManifestParseRejectsMalformedInput) {
  LayeringManifest m;
  std::string error;
  EXPECT_FALSE(ParseLayeringManifest("common\n", &m, &error));
  EXPECT_NE(error.find("expected"), std::string::npos);
  EXPECT_FALSE(ParseLayeringManifest("a: b\n", &m, &error));
  EXPECT_NE(error.find("undeclared"), std::string::npos);
  EXPECT_FALSE(ParseLayeringManifest("a:\na:\n", &m, &error));
  EXPECT_NE(error.find("duplicate"), std::string::npos);
}

TEST(LintTest, ManifestCycleDetection) {
  LayeringManifest m;
  std::string error;
  ASSERT_TRUE(ParseLayeringManifest("a: b\nb: c\nc: a\n", &m, &error));
  const std::vector<std::string> cycle = ManifestCycle(m);
  ASSERT_GE(cycle.size(), 2u);
  EXPECT_EQ(cycle.front(), cycle.back());

  ASSERT_TRUE(ParseLayeringManifest("a: b c\nb: c\nc:\n", &m, &error));
  EXPECT_TRUE(ManifestCycle(m).empty());
}

// ----------------------------------------------------------- lock-coverage

TEST(LintTest, LockCoverageFiresOnUnannotatedMember) {
  const std::string src =
      "class C {\n"
      " private:\n"
      "  Mutex mu_;\n"
      "  int count_;\n"
      "};\n";
  ExpectSingle(Lint("src/foo/bar.cc", src), "lock-coverage", 4);
}

TEST(LintTest, LockCoverageSpansMultiLineMembers) {
  const std::string src =
      "class C {\n"
      "  Mutex mu_;\n"
      "  std::map<int,\n"
      "           int> big_map_;\n"
      "};\n";
  const std::vector<Finding> findings = Lint("src/foo/bar.cc", src);
  ASSERT_EQ(findings.size(), 1u) << FormatText(findings);
  EXPECT_EQ(findings[0].rule, "lock-coverage");
  EXPECT_EQ(findings[0].line, 3);
  EXPECT_EQ(findings[0].end_line, 4);
}

TEST(LintTest, LockCoverageAcceptsAnnotationsAndOptOuts) {
  const std::string src =
      "class C {\n"
      "  Mutex mu_;\n"
      "  int count_ EEB_GUARDED_BY(mu_) = 0;\n"
      "  Node* head_ EEB_PT_GUARDED_BY(mu_) = nullptr;\n"
      "  Queue queue_ EEB_UNGUARDED(\"internally synchronized\");\n"
      "};\n";
  EXPECT_TRUE(Lint("src/foo/bar.cc", src).empty());
}

TEST(LintTest, LockCoverageExemptsSelfSynchronizingAndImmutableMembers) {
  const std::string src =
      "class C {\n"
      "  mutable Mutex mu_;\n"
      "  std::atomic<uint64_t> hits_{0};\n"
      "  CondVar cv_;\n"
      "  std::thread worker_;\n"
      "  const int k_;\n"
      "  static constexpr int kMax = 4;\n"
      "  Env* const base_;\n"
      "};\n";
  EXPECT_TRUE(Lint("src/foo/bar.cc", src).empty());
}

TEST(LintTest, LockCoverageIgnoresLocklessClassesAndBorrowedMutexes) {
  // No Mutex member: not a concurrency boundary, nothing to annotate.
  EXPECT_TRUE(Lint("src/foo/bar.cc",
                   "class P {\n  int x_;\n  double y_;\n};\n")
                  .empty());
  // A Mutex& member is borrowed (scoped-lock idiom), not owned.
  EXPECT_TRUE(Lint("src/foo/bar.cc",
                   "class L {\n  Mutex& mu_;\n  int x_;\n};\n")
                  .empty());
  // Tests and tools may keep ad-hoc guarded state without annotations.
  EXPECT_TRUE(Lint("tests/foo_test.cc",
                   "class C {\n  Mutex mu_;\n  int count_;\n};\n")
                  .empty());
}

// ---------------------------------------------------------------- hot-path

TEST(LintTest, HotPathFiresOnGrowthInsideRegion) {
  const std::string src =
      "void F(std::vector<int>* v) {\n"
      "  // eeb-hot-begin(kernel): per-candidate loop\n"
      "  v->push_back(1);\n"
      "  // eeb-hot-end\n"
      "}\n";
  ExpectSingle(Lint("src/foo/bar.cc", src), "hot-path", 3);
}

TEST(LintTest, HotPathCleanRegionAndOutsideGrowth) {
  const std::string src =
      "void F(std::vector<double>& a, std::vector<double>& p) {\n"
      "  a.reserve(64);\n"  // growth outside the region is fine
      "  double dot = 0.0;\n"
      "  // eeb-hot-begin(dot-product)\n"
      "  for (size_t j = 0; j < a.size(); ++j) dot += a[j] * p[j];\n"
      "  // eeb-hot-end\n"
      "}\n";
  EXPECT_TRUE(Lint("src/foo/bar.cc", src).empty());
}

TEST(LintTest, HotPathMarkerErrors) {
  // Missing label (no end marker either — a malformed begin opens nothing,
  // so a trailing end would be a second, equally correct finding).
  ExpectSingle(Lint("src/a.cc", "// eeb-hot-begin\nint x;\n"), "hot-path", 1);
  // Nested begin.
  ExpectSingle(Lint("src/a.cc",
                    "// eeb-hot-begin(outer)\n"
                    "// eeb-hot-begin(inner)\n"
                    "// eeb-hot-end\n"),
               "hot-path", 2);
  // End without begin.
  ExpectSingle(Lint("src/a.cc", "int x;\n// eeb-hot-end\n"), "hot-path", 2);
  // Unclosed region: the finding spans from the marker to EOF.
  const std::vector<Finding> findings =
      Lint("src/a.cc", "// eeb-hot-begin(leaky)\nint x;\nint y;\n");
  ASSERT_EQ(findings.size(), 1u) << FormatText(findings);
  EXPECT_EQ(findings[0].rule, "hot-path");
  EXPECT_EQ(findings[0].line, 1);
  EXPECT_GE(findings[0].end_line, 3);
}

TEST(LintTest, HotPathProseMentionDoesNotOpenARegion) {
  // A comment that merely talks about the eeb-hot-begin(<label>) marker —
  // like the lint rule's own documentation — is not a marker.
  const std::string src =
      "// Fence kernels with eeb-hot-begin(<label>) ... eeb-hot-end pairs.\n"
      "void F(std::vector<int>* v) { v->push_back(1); }\n";
  EXPECT_TRUE(Lint("src/foo/bar.cc", src).empty());
}

// ------------------------------------------------------------ atomic-misuse

TEST(LintTest, AtomicDefaultOrderFires) {
  const std::string src =
      "void F(std::atomic<int>& a) {\n"
      "  a.store(1);\n"
      "}\n";
  ExpectSingle(Lint("src/foo/bar.cc", src), "atomic-misuse", 2);
}

TEST(LintTest, AtomicExplicitOrderIsClean) {
  const std::string src =
      "void F(std::atomic<int>& a) {\n"
      "  a.store(1, std::memory_order_relaxed);\n"
      "  a.fetch_add(2, std::memory_order_acq_rel);\n"
      "}\n";
  EXPECT_TRUE(Lint("src/foo/bar.cc", src).empty());
}

TEST(LintTest, AtomicLoadThenStoreFires) {
  const std::string src =
      "void Bump(std::atomic<int>& a) {\n"
      "  int v = a.load(std::memory_order_relaxed);\n"
      "  a.store(v + 1, std::memory_order_relaxed);\n"
      "}\n";
  ExpectSingle(Lint("src/foo/bar.cc", src), "atomic-misuse", 3);
}

TEST(LintTest, AtomicCompareExchangeLoopIsClean) {
  const std::string src =
      "void Max(std::atomic<int>& a, int v) {\n"
      "  int cur = a.load(std::memory_order_relaxed);\n"
      "  while (cur < v && !a.compare_exchange_weak(\n"
      "                        cur, v, std::memory_order_relaxed)) {\n"
      "  }\n"
      "}\n";
  EXPECT_TRUE(Lint("src/foo/bar.cc", src).empty());
}

TEST(LintTest, AtomicSeqlockWriterSuppressible) {
  // The seqlock writer's version bump is a load-then-store by design; the
  // single-writer invariant goes on the suppressing line.
  const std::string src =
      "void WriteCell(Cell& cell) {\n"
      "  uint64_t v = cell.version.load(std::memory_order_relaxed);\n"
      "  // single writer: the slot-cursor claim owns this cell\n"
      "  // eeb-lint: allow(atomic-misuse)\n"
      "  cell.version.store(v + 1, std::memory_order_relaxed);\n"
      "}\n";
  EXPECT_TRUE(Lint("src/obs/recorder_like.cc", src).empty());
}

TEST(LintTest, AtomicRulesScopedToLibraryCode) {
  const std::string src =
      "void F(std::atomic<int>& a) {\n"
      "  a.store(a.load() + 1);\n"
      "}\n";
  EXPECT_TRUE(Lint("tests/foo_test.cc", src).empty());
  EXPECT_TRUE(Lint("bench/bench_micro.cc", src).empty());
}

// ---------------------------------------------------------------- --fix

TEST(LintTest, FixInsertsExplicitMemoryOrders) {
  const std::string src =
      "void F(std::atomic<int>& a) {\n"
      "  a.store(1);\n"
      "}\n"
      "int G(const std::atomic<int>& a) {\n"
      "  return a.load();\n"
      "}\n";
  std::string fixed;
  ASSERT_TRUE(ApplyFixes("src/foo/bar.cc", src, &fixed));
  EXPECT_NE(fixed.find("a.store(1, std::memory_order_seq_cst);"),
            std::string::npos);
  EXPECT_NE(fixed.find("a.load(std::memory_order_seq_cst)"),
            std::string::npos);
  // The fixed file is clean and a second pass is a no-op.
  EXPECT_TRUE(Lint("src/foo/bar.cc", fixed).empty());
  std::string again;
  EXPECT_FALSE(ApplyFixes("src/foo/bar.cc", fixed, &again));
  EXPECT_EQ(again, fixed);
}

TEST(LintTest, FixInsertsUnguardedStubs) {
  const std::string src =
      "class C {\n"
      "  Mutex mu_;\n"
      "  int count_;\n"
      "};\n";
  std::string fixed;
  ASSERT_TRUE(ApplyFixes("src/foo/bar.cc", src, &fixed));
  EXPECT_NE(
      fixed.find("int count_ EEB_UNGUARDED(\"FIXME: annotate with "
                 "EEB_GUARDED_BY or justify\");"),
      std::string::npos);
  EXPECT_TRUE(Lint("src/foo/bar.cc", fixed).empty());
  std::string again;
  EXPECT_FALSE(ApplyFixes("src/foo/bar.cc", fixed, &again));
  EXPECT_EQ(again, fixed);
}

TEST(LintTest, FixRespectsScopeAndSuppressions) {
  // Entry-point trees are never rewritten.
  std::string fixed;
  EXPECT_FALSE(
      ApplyFixes("tools/x.cc", "void F(std::atomic<int>& a) { a.store(1); }\n",
                 &fixed));
  // A suppressed site keeps its deliberate default order.
  const std::string src =
      "void F(std::atomic<int>& a) {\n"
      "  a.store(1);  // eeb-lint: allow(atomic-misuse)\n"
      "}\n";
  EXPECT_FALSE(ApplyFixes("src/foo/bar.cc", src, &fixed));
  EXPECT_EQ(fixed, src);
}

}  // namespace
}  // namespace eeb::lint
