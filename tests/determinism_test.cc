// Determinism guarantees (README): two independently built systems over the
// same seeds produce identical results, statistics and histograms; latency
// percentiles are ordered; registry environment knobs behave.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "core/system.h"
#include "hist/serialize.h"
#include "workload/generator.h"
#include "workload/registry.h"

namespace eeb {
namespace {

struct Built {
  Dataset data;
  workload::QueryLog log;
  std::unique_ptr<core::System> system;
};

Built BuildOne(const std::string& dir) {
  std::filesystem::create_directories(dir);
  Built b;
  workload::DatasetSpec dspec;
  dspec.n = 3000;
  dspec.dim = 16;
  dspec.ndom = 256;
  dspec.seed = 5;
  b.data = workload::GenerateClustered(dspec);
  workload::QueryLogSpec qspec;
  qspec.pool_size = 30;
  qspec.workload_size = 100;
  qspec.test_size = 10;
  b.log = workload::GenerateQueryLog(b.data, qspec);
  core::SystemOptions opt;
  opt.lsh.beta_candidates = 100;
  EXPECT_TRUE(core::System::Create(storage::Env::Default(), dir, b.data,
                                   b.log.workload, opt, &b.system)
                  .ok());
  return b;
}

TEST(DeterminismTest, TwoBuildsAgreeEndToEnd) {
  const std::string base =
      (std::filesystem::temp_directory_path() / "eeb_det").string();
  Built a = BuildOne(base + "/a");
  Built b = BuildOne(base + "/b");

  EXPECT_EQ(a.system->workload_stats().dmax, b.system->workload_stats().dmax);
  EXPECT_EQ(a.system->workload_stats().ids_by_freq,
            b.system->workload_stats().ids_by_freq);

  ASSERT_TRUE(a.system->ConfigureCache(core::CacheMethod::kHcO, 40000).ok());
  ASSERT_TRUE(b.system->ConfigureCache(core::CacheMethod::kHcO, 40000).ok());
  EXPECT_EQ(a.system->last_tau(), b.system->last_tau());

  for (size_t i = 0; i < a.log.test.size(); ++i) {
    core::QueryResult ra, rb;
    ASSERT_TRUE(a.system->Query(a.log.test[i], 10, &ra).ok());
    ASSERT_TRUE(b.system->Query(b.log.test[i], 10, &rb).ok());
    EXPECT_EQ(ra.result_ids, rb.result_ids);
    EXPECT_EQ(ra.candidates, rb.candidates);
    EXPECT_EQ(ra.fetched, rb.fetched);
  }

  // The built histograms are byte-identical.
  hist::Histogram ha, hb;
  ASSERT_TRUE(a.system
                  ->BuildGlobalHistogram(core::CacheMethod::kHcO,
                                         a.system->last_tau(), &ha)
                  .ok());
  ASSERT_TRUE(b.system
                  ->BuildGlobalHistogram(core::CacheMethod::kHcO,
                                         b.system->last_tau(), &hb)
                  .ok());
  std::string blob_a, blob_b;
  hist::AppendHistogram(ha, &blob_a);
  hist::AppendHistogram(hb, &blob_b);
  EXPECT_EQ(blob_a, blob_b);

  std::filesystem::remove_all(base);
}

TEST(DeterminismTest, PercentilesOrdered) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "eeb_det_p").string();
  Built b = BuildOne(dir);
  ASSERT_TRUE(b.system->ConfigureCache(core::CacheMethod::kHcO, 40000).ok());
  core::AggregateResult agg;
  ASSERT_TRUE(b.system->RunQueries(b.log.test, 10, &agg).ok());
  EXPECT_LE(agg.p50_response_seconds, agg.p95_response_seconds);
  EXPECT_LE(agg.p95_response_seconds, agg.p99_response_seconds);
  EXPECT_GT(agg.p99_response_seconds, 0.0);
  std::filesystem::remove_all(dir);
}

TEST(RegistryEnvTest, EmptyQuickVarIgnored) {
  // An EEB_QUICK set to the empty string must NOT activate quick mode (a
  // real shell footgun: `EEB_QUICK= cmd`).
  setenv("EEB_QUICK", "", 1);
  auto spec = workload::MaybeQuick(workload::SogouSimSpec());
  EXPECT_EQ(spec.n, workload::SogouSimSpec().n);
  setenv("EEB_QUICK", "1", 1);
  spec = workload::MaybeQuick(workload::SogouSimSpec());
  EXPECT_LE(spec.n, 8000u);
  unsetenv("EEB_QUICK");
}

TEST(RegistryEnvTest, CachePctOverride) {
  auto spec = workload::NuswSimSpec();
  const size_t dflt = workload::DefaultCacheBytes(spec);
  setenv("EEB_CACHE_PCT", "20", 1);
  const size_t overridden = workload::DefaultCacheBytes(spec);
  unsetenv("EEB_CACHE_PCT");
  const size_t file = spec.n * spec.dim * sizeof(float);
  EXPECT_EQ(overridden, file / 5);
  EXPECT_NE(overridden, dflt);
}

}  // namespace
}  // namespace eeb
