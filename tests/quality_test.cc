// Tests for the result-quality module, including the paper's "caching does
// not affect quality" claim measured end to end.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/quality.h"
#include "core/system.h"
#include "workload/generator.h"

namespace eeb::core {
namespace {

TEST(QualityTest, PerfectResultScoresOne) {
  Dataset data(2);
  for (Scalar v : {0.f, 10.f, 20.f, 30.f}) {
    std::vector<Scalar> p{v, 0};
    data.Append(p);
  }
  std::vector<Scalar> q{1, 0};
  std::vector<PointId> perfect{0, 1};  // true 2NN of q
  const auto quality = MeasureQuality(data, q, perfect, 2);
  EXPECT_DOUBLE_EQ(quality.recall, 1.0);
  EXPECT_DOUBLE_EQ(quality.overall_ratio, 1.0);
}

TEST(QualityTest, WrongResultScoresLower) {
  Dataset data(2);
  for (Scalar v : {0.f, 10.f, 20.f, 30.f}) {
    std::vector<Scalar> p{v, 0};
    data.Append(p);
  }
  std::vector<Scalar> q{1, 0};
  std::vector<PointId> wrong{2, 3};  // the two farthest points
  const auto quality = MeasureQuality(data, q, wrong, 2);
  EXPECT_DOUBLE_EQ(quality.recall, 0.0);
  EXPECT_GT(quality.overall_ratio, 1.0);
}

TEST(QualityTest, PartialOverlap) {
  Dataset data(2);
  for (Scalar v : {0.f, 10.f, 20.f, 30.f}) {
    std::vector<Scalar> p{v, 0};
    data.Append(p);
  }
  std::vector<Scalar> q{1, 0};
  std::vector<PointId> half{0, 3};
  const auto quality = MeasureQuality(data, q, half, 2);
  EXPECT_DOUBLE_EQ(quality.recall, 0.5);
}

TEST(QualityTest, BatchAverages) {
  Dataset data(1);
  for (Scalar v : {0.f, 1.f, 2.f, 100.f}) {
    std::vector<Scalar> p{v};
    data.Append(p);
  }
  std::vector<std::vector<Scalar>> queries{{0.1f}, {0.2f}};
  std::vector<std::vector<PointId>> results{{0, 1}, {2, 3}};
  const auto batch = MeasureBatchQuality(data, queries, results, 2);
  EXPECT_EQ(batch.queries, 2u);
  EXPECT_DOUBLE_EQ(batch.mean_recall, 0.5);  // (1.0 + 0.0) / 2
}

TEST(QualityTest, CachingDoesNotAffectQualityEndToEnd) {
  // The paper's Sec. 2.2 claim, measured: LSH quality (recall, ratio) is
  // identical with and without the cache.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "eeb_quality").string();
  std::filesystem::create_directories(dir);
  workload::DatasetSpec dspec;
  dspec.n = 4000;
  dspec.dim = 16;
  dspec.ndom = 256;
  dspec.seed = 3;
  Dataset data = workload::GenerateClustered(dspec);
  workload::QueryLogSpec qspec;
  qspec.pool_size = 40;
  qspec.workload_size = 100;
  qspec.test_size = 15;
  auto log = workload::GenerateQueryLog(data, qspec);

  core::SystemOptions opt;
  opt.lsh.beta_candidates = 150;
  std::unique_ptr<System> sys;
  ASSERT_TRUE(System::Create(storage::Env::Default(), dir, data,
                             log.workload, opt, &sys)
                  .ok());

  auto collect = [&](CacheMethod m) {
    EXPECT_TRUE(sys->ConfigureCache(m, m == CacheMethod::kNone ? 0 : 50000)
                    .ok());
    std::vector<std::vector<PointId>> results;
    for (const auto& q : log.test) {
      QueryResult r;
      EXPECT_TRUE(sys->Query(q, 10, &r).ok());
      results.push_back(r.result_ids);
    }
    return MeasureBatchQuality(data, log.test, results, 10);
  };

  const auto plain = collect(CacheMethod::kNone);
  const auto cached = collect(CacheMethod::kHcO);
  EXPECT_DOUBLE_EQ(plain.mean_recall, cached.mean_recall);
  EXPECT_DOUBLE_EQ(plain.mean_overall_ratio, cached.mean_overall_ratio);
  // And the LSH layer itself finds most true neighbors on this data.
  EXPECT_GT(plain.mean_recall, 0.6);
  EXPECT_LT(plain.mean_overall_ratio, 1.3);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace eeb::core
