// Tests for Algorithm 1 (KnnEngine): the central correctness property —
// caching never changes query results — plus phase accounting invariants
// and the multi-step early-stop.

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "common/dataset.h"
#include "common/random.h"
#include "cache/code_cache.h"
#include "cache/exact_cache.h"
#include "core/knn_engine.h"
#include "hist/builders.h"
#include "index/lsh/c2lsh.h"
#include "storage/env.h"

namespace eeb::core {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("eeb_engine_" + name))
      .string();
}

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(71);
    data_ = Dataset(16);
    std::vector<Scalar> p(16);
    const int clusters = 6;
    std::vector<std::vector<double>> centers(clusters,
                                             std::vector<double>(16));
    for (auto& c : centers) {
      for (auto& v : c) v = 40 + rng.NextDouble() * 176;
    }
    for (size_t i = 0; i < 4000; ++i) {
      const auto& c = centers[rng.Uniform(clusters)];
      for (size_t j = 0; j < 16; ++j) {
        p[j] = static_cast<Scalar>(static_cast<int>(
            std::max(0.0, std::min(255.0, c[j] + rng.NextGaussian() * 10))));
      }
      data_.Append(p);
    }

    path_ = TempPath("pf");
    ASSERT_TRUE(
        storage::PointFile::Create(storage::Env::Default(), path_, data_)
            .ok());
    ASSERT_TRUE(
        storage::PointFile::Open(storage::Env::Default(), path_, &points_)
            .ok());

    index::C2LshOptions lo;
    lo.num_functions = 16;
    lo.collision_threshold = 8;
    lo.beta_candidates = 150;
    ASSERT_TRUE(index::C2Lsh::Build(data_, lo, &lsh_).ok());

    for (int i = 0; i < 20; ++i) {
      std::vector<Scalar> q(16);
      const PointId src = static_cast<PointId>(rng.Uniform(data_.size()));
      auto sp = data_.point(src);
      for (size_t j = 0; j < 16; ++j) {
        q[j] = static_cast<Scalar>(std::max(
            0.0, std::min(255.0, sp[j] + rng.NextGaussian() * 3)));
      }
      queries_.push_back(q);
    }
  }

  void TearDown() override {
    storage::Env::Default()->DeleteFile(path_).IgnoreError();
  }

  std::vector<PointId> AllIds() const {
    std::vector<PointId> ids(data_.size());
    for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<PointId>(i);
    return ids;
  }

  Dataset data_;
  std::string path_;
  std::unique_ptr<storage::PointFile> points_;
  std::unique_ptr<index::C2Lsh> lsh_;
  std::vector<std::vector<Scalar>> queries_;
};

TEST_F(EngineTest, NoCacheBaselineFetchesForRefinement) {
  KnnEngine engine(lsh_.get(), points_.get(), nullptr);
  QueryResult r;
  ASSERT_TRUE(engine.Query(queries_[0], 10, &r).ok());
  EXPECT_EQ(r.result_ids.size(), 10u);
  EXPECT_EQ(r.cache_hits, 0u);
  EXPECT_EQ(r.pruned, 0u);
  EXPECT_GT(r.refine_io.point_reads, 0u);
  EXPECT_EQ(r.remaining, r.candidates);
}

TEST_F(EngineTest, ExactCacheGivesSameResults) {
  KnnEngine plain(lsh_.get(), points_.get(), nullptr);
  cache::ExactCache cache(16, 1 << 22);
  ASSERT_TRUE(cache.Fill(data_, AllIds()).ok());
  KnnEngine cached(lsh_.get(), points_.get(), &cache);

  for (const auto& q : queries_) {
    QueryResult a, b;
    ASSERT_TRUE(plain.Query(q, 10, &a).ok());
    ASSERT_TRUE(cached.Query(q, 10, &b).ok());
    EXPECT_EQ(a.result_ids, b.result_ids);
    EXPECT_LE(b.refine_io.point_reads, a.refine_io.point_reads);
  }
}

TEST_F(EngineTest, CodeCacheGivesSameResultsAcrossTau) {
  KnnEngine plain(lsh_.get(), points_.get(), nullptr);
  for (uint32_t tau : {1u, 2u, 4u, 6u, 8u}) {
    hist::Histogram h;
    ASSERT_TRUE(hist::BuildEquiWidth(256, 1u << tau, &h).ok());
    // Both interval semantics must preserve results on integral data.
    for (bool integral : {false, true}) {
      cache::HistCodeCache cache(&h, 16, 1 << 22, false, integral);
      ASSERT_TRUE(cache.Fill(data_, AllIds()).ok());
      KnnEngine cached(lsh_.get(), points_.get(), &cache);
      for (const auto& q : queries_) {
        QueryResult a, b;
        ASSERT_TRUE(plain.Query(q, 10, &a).ok());
        ASSERT_TRUE(cached.Query(q, 10, &b).ok());
        EXPECT_EQ(a.result_ids, b.result_ids)
            << "tau=" << tau << " integral=" << integral;
      }
    }
  }
}

TEST_F(EngineTest, PhaseCountsAreConsistent) {
  hist::Histogram h;
  ASSERT_TRUE(hist::BuildEquiWidth(256, 64, &h).ok());
  cache::HistCodeCache cache(&h, 16, 1 << 22);
  ASSERT_TRUE(cache.Fill(data_, AllIds()).ok());
  KnnEngine engine(lsh_.get(), points_.get(), &cache);

  for (const auto& q : queries_) {
    QueryResult r;
    ASSERT_TRUE(engine.Query(q, 10, &r).ok());
    EXPECT_EQ(r.pruned + r.true_hits + r.remaining, r.candidates);
    EXPECT_LE(r.fetched, r.remaining);
    EXPECT_EQ(r.cache_hits, r.candidates);  // everything cached here
    EXPECT_EQ(r.result_ids.size(), 10u);
  }
}

TEST_F(EngineTest, TighterCodesPruneMore) {
  uint64_t fetched_coarse = 0, fetched_fine = 0;
  for (uint32_t tau : {2u, 7u}) {
    hist::Histogram h;
    ASSERT_TRUE(hist::BuildEquiWidth(256, 1u << tau, &h).ok());
    cache::HistCodeCache cache(&h, 16, 1 << 24);
    ASSERT_TRUE(cache.Fill(data_, AllIds()).ok());
    KnnEngine engine(lsh_.get(), points_.get(), &cache);
    uint64_t fetched = 0;
    for (const auto& q : queries_) {
      QueryResult r;
      ASSERT_TRUE(engine.Query(q, 10, &r).ok());
      fetched += r.fetched;
    }
    (tau == 2 ? fetched_coarse : fetched_fine) = fetched;
  }
  EXPECT_LT(fetched_fine, fetched_coarse)
      << "tau=7 bounds must prune more candidates than tau=2";
}

TEST_F(EngineTest, TrueResultDetectionSavesFetches) {
  hist::Histogram h;
  ASSERT_TRUE(hist::BuildEquiWidth(256, 256, &h).ok());  // singleton buckets
  cache::HistCodeCache cache(&h, 16, 1 << 24, false, /*integral=*/true);
  ASSERT_TRUE(cache.Fill(data_, AllIds()).ok());

  KnnEngine with(lsh_.get(), points_.get(), &cache,
                 EngineOptions{.true_result_detection = true});
  KnnEngine without(lsh_.get(), points_.get(), &cache,
                    EngineOptions{.true_result_detection = false});
  uint64_t fetched_with = 0, fetched_without = 0, sure = 0;
  for (const auto& q : queries_) {
    QueryResult a, b;
    ASSERT_TRUE(with.Query(q, 10, &a).ok());
    ASSERT_TRUE(without.Query(q, 10, &b).ok());
    EXPECT_EQ(a.result_ids, b.result_ids);
    fetched_with += a.fetched;
    fetched_without += b.fetched;
    sure += a.true_hits;
  }
  EXPECT_GT(sure, 0u) << "singleton buckets must detect sure results";
  EXPECT_LE(fetched_with, fetched_without);
}

TEST_F(EngineTest, LruCacheWarmsUpOnRepeats) {
  hist::Histogram h;
  ASSERT_TRUE(hist::BuildEquiWidth(256, 64, &h).ok());
  cache::HistCodeCache cache(&h, 16, 1 << 20, /*lru=*/true);
  KnnEngine engine(lsh_.get(), points_.get(), &cache);

  QueryResult first, second;
  ASSERT_TRUE(engine.Query(queries_[0], 10, &first).ok());
  ASSERT_TRUE(engine.Query(queries_[0], 10, &second).ok());
  EXPECT_EQ(first.result_ids, second.result_ids);
  EXPECT_EQ(first.cache_hits, 0u);
  EXPECT_GT(second.cache_hits, 0u) << "repeat query should hit the cache";
  EXPECT_LT(second.refine_io.point_reads, first.refine_io.point_reads);
}

TEST_F(EngineTest, KZeroRejected) {
  KnnEngine engine(lsh_.get(), points_.get(), nullptr);
  QueryResult r;
  EXPECT_TRUE(engine.Query(queries_[0], 0, &r).IsInvalidArgument());
}

TEST_F(EngineTest, SmallCandidateSetShortCircuits) {
  // With k larger than the candidate set every candidate is a result and no
  // fetch is needed.
  KnnEngine engine(lsh_.get(), points_.get(), nullptr);
  QueryResult r;
  ASSERT_TRUE(engine.Query(queries_[0], 100000, &r).ok());
  EXPECT_EQ(r.result_ids.size(), r.candidates);
  EXPECT_EQ(r.refine_io.point_reads, 0u);
}

}  // namespace
}  // namespace eeb::core
