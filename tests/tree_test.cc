// Tests for the tree-index substrate: LeafStore, the generic cache-aware
// TreeKnnSearch, iDistance and VP-tree exactness (with and without node
// caches), lower-bound validity, and I/O reduction from approximate caching.

#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>
#include <set>

#include "common/dataset.h"
#include "common/distance.h"
#include "common/random.h"
#include "cache/node_cache.h"
#include "hist/builders.h"
#include "index/idistance/idistance.h"
#include "index/linear_scan.h"
#include "index/tree_common.h"
#include "index/vptree/vptree.h"

namespace eeb::index {
namespace {

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / ("eeb_tree_" + name))
      .string();
}

Dataset ClusteredData(size_t n, size_t dim, uint64_t seed) {
  Rng rng(seed);
  Dataset d(dim);
  std::vector<Scalar> p(dim);
  const int clusters = 6;
  std::vector<std::vector<double>> centers(clusters,
                                           std::vector<double>(dim));
  for (auto& c : centers) {
    for (auto& v : c) v = 40 + rng.NextDouble() * 176;
  }
  for (size_t i = 0; i < n; ++i) {
    const auto& c = centers[rng.Uniform(clusters)];
    for (size_t j = 0; j < dim; ++j) {
      double v = c[j] + rng.NextGaussian() * 12;
      p[j] = static_cast<Scalar>(std::max(0.0, std::min(255.0, v)));
    }
    d.Append(p);
  }
  return d;
}

std::vector<Scalar> RandomQuery(const Dataset& data, Rng& rng) {
  const PointId src = static_cast<PointId>(rng.Uniform(data.size()));
  std::vector<Scalar> q(data.point(src).begin(), data.point(src).end());
  for (auto& v : q) v += static_cast<Scalar>(rng.NextGaussian() * 3);
  return q;
}

bool SameIds(const std::vector<Neighbor>& a, const std::vector<Neighbor>& b) {
  if (a.size() != b.size()) return false;
  std::set<PointId> sa, sb;
  for (const auto& x : a) sa.insert(x.id);
  for (const auto& x : b) sb.insert(x.id);
  return sa == sb;
}

// -------------------------------------------------------------- LeafStore --

TEST(LeafStoreTest, FetchReturnsMembers) {
  Dataset data = ClusteredData(100, 8, 1);
  std::vector<std::vector<PointId>> leaves;
  for (int l = 0; l < 10; ++l) {
    std::vector<PointId> ids;
    for (int i = 0; i < 10; ++i) ids.push_back(l * 10 + i);
    leaves.push_back(ids);
  }
  std::unique_ptr<LeafStore> store;
  const std::string path = TempPath("leafstore");
  ASSERT_TRUE(LeafStore::Create(storage::Env::Default(), path, data,
                                std::move(leaves), &store)
                  .ok());
  ASSERT_EQ(store->num_leaves(), 10u);

  storage::IoStats stats;
  storage::PageTracker tracker;
  std::set<PointId> seen;
  ASSERT_TRUE(store
                  ->FetchLeaf(
                      3,
                      [&](PointId id, std::span<const Scalar> p) {
                        seen.insert(id);
                        EXPECT_EQ(p[0], data.point(id)[0]);
                      },
                      &stats, &tracker)
                  .ok());
  EXPECT_EQ(seen.size(), 10u);
  EXPECT_EQ(*seen.begin(), 30u);
  // 10 points * 32 bytes fit one page; leaf is page-aligned.
  EXPECT_EQ(stats.page_reads, 1u);
  storage::Env::Default()->DeleteFile(path).IgnoreError();
}

TEST(LeafStoreTest, LeavesArePageDisjoint) {
  Dataset data = ClusteredData(64, 8, 3);
  // Two leaves of 3 points each, rest in a big leaf: each must start on a
  // fresh page, so fetching leaf 0 and leaf 1 touches different pages.
  std::vector<std::vector<PointId>> leaves{{0, 1, 2}, {3, 4, 5}};
  std::vector<PointId> rest;
  for (PointId id = 6; id < 64; ++id) rest.push_back(id);
  leaves.push_back(rest);
  std::unique_ptr<LeafStore> store;
  const std::string path = TempPath("disjoint");
  ASSERT_TRUE(LeafStore::Create(storage::Env::Default(), path, data,
                                std::move(leaves), &store)
                  .ok());
  storage::IoStats stats;
  storage::PageTracker tracker;
  auto noop = [](PointId, std::span<const Scalar>) {};
  ASSERT_TRUE(store->FetchLeaf(0, noop, &stats, &tracker).ok());
  ASSERT_TRUE(store->FetchLeaf(1, noop, &stats, &tracker).ok());
  EXPECT_EQ(stats.page_reads, 2u) << "leaves must not share pages";
  storage::Env::Default()->DeleteFile(path).IgnoreError();
}

// -------------------------------------------------------------- iDistance --

class IDistanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = ClusteredData(3000, 16, 7);
    path_ = TempPath("idist");
    IDistanceOptions opt;
    opt.num_partitions = 16;
    ASSERT_TRUE(
        IDistance::Build(storage::Env::Default(), path_, data_, opt, &idx_)
            .ok());
  }
  void TearDown() override {
    storage::Env::Default()->DeleteFile(path_).IgnoreError();
  }

  Dataset data_;
  std::string path_;
  std::unique_ptr<IDistance> idx_;
};

TEST_F(IDistanceTest, ExactWithoutCache) {
  Rng rng(11);
  for (int t = 0; t < 15; ++t) {
    auto q = RandomQuery(data_, rng);
    TreeSearchResult res;
    ASSERT_TRUE(idx_->Search(q, 10, nullptr, &res).ok());
    auto truth = LinearScanKnn(data_, q, 10);
    EXPECT_TRUE(SameIds(res.neighbors, truth)) << "query " << t;
  }
}

TEST_F(IDistanceTest, LeafLowerBoundsAreValid) {
  Rng rng(13);
  auto q = RandomQuery(data_, rng);
  std::vector<double> lb;
  idx_->LeafLowerBounds(q, &lb);
  ASSERT_EQ(lb.size(), idx_->num_leaves());
  // Every point's true distance respects its leaf's lower bound.
  const auto& leaves = idx_->store().leaf_points();
  for (size_t l = 0; l < leaves.size(); ++l) {
    for (PointId id : leaves[l]) {
      EXPECT_GE(L2(std::span<const Scalar>(q), data_.point(id)),
                lb[l] - 1e-6);
    }
  }
}

TEST_F(IDistanceTest, PrunesMostLeaves) {
  Rng rng(17);
  auto q = RandomQuery(data_, rng);
  TreeSearchResult res;
  ASSERT_TRUE(idx_->Search(q, 10, nullptr, &res).ok());
  EXPECT_LT(res.leaves_fetched, idx_->num_leaves() / 2)
      << "metric pruning should skip most leaves";
}

TEST_F(IDistanceTest, ExactWithApproxNodeCache) {
  hist::Histogram h;
  ASSERT_TRUE(hist::BuildEquiWidth(256, 64, &h).ok());
  cache::ApproxNodeCache cache(&h, 16, 1 << 22);
  std::vector<uint32_t> order(idx_->num_leaves());
  std::iota(order.begin(), order.end(), 0u);
  ASSERT_TRUE(
      cache.Fill(data_, idx_->store().leaf_points(), order).ok());

  Rng rng(19);
  for (int t = 0; t < 15; ++t) {
    auto q = RandomQuery(data_, rng);
    TreeSearchResult with_cache, without;
    ASSERT_TRUE(idx_->Search(q, 10, &cache, &with_cache).ok());
    ASSERT_TRUE(idx_->Search(q, 10, nullptr, &without).ok());
    EXPECT_TRUE(SameIds(with_cache.neighbors, without.neighbors));
    EXPECT_LE(with_cache.leaves_fetched, without.leaves_fetched);
  }
}

TEST_F(IDistanceTest, ExactWithExactNodeCache) {
  cache::ExactNodeCache cache(1 << 22);
  std::vector<uint32_t> order(idx_->num_leaves());
  std::iota(order.begin(), order.end(), 0u);
  ASSERT_TRUE(
      cache.Fill(data_, idx_->store().leaf_points(), order).ok());

  Rng rng(23);
  for (int t = 0; t < 10; ++t) {
    auto q = RandomQuery(data_, rng);
    TreeSearchResult with_cache, without;
    ASSERT_TRUE(idx_->Search(q, 10, &cache, &with_cache).ok());
    ASSERT_TRUE(idx_->Search(q, 10, nullptr, &without).ok());
    EXPECT_TRUE(SameIds(with_cache.neighbors, without.neighbors));
  }
}

// ---------------------------------------------------------------- VP-tree --

class VpTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = ClusteredData(3000, 16, 29);
    path_ = TempPath("vptree");
    ASSERT_TRUE(VpTree::Build(storage::Env::Default(), path_, data_, {},
                              &idx_)
                    .ok());
  }
  void TearDown() override {
    storage::Env::Default()->DeleteFile(path_).IgnoreError();
  }

  Dataset data_;
  std::string path_;
  std::unique_ptr<VpTree> idx_;
};

TEST_F(VpTreeTest, AllPointsInExactlyOneLeaf) {
  std::vector<int> count(data_.size(), 0);
  for (const auto& leaf : idx_->store().leaf_points()) {
    for (PointId id : leaf) count[id]++;
  }
  for (size_t i = 0; i < count.size(); ++i) {
    EXPECT_EQ(count[i], 1) << "point " << i;
  }
}

TEST_F(VpTreeTest, ExactWithoutCache) {
  Rng rng(31);
  for (int t = 0; t < 15; ++t) {
    auto q = RandomQuery(data_, rng);
    TreeSearchResult res;
    ASSERT_TRUE(idx_->Search(q, 10, nullptr, &res).ok());
    auto truth = LinearScanKnn(data_, q, 10);
    EXPECT_TRUE(SameIds(res.neighbors, truth)) << "query " << t;
  }
}

TEST_F(VpTreeTest, LeafLowerBoundsAreValid) {
  Rng rng(37);
  auto q = RandomQuery(data_, rng);
  std::vector<double> lb;
  idx_->LeafLowerBounds(q, &lb);
  const auto& leaves = idx_->store().leaf_points();
  for (size_t l = 0; l < leaves.size(); ++l) {
    for (PointId id : leaves[l]) {
      EXPECT_GE(L2(std::span<const Scalar>(q), data_.point(id)),
                lb[l] - 1e-6);
    }
  }
}

TEST_F(VpTreeTest, ExactWithApproxNodeCacheAndFewerFetches) {
  hist::Histogram h;
  ASSERT_TRUE(hist::BuildEquiWidth(256, 64, &h).ok());
  cache::ApproxNodeCache cache(&h, 16, 1 << 22);
  std::vector<uint32_t> order(idx_->num_leaves());
  std::iota(order.begin(), order.end(), 0u);
  ASSERT_TRUE(
      cache.Fill(data_, idx_->store().leaf_points(), order).ok());

  Rng rng(41);
  uint64_t fetched_cached = 0, fetched_plain = 0;
  for (int t = 0; t < 15; ++t) {
    auto q = RandomQuery(data_, rng);
    TreeSearchResult with_cache, without;
    ASSERT_TRUE(idx_->Search(q, 10, &cache, &with_cache).ok());
    ASSERT_TRUE(idx_->Search(q, 10, nullptr, &without).ok());
    EXPECT_TRUE(SameIds(with_cache.neighbors, without.neighbors));
    fetched_cached += with_cache.leaves_fetched;
    fetched_plain += without.leaves_fetched;
  }
  EXPECT_LT(fetched_cached, fetched_plain)
      << "approximate node cache should avoid some leaf fetches";
}

TEST_F(VpTreeTest, K1AndLargeK) {
  Rng rng(43);
  auto q = RandomQuery(data_, rng);
  TreeSearchResult res;
  ASSERT_TRUE(idx_->Search(q, 1, nullptr, &res).ok());
  auto truth = LinearScanKnn(data_, q, 1);
  EXPECT_TRUE(SameIds(res.neighbors, truth));

  ASSERT_TRUE(idx_->Search(q, 100, nullptr, &res).ok());
  truth = LinearScanKnn(data_, q, 100);
  EXPECT_TRUE(SameIds(res.neighbors, truth));
}

// Generic TreeKnnSearch sanity: rejects a bad bounds vector.
TEST(TreeSearchTest, RejectsWrongBoundsSize) {
  Dataset data = ClusteredData(50, 8, 47);
  std::vector<std::vector<PointId>> leaves{{}};
  for (PointId id = 0; id < 50; ++id) leaves[0].push_back(id);
  std::unique_ptr<LeafStore> store;
  const std::string path = TempPath("badlb");
  ASSERT_TRUE(LeafStore::Create(storage::Env::Default(), path, data,
                                std::move(leaves), &store)
                  .ok());
  std::vector<double> lb(3, 0.0);
  std::vector<Scalar> q(8, 0);
  TreeSearchResult res;
  EXPECT_TRUE(
      TreeKnnSearch(*store, lb, q, 5, nullptr, &res).IsInvalidArgument());
  storage::Env::Default()->DeleteFile(path).IgnoreError();
}

}  // namespace
}  // namespace eeb::index
